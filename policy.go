package mpdash

import (
	"mpdash/internal/field"
	"mpdash/internal/netmp"
	"mpdash/internal/policy"
)

// Re-exports for the dynamic preference-policy framework (paper §4: path
// costs "configured either statically or dynamically"; §6 future work)
// and the real-socket multipath fetcher.

// PathPolicy computes per-path unit-data costs over time.
type PathPolicy = policy.Policy

// Policy implementations.
type (
	// StaticPolicy assigns fixed per-path costs.
	StaticPolicy = policy.Static
	// DataCapPolicy prices a metered path up as its quota burns.
	DataCapPolicy = policy.DataCap
	// TimeOfDayPolicy prices a path by a daily window.
	TimeOfDayPolicy = policy.TimeOfDay
	// BatteryPolicy prices the energy-hungry path by battery level.
	BatteryPolicy = policy.Battery
	// PolicyManager pushes a policy's costs into a connection.
	PolicyManager = policy.Manager
)

// Real-socket components (internal/netmp): rate-shaped chunk servers, the
// dual-TCP deadline-aware fetcher with path supervision, and a real-time
// streaming loop.
type (
	// ChunkServer serves DASH chunks over one shaped TCP listener.
	ChunkServer = netmp.ChunkServer
	// Fetcher downloads chunks over two sockets with MP-DASH deadlines.
	Fetcher = netmp.Fetcher
	// Streamer is a real-time playback loop over a Fetcher.
	Streamer = netmp.Streamer
	// RetryPolicy tunes the path supervisor (timeouts, backoff, budgets).
	RetryPolicy = netmp.RetryPolicy
	// PathStats is a per-path health and fault-accounting snapshot.
	PathStats = netmp.PathStats
	// FaultPlan scripts faults into a ChunkServer for chaos rehearsal.
	FaultPlan = netmp.FaultPlan
	// FaultStats counts the faults a server actually injected.
	FaultStats = netmp.FaultStats
)

// Real-socket constructors.
var (
	NewChunkServer           = netmp.NewChunkServer
	NewChunkServerWithFaults = netmp.NewChunkServerWithFaults
	NewFetcher               = netmp.NewFetcher
	FetchManifest            = netmp.FetchManifest
	ParseBlackouts           = netmp.ParseBlackouts
)

// Field-study schemes (Figures 9/10 arm keys).
type FieldSchemeKey = field.SchemeKey

// FieldSchemeKeys lists the four study arms.
func FieldSchemeKeys() []FieldSchemeKey { return field.SchemeKeys() }
