// Package energy implements the radio energy model the paper uses for its
// energy results (§7.1): a trace-replay model in the style of Nika et al.
// [30] and Huang et al. [21] with RRC state promotion, rate-dependent
// active power, the long LTE tail, and idle DRX paging. The paper computes
// energy exactly this way — by feeding the collected network traces to a
// simulator with per-device parameters (Samsung Galaxy Note and Galaxy
// S III) — so this package reimplements the model, not a measurement.
package energy

import (
	"fmt"
	"time"
)

// RadioParams is one radio's power model.
type RadioParams struct {
	Name string
	// PromotionTime/PromotionPower cover the IDLE→CONNECTED transition.
	PromotionTime  time.Duration
	PromotionPower float64 // watts
	// ActiveBase is the power while transferring, plus ActivePerMbps
	// times the instantaneous downlink rate (Huang et al.'s linear
	// rate-dependent model).
	ActiveBase    float64 // watts
	ActivePerMbps float64 // watts per Mbps
	// After the last transfer the radio holds continuous reception at
	// TailPower for TailHighTime, then drops into connected-mode DRX at
	// TailDRXPower until TailTime has elapsed in total — the two-phase
	// tail of the Nika et al. model the paper replays its traces
	// through. Radios without a DRX phase set TailHighTime = TailTime.
	TailHighTime time.Duration
	TailTime     time.Duration
	TailPower    float64 // watts, continuous-reception phase
	TailDRXPower float64 // watts, connected-DRX phase
	// IdlePower is the average idle power including periodic DRX paging
	// spikes (the paper §6: "only periodical DRX spikes").
	IdlePower float64 // watts
}

// Validate checks the parameter set.
func (p RadioParams) Validate() error {
	if p.PromotionTime < 0 || p.TailTime < 0 || p.TailHighTime < 0 {
		return fmt.Errorf("energy %q: negative timer", p.Name)
	}
	if p.TailHighTime > p.TailTime {
		return fmt.Errorf("energy %q: tail high phase %v exceeds tail %v", p.Name, p.TailHighTime, p.TailTime)
	}
	if p.PromotionPower < 0 || p.ActiveBase < 0 || p.ActivePerMbps < 0 ||
		p.TailPower < 0 || p.TailDRXPower < 0 || p.IdlePower < 0 {
		return fmt.Errorf("energy %q: negative power", p.Name)
	}
	return nil
}

// LTE parameter sets. Values follow the Huang et al. MobiSys'12 LTE model
// (promotion ≈260 ms at ≈1.21 W; active ≈1.29 W + 52 mW/Mbps downlink;
// idle DRX ≈32 mW) with the two-phase connected-DRX tail of the newer
// Nika et al. model the paper uses (≈1 s continuous reception at ≈1.06 W,
// then cDRX near 0.45 W until the ≈11.5 s inactivity timer expires), plus
// a slightly scaled variant for the Galaxy S III — the paper reports both
// devices give similar results.

// LTEGalaxyNote returns the Samsung Galaxy Note LTE model.
func LTEGalaxyNote() RadioParams {
	return RadioParams{
		Name:           "lte-galaxy-note",
		PromotionTime:  260 * time.Millisecond,
		PromotionPower: 1.21,
		ActiveBase:     1.288,
		ActivePerMbps:  0.052,
		TailHighTime:   time.Second,
		TailTime:       11500 * time.Millisecond,
		TailPower:      1.060,
		TailDRXPower:   0.45,
		IdlePower:      0.032,
	}
}

// LTEGalaxyS3 returns the Samsung Galaxy S III LTE model.
func LTEGalaxyS3() RadioParams {
	return RadioParams{
		Name:           "lte-galaxy-s3",
		PromotionTime:  240 * time.Millisecond,
		PromotionPower: 1.15,
		ActiveBase:     1.22,
		ActivePerMbps:  0.049,
		TailHighTime:   time.Second,
		TailTime:       11 * time.Second,
		TailPower:      1.005,
		TailDRXPower:   0.42,
		IdlePower:      0.030,
	}
}

// WiFiGalaxyNote returns the WiFi model (PSM: short single-phase tail,
// cheap idle).
func WiFiGalaxyNote() RadioParams {
	return RadioParams{
		Name:           "wifi-galaxy-note",
		PromotionTime:  80 * time.Millisecond,
		PromotionPower: 0.4,
		ActiveBase:     0.133,
		ActivePerMbps:  0.137,
		TailHighTime:   240 * time.Millisecond,
		TailTime:       240 * time.Millisecond,
		TailPower:      0.25,
		TailDRXPower:   0.25,
		IdlePower:      0.03,
	}
}

// WiFiGalaxyS3 returns the Galaxy S III WiFi model.
func WiFiGalaxyS3() RadioParams {
	p := WiFiGalaxyNote()
	p.Name = "wifi-galaxy-s3"
	p.ActiveBase = 0.126
	p.ActivePerMbps = 0.130
	return p
}

// Breakdown itemizes where the joules went.
type Breakdown struct {
	PromotionJ float64
	ActiveJ    float64
	TailJ      float64
	IdleJ      float64
	Promotions int
}

// TotalJ sums the components.
func (b Breakdown) TotalJ() float64 { return b.PromotionJ + b.ActiveJ + b.TailJ + b.IdleJ }

// RadioEnergy replays a per-window traffic trace (byte counts per window,
// as produced by link.Meter) through the radio state machine and returns
// the breakdown. total is the session length; windows beyond the buckets
// are idle.
func RadioEnergy(buckets []int64, window time.Duration, total time.Duration, p RadioParams) (Breakdown, error) {
	var b Breakdown
	if err := p.Validate(); err != nil {
		return b, err
	}
	if window <= 0 {
		return b, fmt.Errorf("energy: window %v", window)
	}
	if total < 0 {
		return b, fmt.Errorf("energy: negative total %v", total)
	}
	nWindows := int(total / window)
	if len(buckets) > nWindows {
		nWindows = len(buckets)
	}
	winSec := window.Seconds()

	connected := false
	var sinceLastBusy time.Duration
	for i := 0; i < nWindows; i++ {
		var bytes int64
		if i < len(buckets) {
			bytes = buckets[i]
		}
		if bytes > 0 {
			if !connected {
				b.PromotionJ += p.PromotionPower * p.PromotionTime.Seconds()
				b.Promotions++
				connected = true
			}
			mbps := float64(bytes) * 8 / winSec / 1e6
			b.ActiveJ += (p.ActiveBase + p.ActivePerMbps*mbps) * winSec
			sinceLastBusy = 0
			continue
		}
		if connected {
			sinceLastBusy += window
			switch {
			case sinceLastBusy <= p.TailHighTime:
				b.TailJ += p.TailPower * winSec
				continue
			case sinceLastBusy <= p.TailTime:
				b.TailJ += p.TailDRXPower * winSec
				continue
			}
			connected = false
		}
		b.IdleJ += p.IdlePower * winSec
	}
	return b, nil
}

// Device pairs the two radios of a phone.
type Device struct {
	Name string
	LTE  RadioParams
	WiFi RadioParams
	// BatteryWh is the battery capacity in watt-hours (for drain
	// estimates; 0 disables).
	BatteryWh float64
}

// BatteryDrainFrac converts joules to the fraction of this device's
// battery they consume; 0 if the capacity is unknown.
func (d Device) BatteryDrainFrac(joules float64) float64 {
	if d.BatteryWh <= 0 {
		return 0
	}
	return joules / (d.BatteryWh * 3600)
}

// GalaxyNote returns the paper's primary reference device (9.25 Wh).
func GalaxyNote() Device {
	return Device{Name: "Samsung Galaxy Note", LTE: LTEGalaxyNote(), WiFi: WiFiGalaxyNote(), BatteryWh: 9.25}
}

// GalaxyS3 returns the secondary device (7.98 Wh).
func GalaxyS3() Device {
	return Device{Name: "Samsung Galaxy S III", LTE: LTEGalaxyS3(), WiFi: WiFiGalaxyS3(), BatteryWh: 7.98}
}

// Session is the energy of one playback/download session.
type Session struct {
	LTE  Breakdown
	WiFi Breakdown
}

// RadioJ is the total radio energy (both radios), the paper's metric.
func (s Session) RadioJ() float64 { return s.LTE.TotalJ() + s.WiFi.TotalJ() }

// SessionEnergy computes both radios from their traffic meters.
func SessionEnergy(dev Device, lteBuckets, wifiBuckets []int64, window, total time.Duration) (Session, error) {
	var s Session
	var err error
	if s.LTE, err = RadioEnergy(lteBuckets, window, total, dev.LTE); err != nil {
		return s, err
	}
	if s.WiFi, err = RadioEnergy(wifiBuckets, window, total, dev.WiFi); err != nil {
		return s, err
	}
	return s, nil
}
