package energy

import (
	"math"
	"testing"
	"time"
)

func TestParamsValidate(t *testing.T) {
	for _, p := range []RadioParams{LTEGalaxyNote(), LTEGalaxyS3(), WiFiGalaxyNote(), WiFiGalaxyS3()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := LTEGalaxyNote()
	bad.TailTime = -time.Second
	if err := bad.Validate(); err == nil {
		t.Error("negative timer accepted")
	}
	bad2 := LTEGalaxyNote()
	bad2.ActiveBase = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative power accepted")
	}
	bad3 := LTEGalaxyNote()
	bad3.TailHighTime = bad3.TailTime + time.Second
	if err := bad3.Validate(); err == nil {
		t.Error("tail high phase > tail accepted")
	}
}

func TestTwoPhaseTail(t *testing.T) {
	// A window 3 s after the burst sits in the cDRX phase: cheaper than
	// the continuous-reception phase right after the burst.
	p := LTEGalaxyNote()
	window := 100 * time.Millisecond
	buckets := []int64{100_000} // one busy window
	b, err := RadioEnergy(buckets, window, 12*time.Second, p)
	if err != nil {
		t.Fatal(err)
	}
	// Tail = TailHighTime at TailPower + (TailTime-TailHighTime) at DRX.
	want := p.TailPower*p.TailHighTime.Seconds() +
		p.TailDRXPower*(p.TailTime-p.TailHighTime).Seconds()
	if math.Abs(b.TailJ-want) > 0.2 {
		t.Errorf("two-phase tail = %v J, want ≈%v", b.TailJ, want)
	}
}

func TestRadioEnergyValidation(t *testing.T) {
	p := LTEGalaxyNote()
	if _, err := RadioEnergy(nil, 0, time.Second, p); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := RadioEnergy(nil, time.Second, -time.Second, p); err == nil {
		t.Error("negative total accepted")
	}
	bad := p
	bad.IdlePower = -1
	if _, err := RadioEnergy(nil, time.Second, time.Second, bad); err == nil {
		t.Error("bad params accepted")
	}
}

func TestIdleOnlySession(t *testing.T) {
	p := LTEGalaxyNote()
	b, err := RadioEnergy(nil, 100*time.Millisecond, 10*time.Second, p)
	if err != nil {
		t.Fatal(err)
	}
	want := p.IdlePower * 10
	if math.Abs(b.TotalJ()-want) > 1e-9 {
		t.Errorf("idle session = %v J, want %v", b.TotalJ(), want)
	}
	if b.Promotions != 0 {
		t.Errorf("promotions = %d", b.Promotions)
	}
}

func TestSingleBurstHasPromotionAndTail(t *testing.T) {
	p := LTEGalaxyNote()
	window := 100 * time.Millisecond
	// 1 second of traffic at the start of a 30 s session.
	buckets := make([]int64, 10)
	for i := range buckets {
		buckets[i] = 125_000 // 10 Mbps
	}
	b, err := RadioEnergy(buckets, window, 30*time.Second, p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Promotions != 1 {
		t.Errorf("promotions = %d, want 1", b.Promotions)
	}
	if b.PromotionJ <= 0 || b.ActiveJ <= 0 || b.TailJ <= 0 || b.IdleJ <= 0 {
		t.Errorf("all components should be positive: %+v", b)
	}
	// Tail ≈ 1 s at 1.06 W + 10.5 s cDRX at 0.45 W ≈ 5.8 J.
	if b.TailJ < 5 || b.TailJ > 7 {
		t.Errorf("tail = %v J, want ≈5.8", b.TailJ)
	}
	// Active: 1 s at 1.288+0.052*10 = 1.808 W.
	if math.Abs(b.ActiveJ-1.808) > 0.01 {
		t.Errorf("active = %v J, want 1.808", b.ActiveJ)
	}
}

func TestDribbleCostsMoreThanBurst(t *testing.T) {
	// The Table 4 phenomenon: sending the same bytes as a slow dribble
	// keeps the radio in tail/active forever; a fast burst pays one tail.
	p := LTEGalaxyNote()
	window := 100 * time.Millisecond
	total := 60 * time.Second
	const totalBytes = 6_000_000

	// Burst: all bytes in the first 2 seconds.
	burst := make([]int64, 20)
	for i := range burst {
		burst[i] = totalBytes / 20
	}
	// Dribble: bytes spread evenly across the full minute.
	dribble := make([]int64, 600)
	for i := range dribble {
		dribble[i] = totalBytes / 600
	}
	bb, err := RadioEnergy(burst, window, total, p)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := RadioEnergy(dribble, window, total, p)
	if err != nil {
		t.Fatal(err)
	}
	if bd.TotalJ() <= bb.TotalJ()*1.5 {
		t.Errorf("dribble %v J should far exceed burst %v J", bd.TotalJ(), bb.TotalJ())
	}
}

func TestGapShorterThanTailNoRepromotion(t *testing.T) {
	p := LTEGalaxyNote()
	window := 100 * time.Millisecond
	// Two bursts 5 s apart (tail is 11.5 s): one promotion.
	buckets := make([]int64, 60)
	buckets[0] = 100_000
	buckets[50] = 100_000
	b, err := RadioEnergy(buckets, window, 6*time.Second, p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Promotions != 1 {
		t.Errorf("promotions = %d, want 1 (gap < tail)", b.Promotions)
	}
	// Two bursts 20 s apart: two promotions.
	buckets2 := make([]int64, 201)
	buckets2[0] = 100_000
	buckets2[200] = 100_000
	b2, err := RadioEnergy(buckets2, window, 21*time.Second, p)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Promotions != 2 {
		t.Errorf("promotions = %d, want 2 (gap > tail)", b2.Promotions)
	}
}

func TestRateDependentActivePower(t *testing.T) {
	p := LTEGalaxyNote()
	window := time.Second
	slow, err := RadioEnergy([]int64{125_000}, window, time.Second, p) // 1 Mbps
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RadioEnergy([]int64{1_250_000}, window, time.Second, p) // 10 Mbps
	if err != nil {
		t.Fatal(err)
	}
	if fast.ActiveJ <= slow.ActiveJ {
		t.Errorf("rate dependence missing: fast %v <= slow %v", fast.ActiveJ, slow.ActiveJ)
	}
	// But energy-per-byte must be lower at high rate (the reason MP-DASH
	// bursts rather than throttles).
	if fast.ActiveJ/10 >= slow.ActiveJ {
		t.Errorf("per-byte energy not lower at speed: %v vs %v", fast.ActiveJ/10, slow.ActiveJ)
	}
}

func TestWiFiCheaperThanLTEForSameTraffic(t *testing.T) {
	buckets := make([]int64, 100)
	for i := range buckets {
		buckets[i] = 50_000
	}
	lte, err := RadioEnergy(buckets, 100*time.Millisecond, 20*time.Second, LTEGalaxyNote())
	if err != nil {
		t.Fatal(err)
	}
	wifi, err := RadioEnergy(buckets, 100*time.Millisecond, 20*time.Second, WiFiGalaxyNote())
	if err != nil {
		t.Fatal(err)
	}
	if wifi.TotalJ() >= lte.TotalJ() {
		t.Errorf("wifi %v J >= lte %v J", wifi.TotalJ(), lte.TotalJ())
	}
}

func TestSessionEnergyAndDevices(t *testing.T) {
	lteB := []int64{100_000, 0, 0}
	wifiB := []int64{500_000, 500_000, 500_000}
	for _, dev := range []Device{GalaxyNote(), GalaxyS3()} {
		s, err := SessionEnergy(dev, lteB, wifiB, 100*time.Millisecond, time.Second)
		if err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
		if s.RadioJ() <= 0 {
			t.Errorf("%s: radio energy %v", dev.Name, s.RadioJ())
		}
		if s.RadioJ() != s.LTE.TotalJ()+s.WiFi.TotalJ() {
			t.Errorf("%s: RadioJ mismatch", dev.Name)
		}
	}
	// Both devices similar (paper: "both yielding similar results").
	n, _ := SessionEnergy(GalaxyNote(), lteB, wifiB, 100*time.Millisecond, time.Second)
	s3, _ := SessionEnergy(GalaxyS3(), lteB, wifiB, 100*time.Millisecond, time.Second)
	ratio := n.RadioJ() / s3.RadioJ()
	if ratio < 0.8 || ratio > 1.3 {
		t.Errorf("device ratio %v; parameter sets should be similar", ratio)
	}
	// Bad params propagate.
	bad := GalaxyNote()
	bad.LTE.IdlePower = -1
	if _, err := SessionEnergy(bad, lteB, wifiB, 100*time.Millisecond, time.Second); err == nil {
		t.Error("bad device accepted")
	}
}

func TestBatteryDrain(t *testing.T) {
	d := GalaxyNote()
	// 333 J on a 9.25 Wh (33300 J) battery = 1%.
	if got := d.BatteryDrainFrac(333); math.Abs(got-0.01) > 0.0001 {
		t.Errorf("drain = %v, want 0.01", got)
	}
	unknown := Device{Name: "x"}
	if unknown.BatteryDrainFrac(100) != 0 {
		t.Error("unknown capacity should yield 0")
	}
}

func TestBucketsLongerThanTotal(t *testing.T) {
	// Buckets may extend past the nominal total; they must all count.
	p := LTEGalaxyNote()
	buckets := make([]int64, 100)
	buckets[99] = 1000
	b, err := RadioEnergy(buckets, 100*time.Millisecond, time.Second, p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Promotions != 1 {
		t.Errorf("promotions = %d", b.Promotions)
	}
}
