package core

import (
	"testing"
	"time"

	"mpdash/internal/obs"
	"mpdash/internal/trace"
)

// simTracer builds a tracer whose clock maps the simulator's virtual
// time onto a fixed epoch, the way callers are told to wire it.
func simTracer(now func() time.Duration) *obs.Tracer {
	epoch := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	return obs.NewTracer(obs.TraceConfig{
		HeadSampleRate: 1,
		Seed:           11,
		Now:            func() time.Time { return epoch.Add(now()) },
	})
}

func TestSchedulerTraceTightDeadline(t *testing.T) {
	// Tight deadline: the secondary engages, so the trace must carry a
	// sched-category path-on span for lte and finish ok.
	w := trace.Constant("w", 3.8, time.Second, 1)
	l := trace.Constant("l", 3.0, time.Second, 1)
	s, c, sch := rig(t, w, l, 1)
	sch.Tracer = simTracer(s.Now)
	sch.TraceSession = 7
	warm(t, c)
	governedDownload(t, c, sch, 5_000_000, 7*time.Second)

	recs := sch.Tracer.Records()
	if len(recs) != 1 {
		t.Fatalf("kept %d traces, want 1 per activation", len(recs))
	}
	rec := recs[0]
	if rec.Session != 7 || rec.Chunk != 0 {
		t.Errorf("trace coords = session %d chunk %d, want 7/0", rec.Session, rec.Chunk)
	}
	if rec.Verdict != obs.TraceOK {
		t.Errorf("verdict = %s, want ok (deadline was met)", rec.Verdict)
	}
	lteOn := false
	for _, sp := range rec.Spans {
		if sp.Category == obs.CatSched && sp.Path == "lte" {
			lteOn = true
			if sp.DurUS <= 0 {
				t.Errorf("lte enabled interval has no duration: %+v", sp)
			}
		}
	}
	if !lteOn {
		t.Error("no sched span for the engaged lte path")
	}
}

func TestSchedulerTraceMissedDeadline(t *testing.T) {
	// An impossible deadline: the trace finishes missed with an overrun.
	w := trace.Constant("w", 3.8, time.Second, 1)
	l := trace.Constant("l", 3.0, time.Second, 1)
	s, c, sch := rig(t, w, l, 1)
	// Head rate 0 proves tail sampling alone keeps the missed trace.
	epoch := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	sch.Tracer = obs.NewTracer(obs.TraceConfig{
		Seed: 11,
		Now:  func() time.Time { return epoch.Add(s.Now()) },
	})
	warm(t, c)
	governedDownload(t, c, sch, 5_000_000, 2*time.Second)
	if sch.DeadlineMisses() == 0 {
		t.Fatal("miss not counted")
	}
	recs := sch.Tracer.Records()
	if len(recs) != 1 {
		t.Fatalf("missed trace not kept at head rate 0: %d records", len(recs))
	}
	rec := recs[0]
	if rec.Verdict != obs.TraceMissed || rec.OverrunUS <= 0 {
		t.Errorf("verdict=%s overrun=%dus, want missed with positive overrun",
			rec.Verdict, rec.OverrunUS)
	}
	// The miss budget attributes the whole overrun.
	attrs := obs.CriticalPath(rec)
	if attrs == nil {
		t.Fatal("no critical-path attribution for the missed transfer")
	}
	var sum float64
	for _, a := range attrs {
		sum += a.OverrunUS
	}
	if diff := sum - float64(rec.OverrunUS); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("attributions sum to %.3f, want %d", sum, rec.OverrunUS)
	}
}
