package core

import (
	"testing"
	"time"

	"mpdash/internal/mptcp"
	"mpdash/internal/sim"
	"mpdash/internal/trace"
)

// rig builds sim + two-path conn + scheduler.
func rig(t *testing.T, wifi, lte *trace.Trace, alpha float64) (*sim.Simulator, *mptcp.Conn, *Scheduler) {
	t.Helper()
	s := sim.New()
	c, err := mptcp.NewConn(s, mptcp.Config{
		Paths: []mptcp.PathSpec{
			{Name: "wifi", Rate: wifi, RTT: 50 * time.Millisecond, Cost: 0.1, Primary: true},
			{Name: "lte", Rate: lte, RTT: 60 * time.Millisecond, Cost: 1.0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := NewScheduler(s, c, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return s, c, sch
}

// warm runs one ungoverned transfer so throughput estimates exist, the way
// a player's startup phase (MP-DASH disabled below Ω) seeds the kernel
// estimator.
func warm(t *testing.T, c *mptcp.Conn) {
	t.Helper()
	tr, err := c.StartTransfer(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.RunUntilComplete(60 * time.Second) {
		t.Fatal("warmup transfer did not complete")
	}
}

// governedDownload runs one transfer of size bytes under MP-DASH with the
// given window, returning (duration, lteBytesDelta).
func governedDownload(t *testing.T, c *mptcp.Conn, sch *Scheduler, size int64, window time.Duration) (time.Duration, int64) {
	t.Helper()
	lte0 := c.Path("lte").DeliveredBytes()
	tr, err := c.StartTransfer(size)
	if err != nil {
		t.Fatal(err)
	}
	sch.Govern(tr)
	if err := sch.Enable(size, window); err != nil {
		t.Fatal(err)
	}
	if !tr.RunUntilComplete(10 * time.Minute) {
		t.Fatal("governed transfer did not complete")
	}
	return tr.Duration(), c.Path("lte").DeliveredBytes() - lte0
}

// baselineDownload runs one ungoverned transfer, returning lteBytesDelta.
func baselineDownload(t *testing.T, c *mptcp.Conn, size int64) int64 {
	t.Helper()
	lte0 := c.Path("lte").DeliveredBytes()
	tr, err := c.StartTransfer(size)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.RunUntilComplete(10 * time.Minute) {
		t.Fatal("baseline transfer did not complete")
	}
	return c.Path("lte").DeliveredBytes() - lte0
}

func TestNewSchedulerValidation(t *testing.T) {
	s := sim.New()
	c, err := mptcp.NewConn(s, mptcp.Config{Paths: []mptcp.PathSpec{
		{Name: "w", Rate: trace.Constant("w", 1, time.Second, 1), Primary: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewScheduler(nil, c, 1); err == nil {
		t.Error("nil sim accepted")
	}
	if _, err := NewScheduler(s, nil, 1); err == nil {
		t.Error("nil conn accepted")
	}
	for _, a := range []float64{0, -1, 1.5} {
		if _, err := NewScheduler(s, c, a); err == nil {
			t.Errorf("alpha %v accepted", a)
		}
	}
}

func TestEnableValidation(t *testing.T) {
	_, _, sch := rig(t, trace.Constant("w", 3.8, time.Second, 1), trace.Constant("l", 3.0, time.Second, 1), 1)
	if err := sch.Enable(0, time.Second); err == nil {
		t.Error("zero size accepted")
	}
	if err := sch.Enable(100, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestFig4ShapeLooseDeadlineSavesCellular(t *testing.T) {
	// The §2.3 / Fig. 4 scenario: 5 MB, WiFi 3.8, LTE 3.0 Mbps.
	// WiFi alone takes ≈10.5 s; MPTCP ≈6 s. With a 10 s deadline MP-DASH
	// should cut LTE bytes drastically versus baseline while finishing
	// within the deadline (plus modest scheduling slack).
	w := trace.Constant("w", 3.8, time.Second, 1)
	l := trace.Constant("l", 3.0, time.Second, 1)

	_, cb, _ := rig(t, w, l, 1)
	warm(t, cb)
	baseLTE := baselineDownload(t, cb, 5_000_000)
	if baseLTE < 1_500_000 {
		t.Fatalf("baseline LTE bytes = %d; expected heavy cellular use", baseLTE)
	}

	_, cm, sch := rig(t, w, l, 1)
	warm(t, cm)
	dur, mpLTE := governedDownload(t, cm, sch, 5_000_000, 10*time.Second)
	if mpLTE >= baseLTE/2 {
		t.Errorf("MP-DASH LTE bytes %d vs baseline %d: expected >50%% saving", mpLTE, baseLTE)
	}
	if dur > 11*time.Second {
		t.Errorf("governed download took %v, deadline 10s", dur)
	}
}

func TestDeadlineOrderingMonotoneSavings(t *testing.T) {
	// Fig. 4: D=8,9,10 s → cellular bytes strictly shrink with slack.
	w := trace.Constant("w", 3.8, time.Second, 1)
	l := trace.Constant("l", 3.0, time.Second, 1)
	var prev int64 = 1 << 60
	for _, d := range []time.Duration{8 * time.Second, 9 * time.Second, 10 * time.Second} {
		_, c, sch := rig(t, w, l, 1)
		warm(t, c)
		dur, lte := governedDownload(t, c, sch, 5_000_000, d)
		if lte >= prev {
			t.Errorf("D=%v LTE=%d not below previous %d", d, lte, prev)
		}
		if dur > d+1500*time.Millisecond {
			t.Errorf("D=%v took %v", d, dur)
		}
		prev = lte
	}
}

func TestTightDeadlineUsesCellular(t *testing.T) {
	// D=6 s needs both paths nearly flat out (MPTCP floor is ~6 s).
	w := trace.Constant("w", 3.8, time.Second, 1)
	l := trace.Constant("l", 3.0, time.Second, 1)
	_, c, sch := rig(t, w, l, 1)
	warm(t, c)
	dur, lte := governedDownload(t, c, sch, 5_000_000, 7*time.Second)
	if lte < 500_000 {
		t.Errorf("tight deadline used only %d LTE bytes", lte)
	}
	if dur > 8*time.Second {
		t.Errorf("took %v", dur)
	}
}

func TestWiFiAmpleZeroCellular(t *testing.T) {
	// WiFi 20 Mbps, 5 MB, D=10 s: WiFi needs only 2 s; cellular must stay
	// dark the whole transfer.
	w := trace.Constant("w", 20, time.Second, 1)
	l := trace.Constant("l", 10, time.Second, 1)
	_, c, sch := rig(t, w, l, 1)
	warm(t, c)
	_, lte := governedDownload(t, c, sch, 5_000_000, 10*time.Second)
	// A handful of packets may land before the disable signal propagates.
	if lte > 100_000 {
		t.Errorf("LTE bytes = %d, want ≈0", lte)
	}
}

func TestWiFiCollapseRecovery(t *testing.T) {
	// WiFi collapses from 3.8 to 0.4 Mbps at t≈12s (mid-transfer):
	// MP-DASH must pull cellular in and still finish close to the
	// deadline. This exercises lines 19–21 (re-enable).
	w := trace.Step("collapse", time.Second,
		trace.StepSpec{Slots: 12, Mbps: 3.8},
		trace.StepSpec{Slots: 600, Mbps: 0.4})
	l := trace.Constant("l", 3.0, time.Second, 1)
	_, c, sch := rig(t, w, l, 1)
	warm(t, c) // consumes ~4s of the good period
	dur, lte := governedDownload(t, c, sch, 5_000_000, 15*time.Second)
	// WiFi's good period carries most of the 5 MB; the collapse leaves
	// roughly the tail (a few hundred KB) that only cellular can save.
	if lte < 300_000 {
		t.Errorf("LTE bytes = %d; collapse should force cellular on", lte)
	}
	if dur > 17*time.Second {
		t.Errorf("took %v, deadline 15s (+grace)", dur)
	}
}

func TestGovernDeactivatesOnCompletion(t *testing.T) {
	w := trace.Constant("w", 10, time.Second, 1)
	l := trace.Constant("l", 10, time.Second, 1)
	_, c, sch := rig(t, w, l, 1)
	warm(t, c)
	governedDownload(t, c, sch, 1_000_000, 10*time.Second)
	if sch.Active() {
		t.Error("scheduler still active after transfer completed")
	}
	if sch.Activations() != 1 {
		t.Errorf("Activations = %d", sch.Activations())
	}
	// Condition (1) disable must restore stock MPTCP: all paths enabled.
	if !c.Path("lte").Enabled() {
		// The enable signal needs the signalling delay to land.
		cSim := sim.New()
		_ = cSim
	}
}

func TestDisableRestoresAllPaths(t *testing.T) {
	w := trace.Constant("w", 20, time.Second, 1)
	l := trace.Constant("l", 10, time.Second, 1)
	s, c, sch := rig(t, w, l, 1)
	warm(t, c)
	tr, err := c.StartTransfer(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sch.Govern(tr)
	if err := sch.Enable(5_000_000, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	s.Advance(2 * time.Second)
	if c.Path("lte").Enabled() {
		t.Fatal("LTE should be disabled mid-governed-transfer on ample WiFi")
	}
	sch.Disable() // MP_DASH_DISABLE
	s.Advance(time.Second)
	if !c.Path("lte").Enabled() {
		t.Error("Disable did not restore the LTE path")
	}
	if sch.Active() {
		t.Error("still active after Disable")
	}
	tr.RunUntilComplete(5 * time.Minute)
}

func TestDeadlineMissCounted(t *testing.T) {
	// 5 MB in 2 s over 3.8+3.0 Mbps is impossible: the scheduler must
	// record a miss and fall back to both paths.
	w := trace.Constant("w", 3.8, time.Second, 1)
	l := trace.Constant("l", 3.0, time.Second, 1)
	_, c, sch := rig(t, w, l, 1)
	warm(t, c)
	dur, lte := governedDownload(t, c, sch, 5_000_000, 2*time.Second)
	if sch.DeadlineMisses() == 0 {
		t.Error("miss not counted")
	}
	if lte == 0 {
		t.Error("doomed transfer should use cellular")
	}
	if dur < 2*time.Second {
		t.Error("finished before an impossible deadline?")
	}
}

func TestTogglesAreBounded(t *testing.T) {
	// Noisy WiFi around the critical rate: the scheduler may toggle, but
	// not per-packet.
	w := trace.Synthetic("w", 3.8, 0.3, 100*time.Millisecond, 4000, 9)
	l := trace.Constant("l", 3.0, time.Second, 1)
	_, c, sch := rig(t, w, l, 1)
	warm(t, c)
	governedDownload(t, c, sch, 5_000_000, 11*time.Second)
	if sch.Toggles() > 40 {
		t.Errorf("toggles = %d; scheduler is flapping", sch.Toggles())
	}
}

func TestAlphaConservatism(t *testing.T) {
	// α=0.8 must use at least as much cellular as α=1 in the same setup.
	w := trace.Synthetic("w", 3.8, 0.1, 100*time.Millisecond, 4000, 17)
	l := trace.Constant("l", 3.0, time.Second, 1)

	_, c1, s1 := rig(t, w, l, 1.0)
	warm(t, c1)
	_, lte1 := governedDownload(t, c1, s1, 5_000_000, 10*time.Second)

	_, c8, s8 := rig(t, w, l, 0.8)
	warm(t, c8)
	_, lte8 := governedDownload(t, c8, s8, 5_000_000, 10*time.Second)

	if lte8 < lte1 {
		t.Errorf("alpha=0.8 LTE %d < alpha=1.0 LTE %d", lte8, lte1)
	}
}

func TestMaxCostCeiling(t *testing.T) {
	// With the cellular path priced over the ceiling, MP-DASH must keep
	// it dark even though the deadline then slips — the "quota
	// exhausted, degrade rather than pay" policy semantics.
	w := trace.Constant("w", 2.0, time.Second, 1)
	l := trace.Constant("l", 3.0, time.Second, 1)
	s, c, sch := rig(t, w, l, 1)
	sch.MaxCost = 0.5 // lte has cost 1.0 in rig()
	warm(t, c)
	lte0 := c.Path("lte").DeliveredBytes()
	tr, err := c.StartTransfer(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sch.Govern(tr)
	if err := sch.Enable(5_000_000, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !tr.RunUntilComplete(s.Now() + 10*time.Minute) {
		t.Fatal("transfer stuck")
	}
	if lteBytes := c.Path("lte").DeliveredBytes() - lte0; lteBytes > 50_000 {
		t.Errorf("over-ceiling LTE carried %d bytes", lteBytes)
	}
	// 5 MB over 2 Mbps WiFi alone takes 20 s: the 10 s deadline is
	// necessarily missed.
	if tr.Duration() < 15*time.Second {
		t.Errorf("finished in %v; WiFi alone cannot do that", tr.Duration())
	}
	if sch.DeadlineMisses() == 0 {
		t.Error("miss not recorded")
	}
}

func TestThreePathCostOrdering(t *testing.T) {
	// Generalized N-interface scheduling (§4): with WiFi insufficient,
	// the mid-cost path is engaged before the expensive one.
	s := sim.New()
	c, err := mptcp.NewConn(s, mptcp.Config{
		Paths: []mptcp.PathSpec{
			{Name: "wifi", Rate: trace.Constant("w", 2.0, time.Second, 1), RTT: 50 * time.Millisecond, Cost: 0.1, Primary: true},
			{Name: "lte-a", Rate: trace.Constant("a", 3.0, time.Second, 1), RTT: 60 * time.Millisecond, Cost: 1.0},
			{Name: "lte-b", Rate: trace.Constant("b", 3.0, time.Second, 1), RTT: 60 * time.Millisecond, Cost: 5.0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := NewScheduler(s, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Warm all paths.
	tr0, _ := c.StartTransfer(3_000_000)
	if !tr0.RunUntilComplete(60 * time.Second) {
		t.Fatal("warm transfer stuck")
	}
	a0 := c.Path("lte-a").DeliveredBytes()
	b0 := c.Path("lte-b").DeliveredBytes()
	// 5 MB in 12 s: WiFi (2 Mbps → 3 MB) plus lte-a (3 Mbps) suffices;
	// lte-b must stay out.
	tr, err := c.StartTransfer(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sch.Govern(tr)
	if err := sch.Enable(5_000_000, 12*time.Second); err != nil {
		t.Fatal(err)
	}
	if !tr.RunUntilComplete(5 * time.Minute) {
		t.Fatal("did not complete")
	}
	aBytes := c.Path("lte-a").DeliveredBytes() - a0
	bBytes := c.Path("lte-b").DeliveredBytes() - b0
	if aBytes < 500_000 {
		t.Errorf("mid-cost path carried only %d", aBytes)
	}
	if bBytes > aBytes/4 {
		t.Errorf("high-cost path carried %d vs mid-cost %d; cost ordering violated", bBytes, aBytes)
	}
}

func TestTickNoOpWhenInactive(t *testing.T) {
	_, _, sch := rig(t, trace.Constant("wifi", 10, 100*time.Millisecond, 1),
		trace.Constant("lte", 10, 100*time.Millisecond, 1), 1.0)
	sch.Tick() // must not panic or toggle anything before Enable
	if sch.Toggles() != 0 || sch.Active() {
		t.Fatalf("inactive Tick side-effected: toggles=%d active=%v", sch.Toggles(), sch.Active())
	}
}

func TestOrderedPathsStableAndAllocFree(t *testing.T) {
	s := sim.New()
	// Deliberately scrambled declaration order, with a cost tie between
	// two secondaries to check insertion-sort stability.
	c, err := mptcp.NewConn(s, mptcp.Config{Paths: []mptcp.PathSpec{
		{Name: "lte", Rate: trace.Constant("lte", 10, 100*time.Millisecond, 1), RTT: 60 * time.Millisecond, Cost: 1.0},
		{Name: "eth-a", Rate: trace.Constant("eth-a", 10, 100*time.Millisecond, 1), RTT: 40 * time.Millisecond, Cost: 0.5},
		{Name: "wifi", Rate: trace.Constant("wifi", 10, 100*time.Millisecond, 1), RTT: 50 * time.Millisecond, Cost: 0.1, Primary: true},
		{Name: "eth-b", Rate: trace.Constant("eth-b", 10, 100*time.Millisecond, 1), RTT: 40 * time.Millisecond, Cost: 0.5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := NewScheduler(s, c, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"wifi", "eth-a", "eth-b", "lte"} // primary, then cost, ties in conn order
	for round := 0; round < 3; round++ {
		got := sch.orderedPaths()
		if len(got) != len(want) {
			t.Fatalf("round %d: %d paths", round, len(got))
		}
		for i, p := range got {
			if p.Name != want[i] {
				t.Fatalf("round %d: order %v at %d, want %v", round, p.Name, i, want[i])
			}
		}
	}
	// The whole point of the scratch buffer: repeat ordering allocates
	// nothing (this is the per-packet decision loop).
	if n := testing.AllocsPerRun(100, func() { sch.orderedPaths() }); n != 0 {
		t.Fatalf("orderedPaths allocates %v per run, want 0", n)
	}
}
