package core

import (
	"fmt"
	"time"

	"mpdash/internal/predict"
)

// This file is the reproduction of the paper's §7.2.2 trace-driven
// simulator: a discrete-time simulation of Algorithm 1 plus the
// Holt-Winters predictor with one slot per RTT, used to compare the online
// scheduler against the offline optimum (Table 2) under realistic
// bandwidth fluctuation.

// SlotSimConfig parameterizes one slot-granularity run.
type SlotSimConfig struct {
	// WiFiMbps and CellMbps are per-slot actual bandwidths; they wrap if
	// the transfer outlives them.
	WiFiMbps []float64
	CellMbps []float64
	// Slot is the slot duration (the paper uses the path RTT).
	Slot time.Duration
	// Size is S in bytes.
	Size int64
	// Deadline is D.
	Deadline time.Duration
	// Alpha is the safety factor; 0 means DefaultAlpha.
	Alpha float64
	// Predictor estimates WiFi throughput; nil means a fresh
	// default Holt-Winters.
	Predictor predict.Predictor
	// SeedSlots pre-observes that many trailing trace samples before the
	// transfer starts, standing in for the estimator state MPTCP already
	// has from preceding traffic. Negative disables seeding; 0 means 5.
	SeedSlots int
}

// SlotSimResult summarizes one run.
type SlotSimResult struct {
	WiFiBytes     float64
	CellularBytes float64
	// CellularFrac is the Table 2 "Cell %" metric.
	CellularFrac float64
	// Missed reports whether the deadline passed before S bytes landed.
	Missed bool
	// MissedBy is how far past the deadline the transfer finished
	// (zero when the deadline was met).
	MissedBy time.Duration
	// Finish is when the last byte landed.
	Finish time.Duration
	// Toggles counts cellular on/off transitions.
	Toggles int
}

// SimulateOnline runs Algorithm 1 at slot granularity against the actual
// bandwidth traces, with the predictor standing in for line 15's "estimated
// WiFi throughput".
func SimulateOnline(cfg SlotSimConfig) (SlotSimResult, error) {
	var res SlotSimResult
	if len(cfg.WiFiMbps) == 0 || len(cfg.CellMbps) == 0 {
		return res, fmt.Errorf("core: empty bandwidth trace")
	}
	if cfg.Size <= 0 || cfg.Slot <= 0 || cfg.Deadline <= 0 {
		return res, fmt.Errorf("core: invalid size=%d slot=%v deadline=%v", cfg.Size, cfg.Slot, cfg.Deadline)
	}
	alpha := cfg.Alpha
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if alpha < 0 || alpha > 1 {
		return res, fmt.Errorf("core: alpha %v", alpha)
	}
	pred := cfg.Predictor
	if pred == nil {
		pred = predict.NewDefaultHoltWinters()
	}
	seed := cfg.SeedSlots
	if seed == 0 {
		seed = 5
	}
	if seed > 0 {
		n := len(cfg.WiFiMbps)
		if seed > n {
			seed = n
		}
		for k := n - seed; k < n; k++ {
			pred.Observe(cfg.WiFiMbps[k] * 1e6)
		}
	}

	slotSec := cfg.Slot.Seconds()
	target := alpha * cfg.Deadline.Seconds()
	sent := 0.0
	size := float64(cfg.Size)
	cellular := false // line 3: cellularEnabled = FALSE

	for j := 0; ; j++ {
		now := float64(j) * slotSec
		if !res.Missed && now >= cfg.Deadline.Seconds() && sent < size {
			// Condition (2): deadline passed; both interfaces run
			// until the transfer drains (§7.2.2).
			res.Missed = true
			if !cellular {
				cellular = true
				res.Toggles++
			}
		}
		if !res.Missed {
			// Lines 13–21 with predicted RWiFi.
			remainingBits := (size - sent) * 8
			windowLeft := target - now
			rwifi := pred.Predict()
			sufficient := windowLeft > 0 && rwifi*windowLeft >= remainingBits
			if sufficient && cellular {
				cellular = false
				res.Toggles++
			} else if !sufficient && !cellular {
				cellular = true
				res.Toggles++
			}
		}

		wifiBw := cfg.WiFiMbps[j%len(cfg.WiFiMbps)] * 1e6
		wb := wifiBw / 8 * slotSec
		cb := 0.0
		if cellular {
			cb = cfg.CellMbps[j%len(cfg.CellMbps)] * 1e6 / 8 * slotSec
		}
		capacity := wb + cb
		if capacity <= 0 {
			pred.Observe(wifiBw)
			continue
		}
		if sent+capacity >= size {
			frac := (size - sent) / capacity
			res.WiFiBytes += wb * frac
			res.CellularBytes += cb * frac
			res.Finish = time.Duration((now + frac*slotSec) * float64(time.Second))
			break
		}
		sent += capacity
		res.WiFiBytes += wb
		res.CellularBytes += cb
		pred.Observe(wifiBw)
	}
	res.CellularFrac = res.CellularBytes / size
	if res.Finish > cfg.Deadline {
		res.Missed = true
		res.MissedBy = res.Finish - cfg.Deadline
	}
	return res, nil
}

// SimulateOptimal computes the offline optimum for the same setup: the
// minimum cellular fraction with perfect bandwidth knowledge (Table 2
// "Cell % Optimal"). Feasible is false when even both paths together miss
// the deadline.
func SimulateOptimal(cfg SlotSimConfig) (cellFrac float64, feasible bool, err error) {
	if len(cfg.WiFiMbps) == 0 || len(cfg.CellMbps) == 0 {
		return 0, false, fmt.Errorf("core: empty bandwidth trace")
	}
	if cfg.Size <= 0 || cfg.Slot <= 0 || cfg.Deadline <= 0 {
		return 0, false, fmt.Errorf("core: invalid size=%d slot=%v deadline=%v", cfg.Size, cfg.Slot, cfg.Deadline)
	}
	slots := int(cfg.Deadline / cfg.Slot)
	wifi := make([]float64, slots)
	cell := make([]float64, slots)
	for j := 0; j < slots; j++ {
		wifi[j] = cfg.WiFiMbps[j%len(cfg.WiFiMbps)]
		cell[j] = cfg.CellMbps[j%len(cfg.CellMbps)]
	}
	cellBytes, ok := OptimalTwoPath(wifi, cell, cfg.Slot, cfg.Size)
	return cellBytes / float64(cfg.Size), ok, nil
}
