package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mpdash/internal/mptcp"
	"mpdash/internal/sim"
	"mpdash/internal/trace"
)

// Property-based tests on the scheduler's core invariants.

// randCfg builds a random but feasible slot-sim configuration.
func randCfg(seed int64) SlotSimConfig {
	rng := rand.New(rand.NewSource(seed))
	slot := 50 * time.Millisecond
	wifiMean := 1 + rng.Float64()*10
	cellMean := 1 + rng.Float64()*10
	sigma := rng.Float64() * 0.3
	n := 2000
	deadline := time.Duration(5+rng.Intn(20)) * time.Second
	// Size chosen so the aggregate can always make it with ~25% margin.
	capacity := (wifiMean + cellMean) * 1e6 / 8 * deadline.Seconds()
	size := int64(capacity * (0.2 + 0.55*rng.Float64()))
	return SlotSimConfig{
		WiFiMbps: trace.Synthetic("w", wifiMean, sigma, slot, n, seed).Mbps,
		CellMbps: trace.Synthetic("c", cellMean, sigma, slot, n, seed+1).Mbps,
		Slot:     slot,
		Size:     size,
		Deadline: deadline,
	}
}

func TestPropertyOnlineNeverBeatsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		cfg := randCfg(seed)
		online, err := SimulateOnline(cfg)
		if err != nil {
			return false
		}
		opt, feasible, err := SimulateOptimal(cfg)
		if err != nil || !feasible {
			return false
		}
		// Optimality: the online scheduler can never use less cellular
		// than the offline optimum (beyond slot-quantization jitter).
		slack := 2 * cfg.CellMbps[0] * 1e6 / 8 * cfg.Slot.Seconds()
		return online.CellularBytes >= opt*float64(cfg.Size)-slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeliversExactlySize(t *testing.T) {
	f := func(seed int64) bool {
		cfg := randCfg(seed)
		res, err := SimulateOnline(cfg)
		if err != nil {
			return false
		}
		got := res.WiFiBytes + res.CellularBytes
		return got >= float64(cfg.Size)*0.999 && got <= float64(cfg.Size)*1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyAmpleMarginNeverMisses(t *testing.T) {
	// With ≥25% aggregate capacity margin, the online scheduler must not
	// miss even under 30% bandwidth noise.
	f := func(seed int64) bool {
		cfg := randCfg(seed)
		res, err := SimulateOnline(cfg)
		if err != nil {
			return false
		}
		return !res.Missed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCellularFracWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		cfg := randCfg(seed)
		res, err := SimulateOnline(cfg)
		if err != nil {
			return false
		}
		return res.CellularFrac >= 0 && res.CellularFrac <= 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPreferCellularPolicy(t *testing.T) {
	// §3.3: the two preference policies are symmetric. With cellular as
	// the primary (preferred when moving) and WiFi as the costly
	// secondary, ample LTE must keep WiFi dark.
	s := sim.New()
	c, err := mptcp.NewConn(s, mptcp.Config{
		Paths: []mptcp.PathSpec{
			{Name: "lte", Rate: trace.Constant("l", 20, time.Second, 1), RTT: 60 * time.Millisecond, Cost: 0.1, Primary: true},
			{Name: "wifi", Rate: trace.Constant("w", 10, time.Second, 1), RTT: 50 * time.Millisecond, Cost: 1.0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sch, err := NewScheduler(s, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both paths.
	wt, _ := c.StartTransfer(2_000_000)
	if !wt.RunUntilComplete(60 * time.Second) {
		t.Fatal("warmup stuck")
	}
	wifi0 := c.Path("wifi").DeliveredBytes()
	tr, err := c.StartTransfer(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sch.Govern(tr)
	if err := sch.Enable(5_000_000, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !tr.RunUntilComplete(5 * time.Minute) {
		t.Fatal("transfer stuck")
	}
	if wifiBytes := c.Path("wifi").DeliveredBytes() - wifi0; wifiBytes > 100_000 {
		t.Errorf("costly WiFi carried %d bytes under prefer-cellular policy", wifiBytes)
	}
}
