package core

import (
	"fmt"
	"math"
	"time"
)

// This file implements the paper's general formulation (§4): choosing which
// (interface, slot) pairs carry data is a 0-1 min-cost knapsack — minimize
// Σ c(i,j)·b(i,j)·x(i,j)·d subject to Σ b(i,j)·x(i,j)·d ≥ S — plus the
// closed-form two-path optimum used as the "Cell % Optimal" column of
// Table 2.

// SlotPlan is the offline solver's output: which slots of which interface
// carry data, and the resulting cost and byte split.
type SlotPlan struct {
	// Use[i][j] is true iff interface i transmits during slot j.
	Use [][]bool
	// Cost is the objective value Σ c·b·x·d.
	Cost float64
	// Bytes[i] is the total bytes carried per interface.
	Bytes []float64
	// Feasible is false when even using every slot of every interface
	// cannot deliver S bytes by the deadline.
	Feasible bool
}

// MinCostSchedule solves the 0-1 min-knapsack exactly by dynamic
// programming over discretized demand. bw[i][j] is the bandwidth of
// interface i in slot j (bits/s), cost[i] the unit-data cost of interface
// i (per byte), d the slot duration, and S the required bytes.
//
// Complexity is O(N·D·S/q) where q is the byte quantum; the paper quotes
// O(N·D·S), the same DP. Quantum q trades precision for speed; callers
// pass something like 1 KiB.
func MinCostSchedule(bw [][]float64, cost []float64, d time.Duration, S int64, q int64) (*SlotPlan, error) {
	n := len(bw)
	if n == 0 || len(cost) != n {
		return nil, fmt.Errorf("core: %d interfaces with %d costs", n, len(cost))
	}
	if S <= 0 || q <= 0 || d <= 0 {
		return nil, fmt.Errorf("core: invalid S=%d q=%d d=%v", S, q, d)
	}
	slots := len(bw[0])
	for i := range bw {
		if len(bw[i]) != slots {
			return nil, fmt.Errorf("core: ragged bandwidth matrix")
		}
	}

	type item struct {
		iface, slot int
		bytes       float64
		value       float64
	}
	var items []item
	var totalBytes float64
	for i := 0; i < n; i++ {
		for j := 0; j < slots; j++ {
			b := bw[i][j] / 8 * d.Seconds() // bytes this slot can carry
			if b <= 0 {
				continue
			}
			items = append(items, item{i, j, b, cost[i] * b})
			totalBytes += b
		}
	}
	plan := &SlotPlan{Bytes: make([]float64, n)}
	plan.Use = make([][]bool, n)
	for i := range plan.Use {
		plan.Use[i] = make([]bool, slots)
	}
	if totalBytes < float64(S) {
		plan.Feasible = false
		return plan, nil
	}
	plan.Feasible = true

	// Min-knapsack via the standard duality: dp[k][w] is the minimum cost
	// of covering at least w·q bytes using the first k items; coverage
	// beyond W clamps to W. A full table keeps reconstruction sound.
	// Both the demand and the item capacities are rounded to the quantum,
	// so quantization error stays within ±q/2 per item instead of
	// accumulating one-sided.
	W := int(math.Round(float64(S) / float64(q)))
	if W == 0 {
		W = 1
	}
	const inf = math.MaxFloat64 / 4
	weight := make([]int, len(items))
	for k, it := range items {
		weight[k] = int(math.Round(it.bytes / float64(q)))
		if weight[k] == 0 {
			weight[k] = 1
		}
	}
	dp := make([][]float64, len(items)+1)
	dp[0] = make([]float64, W+1)
	for w := 1; w <= W; w++ {
		dp[0][w] = inf
	}
	for k, it := range items {
		row := make([]float64, W+1)
		prev := dp[k]
		copy(row, prev)
		for w := 1; w <= W; w++ {
			src := w - weight[k]
			if src < 0 {
				src = 0
			}
			if cand := prev[src] + it.value; cand < row[w] {
				row[w] = cand
			}
		}
		dp[k+1] = row
	}
	if dp[len(items)][W] >= inf {
		plan.Feasible = false
		return plan, nil
	}
	plan.Cost = dp[len(items)][W]
	// Reconstruct by walking the table backwards.
	w := W
	for k := len(items); k >= 1; k-- {
		if dp[k][w] == dp[k-1][w] {
			continue // item k-1 not used at this state
		}
		it := items[k-1]
		plan.Use[it.iface][it.slot] = true
		plan.Bytes[it.iface] += it.bytes
		w -= weight[k-1]
		if w < 0 {
			w = 0
		}
	}
	return plan, nil
}

// OptimalTwoPath computes the Table 2 "Cell % Optimal" quantity in closed
// form for the N=2 preference case (WiFi strictly cheaper than cellular):
// the minimum cellular bytes needed to deliver S bytes within the deadline
// is S minus everything WiFi can carry, floored at zero; fractional slot
// use is allowed at the margin, matching how a real transfer would stop
// mid-slot. Returns the cellular byte count and whether the deadline is
// feasible at all.
func OptimalTwoPath(wifiMbps, cellMbps []float64, slot time.Duration, S int64) (cellBytes float64, feasible bool) {
	var wifiTotal, cellTotal float64
	sec := slot.Seconds()
	for _, m := range wifiMbps {
		wifiTotal += m * 1e6 / 8 * sec
	}
	for _, m := range cellMbps {
		cellTotal += m * 1e6 / 8 * sec
	}
	need := float64(S) - wifiTotal
	if need <= 0 {
		return 0, true
	}
	if need > cellTotal {
		return cellTotal, false
	}
	return need, true
}
