package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestOptimalTwoPathClosedForm(t *testing.T) {
	// Paper Table 2, SYNTH rows: WiFi 3.8 Mbps, 5 MB file.
	// D=8s: optimal cell ≈ (5MB - 3.8Mbps*8s) / 5MB = 24%.
	slot := 50 * time.Millisecond
	mk := func(mbps float64, secs float64) []float64 {
		n := int(secs / slot.Seconds())
		out := make([]float64, n)
		for i := range out {
			out[i] = mbps
		}
		return out
	}
	cases := []struct {
		deadlineSec float64
		wantFrac    float64
	}{
		{8, 0.24}, {9, 0.145}, {10, 0.05},
	}
	for _, c := range cases {
		cell, ok := OptimalTwoPath(mk(3.8, c.deadlineSec), mk(3.0, c.deadlineSec), slot, 5_000_000)
		if !ok {
			t.Fatalf("D=%vs infeasible", c.deadlineSec)
		}
		frac := cell / 5_000_000
		if math.Abs(frac-c.wantFrac) > 0.01 {
			t.Errorf("D=%vs: optimal cell frac = %.3f, want ≈%.3f", c.deadlineSec, frac, c.wantFrac)
		}
	}
}

func TestOptimalTwoPathInfeasible(t *testing.T) {
	slot := time.Second
	cell, ok := OptimalTwoPath([]float64{1}, []float64{1}, slot, 10_000_000)
	if ok {
		t.Error("clearly infeasible case reported feasible")
	}
	if cell <= 0 {
		t.Error("infeasible case should still report cellular capacity used")
	}
}

func TestOptimalTwoPathWiFiSufficient(t *testing.T) {
	cell, ok := OptimalTwoPath([]float64{100, 100}, []float64{10, 10}, time.Second, 1_000_000)
	if !ok || cell != 0 {
		t.Errorf("cell=%v ok=%v, want 0,true", cell, ok)
	}
}

func TestMinCostScheduleValidation(t *testing.T) {
	d := time.Second
	if _, err := MinCostSchedule(nil, nil, d, 100, 10); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := MinCostSchedule([][]float64{{1}}, []float64{1, 2}, d, 100, 10); err == nil {
		t.Error("cost length mismatch accepted")
	}
	if _, err := MinCostSchedule([][]float64{{1}, {1, 2}}, []float64{1, 2}, d, 100, 10); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := MinCostSchedule([][]float64{{1}}, []float64{1}, d, 0, 10); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := MinCostSchedule([][]float64{{1}}, []float64{1}, d, 100, 0); err == nil {
		t.Error("zero quantum accepted")
	}
}

func TestMinCostScheduleInfeasible(t *testing.T) {
	// One slot, 1 bit/s: cannot carry a megabyte.
	plan, err := MinCostSchedule([][]float64{{1}}, []float64{1}, time.Second, 1_000_000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Feasible {
		t.Error("infeasible plan reported feasible")
	}
}

func TestMinCostSchedulePrefersCheapInterface(t *testing.T) {
	// Two interfaces, each with 2 slots of 8 Mbps (1 MB/slot at 1s).
	// Need 2 MB: the cheap interface's two slots alone suffice, so the
	// expensive one must carry nothing.
	bw := [][]float64{
		{8e6, 8e6},
		{8e6, 8e6},
	}
	plan, err := MinCostSchedule(bw, []float64{1, 10}, time.Second, 2_000_000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("feasible case reported infeasible")
	}
	if plan.Bytes[1] != 0 {
		t.Errorf("expensive interface carried %v bytes", plan.Bytes[1])
	}
	if plan.Bytes[0] < 2_000_000*0.99 {
		t.Errorf("cheap interface carried only %v bytes", plan.Bytes[0])
	}
}

func TestMinCostScheduleSpillsToExpensive(t *testing.T) {
	// Cheap interface can carry 1 MB total, need 1.5 MB: expensive must
	// carry the remainder.
	bw := [][]float64{
		{8e6},
		{8e6},
	}
	plan, err := MinCostSchedule(bw, []float64{1, 10}, time.Second, 1_500_000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("feasible case reported infeasible")
	}
	if plan.Bytes[0] == 0 || plan.Bytes[1] == 0 {
		t.Errorf("split = %v, both interfaces must carry", plan.Bytes)
	}
}

// bruteForce enumerates all 2^items subsets for small instances.
func bruteForce(bw [][]float64, cost []float64, d time.Duration, S int64) (best float64, feasible bool) {
	type item struct{ bytes, value float64 }
	var items []item
	for i := range bw {
		for _, b := range bw[i] {
			by := b / 8 * d.Seconds()
			if by > 0 {
				items = append(items, item{by, cost[i] * by})
			}
		}
	}
	best = math.MaxFloat64
	for mask := 0; mask < 1<<len(items); mask++ {
		var w, v float64
		for k, it := range items {
			if mask&(1<<k) != 0 {
				w += it.bytes
				v += it.value
			}
		}
		if w >= float64(S) && v < best {
			best = v
			feasible = true
		}
	}
	return best, feasible
}

func TestMinCostScheduleMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2
		slots := 1 + rng.Intn(4)
		bw := make([][]float64, n)
		for i := range bw {
			bw[i] = make([]float64, slots)
			for j := range bw[i] {
				bw[i][j] = float64(1+rng.Intn(8)) * 8e6 // whole MBs per slot
			}
		}
		cost := []float64{float64(1 + rng.Intn(3)), float64(1 + rng.Intn(9))}
		S := int64((1 + rng.Intn(slots*4)) * 1_000_000)
		plan, err := MinCostSchedule(bw, cost, time.Second, S, 1_000_000)
		if err != nil {
			return false
		}
		want, feasible := bruteForce(bw, cost, time.Second, S)
		if plan.Feasible != feasible {
			return false
		}
		if !feasible {
			return true
		}
		return math.Abs(plan.Cost-want) < want*1e-9+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMinCostSchedulePlanInternallyConsistent(t *testing.T) {
	bw := [][]float64{
		{8e6, 4e6, 8e6},
		{6e6, 6e6, 6e6},
	}
	plan, err := MinCostSchedule(bw, []float64{1, 5}, time.Second, 2_200_000, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var total, cost float64
	costs := []float64{1, 5}
	for i := range plan.Use {
		var bytes float64
		for j, used := range plan.Use[i] {
			if used {
				bytes += bw[i][j] / 8
			}
		}
		if math.Abs(bytes-plan.Bytes[i]) > 1 {
			t.Errorf("interface %d: Use implies %v bytes, Bytes says %v", i, bytes, plan.Bytes[i])
		}
		total += bytes
		cost += bytes * costs[i]
	}
	if total < 2_200_000 {
		t.Errorf("plan covers %v < S", total)
	}
	if math.Abs(cost-plan.Cost) > plan.Cost*0.01+1 {
		t.Errorf("recomputed cost %v != plan.Cost %v", cost, plan.Cost)
	}
}
