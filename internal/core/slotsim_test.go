package core

import (
	"testing"
	"time"

	"mpdash/internal/trace"
)

func synthCfg(sigma float64, deadline time.Duration, seed int64) SlotSimConfig {
	slot := 50 * time.Millisecond
	w := trace.Synthetic("w", 3.8, sigma, slot, 1200, seed)
	c := trace.Synthetic("c", 3.0, sigma, slot, 1200, seed+1)
	return SlotSimConfig{
		WiFiMbps: w.Mbps,
		CellMbps: c.Mbps,
		Slot:     slot,
		Size:     5_000_000,
		Deadline: deadline,
	}
}

func TestSimulateOnlineValidation(t *testing.T) {
	bad := []SlotSimConfig{
		{},
		{WiFiMbps: []float64{1}, CellMbps: []float64{1}, Slot: time.Second, Size: 0, Deadline: time.Second},
		{WiFiMbps: []float64{1}, CellMbps: []float64{1}, Slot: 0, Size: 1, Deadline: time.Second},
		{WiFiMbps: []float64{1}, CellMbps: []float64{1}, Slot: time.Second, Size: 1, Deadline: 0},
		{WiFiMbps: []float64{1}, CellMbps: []float64{1}, Slot: time.Second, Size: 1, Deadline: time.Second, Alpha: 2},
	}
	for i, cfg := range bad {
		if _, err := SimulateOnline(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, _, err := SimulateOptimal(SlotSimConfig{}); err == nil {
		t.Error("SimulateOptimal accepted empty config")
	}
}

func TestOnlineMeetsDeadlineOnSynthetic(t *testing.T) {
	// Table 2: synthetic profiles never miss the deadline.
	for _, sigma := range []float64{0.10, 0.30} {
		for _, dl := range []time.Duration{8 * time.Second, 9 * time.Second, 10 * time.Second} {
			res, err := SimulateOnline(synthCfg(sigma, dl, 42))
			if err != nil {
				t.Fatal(err)
			}
			if res.Missed {
				t.Errorf("sigma=%v D=%v missed by %v", sigma, dl, res.MissedBy)
			}
			if res.WiFiBytes+res.CellularBytes < 5_000_000*0.999 {
				t.Errorf("sigma=%v D=%v delivered %v", sigma, dl, res.WiFiBytes+res.CellularBytes)
			}
		}
	}
}

func TestOnlineCloseToOptimal(t *testing.T) {
	// Table 2 headline: online within ~10 percentage points of optimal.
	for _, dl := range []time.Duration{8 * time.Second, 9 * time.Second, 10 * time.Second} {
		cfg := synthCfg(0.10, dl, 7)
		res, err := SimulateOnline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		opt, feasible, err := SimulateOptimal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !feasible {
			t.Fatalf("D=%v infeasible", dl)
		}
		diff := res.CellularFrac - opt
		if diff < -0.005 {
			t.Errorf("D=%v online %.3f beat optimal %.3f: optimality violated", dl, res.CellularFrac, opt)
		}
		if diff > 0.10 {
			t.Errorf("D=%v online %.3f vs optimal %.3f: diff %.3f > 0.10", dl, res.CellularFrac, opt, diff)
		}
	}
}

func TestLongerDeadlineLessCellular(t *testing.T) {
	// Fig. 4 shape: more slack, fewer cellular bytes.
	var prev float64 = 2
	for _, dl := range []time.Duration{8 * time.Second, 9 * time.Second, 10 * time.Second} {
		res, err := SimulateOnline(synthCfg(0.10, dl, 11))
		if err != nil {
			t.Fatal(err)
		}
		if res.CellularFrac >= prev {
			t.Errorf("D=%v cellular frac %.3f not below previous %.3f", dl, res.CellularFrac, prev)
		}
		prev = res.CellularFrac
	}
}

func TestSmallerAlphaMoreCellular(t *testing.T) {
	// §7.2.1: α=0.8 still saves, but less than α=1.
	cfg1 := synthCfg(0.10, 10*time.Second, 3)
	cfg8 := synthCfg(0.10, 10*time.Second, 3)
	cfg8.Alpha = 0.8
	r1, err := SimulateOnline(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := SimulateOnline(cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if r8.CellularBytes <= r1.CellularBytes {
		t.Errorf("alpha=0.8 cellular %v should exceed alpha=1 cellular %v", r8.CellularBytes, r1.CellularBytes)
	}
	if r8.Missed {
		t.Error("alpha=0.8 missed the deadline")
	}
}

func TestPerfectPredictionNearOptimal(t *testing.T) {
	// §4 "Optimality": with perfect bandwidth knowledge Algorithm 1 is
	// optimal. A constant trace makes Holt-Winters exact, so online must
	// land within one slot's worth of bytes of the optimum.
	slot := 50 * time.Millisecond
	n := 400
	w := make([]float64, n)
	c := make([]float64, n)
	for i := range w {
		w[i], c[i] = 3.8, 3.0
	}
	cfg := SlotSimConfig{WiFiMbps: w, CellMbps: c, Slot: slot, Size: 5_000_000, Deadline: 9 * time.Second}
	res, err := SimulateOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := SimulateOptimal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slotBytes := 3.0 * 1e6 / 8 * slot.Seconds() * 3 // tolerance: 3 cellular slots
	if res.CellularBytes > opt*5_000_000+slotBytes {
		t.Errorf("perfect-knowledge online %.0f bytes vs optimal %.0f", res.CellularBytes, opt*5_000_000)
	}
	if res.Missed {
		t.Error("missed with perfect prediction")
	}
}

func TestWiFiAloneSufficientNoCellular(t *testing.T) {
	// Office-like row of Table 2: D=18s, 50 MB, WiFi 28.4 Mbps stable →
	// zero cellular.
	slot := 50 * time.Millisecond
	w := trace.Synthetic("w", 28.4, 0.05, slot, 1000, 5)
	c := trace.Synthetic("c", 19.1, 0.05, slot, 1000, 6)
	cfg := SlotSimConfig{WiFiMbps: w.Mbps, CellMbps: c.Mbps, Slot: slot, Size: 50_000_000, Deadline: 18 * time.Second}
	res, err := SimulateOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CellularFrac > 0.02 {
		t.Errorf("cellular frac %.3f, want ≈0", res.CellularFrac)
	}
	if res.Missed {
		t.Error("missed")
	}
}

func TestImpossibleDeadlineUsesBothAndMisses(t *testing.T) {
	slot := 50 * time.Millisecond
	w := []float64{1.0}
	c := []float64{1.0}
	cfg := SlotSimConfig{WiFiMbps: w, CellMbps: c, Slot: slot, Size: 5_000_000, Deadline: 2 * time.Second}
	res, err := SimulateOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Missed {
		t.Error("impossible deadline not reported missed")
	}
	if res.CellularBytes == 0 {
		t.Error("scheduler should have used cellular when doomed")
	}
	if res.Finish <= cfg.Deadline {
		t.Error("finish should be past deadline")
	}
	_, feasible, err := SimulateOptimal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if feasible {
		t.Error("optimal should also be infeasible")
	}
}

func TestSeedSlotsDisabled(t *testing.T) {
	cfg := synthCfg(0.10, 9*time.Second, 13)
	cfg.SeedSlots = -1
	res, err := SimulateOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Without seeding the first prediction is 0 → cellular on from slot 0;
	// it still must complete.
	if res.WiFiBytes+res.CellularBytes < 5_000_000*0.999 {
		t.Errorf("unseeded run delivered %v", res.WiFiBytes+res.CellularBytes)
	}
}

func TestTogglesBounded(t *testing.T) {
	// The scheduler should not flap wildly: on a mildly noisy trace the
	// toggle count stays far below the slot count.
	res, err := SimulateOnline(synthCfg(0.30, 9*time.Second, 21))
	if err != nil {
		t.Fatal(err)
	}
	if res.Toggles > 60 {
		t.Errorf("toggles = %d, excessive flapping", res.Toggles)
	}
}
