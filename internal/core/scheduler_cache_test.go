package core

import (
	"testing"
	"time"

	"mpdash/internal/trace"
)

// TestHitProbabilityDampsEngage drives the same deadline-pressured
// transfer twice: undamped, Algorithm 1 must engage the costly LTE path
// (WiFi alone cannot cover 5 MB in 9 s); with a certain cache hit the
// damped demand fits the primary and LTE stays parked.
func TestHitProbabilityDampsEngage(t *testing.T) {
	w := trace.Constant("w", 3.8, time.Second, 1)
	l := trace.Constant("l", 3.0, time.Second, 1)

	run := func(hitProb float64) bool {
		s, c, sch := rig(t, w, l, 1)
		warm(t, c)
		sch.HitProbability = hitProb
		tr, err := c.StartTransfer(5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		sch.Govern(tr)
		if err := sch.Enable(5_000_000, 9*time.Second); err != nil {
			t.Fatal(err)
		}
		s.Advance(500 * time.Millisecond)
		engaged := c.Path("lte").Enabled()
		sch.Disable()
		tr.RunUntilComplete(5 * time.Minute)
		return engaged
	}

	if !run(0) {
		t.Error("undamped: LTE parked despite uncoverable demand")
	}
	if run(1) {
		t.Error("certain hit: LTE engaged despite damped demand fitting WiFi")
	}
	// Out-of-range probabilities clamp to 1 rather than going negative.
	if run(5) {
		t.Error("clamped probability >1 still engaged LTE")
	}
}

// TestHitDampBounds: a custom damp bounds the discount; an absurd value
// falls back to the default.
func TestHitDampBounds(t *testing.T) {
	w := trace.Constant("w", 3.8, time.Second, 1)
	l := trace.Constant("l", 3.0, time.Second, 1)

	run := func(damp float64) bool {
		s, c, sch := rig(t, w, l, 1)
		warm(t, c)
		sch.HitProbability = 1
		sch.HitDamp = damp
		tr, err := c.StartTransfer(5_000_000)
		if err != nil {
			t.Fatal(err)
		}
		sch.Govern(tr)
		if err := sch.Enable(5_000_000, 9*time.Second); err != nil {
			t.Fatal(err)
		}
		s.Advance(500 * time.Millisecond)
		engaged := c.Path("lte").Enabled()
		sch.Disable()
		tr.RunUntilComplete(5 * time.Minute)
		return engaged
	}

	// Damp 0.1 shaves only 10% off the demand — not enough to fit WiFi.
	if !run(0.1) {
		t.Error("damp 0.1 parked LTE despite residual pressure")
	}
	// Damp >1 is invalid and falls back to the 0.7 default, which parks.
	if run(1.5) {
		t.Error("invalid damp did not fall back to the parking default")
	}
}
