// Package core implements the paper's primary contribution: the MP-DASH
// deadline-aware scheduler (§4). Given a transfer of S bytes with a
// deadline window D and a user preference over network paths, it drives
// the preferred path at full capacity and toggles costlier paths on only
// when the preferred path alone would miss the deadline, using a
// Holt-Winters forecast of path throughput. The package also contains the
// offline optimal solver (0-1 min-knapsack, offline.go) and the
// slot-granularity trace simulator used for Table 2 (slotsim.go).
package core

import (
	"fmt"
	"strconv"
	"time"

	"mpdash/internal/mptcp"
	"mpdash/internal/obs"
	"mpdash/internal/sim"
)

// DefaultAlpha is the safety factor α of Algorithm 1: the target finish
// time is α·D, so α < 1 compensates for throughput-estimation error at the
// price of more cellular data. The paper's headline experiments use 1.0.
const DefaultAlpha = 1.0

// DefaultHitDamp is the default ceiling on cache-hint demand shrinkage:
// even a certain hit keeps 30% of the demand in the pressure test, so a
// mispredicted edge eviction degrades to a late engage, not a miss.
const DefaultHitDamp = 0.7

// Scheduler is the online MP-DASH scheduler attached to one multipath
// connection. It mirrors the kernel component of the paper: activated per
// transfer via Enable (the MP_DASH_ENABLE socket option), deactivated when
// the S bytes finish, the deadline passes, or Disable (MP_DASH_DISABLE) is
// called.
type Scheduler struct {
	sim  *sim.Simulator
	conn *mptcp.Conn

	// Alpha is the safety factor in (0, 1].
	Alpha float64
	// EvalInterval bounds how stale a decision can get when no data is
	// arriving (e.g. during a WiFi blackout). Defaults to the connection
	// sample interval via NewScheduler.
	EvalInterval time.Duration
	// MaxCost, when positive, is a hard ceiling: secondary paths whose
	// current cost exceeds it are never enabled, even at the price of a
	// missed deadline. Policies (internal/policy) use it to express
	// "quota exhausted — degrade rather than pay".
	MaxCost float64
	// HitProbability is the transfer's edge-cache hit probability in
	// [0, 1]: the fraction of the remaining bytes expected to arrive at
	// local-store speed rather than origin-path speed. The evaluation
	// shrinks the demanded bytes by HitDamp·HitProbability before the
	// prefix-cover walk, so cache-hot transfers keep costly secondaries
	// parked. Zero (the default) leaves Algorithm 1 untouched.
	HitProbability float64
	// HitDamp bounds how much a certain hit can shrink the demand.
	// Non-positive or >1 selects DefaultHitDamp.
	HitDamp float64

	active     bool
	size       int64
	sent       int64
	enabledAt  time.Duration
	deadlineAt time.Duration

	// desired[name] is the state we last requested for each secondary
	// path, so we only signal on change.
	desired map[string]bool

	// scratch is the reusable path-ordering buffer of evaluate(), so the
	// per-packet decision loop stays allocation-free.
	scratch []*mptcp.Path

	// Obs receives the scheduler's decision events (sched.enable /
	// sched.toggle / sched.disable / sched.miss), stamped with simulator
	// time; nil = telemetry off. Set it (or call Instrument) before
	// Enable. The scheduler runs on the simulator's single goroutine, so
	// no synchronization is needed.
	Obs obs.Sink

	// Tracer, when set, records one span trace per governed transfer
	// (session TraceSession, chunk = activation ordinal): each secondary
	// path's enabled interval becomes a sched-category span, and the
	// transfer finishes with an ok or missed verdict. The scheduler runs
	// in simulator time, so construct the Tracer with a Now that maps the
	// virtual clock onto wall time (e.g. epoch.Add(sim.Now())). Nil = off
	// — evaluate() stays allocation-free.
	Tracer       *obs.Tracer
	TraceSession int

	trace       *obs.Trace           // in-flight transfer's trace
	traceMissed bool                 // this activation passed its deadline
	pathSpans   map[string]*obs.Span // open enabled-interval spans

	toggles    int64
	misses     int64
	activation int64
}

// Instrument wires the scheduler to t: decision events to the journal
// and scrape-time collectors over the toggle/miss/activation counters.
func (s *Scheduler) Instrument(t *obs.Telemetry) {
	if t == nil {
		return
	}
	s.Obs = t
	r := t.Registry
	r.CounterFunc("mpdash_sched_toggles_total", "Path enable/disable signals sent by the scheduler.",
		nil, func() float64 { return float64(s.Toggles()) })
	r.CounterFunc("mpdash_sched_deadline_misses_total", "Governed transfers that passed their deadline before completing.",
		nil, func() float64 { return float64(s.DeadlineMisses()) })
	r.CounterFunc("mpdash_sched_activations_total", "Transfers governed by MP-DASH.",
		nil, func() float64 { return float64(s.Activations()) })
}

// emit journals one decision event at the current simulator time.
func (s *Scheduler) emit(e obs.Event) {
	if s.Obs == nil {
		return
	}
	e.Sim = s.sim.Now()
	s.Obs.Emit(e)
}

// NewScheduler creates a scheduler over conn with the given α.
func NewScheduler(s *sim.Simulator, conn *mptcp.Conn, alpha float64) (*Scheduler, error) {
	if s == nil || conn == nil {
		return nil, fmt.Errorf("core: nil simulator or connection")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("core: alpha %v outside (0, 1]", alpha)
	}
	sch := &Scheduler{
		sim:          s,
		conn:         conn,
		Alpha:        alpha,
		EvalInterval: mptcp.DefaultSampleInterval,
		desired:      make(map[string]bool),
	}
	return sch, nil
}

// Active reports whether MP-DASH is currently governing a transfer.
func (s *Scheduler) Active() bool { return s.active }

// Toggles returns how many path enable/disable signals were sent.
func (s *Scheduler) Toggles() int64 { return s.toggles }

// DeadlineMisses returns how many governed transfers passed their deadline
// before completing.
func (s *Scheduler) DeadlineMisses() int64 { return s.misses }

// Activations returns how many transfers were governed.
func (s *Scheduler) Activations() int64 { return s.activation }

// Enable activates MP-DASH for the next size bytes with deadline window
// window (the MP_DASH_ENABLE socket option, §3.2). Per Algorithm 1 the
// secondary paths start disabled; the evaluation loop re-enables them the
// moment the preferred path alone cannot make the deadline. The transfer
// must be attached via Govern for progress-driven evaluation.
func (s *Scheduler) Enable(size int64, window time.Duration) error {
	if size <= 0 {
		return fmt.Errorf("core: size %d", size)
	}
	if window <= 0 {
		return fmt.Errorf("core: deadline window %v", window)
	}
	s.active = true
	s.activation++
	s.size = size
	s.sent = 0
	s.enabledAt = s.sim.Now()
	s.deadlineAt = s.enabledAt + window
	s.emit(obs.NewEvent("sched.enable").
		WithNum("size", float64(size)).
		WithNum("window_s", window.Seconds()))
	if s.Tracer != nil {
		s.trace = s.Tracer.StartTrace(s.TraceSession, int(s.activation)-1, -1)
		s.trace.SetDeadline(window)
		s.traceMissed = false
	}
	// Line 3 of Algorithm 1: cellularEnabled = FALSE. We evaluate
	// immediately rather than blindly disabling, so a clearly-infeasible
	// deadline keeps the secondary paths on from the first byte.
	s.evaluate()
	s.scheduleTick()
	return nil
}

// Disable deactivates MP-DASH (the MP_DASH_DISABLE socket option) and
// returns the connection to stock MPTCP behaviour: all paths enabled.
func (s *Scheduler) Disable() {
	if !s.active {
		return
	}
	s.active = false
	s.emit(obs.NewEvent("sched.disable"))
	// Close the trace before enableAll: the stand-down toggles restore
	// stock MPTCP and are not part of the governed transfer.
	if s.trace != nil {
		for name, sp := range s.pathSpans {
			sp.End()
			delete(s.pathSpans, name)
		}
		if s.traceMissed {
			s.trace.Finish(obs.TraceMissed)
		} else {
			s.trace.Finish(obs.TraceOK)
		}
		s.trace = nil
	}
	s.enableAll()
}

// Tick runs one Algorithm 1 evaluation pass immediately, outside the
// progress- and timer-driven loops — the hook the perf harness
// (internal/perf) and external policy triggers use to re-evaluate on
// their own cadence. A no-op while no transfer is governed.
func (s *Scheduler) Tick() {
	if !s.active {
		return
	}
	s.evaluate()
}

// Govern wires the scheduler to a transfer so that every delivered segment
// re-runs the Algorithm 1 check, exactly like the kernel loop that
// re-evaluates after sending each packet.
func (s *Scheduler) Govern(t *mptcp.Transfer) {
	prev := t.OnProgress
	t.OnProgress = func(delivered int64) {
		if prev != nil {
			prev(delivered)
		}
		if !s.active {
			return
		}
		s.sent = delivered
		if delivered >= s.size {
			// Condition (1): S bytes transferred.
			s.Disable()
			return
		}
		s.evaluate()
	}
}

// scheduleTick keeps evaluating during data droughts.
func (s *Scheduler) scheduleTick() {
	if !s.active {
		return
	}
	s.sim.Schedule(s.EvalInterval, func() {
		if !s.active {
			return
		}
		s.evaluate()
		s.scheduleTick()
	})
}

// evaluate runs lines 13–21 of Algorithm 1, generalized to N paths sorted
// by cost (§4 "Optimality"): feed data from low-cost to high-cost
// interfaces, enabling the minimal prefix whose predicted capacity covers
// the remaining bytes within the shrunken window α·D.
func (s *Scheduler) evaluate() {
	now := s.sim.Now()
	if now >= s.deadlineAt {
		// Condition (2): deadline passed. "After that both interfaces
		// will always be used" (§7.2.2).
		s.misses++
		s.emit(obs.NewEvent("sched.miss").
			WithNum("remaining_bytes", float64(s.size-s.sent)))
		if s.trace != nil {
			s.traceMissed = true
			s.trace.SetOverrun(now - s.deadlineAt + 1)
		}
		s.Disable()
		return
	}
	remaining := s.size - s.sent
	if remaining <= 0 {
		s.Disable()
		return
	}
	// Target window per Algorithm 1: α·D − timeSpent.
	window := time.Duration(s.Alpha*float64(s.deadlineAt-s.enabledAt)) - (now - s.enabledAt)
	if window <= 0 {
		// Inside the safety margin: push everything.
		s.setAll(true)
		return
	}

	paths := s.orderedPaths()

	needBits := float64(remaining * 8)
	// Cache-aware damping: bytes the edge serves from its store arrive
	// far faster than the origin-path estimate predicts, so the expected
	// hit fraction is discounted from the demand before the cover walk.
	if hp := s.HitProbability; hp > 0 {
		if hp > 1 {
			hp = 1
		}
		damp := s.HitDamp
		if damp <= 0 || damp > 1 {
			damp = DefaultHitDamp
		}
		needBits *= 1 - damp*hp
	}
	windowSec := window.Seconds()
	var capacityBits float64
	covered := false
	for _, p := range paths {
		if p.Primary {
			// The preferred path always runs; it contributes its
			// predicted throughput.
			capacityBits += s.conn.EstimatedThroughput(p.Name) * windowSec
			covered = capacityBits >= needBits
			continue
		}
		if s.MaxCost > 0 && p.Cost > s.MaxCost {
			// Over the ceiling: this path is off the table entirely.
			s.setPath(p.Name, false)
			continue
		}
		want := !covered
		s.setPath(p.Name, want)
		if want {
			est := s.conn.EstimatedThroughput(p.Name)
			if est <= 0 {
				// Never-measured path: assume it suffices so we do not
				// cascade every remaining path on at once.
				covered = true
				continue
			}
			capacityBits += est * windowSec
			covered = capacityBits >= needBits
		}
	}
}

// pathLess orders the Algorithm 1 walk: primary first, then ascending
// cost.
func pathLess(a, b *mptcp.Path) bool {
	if a.Primary != b.Primary {
		return a.Primary
	}
	return a.Cost < b.Cost
}

// orderedPaths returns the connection's paths sorted for the prefix-cover
// walk, reusing s.scratch. Insertion sort is stable and, with the path
// set essentially pre-sorted between evaluations, runs in one pass over
// the handful of paths a connection has — this is the per-packet hot
// loop, so it must not allocate.
func (s *Scheduler) orderedPaths() []*mptcp.Path {
	src := s.conn.Paths()
	if cap(s.scratch) < len(src) {
		s.scratch = make([]*mptcp.Path, 0, len(src))
	}
	paths := append(s.scratch[:0], src...)
	for i := 1; i < len(paths); i++ {
		p := paths[i]
		j := i - 1
		for j >= 0 && pathLess(p, paths[j]) {
			paths[j+1] = paths[j]
			j--
		}
		paths[j+1] = p
	}
	s.scratch = paths
	return paths
}

func (s *Scheduler) setPath(name string, on bool) {
	if prev, ok := s.desired[name]; ok && prev == on {
		return
	}
	s.desired[name] = on
	s.toggles++
	s.emit(obs.NewEvent("sched.toggle").WithPath(name).
		WithStr("on", strconv.FormatBool(on)).
		WithNum("estimate_bps", s.conn.EstimatedThroughput(name)).
		WithNum("remaining_bytes", float64(s.size-s.sent)).
		WithNum("slack_s", (s.deadlineAt - s.sim.Now()).Seconds()))
	s.traceToggle(name, on)
	// The primary path can never be disabled; mptcp enforces it too.
	_ = s.conn.SetPathEnabled(name, on)
}

// traceToggle mirrors a path toggle onto the transfer's trace: an
// enabled secondary path is one open sched-category span, closed when
// the path stands down (or at Disable). No-op — and allocation-free —
// while no trace is in flight.
func (s *Scheduler) traceToggle(name string, on bool) {
	if s.trace == nil {
		return
	}
	if on {
		if s.pathSpans == nil {
			s.pathSpans = make(map[string]*obs.Span, 4)
		}
		if s.pathSpans[name] == nil {
			sp := s.trace.StartSpan(obs.CatSched, "path-on")
			sp.SetPath(name)
			s.pathSpans[name] = sp
		}
		return
	}
	if sp := s.pathSpans[name]; sp != nil {
		sp.End()
		delete(s.pathSpans, name)
	}
}

// setAll enables or disables every secondary path. The MaxCost ceiling
// holds even here: a path priced over the ceiling stays off when MP-DASH
// deactivates or panic-enables everything.
func (s *Scheduler) setAll(on bool) {
	for _, p := range s.conn.SecondaryPaths() {
		want := on
		if on && s.MaxCost > 0 && p.Cost > s.MaxCost {
			want = false
		}
		s.setPath(p.Name, want)
	}
}

func (s *Scheduler) enableAll() { s.setAll(true) }
