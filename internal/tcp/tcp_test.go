package tcp

import (
	"testing"
	"time"

	"mpdash/internal/link"
	"mpdash/internal/sim"
	"mpdash/internal/trace"
)

// harness wires a subflow over a symmetric path and provides a greedy
// sender that keeps the window full until totalBytes have been handed to
// the subflow.
type harness struct {
	s  *sim.Simulator
	f  *Subflow
	t  *testing.T
	in int64 // bytes handed to Send so far
}

func newHarness(t *testing.T, mbps float64, owd time.Duration) *harness {
	t.Helper()
	s := sim.New()
	fwd, err := link.New(s, link.Config{Name: "fwd", Rate: trace.Constant("f", mbps, time.Second, 1), PropDelay: owd})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := link.New(s, link.Config{Name: "rev", Rate: trace.Constant("r", 100, time.Second, 1), PropDelay: owd})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(s, Config{Name: "sf", Fwd: fwd, Rev: rev})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{s: s, f: f, t: t}
}

// saturate keeps the subflow's window full with MSS segments until the
// simulator reaches limit.
func (h *harness) saturate(limit time.Duration) {
	pump := func() {
		for h.f.HasSpace() {
			h.f.Send(Segment{Size: h.f.MSS()})
			h.in += int64(h.f.MSS())
		}
	}
	h.f.OnAcked = pump
	pump()
	h.s.AdvanceTo(limit)
}

func TestNewValidation(t *testing.T) {
	s := sim.New()
	l, _ := link.New(s, link.Config{Name: "l", Rate: trace.Constant("c", 1, time.Second, 1)})
	if _, err := New(nil, Config{Fwd: l, Rev: l}); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := New(s, Config{Fwd: l}); err == nil {
		t.Error("missing rev link accepted")
	}
	if _, err := New(s, Config{Fwd: l, Rev: l, MSS: -1}); err == nil {
		t.Error("negative MSS accepted")
	}
	f, err := New(s, Config{Fwd: l, Rev: l})
	if err != nil {
		t.Fatal(err)
	}
	if f.MSS() != DefaultMSS {
		t.Errorf("MSS = %d", f.MSS())
	}
}

func TestSaturatesLink(t *testing.T) {
	// A greedy sender over a 3.8 Mbps, 50ms RTT path should achieve close
	// to link rate over 30 seconds despite AIMD sawtooth.
	h := newHarness(t, 3.8, 25*time.Millisecond)
	h.saturate(30 * time.Second)
	gotMbps := float64(h.f.DeliveredBytes()) * 8 / 30 / 1e6
	if gotMbps < 3.8*0.80 || gotMbps > 3.8*1.02 {
		t.Errorf("goodput = %.2f Mbps, want ≈3.8", gotMbps)
	}
}

func TestSlowStartRampUp(t *testing.T) {
	h := newHarness(t, 10, 25*time.Millisecond)
	startCwnd := h.f.Cwnd()
	if startCwnd != InitialWindow {
		t.Fatalf("initial cwnd = %v", startCwnd)
	}
	h.saturate(500 * time.Millisecond)
	if h.f.Cwnd() <= startCwnd {
		t.Errorf("cwnd did not grow: %v", h.f.Cwnd())
	}
}

func TestLossCutsWindow(t *testing.T) {
	// A slow link floods quickly: expect loss events and ssthresh set.
	h := newHarness(t, 1.0, 10*time.Millisecond)
	h.saturate(10 * time.Second)
	if h.f.LossEvents() == 0 {
		t.Error("expected loss events on a 1 Mbps link under greedy load")
	}
	// Despite losses, goodput should still be near the link rate.
	gotMbps := float64(h.f.DeliveredBytes()) * 8 / 10 / 1e6
	if gotMbps < 0.75 {
		t.Errorf("goodput = %.2f Mbps under loss, want > 0.75", gotMbps)
	}
}

func TestRTTEstimate(t *testing.T) {
	h := newHarness(t, 10, 25*time.Millisecond)
	if h.f.SRTT() != 50*time.Millisecond {
		t.Errorf("pre-sample SRTT = %v, want 50ms (2*prop)", h.f.SRTT())
	}
	h.saturate(2 * time.Second)
	srtt := h.f.SRTT()
	if srtt < 50*time.Millisecond || srtt > 300*time.Millisecond {
		t.Errorf("SRTT = %v, want within [50ms, 300ms]", srtt)
	}
}

func TestAllBytesDelivered(t *testing.T) {
	// Conservation: every byte handed to Send is eventually delivered
	// exactly once (retransmissions must not duplicate deliveries beyond
	// the retransmitted copy... our model delivers the dropped segment
	// only via its retransmission).
	h := newHarness(t, 2.0, 10*time.Millisecond)
	var delivered int64
	h.f.OnDelivered = func(seg Segment) { delivered += int64(seg.Size) }
	const want = 500 * 1460
	sent := 0
	pump := func() {
		for sent < 500 && h.f.HasSpace() {
			h.f.Send(Segment{Size: 1460})
			sent++
		}
	}
	h.f.OnAcked = pump
	pump()
	h.s.AdvanceTo(10 * time.Second)
	if h.f.Inflight() != 0 {
		t.Fatalf("inflight = %d after drain", h.f.Inflight())
	}
	if delivered < want {
		t.Errorf("delivered = %d, want >= %d", delivered, want)
	}
}

func TestMetaRoundTrip(t *testing.T) {
	h := newHarness(t, 10, time.Millisecond)
	type meta struct{ seq int }
	var got []int
	h.f.OnDelivered = func(seg Segment) { got = append(got, seg.Meta.(meta).seq) }
	for i := 0; i < 3; i++ {
		h.f.Send(Segment{Size: 100, Meta: meta{seq: i}})
	}
	h.s.AdvanceTo(time.Second)
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("meta = %v", got)
	}
}

func TestSendWithoutSpacePanics(t *testing.T) {
	h := newHarness(t, 1, 50*time.Millisecond)
	for h.f.HasSpace() {
		h.f.Send(Segment{Size: 1460})
	}
	defer func() {
		if recover() == nil {
			t.Error("Send over full window did not panic")
		}
	}()
	h.f.Send(Segment{Size: 1460})
}

func TestSendZeroSizePanics(t *testing.T) {
	h := newHarness(t, 1, time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Error("zero-size Send did not panic")
		}
	}()
	h.f.Send(Segment{Size: 0})
}

func TestIdleRestart(t *testing.T) {
	h := newHarness(t, 10, 25*time.Millisecond)
	h.saturate(5 * time.Second)
	h.f.OnAcked = nil
	h.s.AdvanceTo(6 * time.Second) // drain inflight
	grown := h.f.Cwnd()
	if grown <= InitialWindow {
		t.Skipf("cwnd %v did not grow beyond IW; cannot test restart", grown)
	}
	// Idle for 10 seconds, then the window must restart at IW.
	h.s.AdvanceTo(16 * time.Second)
	if !h.f.HasSpace() {
		t.Fatal("no space after idle")
	}
	if h.f.Cwnd() != InitialWindow {
		t.Errorf("cwnd after idle = %v, want %v", h.f.Cwnd(), InitialWindow)
	}
}

func TestIdleRestartDisabled(t *testing.T) {
	s := sim.New()
	fwd, _ := link.New(s, link.Config{Name: "fwd", Rate: trace.Constant("f", 10, time.Second, 1), PropDelay: 25 * time.Millisecond})
	rev, _ := link.New(s, link.Config{Name: "rev", Rate: trace.Constant("r", 100, time.Second, 1), PropDelay: 25 * time.Millisecond})
	f, err := New(s, Config{Name: "nf", Fwd: fwd, Rev: rev, DisableIdleRestart: true})
	if err != nil {
		t.Fatal(err)
	}
	pump := func() {
		for f.HasSpace() {
			f.Send(Segment{Size: f.MSS()})
		}
	}
	f.OnAcked = pump
	pump()
	s.AdvanceTo(5 * time.Second)
	f.OnAcked = nil
	s.AdvanceTo(6 * time.Second)
	grown := f.Cwnd()
	s.AdvanceTo(20 * time.Second)
	f.HasSpace() // would trigger restart if enabled
	if f.Cwnd() != grown {
		t.Errorf("cwnd changed across idle with restart disabled: %v -> %v", grown, f.Cwnd())
	}
}

func TestFasterLinkDeliversMore(t *testing.T) {
	slow := newHarness(t, 2, 25*time.Millisecond)
	fast := newHarness(t, 8, 25*time.Millisecond)
	slow.saturate(10 * time.Second)
	fast.saturate(10 * time.Second)
	if fast.f.DeliveredBytes() <= slow.f.DeliveredBytes() {
		t.Errorf("fast link delivered %d <= slow link %d",
			fast.f.DeliveredBytes(), slow.f.DeliveredBytes())
	}
}
