// Package tcp models one TCP subflow's sender: slow start, AIMD congestion
// avoidance, multiplicative decrease on loss, and RFC 6298-style RTT
// estimation, running over a forward data link and a reverse ACK link from
// package link. The model is segment-level, not byte-stream level: the
// multipath layer hands complete MSS-sized segments to a subflow, which is
// exactly the granularity the MPTCP packet schedulers operate at.
package tcp

import (
	"fmt"
	"time"

	"mpdash/internal/link"
	"mpdash/internal/sim"
)

// DefaultMSS is the maximum segment size used across the reproduction
// (typical Ethernet-path MSS).
const DefaultMSS = 1460

// InitialWindow is the initial congestion window in segments (IW10,
// RFC 6928, which Linux MPTCP v0.90 used).
const InitialWindow = 10

// Segment is one unit of data in flight. Meta carries multipath-layer
// bookkeeping (the data-sequence mapping) opaquely through the subflow.
type Segment struct {
	Size int
	Meta any

	sentAt  time.Duration
	retrans bool
}

// Subflow is a single-path TCP sender model.
type Subflow struct {
	Name string

	sim *sim.Simulator
	fwd *link.Link // data direction
	rev *link.Link // ACK direction
	mss int

	cwnd     float64 // segments
	ssthresh float64
	inflight int

	srtt   time.Duration
	rttvar time.Duration
	hasRTT bool

	lastSend       time.Duration
	lastWindowCut  time.Duration
	idleRestart    bool
	deliveredBytes int64
	ackedBytes     int64
	lossEvents     int64

	// OnDelivered fires when a segment's data arrives at the receiver —
	// the moment the video player sees the bytes.
	OnDelivered func(seg Segment)
	// OnAcked fires at the sender when an ACK returns and window space
	// opens; the multipath layer uses it to pump more segments.
	OnAcked func()
	// CAIncrease, when set, overrides the congestion-avoidance window
	// increment per ACK (in segments). The multipath layer installs the
	// RFC 6356 LIA coupled increase here; nil means Reno's 1/cwnd.
	CAIncrease func(f *Subflow) float64
}

// Config describes a Subflow.
type Config struct {
	Name string
	// Fwd carries data sender→receiver, Rev carries ACKs back. Required.
	Fwd, Rev *link.Link
	// MSS defaults to DefaultMSS.
	MSS int
	// DisableIdleRestart keeps cwnd across idle periods. Linux restarts
	// slow start after an RTO of idle; the reproduction does too unless
	// this is set.
	DisableIdleRestart bool
}

// New creates a subflow sender.
func New(s *sim.Simulator, cfg Config) (*Subflow, error) {
	if s == nil {
		return nil, fmt.Errorf("tcp %q: nil simulator", cfg.Name)
	}
	if cfg.Fwd == nil || cfg.Rev == nil {
		return nil, fmt.Errorf("tcp %q: both links required", cfg.Name)
	}
	mss := cfg.MSS
	if mss == 0 {
		mss = DefaultMSS
	}
	if mss < 0 {
		return nil, fmt.Errorf("tcp %q: negative MSS %d", cfg.Name, mss)
	}
	return &Subflow{
		Name:        cfg.Name,
		sim:         s,
		fwd:         cfg.Fwd,
		rev:         cfg.Rev,
		mss:         mss,
		cwnd:        InitialWindow,
		ssthresh:    1 << 20, // effectively unbounded until first loss
		idleRestart: !cfg.DisableIdleRestart,
	}, nil
}

// MSS returns the subflow's maximum segment size.
func (f *Subflow) MSS() int { return f.mss }

// HasSpace reports whether the congestion window admits another segment.
func (f *Subflow) HasSpace() bool {
	f.maybeIdleRestart()
	return float64(f.inflight) < f.cwnd
}

// Inflight returns the number of unacknowledged segments.
func (f *Subflow) Inflight() int { return f.inflight }

// Cwnd returns the current congestion window in segments.
func (f *Subflow) Cwnd() float64 { return f.cwnd }

// SRTT returns the smoothed RTT estimate. Before any sample it returns the
// static two-way propagation delay of the links.
func (f *Subflow) SRTT() time.Duration {
	if f.hasRTT {
		return f.srtt
	}
	return f.fwd.PropDelay() + f.rev.PropDelay()
}

// DeliveredBytes returns bytes that have arrived at the receiver.
func (f *Subflow) DeliveredBytes() int64 { return f.deliveredBytes }

// LossEvents returns the number of window-cut congestion events.
func (f *Subflow) LossEvents() int64 { return f.lossEvents }

// Send transmits one segment. The caller must have checked HasSpace;
// sending without space panics, because it means the multipath scheduler
// is broken.
func (f *Subflow) Send(seg Segment) {
	if !f.HasSpace() {
		panic(fmt.Sprintf("tcp %q: Send without window space", f.Name))
	}
	if seg.Size <= 0 {
		panic(fmt.Sprintf("tcp %q: segment size %d", f.Name, seg.Size))
	}
	f.inflight++
	seg.sentAt = f.sim.Now()
	f.lastSend = f.sim.Now()
	f.transmit(seg)
}

// transmit pushes one segment onto the forward link; re-used verbatim for
// retransmissions.
func (f *Subflow) transmit(seg Segment) {
	f.fwd.Send(seg.Size,
		func() { f.onDataArrival(seg) },
		func() { f.onLoss(seg) },
	)
}

func (f *Subflow) onDataArrival(seg Segment) {
	f.deliveredBytes += int64(seg.Size)
	if f.OnDelivered != nil {
		f.OnDelivered(seg)
	}
	// Pure ACK, 40 bytes.
	f.rev.Send(40, func() { f.onAck(seg) }, func() {
		// A lost ACK: in real TCP a later cumulative ACK covers it.
		// Model that as the ACK arriving one SRTT later.
		f.sim.Schedule(f.SRTT(), func() { f.onAck(seg) })
	})
}

func (f *Subflow) onAck(seg Segment) {
	f.inflight--
	f.ackedBytes += int64(seg.Size)
	if !seg.retrans { // Karn's rule: no RTT samples from retransmits
		f.addRTTSample(f.sim.Now() - seg.sentAt)
	}
	if f.cwnd < f.ssthresh {
		f.cwnd++ // slow start
	} else if f.CAIncrease != nil {
		f.cwnd += f.CAIncrease(f)
	} else {
		f.cwnd += 1 / f.cwnd // Reno congestion avoidance
	}
	if f.OnAcked != nil {
		f.OnAcked()
	}
}

func (f *Subflow) onLoss(seg Segment) {
	// Multiplicative decrease at most once per RTT (NewReno-style: one
	// window cut per loss episode).
	now := f.sim.Now()
	if now-f.lastWindowCut >= f.SRTT() {
		f.lastWindowCut = now
		f.lossEvents++
		f.ssthresh = f.cwnd / 2
		if f.ssthresh < 2 {
			f.ssthresh = 2
		}
		f.cwnd = f.ssthresh
	}
	// Retransmit the segment; it occupies the same window slot.
	seg.retrans = true
	seg.sentAt = now
	f.transmit(seg)
}

func (f *Subflow) addRTTSample(sample time.Duration) {
	if sample <= 0 {
		return
	}
	if !f.hasRTT {
		f.srtt = sample
		f.rttvar = sample / 2
		f.hasRTT = true
		return
	}
	d := f.srtt - sample
	if d < 0 {
		d = -d
	}
	f.rttvar = (3*f.rttvar + d) / 4
	f.srtt = (7*f.srtt + sample) / 8
}

// maybeIdleRestart applies slow-start restart after an idle period longer
// than one RTO (approximated as SRTT + 4*RTTVAR, floored at 1s as in RFC
// 6298).
func (f *Subflow) maybeIdleRestart() {
	if !f.idleRestart || f.inflight > 0 || f.lastSend == 0 {
		return
	}
	rto := f.SRTT() + 4*f.rttvar
	if rto < time.Second {
		rto = time.Second
	}
	if f.sim.Now()-f.lastSend > rto && f.cwnd > InitialWindow {
		f.cwnd = InitialWindow
		f.ssthresh = 1 << 20
	}
}
