package tcp

import (
	"testing"
	"time"

	"mpdash/internal/link"
	"mpdash/internal/sim"
	"mpdash/internal/trace"
)

// BenchmarkSaturatedSubflow measures simulator throughput: how fast one
// greedy subflow simulates 10 seconds of a 10 Mbps path.
func BenchmarkSaturatedSubflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		fwd, err := link.New(s, link.Config{Name: "fwd", Rate: trace.Constant("f", 10, time.Second, 1), PropDelay: 25 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		rev, err := link.New(s, link.Config{Name: "rev", Rate: trace.Constant("r", 100, time.Second, 1), PropDelay: 25 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		f, err := New(s, Config{Name: "bench", Fwd: fwd, Rev: rev})
		if err != nil {
			b.Fatal(err)
		}
		pump := func() {
			for f.HasSpace() {
				f.Send(Segment{Size: f.MSS()})
			}
		}
		f.OnAcked = pump
		pump()
		s.AdvanceTo(10 * time.Second)
		b.ReportMetric(float64(f.DeliveredBytes())*8/10/1e6, "sim-mbps")
	}
}
