// Package trace models time-varying path bandwidth. Every experiment in the
// MP-DASH reproduction is driven by one Trace per network path: synthetic
// fluctuating profiles (paper §7.2.2, Table 1), field-measurement-style
// profiles for the 33-location study (paper §7.3.3), and a mobility profile
// (paper §7.3.4). Traces are deterministic given their seed.
package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Trace is a piecewise-constant bandwidth process sampled every Slot.
// Reads beyond the last sample wrap around, so a short measured trace can
// drive an arbitrarily long experiment (the paper replays its field traces
// the same way).
type Trace struct {
	Name string
	Slot time.Duration
	Mbps []float64
}

// ErrInvalid reports a structurally invalid trace.
var ErrInvalid = errors.New("trace: invalid")

// Validate checks structural invariants: a positive slot, at least one
// sample, and no negative or non-finite bandwidth.
func (t *Trace) Validate() error {
	if t == nil {
		return fmt.Errorf("%w: nil trace", ErrInvalid)
	}
	if t.Slot <= 0 {
		return fmt.Errorf("%w: slot %v", ErrInvalid, t.Slot)
	}
	if len(t.Mbps) == 0 {
		return fmt.Errorf("%w: no samples", ErrInvalid)
	}
	for i, v := range t.Mbps {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: sample %d = %v", ErrInvalid, i, v)
		}
	}
	return nil
}

// At returns the bandwidth in Mbps at virtual time d since the start of the
// trace. Negative times read the first sample; times past the end wrap.
func (t *Trace) At(d time.Duration) float64 {
	if len(t.Mbps) == 0 {
		return 0
	}
	if d < 0 {
		return t.Mbps[0]
	}
	idx := int(d / t.Slot)
	return t.Mbps[idx%len(t.Mbps)]
}

// AtBps returns the bandwidth at time d in bits per second.
func (t *Trace) AtBps(d time.Duration) float64 { return t.At(d) * 1e6 }

// Duration returns the natural (non-wrapped) length of the trace.
func (t *Trace) Duration() time.Duration {
	return time.Duration(len(t.Mbps)) * t.Slot
}

// Avg returns the mean bandwidth in Mbps over the natural length.
func (t *Trace) Avg() float64 {
	if len(t.Mbps) == 0 {
		return 0
	}
	var s float64
	for _, v := range t.Mbps {
		s += v
	}
	return s / float64(len(t.Mbps))
}

// Scale returns a copy of the trace with every sample multiplied by k.
func (t *Trace) Scale(k float64) *Trace {
	out := &Trace{Name: t.Name, Slot: t.Slot, Mbps: make([]float64, len(t.Mbps))}
	for i, v := range t.Mbps {
		out.Mbps[i] = v * k
	}
	return out
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	return &Trace{Name: t.Name, Slot: t.Slot, Mbps: append([]float64(nil), t.Mbps...)}
}

// Cap returns a copy where every sample is limited to at most capMbps.
// This reproduces Dummynet-style throttling (paper §7.1, §7.3.1).
func (t *Trace) Cap(capMbps float64) *Trace {
	out := t.Clone()
	out.Name = fmt.Sprintf("%s-cap%.1f", t.Name, capMbps)
	for i, v := range out.Mbps {
		if v > capMbps {
			out.Mbps[i] = capMbps
		}
	}
	return out
}

// Window returns the samples covering [from, to) without wrapping,
// clamped to the natural length.
func (t *Trace) Window(from, to time.Duration) []float64 {
	if from < 0 {
		from = 0
	}
	lo := int(from / t.Slot)
	hi := int((to + t.Slot - 1) / t.Slot)
	if hi > len(t.Mbps) {
		hi = len(t.Mbps)
	}
	if lo >= hi {
		return nil
	}
	return t.Mbps[lo:hi]
}

// Constant builds a flat trace of n slots at mbps.
func Constant(name string, mbps float64, slot time.Duration, n int) *Trace {
	t := &Trace{Name: name, Slot: slot, Mbps: make([]float64, n)}
	for i := range t.Mbps {
		t.Mbps[i] = mbps
	}
	return t
}

// Synthetic builds the paper's synthetic profile: instantaneous throughput
// normally distributed around mean with standard deviation sigmaFrac*mean
// (paper Table 1 uses sigmaFrac of 0.10 and 0.30), clamped at a small
// positive floor so links never fully stall.
func Synthetic(name string, meanMbps, sigmaFrac float64, slot time.Duration, n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: name, Slot: slot, Mbps: make([]float64, n)}
	floor := meanMbps * 0.05
	for i := range t.Mbps {
		v := meanMbps + rng.NormFloat64()*sigmaFrac*meanMbps
		if v < floor {
			v = floor
		}
		t.Mbps[i] = v
	}
	return t
}

// Field builds a field-measurement-style trace. stability in [0,1] controls
// how well-behaved the WiFi is: 1 is a steady office link, 0 is a heavily
// shared hotel AP. The process is a mean-reverting random walk (AR(1)) with
// occasional deep fades whose frequency and depth grow as stability drops —
// matching the paper's observation that open WiFi "tends to be fluctuating"
// rather than dropping steeply and continuously (§7.2.2, Fig. 5).
func Field(name string, meanMbps, stability float64, slot time.Duration, n int, seed int64) *Trace {
	if stability < 0 {
		stability = 0
	}
	if stability > 1 {
		stability = 1
	}
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: name, Slot: slot, Mbps: make([]float64, n)}
	sigma := (0.08 + 0.35*(1-stability)) * meanMbps
	fadeP := 0.002 + 0.03*(1-stability) // per-slot probability of a fade
	cur := meanMbps
	fadeLeft := 0
	fadeDepth := 1.0
	for i := range t.Mbps {
		// Mean-reverting walk.
		cur += 0.3*(meanMbps-cur) + rng.NormFloat64()*sigma*0.5
		if fadeLeft > 0 {
			fadeLeft--
		} else if rng.Float64() < fadeP {
			fadeLeft = 2 + rng.Intn(8)
			fadeDepth = 0.15 + 0.35*rng.Float64()
		}
		v := cur
		if fadeLeft > 0 {
			v *= fadeDepth
		}
		floor := meanMbps * 0.03
		if v < floor {
			v = floor
		}
		t.Mbps[i] = v
	}
	return t
}

// Mobility builds the walking-around-an-AP profile of paper §7.3.4: WiFi
// throughput follows a smooth periodic swing between near-zero (far from the
// AP) and roughly 2*mean (next to it), with mild noise. period is the time
// of one full walk loop.
func Mobility(name string, meanMbps float64, period, slot time.Duration, n int, seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: name, Slot: slot, Mbps: make([]float64, n)}
	for i := range t.Mbps {
		phase := 2 * math.Pi * float64(time.Duration(i)*slot) / float64(period)
		base := meanMbps * (1 + 0.95*math.Cos(phase)) // [0.05, 1.95] * mean
		v := base + rng.NormFloat64()*0.05*meanMbps
		floor := meanMbps * 0.02
		if v < floor {
			v = floor
		}
		t.Mbps[i] = v
	}
	return t
}

// Step builds a trace from explicit (durationSlots, mbps) steps; useful in
// tests and for hand-crafted scenarios.
func Step(name string, slot time.Duration, steps ...StepSpec) *Trace {
	t := &Trace{Name: name, Slot: slot}
	for _, s := range steps {
		for i := 0; i < s.Slots; i++ {
			t.Mbps = append(t.Mbps, s.Mbps)
		}
	}
	return t
}

// StepSpec is one constant-rate segment of a Step trace.
type StepSpec struct {
	Slots int
	Mbps  float64
}
