package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// WriteCSV writes the trace as "seconds,mbps" rows preceded by a header
// comment carrying the name and slot, so a trace round-trips losslessly.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name=%s slot_us=%d\n", t.Name, t.Slot.Microseconds()); err != nil {
		return err
	}
	for i, v := range t.Mbps {
		sec := (time.Duration(i) * t.Slot).Seconds()
		if _, err := fmt.Fprintf(bw, "%.3f,%.6f\n", sec, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV. Rows are "seconds,mbps"; the
// optional header comment restores name and slot. Without a header the slot
// is inferred from the first two timestamps (default 100ms for single-row
// traces).
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	t := &Trace{Slot: 100 * time.Millisecond}
	headerSlot := false
	var times []float64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, f := range strings.Fields(strings.TrimPrefix(line, "#")) {
				if v, ok := strings.CutPrefix(f, "name="); ok {
					t.Name = v
				}
				if v, ok := strings.CutPrefix(f, "slot_us="); ok {
					us, err := strconv.Atoi(v)
					if err != nil || us <= 0 {
						return nil, fmt.Errorf("trace: bad slot_us %q", v)
					}
					t.Slot = time.Duration(us) * time.Microsecond
					headerSlot = true
				}
				if v, ok := strings.CutPrefix(f, "slot_ms="); ok { // legacy header
					ms, err := strconv.Atoi(v)
					if err != nil || ms <= 0 {
						return nil, fmt.Errorf("trace: bad slot_ms %q", v)
					}
					t.Slot = time.Duration(ms) * time.Millisecond
					headerSlot = true
				}
			}
			continue
		}
		sec, mbpsStr, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("trace: malformed row %q", line)
		}
		ts, err := strconv.ParseFloat(strings.TrimSpace(sec), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad timestamp %q: %w", sec, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(mbpsStr), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad bandwidth %q: %w", mbpsStr, err)
		}
		times = append(times, ts)
		t.Mbps = append(t.Mbps, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Without an explicit header, infer the slot from the first two
	// timestamps; the header wins when present because row timestamps
	// are written at millisecond precision.
	if !headerSlot && len(times) >= 2 && times[1] > times[0] {
		t.Slot = time.Duration((times[1] - times[0]) * float64(time.Second))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// traceJSON is the stable on-disk JSON shape.
type traceJSON struct {
	Name   string    `json:"name"`
	SlotMS int64     `json:"slot_ms"`
	Mbps   []float64 `json:"mbps"`
}

// MarshalJSON implements json.Marshaler.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(traceJSON{Name: t.Name, SlotMS: t.Slot.Milliseconds(), Mbps: t.Mbps})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Trace) UnmarshalJSON(b []byte) error {
	var j traceJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	t.Name = j.Name
	t.Slot = time.Duration(j.SlotMS) * time.Millisecond
	t.Mbps = j.Mbps
	return t.Validate()
}
