package trace

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadCSV: the CSV parser must never panic, and anything it accepts
// must be a valid trace that survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	_ = Constant("seed", 3.8, 100*time.Millisecond, 5).WriteCSV(&buf)
	f.Add(buf.Bytes())
	f.Add([]byte("# name=x slot_ms=50\n0.000,1.5\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte("1.0,2.0\n2.0,3.0\n"))
	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := ReadCSV(bytes.NewReader(b))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadCSV accepted an invalid trace: %v", err)
		}
		var out bytes.Buffer
		if err := tr.WriteCSV(&out); err != nil {
			t.Fatalf("accepted trace fails to write: %v", err)
		}
		tr2, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round trip read failed: %v", err)
		}
		if len(tr2.Mbps) != len(tr.Mbps) {
			t.Fatalf("round trip lost samples: %d vs %d", len(tr2.Mbps), len(tr.Mbps))
		}
	})
}
