package trace

import (
	"math"
	"testing"
	"time"
)

func TestConcat(t *testing.T) {
	a := Constant("a", 1, time.Second, 3)
	b := Constant("b", 2, time.Second, 2)
	got, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Mbps) != 5 || got.Mbps[0] != 1 || got.Mbps[4] != 2 {
		t.Errorf("concat = %v", got.Mbps)
	}
	if got.Name != "a+b" {
		t.Errorf("name = %q", got.Name)
	}
	if _, err := Concat(); err == nil {
		t.Error("empty concat accepted")
	}
	c := Constant("c", 1, time.Millisecond, 1)
	if _, err := Concat(a, c); err == nil {
		t.Error("slot mismatch accepted")
	}
	if _, err := Concat(a, &Trace{Slot: time.Second}); err == nil {
		t.Error("invalid part accepted")
	}
}

func TestRepeat(t *testing.T) {
	a := Constant("a", 3, time.Second, 2)
	got, err := a.Repeat(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Mbps) != 6 {
		t.Errorf("len = %d", len(got.Mbps))
	}
	if _, err := a.Repeat(0); err == nil {
		t.Error("repeat 0 accepted")
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Name: "x", Slot: time.Second, Mbps: []float64{0, 1, 2, 3, 4}}
	got, err := tr.Slice(1*time.Second, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Mbps) != 2 || got.Mbps[0] != 1 || got.Mbps[1] != 2 {
		t.Errorf("slice = %v", got.Mbps)
	}
	// A slice is a copy.
	got.Mbps[0] = 99
	if tr.Mbps[1] != 1 {
		t.Error("slice aliases the original")
	}
	if _, err := tr.Slice(3*time.Second, time.Second); err == nil {
		t.Error("inverted slice accepted")
	}
	if _, err := tr.Slice(10*time.Second, 20*time.Second); err == nil {
		t.Error("out-of-range slice accepted")
	}
	if _, err := tr.Slice(-time.Second, time.Second); err == nil {
		t.Error("negative from accepted")
	}
}

func TestAddNoise(t *testing.T) {
	base := Constant("flat", 5, time.Second, 2000)
	noisy, err := base.AddNoise(0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := noisy.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(noisy.Avg()-5) > 0.2 {
		t.Errorf("noisy mean %v drifted from 5", noisy.Avg())
	}
	if StdDevOf(noisy.Mbps) < 0.5 {
		t.Errorf("noise too small: sd=%v", StdDevOf(noisy.Mbps))
	}
	// Deterministic per seed.
	noisy2, _ := base.AddNoise(0.2, 9)
	for i := range noisy.Mbps {
		if noisy.Mbps[i] != noisy2.Mbps[i] {
			t.Fatal("noise not deterministic")
		}
	}
	if _, err := base.AddNoise(-1, 0); err == nil {
		t.Error("negative sigma accepted")
	}
	// Original untouched.
	if base.Mbps[0] != 5 {
		t.Error("AddNoise mutated the receiver")
	}
}

// StdDevOf is a tiny local helper (stats would be an import cycle risk
// only in spirit; keep the test self-contained).
func StdDevOf(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		ss += (x - m) * (x - m)
	}
	return math.Sqrt(ss / float64(len(xs)))
}
