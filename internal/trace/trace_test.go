package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestValidate(t *testing.T) {
	good := Constant("c", 3.8, 50*time.Millisecond, 10)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := []*Trace{
		nil,
		{Slot: 0, Mbps: []float64{1}},
		{Slot: time.Second},
		{Slot: time.Second, Mbps: []float64{-1}},
		{Slot: time.Second, Mbps: []float64{math.NaN()}},
		{Slot: time.Second, Mbps: []float64{math.Inf(1)}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

func TestAtWrapsAndClamps(t *testing.T) {
	tr := &Trace{Name: "x", Slot: time.Second, Mbps: []float64{1, 2, 3}}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{-time.Second, 1},
		{0, 1},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 3},
		{3 * time.Second, 1},  // wrap
		{10 * time.Second, 2}, // 10 % 3 == 1
	}
	for _, c := range cases {
		if got := tr.At(c.at); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.at, got, c.want)
		}
	}
	if got := tr.AtBps(0); got != 1e6 {
		t.Errorf("AtBps = %v, want 1e6", got)
	}
}

func TestAvgScaleCapClone(t *testing.T) {
	tr := &Trace{Name: "x", Slot: time.Second, Mbps: []float64{2, 4, 6}}
	if tr.Avg() != 4 {
		t.Errorf("Avg = %v", tr.Avg())
	}
	s := tr.Scale(0.5)
	if s.Mbps[2] != 3 || tr.Mbps[2] != 6 {
		t.Error("Scale must not mutate the original")
	}
	c := tr.Cap(3)
	if c.Mbps[0] != 2 || c.Mbps[1] != 3 || c.Mbps[2] != 3 {
		t.Errorf("Cap = %v", c.Mbps)
	}
	cl := tr.Clone()
	cl.Mbps[0] = 99
	if tr.Mbps[0] != 2 {
		t.Error("Clone must deep-copy")
	}
	if tr.Duration() != 3*time.Second {
		t.Errorf("Duration = %v", tr.Duration())
	}
}

func TestWindow(t *testing.T) {
	tr := &Trace{Slot: time.Second, Mbps: []float64{0, 1, 2, 3, 4}}
	got := tr.Window(1*time.Second, 3*time.Second)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Window = %v", got)
	}
	if got := tr.Window(4*time.Second, 100*time.Second); len(got) != 1 || got[0] != 4 {
		t.Errorf("clamped Window = %v", got)
	}
	if got := tr.Window(10*time.Second, 20*time.Second); got != nil {
		t.Errorf("out-of-range Window = %v", got)
	}
	if got := tr.Window(-5*time.Second, 1*time.Second); len(got) != 1 || got[0] != 0 {
		t.Errorf("negative-from Window = %v", got)
	}
}

func TestSyntheticProperties(t *testing.T) {
	tr := Synthetic("s", 3.8, 0.10, 50*time.Millisecond, 2000, 42)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Avg()-3.8) > 0.15 {
		t.Errorf("synthetic mean %v far from 3.8", tr.Avg())
	}
	// Determinism: same seed, same trace.
	tr2 := Synthetic("s", 3.8, 0.10, 50*time.Millisecond, 2000, 42)
	for i := range tr.Mbps {
		if tr.Mbps[i] != tr2.Mbps[i] {
			t.Fatal("synthetic traces not deterministic")
		}
	}
	// Different seed, different trace.
	tr3 := Synthetic("s", 3.8, 0.10, 50*time.Millisecond, 2000, 43)
	same := true
	for i := range tr.Mbps {
		if tr.Mbps[i] != tr3.Mbps[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestSyntheticSigmaOrdering(t *testing.T) {
	lo := Synthetic("lo", 3.8, 0.10, 50*time.Millisecond, 5000, 1)
	hi := Synthetic("hi", 3.8, 0.30, 50*time.Millisecond, 5000, 1)
	sd := func(tr *Trace) float64 {
		m := tr.Avg()
		var ss float64
		for _, v := range tr.Mbps {
			ss += (v - m) * (v - m)
		}
		return math.Sqrt(ss / float64(len(tr.Mbps)))
	}
	if sd(lo) >= sd(hi) {
		t.Errorf("sigma ordering violated: sd10=%v sd30=%v", sd(lo), sd(hi))
	}
}

func TestFieldStability(t *testing.T) {
	stable := Field("office", 28.4, 0.95, 100*time.Millisecond, 6000, 7)
	flaky := Field("hotel", 2.9, 0.2, 100*time.Millisecond, 6000, 7)
	if err := stable.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := flaky.Validate(); err != nil {
		t.Fatal(err)
	}
	cv := func(tr *Trace) float64 {
		m := tr.Avg()
		var ss float64
		for _, v := range tr.Mbps {
			ss += (v - m) * (v - m)
		}
		return math.Sqrt(ss/float64(len(tr.Mbps))) / m
	}
	if cv(stable) >= cv(flaky) {
		t.Errorf("stable trace should have lower CV: stable=%v flaky=%v", cv(stable), cv(flaky))
	}
}

func TestMobilityPeriodicity(t *testing.T) {
	period := 60 * time.Second
	tr := Mobility("walk", 5, period, 100*time.Millisecond, 1200, 3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Peak near t=0, trough near t=period/2.
	peak := tr.At(0)
	trough := tr.At(period / 2)
	if peak < 2*trough+1 {
		t.Errorf("mobility swing too small: peak=%v trough=%v", peak, trough)
	}
}

func TestStep(t *testing.T) {
	tr := Step("s", time.Second, StepSpec{Slots: 2, Mbps: 1}, StepSpec{Slots: 3, Mbps: 5})
	if len(tr.Mbps) != 5 || tr.Mbps[0] != 1 || tr.Mbps[4] != 5 {
		t.Errorf("Step = %v", tr.Mbps)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Synthetic("rt", 3.0, 0.2, 50*time.Millisecond, 37, 5)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "rt" || got.Slot != tr.Slot || len(got.Mbps) != len(tr.Mbps) {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	for i := range tr.Mbps {
		if math.Abs(got.Mbps[i]-tr.Mbps[i]) > 1e-6 {
			t.Fatalf("sample %d: %v != %v", i, got.Mbps[i], tr.Mbps[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, in := range []string{
		"not-a-row\n",
		"1.0,abc\n",
		"abc,1.0\n",
		"", // empty -> invalid (no samples)
	} {
		if _, err := ReadCSV(bytes.NewBufferString(in)); err == nil {
			t.Errorf("ReadCSV(%q) accepted", in)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := Field("j", 6.0, 0.6, 100*time.Millisecond, 50, 9)
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var got Trace
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Slot != tr.Slot || len(got.Mbps) != len(tr.Mbps) {
		t.Fatalf("json round-trip mismatch: %+v", got)
	}
}

func TestScalePreservesAvgRatio(t *testing.T) {
	f := func(seed int64) bool {
		tr := Synthetic("q", 4, 0.3, 50*time.Millisecond, 100, seed)
		s := tr.Scale(2)
		return math.Abs(s.Avg()-2*tr.Avg()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
