package trace

import (
	"fmt"
	"math/rand"
	"time"
)

// Composition operators: experiments often splice measured segments,
// repeat short captures, or perturb a trace for sensitivity analysis.

// Concat joins traces end to end. All inputs must share a slot width; the
// result takes the first trace's name with a "+" suffix per extra part.
func Concat(parts ...*Trace) (*Trace, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("trace: concat of nothing")
	}
	out := &Trace{Name: parts[0].Name, Slot: parts[0].Slot}
	for i, p := range parts {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("trace: concat part %d: %w", i, err)
		}
		if p.Slot != out.Slot {
			return nil, fmt.Errorf("trace: concat slot mismatch %v vs %v", p.Slot, out.Slot)
		}
		out.Mbps = append(out.Mbps, p.Mbps...)
		if i > 0 {
			out.Name += "+" + p.Name
		}
	}
	return out, nil
}

// Repeat tiles the trace n times.
func (t *Trace) Repeat(n int) (*Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: repeat %d", n)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	out := &Trace{Name: fmt.Sprintf("%s-x%d", t.Name, n), Slot: t.Slot}
	for i := 0; i < n; i++ {
		out.Mbps = append(out.Mbps, t.Mbps...)
	}
	return out, nil
}

// Slice returns the samples covering [from, to) as a new trace.
func (t *Trace) Slice(from, to time.Duration) (*Trace, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if from < 0 || to <= from {
		return nil, fmt.Errorf("trace: slice [%v, %v)", from, to)
	}
	lo := int(from / t.Slot)
	hi := int((to + t.Slot - 1) / t.Slot)
	if hi > len(t.Mbps) {
		hi = len(t.Mbps)
	}
	if lo >= hi {
		return nil, fmt.Errorf("trace: slice [%v, %v) outside trace", from, to)
	}
	return &Trace{
		Name: fmt.Sprintf("%s[%v:%v]", t.Name, from, to),
		Slot: t.Slot,
		Mbps: append([]float64(nil), t.Mbps[lo:hi]...),
	}, nil
}

// AddNoise returns a copy with multiplicative Gaussian noise
// (sigmaFrac of each sample), floored at 1% of the sample — for
// sensitivity analysis around a measured trace.
func (t *Trace) AddNoise(sigmaFrac float64, seed int64) (*Trace, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if sigmaFrac < 0 {
		return nil, fmt.Errorf("trace: negative noise %v", sigmaFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	out := t.Clone()
	out.Name = fmt.Sprintf("%s~%g", t.Name, sigmaFrac)
	for i, v := range out.Mbps {
		n := v * (1 + rng.NormFloat64()*sigmaFrac)
		if floor := v * 0.01; n < floor {
			n = floor
		}
		out.Mbps[i] = n
	}
	return out, nil
}
