// Package analysis reproduces the paper's Multipath Video Analysis Tool
// (§6, ~3,000 lines of C++ in the original): it correlates per-chunk
// transfer records with the player's event log to compute path
// utilization, rebuffering, quality switching, and idle-gap metrics, and
// renders Figure-8-style chunk visualizations (each bar one chunk: width =
// download duration, shade = quality level, dark fraction = cellular
// share) as ASCII or SVG.
package analysis

import (
	"fmt"
	"time"

	"mpdash/internal/dash"
)

// Metrics is the tool's numeric output for one session.
type Metrics struct {
	Chunks int
	// PathShare is each path's fraction of total delivered bytes.
	PathShare map[string]float64
	// PathBytes is each path's absolute byte count.
	PathBytes map[string]int64
	// Rebuffers / RebufferTime cover playback interruptions.
	Rebuffers    int
	RebufferTime time.Duration
	// QualitySwitches counts level changes at chunk boundaries; SwitchMagnitude
	// sums |Δlevel| over them.
	QualitySwitches int
	SwitchMagnitude int
	// AvgLevel is the mean ladder index.
	AvgLevel float64
	// IdleTime is the total time between one chunk's completion and the
	// next chunk's request (the Fig. 1 gaps); IdleGaps counts gaps longer
	// than 100 ms.
	IdleTime time.Duration
	IdleGaps int
	// AvgDownloadTime is the mean per-chunk download duration.
	AvgDownloadTime time.Duration
	// DeadlinePressure is the fraction of chunks that used any
	// non-primary path at all.
	DeadlinePressure float64
}

// Analyze computes Metrics from a playback report.
func Analyze(rep *dash.Report, primaryPath string) *Metrics {
	m := &Metrics{
		Chunks:    len(rep.Results),
		PathShare: map[string]float64{},
		PathBytes: map[string]int64{},
	}
	if m.Chunks == 0 {
		return m
	}
	var total int64
	lastLevel := -1
	var lastEnd time.Duration
	var levelSum float64
	var dlSum time.Duration
	secondary := 0
	for i, r := range rep.Results {
		for name, b := range r.PathBytes {
			m.PathBytes[name] += b
			total += b
			if name != primaryPath && b > 0 {
				// counted once per chunk below
				_ = name
			}
		}
		usedSecondary := false
		for name, b := range r.PathBytes {
			if name != primaryPath && b > 0 {
				usedSecondary = true
			}
		}
		if usedSecondary {
			secondary++
		}
		if r.Stalled {
			m.Rebuffers++
			m.RebufferTime += r.StallTime
		}
		if lastLevel >= 0 && r.Meta.Level != lastLevel {
			m.QualitySwitches++
			d := r.Meta.Level - lastLevel
			if d < 0 {
				d = -d
			}
			m.SwitchMagnitude += d
		}
		lastLevel = r.Meta.Level
		levelSum += float64(r.Meta.Level)
		dlSum += r.End - r.Start
		if i > 0 {
			gap := r.Start - lastEnd
			if gap > 0 {
				m.IdleTime += gap
				if gap > 100*time.Millisecond {
					m.IdleGaps++
				}
			}
		}
		lastEnd = r.End
	}
	for name, b := range m.PathBytes {
		if total > 0 {
			m.PathShare[name] = float64(b) / float64(total)
		}
	}
	m.AvgLevel = levelSum / float64(m.Chunks)
	m.AvgDownloadTime = dlSum / time.Duration(m.Chunks)
	m.DeadlinePressure = float64(secondary) / float64(m.Chunks)
	return m
}

// String renders the metrics as a compact report.
func (m *Metrics) String() string {
	s := fmt.Sprintf("chunks=%d avgLevel=%.2f switches=%d (mag %d) rebuffers=%d (%.2fs) idle=%.1fs in %d gaps avgDL=%.2fs secondaryUse=%.0f%%",
		m.Chunks, m.AvgLevel, m.QualitySwitches, m.SwitchMagnitude,
		m.Rebuffers, m.RebufferTime.Seconds(), m.IdleTime.Seconds(), m.IdleGaps,
		m.AvgDownloadTime.Seconds(), m.DeadlinePressure*100)
	for name, share := range m.PathShare {
		s += fmt.Sprintf(" %s=%.1f%%", name, share*100)
	}
	return s
}
