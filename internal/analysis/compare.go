package analysis

import (
	"fmt"
	"io"

	"mpdash/internal/dash"
)

// Comparison quantifies an MP-DASH session against its vanilla-MPTCP
// baseline — the per-experiment arithmetic the paper's tables repeat.
type Comparison struct {
	CellularSaving   float64 // 1 − mp/base, steady-state LTE bytes
	EnergySaving     float64 // 1 − mp/base, radio joules
	BitrateReduction float64 // 1 − mp/base, steady-state bitrate
	QoEDelta         float64 // mp − base, linear QoE score
	StallDelta       int     // mp − base stall count
}

// SessionSummary is what Compare needs from each arm.
type SessionSummary struct {
	Report *dash.Report
	// CellularBytes is the steady-state metered-path byte count.
	CellularBytes int64
	// RadioJ is the session's radio energy.
	RadioJ float64
}

// Compare computes the savings of mp relative to base.
func Compare(base, mp SessionSummary) Comparison {
	var c Comparison
	if base.CellularBytes > 0 {
		c.CellularSaving = 1 - float64(mp.CellularBytes)/float64(base.CellularBytes)
	}
	if base.RadioJ > 0 {
		c.EnergySaving = 1 - mp.RadioJ/base.RadioJ
	}
	if base.Report != nil && mp.Report != nil {
		if b := base.Report.SteadyStateAvgBitrateMbps; b > 0 {
			c.BitrateReduction = 1 - mp.Report.SteadyStateAvgBitrateMbps/b
		}
		w := dash.DefaultQoEWeights()
		c.QoEDelta = mp.Report.QoE(w) - base.Report.QoE(w)
		c.StallDelta = mp.Report.Stalls - base.Report.Stalls
	}
	return c
}

// String renders the comparison one-line.
func (c Comparison) String() string {
	return fmt.Sprintf("cell %.1f%%, energy %.1f%%, bitrate -%.1f%%, QoE %+.2f, stalls %+d",
		c.CellularSaving*100, c.EnergySaving*100, c.BitrateReduction*100, c.QoEDelta, c.StallDelta)
}

// WriteMarkdown renders a full session report as a markdown document:
// headline metrics, QoE, per-path bytes, and the per-chunk table.
func WriteMarkdown(w io.Writer, rep *dash.Report, radioJ float64) error {
	m := Analyze(rep, "wifi")
	qoe := rep.QoE(dash.DefaultQoEWeights())
	if _, err := fmt.Fprintf(w, "# Session report — %s / %s\n\n", rep.VideoName, rep.Algorithm); err != nil {
		return err
	}
	fmt.Fprintf(w, "| metric | value |\n|---|---|\n")
	fmt.Fprintf(w, "| chunks | %d |\n", rep.Chunks)
	fmt.Fprintf(w, "| avg bitrate | %.2f Mbps (steady %.2f) |\n", rep.AvgBitrateMbps, rep.SteadyStateAvgBitrateMbps)
	fmt.Fprintf(w, "| stalls | %d (%.2fs) |\n", rep.Stalls, rep.StallTime.Seconds())
	fmt.Fprintf(w, "| startup delay | %.2fs |\n", rep.StartupDelay.Seconds())
	fmt.Fprintf(w, "| quality switches | %d |\n", rep.QualitySwitches)
	fmt.Fprintf(w, "| QoE score | %.2f |\n", qoe)
	fmt.Fprintf(w, "| radio energy | %.1f J |\n", radioJ)
	fmt.Fprintf(w, "| idle time | %.1fs in %d gaps |\n\n", m.IdleTime.Seconds(), m.IdleGaps)

	fmt.Fprintf(w, "## Path usage (steady state)\n\n| path | bytes | share |\n|---|---|---|\n")
	total := rep.TotalBytes()
	for name, b := range rep.SteadyStatePathBytes {
		share := 0.0
		if total > 0 {
			share = float64(b) / float64(total) * 100
		}
		fmt.Fprintf(w, "| %s | %.2f MB | %.1f%% |\n", name, float64(b)/1e6, share)
	}

	fmt.Fprintf(w, "\n## Chunks\n\n| # | level | size | download | cellular | buffer after |\n|---|---|---|---|---|---|\n")
	for _, r := range rep.Results {
		fmt.Fprintf(w, "| %d | %d | %.0f kB | %.2fs | %.0f kB | %.1fs |\n",
			r.Meta.Index, r.Meta.LevelID, float64(r.Meta.Size)/1e3,
			(r.End - r.Start).Seconds(), float64(r.PathBytes["lte"])/1e3,
			r.BufferAfter.Seconds())
	}
	return nil
}
