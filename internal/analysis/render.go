package analysis

import (
	"fmt"
	"strings"
	"time"

	"mpdash/internal/dash"
)

// RenderChunksASCII draws the Figure-8 visualization in a terminal: a
// timeline where each chunk is a bar whose width is its download duration,
// whose fill character encodes the quality level (1–5), and whose leading
// dark cells show the fraction delivered over the cellular path.
func RenderChunksASCII(rep *dash.Report, cellularPath string, colsPerSecond float64) string {
	if colsPerSecond <= 0 {
		colsPerSecond = 2
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s / %s — each bar one chunk; digit = quality level; '#' = cellular share\n",
		rep.VideoName, rep.Algorithm)
	for _, r := range rep.Results {
		width := int((r.End - r.Start).Seconds() * colsPerSecond)
		if width < 1 {
			width = 1
		}
		var total, cell int64
		for name, bytes := range r.PathBytes {
			total += bytes
			if name == cellularPath {
				cell += bytes
			}
		}
		dark := 0
		if total > 0 {
			dark = int(float64(width) * float64(cell) / float64(total))
		}
		levelChar := byte('1' + r.Meta.LevelID - 1)
		bar := strings.Repeat("#", dark) + strings.Repeat(string(levelChar), width-dark)
		fmt.Fprintf(&b, "%7.1fs |%s\n", r.Start.Seconds(), bar)
	}
	return b.String()
}

// RenderThroughputASCII draws Fig. 1/6/11-style stacked throughput series:
// one row per second, bars for each path's Mbps.
func RenderThroughputASCII(names []string, series [][]float64, window time.Duration, maxCols int) string {
	if maxCols <= 0 {
		maxCols = 60
	}
	var b strings.Builder
	var maxV float64
	for _, s := range series {
		for _, v := range s {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	n := 0
	for _, s := range series {
		if len(s) > n {
			n = len(s)
		}
	}
	fmt.Fprintf(&b, "window=%v scale: full bar = %.1f Mbps\n", window, maxV)
	marks := []byte{'=', '#', '+', '%'}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%7.1fs ", (time.Duration(i) * window).Seconds())
		for si, s := range series {
			v := 0.0
			if i < len(s) {
				v = s[i]
			}
			w := int(v / maxV * float64(maxCols))
			fmt.Fprintf(&b, "|%-*s", maxCols, strings.Repeat(string(marks[si%len(marks)]), w))
		}
		b.WriteByte('\n')
	}
	header := "          "
	for si, name := range names {
		header += fmt.Sprintf("|%c=%-*s", marks[si%len(marks)], maxCols-2, name)
	}
	return header + "\n" + b.String()
}

// RenderBufferASCII draws the playback buffer trajectory: one row per
// chunk completion, bar length proportional to buffer occupancy. The Φ
// threshold used by the MP-DASH deadline extension is marked so the
// limit-cycle behaviour around it is visible.
func RenderBufferASCII(rep *dash.Report, bufferCap time.Duration, phiFrac float64, maxCols int) string {
	if maxCols <= 0 {
		maxCols = 50
	}
	if bufferCap <= 0 {
		bufferCap = 40 * time.Second
	}
	phiCol := int(phiFrac * float64(maxCols))
	var b strings.Builder
	fmt.Fprintf(&b, "buffer occupancy per chunk (full bar = %v, 'Φ' marks the extension threshold)\n", bufferCap)
	for _, r := range rep.Results {
		w := int(float64(r.BufferAfter) / float64(bufferCap) * float64(maxCols))
		if w > maxCols {
			w = maxCols
		}
		row := []byte(strings.Repeat("=", w) + strings.Repeat(" ", maxCols-w))
		if phiFrac > 0 && phiCol >= 0 && phiCol < len(row) {
			row[phiCol] = 'P'
		}
		fmt.Fprintf(&b, "%4d %5.1fs |%s|\n", r.Meta.Index, r.BufferAfter.Seconds(), row)
	}
	return b.String()
}

// levelColors maps ladder IDs to the figure's palette (light blue is the
// highest level, as in the paper).
var levelColors = []string{"#444444", "#7a5195", "#ef5675", "#ffa600", "#7fd1ea"}

// RenderChunksSVG produces a standalone SVG of the Figure-8 visualization.
func RenderChunksSVG(rep *dash.Report, cellularPath string) []byte {
	const (
		pxPerSec = 8.0
		maxBarH  = 120.0
		margin   = 24.0
	)
	var maxSize int64
	var endT float64
	for _, r := range rep.Results {
		if r.Meta.Size > maxSize {
			maxSize = r.Meta.Size
		}
		if e := r.End.Seconds(); e > endT {
			endT = e
		}
	}
	if maxSize == 0 {
		maxSize = 1
	}
	w := margin*2 + endT*pxPerSec
	h := margin*2 + maxBarH
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f">`, w, h)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%f" y="16" font-family="sans-serif" font-size="12">%s / %s — bar width = download time, height = chunk size, color = level, black = cellular</text>`,
		margin, rep.VideoName, rep.Algorithm)
	for _, r := range rep.Results {
		x := margin + r.Start.Seconds()*pxPerSec
		wBar := (r.End - r.Start).Seconds() * pxPerSec
		if wBar < 1 {
			wBar = 1
		}
		hBar := float64(r.Meta.Size) / float64(maxSize) * maxBarH
		y := margin + (maxBarH - hBar)
		color := levelColors[(r.Meta.LevelID-1)%len(levelColors)]
		var total, cell int64
		for name, bytes := range r.PathBytes {
			total += bytes
			if name == cellularPath {
				cell += bytes
			}
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`, x, y, wBar, hBar, color)
		if total > 0 && cell > 0 {
			hCell := hBar * float64(cell) / float64(total)
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="black"/>`, x, y+(hBar-hCell), wBar, hCell)
		}
	}
	b.WriteString(`</svg>`)
	return []byte(b.String())
}
