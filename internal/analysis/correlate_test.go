package analysis

import (
	"bytes"
	"testing"
	"time"

	"mpdash/internal/abr"
	"mpdash/internal/core"
	"mpdash/internal/dash"
	"mpdash/internal/mptcp"
	"mpdash/internal/pcaplite"
	"mpdash/internal/sim"
	"mpdash/internal/trace"
)

// capturedSession runs a full MP-DASH session with a live memory recorder
// attached to the transport, returning the report and the packet trace.
func capturedSession(t *testing.T, chunks int) (*dash.Report, *pcaplite.Trace) {
	t.Helper()
	s := sim.New()
	conn, err := mptcp.NewConn(s, mptcp.Config{
		Paths: []mptcp.PathSpec{
			{Name: "wifi", Rate: trace.Constant("w", 3.8, time.Second, 1), RTT: 50 * time.Millisecond, Primary: true},
			{Name: "lte", Rate: trace.Constant("l", 3.0, time.Second, 1), RTT: 60 * time.Millisecond, Cost: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &MemoryRecorder{PathNames: conn.PathNames()}
	conn.SetRecorder(rec)
	p, err := dash.NewPlayer(s, conn, dash.BigBuckBunny(), fixedLevelABR{level: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(chunks)
	if err != nil {
		t.Fatal(err)
	}
	return rep, rec.Trace()
}

// capturedSessionMPDash is capturedSession with the MP-DASH scheduler and
// adapter attached, on a WiFi-rich network so governed chunks run with
// the secondary disabled.
func capturedSessionMPDash(t *testing.T, chunks int) (*dash.Report, *pcaplite.Trace) {
	t.Helper()
	s := sim.New()
	conn, err := mptcp.NewConn(s, mptcp.Config{
		Paths: []mptcp.PathSpec{
			{Name: "wifi", Rate: trace.Constant("w", 20, time.Second, 1), RTT: 50 * time.Millisecond, Primary: true},
			{Name: "lte", Rate: trace.Constant("l", 10, time.Second, 1), RTT: 60 * time.Millisecond, Cost: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &MemoryRecorder{PathNames: conn.PathNames()}
	conn.SetRecorder(rec)
	sched, err := core.NewScheduler(s, conn, 1)
	if err != nil {
		t.Fatal(err)
	}
	adapter, err := abr.NewAdapter(sched, conn, abr.AdapterConfig{Policy: abr.RateBased})
	if err != nil {
		t.Fatal(err)
	}
	p, err := dash.NewPlayer(s, conn, dash.BigBuckBunny(), abr.NewFESTIVE(), adapter)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(chunks)
	if err != nil {
		t.Fatal(err)
	}
	return rep, rec.Trace()
}

type fixedLevelABR struct{ level int }

func (f fixedLevelABR) Name() string                                   { return "fixed" }
func (f fixedLevelABR) SelectLevel(dash.PlayerState) int               { return f.level }
func (f fixedLevelABR) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}

func TestCorrelateMatchesPlayerAccounting(t *testing.T) {
	rep, tr := capturedSession(t, 10)
	cts, err := Correlate(tr, rep.Events)
	if err != nil {
		t.Fatal(err)
	}
	if len(cts) != 10 {
		t.Fatalf("%d chunk traces", len(cts))
	}
	for i, ct := range cts {
		res := rep.Results[i]
		if ct.Chunk != res.Meta.Index {
			t.Fatalf("chunk order mismatch at %d", i)
		}
		// Packet-level reconstruction must agree with the player's own
		// per-chunk accounting.
		for path, want := range res.PathBytes {
			if got := ct.PathBytes[path]; got != want {
				t.Errorf("chunk %d path %s: trace %d != report %d", i, path, got, want)
			}
		}
		if ct.Segments == 0 {
			t.Errorf("chunk %d has no segments", i)
		}
		if ct.End <= ct.Start {
			t.Errorf("chunk %d window inverted", i)
		}
	}
}

func TestCorrelateRoundTripsThroughBinaryFormat(t *testing.T) {
	rep, tr := capturedSession(t, 5)
	// Serialize and re-read the trace, then correlate the parsed copy.
	var buf bytes.Buffer
	w, err := pcaplite.NewWriter(&buf, tr.Paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Records {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	parsed, err := pcaplite.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cts, err := Correlate(parsed, rep.Events)
	if err != nil {
		t.Fatal(err)
	}
	if len(cts) != 5 {
		t.Fatalf("%d chunk traces", len(cts))
	}
	var total int64
	for _, ct := range cts {
		for _, b := range ct.PathBytes {
			total += b
		}
	}
	var want int64
	for _, res := range rep.Results {
		for _, b := range res.PathBytes {
			want += b
		}
	}
	if total != want {
		t.Errorf("trace total %d != report total %d", total, want)
	}
}

func TestCorrelateDecisionBit(t *testing.T) {
	// Under MP-DASH, segments captured while the secondary is disabled
	// must carry a zero decision bit — so the per-chunk on-fraction is
	// below 1 for governed chunks that ran WiFi-only.
	rep, tr := capturedSessionMPDash(t, 12)
	cts, err := Correlate(tr, rep.Events)
	if err != nil {
		t.Fatal(err)
	}
	sawOff := false
	for _, ct := range cts {
		if ct.Segments > 0 && ct.MPDashOnFrac < 0.5 {
			sawOff = true
		}
	}
	if !sawOff {
		t.Error("no chunk shows the secondary-disabled decision bit")
	}
}

func TestCorrelateErrors(t *testing.T) {
	if _, err := Correlate(nil, nil); err == nil {
		t.Error("nil trace accepted")
	}
	// Done without start.
	tr := &pcaplite.Trace{Paths: []string{"wifi"}}
	events := []dash.Event{{Kind: dash.EventChunkDone, Chunk: 0}}
	if _, err := Correlate(tr, events); err == nil {
		t.Error("orphan chunk-done accepted")
	}
}
