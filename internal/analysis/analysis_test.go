package analysis

import (
	"strings"
	"testing"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/harness"
	"mpdash/internal/trace"
)

func sampleReport(t *testing.T, scheme harness.Scheme) *dash.Report {
	t.Helper()
	res, err := harness.RunSession(harness.SessionConfig{
		WiFi:   trace.Constant("w", 3.8, time.Second, 1),
		LTE:    trace.Constant("l", 3.0, time.Second, 1),
		Scheme: scheme,
		Chunks: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Report
}

func TestAnalyzeEmpty(t *testing.T) {
	m := Analyze(&dash.Report{}, "wifi")
	if m.Chunks != 0 {
		t.Errorf("chunks = %d", m.Chunks)
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func TestAnalyzeBasics(t *testing.T) {
	rep := sampleReport(t, harness.Baseline)
	m := Analyze(rep, "wifi")
	if m.Chunks != 25 {
		t.Fatalf("chunks = %d", m.Chunks)
	}
	var shareSum float64
	for _, s := range m.PathShare {
		if s < 0 || s > 1 {
			t.Errorf("share %v out of range", s)
		}
		shareSum += s
	}
	if shareSum < 0.999 || shareSum > 1.001 {
		t.Errorf("shares sum to %v", shareSum)
	}
	if m.AvgDownloadTime <= 0 {
		t.Error("AvgDownloadTime not positive")
	}
	if m.AvgLevel < 0 || m.AvgLevel > 4 {
		t.Errorf("AvgLevel = %v", m.AvgLevel)
	}
	if m.DeadlinePressure <= 0 {
		t.Error("baseline MPTCP should use the secondary path on most chunks")
	}
	if !strings.Contains(m.String(), "chunks=25") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestBaselineHasIdleGapsMPDashFewer(t *testing.T) {
	// Fig. 8 observation: MP-DASH "eliminates most of the idle gaps" by
	// stretching downloads to their deadlines.
	base := Analyze(sampleReport(t, harness.Baseline), "wifi")
	mp := Analyze(sampleReport(t, harness.MPDashRate), "wifi")
	if base.IdleTime == 0 {
		t.Skip("baseline produced no idle gaps in this short run")
	}
	if mp.IdleTime >= base.IdleTime {
		t.Errorf("MP-DASH idle %v >= baseline idle %v", mp.IdleTime, base.IdleTime)
	}
}

func TestRenderChunksASCII(t *testing.T) {
	rep := sampleReport(t, harness.MPDashRate)
	out := RenderChunksASCII(rep, "lte", 2)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 26 { // header + 25 chunks
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[0], rep.Algorithm) {
		t.Error("header missing algorithm")
	}
	for _, ln := range lines[1:] {
		if !strings.Contains(ln, "|") {
			t.Fatalf("malformed row %q", ln)
		}
	}
	// Default column scale on nonsense input.
	if RenderChunksASCII(rep, "lte", -1) == "" {
		t.Error("empty render")
	}
}

func TestRenderThroughputASCII(t *testing.T) {
	series := [][]float64{{1, 2, 3}, {3, 2, 1}}
	out := RenderThroughputASCII([]string{"wifi", "lte"}, series, time.Second, 20)
	if !strings.Contains(out, "wifi") || !strings.Contains(out, "0.0s") {
		t.Errorf("render = %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // legend + scale + 3 rows
		t.Fatalf("%d lines", len(lines))
	}
	// Zero series doesn't divide by zero.
	if RenderThroughputASCII([]string{"x"}, [][]float64{{0, 0}}, time.Second, 0) == "" {
		t.Error("empty zero-series render")
	}
}

func TestRenderBufferASCII(t *testing.T) {
	rep := sampleReport(t, harness.MPDashRate)
	out := RenderBufferASCII(rep, 40*time.Second, 0.8, 50)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 26 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[1], "|") || !strings.Contains(lines[1], "P") {
		t.Errorf("row missing bar or threshold marker: %q", lines[1])
	}
	// Defaults on zero arguments.
	if RenderBufferASCII(rep, 0, 0, 0) == "" {
		t.Error("default render empty")
	}
}

func TestRenderChunksSVG(t *testing.T) {
	rep := sampleReport(t, harness.MPDashRate)
	svg := string(RenderChunksSVG(rep, "lte"))
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an svg document")
	}
	if strings.Count(svg, "<rect") < 25 {
		t.Errorf("only %d rects", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, `fill="black"`) {
		t.Error("no cellular overlay rects")
	}
}
