package analysis

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mpdash/internal/harness"
	"mpdash/internal/trace"
)

func labTrace(mbps float64) *trace.Trace {
	return trace.Constant("lab", mbps, time.Second, 1)
}

func comparisonPair(t *testing.T) (base, mp *harness.SessionResult) {
	t.Helper()
	run := func(scheme harness.Scheme) *harness.SessionResult {
		res, err := harness.RunSession(harness.SessionConfig{
			WiFi:   labTrace(3.8),
			LTE:    labTrace(3.0),
			Scheme: scheme,
			Chunks: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	return run(harness.Baseline), run(harness.MPDashRate)
}

func TestCompare(t *testing.T) {
	base, mp := comparisonPair(t)
	c := Compare(
		SessionSummary{Report: base.Report, CellularBytes: base.LTEBytes(), RadioJ: base.RadioJ()},
		SessionSummary{Report: mp.Report, CellularBytes: mp.LTEBytes(), RadioJ: mp.RadioJ()},
	)
	if c.CellularSaving <= 0 {
		t.Errorf("cellular saving = %v", c.CellularSaving)
	}
	if c.StallDelta != 0 {
		t.Errorf("stall delta = %d", c.StallDelta)
	}
	if c.BitrateReduction > 0.05 {
		t.Errorf("bitrate reduction = %v", c.BitrateReduction)
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
	// Degenerate inputs do not divide by zero.
	zero := Compare(SessionSummary{}, SessionSummary{})
	if zero.CellularSaving != 0 || zero.EnergySaving != 0 {
		t.Errorf("zero compare = %+v", zero)
	}
}

func TestWriteMarkdown(t *testing.T) {
	_, mp := comparisonPair(t)
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, mp.Report, mp.RadioJ()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Session report",
		"| chunks | 40 |",
		"## Path usage",
		"## Chunks",
		"QoE score",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// One table row per chunk.
	if n := strings.Count(out, "\n| 3"); n < 1 {
		t.Error("chunk rows missing")
	}
}
