package analysis

import (
	"fmt"
	"sort"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/mptcp"
	"mpdash/internal/pcaplite"
)

// This file is the correlation half of the paper's analysis tool (§6): it
// joins a packet trace (pcaplite records captured at the transport) with
// a player event log, attributing every transport segment to the chunk
// whose download interval contains it — reconstructing per-chunk path
// splits from raw captures instead of trusting the player's accounting.

// ChunkTrace is the per-chunk reconstruction from a packet trace.
type ChunkTrace struct {
	Chunk     int
	Level     int
	Start     time.Duration
	End       time.Duration
	PathBytes map[string]int64
	// Segments is the number of transport segments attributed.
	Segments int
	// MPDashOnFrac is the fraction of segments whose DSS decision bit
	// said the secondary path was enabled.
	MPDashOnFrac float64
}

// Correlate joins a packet trace with a player event log. Events must
// contain matching chunk-start / chunk-done pairs (as the dash player
// emits); records outside any chunk interval are ignored (control
// traffic).
func Correlate(tr *pcaplite.Trace, events []dash.Event) ([]ChunkTrace, error) {
	if tr == nil {
		return nil, fmt.Errorf("analysis: nil trace")
	}
	type window struct {
		chunk, level int
		start, end   time.Duration
	}
	starts := map[int]dash.Event{}
	var windows []window
	for _, e := range events {
		switch e.Kind {
		case dash.EventChunkStart:
			starts[e.Chunk] = e
		case dash.EventChunkDone:
			s, ok := starts[e.Chunk]
			if !ok {
				return nil, fmt.Errorf("analysis: chunk %d done without start", e.Chunk)
			}
			windows = append(windows, window{chunk: e.Chunk, level: e.Level, start: s.Time, end: e.Time})
		}
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i].start < windows[j].start })

	out := make([]ChunkTrace, len(windows))
	onCount := make([]int, len(windows))
	for i, w := range windows {
		out[i] = ChunkTrace{
			Chunk: w.chunk, Level: w.level, Start: w.start, End: w.end,
			PathBytes: map[string]int64{},
		}
	}
	// Sweep records in capture order, attributing each to the earliest
	// window containing its timestamp: back-to-back chunks share a
	// boundary instant, and a segment landing exactly there belongs to
	// the finishing chunk, not the one about to start.
	wi := 0
	for _, r := range tr.Records {
		for wi < len(windows) && r.TS > windows[wi].end {
			wi++
		}
		if wi >= len(windows) {
			break
		}
		if r.TS < windows[wi].start {
			continue // control traffic between chunks
		}
		ct := &out[wi]
		ct.PathBytes[tr.Paths[r.Path]] += int64(r.Size)
		ct.Segments++
		dss, err := mptcp.DecodeDSSOption(r.DSS[:])
		if err != nil {
			return nil, fmt.Errorf("analysis: chunk %d: %w", ct.Chunk, err)
		}
		if dss.MPDashCellularEnable {
			onCount[wi]++
		}
	}
	for i := range out {
		if out[i].Segments > 0 {
			out[i].MPDashOnFrac = float64(onCount[i]) / float64(out[i].Segments)
		}
	}
	return out, nil
}

// TraceRecorder adapts a pcaplite.Writer to the mptcp.Recorder interface.
type TraceRecorder struct {
	W *pcaplite.Writer
	// Err holds the first write error; once set, recording stops.
	Err error
}

// RecordSegment implements mptcp.Recorder.
func (t *TraceRecorder) RecordSegment(ts time.Duration, pathIndex int, size int, dss mptcp.DSSOption) {
	if t.Err != nil {
		return
	}
	var rec pcaplite.Record
	rec.TS = ts
	rec.Path = uint8(pathIndex)
	if size > 0xffff {
		size = 0xffff
	}
	rec.Size = uint16(size)
	copy(rec.DSS[:], dss.Encode())
	t.Err = t.W.Write(rec)
}

// MemoryRecorder captures records in memory (for tests and small runs).
type MemoryRecorder struct {
	PathNames []string
	Records   []pcaplite.Record
}

// RecordSegment implements mptcp.Recorder.
func (m *MemoryRecorder) RecordSegment(ts time.Duration, pathIndex int, size int, dss mptcp.DSSOption) {
	var rec pcaplite.Record
	rec.TS = ts
	rec.Path = uint8(pathIndex)
	if size > 0xffff {
		size = 0xffff
	}
	rec.Size = uint16(size)
	copy(rec.DSS[:], dss.Encode())
	m.Records = append(m.Records, rec)
}

// Trace converts the captured records into a pcaplite.Trace.
func (m *MemoryRecorder) Trace() *pcaplite.Trace {
	return &pcaplite.Trace{Paths: m.PathNames, Records: m.Records}
}
