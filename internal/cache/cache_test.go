package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func body(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestPutGetRoundTrip(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20})
	k := Key{Video: "v", Level: 1, Chunk: 3}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := body(1024, 0xAB)
	if !c.Put(k, want) {
		t.Fatal("admissible body rejected")
	}
	got, ok := c.Get(k)
	if !ok || len(got) != len(want) || got[0] != 0xAB {
		t.Fatalf("Get = (%d bytes, %v)", len(got), ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 1024 {
		t.Errorf("stats after one put: %+v", st)
	}
}

func TestGetRangeSlicesAndBoundsChecks(t *testing.T) {
	c := New(Config{})
	k := Key{Video: "v", Chunk: 0}
	b := make([]byte, 100)
	for i := range b {
		b[i] = byte(i)
	}
	c.Put(k, b)
	got, ok := c.GetRange(k, 10, 19)
	if !ok || len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("GetRange(10,19) = (%v, %v)", got, ok)
	}
	for _, r := range [][2]int64{{-1, 5}, {5, 4}, {90, 100}, {100, 100}} {
		if _, ok := c.GetRange(k, r[0], r[1]); ok {
			t.Errorf("range %v accepted", r)
		}
	}
	if _, ok := c.GetRange(Key{Video: "absent"}, 0, 0); ok {
		t.Error("absent key served a range")
	}
}

func TestMaxLevelAdmission(t *testing.T) {
	c := New(Config{MaxLevel: 1})
	if !c.Put(Key{Video: "v", Level: 0}, body(10, 1)) {
		t.Error("level 0 rejected under MaxLevel 1")
	}
	if !c.Put(Key{Video: "v", Level: 1}, body(10, 1)) {
		t.Error("level 1 rejected under MaxLevel 1")
	}
	if c.Put(Key{Video: "v", Level: 2}, body(10, 1)) {
		t.Error("level 2 admitted under MaxLevel 1")
	}
	// Negative = admit everything (the default).
	all := New(Config{})
	if !all.Put(Key{Video: "v", Level: 99}, body(10, 1)) {
		t.Error("default config rejected a high level")
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	// A body larger than one shard's budget can never fit.
	c := New(Config{CapacityBytes: 1024, Shards: 1})
	if c.Put(Key{Video: "v"}, body(2048, 1)) {
		t.Error("body over shard capacity admitted")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("rejected put left residue: %+v", st)
	}
}

func TestDoorkeeperMinSeen(t *testing.T) {
	c := New(Config{MinSeen: 2, Shards: 1})
	k := Key{Video: "v", Chunk: 1}
	fill := func() ([]byte, error) { return body(64, 7), nil }
	// First demand: miss, fill runs, but the doorkeeper bars admission.
	if _, hit, err := c.Fetch(k, fill); hit || err != nil {
		t.Fatalf("first fetch: hit=%v err=%v", hit, err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("admitted on first sight despite MinSeen=2: %+v", st)
	}
	// Second demand: the key has now been seen, so the fill is admitted.
	if _, hit, err := c.Fetch(k, fill); hit || err != nil {
		t.Fatalf("second fetch: hit=%v err=%v", hit, err)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("not admitted on second sight: %+v", st)
	}
	// Third demand is a hit.
	if _, hit, err := c.Fetch(k, fill); !hit || err != nil {
		t.Fatalf("third fetch: hit=%v err=%v", hit, err)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// Single shard, room for exactly 4 × 256-byte bodies.
	c := New(Config{CapacityBytes: 1024, Shards: 1})
	key := func(i int) Key { return Key{Video: "v", Chunk: i} }
	for i := 0; i < 4; i++ {
		c.Put(key(i), body(256, byte(i)))
	}
	// Touch 0 so 1 becomes the LRU tail.
	if _, ok := c.Get(key(0)); !ok {
		t.Fatal("resident key missed")
	}
	c.Put(key(4), body(256, 4))
	if _, ok := c.Get(key(1)); ok {
		t.Error("LRU-tail key 1 survived the eviction")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if _, ok := c.Get(key(i)); !ok {
			t.Errorf("key %d evicted out of LRU order", i)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 4 {
		t.Errorf("stats after eviction: %+v", st)
	}
}

func TestFetchCountsAndPerVideo(t *testing.T) {
	c := New(Config{})
	fill := func() ([]byte, error) { return body(32, 1), nil }
	ka := Key{Video: "a", Chunk: 0}
	kb := Key{Video: "b", Chunk: 0}
	c.Fetch(ka, fill) // miss
	c.Fetch(ka, fill) // hit
	c.Fetch(ka, fill) // hit
	c.Fetch(kb, fill) // miss
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Fills != 2 || st.Collapsed != 0 {
		t.Errorf("stats: %+v", st)
	}
	pv := c.PerVideo()
	if pv["a"].Hits != 2 || pv["a"].Misses != 1 || pv["b"].Misses != 1 {
		t.Errorf("per-video: %+v", pv)
	}
	// The returned map is a copy, not a live view.
	pv["a"] = VideoStats{Hits: 99}
	if c.PerVideo()["a"].Hits != 2 {
		t.Error("PerVideo returned a live reference")
	}
}

func TestSingleflightCollapses64Misses(t *testing.T) {
	const n = 64
	c := New(Config{})
	k := Key{Video: "v", Level: 2, Chunk: 9}
	var fills atomic.Int64
	fill := func() ([]byte, error) {
		// Hold the flight open until every other goroutine has joined it,
		// so the collapse count is deterministic. The deadline only trips
		// on a wedged test; the Collapsed assertion below then explains.
		fills.Add(1)
		deadline := time.Now().Add(10 * time.Second)
		for c.Stats().Collapsed < n-1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		return body(4096, 0x5A), nil
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _, err := c.Fetch(k, fill)
			bodies[i], errs[i] = b, err
		}(i)
	}
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want exactly 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("fetcher %d: %v", i, errs[i])
		}
		if len(bodies[i]) != 4096 || bodies[i][0] != 0x5A {
			t.Fatalf("fetcher %d got a wrong body (%d bytes)", i, len(bodies[i]))
		}
	}
	st := c.Stats()
	if st.Fills != 1 {
		t.Errorf("Fills = %d, want 1", st.Fills)
	}
	if st.Hits+st.Misses != n {
		t.Errorf("Hits+Misses = %d, want %d", st.Hits+st.Misses, n)
	}
	if st.Misses != 1+st.Collapsed {
		t.Errorf("Misses (%d) != leader + Collapsed (%d)", st.Misses, 1+st.Collapsed)
	}
	// With the flight held open until all 64 joined, everyone after the
	// leader collapsed.
	if st.Collapsed != n-1 {
		t.Errorf("Collapsed = %d, want %d", st.Collapsed, n-1)
	}
}

func TestSingleflightLeaderErrorPropagates(t *testing.T) {
	c := New(Config{})
	k := Key{Video: "v", Chunk: 1}
	boom := errors.New("origin exhausted")
	const n = 16
	var fills atomic.Int64
	failing := func() ([]byte, error) {
		fills.Add(1)
		deadline := time.Now().Add(10 * time.Second)
		for c.Stats().Collapsed < n-1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		return nil, boom
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = c.Fetch(k, failing)
		}(i)
	}
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("failing fill ran %d times, want 1", got)
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d got %v, want the leader's error", i, err)
		}
	}
	// A failed fill caches nothing...
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("failed fill left residue: %+v", st)
	}
	// ...and the next Fetch retries from scratch.
	b, hit, err := c.Fetch(k, func() ([]byte, error) { return body(8, 1), nil })
	if err != nil || hit || len(b) != 8 {
		t.Fatalf("retry after failed flight: body=%d hit=%v err=%v", len(b), hit, err)
	}
	if _, hit, _ := c.Fetch(k, nil); !hit {
		t.Error("successful retry was not cached")
	}
}

func TestFetchConcurrentDistinctKeysRace(t *testing.T) {
	// Hammer many goroutines over overlapping keys through a small store
	// to let the race detector chew on shard locking and eviction.
	c := New(Config{CapacityBytes: 64 << 10, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := Key{Video: fmt.Sprintf("v%d", i%5), Level: g % 2, Chunk: i % 37}
				if _, _, err := c.Fetch(k, func() ([]byte, error) { return body(1024, byte(i)), nil }); err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, 8*200)
	}
	if st.Bytes > 64<<10 {
		t.Errorf("resident bytes %d exceed capacity", st.Bytes)
	}
}
