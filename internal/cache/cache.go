// Package cache implements the edge-tier chunk cache: a sharded LRU
// store of full chunk bodies with TinyLFU-flavoured admission (a
// per-rendition level cap plus an optional seen-count doorkeeper) and
// singleflight request collapsing, so N concurrent misses for the same
// (video, chunk, rendition) key trigger exactly one origin fetch while
// every waiter still gets the body — the exactly-once ledger contract
// extended across sessions.
//
// Entries hold whole chunks; byte-range requests are served by slicing
// (GetRange), which is what makes the collapsing effective: an MP-DASH
// client splits one chunk into disjoint range requests across two
// paths, and every one of them folds into a single whole-chunk fill.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mpdash/internal/obs"
)

// Key identifies one cached object: a (video, rendition, chunk) triple.
type Key struct {
	Video string
	Level int
	Chunk int
}

// Config bounds a Cache. The zero value selects the defaults noted on
// each field.
type Config struct {
	// CapacityBytes caps the total payload bytes held across all shards.
	// Default 64 MiB.
	CapacityBytes int64
	// Shards is the number of independently locked shards. Default 16.
	Shards int
	// MaxLevel is the highest rendition level index admitted to the
	// cache (the per-rendition admission policy: top-bitrate long-tail
	// renditions can be barred from displacing popular low ones).
	// Negative = admit every level. Default -1.
	MaxLevel int
	// MinSeen is the doorkeeper threshold: a key is admitted to the
	// store only once it has been requested MinSeen times (misses
	// included). 0 or 1 admits on first miss. Default 1.
	MinSeen int
}

func (c Config) withDefaults() Config {
	if c.CapacityBytes <= 0 {
		c.CapacityBytes = 64 << 20
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.MaxLevel == 0 {
		c.MaxLevel = -1
	}
	if c.MinSeen <= 0 {
		c.MinSeen = 1
	}
	return c
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	// Collapsed counts singleflight waiters that piggybacked on another
	// request's origin fill (the leader itself counts as one miss, not
	// as collapsed).
	Collapsed int64
	// Fills counts origin fetches actually performed by singleflight
	// leaders (successful or not).
	Fills   int64
	Entries int64
	Bytes   int64
}

// VideoStats is one video's request outcome tally, for the
// popularity-rank hit-rate report.
type VideoStats struct {
	Hits   int64
	Misses int64
}

// Cache is the sharded chunk store. Safe for concurrent use.
type Cache struct {
	cfg    Config
	shards []*shard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	collapsed atomic.Int64
	fills     atomic.Int64

	vmu    sync.Mutex
	videos map[string]*VideoStats

	// cobs is the published telemetry handle (telemetry.go); nil = off.
	cobs atomic.Pointer[cacheObs]
}

type entry struct {
	key  Key
	body []byte
	elem *list.Element
}

// flight is one in-progress singleflight origin fill. Waiters block on
// done; the leader publishes body/err before closing it.
type flight struct {
	done chan struct{}
	body []byte
	err  error
}

type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry
	lru     *list.List // front = most recent
	bytes   int64
	cap     int64
	seen    map[Key]int // doorkeeper counts for not-yet-admitted keys
	flights map[Key]*flight
}

// New builds a cache under cfg (zero value = defaults).
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{cfg: cfg, videos: make(map[string]*VideoStats)}
	per := cfg.CapacityBytes / int64(cfg.Shards)
	if per <= 0 {
		per = 1
	}
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, &shard{
			entries: make(map[Key]*entry),
			lru:     list.New(),
			cap:     per,
			seen:    make(map[Key]int),
			flights: make(map[Key]*flight),
		})
	}
	return c
}

// shardFor maps a key to its shard by FNV-1a over the key fields.
func (c *Cache) shardFor(k Key) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.Video); i++ {
		h = (h ^ uint64(k.Video[i])) * 1099511628211
	}
	h = (h ^ uint64(k.Level)) * 1099511628211
	h = (h ^ uint64(k.Chunk)) * 1099511628211
	return c.shards[h%uint64(len(c.shards))]
}

// Get returns the full cached body for k, or ok=false on a miss. A hit
// refreshes the key's LRU position. Get alone does not feed the
// doorkeeper — Fetch is the demand path; Get serves probes.
func (c *Cache) Get(k Key) ([]byte, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if ok {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return e.body, true
}

// GetRange returns body[from:to+1] of the cached chunk, or ok=false when
// the key is absent or the range exceeds the stored body.
func (c *Cache) GetRange(k Key, from, to int64) ([]byte, bool) {
	body, ok := c.Get(k)
	if !ok || from < 0 || to < from || to >= int64(len(body)) {
		return nil, false
	}
	return body[from : to+1], true
}

// Put inserts k's full body, subject to the admission policy, evicting
// from the tail of the shard's LRU list until the body fits. It reports
// whether the body was admitted.
func (c *Cache) Put(k Key, body []byte) bool {
	if !c.admitLevel(k) || int64(len(body)) > c.shardFor(k).cap {
		return false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if !s.admitSeenLocked(k, c.cfg.MinSeen) {
		s.mu.Unlock()
		return false
	}
	if e, ok := s.entries[k]; ok {
		s.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		s.lru.MoveToFront(e.elem)
		evicted := s.evictLocked()
		s.mu.Unlock()
		c.noteEvictions(evicted)
		return true
	}
	e := &entry{key: k, body: body}
	e.elem = s.lru.PushFront(e)
	s.entries[k] = e
	s.bytes += int64(len(body))
	delete(s.seen, k)
	evicted := s.evictLocked()
	s.mu.Unlock()
	c.noteEvictions(evicted)
	return true
}

// admitLevel applies the per-rendition admission cap.
func (c *Cache) admitLevel(k Key) bool {
	return c.cfg.MaxLevel < 0 || k.Level <= c.cfg.MaxLevel
}

// admitSeenLocked applies the doorkeeper: true once the key has been
// demanded at least minSeen times. The seen map is bounded: it resets
// when it outgrows 8× the shard's resident entries (a cold restart of
// the doorkeeper, not of the cache).
func (s *shard) admitSeenLocked(k Key, minSeen int) bool {
	if minSeen <= 1 {
		return true
	}
	if s.seen[k] >= minSeen {
		return true
	}
	if len(s.seen) > 8*(len(s.entries)+64) {
		s.seen = make(map[Key]int)
	}
	return false
}

// noteSeen counts one demand for k toward the doorkeeper.
func (s *shard) noteSeen(k Key) {
	s.mu.Lock()
	if _, resident := s.entries[k]; !resident {
		s.seen[k]++
	}
	s.mu.Unlock()
}

// evictLocked drops LRU-tail entries until the shard fits its budget,
// returning the evicted keys for journaling outside the lock.
func (s *shard) evictLocked() []Key {
	var out []Key
	for s.bytes > s.cap {
		tail := s.lru.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*entry)
		s.lru.Remove(tail)
		delete(s.entries, e.key)
		s.bytes -= int64(len(e.body))
		out = append(out, e.key)
	}
	return out
}

func (c *Cache) noteEvictions(keys []Key) {
	if len(keys) == 0 {
		return
	}
	c.evictions.Add(int64(len(keys)))
	for _, k := range keys {
		c.emitEvict(k)
	}
}

// Fetch returns k's body, collapsing concurrent misses: a hit returns
// immediately; on a miss, exactly one caller (the leader) runs fill and
// every concurrent caller for the same key waits for its outcome. A
// failed fill caches nothing and propagates the leader's error to all
// waiters; the next Fetch after the flight clears retries from scratch.
// hit reports whether the body came from the store without waiting on
// an origin fill (collapsed waiters report hit=false — they paid the
// fill latency too).
func (c *Cache) Fetch(k Key, fill func() ([]byte, error)) (body []byte, hit bool, err error) {
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		c.hits.Add(1)
		c.noteVideo(k.Video, true)
		c.emitHit(k)
		return e.body, true, nil
	}
	if fl, ok := s.flights[k]; ok {
		s.mu.Unlock()
		c.collapsed.Add(1)
		c.misses.Add(1)
		c.noteVideo(k.Video, false)
		c.emitCollapse(k)
		<-fl.done
		return fl.body, false, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[k] = fl
	s.mu.Unlock()

	c.misses.Add(1)
	c.noteVideo(k.Video, false)
	c.emitMiss(k)
	s.noteSeen(k)

	c.fills.Add(1)
	fl.body, fl.err = fill()
	if fl.err == nil {
		c.Put(k, fl.body)
	}
	s.mu.Lock()
	delete(s.flights, k)
	s.mu.Unlock()
	close(fl.done)
	return fl.body, false, fl.err
}

// noteVideo tallies one request outcome against k's video.
func (c *Cache) noteVideo(video string, hit bool) {
	c.vmu.Lock()
	vs := c.videos[video]
	if vs == nil {
		vs = &VideoStats{}
		c.videos[video] = vs
	}
	if hit {
		vs.Hits++
	} else {
		vs.Misses++
	}
	c.vmu.Unlock()
}

// Stats snapshots the cache-wide counters.
func (c *Cache) Stats() Stats {
	var entries, bytes int64
	for _, s := range c.shards {
		s.mu.Lock()
		entries += int64(len(s.entries))
		bytes += s.bytes
		s.mu.Unlock()
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Collapsed: c.collapsed.Load(),
		Fills:     c.fills.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}

// PerVideo returns the per-video request tallies (copy).
func (c *Cache) PerVideo() map[string]VideoStats {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	out := make(map[string]VideoStats, len(c.videos))
	for v, vs := range c.videos {
		out[v] = *vs
	}
	return out
}

// ---- telemetry (nil-safe, one atomic load per event) ----

// cacheObs bundles the cache's journal sink; counters are exposed as
// scrape-time collectors in Instrument, so the hot path never touches
// the registry.
type cacheObs struct {
	sink obs.Sink
}

// Instrument wires the cache to t: cache_* scrape-time collectors over
// the counters it already keeps, plus cache.hit/miss/evict/collapse
// journal events. Call once, before serving.
func (c *Cache) Instrument(t *obs.Telemetry) {
	if t == nil {
		return
	}
	r := t.Registry
	count := func(name, help string, get func(Stats) int64) {
		r.CounterFunc(name, help, nil, func() float64 { return float64(get(c.Stats())) })
	}
	count("cache_hits_total", "Chunk requests served from the edge cache.",
		func(s Stats) int64 { return s.Hits })
	count("cache_misses_total", "Chunk requests that needed an origin fill (collapsed waiters included).",
		func(s Stats) int64 { return s.Misses })
	count("cache_evictions_total", "Entries evicted under capacity pressure.",
		func(s Stats) int64 { return s.Evictions })
	count("cache_collapsed_total", "Misses that piggybacked on another request's origin fill (singleflight).",
		func(s Stats) int64 { return s.Collapsed })
	count("cache_fills_total", "Origin fetches performed by singleflight leaders.",
		func(s Stats) int64 { return s.Fills })
	r.GaugeFunc("cache_entries", "Chunks currently resident.",
		nil, func() float64 { return float64(c.Stats().Entries) })
	r.GaugeFunc("cache_bytes", "Payload bytes currently resident.",
		nil, func() float64 { return float64(c.Stats().Bytes) })
	c.cobs.Store(&cacheObs{sink: t})
}

func (c *Cache) emit(typ string, k Key) {
	co := c.cobs.Load()
	if co == nil || co.sink == nil {
		return
	}
	co.sink.Emit(obs.NewEvent(typ).WithChunk(k.Chunk, k.Level).
		WithStr("video", k.Video))
}

func (c *Cache) emitHit(k Key)      { c.emit("cache.hit", k) }
func (c *Cache) emitMiss(k Key)     { c.emit("cache.miss", k) }
func (c *Cache) emitEvict(k Key)    { c.emit("cache.evict", k) }
func (c *Cache) emitCollapse(k Key) { c.emit("cache.collapse", k) }
