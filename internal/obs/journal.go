package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrTruncatedTail reports that a JSONL stream ended mid-line — the
// usual signature of a run killed while the journal writer was
// flushing. ReadJournal returns the parsed prefix alongside it, so
// callers can treat it as a warning rather than losing the whole read.
var ErrTruncatedTail = errors.New("truncated final line")

// journalBatch is the staging threshold: appended events accumulate in
// a per-journal staging buffer and are encoded to the stream in blocks
// of this size (or on Flush), so the hot path pays a slice append under
// the cheap ring mutex instead of a JSON encode per event. Kept small
// enough that drop accounting (and the obs_journal_dropped_total
// metric) surfaces within a handful of events of a dead writer.
const journalBatch = 8

// Journal is a ring-buffered structured event log. The newest Cap events
// are always retrievable with Events; when a writer is attached with
// StreamTo, every appended event is additionally encoded as one JSON
// line (JSONL), so a long session can be captured in full even though
// the ring only keeps the tail. Safe for concurrent use.
//
// Stream writes are batched: Append stages events under the ring mutex
// and every journalBatch-th append drains the batch to the encoder
// under a separate writer mutex, acquired before the ring mutex is
// released so concurrent drains encode in append order (FIFO). The
// ring itself is always up to date — only the stream lags by at most
// one partial batch, which Flush forces out.
type Journal struct {
	mu    sync.Mutex
	buf   []Event
	next  int   // ring write cursor
	n     int   // events currently held (≤ len(buf))
	total int64 // events ever appended
	pend  []Event
	spare []Event // retired batch buffer, reused by the next staging cycle

	wmu     sync.Mutex // serializes encoding; taken under mu, held after
	w       *json.Encoder
	flush   func() error
	werr    error
	dropped int64 // events not written to w because of a write error
}

// NewJournal returns a journal holding the newest capacity events
// (capacity < 1 is clamped to 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{buf: make([]Event, capacity)}
}

// StreamTo attaches w: every subsequent Append is encoded to it as one
// JSON line, in append order, in blocks of journalBatch events. The
// first write error detaches nothing but is remembered (surfaced by
// Flush) and counts further events as dropped.
func (j *Journal) StreamTo(w io.Writer) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.wmu.Lock()
	defer j.wmu.Unlock()
	bw := bufio.NewWriter(w)
	j.w = json.NewEncoder(bw)
	j.flush = bw.Flush
}

// Append records one event.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.ringPut(e)
	if j.w == nil {
		j.mu.Unlock()
		return
	}
	j.pend = append(j.pend, e)
	if len(j.pend) < journalBatch {
		j.mu.Unlock()
		return
	}
	j.drain(false) // releases j.mu
}

// drain encodes the staged batch to the stream. Called with j.mu held;
// returns with it released. The writer mutex is acquired before the
// ring mutex is released so overlapping drains keep append order, and
// all encoding happens with only the writer mutex held — appenders
// never block on I/O. It returns a snapshot of (werr, dropped) taken
// after this batch settled.
func (j *Journal) drain(doFlush bool) (error, int64) {
	batch := j.pend
	if j.spare != nil {
		j.pend = j.spare[:0]
		j.spare = nil
	} else {
		j.pend = nil
	}
	j.wmu.Lock()
	j.mu.Unlock()
	newFail := false
	for _, e := range batch {
		if j.werr != nil {
			j.dropped++
			continue
		}
		if err := j.w.Encode(e); err != nil {
			j.werr = err
			j.dropped++
			newFail = true
		}
	}
	if doFlush && j.flush != nil && j.werr == nil {
		if err := j.flush(); err != nil {
			j.werr = err
			newFail = true
		}
	}
	werr, dropped := j.werr, j.dropped
	j.wmu.Unlock()

	// Retire the batch buffer for reuse and, on the first failure,
	// record the one-time ring marker. Both need the ring mutex, which
	// must be taken after wmu is released (lock order is mu → wmu).
	j.mu.Lock()
	if j.spare == nil && cap(batch) > 0 {
		j.spare = batch[:0]
	}
	if newFail {
		// One-time marker so the ring (still intact — only the stream
		// is broken) records when and why drops began. It is
		// deliberately not sent to the dead writer.
		drop := NewEvent("journal.drop").WithStr("error", werr.Error())
		drop.T = time.Now()
		j.ringPut(drop)
	}
	j.mu.Unlock()
	return werr, dropped
}

// ringPut inserts one event into the ring. Callers hold j.mu.
func (j *Journal) ringPut(e Event) {
	j.buf[j.next] = e
	j.next = (j.next + 1) % len(j.buf)
	if j.n < len(j.buf) {
		j.n++
	}
	j.total++
}

// Events returns the held events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	start := j.next - j.n
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(start+i)%len(j.buf)])
	}
	return out
}

// Len returns how many events the ring currently holds.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Total returns how many events have ever been appended (overwritten
// ring slots included).
func (j *Journal) Total() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Dropped returns how many events were not written to the attached
// stream because of a write error (see StreamTo). Exposed as the
// obs_journal_dropped_total metric by New.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.wmu.Lock()
	defer j.wmu.Unlock()
	return j.dropped
}

// Overwritten returns how many events the ring has discarded.
func (j *Journal) Overwritten() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total - int64(j.n)
}

// Flush drains any partially staged batch to the attached stream
// writer, flushes it, and returns the first stream write error
// encountered (nil when streaming is off or healthy).
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	if j.w == nil {
		j.mu.Unlock()
		return nil
	}
	werr, dropped := j.drain(true) // releases j.mu
	if werr != nil {
		return fmt.Errorf("obs: journal stream: %w (%d events dropped)", werr, dropped)
	}
	return nil
}

// ReadJournal decodes a JSONL journal stream (as produced by StreamTo)
// into events, in order. Blank lines are skipped; a malformed line in
// the middle of the stream stops the read with an error naming its line
// number. A malformed FINAL line — the signature of a run killed
// mid-write — returns the parsed prefix wrapped around ErrTruncatedTail
// so callers can keep the events and downgrade the error to a warning.
func ReadJournal(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			if !sc.Scan() {
				return out, fmt.Errorf("obs: journal line %d: %w", line, ErrTruncatedTail)
			}
			return out, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: journal read: %w", err)
	}
	return out, nil
}
