package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrTruncatedTail reports that a JSONL stream ended mid-line — the
// usual signature of a run killed while the journal writer was
// flushing. ReadJournal returns the parsed prefix alongside it, so
// callers can treat it as a warning rather than losing the whole read.
var ErrTruncatedTail = errors.New("truncated final line")

// Journal is a ring-buffered structured event log. The newest Cap events
// are always retrievable with Events; when a writer is attached with
// StreamTo, every appended event is additionally encoded as one JSON
// line (JSONL), so a long session can be captured in full even though
// the ring only keeps the tail. Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	buf     []Event
	next    int   // ring write cursor
	n       int   // events currently held (≤ len(buf))
	total   int64 // events ever appended
	w       *json.Encoder
	flush   func() error
	werr    error
	dropped int64 // events not written to w because of a write error
}

// NewJournal returns a journal holding the newest capacity events
// (capacity < 1 is clamped to 1).
func NewJournal(capacity int) *Journal {
	if capacity < 1 {
		capacity = 1
	}
	return &Journal{buf: make([]Event, capacity)}
}

// StreamTo attaches w: every subsequent Append is encoded to it as one
// JSON line. Writes happen under the journal lock, in append order. The
// first write error detaches nothing but is remembered (Err) and counts
// further events as dropped.
func (j *Journal) StreamTo(w io.Writer) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	bw := bufio.NewWriter(w)
	j.w = json.NewEncoder(bw)
	j.flush = bw.Flush
}

// Append records one event.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ringPut(e)
	if j.w != nil {
		if j.werr != nil {
			j.dropped++
		} else if err := j.w.Encode(e); err != nil {
			j.werr = err
			j.dropped++
			// One-time marker so the ring (still intact — only the
			// stream is broken) records when and why drops began. It is
			// deliberately not sent to the dead writer.
			drop := NewEvent("journal.drop").WithStr("error", err.Error())
			drop.T = time.Now()
			j.ringPut(drop)
		}
	}
}

// ringPut inserts one event into the ring. Callers hold j.mu.
func (j *Journal) ringPut(e Event) {
	j.buf[j.next] = e
	j.next = (j.next + 1) % len(j.buf)
	if j.n < len(j.buf) {
		j.n++
	}
	j.total++
}

// Events returns the held events, oldest first.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	start := j.next - j.n
	if start < 0 {
		start += len(j.buf)
	}
	for i := 0; i < j.n; i++ {
		out = append(out, j.buf[(start+i)%len(j.buf)])
	}
	return out
}

// Len returns how many events the ring currently holds.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Total returns how many events have ever been appended (overwritten
// ring slots included).
func (j *Journal) Total() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}

// Dropped returns how many events were not written to the attached
// stream because of a write error (see StreamTo). Exposed as the
// obs_journal_dropped_total metric by New.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Overwritten returns how many events the ring has discarded.
func (j *Journal) Overwritten() int64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total - int64(j.n)
}

// Flush flushes the attached stream writer, if any, and returns the
// first stream write error encountered (nil when streaming is off or
// healthy).
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.flush != nil {
		if err := j.flush(); err != nil && j.werr == nil {
			j.werr = err
		}
	}
	if j.werr != nil {
		return fmt.Errorf("obs: journal stream: %w (%d events dropped)", j.werr, j.dropped)
	}
	return nil
}

// ReadJournal decodes a JSONL journal stream (as produced by StreamTo)
// into events, in order. Blank lines are skipped; a malformed line in
// the middle of the stream stops the read with an error naming its line
// number. A malformed FINAL line — the signature of a run killed
// mid-write — returns the parsed prefix wrapped around ErrTruncatedTail
// so callers can keep the events and downgrade the error to a warning.
func ReadJournal(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			if !sc.Scan() {
				return out, fmt.Errorf("obs: journal line %d: %w", line, ErrTruncatedTail)
			}
			return out, fmt.Errorf("obs: journal line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: journal read: %w", err)
	}
	return out, nil
}
