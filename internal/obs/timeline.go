package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// RenderTimeline writes a human-readable per-chunk decision timeline of
// a journal: chunk spans (request → first byte → complete vs. deadline)
// as headers, with every decision event — subflow engage/stand-down
// with its driving throughput estimate, scheduler toggles, hedges,
// redials, breaker and path state transitions — indented under the
// chunk it belongs to. Events that are not chunk-scoped print at top
// level. Timestamps are relative to the first event (wall or sim time,
// whichever the journal carries).
func RenderTimeline(w io.Writer, events []Event) {
	if len(events) == 0 {
		fmt.Fprintln(w, "journal: no events")
		return
	}
	at := timeBase(events)
	chunks := map[int]bool{}
	for _, e := range events {
		if e.Chunk >= 0 {
			chunks[e.Chunk] = true
		}
	}
	fmt.Fprintf(w, "journal: %d events, %d chunks\n", len(events), len(chunks))
	for _, e := range events {
		indent := ""
		if e.Chunk >= 0 && e.Type != "chunk.start" && e.Type != "chunk.done" && e.Type != "chunk.fail" {
			indent = "  "
		}
		fmt.Fprintf(w, "[%+9.3fs] %s%s\n", at(e).Seconds(), indent, describe(e))
	}
}

// timeBase returns a function mapping each event to its offset from the
// journal's first timestamp, preferring wall time and falling back to
// sim time.
func timeBase(events []Event) func(Event) time.Duration {
	var t0 time.Time
	var s0 time.Duration
	haveT, haveS := false, false
	for _, e := range events {
		if !e.T.IsZero() && (!haveT || e.T.Before(t0)) {
			t0, haveT = e.T, true
		}
		if e.Sim != 0 && (!haveS || e.Sim < s0) {
			s0, haveS = e.Sim, true
		}
	}
	return func(e Event) time.Duration {
		if !e.T.IsZero() && haveT {
			return e.T.Sub(t0)
		}
		if haveS {
			return e.Sim - s0
		}
		return e.Sim
	}
}

// describe renders one event as a single line.
func describe(e Event) string {
	loc := ""
	if e.Chunk >= 0 {
		loc = fmt.Sprintf("chunk %d", e.Chunk)
		if e.Level >= 0 {
			loc += fmt.Sprintf(" level %d", e.Level)
		}
	}
	switch e.Type {
	case "chunk.start":
		return fmt.Sprintf("%s: start size=%s deadline=%.2fs segments=%.0f",
			loc, fmtBytes(e.Num["size"]), e.Num["deadline_s"], e.Num["segments"])
	case "chunk.firstbyte":
		return fmt.Sprintf("first byte after %.3fs", e.Num["elapsed_s"])
	case "chunk.done":
		verdict := "met"
		if e.Num["slack_s"] < 0 {
			verdict = fmt.Sprintf("MISSED by %.2fs", -e.Num["slack_s"])
		}
		return fmt.Sprintf("%s: done in %.2fs (%s, slack %.2fs) primary=%s secondary=%s",
			loc, e.Num["duration_s"], verdict, e.Num["slack_s"],
			fmtBytes(e.Num["primary_bytes"]), fmtBytes(e.Num["secondary_bytes"]))
	case "chunk.fail":
		return fmt.Sprintf("%s: FAILED: %s", loc, e.Str["error"])
	case "chunk.abort":
		pre := ""
		if e.Str["prearmed"] == "true" {
			pre = " [board pre-armed]"
		}
		return fmt.Sprintf("%s: ABORT doomed%s: est=%s×%.0f paths, %s left, best finish %.2fs > window %.2fs",
			loc, pre, fmtRate(e.Num["rate_bps"]), e.Num["paths"],
			fmtBytes(e.Num["remaining_bytes"]), e.Num["best_finish_s"], e.Num["window_s"])
	case "path.engage":
		reason := e.Str["reason"]
		if reason == "" {
			reason = "pressure"
		}
		return fmt.Sprintf("%s ENGAGE (%s): est=%s remaining=%s window=%.2fs",
			e.Path, reason, fmtRate(e.Num["rate_bps"]), fmtBytes(e.Num["remaining_bytes"]), e.Num["window_s"])
	case "path.standdown":
		return fmt.Sprintf("%s stand down: est=%s remaining=%s window=%.2fs",
			e.Path, fmtRate(e.Num["rate_bps"]), fmtBytes(e.Num["remaining_bytes"]), e.Num["window_s"])
	case "path.state":
		return fmt.Sprintf("%s path %s", e.Path, e.Str["state"])
	case "path.redial":
		out := fmt.Sprintf("%s redial→%s", e.Path, e.Str["origin"])
		if e.Str["ok"] == "false" {
			out += " FAILED"
		}
		return out
	case "breaker.state":
		return fmt.Sprintf("%s breaker %s: %s→%s", e.Path, e.Str["origin"], e.Str["from"], e.Str["to"])
	case "hedge.arm":
		return fmt.Sprintf("%s hedge armed→%s after %.3fs", e.Path, e.Str["origin"], e.Num["delay_s"])
	case "hedge.win":
		return fmt.Sprintf("%s hedge WON", e.Path)
	case "hedge.lose":
		return fmt.Sprintf("%s hedge lost", e.Path)
	case "hedge.cancel":
		return fmt.Sprintf("%s hedge loser cancelled (wasted %s)", e.Path, fmtBytes(e.Num["wasted_bytes"]))
	case "fetch.fault":
		return fmt.Sprintf("%s fault: %s", e.Path, e.Str["error"])
	case "sched.toggle":
		state := "OFF"
		if e.Str["on"] == "true" {
			state = "ON"
		}
		return fmt.Sprintf("sched: %s %s (est=%s remaining=%s slack=%.2fs)",
			e.Path, state, fmtRate(e.Num["estimate_bps"]), fmtBytes(e.Num["remaining_bytes"]), e.Num["slack_s"])
	case "sched.enable":
		return fmt.Sprintf("sched: govern %s over %.2fs", fmtBytes(e.Num["size"]), e.Num["window_s"])
	case "sched.disable":
		return "sched: released"
	case "sched.miss":
		return "sched: DEADLINE MISS — all paths on"
	case "adapter.extend", "stream.extend":
		return fmt.Sprintf("deadline extended +%.2fs (buffer %.2fs > Φ %.2fs)",
			e.Num["extension_s"], e.Num["buffer_s"], e.Num["phi_s"])
	case "adapter.skip":
		return fmt.Sprintf("low buffer: MP-DASH off (buffer %.2fs < Ω %.2fs)",
			e.Num["buffer_s"], e.Num["omega_s"])
	case "adapter.govern":
		return fmt.Sprintf("governed: deadline %.2fs", e.Num["deadline_s"])
	case "stream.stall":
		return fmt.Sprintf("STALL %.2fs", e.Num["stall_s"])
	case "stream.refetch":
		return "retry budget blown: lifeline refetch at lowest level"
	case "stream.lost":
		return "chunk LOST (lifeline failed too)"
	case "stream.downgrade":
		return fmt.Sprintf("DOWNGRADE level %d→%.0f (est=%s, %.2fs left)",
			e.Level, e.Num["to_level"], fmtRate(e.Num["rate_bps"]), e.Num["window_s"])
	case "cache.hit":
		return fmt.Sprintf("cache HIT %s", e.Str["video"])
	case "cache.miss":
		return fmt.Sprintf("cache MISS %s: origin fill", e.Str["video"])
	case "cache.collapse":
		return fmt.Sprintf("cache miss COLLAPSED %s: waiting on the in-flight fill", e.Str["video"])
	case "cache.evict":
		return fmt.Sprintf("cache evict %s", e.Str["video"])
	case "cache.hint":
		return fmt.Sprintf("%s cache hint %s (prior %.2f)", e.Path, e.Str["state"], e.Num["prior"])
	case "board.seed":
		return fmt.Sprintf("board seed %s: est=%s", e.Str["key"], fmtRate(e.Num["rate_bps"]))
	case "board.drop":
		return fmt.Sprintf("board DROP %s: observed %s (epoch %.0f)",
			e.Str["key"], fmtRate(e.Num["rate_bps"]), e.Num["epoch"])
	case "swarm.capacity.drop":
		return fmt.Sprintf("tier capacity drop at %.1fs: wifi ×%g lte ×%g (%.0f origins)",
			e.Num["at_s"], e.Num["wifi_factor"], e.Num["lte_factor"], e.Num["origins"])
	case "chaos.capacity.drop":
		return fmt.Sprintf("%s capacity DROP: wifi ×%g lte ×%g (%.0f origins)",
			chaosMarker, e.Num["wifi_factor"], e.Num["lte_factor"], e.Num["origins"])
	case "chaos.capacity.restore":
		return fmt.Sprintf("%s capacity RESTORE (%.0f origins back to original rates)",
			chaosMarker, e.Num["origins"])
	case "chaos.fault.surge":
		return fmt.Sprintf("%s fault SURGE (%.0f origins)", chaosMarker, e.Num["origins"])
	case "chaos.fault.clear":
		return fmt.Sprintf("%s fault CLEAR (%.0f origins)", chaosMarker, e.Num["origins"])
	case "chaos.path.blackout":
		return fmt.Sprintf("%s path BLACKOUT %s (%.0f origins down)",
			chaosMarker, e.Str["path"], e.Num["origins"])
	case "chaos.path.heal":
		return fmt.Sprintf("%s path HEAL %s (%.0f origins back)",
			chaosMarker, e.Str["path"], e.Num["origins"])
	case "chaos.origin.crash":
		return fmt.Sprintf("%s origin CRASH %s#%.0f (%.0f origins down)",
			chaosMarker, e.Str["path"], e.Num["origin"], e.Num["origins"])
	case "chaos.origin.restart":
		return fmt.Sprintf("%s origin RESTART %s#%.0f (%.0f origins back)",
			chaosMarker, e.Str["path"], e.Num["origin"], e.Num["origins"])
	case "session.panic":
		return fmt.Sprintf("session %.0f PANIC: %s", e.Num["session"], firstLine(e.Str["panic"]))
	case "audit.start":
		return fmt.Sprintf("audit start (goroutine watermark %.0f)", e.Num["goroutine_watermark"])
	case "audit.violation":
		return fmt.Sprintf("AUDIT VIOLATION [%s]: %s", e.Str["invariant"], firstLine(e.Str["detail"]))
	case "audit.done":
		verdict := "PASS"
		if e.Num["violations"] > 0 {
			verdict = "FAIL"
		}
		return fmt.Sprintf("audit %s: %.0f violations, %.0f events, goroutines %.0f (watermark %.0f)",
			verdict, e.Num["violations"], e.Num["events"], e.Num["goroutines"], e.Num["goroutine_watermark"])
	default:
		return genericLine(e, loc)
	}
}

// chaosMarker flags executed chaos-timeline events so they stand out as
// timeline markers among the per-chunk noise.
const chaosMarker = "== CHAOS =="

// firstLine truncates multi-line payloads (panic values, stack hints)
// to their first line for the one-line timeline.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}

// genericLine renders unknown event types as type + sorted key=value.
func genericLine(e Event, loc string) string {
	var b strings.Builder
	b.WriteString(e.Type)
	if e.Path != "" {
		fmt.Fprintf(&b, " path=%s", e.Path)
	}
	if loc != "" {
		fmt.Fprintf(&b, " (%s)", loc)
	}
	keys := make([]string, 0, len(e.Num))
	for k := range e.Num {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%g", k, e.Num[k])
	}
	skeys := make([]string, 0, len(e.Str))
	for k := range e.Str {
		skeys = append(skeys, k)
	}
	sort.Strings(skeys)
	for _, k := range skeys {
		fmt.Fprintf(&b, " %s=%s", k, e.Str[k])
	}
	return b.String()
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1e6:
		return fmt.Sprintf("%.1fMB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1fKB", b/1e3)
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

func fmtRate(bps float64) string {
	switch {
	case bps >= 1e6:
		return fmt.Sprintf("%.2fMbps", bps/1e6)
	case bps >= 1e3:
		return fmt.Sprintf("%.1fkbps", bps/1e3)
	default:
		return fmt.Sprintf("%.0fbps", bps)
	}
}
