package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Handler returns the telemetry HTTP mux:
//
//	/metrics          Prometheus text exposition of the registry
//	/debug/vars       expvar JSON (process + published vars)
//	/debug/pprof/...  net/http/pprof profiles
//
// Mountable on any server; Serve starts a dedicated one.
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := t.Registry.WritePrometheus(w); err != nil {
			// The connection is gone; nothing useful to do.
			return
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "mpdash telemetry: /metrics /debug/vars /debug/pprof/\n")
	})
	return mux
}

// publishOnce guards the process-wide expvar publication (expvar.Publish
// panics on duplicate names, and tests create many Telemetries).
var publishOnce sync.Once

// publishExpvar exposes the registry under the "mpdash" expvar as a map
// of series → value, so /debug/vars carries the same numbers as
// /metrics. Only the first telemetry to serve wins the name; later ones
// are still fully served by their own /metrics.
func (t *Telemetry) publishExpvar() {
	reg := t.Registry
	publishOnce.Do(func() {
		expvar.Publish("mpdash", expvar.Func(func() any {
			out := make(map[string]float64)
			for _, fs := range reg.snapshotFams() {
				name := fs.f.name
				for _, s := range fs.sers {
					switch {
					case s.h != nil:
						out[name+s.labels+"_count"] = float64(s.h.Count())
						out[name+s.labels+"_sum"] = s.h.Sum()
					case s.fn != nil:
						out[name+s.labels] = s.fn()
					case s.c != nil:
						out[name+s.labels] = float64(s.c.Value())
					case s.g != nil:
						out[name+s.labels] = s.g.Value()
					}
				}
			}
			return out
		}))
	})
}

// MetricsServer is a running telemetry HTTP endpoint.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close shuts the endpoint down immediately.
func (m *MetricsServer) Close() error { return m.srv.Close() }

// Serve starts the telemetry endpoint on addr (e.g. "127.0.0.1:9090" or
// "127.0.0.1:0") in a background goroutine and returns it.
func (t *Telemetry) Serve(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	t.publishExpvar()
	srv := &http.Server{Handler: t.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return &MetricsServer{ln: ln, srv: srv}, nil
}
