package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// 128 concurrent sessions hammer the sharded registry — counters,
// gauges, histograms, plus a ShardedCounter — and every total must come
// out exact once the writers quiesce (run under -race in CI).
func TestShardedRegistryExactTotalsUnder128Sessions(t *testing.T) {
	const sessions = 128
	const perSession = 250
	r := NewRegistry()
	var sc ShardedCounter
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := Labels{"path": "wifi"}
			if id%2 == 1 {
				lbl = Labels{"path": "lte"}
			}
			// Re-resolve handles every iteration: the steady-state
			// read-lock lookup is exactly the contended path sharding
			// exists to spread out.
			for i := 0; i < perSession; i++ {
				r.Counter("swarm_chunks_total", "Chunks fetched.", lbl).Inc()
				r.Gauge(fmt.Sprintf("swarm_lane_%d", id%8), "Lane gauge.", nil).Set(float64(i))
				r.Histogram("swarm_chunk_seconds", "Chunk duration.", nil, nil).Observe(0.01)
				sc.Inc(uint64(id))
			}
		}(s)
	}
	wg.Wait()

	if got := r.Counter("swarm_chunks_total", "", Labels{"path": "wifi"}).Value(); got != sessions/2*perSession {
		t.Errorf("wifi counter = %d, want %d", got, sessions/2*perSession)
	}
	if got := r.Counter("swarm_chunks_total", "", Labels{"path": "lte"}).Value(); got != sessions/2*perSession {
		t.Errorf("lte counter = %d, want %d", got, sessions/2*perSession)
	}
	if got := r.Histogram("swarm_chunk_seconds", "", nil, nil).Count(); got != sessions*perSession {
		t.Errorf("histogram count = %d, want %d", got, sessions*perSession)
	}
	if got := sc.Value(); got != sessions*perSession {
		t.Errorf("ShardedCounter = %d, want %d", got, sessions*perSession)
	}

	// Exposition must be stable: two consecutive scrapes of a quiesced
	// registry render byte-identically despite the families living on
	// different shards.
	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("consecutive scrapes differ")
	}
}

// Families must render in registration order even when their names hash
// to different shards — the sharding refactor must not change scrape
// output.
func TestShardedRegistryPreservesRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	names := []string{"z_last_name", "a_first_name", "m_mid_name", "q_other", "b_two", "x_nine"}
	for _, n := range names {
		r.Counter(n, "h", nil).Inc()
	}
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	pos := -1
	for _, n := range names {
		p := strings.Index(buf.String(), "# TYPE "+n+" ")
		if p < 0 {
			t.Fatalf("family %s missing from exposition", n)
		}
		if p < pos {
			t.Errorf("family %s rendered out of registration order", n)
		}
		pos = p
	}
}

func TestShardedCounterNilAndNegative(t *testing.T) {
	var nilC *ShardedCounter
	nilC.Add(1, 5)
	nilC.Inc(2)
	if got := nilC.Value(); got != 0 {
		t.Errorf("nil counter Value = %d, want 0", got)
	}
	var c ShardedCounter
	c.Add(0, -3) // ignored: monotonic
	c.Add(1, 2)
	c.Add(1+counterStripes, 3) // same stripe as key 1
	c.Inc(7)
	if got := c.Value(); got != 6 {
		t.Errorf("Value = %d, want 6", got)
	}
}
