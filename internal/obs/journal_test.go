package obs

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalRingWraparound(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 20; i++ {
		j.Append(NewEvent("e").WithNum("seq", float64(i)))
	}
	if j.Len() != 8 {
		t.Errorf("Len = %d, want 8", j.Len())
	}
	if j.Total() != 20 {
		t.Errorf("Total = %d, want 20", j.Total())
	}
	if j.Overwritten() != 12 {
		t.Errorf("Overwritten = %d, want 12", j.Overwritten())
	}
	evs := j.Events()
	for i, e := range evs {
		if want := float64(12 + i); e.Num["seq"] != want {
			t.Errorf("event %d seq = %v, want %v (oldest-first tail)", i, e.Num["seq"], want)
		}
	}
}

func TestJournalConcurrentWriters(t *testing.T) {
	const writers, each, cap = 8, 200, 64
	j := NewJournal(cap)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.Append(NewEvent("e").
					WithStr("writer", fmt.Sprintf("w%d", w)).
					WithNum("seq", float64(i)))
			}
		}(w)
	}
	wg.Wait()
	if j.Total() != writers*each {
		t.Errorf("Total = %d, want %d", j.Total(), writers*each)
	}
	if j.Len() != cap {
		t.Errorf("Len = %d, want %d", j.Len(), cap)
	}
	// The ring holds events in append order, so each writer's surviving
	// events must appear with strictly increasing sequence numbers.
	last := map[string]float64{}
	for _, e := range j.Events() {
		w := e.Str["writer"]
		if prev, ok := last[w]; ok && e.Num["seq"] <= prev {
			t.Fatalf("writer %s out of order: %v after %v", w, e.Num["seq"], prev)
		}
		last[w] = e.Num["seq"]
	}
}

func TestJournalStreamRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(2) // smaller than the event count: streaming keeps all
	j.StreamTo(&buf)
	want := []Event{
		NewEvent("chunk.start").WithChunk(0, 2).WithNum("size", 1000),
		NewEvent("path.engage").WithPath("secondary").WithNum("rate_bps", 3.2e6).WithStr("reason", "pressure"),
		NewEvent("chunk.done").WithChunk(0, 2).WithNum("slack_s", 1.5),
	}
	now := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	for i, e := range want {
		e.T = now.Add(time.Duration(i) * time.Second)
		want[i] = e
		j.Append(want[i])
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || !got[i].T.Equal(want[i].T) ||
			got[i].Chunk != want[i].Chunk || got[i].Path != want[i].Path {
			t.Errorf("event %d = %+v, want %+v", i, got[i], want[i])
		}
		for k, v := range want[i].Num {
			if got[i].Num[k] != v {
				t.Errorf("event %d num[%s] = %v, want %v", i, k, got[i].Num[k], v)
			}
		}
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJournalStreamWriteError(t *testing.T) {
	j := NewJournal(4)
	j.StreamTo(failWriter{})
	// Fill well past the bufio buffer so the failure surfaces.
	big := strings.Repeat("x", 8192)
	for i := 0; i < 16; i++ {
		j.Append(NewEvent("e").WithStr("pad", big))
	}
	err := j.Flush()
	if err == nil {
		t.Fatal("Flush returned nil after stream write failures")
	}
	if !strings.Contains(err.Error(), "dropped") {
		t.Errorf("error does not report dropped events: %v", err)
	}
	// The ring is unaffected by the broken stream.
	if j.Len() != 4 {
		t.Errorf("Len = %d, want 4", j.Len())
	}
}

func TestJournalDropCounterAndMarker(t *testing.T) {
	j := NewJournal(32)
	j.StreamTo(failWriter{})
	big := strings.Repeat("x", 8192)
	const appended = 16
	for i := 0; i < appended; i++ {
		j.Append(NewEvent("e").WithNum("seq", float64(i)).WithStr("pad", big))
	}
	if j.Dropped() == 0 {
		t.Fatal("Dropped = 0 after stream write failures")
	}
	// The ring carries a single journal.drop marker recording when the
	// drops began, inserted where the stream broke.
	drops := 0
	for _, e := range j.Events() {
		if e.Type == "journal.drop" {
			drops++
			if e.Str["error"] == "" {
				t.Error("journal.drop lacks the write error")
			}
			if e.T.IsZero() {
				t.Error("journal.drop lacks a timestamp")
			}
		}
	}
	if drops != 1 {
		t.Errorf("ring holds %d journal.drop markers, want exactly 1", drops)
	}
	// Every appended event is still in the ring: only the stream broke.
	if j.Total() != appended+1 {
		t.Errorf("Total = %d, want %d appends + 1 marker", j.Total(), appended+1)
	}
}

func TestJournalDroppedMetric(t *testing.T) {
	tel := New()
	tel.Journal.StreamTo(failWriter{})
	big := strings.Repeat("x", 8192)
	for i := 0; i < 8; i++ {
		tel.Emit(NewEvent("e").WithStr("pad", big))
	}
	var sb strings.Builder
	if err := tel.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "obs_journal_dropped_total") {
		t.Fatal("obs_journal_dropped_total not exposed")
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "obs_journal_dropped_total") && strings.HasSuffix(line, " 0") {
			t.Errorf("dropped metric still zero after write failures: %q", line)
		}
	}
}

func TestReadJournalTruncatedTail(t *testing.T) {
	in := `{"type":"a","chunk":-1,"level":-1}` + "\n" + `{"type":"b","chu`
	got, err := ReadJournal(strings.NewReader(in))
	if !errors.Is(err, ErrTruncatedTail) {
		t.Fatalf("err = %v, want ErrTruncatedTail", err)
	}
	if len(got) != 1 || got[0].Type != "a" {
		t.Fatalf("parsed prefix = %+v, want the one intact event", got)
	}
}

func TestReadJournalMalformed(t *testing.T) {
	in := strings.NewReader(`{"type":"a","chunk":-1,"level":-1}` + "\n\nnot json\n")
	got, err := ReadJournal(in)
	if err == nil {
		t.Fatal("malformed line did not error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error does not name line 3: %v", err)
	}
	if len(got) != 1 || got[0].Type != "a" {
		t.Errorf("events before the bad line lost: %+v", got)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Append(NewEvent("e"))
	j.StreamTo(&bytes.Buffer{})
	if j.Len() != 0 || j.Total() != 0 || j.Events() != nil || j.Flush() != nil {
		t.Error("nil journal not inert")
	}
}

// Batched streaming: a partial batch stays staged until Flush forces it
// out, full batches drain on the threshold append, and a concurrent
// append storm loses nothing — every event reaches the stream exactly
// once, per-writer in order.
func TestJournalBatchedStream(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(16)
	j.StreamTo(&buf)

	// Below the batch threshold nothing needs to have hit the stream
	// yet; Flush must force the partial batch out.
	for i := 0; i < journalBatch-1; i++ {
		j.Append(NewEvent("early").WithNum("seq", float64(i)))
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != journalBatch-1 {
		t.Fatalf("after Flush: stream holds %d events, want %d", len(evs), journalBatch-1)
	}

	const writers, each = 4, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				j.Append(NewEvent("e").
					WithStr("writer", fmt.Sprintf("w%d", w)).
					WithNum("seq", float64(i)))
			}
		}(w)
	}
	wg.Wait()
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err = ReadJournal(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if want := journalBatch - 1 + writers*each; len(evs) != want {
		t.Fatalf("stream holds %d events, want %d", len(evs), want)
	}
	// FIFO per writer across drains.
	last := map[string]float64{}
	for _, e := range evs {
		if e.Type != "e" {
			continue
		}
		w := e.Str["writer"]
		if prev, ok := last[w]; ok && e.Num["seq"] <= prev {
			t.Fatalf("writer %s out of order: %v after %v", w, e.Num["seq"], prev)
		}
		last[w] = e.Num["seq"]
	}
}
