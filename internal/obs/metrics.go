package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric series' label set. Registry keys series on the
// sorted, escaped rendering of their labels, so map ordering is
// irrelevant.
type Labels map[string]string

// render returns the canonical {k="v",...} rendering of l (empty string
// for no labels), with keys sorted and values escaped per the Prometheus
// text format. This sits on the metric-handle hot path (every labeled
// lookup renders its key), so it avoids fmt and allocates exactly once
// for the common single-label set.
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	if len(l) == 1 {
		// Fast path: no key slice, no sort, one sized Builder allocation.
		for k, v := range l {
			ev := escapeLabel(v)
			var b strings.Builder
			b.Grow(len(k) + len(ev) + 4)
			b.WriteByte('{')
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(ev)
			b.WriteString(`"}`)
			return b.String()
		}
	}
	keys := make([]string, 0, len(l))
	size := 2
	for k, v := range l {
		keys = append(keys, k)
		size += len(k) + len(v) + 4
	}
	sort.Strings(keys)
	var b strings.Builder
	b.Grow(size)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes backslash, double quote, and newline per the
// Prometheus text exposition format. Unlike Go's %q it leaves every other
// byte — UTF-8 sequences included — untouched, which is what the format
// specifies (and what scrapers unescape).
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// Counter is a monotonically increasing int64 metric. All methods are
// nil-safe: a nil *Counter is the no-op handle instrumented code holds
// when telemetry is off.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (negative deltas are ignored —
// counters are monotonic).
func (c *Counter) Add(d int64) {
	if c == nil || d < 0 {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down. Nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram with Prometheus-style cumulative
// exposition and linear-interpolation quantile estimation. Buckets are
// the sorted upper bounds; samples above the last bound land in the
// implicit +Inf overflow bucket. Nil-safe.
//
// The write path is lock-free: per-bucket atomic counters plus a CAS
// loop over the float64 sum, so concurrent observers never serialize on
// a histogram mutex. Readers take a field-by-field snapshot; across a
// burst of concurrent writes a scrape may see a sum a few samples ahead
// of the bucket counts (and vice versa), which is the usual Prometheus
// client contract — each field is monotone and exact once writers
// quiesce.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is the overflow bucket
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// newHistogram copies and sorts bounds; an empty bounds slice yields a
// single overflow bucket (sum/count still track).
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one sample. NaN samples are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// snapshot reads the histogram's state: per-bucket counts, sum, count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, math.Float64frombits(h.sum.Load()), h.count.Load()
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the bucket holding the target rank. It returns NaN on an empty
// histogram or out-of-range q. Samples in the overflow bucket are
// reported as the last finite bound (the estimate saturates there, which
// keeps the estimator monotone in q).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	counts, sum, count := h.snapshot()
	if count == 0 {
		return math.NaN()
	}
	rank := q * float64(count)
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.bounds) {
			// Overflow bucket: no finite upper bound to interpolate to.
			if len(h.bounds) == 0 {
				return sum / float64(count) // degenerate: mean
			}
			return h.bounds[len(h.bounds)-1]
		}
		upper := h.bounds[i]
		lower := 0.0
		if i > 0 {
			lower = h.bounds[i-1]
		} else if upper < 0 {
			lower = upper // all-negative first bucket: saturate
		}
		// Interpolate within [lower, upper] by the rank's position in
		// this bucket.
		inBucket := float64(c)
		if inBucket == 0 {
			return upper
		}
		pos := (rank - float64(cum-c)) / inBucket
		return lower + (upper-lower)*pos
	}
	if len(h.bounds) == 0 {
		return sum / float64(count)
	}
	return h.bounds[len(h.bounds)-1]
}

// DefSecondsBuckets is the default histogram layout for durations
// (seconds): 1 ms … 60 s, roughly logarithmic.
var DefSecondsBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30, 60}

// DefSlackBuckets is the default layout for deadline slack (seconds):
// symmetric around zero so misses (negative slack) resolve too.
var DefSlackBuckets = []float64{-10, -5, -2, -1, -.5, -.1, 0, .1, .5, 1, 2, 5, 10, 30}

// metricKind discriminates a series' exposition behaviour.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered metric instance.
type series struct {
	labels string // canonical rendering
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  int // registration order, for stable exposition
	series map[string]*series
}

// registryShards is the number of independent lock domains a Registry
// splits its families across — a power of two so shard selection is a
// mask. Families land on shards by FNV-1a of the metric name, so
// sessions hammering disjoint metric families never serialize on one
// registry mutex at swarm scale.
const registryShards = 8

// regShard is one lock domain: a slice of the family map guarded by its
// own RWMutex.
type regShard struct {
	mu   sync.RWMutex
	fams map[string]*family
	// Pad the shard out to its own cache lines so neighbouring shards'
	// lock words don't false-share under contention.
	_ [64]byte
}

// Registry holds metric families and renders them in the Prometheus text
// format. Safe for concurrent use; all lookup methods are nil-safe and
// return nil handles on a nil registry, so instrumentation can be wired
// unconditionally. Families are split across power-of-two lock shards
// keyed by metric name, so steady-state handle lookups — by far the
// common case on instrumented hot paths — resolve under a per-shard
// read lock and concurrent sessions touching different families never
// contend; a shard's write lock is only taken to register a new family
// or series. Exposition order is preserved across shards by a global
// registration-order counter, so sharding never changes scrape output.
type Registry struct {
	shards [registryShards]regShard
	n      atomic.Int64 // global registration order across shards
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].fams = make(map[string]*family)
	}
	return r
}

// shard selects name's lock domain (FNV-1a, allocation-free).
func (r *Registry) shard(name string) *regShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return &r.shards[h&(registryShards-1)]
}

// fam returns (creating if needed) the family for name within sh, which
// the caller holds write-locked. Re-registering an existing series
// returns the existing one.
func (r *Registry) fam(sh *regShard, name, help string, kind metricKind) *family {
	f, ok := sh.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, order: int(r.n.Add(1) - 1), series: make(map[string]*series)}
		sh.fams[name] = f
	}
	return f
}

// lookup resolves the series for (name, key) under the owning shard's
// read lock — the steady-state path of every labeled handle acquisition.
func (r *Registry) lookup(name, key string) *series {
	sh := r.shard(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	f, ok := sh.fams[name]
	if !ok {
		return nil
	}
	return f.series[key]
}

// Counter returns the counter series for (name, labels), registering it
// on first use. Nil-safe: a nil registry returns a nil handle.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	key := labels.render()
	if s := r.lookup(name, key); s != nil && s.c != nil {
		return s.c
	}
	sh := r.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f := r.fam(sh, name, help, kindCounter)
	if s, ok := f.series[key]; ok && s.c != nil {
		return s.c
	}
	c := &Counter{}
	f.series[key] = &series{labels: key, c: c}
	return c
}

// Gauge returns the gauge series for (name, labels). Nil-safe.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	key := labels.render()
	if s := r.lookup(name, key); s != nil && s.g != nil {
		return s.g
	}
	sh := r.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f := r.fam(sh, name, help, kindGauge)
	if s, ok := f.series[key]; ok && s.g != nil {
		return s.g
	}
	g := &Gauge{}
	f.series[key] = &series{labels: key, g: g}
	return g
}

// Histogram returns the histogram series for (name, labels) with the
// given bucket upper bounds (nil = DefSecondsBuckets). Nil-safe.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefSecondsBuckets
	}
	key := labels.render()
	if s := r.lookup(name, key); s != nil && s.h != nil {
		return s.h
	}
	sh := r.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f := r.fam(sh, name, help, kindHistogram)
	if s, ok := f.series[key]; ok && s.h != nil {
		return s.h
	}
	h := newHistogram(buckets)
	f.series[key] = &series{labels: key, h: h}
	return h
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the zero-hot-path-cost way to expose counters a
// component already maintains. Re-registration replaces fn. Nil-safe.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, kindCounterFunc, labels, fn)
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, kindGaugeFunc, labels, fn)
}

func (r *Registry) registerFunc(name, help string, kind metricKind, labels Labels, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	sh := r.shard(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f := r.fam(sh, name, help, kind)
	key := labels.render()
	f.series[key] = &series{labels: key, fn: fn}
}

// famSnap is one family plus its series list, captured under the
// owning shard's lock so exposition can iterate lock-free.
type famSnap struct {
	f    *family
	sers []*series
}

// snapshotFams returns the families sorted by global registration
// order, each with its series sorted by label rendering. The per-series
// value reads happen outside every registry lock (func-backed series
// may take component locks of their own).
func (r *Registry) snapshotFams() []famSnap {
	var out []famSnap
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, f := range sh.fams {
			sers := make([]*series, 0, len(f.series))
			for _, s := range f.series {
				sers = append(sers, s)
			}
			out = append(out, famSnap{f: f, sers: sers})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].f.order < out[j].f.order })
	for _, fs := range out {
		sort.Slice(fs.sers, func(i, j int) bool { return fs.sers[i].labels < fs.sers[j].labels })
	}
	return out
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4). Nil-safe. Output is byte-stable
// under sharding: families render in global registration order, series
// in label order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, fs := range r.snapshotFams() {
		f, sers := fs.f, fs.sers
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType()); err != nil {
			return err
		}
		for _, s := range sers {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.h != nil:
		return writeHistogram(w, f.name, s)
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.fn()))
		return err
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.g.Value()))
		return err
	}
	return nil
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet.
func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.h
	counts, sum, count := h.snapshot()
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(s.labels, formatValue(bound)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(h.bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(s.labels, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatValue(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, count)
	return err
}

// mergeLE splices le="bound" into an existing (possibly empty) rendered
// label set.
func mergeLE(labels, bound string) string {
	le := fmt.Sprintf("le=%q", bound)
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strings.TrimSuffix(fmt.Sprintf("%g", v), ".0")
}
