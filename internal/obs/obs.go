// Package obs is the telemetry subsystem: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms with quantile
// estimation) exposed in Prometheus text format, a ring-buffered
// structured event journal that can stream JSONL to a writer, and HTTP
// exposition (/metrics, /debug/vars, net/http/pprof).
//
// Instrumented components talk to obs through the narrow Sink interface
// and hold nil-safe metric handles, so with telemetry off the hot path
// pays a single nil-check branch and allocates nothing. Everything in
// this package is safe for concurrent use.
package obs

import (
	"time"
)

// Event is one structured journal entry. The zero values of Chunk and
// Level are meaningful (chunk 0, level 0), so events that are not about
// a chunk carry -1 in both; NewEvent sets that convention.
type Event struct {
	// T is the wall-clock timestamp (stamped by Telemetry.Emit when
	// zero). Simulator-driven events leave T zero and set Sim instead;
	// readers should fall back to Sim when T.IsZero().
	T time.Time `json:"t"`
	// Sim is the virtual-time timestamp of simulator events.
	Sim time.Duration `json:"sim,omitempty"`
	// Type names the event in the dotted taxonomy (see DESIGN.md §8),
	// e.g. "chunk.start", "path.engage", "breaker.state", "hedge.arm".
	Type string `json:"type"`
	// Path names the network path the event concerns, when any.
	Path string `json:"path,omitempty"`
	// Chunk and Level locate the event in the video (-1 = not chunk-scoped).
	Chunk int `json:"chunk"`
	Level int `json:"level"`
	// Num carries the event's numeric payload (throughput estimates,
	// deadline slack, byte counts...), keyed by snake_case field names.
	Num map[string]float64 `json:"num,omitempty"`
	// Str carries the event's string payload (states, origins, errors).
	Str map[string]string `json:"str,omitempty"`
}

// NewEvent returns an event of the given type with the not-chunk-scoped
// convention (Chunk = Level = -1).
func NewEvent(typ string) Event {
	return Event{Type: typ, Chunk: -1, Level: -1}
}

// WithPath sets the event's path name.
func (e Event) WithPath(p string) Event {
	e.Path = p
	return e
}

// WithChunk scopes the event to a chunk (and level, when >= 0 it is
// kept as passed).
func (e Event) WithChunk(chunk, level int) Event {
	e.Chunk, e.Level = chunk, level
	return e
}

// WithNum sets one numeric field, allocating the map on first use.
func (e Event) WithNum(k string, v float64) Event {
	if e.Num == nil {
		e.Num = make(map[string]float64, 4)
	}
	e.Num[k] = v
	return e
}

// WithStr sets one string field, allocating the map on first use.
func (e Event) WithStr(k, v string) Event {
	if e.Str == nil {
		e.Str = make(map[string]string, 2)
	}
	e.Str[k] = v
	return e
}

// Sink receives structured events from instrumented components. A nil
// Sink (or a nil *Telemetry stored in one) is the off switch: callers
// guard emission with a nil check, which is the only cost telemetry adds
// to an uninstrumented hot path.
type Sink interface {
	Emit(Event)
}

// Telemetry bundles the metrics registry and the event journal behind
// one Sink. The zero value is unusable; construct with New.
type Telemetry struct {
	Registry *Registry
	Journal  *Journal
	// Now stamps events whose T is zero; nil means time.Now.
	Now func() time.Time
	// OnEmit, when set, observes every event synchronously after it is
	// journaled — the hook for runtime auditors that watch the stream as
	// it happens rather than replaying the ring afterwards. It runs on
	// the emitting goroutine, so it must be fast and goroutine-safe.
	// Set it before the Telemetry is shared; mutating it mid-flight races.
	OnEmit func(Event)
}

// DefaultJournalCap is the journal ring capacity used by New.
const DefaultJournalCap = 4096

// New returns a Telemetry with a fresh registry and a journal of
// DefaultJournalCap events.
func New() *Telemetry {
	t := &Telemetry{Registry: NewRegistry(), Journal: NewJournal(DefaultJournalCap)}
	t.Registry.CounterFunc("obs_journal_dropped_total",
		"Events dropped from the JSONL journal stream after a write error.",
		nil, func() float64 { return float64(t.Journal.Dropped()) })
	return t
}

// Emit implements Sink: the event is timestamped (when T is zero and the
// event is not simulator-timed) and appended to the journal. Nil-safe.
func (t *Telemetry) Emit(e Event) {
	if t == nil || t.Journal == nil {
		return
	}
	if e.T.IsZero() && e.Sim == 0 {
		if t.Now != nil {
			e.T = t.Now()
		} else {
			e.T = time.Now()
		}
	}
	t.Journal.Append(e)
	if t.OnEmit != nil {
		t.OnEmit(e)
	}
}
