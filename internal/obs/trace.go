package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span categories. The critical-path walker attributes deadline overrun
// to these, so instrumentation sites should pick the most specific one
// that describes what the chunk was waiting on.
const (
	CatChunk     = "chunk"     // the root interval: whole-chunk slack / unattributed time
	CatSched     = "sched"     // scheduler / ABR decision time
	CatFetch     = "fetch"     // a FetchChunk call (outer envelope of the transfer)
	CatSegment   = "segment"   // one segment transfer on one path
	CatRedial    = "redial"    // supervisor redial loop (dial + origin failover)
	CatBackoff   = "backoff"   // supervisor backoff sleep between attempts
	CatHedge     = "hedge"     // hedged backup request in flight
	CatAbort     = "abort"     // doom-monitor abort fired
	CatDowngrade = "downgrade" // post-abort rendition-downgrade refetch
	CatRefetch   = "refetch"   // lifeline lowest-level refetch after exhaustion
	CatRequeue   = "requeue"   // segment requeued to the surviving path
	CatStall     = "stall"     // playback stall charged to this chunk
	CatCache     = "cache"     // edge-cache miss: waiting on an origin fill
)

// Trace verdicts: the terminal state a chunk's trace is finished with.
const (
	TraceOK     = "ok"
	TraceMissed = "missed"
	TraceLost   = "lost"
	TraceFailed = "failed"
	TracePanic  = "panic"
)

// TraceConfig configures a Tracer.
type TraceConfig struct {
	// HeadSampleRate is the fraction of healthy (verdict ok, no bad
	// marks) traces kept, in [0, 1]. Traces that miss their deadline,
	// abort, downgrade, requeue, get lost or panic are always kept
	// regardless of this rate (tail-based sampling).
	HeadSampleRate float64
	// Seed makes trace IDs deterministic across runs (0 means 1).
	Seed int64
	// Now stamps span boundaries; nil means time.Now.
	Now func() time.Time
	// MaxKept bounds the retained trace count (0 means 1<<20). When the
	// cap is reached, healthy head-sampled traces are dropped first;
	// bad-verdict traces are always kept.
	MaxKept int
}

// Tracer buffers per-chunk span traces until their terminal state and
// applies tail-based sampling at Finish time. A nil *Tracer is the off
// switch: every method on it, and on the nil *Trace / nil *Span values
// it hands out, is a no-op, so disabled tracing costs one nil check and
// zero allocations on the hot path. Safe for concurrent use.
type Tracer struct {
	rate    float64
	seed    uint64
	nowFn   func() time.Time
	maxKept int

	mu          sync.Mutex
	kept        []*Trace
	open        map[int]*Trace // in-flight trace per session
	started     int64
	finished    int64
	keptBad     int64
	keptSampled int64
	dropped     int64
}

// NewTracer returns a Tracer with the given config.
func NewTracer(cfg TraceConfig) *Tracer {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	max := cfg.MaxKept
	if max <= 0 {
		max = 1 << 20
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Tracer{
		rate:    cfg.HeadSampleRate,
		seed:    uint64(seed),
		nowFn:   now,
		maxKept: max,
		open:    make(map[int]*Trace),
	}
}

// traceID derives the deterministic 64-bit trace ID from the tracer
// seed, the session and the chunk index (FNV-1a over the three words).
func traceID(seed uint64, session, chunk int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, w := range [3]uint64{seed, uint64(int64(session)), uint64(int64(chunk))} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// headSampled decides, deterministically from the trace ID alone,
// whether a healthy trace is kept.
func (tr *Tracer) headSampled(id uint64) bool {
	if tr.rate >= 1 {
		return true
	}
	if tr.rate <= 0 {
		return false
	}
	// Re-scramble so the decision is independent of the ID's low bits.
	x := id
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x%1_000_000) < tr.rate*1_000_000
}

// StartTrace opens the trace for one chunk's life. The returned *Trace
// is nil when the tracer is nil, and every method on a nil *Trace is a
// no-op. One trace per session may be in flight at a time; starting a
// new one for the same session replaces (and abandons) any unfinished
// predecessor.
func (tr *Tracer) StartTrace(session, chunk, level int) *Trace {
	if tr == nil {
		return nil
	}
	t := &Trace{
		tracer:  tr,
		id:      traceID(tr.seed, session, chunk),
		session: session,
		chunk:   chunk,
		level:   level,
		start:   tr.nowFn(),
	}
	tr.mu.Lock()
	tr.started++
	tr.open[session] = t
	tr.mu.Unlock()
	return t
}

// FinishDangling finishes the session's in-flight trace, if any, with
// the given verdict. Panic-recovery paths use it to keep the trace of
// the chunk that was in flight when the session died. Nil-safe.
func (tr *Tracer) FinishDangling(session int, verdict string) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	t := tr.open[session]
	tr.mu.Unlock()
	if t != nil {
		t.MarkBad(verdict)
		t.Finish(verdict)
	}
}

// finish applies the tail-sampling decision for one finished trace.
func (tr *Tracer) finish(t *Trace, bad bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.open[t.session] == t {
		delete(tr.open, t.session)
	}
	tr.finished++
	switch {
	case bad:
		tr.kept = append(tr.kept, t)
		tr.keptBad++
	case tr.headSampled(t.id) && len(tr.kept) < tr.maxKept:
		tr.kept = append(tr.kept, t)
		tr.keptSampled++
	default:
		tr.dropped++
	}
}

// TraceStats summarizes a tracer's sampling behaviour.
type TraceStats struct {
	Started     int64 `json:"started"`
	Finished    int64 `json:"finished"`
	Kept        int64 `json:"kept"`
	KeptBad     int64 `json:"kept_bad"`
	KeptSampled int64 `json:"kept_sampled"`
	Dropped     int64 `json:"dropped"`
}

// Stats returns the sampling counters. Nil-safe.
func (tr *Tracer) Stats() TraceStats {
	if tr == nil {
		return TraceStats{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceStats{
		Started:     tr.started,
		Finished:    tr.finished,
		Kept:        int64(len(tr.kept)),
		KeptBad:     tr.keptBad,
		KeptSampled: tr.keptSampled,
		Dropped:     tr.dropped,
	}
}

// Records snapshots every kept trace as an exportable record, in finish
// order. Nil-safe. Safe to call while traces are still being recorded:
// unfinished spans in a kept trace are clamped to the trace end.
func (tr *Tracer) Records() []*TraceRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	kept := make([]*Trace, len(tr.kept))
	copy(kept, tr.kept)
	tr.mu.Unlock()
	out := make([]*TraceRecord, 0, len(kept))
	for _, t := range kept {
		out = append(out, t.record())
	}
	return out
}

// Trace is one chunk's span buffer. All methods are nil-safe and safe
// for concurrent use: fetch workers, hedge goroutines and the doom
// monitor append spans to the same trace.
type Trace struct {
	tracer  *Tracer
	id      uint64
	session int
	chunk   int
	level   int
	start   time.Time

	mu       sync.Mutex
	spans    []*Span
	nextID   int
	reasons  []string
	deadline time.Duration
	overrun  time.Duration
	end      time.Time
	finished bool
	verdict  string
}

// ID returns the deterministic trace ID (0 for a nil trace).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// SetDeadline records the chunk's deadline window.
func (t *Trace) SetDeadline(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.deadline = d
	t.mu.Unlock()
}

// SetOverrun records by how much the chunk missed its deadline and
// marks the trace bad, so tail sampling always keeps it.
func (t *Trace) SetOverrun(d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	// A sub-microsecond overrun would truncate to 0 in the exported
	// record and vanish from the miss budget; any real overrun is at
	// least one exportable microsecond.
	if d < time.Microsecond {
		d = time.Microsecond
	}
	t.mu.Lock()
	t.overrun = d
	t.reasons = appendReason(t.reasons, TraceMissed)
	t.mu.Unlock()
}

// MarkBad flags the trace with a keep-always reason (abort, downgrade,
// requeue, missed, lost, panic...). Duplicate reasons collapse.
func (t *Trace) MarkBad(reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reasons = appendReason(t.reasons, reason)
	t.mu.Unlock()
}

func appendReason(rs []string, r string) []string {
	for _, have := range rs {
		if have == r {
			return rs
		}
	}
	return append(rs, r)
}

// StartSpan opens a span parented at the trace root. The returned
// *Span is nil when the trace is nil.
func (t *Trace) StartSpan(category, name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{t: t, Category: category, Name: name}
	t.mu.Lock()
	t.nextID++
	sp.ID = t.nextID
	sp.start = t.tracer.nowFn()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// StartSpanAt opens a span whose start is backdated to at — for
// intervals whose category is only known after they began, like a range
// request that turns out to be an edge-cache miss once the response
// headers arrive.
func (t *Trace) StartSpanAt(category, name string, at time.Time) *Span {
	sp := t.StartSpan(category, name)
	if sp != nil {
		sp.t.mu.Lock()
		sp.start = at
		sp.t.mu.Unlock()
	}
	return sp
}

// Event records an instantaneous marker (a zero-duration span).
func (t *Trace) Event(category, name string) {
	sp := t.StartSpan(category, name)
	if sp != nil {
		sp.t.mu.Lock()
		sp.end = sp.start
		sp.t.mu.Unlock()
	}
}

// Finish closes the trace with its terminal verdict and hands it to the
// tracer's tail sampler. Only the first Finish wins; later calls (and
// spans ended after it) are harmless.
func (t *Trace) Finish(verdict string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	t.verdict = verdict
	t.end = t.tracer.nowFn()
	bad := len(t.reasons) > 0 || verdict != TraceOK
	t.mu.Unlock()
	t.tracer.finish(t, bad)
}

// record snapshots the trace under its lock.
func (t *Trace) record() *TraceRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	if end.IsZero() {
		end = t.start
	}
	rec := &TraceRecord{
		TraceID:    fmt.Sprintf("%016x", t.id),
		Session:    t.session,
		Chunk:      t.chunk,
		Level:      t.level,
		Verdict:    t.verdict,
		Reasons:    append([]string(nil), t.reasons...),
		StartUS:    t.start.UnixMicro(),
		DurUS:      end.Sub(t.start).Microseconds(),
		DeadlineUS: t.deadline.Microseconds(),
		OverrunUS:  t.overrun.Microseconds(),
		Spans:      make([]SpanRecord, 0, len(t.spans)),
	}
	for _, sp := range t.spans {
		spEnd := sp.end
		if spEnd.IsZero() {
			spEnd = end
		}
		s := sp.start.Sub(t.start).Microseconds()
		d := spEnd.Sub(sp.start).Microseconds()
		if d < 0 {
			d = 0
		}
		rec.Spans = append(rec.Spans, SpanRecord{
			ID:       sp.ID,
			Category: sp.Category,
			Name:     sp.Name,
			Path:     sp.Path,
			StartUS:  s,
			DurUS:    d,
			Num:      copyNum(sp.num),
			Str:      copyStr(sp.str),
		})
	}
	// Deterministic export order: by start time, span ID breaking ties.
	sort.SliceStable(rec.Spans, func(i, j int) bool {
		a, b := rec.Spans[i], rec.Spans[j]
		if a.StartUS != b.StartUS {
			return a.StartUS < b.StartUS
		}
		return a.ID < b.ID
	})
	return rec
}

func copyNum(m map[string]float64) map[string]float64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyStr(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Span is one timed interval inside a trace. Mutations go through the
// owning trace's lock so concurrent export is race-free. All methods
// are nil-safe.
type Span struct {
	t        *Trace
	ID       int
	Category string
	Name     string
	Path     string
	start    time.Time
	end      time.Time
	num      map[string]float64
	str      map[string]string
}

// SetPath names the network path the span ran on.
func (sp *Span) SetPath(p string) {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	sp.Path = p
	sp.t.mu.Unlock()
}

// SetNum attaches a numeric attribute.
func (sp *Span) SetNum(k string, v float64) {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	if sp.num == nil {
		sp.num = make(map[string]float64, 4)
	}
	sp.num[k] = v
	sp.t.mu.Unlock()
}

// SetStr attaches a string attribute.
func (sp *Span) SetStr(k, v string) {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	if sp.str == nil {
		sp.str = make(map[string]string, 2)
	}
	sp.str[k] = v
	sp.t.mu.Unlock()
}

// End closes the span. Only the first End wins.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.t.mu.Lock()
	if sp.end.IsZero() {
		sp.end = sp.t.tracer.nowFn()
	}
	sp.t.mu.Unlock()
}

// TraceRecord is the exported form of one kept trace: one JSONL line.
type TraceRecord struct {
	TraceID    string       `json:"trace_id"`
	Session    int          `json:"session"`
	Chunk      int          `json:"chunk"`
	Level      int          `json:"level"`
	Verdict    string       `json:"verdict"`
	Reasons    []string     `json:"reasons,omitempty"`
	StartUS    int64        `json:"start_us"`    // unix microseconds
	DurUS      int64        `json:"dur_us"`      // root interval length
	DeadlineUS int64        `json:"deadline_us"` // deadline window
	OverrunUS  int64        `json:"overrun_us"`  // missed-by (0 = on time)
	Spans      []SpanRecord `json:"spans"`
}

// SpanRecord is one span inside a TraceRecord. StartUS is relative to
// the trace start; DurUS 0 marks an instantaneous event.
type SpanRecord struct {
	ID       int                `json:"id"`
	Category string             `json:"cat"`
	Name     string             `json:"name"`
	Path     string             `json:"path,omitempty"`
	StartUS  int64              `json:"start_us"`
	DurUS    int64              `json:"dur_us"`
	Num      map[string]float64 `json:"num,omitempty"`
	Str      map[string]string  `json:"str,omitempty"`
}

// WriteJSONL writes every kept trace as one JSON line. Nil-safe.
func (tr *Tracer) WriteJSONL(w io.Writer) error {
	if tr == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range tr.Records() {
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("obs: trace write: %w", err)
		}
	}
	return bw.Flush()
}

// WriteChrome writes the kept traces in Chrome trace-event JSON, the
// format chrome://tracing and Perfetto load directly. Nil-safe.
func (tr *Tracer) WriteChrome(w io.Writer) error {
	if tr == nil {
		return nil
	}
	return WriteChromeTrace(w, tr.Records())
}

// chromeEvent is one Chrome trace-event ("X" = complete event).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders trace records as a Chrome trace-event file:
// pid = session, tid = chunk, one "X" complete event per span plus one
// for the root interval carrying the verdict and overrun.
func WriteChromeTrace(w io.Writer, recs []*TraceRecord) error {
	events := make([]chromeEvent, 0, len(recs)*8)
	for _, rec := range recs {
		rootArgs := map[string]any{
			"trace_id": rec.TraceID,
			"verdict":  rec.Verdict,
			"level":    rec.Level,
		}
		if rec.OverrunUS > 0 {
			rootArgs["overrun_us"] = rec.OverrunUS
		}
		if len(rec.Reasons) > 0 {
			rootArgs["reasons"] = rec.Reasons
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("chunk %d", rec.Chunk),
			Cat:  CatChunk,
			Ph:   "X",
			TS:   rec.StartUS,
			Dur:  rec.DurUS,
			PID:  rec.Session,
			TID:  rec.Chunk,
			Args: rootArgs,
		})
		for _, sp := range rec.Spans {
			var args map[string]any
			if sp.Path != "" || len(sp.Num) > 0 || len(sp.Str) > 0 {
				args = make(map[string]any, len(sp.Num)+len(sp.Str)+1)
				if sp.Path != "" {
					args["path"] = sp.Path
				}
				for k, v := range sp.Num {
					args[k] = v
				}
				for k, v := range sp.Str {
					args[k] = v
				}
			}
			ph, dur := "X", sp.DurUS
			if dur == 0 {
				ph = "i" // instant event
			}
			events = append(events, chromeEvent{
				Name: sp.Name,
				Cat:  sp.Category,
				Ph:   ph,
				TS:   rec.StartUS + sp.StartUS,
				Dur:  dur,
				PID:  rec.Session,
				TID:  rec.Chunk,
				Args: args,
			})
		}
	}
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadTraceJSONL decodes a JSONL trace file (as written by WriteJSONL).
// Like ReadJournal it tolerates a truncated final line, returning the
// parsed prefix wrapped around ErrTruncatedTail.
func ReadTraceJSONL(r io.Reader) ([]*TraceRecord, error) {
	var out []*TraceRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			if !sc.Scan() {
				return out, fmt.Errorf("obs: trace line %d: %w", line, ErrTruncatedTail)
			}
			return out, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, &rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: trace read: %w", err)
	}
	return out, nil
}
