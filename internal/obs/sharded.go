package obs

import "sync/atomic"

// counterStripes is the number of independent cache lines a
// ShardedCounter spreads its increments across — a power of two so
// stripe selection is a mask.
const counterStripes = 16

// stripe is one cache-line-padded atomic cell: the count occupies the
// first word and the padding pushes the next stripe onto its own line,
// so concurrent writers on different stripes never false-share.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a monotonically increasing counter striped across
// power-of-two cache-line-padded cells, for hot counters shared by
// thousands of sessions (the congestion board's publish/seed/drop
// tallies). Writers pick a stripe from a caller-supplied key — any
// stable per-session value, e.g. the FNV-1a hash of the session's
// board key — so a population's increments fan out instead of
// serializing on one atomic. Value sums the stripes; like every obs
// handle it is nil-safe, and totals are exact once writers quiesce
// (each stripe is itself an atomic counter, so no increment is ever
// lost — a concurrent read may only observe a slightly stale sum).
type ShardedCounter struct {
	stripes [counterStripes]stripe
}

// Add increments the counter by d on the stripe selected by key.
// Negative deltas are ignored — the counter is monotonic. Nil-safe.
func (c *ShardedCounter) Add(key uint64, d int64) {
	if c == nil || d < 0 {
		return
	}
	c.stripes[key&(counterStripes-1)].v.Add(d)
}

// Inc increments the counter by one on the stripe selected by key.
func (c *ShardedCounter) Inc(key uint64) { c.Add(key, 1) }

// Value returns the sum across stripes (0 on a nil handle).
func (c *ShardedCounter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}
