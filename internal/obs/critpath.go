package obs

import (
	"fmt"
	"io"
	"sort"
)

// The critical-path walker answers "where did the overrun go?" for a
// missed chunk. The model: the trace's root interval [0, dur) is
// covered instant-by-instant by the most specific activity running at
// that instant — among the spans active at time t, the one that started
// latest (ties broken by span ID) wins; instants no span covers belong
// to the root category (CatChunk: queueing/slack the instrumentation
// did not break down). That yields a per-category wall-time partition
// of the whole chunk; scaling each category's share by overrun/dur
// attributes the deadline overrun, and the attributions sum to the
// overrun exactly by construction.

// SpanAttribution is one category's share of a missed chunk's overrun.
type SpanAttribution struct {
	Category  string  `json:"category"`
	BusyUS    float64 `json:"busy_us"`    // wall time covered in the trace
	OverrunUS float64 `json:"overrun_us"` // share of the deadline overrun
}

// CriticalPath partitions one trace's root interval across span
// categories and scales the partition to the recorded overrun. The
// returned attributions are sorted by descending overrun share and sum
// to rec.OverrunUS (empty when the trace has no overrun or no
// duration).
func CriticalPath(rec *TraceRecord) []SpanAttribution {
	if rec == nil || rec.OverrunUS <= 0 || rec.DurUS <= 0 {
		return nil
	}
	busy := coverByCategory(rec)
	out := make([]SpanAttribution, 0, len(busy))
	scale := float64(rec.OverrunUS) / float64(rec.DurUS)
	for cat, us := range busy {
		out = append(out, SpanAttribution{
			Category:  cat,
			BusyUS:    us,
			OverrunUS: us * scale,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].OverrunUS != out[j].OverrunUS {
			return out[i].OverrunUS > out[j].OverrunUS
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// coverByCategory walks the root interval boundary by boundary and
// charges each elementary interval to its deepest active span.
func coverByCategory(rec *TraceRecord) map[string]float64 {
	total := rec.DurUS
	// Collect boundary points, clamped to the root interval. Zero-dur
	// spans (instant events) do not cover time.
	bounds := make([]int64, 0, 2*len(rec.Spans)+2)
	bounds = append(bounds, 0, total)
	type iv struct {
		s, e int64
		id   int
		cat  string
	}
	ivs := make([]iv, 0, len(rec.Spans))
	for _, sp := range rec.Spans {
		if sp.DurUS <= 0 {
			continue
		}
		s, e := sp.StartUS, sp.StartUS+sp.DurUS
		if s < 0 {
			s = 0
		}
		if e > total {
			e = total
		}
		if e <= s {
			continue
		}
		ivs = append(ivs, iv{s: s, e: e, id: sp.ID, cat: sp.Category})
		bounds = append(bounds, s, e)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	busy := make(map[string]float64, 8)
	for i := 0; i+1 < len(bounds); i++ {
		a, b := bounds[i], bounds[i+1]
		if b <= a {
			continue
		}
		// Deepest active span: latest start wins, span ID breaks ties
		// (a later-started span is the more specific current activity).
		cat := CatChunk
		bestStart, bestID := int64(-1), -1
		for _, v := range ivs {
			if v.s <= a && v.e >= b {
				if v.s > bestStart || (v.s == bestStart && v.id > bestID) {
					bestStart, bestID, cat = v.s, v.id, v.cat
				}
			}
		}
		busy[cat] += float64(b - a)
	}
	return busy
}

// CategoryShare aggregates one category across every missed chunk.
type CategoryShare struct {
	Category  string  `json:"category"`
	OverrunUS float64 `json:"overrun_us"` // total overrun attributed
	Share     float64 `json:"share"`      // fraction of the population overrun
	P50US     float64 `json:"p50_us"`     // per-missed-chunk contribution quantiles
	P95US     float64 `json:"p95_us"`
}

// MissBudget is the population-level deadline-miss attribution: how the
// total overrun across every missed chunk splits across span
// categories.
type MissBudget struct {
	Missed         int             `json:"missed"`
	TotalOverrunUS float64         `json:"total_overrun_us"`
	Categories     []CategoryShare `json:"categories"`
}

// BuildMissBudget runs the critical-path walker over every missed trace
// and aggregates per-category overrun attribution. Traces without an
// overrun are skipped.
func BuildMissBudget(recs []*TraceRecord) MissBudget {
	var mb MissBudget
	// Per-trace contributions per category; traces that never entered a
	// category contribute 0 there so the quantiles describe the missed
	// population, not just the traces a category appeared in.
	perTrace := make([]map[string]float64, 0, len(recs))
	cats := make(map[string]bool, 8)
	for _, rec := range recs {
		attrs := CriticalPath(rec)
		if attrs == nil {
			continue
		}
		mb.Missed++
		mb.TotalOverrunUS += float64(rec.OverrunUS)
		m := make(map[string]float64, len(attrs))
		for _, a := range attrs {
			m[a.Category] = a.OverrunUS
			cats[a.Category] = true
		}
		perTrace = append(perTrace, m)
	}
	if mb.Missed == 0 {
		return mb
	}
	for cat := range cats {
		var total float64
		samples := make([]float64, 0, len(perTrace))
		for _, m := range perTrace {
			v := m[cat]
			total += v
			samples = append(samples, v)
		}
		sort.Float64s(samples)
		share := 0.0
		if mb.TotalOverrunUS > 0 {
			share = total / mb.TotalOverrunUS
		}
		mb.Categories = append(mb.Categories, CategoryShare{
			Category:  cat,
			OverrunUS: total,
			Share:     share,
			P50US:     quantileUS(samples, 0.50),
			P95US:     quantileUS(samples, 0.95),
		})
	}
	sort.Slice(mb.Categories, func(i, j int) bool {
		if mb.Categories[i].OverrunUS != mb.Categories[j].OverrunUS {
			return mb.Categories[i].OverrunUS > mb.Categories[j].OverrunUS
		}
		return mb.Categories[i].Category < mb.Categories[j].Category
	})
	return mb
}

// quantileUS is the exact sorted-sample quantile (ceil index), matching
// the swarm aggregator's convention.
func quantileUS(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Render prints the miss budget as a human-readable table.
func (mb MissBudget) Render(w io.Writer) {
	if mb.Missed == 0 {
		fmt.Fprintf(w, "miss budget: no missed chunks in the kept traces\n")
		return
	}
	fmt.Fprintf(w, "miss budget — %d missed chunks, total overrun %.3fs\n",
		mb.Missed, mb.TotalOverrunUS/1e6)
	fmt.Fprintf(w, "  %-10s %7s %10s %12s %12s\n",
		"category", "share", "total", "p50/chunk", "p95/chunk")
	for _, c := range mb.Categories {
		fmt.Fprintf(w, "  %-10s %6.1f%% %9.3fs %11.1fms %11.1fms\n",
			c.Category, 100*c.Share, c.OverrunUS/1e6, c.P50US/1e3, c.P95US/1e3)
	}
}
