package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	c = &Counter{}
	c.Inc()
	c.Add(4)
	c.Add(-10) // monotonic: negative deltas ignored
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

func TestGaugeNilSafe(t *testing.T) {
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	g = &Gauge{}
	g.Set(-2.5)
	if got := g.Value(); got != -2.5 {
		t.Errorf("gauge = %v, want -2.5", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("empty histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Errorf("Quantile(%v) on empty = %v, want NaN", q, v)
		}
	}
	var nilH *Histogram
	nilH.Observe(1)
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram quantile not NaN")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(1.5)
	if h.Count() != 1 || h.Sum() != 1.5 {
		t.Fatalf("count=%d sum=%v, want 1, 1.5", h.Count(), h.Sum())
	}
	// Every quantile resolves inside the (1, 2] bucket.
	for _, q := range []float64{0, 0.5, 1} {
		v := h.Quantile(q)
		if v < 1 || v > 2 {
			t.Errorf("Quantile(%v) = %v, want within (1, 2]", q, v)
		}
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100) // far past the last bound
	h.Observe(200)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	// Overflow samples saturate the estimate at the last finite bound.
	if v := h.Quantile(0.5); v != 2 {
		t.Errorf("Quantile(0.5) = %v, want saturation at 2", v)
	}
	if v := h.Quantile(1); v != 2 {
		t.Errorf("Quantile(1) = %v, want saturation at 2", v)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := newHistogram(DefSecondsBuckets)
	// A deterministic spread including underflow, mid-range and overflow.
	for i := 0; i < 500; i++ {
		h.Observe(float64(i%97) * 0.9)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if math.IsNaN(v) {
			t.Fatalf("Quantile(%v) = NaN on populated histogram", q)
		}
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v: not monotone", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramDropsNaN(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Error("NaN sample was recorded")
	}
}

func TestHistogramOutOfRangeQuantile(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(0.5)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if v := h.Quantile(q); !math.IsNaN(v) {
			t.Errorf("Quantile(%v) = %v, want NaN", q, v)
		}
	}
}

func TestRegistrySameSeriesReturned(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Labels{"path": "wifi"})
	b := r.Counter("x_total", "help", Labels{"path": "wifi"})
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	c := r.Counter("x_total", "help", Labels{"path": "lte"})
	if a == c {
		t.Error("different labels share a counter")
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("a", "", nil).Inc()
	r.Gauge("b", "", nil).Set(1)
	r.Histogram("c", "", nil, nil).Observe(1)
	r.CounterFunc("d", "", nil, func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpdash_test_total", "A counter.", Labels{"b": "2", "a": "1"}).Add(7)
	r.GaugeFunc("mpdash_test_gauge", "A gauge.", nil, func() float64 { return 2.5 })
	h := r.Histogram("mpdash_test_seconds", "A histogram.", []float64{1, 2}, Labels{"path": "wifi"})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9) // overflow

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP mpdash_test_total A counter.",
		"# TYPE mpdash_test_total counter",
		`mpdash_test_total{a="1",b="2"} 7`,
		"# TYPE mpdash_test_gauge gauge",
		"mpdash_test_gauge 2.5",
		"# TYPE mpdash_test_seconds histogram",
		`mpdash_test_seconds_bucket{path="wifi",le="1"} 1`,
		`mpdash_test_seconds_bucket{path="wifi",le="2"} 2`,
		`mpdash_test_seconds_bucket{path="wifi",le="+Inf"} 3`,
		`mpdash_test_seconds_sum{path="wifi"} 11`,
		`mpdash_test_seconds_count{path="wifi"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestEscapeLabelHostileValues(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"line\nbreak", `line\nbreak`},
		{"\\\"\n", `\\\"\n`},
		{"утф-8 ✓", "утф-8 ✓"}, // non-ASCII passes through unescaped
		{"", ""},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestHostileLabelExposition(t *testing.T) {
	// A hostile label value must render escaped in the exposition, and the
	// same hostile Labels map must key the same series on re-registration.
	r := NewRegistry()
	hostile := Labels{"err": "dial \"x\\y\"\nrefused"}
	r.Counter("mpdash_hostile_total", "h.", hostile).Add(3)
	if c := r.Counter("mpdash_hostile_total", "h.", hostile); c.Value() != 3 {
		t.Errorf("hostile labels did not key the same series: %d", c.Value())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `mpdash_hostile_total{err="dial \"x\\y\"\nrefused"} 3`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q\n%s", want, b.String())
	}
	if strings.Contains(b.String(), "\nrefused") {
		t.Errorf("raw newline leaked into exposition:\n%s", b.String())
	}
}

func TestRenderSingleLabelFastPath(t *testing.T) {
	// The one-label fast path must produce exactly the canonical form the
	// multi-label path would, escaping included.
	cases := map[string]Labels{
		`{path="wifi"}`:         {"path": "wifi"},
		`{p="a\"b\\c\nd"}`:      {"p": "a\"b\\c\nd"},
		`{a="1",b="2",c="3"}`:   {"c": "3", "a": "1", "b": "2"},
		`{x="y\\z",zz="plain"}`: {"zz": "plain", "x": `y\z`},
	}
	for want, l := range cases {
		if got := l.render(); got != want {
			t.Errorf("render(%v) = %q, want %q", l, got, want)
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		_ = Labels{"path": "wifi"}.render()
	}); n > 2 { // map literal + builder buffer
		t.Errorf("single-label render allocates %v per run, want ≤ 2", n)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	// The lock-free write path: hammer one histogram from many
	// goroutines and check nothing is lost (count, sum, bucket total all
	// exact once writers quiesce).
	h := newHistogram([]float64{1, 2, 3})
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64((w + i) % 5)) // 0..4: spans all buckets + overflow
			}
		}(w)
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*per); got != want {
		t.Fatalf("count %d, want %d", got, want)
	}
	counts, sum, count := h.snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != count {
		t.Fatalf("bucket total %d vs count %d", total, count)
	}
	var wantSum float64
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			wantSum += float64((w + i) % 5)
		}
	}
	if sum != wantSum {
		t.Fatalf("sum %v, want %v", sum, wantSum)
	}
}

func TestRegistryConcurrentHandleLookup(t *testing.T) {
	// The RWMutex fast path: concurrent steady-state lookups racing
	// first-use registrations must always converge on one series.
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				r.Counter("conc_total", "c", Labels{"path": "wifi"}).Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "c", Labels{"path": "wifi"}).Value(); got != 16000 {
		t.Fatalf("counter %d, want 16000 (split series?)", got)
	}
}
