package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRenderTimeline(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	at := func(ms int) time.Time { return t0.Add(time.Duration(ms) * time.Millisecond) }
	stamp := func(e Event, ms int) Event { e.T = at(ms); return e }
	events := []Event{
		stamp(NewEvent("chunk.start").WithChunk(3, 2).
			WithNum("size", 1.2e6).WithNum("deadline_s", 3.5).WithNum("segments", 19), 0),
		stamp(NewEvent("chunk.firstbyte").WithChunk(3, 2).WithNum("elapsed_s", 0.012), 12),
		stamp(NewEvent("path.engage").WithPath("secondary").WithChunk(3, 2).
			WithStr("reason", "pressure").
			WithNum("rate_bps", 2.4e6).WithNum("remaining_bytes", 9e5).WithNum("window_s", 1.8), 900),
		stamp(NewEvent("path.standdown").WithPath("secondary").WithChunk(3, 2).
			WithNum("rate_bps", 6e6).WithNum("remaining_bytes", 2e5).WithNum("window_s", 1.1), 1600),
		stamp(NewEvent("chunk.done").WithChunk(3, 2).
			WithNum("duration_s", 2.0).WithNum("slack_s", 1.5).
			WithNum("primary_bytes", 1.0e6).WithNum("secondary_bytes", 0.2e6), 2000),
		stamp(NewEvent("custom.event").WithPath("primary").WithNum("x", 7), 2100),
	}
	var b strings.Builder
	RenderTimeline(&b, events)
	out := b.String()
	for _, want := range []string{
		"journal: 6 events, 1 chunks",
		"chunk 3 level 2: start size=1.2MB deadline=3.50s",
		"first byte after 0.012s",
		"secondary ENGAGE (pressure): est=2.40Mbps remaining=900.0KB window=1.80s",
		"secondary stand down: est=6.00Mbps",
		"chunk 3 level 2: done in 2.00s (met, slack 1.50s)",
		"custom.event path=primary x=7", // unknown types still render
		"[   +0.900s]",                  // offsets are relative to the first event
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q\n%s", want, out)
		}
	}
}

func TestRenderTimelineSimTimeFallback(t *testing.T) {
	ev := func(typ string, sim time.Duration) Event {
		e := NewEvent(typ)
		e.Sim = sim
		return e
	}
	events := []Event{
		ev("sched.enable", 2*time.Second).WithNum("size", 5e5).WithNum("window_s", 4),
		ev("sched.toggle", 2500*time.Millisecond).WithPath("lte").WithStr("on", "true").
			WithNum("estimate_bps", 3e6).WithNum("remaining_bytes", 4e5).WithNum("slack_s", 3.5),
		ev("sched.disable", 4*time.Second),
	}
	var b strings.Builder
	RenderTimeline(&b, events)
	out := b.String()
	for _, want := range []string{
		"[   +0.000s] sched: govern 500.0KB over 4.00s",
		"[   +0.500s] sched: lte ON (est=3.00Mbps remaining=400.0KB slack=3.50s)",
		"[   +2.000s] sched: released",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q\n%s", want, out)
		}
	}
}

func TestRenderTimelineEmpty(t *testing.T) {
	var b strings.Builder
	RenderTimeline(&b, nil)
	if !strings.Contains(b.String(), "no events") {
		t.Errorf("empty render = %q", b.String())
	}
}
