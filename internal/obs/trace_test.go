package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock hands out strictly increasing instants so span boundaries
// are deterministic.
func fakeClock() func() time.Time {
	t0 := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

// buildTrace records one synthetic chunk life: a fetch envelope, two
// segments, a requeue marker, and a missed deadline.
func buildTrace(tr *Tracer, session, chunk int) {
	t := tr.StartTrace(session, chunk, 2)
	t.SetDeadline(100 * time.Millisecond)
	fsp := t.StartSpan(CatFetch, "fetch")
	fsp.SetNum("size", 4096)
	s1 := t.StartSpan(CatSegment, "segment")
	s1.SetPath("wifi")
	s1.End()
	t.Event(CatRequeue, "requeue")
	t.MarkBad(CatRequeue)
	s2 := t.StartSpan(CatSegment, "segment")
	s2.SetPath("lte")
	s2.End()
	fsp.End()
	t.SetOverrun(5 * time.Millisecond)
	t.Finish(TraceMissed)
}

func TestTracerDeterministicIDs(t *testing.T) {
	export := func() string {
		tr := NewTracer(TraceConfig{HeadSampleRate: 0, Seed: 99, Now: fakeClock()})
		for s := 0; s < 3; s++ {
			for c := 0; c < 4; c++ {
				buildTrace(tr, s, c)
			}
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := export(), export()
	if a != b {
		t.Fatal("same seed and same event sequence produced different exports")
	}
	if a == "" {
		t.Fatal("no traces exported")
	}
	recs, err := ReadTraceJSONL(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.TraceID == "" {
			t.Fatal("empty trace ID")
		}
	}
	// A different seed must move the trace IDs.
	other := NewTracer(TraceConfig{Seed: 100}).StartTrace(0, 0, 2)
	if id0 := recs[0].TraceID; id0 == fmt.Sprintf("%016x", other.ID()) {
		t.Errorf("seed change did not move trace ID %s", id0)
	}
}

func TestTracerSpanOrderDeterministic(t *testing.T) {
	tr := NewTracer(TraceConfig{HeadSampleRate: 1, Seed: 1, Now: fakeClock()})
	buildTrace(tr, 0, 0)
	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("kept %d traces", len(recs))
	}
	spans := recs[0].Spans
	for i := 1; i < len(spans); i++ {
		a, b := spans[i-1], spans[i]
		if a.StartUS > b.StartUS || (a.StartUS == b.StartUS && a.ID > b.ID) {
			t.Fatalf("spans out of (start, id) order at %d: %+v then %+v", i, a, b)
		}
	}
}

func TestTailSamplingKeepsEveryBadTrace(t *testing.T) {
	const n, missEvery = 1000, 20
	tr := NewTracer(TraceConfig{HeadSampleRate: 0.1, Seed: 7, Now: fakeClock()})
	for i := 0; i < n; i++ {
		tc := tr.StartTrace(0, i, 1)
		if i%missEvery == 0 {
			tc.SetOverrun(time.Millisecond)
			tc.Finish(TraceMissed)
		} else {
			tc.Finish(TraceOK)
		}
	}
	st := tr.Stats()
	wantBad := int64(n / missEvery)
	if st.KeptBad != wantBad {
		t.Errorf("kept %d bad traces, want every one of the %d", st.KeptBad, wantBad)
	}
	if st.Started != n || st.Finished != n {
		t.Errorf("started/finished = %d/%d, want %d/%d", st.Started, st.Finished, n, n)
	}
	if st.Kept != st.KeptBad+st.KeptSampled || st.Dropped != n-st.Kept {
		t.Errorf("counter identity broken: %+v", st)
	}
	// The head sample keeps roughly 10% of the healthy traces.
	healthy := int64(n - n/missEvery)
	if st.KeptSampled == 0 || st.KeptSampled > healthy/2 {
		t.Errorf("head-sampled %d of %d healthy traces at rate 0.1", st.KeptSampled, healthy)
	}
	// Every missed chunk's trace must be retrievable.
	missed := 0
	for _, rec := range tr.Records() {
		if rec.Verdict == TraceMissed {
			missed++
			if rec.OverrunUS <= 0 {
				t.Errorf("missed trace chunk %d lacks overrun", rec.Chunk)
			}
		}
	}
	if int64(missed) != wantBad {
		t.Errorf("%d missed traces in the export, want %d", missed, wantBad)
	}
}

func TestTailSamplingCapDropsOnlyHealthy(t *testing.T) {
	tr := NewTracer(TraceConfig{HeadSampleRate: 1, Seed: 1, MaxKept: 4, Now: fakeClock()})
	for i := 0; i < 16; i++ {
		tc := tr.StartTrace(0, i, 1)
		tc.Finish(TraceOK)
	}
	// Cap reached: further healthy traces drop, bad ones still keep.
	bad := tr.StartTrace(0, 99, 1)
	bad.MarkBad(CatAbort)
	bad.Finish(TraceFailed)
	st := tr.Stats()
	if st.KeptSampled != 4 {
		t.Errorf("kept %d sampled traces, want the cap of 4", st.KeptSampled)
	}
	if st.KeptBad != 1 {
		t.Errorf("bad trace dropped by the cap: %+v", st)
	}
}

func TestFinishDanglingKeepsPanicTrace(t *testing.T) {
	tr := NewTracer(TraceConfig{HeadSampleRate: 0, Seed: 1, Now: fakeClock()})
	tc := tr.StartTrace(3, 8, 1)
	tc.StartSpan(CatFetch, "fetch")
	tr.FinishDangling(3, TracePanic)
	tr.FinishDangling(3, TracePanic) // idempotent: nothing open now
	recs := tr.Records()
	if len(recs) != 1 || recs[0].Verdict != TracePanic {
		t.Fatalf("records = %+v, want one panic trace", recs)
	}
	if len(recs[0].Spans) != 1 {
		t.Errorf("dangling span lost: %+v", recs[0].Spans)
	}
}

func TestDisabledTracingZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(200, func() {
		tc := tr.StartTrace(0, 1, 2)
		tc.SetDeadline(time.Second)
		sp := tc.StartSpan(CatFetch, "fetch")
		sp.SetPath("wifi")
		sp.SetNum("size", 1)
		sp.SetStr("k", "v")
		sp.End()
		tc.Event(CatRequeue, "requeue")
		tc.MarkBad(CatRequeue)
		tc.SetOverrun(time.Millisecond)
		tc.Finish(TraceMissed)
		tr.FinishDangling(0, TracePanic)
		_ = tr.Stats()
		_ = tr.Records()
		_ = tc.ID()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f per op, want 0", allocs)
	}
}

func TestCriticalPathSumsToOverrun(t *testing.T) {
	rec := &TraceRecord{
		TraceID: "t", Verdict: TraceMissed,
		DurUS: 1000, OverrunUS: 300,
		Spans: []SpanRecord{
			// fetch envelope over [0,900); segments cover [0,400) and
			// [500,900) inside it; a backoff nested in the second segment
			// wins [600,700). [900,1000) is uncovered → chunk.
			{ID: 1, Category: CatFetch, Name: "fetch", StartUS: 0, DurUS: 900},
			{ID: 2, Category: CatSegment, Name: "segment", StartUS: 0, DurUS: 400},
			{ID: 3, Category: CatSegment, Name: "segment", StartUS: 500, DurUS: 400},
			{ID: 4, Category: CatBackoff, Name: "backoff", StartUS: 600, DurUS: 100},
			{ID: 5, Category: CatRequeue, Name: "requeue", StartUS: 450, DurUS: 0}, // instant: no cover
		},
	}
	attrs := CriticalPath(rec)
	if attrs == nil {
		t.Fatal("no attribution for a missed trace")
	}
	byCat := map[string]SpanAttribution{}
	sum := 0.0
	for _, a := range attrs {
		byCat[a.Category] = a
		sum += a.OverrunUS
	}
	if math.Abs(sum-float64(rec.OverrunUS)) > 1e-9 {
		t.Errorf("attributions sum to %.3f, want exactly %d", sum, rec.OverrunUS)
	}
	// Busy partition: segment 400+300=700, backoff 100, fetch 100
	// ([400,500) where only the envelope is active), chunk 100 (gap).
	want := map[string]float64{CatSegment: 700, CatBackoff: 100, CatFetch: 100, CatChunk: 100}
	for cat, us := range want {
		if byCat[cat].BusyUS != us {
			t.Errorf("%s busy = %.0fus, want %.0f", cat, byCat[cat].BusyUS, us)
		}
	}
	if len(byCat) != len(want) {
		t.Errorf("categories = %v, want %v", byCat, want)
	}
	// Descending overrun order.
	for i := 1; i < len(attrs); i++ {
		if attrs[i].OverrunUS > attrs[i-1].OverrunUS {
			t.Errorf("attributions not sorted: %+v", attrs)
		}
	}
	// No attribution without an overrun.
	if CriticalPath(&TraceRecord{DurUS: 100}) != nil {
		t.Error("attributed an on-time chunk")
	}
}

func TestBuildMissBudgetShares(t *testing.T) {
	recs := []*TraceRecord{
		{DurUS: 100, OverrunUS: 100, Spans: []SpanRecord{
			{ID: 1, Category: CatRedial, StartUS: 0, DurUS: 100},
		}},
		{DurUS: 200, OverrunUS: 100, Spans: []SpanRecord{
			{ID: 1, Category: CatSegment, StartUS: 0, DurUS: 100},
		}},
		{DurUS: 100}, // on time: skipped
	}
	mb := BuildMissBudget(recs)
	if mb.Missed != 2 || mb.TotalOverrunUS != 200 {
		t.Fatalf("missed/total = %d/%.0f, want 2/200", mb.Missed, mb.TotalOverrunUS)
	}
	shares := map[string]float64{}
	total := 0.0
	for _, c := range mb.Categories {
		shares[c.Category] = c.Share
		total += c.Share
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %.4f, want 1", total)
	}
	// redial: 100 of trace 1. segment: half of trace 2's overrun (50);
	// chunk: the other half.
	if shares[CatRedial] != 0.5 || shares[CatSegment] != 0.25 || shares[CatChunk] != 0.25 {
		t.Errorf("shares = %v", shares)
	}
	// Per-trace quantiles include zero contributions from traces the
	// category never appeared in.
	for _, c := range mb.Categories {
		if c.P50US != 0 && c.P95US < c.P50US {
			t.Errorf("%s quantiles inverted: %+v", c.Category, c)
		}
	}
	var sb strings.Builder
	mb.Render(&sb)
	if !strings.Contains(sb.String(), "2 missed chunks") {
		t.Errorf("render: %q", sb.String())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(TraceConfig{HeadSampleRate: 1, Seed: 1, Now: fakeClock()})
	buildTrace(tr, 5, 9)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
			Dur  int64  `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid Chrome trace JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	instants, completes := 0, 0
	for _, e := range out.TraceEvents {
		if e.PID != 5 || e.TID != 9 {
			t.Errorf("event %s pid/tid = %d/%d, want 5/9", e.Name, e.PID, e.TID)
		}
		switch e.Ph {
		case "i":
			instants++
		case "X":
			completes++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if instants == 0 || completes == 0 {
		t.Errorf("instants/completes = %d/%d, want both", instants, completes)
	}
}

func TestReadTraceJSONLTruncatedTail(t *testing.T) {
	tr := NewTracer(TraceConfig{HeadSampleRate: 1, Seed: 1, Now: fakeClock()})
	buildTrace(tr, 0, 0)
	buildTrace(tr, 0, 1)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.String()
	lines := strings.SplitAfter(strings.TrimSuffix(whole, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %d", len(lines))
	}
	// Chop the last line mid-JSON: a crashed writer.
	cut := lines[0] + lines[1][:len(lines[1])/2]
	recs, err := ReadTraceJSONL(strings.NewReader(cut))
	if !errors.Is(err, ErrTruncatedTail) {
		t.Fatalf("err = %v, want ErrTruncatedTail", err)
	}
	if len(recs) != 1 || recs[0].Chunk != 0 {
		t.Fatalf("parsed prefix = %+v, want the first trace", recs)
	}
	// A malformed line that is NOT last stays a hard error.
	bad := "{oops}\n" + lines[0]
	if _, err := ReadTraceJSONL(strings.NewReader(bad)); errors.Is(err, ErrTruncatedTail) || err == nil {
		t.Fatalf("mid-file corruption err = %v, want a hard error", err)
	}
	// Intact input round-trips clean.
	recs, err = ReadTraceJSONL(strings.NewReader(whole))
	if err != nil || len(recs) != 2 {
		t.Fatalf("round trip: %d recs, err %v", len(recs), err)
	}
}
