package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	tel := New()
	tel.Registry.Counter("mpdash_http_test_total", "Test counter.", Labels{"path": "wifi"}).Add(3)
	srv := httptest.NewServer(tel.Handler())
	defer srv.Close()

	body, ctype := get(t, srv.URL+"/metrics")
	if !strings.Contains(ctype, "text/plain") || !strings.Contains(ctype, "0.0.4") {
		t.Errorf("metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, `mpdash_http_test_total{path="wifi"} 3`) {
		t.Errorf("metrics body missing series:\n%s", body)
	}

	body, _ = get(t, srv.URL+"/")
	if !strings.Contains(body, "/metrics") {
		t.Errorf("index does not list endpoints: %q", body)
	}

	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/nope = %d, want 404", resp.StatusCode)
	}

	// pprof index must answer (the profiles themselves are exercised by
	// net/http/pprof's own tests).
	body, _ = get(t, srv.URL+"/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index unexpected: %.80q", body)
	}
}

func TestServe(t *testing.T) {
	tel := New()
	tel.Registry.Gauge("mpdash_serve_test", "Test gauge.", nil).Set(1.5)
	ms, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	body, _ := get(t, "http://"+ms.Addr()+"/metrics")
	if !strings.Contains(body, "mpdash_serve_test 1.5") {
		t.Errorf("served metrics missing gauge:\n%s", body)
	}
	body, _ = get(t, "http://"+ms.Addr()+"/debug/vars")
	if !strings.Contains(body, "cmdline") {
		t.Errorf("expvar body unexpected: %.80q", body)
	}
}

func get(t *testing.T, url string) (body, contentType string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	return string(b), resp.Header.Get("Content-Type")
}
