package swarm

import (
	"fmt"
	"sort"
)

// The chaos timeline: an ordered list of scheduled events executed
// against the shared server tier mid-run. It generalizes the single
// capacity_drop of earlier scenarios into correlated, time-phased
// failure stories — an edge dying and coming back, a fault storm that
// passes, a path blacking out and healing — so population recovery
// (MTTR) can be measured, not just survival.

// ChaosKind names one scheduled tier mutation.
type ChaosKind string

const (
	// ChaosCapacityDrop rescales every shaped origin's rate by its link
	// class's factor (compounding if repeated).
	ChaosCapacityDrop ChaosKind = "capacity_drop"
	// ChaosCapacityRestore resets every shaped origin to its original
	// rate, undoing all prior drops.
	ChaosCapacityRestore ChaosKind = "capacity_restore"
	// ChaosFaultSurge replaces every origin's per-request fault
	// probabilities with the event's Faults mix.
	ChaosFaultSurge ChaosKind = "fault_surge"
	// ChaosFaultClear restores every origin's fault probabilities to the
	// scenario's base Servers.Faults (or zero when none).
	ChaosFaultClear ChaosKind = "fault_clear"
	// ChaosBlackout crashes every origin of the selected path class(es):
	// listeners close, admitted connections are reset. Recoverable via
	// ChaosHeal (unlike netmp's permanent Blackhole).
	ChaosBlackout ChaosKind = "blackout"
	// ChaosHeal restarts every origin a prior blackout crashed.
	ChaosHeal ChaosKind = "heal"
	// ChaosOriginCrash crashes the origin at rank Origin of the selected
	// path class(es) — the single-machine-loss event.
	ChaosOriginCrash ChaosKind = "origin_crash"
	// ChaosOriginRestart re-listens a crashed origin on its original
	// address, exercising breaker open → half-open → failback.
	ChaosOriginRestart ChaosKind = "origin_restart"
)

// ChaosEvent is one scheduled entry of the timeline. Fields beyond At
// and Kind apply only to the kinds that read them.
type ChaosEvent struct {
	// At is the event instant as an offset from run start.
	At   Duration  `json:"at"`
	Kind ChaosKind `json:"kind"`
	// WiFiFactor / LTEFactor multiply shaped rates on capacity_drop
	// (0 or 1 = that class unchanged).
	WiFiFactor float64 `json:"wifi_factor,omitempty"`
	LTEFactor  float64 `json:"lte_factor,omitempty"`
	// Faults is the surge's fault mix (fault_surge only; required there).
	Faults *FaultSpec `json:"faults,omitempty"`
	// Path selects the link class: "wifi", "lte", or "" for both.
	// Read by blackout/heal and origin_crash/origin_restart.
	Path string `json:"path,omitempty"`
	// Origin is the 0-based origin rank within each affected group's
	// class (-1 = every rank). Read by origin_crash/origin_restart.
	Origin int `json:"origin,omitempty"`
}

// RecoverySpec tunes the rolling-window recovery detector behind MTTR.
type RecoverySpec struct {
	// Window is the trailing miss-rate window (default 1s).
	Window Duration `json:"window,omitempty"`
	// MissThreshold is the deadline-miss rate at or under which the
	// population counts as recovered (default 0.10).
	MissThreshold float64 `json:"miss_threshold,omitempty"`
	// MinChunks is the minimum chunk completions the window must hold
	// before its miss rate is trusted (default 5).
	MinChunks int `json:"min_chunks,omitempty"`
}

// withDefaults fills the detector defaults (nil receiver = all defaults).
func (r *RecoverySpec) withDefaults() RecoverySpec {
	out := RecoverySpec{}
	if r != nil {
		out = *r
	}
	if out.Window <= 0 {
		out.Window = Duration(1e9) // 1s
	}
	if out.MissThreshold <= 0 {
		out.MissThreshold = 0.10
	}
	if out.MinChunks <= 0 {
		out.MinChunks = 5
	}
	return out
}

// chaosTimeline merges the declared chaos events with the legacy
// capacity_drop shorthand and returns them sorted by At. The merge
// happens at use time (not in withDefaults) so defaulting a scenario
// twice cannot duplicate the translated drop.
func (s *Scenario) chaosTimeline() []ChaosEvent {
	events := append([]ChaosEvent(nil), s.Chaos...)
	if d := s.CapacityDrop; d != nil {
		events = append(events, ChaosEvent{
			At:         d.At,
			Kind:       ChaosCapacityDrop,
			WiFiFactor: d.WiFiFactor,
			LTEFactor:  d.LTEFactor,
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// crashTarget is one outstanding crash in the pairing simulation:
// a link class plus an origin rank (-1 = the whole class).
type crashTarget struct {
	class string
	rank  int
}

func (a crashTarget) overlaps(b crashTarget) bool {
	return a.class == b.class && (a.rank == -1 || b.rank == -1 || a.rank == b.rank)
}

// expandClasses resolves an event's Path to concrete link classes.
func expandClasses(path string) []string {
	if path == "" {
		return []string{"wifi", "lte"}
	}
	return []string{path}
}

// validateChaos checks every chaos event's fields and simulates the
// sorted timeline to reject unpaired or overlapping crash/restart
// stories (crashing an already-crashed origin, healing a path that is
// up) — mistakes that would otherwise surface as confusing mid-run
// Restart errors. Runs on the defaulted scenario.
func (s *Scenario) validateChaos() error {
	if r := s.Recovery; r != nil {
		if r.Window < 0 {
			return fmt.Errorf("swarm: recovery: window must be >= 0, got %v", r.Window.D())
		}
		if r.MissThreshold < 0 || r.MissThreshold > 1 {
			return fmt.Errorf("swarm: recovery: miss_threshold %g (want [0,1])", r.MissThreshold)
		}
		if r.MinChunks < 0 {
			return fmt.Errorf("swarm: recovery: min_chunks must be >= 0, got %d", r.MinChunks)
		}
	}
	horizon := s.Arrival.Over + s.SessionTimeout
	originsOf := func(class string) int {
		if class == "lte" {
			return s.Servers.LTEOrigins
		}
		return s.Servers.WiFiOrigins
	}
	for i, ev := range s.Chaos {
		if ev.At <= 0 {
			return fmt.Errorf("swarm: chaos[%d] %s: at must be > 0, got %v", i, ev.Kind, ev.At.D())
		}
		if horizon > 0 && ev.At > horizon {
			return fmt.Errorf("swarm: chaos[%d] %s: at %v is beyond the run horizon %v (arrival window + session timeout)",
				i, ev.Kind, ev.At.D(), horizon.D())
		}
		switch ev.Path {
		case "", "wifi", "lte":
		default:
			return fmt.Errorf("swarm: chaos[%d] %s: path %q (want wifi, lte or empty)", i, ev.Kind, ev.Path)
		}
		switch ev.Kind {
		case ChaosCapacityDrop:
			if ev.WiFiFactor < 0 || ev.WiFiFactor > 1 || ev.LTEFactor < 0 || ev.LTEFactor > 1 {
				return fmt.Errorf("swarm: chaos[%d] capacity_drop: factors must be in [0,1], got wifi %g lte %g",
					i, ev.WiFiFactor, ev.LTEFactor)
			}
		case ChaosCapacityRestore, ChaosFaultClear, ChaosBlackout, ChaosHeal:
		case ChaosFaultSurge:
			f := ev.Faults
			if f == nil {
				return fmt.Errorf("swarm: chaos[%d] fault_surge: needs a faults mix", i)
			}
			for name, p := range map[string]float64{
				"reset_prob": f.ResetProb, "stall_prob": f.StallProb,
				"close_prob": f.CloseProb, "corrupt_prob": f.CorruptProb,
			} {
				if p < 0 || p > 1 {
					return fmt.Errorf("swarm: chaos[%d] fault_surge: %s %g (want [0,1])", i, name, p)
				}
			}
		case ChaosOriginCrash, ChaosOriginRestart:
			if ev.Origin < -1 {
				return fmt.Errorf("swarm: chaos[%d] %s: origin rank %d (want -1 for all, or a 0-based rank)", i, ev.Kind, ev.Origin)
			}
			for _, class := range expandClasses(ev.Path) {
				if n := originsOf(class); ev.Origin >= n {
					return fmt.Errorf("swarm: chaos[%d] %s: origin rank %d out of range (%s has %d origins)",
						i, ev.Kind, ev.Origin, class, n)
				}
			}
		default:
			return fmt.Errorf("swarm: chaos[%d]: unknown kind %q", i, ev.Kind)
		}
	}

	// Pairing simulation: walk the timeline in At order and track which
	// targets are down. Crashes must not overlap an outstanding crash;
	// restarts/heals must exactly match one.
	timeline := append([]ChaosEvent(nil), s.Chaos...)
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].At < timeline[j].At })
	var down []crashTarget
	crash := func(ev ChaosEvent, tg crashTarget) error {
		for _, d := range down {
			if d.overlaps(tg) {
				return fmt.Errorf("swarm: chaos at %v: %s overlaps an outstanding crash of %s#%d (restart it first)",
					ev.At.D(), ev.Kind, d.class, d.rank)
			}
		}
		down = append(down, tg)
		return nil
	}
	restart := func(ev ChaosEvent, tg crashTarget) error {
		for i, d := range down {
			if d == tg {
				down = append(down[:i], down[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("swarm: chaos at %v: %s targets %s#%d which is not crashed at that point",
			ev.At.D(), ev.Kind, tg.class, tg.rank)
	}
	for _, ev := range timeline {
		switch ev.Kind {
		case ChaosBlackout:
			for _, class := range expandClasses(ev.Path) {
				if err := crash(ev, crashTarget{class, -1}); err != nil {
					return err
				}
			}
		case ChaosHeal:
			for _, class := range expandClasses(ev.Path) {
				if err := restart(ev, crashTarget{class, -1}); err != nil {
					return err
				}
			}
		case ChaosOriginCrash:
			for _, class := range expandClasses(ev.Path) {
				if err := crash(ev, crashTarget{class, ev.Origin}); err != nil {
					return err
				}
			}
		case ChaosOriginRestart:
			for _, class := range expandClasses(ev.Path) {
				if err := restart(ev, crashTarget{class, ev.Origin}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
