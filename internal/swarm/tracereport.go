package swarm

// Trace reporting: folds the tracer's kept per-chunk span traces into
// the population report — sampling counters plus the critical-path
// miss-budget breakdown (which span categories the missed chunks'
// overruns are attributed to, population-wide).

import (
	"fmt"
	"strings"

	"mpdash/internal/obs"
)

// TraceCategoryReport is one span category's slice of the population
// miss budget.
type TraceCategoryReport struct {
	Category string `json:"category"`
	// Share is this category's fraction of the population's total
	// overrun across all missed chunks.
	Share float64 `json:"share"`
	// OverrunS is the total overrun time attributed to this category.
	OverrunS float64 `json:"overrun_s"`
	// P50S/P95S are the per-missed-chunk attribution quantiles.
	P50S float64 `json:"p50_s"`
	P95S float64 `json:"p95_s"`
}

// TraceReport summarizes one run's span tracing: how the tail-based
// sampler decided, and where the missed chunks' deadline overruns went.
type TraceReport struct {
	// Started/Finished count every chunk trace opened and closed;
	// Kept is the number retained by the sampler (KeptBad = kept
	// because something went wrong, KeptSampled = healthy traces kept
	// by the head sample), Dropped the healthy remainder.
	Started     int64 `json:"started"`
	Finished    int64 `json:"finished"`
	Kept        int64 `json:"kept"`
	KeptBad     int64 `json:"kept_bad"`
	KeptSampled int64 `json:"kept_sampled"`
	Dropped     int64 `json:"dropped"`
	// Missed is the number of kept traces with a deadline overrun;
	// TotalOverrunS their summed overrun.
	Missed        int     `json:"missed"`
	TotalOverrunS float64 `json:"total_overrun_s"`
	// Categories is the population miss budget, largest share first.
	Categories []TraceCategoryReport `json:"categories,omitempty"`
}

// BuildTraceReport folds the tracer's kept traces into a TraceReport.
// Returns nil when tr is nil (tracing off).
func BuildTraceReport(tr *obs.Tracer) *TraceReport {
	if tr == nil {
		return nil
	}
	st := tr.Stats()
	rep := &TraceReport{
		Started:     st.Started,
		Finished:    st.Finished,
		Kept:        st.Kept,
		KeptBad:     st.KeptBad,
		KeptSampled: st.KeptSampled,
		Dropped:     st.Dropped,
	}
	mb := obs.BuildMissBudget(tr.Records())
	rep.Missed = mb.Missed
	rep.TotalOverrunS = mb.TotalOverrunUS / 1e6
	for _, c := range mb.Categories {
		rep.Categories = append(rep.Categories, TraceCategoryReport{
			Category: c.Category,
			Share:    c.Share,
			OverrunS: c.OverrunUS / 1e6,
			P50S:     c.P50US / 1e6,
			P95S:     c.P95US / 1e6,
		})
	}
	return rep
}

// summary renders the trace section of the human-readable report.
func (t *TraceReport) summary(b *strings.Builder) {
	fmt.Fprintf(b, "  tracing      %d traces kept of %d (%d bad, %d sampled, %d dropped)\n",
		t.Kept, t.Finished, t.KeptBad, t.KeptSampled, t.Dropped)
	if t.Missed == 0 {
		return
	}
	fmt.Fprintf(b, "  miss budget  %d missed chunks, %.2fs total overrun:\n", t.Missed, t.TotalOverrunS)
	for _, c := range t.Categories {
		if c.Share < 0.005 && c.OverrunS < 0.01 {
			continue
		}
		fmt.Fprintf(b, "    %-10s %5.1f%%  %.3fs total  (per miss p50 %.1fms p95 %.1fms)\n",
			c.Category, 100*c.Share, c.OverrunS, 1e3*c.P50S, 1e3*c.P95S)
	}
}
