package swarm

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"mpdash/internal/stats"
)

// tinyCatalog keeps swarm tests fast: 100 ms chunks, short videos.
func tinyCatalog() []CatalogItem {
	return []CatalogItem{
		{Name: "tiny-a", ChunkMs: 100, Chunks: 4, LevelsMbps: []float64{0.2, 0.4}},
		{Name: "tiny-b", ChunkMs: 100, Chunks: 3, LevelsMbps: []float64{0.2}},
		{Name: "tiny-c", ChunkMs: 100, Chunks: 5, LevelsMbps: []float64{0.2, 0.4, 0.8}},
	}
}

func tinyScenario(n int) Scenario {
	return Scenario{
		Sessions: n,
		Arrival:  Arrival{Kind: ArrivalUniform, Over: Duration(200 * time.Millisecond)},
		Seed:     42,
		Catalog:  tinyCatalog(),
		Profiles: []Profile{
			{Name: "wifi", Weight: 0.7, ABR: "gpac"},
			{Name: "lte", Weight: 0.3, ABR: "bba", Preference: "lte"},
		},
	}
}

func TestPlanDeterministic(t *testing.T) {
	scn := tinyScenario(64)
	a, err := Plan(scn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(scn)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same scenario produced different plans")
	}
	scn.Seed = 43
	c, err := Plan(scn)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical plans")
	}
	// Arrival offsets must be sorted; IDs must be stable 0..n-1.
	for i, s := range a {
		if s.ID != i {
			t.Fatalf("spec %d has ID %d", i, s.ID)
		}
		if i > 0 && s.StartAt < a[i-1].StartAt {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
}

func TestArrivalShapes(t *testing.T) {
	const n = 2000
	over := 10 * time.Second
	for _, kind := range []ArrivalKind{ArrivalUniform, ArrivalPoisson, ArrivalRamp, ArrivalSpike} {
		a := Arrival{Kind: kind, Over: Duration(over)}
		offs := a.offsets(n, rand.New(rand.NewSource(1)))
		if len(offs) != n {
			t.Fatalf("%s: %d offsets", kind, len(offs))
		}
		if !sort.SliceIsSorted(offs, func(i, j int) bool { return offs[i] < offs[j] }) {
			t.Errorf("%s: offsets not sorted", kind)
		}
		for _, o := range offs {
			if o < 0 {
				t.Fatalf("%s: negative offset %v", kind, o)
			}
		}
		// Everything except the open-loop Poisson tail stays in-window.
		if kind != ArrivalPoisson && offs[n-1] >= over {
			t.Errorf("%s: offset %v beyond window %v", kind, offs[n-1], over)
		}
	}

	// Ramp: the second half of the window must hold well over half the
	// arrivals (density grows linearly).
	ramp := Arrival{Kind: ArrivalRamp, Over: Duration(over)}.offsets(n, rand.New(rand.NewSource(2)))
	late := 0
	for _, o := range ramp {
		if o > over/2 {
			late++
		}
	}
	if late < n*6/10 {
		t.Errorf("ramp: only %d/%d arrivals in the late half", late, n)
	}

	// Spike: a big cluster inside the [0.45, 0.55] window.
	spike := Arrival{Kind: ArrivalSpike, Over: Duration(over)}.offsets(n, rand.New(rand.NewSource(3)))
	in := 0
	for _, o := range spike {
		if o >= time.Duration(0.45*float64(over)) && o < time.Duration(0.55*float64(over)) {
			in++
		}
	}
	if in < n*7/10 {
		t.Errorf("spike: only %d/%d arrivals inside the burst window", in, n)
	}
}

func TestZipfPopularity(t *testing.T) {
	z := stats.NewZipf(1.0, 5)
	rng := rand.New(rand.NewSource(9))
	counts := make([]int, 5)
	for i := 0; i < 20000; i++ {
		counts[z.Draw(rng)]++
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("rank %d (%d draws) more popular than rank %d (%d draws)",
				i, counts[i], i-1, counts[i-1])
		}
	}
	// Harmonic weights 1/1..1/5: rank 0 holds ~44% of the mass.
	if frac := float64(counts[0]) / 20000; frac < 0.38 || frac > 0.50 {
		t.Errorf("rank-0 share %.3f outside [0.38, 0.50]", frac)
	}
}

func TestDrawProfileWeights(t *testing.T) {
	ps := []Profile{{Name: "a", Weight: 3}, {Name: "b", Weight: 1}}
	rng := rand.New(rand.NewSource(5))
	counts := [2]int{}
	for i := 0; i < 8000; i++ {
		counts[drawProfile(ps, rng)]++
	}
	if frac := float64(counts[0]) / 8000; frac < 0.70 || frac > 0.80 {
		t.Errorf("weight-3 profile drawn %.3f of the time, want ~0.75", frac)
	}
}
