package swarm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{Sessions: 10}.withDefaults()
	if s.Arrival.Kind != ArrivalPoisson || s.Arrival.Over.D() != 10*time.Second {
		t.Errorf("arrival defaults: %+v", s.Arrival)
	}
	if s.MaxActive != 10 || s.Seed != 1 || s.ZipfS != 1.0 {
		t.Errorf("defaults: max=%d seed=%d zipf=%g", s.MaxActive, s.Seed, s.ZipfS)
	}
	if len(s.Catalog) == 0 || len(s.Profiles) == 0 {
		t.Fatal("default catalog/profiles missing")
	}
	if s.SessionTimeout <= 0 {
		t.Error("session timeout not defaulted")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("defaulted scenario invalid: %v", err)
	}
}

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Sessions: 0},
		{Sessions: 5, Arrival: Arrival{Kind: "bogus", Over: Duration(time.Second)}},
		{Sessions: 5, Catalog: []CatalogItem{{Name: "x"}}}, // no chunk_ms/levels
		{Sessions: 5, Profiles: []Profile{{Name: "p", Weight: 1, ABR: "nope"}}},
		{Sessions: 5, Profiles: []Profile{{Name: "p", Weight: 1, Preference: "satellite"}}},
		{Sessions: 5, Profiles: []Profile{{Name: "p", Weight: -1}}},
	}
	for i, s := range bad {
		if err := s.withDefaults().Validate(); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	for _, c := range []struct {
		in   string
		want time.Duration
	}{
		{`"1.5s"`, 1500 * time.Millisecond},
		{`"250ms"`, 250 * time.Millisecond},
		{`5000000000`, 5 * time.Second}, // raw nanoseconds
	} {
		if err := json.Unmarshal([]byte(c.in), &d); err != nil {
			t.Fatalf("unmarshal %s: %v", c.in, err)
		}
		if d.D() != c.want {
			t.Errorf("unmarshal %s = %v, want %v", c.in, d.D(), c.want)
		}
	}
	if err := json.Unmarshal([]byte(`"fast"`), &d); err == nil {
		t.Error("bogus duration accepted")
	}
	b, err := json.Marshal(Duration(750 * time.Millisecond))
	if err != nil || string(b) != `"750ms"` {
		t.Errorf("marshal = %s, %v", b, err)
	}
}

func TestLoadScenarioRoundTrip(t *testing.T) {
	scn := tinyScenario(12)
	scn.Name = "roundtrip"
	scn.SessionTimeout = Duration(3 * time.Second)
	scn.Servers = Servers{WiFiMbps: 20, LTEMbps: 10, MaxConns: 64,
		Faults: &FaultSpec{ResetProb: 0.01}}
	b, err := json.MarshalIndent(scn, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "scn.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "roundtrip" || got.Sessions != 12 ||
		got.Arrival.Over.D() != 200*time.Millisecond ||
		got.Servers.Faults == nil || got.Servers.Faults.ResetProb != 0.01 {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if _, err := LoadScenario(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte("{nope"), 0o644)
	if _, err := LoadScenario(badPath); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("bad JSON: %v", err)
	}
}
