package swarm

import (
	"sort"
	"sync"
	"time"
)

// MTTR measurement: every chunk completion across the population is
// stamped with its offset from run start and whether it missed its
// playback deadline. After the run, each executed chaos event is dated
// against this stream — recovery is the first completion at or after
// the event where the trailing window's miss rate is back under the
// threshold (with enough samples in the window to be trusted), and
// MTTR is that instant minus the event instant.

// chunkSample is one chunk completion in the population stream.
type chunkSample struct {
	at     time.Duration // offset from run start
	missed bool
}

// missTracker collects the population's chunk completions. One tracker
// is shared by every session of a run; note() sits on the per-chunk
// path, so it does nothing but stamp and append under a mutex.
type missTracker struct {
	start time.Time

	mu      sync.Mutex
	samples []chunkSample
}

func newMissTracker(start time.Time) *missTracker {
	return &missTracker{start: start}
}

// note records one chunk completion. Goroutine-safe; nil-safe so
// sessions can call it unconditionally.
func (m *missTracker) note(missed bool) {
	if m == nil {
		return
	}
	at := time.Since(m.start)
	m.mu.Lock()
	m.samples = append(m.samples, chunkSample{at: at, missed: missed})
	m.mu.Unlock()
}

// snapshot returns the completions sorted by time. Concurrent appends
// land roughly ordered but can interleave; the sort makes the window
// math exact.
func (m *missTracker) snapshot() []chunkSample {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	s := append([]chunkSample(nil), m.samples...)
	m.mu.Unlock()
	sort.Slice(s, func(i, j int) bool { return s[i].at < s[j].at })
	return s
}

// appliedChaos records one executed timeline event: what was declared,
// when it actually fired, and how many origins it touched.
type appliedChaos struct {
	ev      ChaosEvent
	applied time.Duration
	touched int
}

// ChaosEventReport is one executed chaos event in the population
// report, with its recovery time.
type ChaosEventReport struct {
	Kind ChaosKind `json:"kind"`
	// AtS is the scheduled offset; AppliedS is when it actually fired.
	AtS      float64 `json:"at_s"`
	AppliedS float64 `json:"applied_s"`
	// Path / Origin echo the event's target (origin kinds only).
	Path   string `json:"path,omitempty"`
	Origin int    `json:"origin,omitempty"`
	// Origins is how many origins the event touched.
	Origins int `json:"origins"`
	// Impacted reports whether the event visibly hurt: the rolling miss
	// rate exceeded the threshold at some point at or after the event.
	// An un-impacting event is trivially recovered with MTTR 0.
	Impacted bool `json:"impacted"`
	// MTTRS is the recovery time in seconds (-1 = the population's miss
	// rate never returned under the threshold before the run ended).
	MTTRS     float64 `json:"mttr_s"`
	Recovered bool    `json:"recovered"`
}

// computeMTTR dates each executed event's recovery against the chunk
// stream. samples must be sorted by time (snapshot's contract).
func computeMTTR(samples []chunkSample, applied []appliedChaos, rec RecoverySpec) []ChaosEventReport {
	window := rec.Window.D()
	// missPrefix[i] = misses among samples[0:i].
	missPrefix := make([]int, len(samples)+1)
	for i, s := range samples {
		missPrefix[i+1] = missPrefix[i]
		if s.missed {
			missPrefix[i+1]++
		}
	}
	out := make([]ChaosEventReport, 0, len(applied))
	for _, a := range applied {
		r := ChaosEventReport{
			Kind:     a.ev.Kind,
			AtS:      a.ev.At.D().Seconds(),
			AppliedS: a.applied.Seconds(),
			Origins:  a.touched,
			MTTRS:    -1,
		}
		if a.ev.Kind == ChaosOriginCrash || a.ev.Kind == ChaosOriginRestart ||
			a.ev.Kind == ChaosBlackout || a.ev.Kind == ChaosHeal {
			r.Path = a.ev.Path
			r.Origin = a.ev.Origin
		}
		// rateAt evaluates the trailing window (at-window, at] ending at
		// sample i; ok only once the window holds enough samples.
		rateAt := func(i int) (float64, bool) {
			lo := sort.Search(len(samples), func(j int) bool { return samples[j].at > samples[i].at-window })
			count := i - lo + 1
			if count < rec.MinChunks {
				return 0, false
			}
			return float64(missPrefix[i+1]-missPrefix[lo]) / float64(count), true
		}
		// An event's damage appears with delay (in-flight chunks still
		// land on time), so recovery is dated in two phases: first find
		// impact — the rolling rate exceeding the threshold at or after
		// the event — then the first return under it. An event that
		// never pushes the rate over the threshold did not hurt and is
		// trivially recovered with MTTR 0 — but only if at least one
		// window was trustworthy; a stream too sparse to measure stays
		// unrecovered rather than passing a gate it never faced.
		from := sort.Search(len(samples), func(i int) bool { return samples[i].at >= a.applied })
		impact, measured := -1, false
		for i := from; i < len(samples); i++ {
			rate, ok := rateAt(i)
			if !ok {
				continue
			}
			measured = true
			if rate > rec.MissThreshold {
				impact = i
				break
			}
		}
		if impact < 0 {
			if measured {
				r.MTTRS = 0
				r.Recovered = true
			}
		} else {
			r.Impacted = true
			for i := impact + 1; i < len(samples); i++ {
				if rate, ok := rateAt(i); ok && rate <= rec.MissThreshold {
					r.MTTRS = (samples[i].at - a.applied).Seconds()
					r.Recovered = true
					break
				}
			}
		}
		out = append(out, r)
	}
	return out
}
