package swarm

import (
	"mpdash/internal/stats"
)

// CacheReport is the edge-cache tier's slice of the population report:
// store counters, the origin-offload ratio the tier bought, and the
// hit-rate breakdown by catalog popularity rank against the Zipf share
// each rank was expected to draw.
type CacheReport struct {
	Edges      int `json:"edges"`
	CapacityMB int `json:"capacity_mb"`

	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Collapsed int64 `json:"collapsed"`
	Evictions int64 `json:"evictions"`
	Fills     int64 `json:"fills"`
	// HitRate is hits over all lookups (collapsed waiters count as
	// misses: they waited on origin time even though only one fill ran).
	HitRate float64 `json:"hit_rate"`

	// ServedBytes is payload the edges wrote to sessions; OriginBytes is
	// what their miss fills pulled across the backhaul. OffloadRatio is
	// 1 − origin/served — the fraction of delivered payload the origins
	// never saw.
	ServedBytes  int64   `json:"served_bytes"`
	OriginBytes  int64   `json:"origin_bytes"`
	OffloadRatio float64 `json:"offload_ratio"`
	FillErrors   int64   `json:"fill_errors"`

	ByRank []CacheRankReport `json:"by_rank,omitempty"`
}

// CacheRankReport is one catalog rank's cache behaviour.
type CacheRankReport struct {
	Rank    int     `json:"rank"`
	Video   string  `json:"video"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	// ExpectedShare is the rank's Zipf probability mass — the fraction
	// of sessions the plan steered to it.
	ExpectedShare float64 `json:"expected_share"`
}

// cacheReport snapshots the edge tier (nil when the run had no cache).
func (t *tier) cacheReport(s *Scenario) *CacheReport {
	if t.store == nil {
		return nil
	}
	st := t.store.Stats()
	r := &CacheReport{
		Edges:      len(t.edges),
		CapacityMB: s.Cache.withDefaults().CapacityMB,
		Hits:       st.Hits,
		Misses:     st.Misses,
		Collapsed:  st.Collapsed,
		Evictions:  st.Evictions,
		Fills:      st.Fills,
	}
	if tot := st.Hits + st.Misses; tot > 0 {
		r.HitRate = float64(st.Hits) / float64(tot)
	}
	for _, e := range t.edges {
		r.ServedBytes += e.ServedBytes()
		r.OriginBytes += e.OriginBytes()
		r.FillErrors += e.FillErrors()
	}
	if r.ServedBytes > 0 {
		r.OffloadRatio = 1 - float64(r.OriginBytes)/float64(r.ServedBytes)
	}
	per := t.store.PerVideo()
	z := stats.NewZipf(s.ZipfS, len(s.Catalog))
	for rank, c := range s.Catalog {
		vs := per[c.Name]
		rr := CacheRankReport{
			Rank:          rank,
			Video:         c.Name,
			Hits:          vs.Hits,
			Misses:        vs.Misses,
			ExpectedShare: z.Prob(rank),
		}
		if tot := vs.Hits + vs.Misses; tot > 0 {
			rr.HitRate = float64(vs.Hits) / float64(tot)
		}
		r.ByRank = append(r.ByRank, rr)
	}
	return r
}
