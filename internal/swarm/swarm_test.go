package swarm

import (
	"context"
	"strings"
	"testing"
	"time"

	"mpdash/internal/obs"
)

func runScenario(t *testing.T, scn Scenario) *Report {
	t.Helper()
	sw, err := New(scn)
	if err != nil {
		t.Fatal(err)
	}
	sw.KeepSessions = true
	rep, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSwarmSmallPopulation(t *testing.T) {
	rep := runScenario(t, tinyScenario(16))
	if rep.Sessions != 16 || rep.Completed != 16 {
		t.Fatalf("sessions=%d completed=%d failed=%d timedout=%d panicked=%d",
			rep.Sessions, rep.Completed, rep.Failed, rep.TimedOut, rep.Panicked)
	}
	if rep.LedgerViolations != 0 {
		t.Errorf("%d ledger violations", rep.LedgerViolations)
	}
	if rep.Chunks == 0 || rep.BytesTotal == 0 {
		t.Errorf("no traffic: chunks=%d bytes=%d", rep.Chunks, rep.BytesTotal)
	}
	if rep.StartupDelayS.P99 <= 0 || rep.StartupDelayS.P50 > rep.StartupDelayS.P99 {
		t.Errorf("startup quantiles malformed: %+v", rep.StartupDelayS)
	}
	// The lte profile must account its primary bytes as cellular.
	if rep.CellularBytes == 0 {
		t.Error("no cellular bytes despite an lte-preferred profile")
	}
	if len(rep.SessionOutcomes) != 16 {
		t.Errorf("session detail not kept: %d", len(rep.SessionOutcomes))
	}
	if len(rep.PerProfile) == 0 {
		t.Error("per-profile breakdown missing")
	}
}

func TestSwarmDeterministicPopulationMix(t *testing.T) {
	// Two runs of one scenario must sample the identical population —
	// same videos, profiles, arrival offsets per session ID (timing-
	// dependent QoE numbers may of course differ).
	scn := tinyScenario(24)
	a, b := runScenario(t, scn), runScenario(t, scn)
	for i := range a.SessionOutcomes {
		x, y := a.SessionOutcomes[i], b.SessionOutcomes[i]
		if x.Video != y.Video || x.Profile != y.Profile || x.StartAt != y.StartAt {
			t.Fatalf("session %d mix differs: %s/%s/%v vs %s/%s/%v",
				i, x.Video, x.Profile, x.StartAt.D(), y.Video, y.Profile, y.StartAt.D())
		}
	}
}

func TestSwarmBoundedWorkerPool(t *testing.T) {
	scn := tinyScenario(12)
	scn.MaxActive = 2
	scn.Arrival = Arrival{Kind: ArrivalUniform, Over: Duration(50 * time.Millisecond)}
	rep := runScenario(t, scn)
	if rep.Completed != 12 {
		t.Fatalf("completed %d/12", rep.Completed)
	}
	if rep.PeakConcurrent > 2 {
		t.Errorf("peak concurrent %d exceeds MaxActive 2", rep.PeakConcurrent)
	}
	if rep.QueueWaitS.Max <= 0 {
		t.Error("no queue wait measured despite a saturated pool")
	}
}

func TestSwarmPanicIsolation(t *testing.T) {
	testHookSession = func(id int) {
		if id == 3 {
			panic("session 3 is having a very bad day")
		}
	}
	defer func() { testHookSession = nil }()
	rep := runScenario(t, tinyScenario(8))
	if rep.Panicked != 1 {
		t.Fatalf("panicked=%d, want 1", rep.Panicked)
	}
	if rep.Completed != 7 {
		t.Errorf("completed=%d, want 7 (the panic must not kill the run)", rep.Completed)
	}
	for _, o := range rep.SessionOutcomes {
		if o.ID == 3 {
			if !o.Panicked || !strings.Contains(o.Err, "very bad day") {
				t.Errorf("panic outcome not recorded: %+v", o)
			}
		}
	}
}

func TestSwarmSessionTimeout(t *testing.T) {
	scn := tinyScenario(4)
	// Long video, tiny timeout: every session must be stopped, counted as
	// timed out, and still report its partial result.
	scn.Catalog = []CatalogItem{
		{Name: "long", ChunkMs: 100, Chunks: 100, LevelsMbps: []float64{0.2}},
	}
	scn.SessionTimeout = Duration(300 * time.Millisecond)
	rep := runScenario(t, scn)
	if rep.TimedOut != 4 {
		t.Fatalf("timed out %d/4 (completed %d, failed %d)", rep.TimedOut, rep.Completed, rep.Failed)
	}
	for _, o := range rep.SessionOutcomes {
		if o.Result == nil || o.Result.Chunks == 0 {
			t.Errorf("session %d lost its partial result", o.ID)
		}
		if o.Result != nil && !o.Result.Stopped {
			t.Errorf("session %d not stopped gracefully", o.ID)
		}
	}
}

func TestSwarmUnderFaults(t *testing.T) {
	scn := tinyScenario(8)
	scn.Servers.Faults = &FaultSpec{ResetProb: 0.05, CorruptProb: 0.05}
	rep := runScenario(t, scn)
	if rep.Completed != 8 {
		t.Fatalf("completed %d/8 under faults (failed %d, timedout %d)",
			rep.Completed, rep.Failed, rep.TimedOut)
	}
	if rep.LedgerViolations != 0 {
		t.Errorf("%d ledger violations under corruption faults", rep.LedgerViolations)
	}
	if rep.Server.InjectedFaults == 0 {
		t.Error("fault plan injected nothing")
	}
	if rep.FaultsSurvived == 0 {
		t.Error("population absorbed no faults despite injection")
	}
}

func TestSwarmCancellation(t *testing.T) {
	scn := tinyScenario(32)
	scn.Arrival = Arrival{Kind: ArrivalUniform, Over: Duration(5 * time.Second)}
	ctx, cancel := context.WithCancel(context.Background())
	sw, err := New(scn)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	rep, err := sw.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions >= 32 {
		t.Errorf("cancellation launched all %d sessions", rep.Sessions)
	}
}

func TestSwarmTelemetry(t *testing.T) {
	scn := tinyScenario(6)
	sw, err := New(scn)
	if err != nil {
		t.Fatal(err)
	}
	tel := obs.New()
	sw.Instrument(tel)
	if _, err := sw.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tel.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`swarm_sessions_total{result="completed"} 6`,
		"swarm_startup_delay_seconds_count 6",
		"swarm_rebuffer_ratio_count 6",
		`swarm_bytes_total{net="cellular"}`,
		"mpdash_server_served_bytes_total", // tier instrumented too
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	events := map[string]int{}
	for _, e := range tel.Journal.Events() {
		events[e.Type]++
	}
	if events["swarm.run.start"] != 1 || events["swarm.run.done"] != 1 {
		t.Errorf("run lifecycle events: %v", events)
	}
	if events["swarm.session.start"] != 6 || events["swarm.session.done"] != 6 {
		t.Errorf("session lifecycle events: %v", events)
	}
}
