package swarm

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mpdash/internal/cache"
	"mpdash/internal/dash"
	"mpdash/internal/netmp"
)

// The server tier: every session streams from real netmp.ChunkServers.
// Servers are grouped by (catalog video, link class); sessions of the
// same group share the same shaped origins, so they contend for the same
// bottleneck the way a population behind one CDN edge does. Only the
// groups the plan actually references are started.

// groupKey identifies one origin group.
type groupKey struct {
	video          int
	wifiMbps, lteM float64
}

// originGroup is one video's origin addresses for one link class.
type originGroup struct {
	wifi, lte []string
}

// serverMeta remembers what the chaos executor needs to target one
// origin mid-run: its link class ("wifi"/"lte"), its rank within its
// group's class, its current shaped rate, and its original rate (0 =
// unshaped) so capacity restores can undo compounded drops.
type serverMeta struct {
	kind        string
	rank        int
	rate, rate0 float64
}

// tier owns every running server of a swarm. With a cache spec it also
// owns the edge layer: the groups' addresses then point at the edges,
// and the origins behind them are only reachable through miss fills.
type tier struct {
	groups  map[groupKey]originGroup
	servers []*netmp.ChunkServer
	meta    []serverMeta

	store *cache.Cache // shared across every edge; nil = no cache tier
	edges []*netmp.EdgeServer
}

// groupFor resolves the group key a spec maps to.
func (s *Scenario) groupFor(spec SessionSpec) groupKey {
	p := s.Profiles[spec.Profile]
	k := groupKey{video: spec.Video, wifiMbps: s.Servers.WiFiMbps, lteM: s.Servers.LTEMbps}
	if p.WiFiMbps > 0 {
		k.wifiMbps = p.WiFiMbps
	}
	if p.LTEMbps > 0 {
		k.lteM = p.LTEMbps
	}
	return k
}

// startTier launches the origin groups referenced by the plan. videos is
// indexed like the catalog.
func startTier(s *Scenario, videos []*dash.Video, plan []SessionSpec) (*tier, error) {
	var faults *netmp.FaultPlan
	if f := s.Servers.Faults; f != nil {
		faults = &netmp.FaultPlan{
			Seed:        s.Seed ^ 0x5eed0005,
			ResetProb:   f.ResetProb,
			StallProb:   f.StallProb,
			CloseProb:   f.CloseProb,
			CorruptProb: f.CorruptProb,
			StallFor:    time.Duration(f.StallForMs) * time.Millisecond,
		}
	}
	t := &tier{groups: make(map[groupKey]originGroup)}
	if s.Cache != nil {
		c := s.Cache.withDefaults()
		t.store = cache.New(cache.Config{
			CapacityBytes: int64(c.CapacityMB) << 20,
			Shards:        c.Shards,
			MaxLevel:      c.MaxLevel,
			MinSeen:       c.MinSeen,
		})
	}
	start := func(v *dash.Video, kind string, rank int, mbps float64) (string, error) {
		var plan *netmp.FaultPlan
		if faults != nil {
			p := *faults // distinct draw streams per server
			p.Seed = faults.Seed + int64(len(t.servers))
			plan = &p
		}
		srv, err := netmp.NewChunkServerWithFaults(v, mbps, plan)
		if err != nil {
			return "", err
		}
		srv.SetLimits(netmp.ServerLimits{
			MaxConns:           s.Servers.MaxConns,
			MaxRequestsPerConn: s.Servers.MaxRequestsPerConn,
		})
		t.servers = append(t.servers, srv)
		t.meta = append(t.meta, serverMeta{kind: kind, rank: rank, rate: mbps, rate0: mbps})
		return srv.Addr(), nil
	}
	for _, spec := range plan {
		k := s.groupFor(spec)
		if _, ok := t.groups[k]; ok {
			continue
		}
		// With a cache tier the class rates shape the edges' client-facing
		// downlinks; the origins behind them run at the backhaul rate.
		wifiRate, lteRate := k.wifiMbps, k.lteM
		if s.Cache != nil {
			wifiRate, lteRate = s.Cache.OriginMbps, s.Cache.OriginMbps
		}
		var g originGroup
		for o := 0; o < s.Servers.WiFiOrigins; o++ {
			addr, err := start(videos[k.video], "wifi", o, wifiRate)
			if err != nil {
				t.close()
				return nil, fmt.Errorf("swarm: start wifi origin: %w", err)
			}
			g.wifi = append(g.wifi, addr)
		}
		for o := 0; o < s.Servers.LTEOrigins; o++ {
			addr, err := start(videos[k.video], "lte", o, lteRate)
			if err != nil {
				t.close()
				return nil, fmt.Errorf("swarm: start lte origin: %w", err)
			}
			g.lte = append(g.lte, addr)
		}
		if s.Cache != nil {
			fronted, err := t.frontWithEdges(s, videos[k.video], k, g)
			if err != nil {
				t.close()
				return nil, err
			}
			g = fronted
		}
		t.groups[k] = g
	}
	return t, nil
}

// frontWithEdges starts one edge per path class over g's origins and
// returns a group whose addresses point at the edges. Every edge shares
// the tier's one store, so a chunk filled through any edge — either
// path, any link class — is a hit for the whole run.
func (t *tier) frontWithEdges(s *Scenario, v *dash.Video, k groupKey, g originGroup) (originGroup, error) {
	c := s.Cache.withDefaults()
	pol := func(rate float64) netmp.EdgePolicy {
		return netmp.EdgePolicy{RateMbps: rate, FillFetchers: c.FillFetchers}
	}
	we, err := netmp.NewEdgeServer(v, v.Name, g.wifi, t.store, pol(k.wifiMbps))
	if err != nil {
		return g, fmt.Errorf("swarm: start wifi edge: %w", err)
	}
	t.edges = append(t.edges, we)
	le, err := netmp.NewEdgeServer(v, v.Name, g.lte, t.store, pol(k.lteM))
	if err != nil {
		return g, fmt.Errorf("swarm: start lte edge: %w", err)
	}
	t.edges = append(t.edges, le)
	return originGroup{wifi: []string{we.Addr()}, lte: []string{le.Addr()}}, nil
}

// applyDrop rescales every shaped origin's rate by its link class's
// factor (0 or 1 = unchanged) and reports how many origins changed.
// Unshaped origins (rate 0) cannot drop multiplicatively and are left
// alone. Repeated drops compound; applyRestore undoes them all.
func (t *tier) applyDrop(wifiFactor, lteFactor float64) int {
	changed := 0
	for i, srv := range t.servers {
		factor := wifiFactor
		if t.meta[i].kind == "lte" {
			factor = lteFactor
		}
		if factor <= 0 || factor == 1 || t.meta[i].rate <= 0 {
			continue
		}
		t.meta[i].rate *= factor
		srv.SetRateMbps(t.meta[i].rate)
		changed++
	}
	return changed
}

// applyRestore resets every shaped origin to its original rate and
// reports how many actually changed.
func (t *tier) applyRestore() int {
	changed := 0
	for i, srv := range t.servers {
		if t.meta[i].rate0 <= 0 || t.meta[i].rate == t.meta[i].rate0 {
			continue
		}
		t.meta[i].rate = t.meta[i].rate0
		srv.SetRateMbps(t.meta[i].rate)
		changed++
	}
	return changed
}

// applyFaultProbs installs one fault mix on every origin (nil = clear
// to zero), preserving each server's cumulative FaultStats. seed keys
// the draw streams of origins that started without a fault plan.
func (t *tier) applyFaultProbs(f *FaultSpec, seed int64) int {
	mix := FaultSpec{}
	if f != nil {
		mix = *f
	}
	for i, srv := range t.servers {
		srv.SetFaultProbs(seed+int64(i), mix.ResetProb, mix.StallProb, mix.CloseProb, mix.CorruptProb)
	}
	return len(t.servers)
}

// matchTargets returns the server indexes an event's (path, rank)
// selector resolves to. path "" matches both classes; rank -1 matches
// every rank.
func (t *tier) matchTargets(path string, rank int) []int {
	var idx []int
	for i := range t.servers {
		if path != "" && t.meta[i].kind != path {
			continue
		}
		if rank != -1 && t.meta[i].rank != rank {
			continue
		}
		idx = append(idx, i)
	}
	return idx
}

// crash kills the selected origins (concurrently: each Crash waits for
// its handlers to quiesce) and reports how many went down.
func (t *tier) crash(path string, rank int) int {
	idx := t.matchTargets(path, rank)
	var wg sync.WaitGroup
	for _, i := range idx {
		wg.Add(1)
		go func(s *netmp.ChunkServer) {
			defer wg.Done()
			s.Crash()
		}(t.servers[i])
	}
	wg.Wait()
	return len(idx)
}

// restart re-listens the selected crashed origins on their original
// addresses, reporting how many came back (and any rebind errors).
func (t *tier) restart(path string, rank int) (int, error) {
	idx := t.matchTargets(path, rank)
	n := 0
	var errs []error
	for _, i := range idx {
		if err := t.servers[i].Restart(); err != nil {
			errs = append(errs, err)
			continue
		}
		n++
	}
	return n, errors.Join(errs...)
}

// tierDrainTimeout bounds the graceful per-server drain at teardown
// before falling back to an abrupt Close.
const tierDrainTimeout = 3 * time.Second

// close retires every server: the edge layer first (so in-flight fills
// stop pulling from origins), then a bounded graceful Drain per origin
// (so end-of-run connection teardown is clean FINs, not resets that
// would read like injected faults in FaultStats), then Close — which
// doubles as the fallback that unblocks a drain stuck on a lingering
// handler.
func (t *tier) close() error {
	edgeErrs := make([]error, len(t.edges))
	var ewg sync.WaitGroup
	for i, e := range t.edges {
		ewg.Add(1)
		go func(i int, e *netmp.EdgeServer) {
			defer ewg.Done()
			edgeErrs[i] = e.Close()
		}(i, e)
	}
	ewg.Wait()
	errs := make([]error, len(t.servers))
	var wg sync.WaitGroup
	for i, s := range t.servers {
		wg.Add(1)
		go func(i int, s *netmp.ChunkServer) {
			defer wg.Done()
			drained := make(chan struct{})
			go func() {
				s.Drain()
				close(drained)
			}()
			select {
			case <-drained:
			case <-time.After(tierDrainTimeout):
			}
			errs[i] = s.Close() // Close unblocks a stuck Drain's wait
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errors.Join(edgeErrs...), errors.Join(errs...))
}

// currentConns sums admitted connections across the tier.
func (t *tier) currentConns() int {
	n := 0
	for _, s := range t.servers {
		n += s.CurrentConns()
	}
	return n
}

// ServerReport aggregates the tier's server-side counters.
type ServerReport struct {
	Origins int `json:"origins"`
	// ServedBytes is payload written across every origin.
	ServedBytes int64 `json:"served_bytes"`
	// PeakConns is the highest simultaneous admitted-connection count
	// observed across the tier (sampled).
	PeakConns int `json:"peak_conns"`
	// Overload self-protection counters, summed across origins.
	RejectedConns   int64 `json:"rejected_conns"`
	CappedConns     int64 `json:"capped_conns"`
	PanicsRecovered int64 `json:"panics_recovered"`
	AcceptRetries   int64 `json:"accept_retries"`
	// InjectedFaults totals the chaos plan's injected faults.
	InjectedFaults int64 `json:"injected_faults"`
}

// report snapshots the tier's counters (peak is supplied by the sampler).
func (t *tier) report(peak int) ServerReport {
	r := ServerReport{Origins: len(t.servers), PeakConns: peak}
	for _, s := range t.servers {
		r.ServedBytes += s.ServedBytes()
		o := s.OverloadStats()
		r.RejectedConns += o.RejectedConns
		r.CappedConns += o.CappedConns
		r.PanicsRecovered += o.PanicsRecovered
		r.AcceptRetries += o.AcceptRetries
		r.InjectedFaults += s.FaultStats().Total()
	}
	return r
}
