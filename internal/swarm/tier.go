package swarm

import (
	"errors"
	"fmt"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/netmp"
)

// The server tier: every session streams from real netmp.ChunkServers.
// Servers are grouped by (catalog video, link class); sessions of the
// same group share the same shaped origins, so they contend for the same
// bottleneck the way a population behind one CDN edge does. Only the
// groups the plan actually references are started.

// groupKey identifies one origin group.
type groupKey struct {
	video          int
	wifiMbps, lteM float64
}

// originGroup is one video's origin addresses for one link class.
type originGroup struct {
	wifi, lte []string
}

// tier owns every running server of a swarm.
type tier struct {
	groups  map[groupKey]originGroup
	servers []*netmp.ChunkServer
	// kinds / rates remember each server's link class ("wifi"/"lte")
	// and current shaped rate (0 = unshaped) so a scheduled capacity
	// drop can rescale the right origins mid-run.
	kinds []string
	rates []float64
}

// groupFor resolves the group key a spec maps to.
func (s *Scenario) groupFor(spec SessionSpec) groupKey {
	p := s.Profiles[spec.Profile]
	k := groupKey{video: spec.Video, wifiMbps: s.Servers.WiFiMbps, lteM: s.Servers.LTEMbps}
	if p.WiFiMbps > 0 {
		k.wifiMbps = p.WiFiMbps
	}
	if p.LTEMbps > 0 {
		k.lteM = p.LTEMbps
	}
	return k
}

// startTier launches the origin groups referenced by the plan. videos is
// indexed like the catalog.
func startTier(s *Scenario, videos []*dash.Video, plan []SessionSpec) (*tier, error) {
	var faults *netmp.FaultPlan
	if f := s.Servers.Faults; f != nil {
		faults = &netmp.FaultPlan{
			Seed:        s.Seed ^ 0x5eed0005,
			ResetProb:   f.ResetProb,
			StallProb:   f.StallProb,
			CloseProb:   f.CloseProb,
			CorruptProb: f.CorruptProb,
			StallFor:    time.Duration(f.StallForMs) * time.Millisecond,
		}
	}
	t := &tier{groups: make(map[groupKey]originGroup)}
	start := func(v *dash.Video, kind string, mbps float64) (string, error) {
		var plan *netmp.FaultPlan
		if faults != nil {
			p := *faults // distinct draw streams per server
			p.Seed = faults.Seed + int64(len(t.servers))
			plan = &p
		}
		srv, err := netmp.NewChunkServerWithFaults(v, mbps, plan)
		if err != nil {
			return "", err
		}
		srv.SetLimits(netmp.ServerLimits{
			MaxConns:           s.Servers.MaxConns,
			MaxRequestsPerConn: s.Servers.MaxRequestsPerConn,
		})
		t.servers = append(t.servers, srv)
		t.kinds = append(t.kinds, kind)
		t.rates = append(t.rates, mbps)
		return srv.Addr(), nil
	}
	for _, spec := range plan {
		k := s.groupFor(spec)
		if _, ok := t.groups[k]; ok {
			continue
		}
		var g originGroup
		for o := 0; o < s.Servers.WiFiOrigins; o++ {
			addr, err := start(videos[k.video], "wifi", k.wifiMbps)
			if err != nil {
				t.close()
				return nil, fmt.Errorf("swarm: start wifi origin: %w", err)
			}
			g.wifi = append(g.wifi, addr)
		}
		for o := 0; o < s.Servers.LTEOrigins; o++ {
			addr, err := start(videos[k.video], "lte", k.lteM)
			if err != nil {
				t.close()
				return nil, fmt.Errorf("swarm: start lte origin: %w", err)
			}
			g.lte = append(g.lte, addr)
		}
		t.groups[k] = g
	}
	return t, nil
}

// applyDrop rescales every shaped origin's rate by its link class's
// factor (0 or 1 = unchanged) and reports how many origins changed.
// Unshaped origins (rate 0) cannot drop multiplicatively and are left
// alone.
func (t *tier) applyDrop(wifiFactor, lteFactor float64) int {
	changed := 0
	for i, srv := range t.servers {
		factor := wifiFactor
		if t.kinds[i] == "lte" {
			factor = lteFactor
		}
		if factor <= 0 || factor == 1 || t.rates[i] <= 0 {
			continue
		}
		t.rates[i] *= factor
		srv.SetRateMbps(t.rates[i])
		changed++
	}
	return changed
}

// close stops every server.
func (t *tier) close() error {
	var errs []error
	for _, s := range t.servers {
		errs = append(errs, s.Close())
	}
	return errors.Join(errs...)
}

// currentConns sums admitted connections across the tier.
func (t *tier) currentConns() int {
	n := 0
	for _, s := range t.servers {
		n += s.CurrentConns()
	}
	return n
}

// ServerReport aggregates the tier's server-side counters.
type ServerReport struct {
	Origins int `json:"origins"`
	// ServedBytes is payload written across every origin.
	ServedBytes int64 `json:"served_bytes"`
	// PeakConns is the highest simultaneous admitted-connection count
	// observed across the tier (sampled).
	PeakConns int `json:"peak_conns"`
	// Overload self-protection counters, summed across origins.
	RejectedConns   int64 `json:"rejected_conns"`
	CappedConns     int64 `json:"capped_conns"`
	PanicsRecovered int64 `json:"panics_recovered"`
	AcceptRetries   int64 `json:"accept_retries"`
	// InjectedFaults totals the chaos plan's injected faults.
	InjectedFaults int64 `json:"injected_faults"`
}

// report snapshots the tier's counters (peak is supplied by the sampler).
func (t *tier) report(peak int) ServerReport {
	r := ServerReport{Origins: len(t.servers), PeakConns: peak}
	for _, s := range t.servers {
		r.ServedBytes += s.ServedBytes()
		o := s.OverloadStats()
		r.RejectedConns += o.RejectedConns
		r.CappedConns += o.CappedConns
		r.PanicsRecovered += o.PanicsRecovered
		r.AcceptRetries += o.AcceptRetries
		r.InjectedFaults += s.FaultStats().Total()
	}
	return r
}
