package swarm

// Capacity-drop and graceful-degradation tests: a mid-run tier-wide
// capacity collapse must rescale the right origins, and a population
// running with doomed-chunk abort plus the shared congestion board must
// ride through the collapse — downgrading instead of failing, with the
// degradation visible in the aggregated report.

import (
	"context"
	"strings"
	"testing"
	"time"

	"mpdash/internal/dash"
)

func TestApplyDropRescalesByLinkClass(t *testing.T) {
	scn := tinyScenario(4).withDefaults()
	scn.Servers.WiFiMbps = 8
	scn.Servers.LTEMbps = 4
	plan, err := Plan(scn)
	if err != nil {
		t.Fatal(err)
	}
	videos := make([]*dash.Video, len(scn.Catalog))
	for i, c := range scn.Catalog {
		videos[i] = c.video(i)
	}
	tr, err := startTier(&scn, videos, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.close()

	wifiN, lteN := 0, 0
	for _, m := range tr.meta {
		if m.kind == "wifi" {
			wifiN++
		} else {
			lteN++
		}
	}
	// Drop only the WiFi class: exactly the wifi origins change.
	if got := tr.applyDrop(0.5, 1); got != wifiN {
		t.Errorf("applyDrop(0.5, 1) changed %d origins, want %d wifi", got, wifiN)
	}
	for i := range tr.servers {
		// WiFi 8*0.5 = 4; LTE untouched at 4.
		if tr.meta[i].rate != 4.0 {
			t.Errorf("origin %d (%s) rate %g, want 4", i, tr.meta[i].kind, tr.meta[i].rate)
		}
	}
	// Both classes: every shaped origin changes; factors compound.
	if got := tr.applyDrop(0.5, 0.5); got != wifiN+lteN {
		t.Errorf("applyDrop(0.5, 0.5) changed %d origins, want %d", got, wifiN+lteN)
	}
	// Degenerate factors are no-ops.
	if got := tr.applyDrop(1, 1); got != 0 {
		t.Errorf("applyDrop(1, 1) changed %d origins", got)
	}
	if got := tr.applyDrop(0, 0); got != 0 {
		t.Errorf("applyDrop(0, 0) changed %d origins", got)
	}
}

func TestApplyDropSkipsUnshaped(t *testing.T) {
	scn := tinyScenario(4).withDefaults() // no Servers rates: unshaped
	plan, err := Plan(scn)
	if err != nil {
		t.Fatal(err)
	}
	videos := make([]*dash.Video, len(scn.Catalog))
	for i, c := range scn.Catalog {
		videos[i] = c.video(i)
	}
	tr, err := startTier(&scn, videos, plan)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.close()
	if got := tr.applyDrop(0.25, 0.25); got != 0 {
		t.Errorf("applyDrop rescaled %d unshaped origins", got)
	}
}

// dropScenario is a single-video population whose sessions are all
// mid-flight when the tier capacity collapses to a tenth.
func dropScenario(n int, degrade bool) Scenario {
	scn := Scenario{
		Sessions: n,
		Arrival:  Arrival{Kind: ArrivalUniform, Over: Duration(200 * time.Millisecond)},
		Seed:     42,
		Catalog: []CatalogItem{
			{Name: "drop-v", ChunkMs: 100, Chunks: 12, LevelsMbps: []float64{0.2, 0.4, 0.8}},
		},
		Profiles: []Profile{
			{Name: "wifi", Weight: 0.7, ABR: "gpac"},
			{Name: "lte", Weight: 0.3, ABR: "gpac", Preference: "lte"},
		},
		CapacityDrop: &CapacityDropSpec{
			At: Duration(300 * time.Millisecond), WiFiFactor: 0.1, LTEFactor: 0.1,
		},
	}
	scn.Servers.WiFiMbps = 16
	scn.Servers.LTEMbps = 16
	if degrade {
		scn.Abort = &AbortSpec{}
		scn.Board = true
	}
	return scn
}

func TestSwarmCapacityDropWithGracefulDegradation(t *testing.T) {
	sw, err := New(dropScenario(16, true))
	if err != nil {
		t.Fatal(err)
	}
	sw.KeepSessions = true
	rep, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Sessions {
		t.Fatalf("completed %d of %d (failed=%d timedout=%d panicked=%d)",
			rep.Completed, rep.Sessions, rep.Failed, rep.TimedOut, rep.Panicked)
	}
	if rep.LedgerViolations != 0 {
		t.Errorf("%d ledger violations across the drop", rep.LedgerViolations)
	}
	if rep.Aborts == 0 {
		t.Error("no doomed-chunk aborts despite a 10x capacity collapse mid-flight")
	}
	if rep.Downgrades < rep.Aborts {
		t.Errorf("downgrades %d < aborts %d — every abort must downgrade",
			rep.Downgrades, rep.Aborts)
	}
	// The degradation line must surface in the human summary.
	if s := rep.Summary(); !strings.Contains(s, "degradation") {
		t.Errorf("summary lacks the degradation line:\n%s", s)
	}
}

func TestSwarmCapacityDropAbortOffStillCompletes(t *testing.T) {
	// The baseline leg of the CI comparison: same collapse, mechanism
	// off. Sessions must still complete (ride-it-out), with zero aborts.
	sw, err := New(dropScenario(12, false))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Sessions {
		t.Fatalf("completed %d of %d", rep.Completed, rep.Sessions)
	}
	if rep.Aborts != 0 || rep.Downgrades != 0 {
		t.Errorf("abort machinery moved while disabled: aborts=%d downgrades=%d",
			rep.Aborts, rep.Downgrades)
	}
	if rep.LedgerViolations != 0 {
		t.Errorf("%d ledger violations", rep.LedgerViolations)
	}
}
