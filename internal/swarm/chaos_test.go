package swarm

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestChaosTimelineMergesLegacyDrop(t *testing.T) {
	scn := tinyScenario(4)
	scn.CapacityDrop = &CapacityDropSpec{At: Duration(300 * time.Millisecond), WiFiFactor: 0.5}
	scn.Chaos = []ChaosEvent{
		{At: Duration(500 * time.Millisecond), Kind: ChaosCapacityRestore},
		{At: Duration(100 * time.Millisecond), Kind: ChaosFaultSurge, Faults: &FaultSpec{ResetProb: 0.1}},
	}
	tl := scn.chaosTimeline()
	if len(tl) != 3 {
		t.Fatalf("timeline has %d events, want 3", len(tl))
	}
	// Sorted by At, with the legacy drop translated in place.
	if tl[0].Kind != ChaosFaultSurge || tl[1].Kind != ChaosCapacityDrop || tl[2].Kind != ChaosCapacityRestore {
		t.Fatalf("timeline order: %s, %s, %s", tl[0].Kind, tl[1].Kind, tl[2].Kind)
	}
	if tl[1].WiFiFactor != 0.5 {
		t.Fatalf("translated drop lost its factor: %+v", tl[1])
	}
	// Defaulting twice must not duplicate the translated drop.
	dd := scn.withDefaults().withDefaults()
	if got := len(dd.chaosTimeline()); got != 3 {
		t.Fatalf("double-defaulted timeline has %d events, want 3", got)
	}
}

func TestValidateChaosRejectsBadEvents(t *testing.T) {
	base := func() Scenario { return tinyScenario(4).withDefaults() }
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"negative offset", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: Duration(-time.Second), Kind: ChaosCapacityRestore}}
		}, "at must be > 0"},
		{"beyond horizon", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: s.Arrival.Over + s.SessionTimeout + Duration(time.Second), Kind: ChaosCapacityRestore}}
		}, "beyond the run horizon"},
		{"unknown kind", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: Duration(time.Second), Kind: "meteor_strike"}}
		}, "unknown kind"},
		{"bad path", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: Duration(time.Second), Kind: ChaosBlackout, Path: "5g"}}
		}, `path "5g"`},
		{"drop factor out of range", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: Duration(time.Second), Kind: ChaosCapacityDrop, WiFiFactor: 1.5}}
		}, "factors must be in [0,1]"},
		{"surge without faults", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: Duration(time.Second), Kind: ChaosFaultSurge}}
		}, "needs a faults mix"},
		{"surge prob out of range", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: Duration(time.Second), Kind: ChaosFaultSurge, Faults: &FaultSpec{StallProb: 2}}}
		}, "stall_prob 2"},
		{"origin rank out of range", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: Duration(time.Second), Kind: ChaosOriginCrash, Path: "wifi", Origin: 3}}
		}, "out of range"},
		{"origin rank below -1", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: Duration(time.Second), Kind: ChaosOriginCrash, Origin: -2}}
		}, "origin rank -2"},
		{"restart without crash", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: Duration(time.Second), Kind: ChaosOriginRestart, Path: "wifi"}}
		}, "not crashed at that point"},
		{"overlapping crash", func(s *Scenario) {
			s.Chaos = []ChaosEvent{
				{At: Duration(time.Second), Kind: ChaosOriginCrash, Path: "wifi"},
				{At: Duration(2 * time.Second), Kind: ChaosOriginCrash, Path: "wifi"},
			}
		}, "overlaps an outstanding crash"},
		{"blackout over crashed origin", func(s *Scenario) {
			s.Chaos = []ChaosEvent{
				{At: Duration(time.Second), Kind: ChaosOriginCrash, Path: "lte"},
				{At: Duration(2 * time.Second), Kind: ChaosBlackout, Path: "lte"},
			}
		}, "overlaps an outstanding crash"},
		{"heal of healthy path", func(s *Scenario) {
			s.Chaos = []ChaosEvent{{At: Duration(time.Second), Kind: ChaosHeal, Path: "wifi"}}
		}, "not crashed at that point"},
		{"bad recovery threshold", func(s *Scenario) {
			s.Recovery = &RecoverySpec{MissThreshold: 1.5}
		}, "miss_threshold"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scn := base()
			tc.mut(&scn)
			err := scn.Validate()
			if err == nil {
				t.Fatalf("validation passed, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestValidateChaosAcceptsPairedStory(t *testing.T) {
	scn := tinyScenario(4)
	scn.Servers.WiFiOrigins = 2
	scn.Chaos = []ChaosEvent{
		{At: Duration(time.Second), Kind: ChaosOriginCrash, Path: "wifi", Origin: 0},
		{At: Duration(2 * time.Second), Kind: ChaosOriginRestart, Path: "wifi", Origin: 0},
		{At: Duration(3 * time.Second), Kind: ChaosBlackout, Path: "lte"},
		{At: Duration(4 * time.Second), Kind: ChaosHeal, Path: "lte"},
		{At: Duration(5 * time.Second), Kind: ChaosFaultSurge, Faults: &FaultSpec{ResetProb: 0.2}},
		{At: Duration(6 * time.Second), Kind: ChaosFaultClear},
	}
	if err := scn.withDefaults().Validate(); err != nil {
		t.Fatalf("valid paired story rejected: %v", err)
	}
}

func TestComputeMTTRWindows(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	// Steady completions every 20ms; misses from 200ms to 400ms.
	var samples []chunkSample
	for at := ms(20); at <= ms(800); at += ms(20) {
		samples = append(samples, chunkSample{at: at, missed: at >= ms(200) && at < ms(400)})
	}
	rec := (&RecoverySpec{Window: Duration(100 * time.Millisecond), MissThreshold: 0.2, MinChunks: 3}).withDefaults()
	applied := []appliedChaos{{
		ev:      ChaosEvent{At: Duration(ms(200)), Kind: ChaosCapacityDrop},
		applied: ms(200),
		touched: 2,
	}}
	got := computeMTTR(samples, applied, rec)
	if len(got) != 1 {
		t.Fatalf("got %d reports", len(got))
	}
	r := got[0]
	if !r.Recovered {
		t.Fatalf("event not recovered: %+v", r)
	}
	// Impact shows at 220ms (window (120,220] holds 2 misses / 5 = 0.4);
	// misses end at 400ms and the rate first returns under the threshold
	// at 460ms (window (360,460] holds 1 miss / 5 = 0.2):
	// MTTR = 460ms - 200ms = 260ms.
	if !r.Impacted {
		t.Fatalf("event not marked impacted: %+v", r)
	}
	if want := 0.260; r.MTTRS < want-1e-9 || r.MTTRS > want+1e-9 {
		t.Fatalf("MTTR %.3fs, want %.3fs", r.MTTRS, want)
	}
	if r.Origins != 2 || r.AtS != 0.2 {
		t.Fatalf("report lost event identity: %+v", r)
	}

	// An event whose misses never clear is reported unrecovered.
	for i := range samples {
		samples[i].missed = true
	}
	got = computeMTTR(samples, applied, rec)
	if got[0].Recovered || got[0].MTTRS != -1 {
		t.Fatalf("all-miss stream reported recovered: %+v", got[0])
	}

	// Too few samples in the window: never trusted, never recovered.
	rec.MinChunks = 1000
	for i := range samples {
		samples[i].missed = false
	}
	got = computeMTTR(samples, applied, rec)
	if got[0].Recovered {
		t.Fatalf("sparse stream reported recovered: %+v", got[0])
	}
}

// TestSwarmChaosCrashRestartRecovers is the end-to-end story: a small
// population with two ranked WiFi origins per group suffers a rank-0
// origin crash mid-run and a restart shortly after. Every session must
// complete with a clean ledger, the executed timeline must land in the
// report, and the crash must be recovered with a measured MTTR.
func TestSwarmChaosCrashRestartRecovers(t *testing.T) {
	scn := Scenario{
		Sessions: 24,
		Arrival:  Arrival{Kind: ArrivalUniform, Over: Duration(400 * time.Millisecond)},
		Seed:     7,
		Catalog: []CatalogItem{
			{Name: "chaos-v", ChunkMs: 100, Chunks: 14, LevelsMbps: []float64{0.2, 0.4}},
		},
		Profiles: []Profile{
			{Name: "wifi", Weight: 0.7, ABR: "gpac"},
			{Name: "lte", Weight: 0.3, ABR: "gpac", Preference: "lte"},
		},
		Chaos: []ChaosEvent{
			{At: Duration(300 * time.Millisecond), Kind: ChaosOriginCrash, Path: "wifi", Origin: 0},
			{At: Duration(700 * time.Millisecond), Kind: ChaosOriginRestart, Path: "wifi", Origin: 0},
		},
		Recovery: &RecoverySpec{Window: Duration(300 * time.Millisecond), MissThreshold: 0.5, MinChunks: 3},
	}
	scn.Servers.WiFiOrigins = 2
	sw, err := New(scn)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Sessions {
		t.Fatalf("completed %d of %d (failed=%d timedout=%d panicked=%d)",
			rep.Completed, rep.Sessions, rep.Failed, rep.TimedOut, rep.Panicked)
	}
	if rep.LedgerViolations != 0 {
		t.Errorf("%d ledger violations across the crash window", rep.LedgerViolations)
	}
	if len(rep.Chaos) != 2 {
		t.Fatalf("report has %d chaos events, want 2", len(rep.Chaos))
	}
	if rep.Chaos[0].Kind != ChaosOriginCrash || rep.Chaos[1].Kind != ChaosOriginRestart {
		t.Fatalf("chaos order: %s, %s", rep.Chaos[0].Kind, rep.Chaos[1].Kind)
	}
	for _, c := range rep.Chaos {
		if c.Origins == 0 {
			t.Errorf("chaos %s touched no origins", c.Kind)
		}
		if !c.Recovered {
			t.Errorf("chaos %s never recovered", c.Kind)
		}
	}
	if rep.MTTR == nil {
		t.Fatal("report lacks MTTR quantiles")
	}
	if s := rep.Summary(); !strings.Contains(s, "chaos") || !strings.Contains(s, "mttr") {
		t.Errorf("summary lacks the chaos lines:\n%s", s)
	}
}
