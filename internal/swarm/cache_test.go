package swarm

import (
	"strings"
	"testing"
)

func TestCacheSpecDefaults(t *testing.T) {
	// withDefaults is nil-safe and value-returning: scenario specs are
	// shared pointers and must never be mutated in place.
	var nilSpec *CacheSpec
	if got := nilSpec.withDefaults().CapacityMB; got != 64 {
		t.Errorf("nil spec capacity = %d, want 64", got)
	}
	spec := &CacheSpec{}
	if got := spec.withDefaults().CapacityMB; got != 64 {
		t.Errorf("zero spec capacity = %d, want 64", got)
	}
	if spec.CapacityMB != 0 {
		t.Error("withDefaults mutated the caller's spec")
	}
	full := &CacheSpec{CapacityMB: 8, Shards: 4, MaxLevel: 1, MinSeen: 2, FillFetchers: 3, OriginMbps: 80}
	if got := full.withDefaults(); got != *full {
		t.Errorf("explicit spec rewritten: %+v", got)
	}
}

func TestScenarioValidateCacheSpec(t *testing.T) {
	ok := tinyScenario(4)
	ok.Cache = &CacheSpec{CapacityMB: 8}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid cache spec rejected: %v", err)
	}
	bad := []CacheSpec{
		{CapacityMB: -1},
		{Shards: -2},
		{MaxLevel: -3}, // -1 (admit all) is expressed by omission, not negatives
		{MinSeen: -1},
		{FillFetchers: -1},
		{OriginMbps: -5},
	}
	for i, spec := range bad {
		scn := tinyScenario(4)
		s := spec
		scn.Cache = &s
		if err := scn.Validate(); err == nil {
			t.Errorf("bad cache spec %d (%+v) accepted", i, spec)
		}
	}
}

func TestSwarmCachedRun(t *testing.T) {
	scn := tinyScenario(12)
	scn.Cache = &CacheSpec{FillFetchers: 2}
	rep := runScenario(t, scn)
	if rep.Completed != 12 || rep.LedgerViolations != 0 {
		t.Fatalf("completed=%d ledger=%d", rep.Completed, rep.LedgerViolations)
	}
	c := rep.Cache
	if c == nil {
		t.Fatal("cached run reported no cache block")
	}
	// The caller's spec stays untouched even though the report shows the
	// defaulted capacity.
	if scn.Cache.CapacityMB != 0 || c.CapacityMB != 64 {
		t.Errorf("capacity: spec=%d report=%d", scn.Cache.CapacityMB, c.CapacityMB)
	}
	if c.Edges == 0 {
		t.Error("no edges stood up")
	}
	if c.Hits+c.Misses == 0 || c.Fills == 0 {
		t.Errorf("cache saw no demand: %+v", c)
	}
	if c.FillErrors != 0 {
		t.Errorf("%d fill errors", c.FillErrors)
	}
	if c.ServedBytes == 0 || c.OffloadRatio < 0 || c.OffloadRatio > 1 {
		t.Errorf("offload malformed: served=%d origin=%d ratio=%v",
			c.ServedBytes, c.OriginBytes, c.OffloadRatio)
	}
	if len(c.ByRank) != len(scn.Catalog) {
		t.Errorf("by-rank rows = %d, want %d", len(c.ByRank), len(scn.Catalog))
	}
	share := 0.0
	for _, rk := range c.ByRank {
		share += rk.ExpectedShare
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("expected shares sum to %v", share)
	}
	if !strings.Contains(rep.Summary(), "cache") {
		t.Error("summary omits the cache block")
	}
}

func TestSwarmUncachedRunHasNoCacheBlock(t *testing.T) {
	rep := runScenario(t, tinyScenario(4))
	if rep.Cache != nil {
		t.Fatalf("uncached run grew a cache block: %+v", rep.Cache)
	}
	if strings.Contains(rep.Summary(), "offload") {
		t.Error("summary renders a cache block for an uncached run")
	}
}

func TestShippedCacheScenarioValid(t *testing.T) {
	scn, err := LoadScenario("../../scenarios/zipf-cache.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := scn.Validate(); err != nil {
		t.Fatalf("shipped cache scenario invalid: %v", err)
	}
	if scn.Cache == nil {
		t.Fatal("zipf-cache.json carries no cache stanza")
	}
	if scn.Sessions < 500 {
		t.Errorf("sessions = %d, want the 500-session acceptance shape", scn.Sessions)
	}
	if scn.ZipfS <= 0 {
		t.Error("cache scenario needs a skewed popularity law")
	}
	if scn.Arrival.Kind != ArrivalSpike {
		t.Errorf("arrival %q, want the spike that exercises singleflight", scn.Arrival.Kind)
	}
}
