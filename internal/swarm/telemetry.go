package swarm

import (
	"time"

	"mpdash/internal/obs"
)

// Population telemetry. The swarm does NOT instrument each session's
// fetcher — 500 sessions multiplexed into one per-path metric family
// would be noise, and the registry lock would sit on every chunk's hot
// path. Instead the swarm emits population-level swarm_* series as
// sessions complete, plus journal events for the run's lifecycle, and
// instruments the shared server tier (whose mpdash_server_* collectors
// are scrape-time and contention-free).

// rebufferBuckets spans the rebuffer-ratio unit interval.
var rebufferBuckets = []float64{0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1}

// swarmObs bundles the swarm's telemetry handles; nil = off (every
// method is nil-safe).
type swarmObs struct {
	sink obs.Sink
	reg  *obs.Registry // for per-kind chaos counters, created on demand

	active     *obs.Gauge
	mttrP50    *obs.Gauge
	mttrP95    *obs.Gauge
	startup    *obs.Histogram
	rebuffer   *obs.Histogram
	queueWait  *obs.Histogram
	sessions   map[string]*obs.Counter // by result label
	chunksOK   *obs.Counter
	chunksMis  *obs.Counter
	chunksLost *obs.Counter
	wifiBytes  *obs.Counter
	cellBytes  *obs.Counter
	aborts     *obs.Counter
	downgrades *obs.Counter
	wastedCell *obs.Counter
}

func newSwarmObs(t *obs.Telemetry) *swarmObs {
	r := t.Registry
	byResult := func(result string) *obs.Counter {
		return r.Counter("swarm_sessions_total",
			"Sessions finished, by outcome (completed/failed/timedout/panicked).",
			obs.Labels{"result": result})
	}
	return &swarmObs{
		sink:   t,
		reg:    r,
		active: r.Gauge("swarm_sessions_active", "Sessions currently streaming.", nil),
		mttrP50: r.Gauge("swarm_mttr_p50_seconds",
			"Median time from a chaos event to population recovery (rolling miss rate back under threshold).", nil),
		mttrP95: r.Gauge("swarm_mttr_p95_seconds",
			"95th-percentile time from a chaos event to population recovery.", nil),
		startup: r.Histogram("swarm_startup_delay_seconds",
			"Per-session startup (join) delay.", obs.DefSecondsBuckets, nil),
		rebuffer: r.Histogram("swarm_rebuffer_ratio",
			"Per-session stall time over (stall + played) time.", rebufferBuckets, nil),
		queueWait: r.Histogram("swarm_queue_wait_seconds",
			"Arrival-to-worker-slot wait under MaxActive pressure.", obs.DefSecondsBuckets, nil),
		sessions: map[string]*obs.Counter{
			"completed": byResult("completed"),
			"failed":    byResult("failed"),
			"timedout":  byResult("timedout"),
			"panicked":  byResult("panicked"),
		},
		chunksOK: r.Counter("swarm_chunks_total",
			"Chunks fetched across the population, by deadline outcome.",
			obs.Labels{"result": "met"}),
		chunksMis: r.Counter("swarm_chunks_total",
			"Chunks fetched across the population, by deadline outcome.",
			obs.Labels{"result": "missed"}),
		chunksLost: r.Counter("swarm_chunks_total",
			"Chunks fetched across the population, by deadline outcome.",
			obs.Labels{"result": "lost"}),
		wifiBytes: r.Counter("swarm_bytes_total",
			"Payload bytes delivered across the population, by network.",
			obs.Labels{"net": "wifi"}),
		cellBytes: r.Counter("swarm_bytes_total",
			"Payload bytes delivered across the population, by network.",
			obs.Labels{"net": "cellular"}),
		aborts: r.Counter("swarm_aborts_total",
			"Doomed-chunk aborts across the population.", nil),
		downgrades: r.Counter("swarm_downgrades_total",
			"Abort-driven rendition downgrades across the population.", nil),
		wastedCell: r.Counter("swarm_wasted_cellular_bytes_total",
			"Cellular payload that bought no on-time video, across the population.", nil),
	}
}

func (so *swarmObs) setActive(n int64) {
	if so == nil {
		return
	}
	so.active.Set(float64(n))
}

func (so *swarmObs) emitRunStart(scn *Scenario, sessions, origins int) {
	if so == nil || so.sink == nil {
		return
	}
	so.sink.Emit(obs.NewEvent("swarm.run.start").
		WithStr("scenario", scn.Name).
		WithStr("arrival", string(scn.Arrival.Kind)).
		WithNum("sessions", float64(sessions)).
		WithNum("origins", float64(origins)).
		WithNum("seed", float64(scn.Seed)))
}

func (so *swarmObs) emitSessionStart(spec SessionSpec, video, profile string) {
	if so == nil || so.sink == nil {
		return
	}
	so.sink.Emit(obs.NewEvent("swarm.session.start").
		WithNum("session", float64(spec.ID)).
		WithStr("video", video).
		WithStr("profile", profile))
}

// observeSession folds one finished session into the population series.
func (so *swarmObs) observeSession(out SessionOutcome) {
	if so == nil {
		return
	}
	result := "completed"
	switch {
	case out.Panicked:
		result = "panicked"
	case out.TimedOut:
		result = "timedout"
	case out.Err != "":
		result = "failed"
	}
	so.sessions[result].Inc()
	so.queueWait.Observe(out.QueueWait.D().Seconds())
	if res := out.Result; res != nil && res.Chunks > 0 {
		so.startup.Observe(res.StartupDelay.Seconds())
		so.rebuffer.Observe(out.RebufferRatio)
		so.chunksMis.Add(int64(res.DeadlineMisses))
		so.chunksOK.Add(int64(res.Chunks - res.DeadlineMisses))
		so.chunksLost.Add(int64(res.LostChunks))
		so.cellBytes.Add(out.CellularBytes)
		so.wifiBytes.Add(out.TotalBytes - out.CellularBytes)
		so.aborts.Add(int64(res.Aborts))
		so.downgrades.Add(int64(res.Downgrades))
		so.wastedCell.Add(out.WastedCellularBytes)
	}
	if so.sink == nil {
		return
	}
	e := obs.NewEvent("swarm.session.done").
		WithNum("session", float64(out.ID)).
		WithStr("video", out.Video).
		WithStr("profile", out.Profile).
		WithStr("result", result)
	if res := out.Result; res != nil {
		e = e.WithNum("chunks", float64(res.Chunks)).
			WithNum("startup_s", res.StartupDelay.Seconds()).
			WithNum("rebuffer_ratio", out.RebufferRatio).
			WithNum("deadline_misses", float64(res.DeadlineMisses))
	}
	so.sink.Emit(e)
}

// chaosEventName maps a timeline kind to its journal event type.
func chaosEventName(k ChaosKind) string {
	switch k {
	case ChaosCapacityDrop:
		return "chaos.capacity.drop"
	case ChaosCapacityRestore:
		return "chaos.capacity.restore"
	case ChaosFaultSurge:
		return "chaos.fault.surge"
	case ChaosFaultClear:
		return "chaos.fault.clear"
	case ChaosBlackout:
		return "chaos.path.blackout"
	case ChaosHeal:
		return "chaos.path.heal"
	case ChaosOriginCrash:
		return "chaos.origin.crash"
	case ChaosOriginRestart:
		return "chaos.origin.restart"
	}
	return "chaos.event"
}

// emitChaos journals one executed timeline event and counts it by kind.
func (so *swarmObs) emitChaos(ev ChaosEvent, at time.Duration, origins int) {
	if so == nil {
		return
	}
	so.reg.Counter("swarm_chaos_events_total",
		"Chaos timeline events executed, by kind.",
		obs.Labels{"kind": string(ev.Kind)}).Inc()
	if so.sink == nil {
		return
	}
	e := obs.NewEvent(chaosEventName(ev.Kind)).
		WithNum("at_s", ev.At.D().Seconds()).
		WithNum("applied_s", at.Seconds()).
		WithNum("origins", float64(origins))
	switch ev.Kind {
	case ChaosCapacityDrop:
		e = e.WithNum("wifi_factor", ev.WiFiFactor).WithNum("lte_factor", ev.LTEFactor)
	case ChaosBlackout, ChaosHeal:
		e = e.WithStr("path", pathLabel(ev.Path))
	case ChaosOriginCrash, ChaosOriginRestart:
		e = e.WithStr("path", pathLabel(ev.Path)).WithNum("origin", float64(ev.Origin))
	}
	so.sink.Emit(e)
}

func pathLabel(p string) string {
	if p == "" {
		return "both"
	}
	return p
}

// emitSessionPanic journals one absorbed session panic with its stack,
// so chaos-run crashes are debuggable from the journal alone.
func (so *swarmObs) emitSessionPanic(id int, val, stack string) {
	if so == nil || so.sink == nil {
		return
	}
	so.sink.Emit(obs.NewEvent("session.panic").
		WithNum("session", float64(id)).
		WithStr("panic", val).
		WithStr("stack", stack))
}

func (so *swarmObs) emitRunDone(r *Report) {
	if so == nil {
		return
	}
	if r.MTTR != nil {
		so.mttrP50.Set(r.MTTR.P50)
		so.mttrP95.Set(r.MTTR.P95)
	}
	if so.sink == nil {
		return
	}
	e := obs.NewEvent("swarm.run.done").
		WithNum("sessions", float64(r.Sessions)).
		WithNum("completed", float64(r.Completed)).
		WithNum("peak_concurrent", float64(r.PeakConcurrent)).
		WithNum("startup_p95_s", r.StartupDelayS.P95).
		WithNum("deadline_miss_rate", r.DeadlineMissRate).
		WithNum("cellular_byte_share", r.CellularByteShare).
		WithNum("ledger_violations", float64(r.LedgerViolations))
	if r.MTTR != nil {
		e = e.WithNum("mttr_p95_s", r.MTTR.P95)
	}
	so.sink.Emit(e)
}
