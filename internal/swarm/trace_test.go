package swarm

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mpdash/internal/obs"
)

// runTraced runs scn with a tracer attached and returns the report, the
// tracer, and the JSONL export.
func runTraced(t *testing.T, scn Scenario, rate float64) (*Report, *obs.Tracer, []byte) {
	t.Helper()
	sw, err := New(scn)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(obs.TraceConfig{HeadSampleRate: rate, Seed: scn.Seed})
	sw.Tracer = tr
	rep, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rep.Trace = BuildTraceReport(tr)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return rep, tr, buf.Bytes()
}

func TestSwarmTracing(t *testing.T) {
	rep, tr, jsonl := runTraced(t, tinyScenario(8), 1)
	st := tr.Stats()
	if st.Finished == 0 || int(st.Finished) != rep.Chunks {
		t.Fatalf("finished %d traces for %d chunks", st.Finished, rep.Chunks)
	}
	if st.Kept != st.Finished {
		t.Errorf("head rate 1 kept %d of %d", st.Kept, st.Finished)
	}
	if rep.Trace == nil || rep.Trace.Kept != st.Kept {
		t.Fatalf("report trace section = %+v", rep.Trace)
	}
	// The export parses back and spans the whole population.
	recs, err := obs.ReadTraceJSONL(bytes.NewReader(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != int(st.Kept) {
		t.Fatalf("export holds %d traces, kept %d", len(recs), st.Kept)
	}
	sessions := map[int]bool{}
	ids := map[string]bool{}
	for _, rec := range recs {
		sessions[rec.Session] = true
		// (session, chunk) must map to a unique deterministic trace ID.
		if ids[rec.TraceID] {
			t.Fatalf("duplicate trace ID %s", rec.TraceID)
		}
		ids[rec.TraceID] = true
	}
	if len(sessions) != rep.Sessions {
		t.Errorf("traces cover %d sessions of %d", len(sessions), rep.Sessions)
	}
	// The summary renders the tracing section.
	if s := rep.Summary(); !strings.Contains(s, "tracing") {
		t.Errorf("summary lacks tracing section:\n%s", s)
	}
}

func TestSwarmTracingDeterministicIDs(t *testing.T) {
	scn := tinyScenario(8)
	_, _, a := runTraced(t, scn, 1)
	_, _, b := runTraced(t, scn, 1)
	ra, err := obs.ReadTraceJSONL(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := obs.ReadTraceJSONL(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same plan: the (session, chunk) → trace ID mapping is
	// identical across runs (finish order and timings may differ).
	ids := func(recs []*obs.TraceRecord) map[[2]int]string {
		m := make(map[[2]int]string, len(recs))
		for _, r := range recs {
			m[[2]int{r.Session, r.Chunk}] = r.TraceID
		}
		return m
	}
	ma, mb := ids(ra), ids(rb)
	if len(ma) != len(mb) {
		t.Fatalf("runs kept different trace sets: %d vs %d", len(ma), len(mb))
	}
	for k, id := range ma {
		if mb[k] != id {
			t.Fatalf("session %d chunk %d trace ID differs: %s vs %s", k[0], k[1], id, mb[k])
		}
	}
}

func TestSwarmTracingKeepsPanicTrace(t *testing.T) {
	testHookSession = func(id int) {
		if id == 2 {
			panic("traced panic")
		}
	}
	defer func() { testHookSession = nil }()
	rep, tr, _ := runTraced(t, tinyScenario(8), 0)
	if rep.Panicked != 1 {
		t.Fatalf("panicked=%d, want 1", rep.Panicked)
	}
	// Head rate 0: only bad traces survive; the chunk in flight at the
	// panic must be among them if one was open.
	for _, rec := range tr.Records() {
		if rec.Verdict == obs.TracePanic && rec.Session != 2 {
			t.Errorf("panic trace charged to session %d, want 2", rec.Session)
		}
	}
}

func TestBuildTraceReportNil(t *testing.T) {
	if BuildTraceReport(nil) != nil {
		t.Error("nil tracer produced a report")
	}
}
