package swarm

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"mpdash/internal/audit"
)

// Quantiles summarizes one population distribution. Values are exact
// (computed from the full sorted sample, not histogram estimates).
type Quantiles struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// quantilesOf computes exact population quantiles (zero value for an
// empty sample).
func quantilesOf(xs []float64) Quantiles {
	if len(xs) == 0 {
		return Quantiles{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return Quantiles{
		P50:  at(0.50),
		P95:  at(0.95),
		P99:  at(0.99),
		Mean: sum / float64(len(s)),
		Max:  s[len(s)-1],
	}
}

// Report is the population result of one swarm run — the machine-readable
// BENCH_swarm.json payload.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Arrival  string `json:"arrival"`
	// Sessions is the number launched; Completed finished their chunk
	// budget cleanly; Failed returned an error; TimedOut overstayed the
	// session timeout; Panicked were absorbed by the isolation wrapper.
	Sessions  int `json:"sessions"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	TimedOut  int `json:"timed_out"`
	Panicked  int `json:"panicked"`
	// PeakConcurrent is the highest number of simultaneously running
	// sessions; PeakQueued-style pressure shows up in QueueWaitS instead.
	PeakConcurrent int     `json:"peak_concurrent"`
	WallS          float64 `json:"wall_s"`

	// Population QoE.
	StartupDelayS    Quantiles `json:"startup_delay_s"`
	RebufferRatio    Quantiles `json:"rebuffer_ratio"`
	QueueWaitS       Quantiles `json:"queue_wait_s"`
	AvgLevel         float64   `json:"avg_level"`
	DeadlineMissRate float64   `json:"deadline_miss_rate"`
	// CellularByteShare is LTE-path bytes over all bytes, population-wide.
	CellularByteShare float64 `json:"cellular_byte_share"`

	// Population totals.
	Chunks         int   `json:"chunks"`
	DeadlineMisses int   `json:"deadline_misses"`
	Stalls         int   `json:"stalls"`
	LostChunks     int   `json:"lost_chunks"`
	BytesTotal     int64 `json:"bytes_total"`
	CellularBytes  int64 `json:"cellular_bytes"`
	// Graceful-degradation totals: doomed-chunk aborts, the rendition
	// downgrades that recovered them, the partial payload the aborts
	// discarded, and the LTE-path share of payload that bought no
	// on-time video (aborted/failed partials + deadline-missed chunks).
	Aborts              int   `json:"aborts"`
	Downgrades          int   `json:"downgrades"`
	AbortWastedBytes    int64 `json:"abort_wasted_bytes"`
	WastedCellularBytes int64 `json:"wasted_cellular_bytes"`
	// WastedBytes is the all-path population total of payload that
	// bought no on-time video — the auditor's unbounded-waste input.
	WastedBytes int64 `json:"wasted_bytes"`

	// Resilience totals (PRs 1–3 machinery under population load).
	FaultsSurvived  int64 `json:"faults_survived"`
	Retries         int64 `json:"retries"`
	Redials         int64 `json:"redials"`
	Requeued        int64 `json:"requeued"`
	Failovers       int64 `json:"failovers"`
	HedgesIssued    int64 `json:"hedges_issued"`
	HedgesWon       int64 `json:"hedges_won"`
	HedgesCancelled int64 `json:"hedges_cancelled"`
	// LedgerViolations counts sessions whose byte-for-byte verification
	// failed — must be zero on a correct run.
	LedgerViolations int `json:"ledger_violations"`

	Server ServerReport `json:"server"`

	// Cache is the edge-cache tier's report (nil = the run had no cache
	// stanza and sessions streamed straight from the origins).
	Cache *CacheReport `json:"cache,omitempty"`

	// Chaos is the executed chaos timeline, one entry per event, with
	// per-event recovery times (MTTRS = -1 when the population's rolling
	// miss rate never returned under threshold before the run ended).
	Chaos []ChaosEventReport `json:"chaos,omitempty"`
	// MTTR summarizes recovery times (seconds) across the recovered
	// chaos events; nil when the run had no chaos timeline.
	MTTR *Quantiles `json:"mttr_s,omitempty"`

	// Audit is the runtime invariant auditor's verdict, attached by the
	// caller that ran the audit (nil = the run was not audited).
	Audit *audit.Result `json:"audit,omitempty"`

	// Trace is the span-tracing summary — sampling counters and the
	// critical-path miss budget — attached by the caller that enabled
	// tracing (nil = the run was not traced).
	Trace *TraceReport `json:"trace,omitempty"`

	// PerProfile breaks the headline QoE down by session profile.
	PerProfile []ProfileReport `json:"per_profile,omitempty"`

	// SessionOutcomes is the full per-session detail (opt-in; see
	// Swarm.KeepSessions).
	SessionOutcomes []SessionOutcome `json:"session_outcomes,omitempty"`
}

// ProfileReport is one profile's slice of the population.
type ProfileReport struct {
	Name              string    `json:"name"`
	Sessions          int       `json:"sessions"`
	Completed         int       `json:"completed"`
	StartupDelayS     Quantiles `json:"startup_delay_s"`
	RebufferRatio     Quantiles `json:"rebuffer_ratio"`
	DeadlineMissRate  float64   `json:"deadline_miss_rate"`
	CellularByteShare float64   `json:"cellular_byte_share"`
}

// aggregate folds the session outcomes and the server tier snapshot into
// the population report.
func aggregate(scn *Scenario, outs []SessionOutcome, srv ServerReport, wall time.Duration, peakActive int) *Report {
	r := &Report{
		Scenario:       scn.Name,
		Seed:           scn.Seed,
		Arrival:        fmt.Sprintf("%s over %v", scn.Arrival.Kind, scn.Arrival.Over.D()),
		Sessions:       len(outs),
		PeakConcurrent: peakActive,
		WallS:          wall.Seconds(),
		Server:         srv,
	}
	var startups, rebuffers, queueWaits []float64
	var levelSum float64
	var levelSessions int
	byProfile := make(map[string][]SessionOutcome)
	for _, o := range outs {
		byProfile[o.Profile] = append(byProfile[o.Profile], o)
		switch {
		case o.Panicked:
			r.Panicked++
		case o.TimedOut:
			r.TimedOut++
		case o.Err != "":
			r.Failed++
		default:
			r.Completed++
		}
		queueWaits = append(queueWaits, o.QueueWait.D().Seconds())
		res := o.Result
		if res == nil {
			continue
		}
		if res.Chunks > 0 {
			startups = append(startups, res.StartupDelay.Seconds())
			rebuffers = append(rebuffers, o.RebufferRatio)
			levelSum += res.AvgLevel
			levelSessions++
		}
		r.Chunks += res.Chunks
		r.DeadlineMisses += res.DeadlineMisses
		r.Stalls += res.Stalls
		r.LostChunks += res.LostChunks
		r.BytesTotal += o.TotalBytes
		r.CellularBytes += o.CellularBytes
		r.Aborts += res.Aborts
		r.Downgrades += res.Downgrades
		r.AbortWastedBytes += res.AbortWastedBytes
		r.WastedCellularBytes += o.WastedCellularBytes
		r.WastedBytes += res.WastedBytes
		r.FaultsSurvived += res.FaultsSurvived
		r.Retries += res.Retries
		r.Redials += res.Redials
		r.Requeued += res.Requeued
		r.Failovers += res.Failovers
		r.HedgesIssued += res.HedgesIssued
		r.HedgesWon += res.HedgesWon
		r.HedgesCancelled += res.HedgesCancelled
		if !res.AllVerified {
			r.LedgerViolations++
		}
	}
	r.StartupDelayS = quantilesOf(startups)
	r.RebufferRatio = quantilesOf(rebuffers)
	r.QueueWaitS = quantilesOf(queueWaits)
	if levelSessions > 0 {
		r.AvgLevel = levelSum / float64(levelSessions)
	}
	if r.Chunks > 0 {
		r.DeadlineMissRate = float64(r.DeadlineMisses) / float64(r.Chunks)
	}
	if r.BytesTotal > 0 {
		r.CellularByteShare = float64(r.CellularBytes) / float64(r.BytesTotal)
	}
	for _, p := range scn.Profiles {
		slice := byProfile[p.Name]
		if len(slice) == 0 {
			continue
		}
		r.PerProfile = append(r.PerProfile, profileReport(p.Name, slice))
	}
	return r
}

func profileReport(name string, outs []SessionOutcome) ProfileReport {
	pr := ProfileReport{Name: name, Sessions: len(outs)}
	var startups, rebuffers []float64
	var chunks, misses int
	var bytes, cellular int64
	for _, o := range outs {
		if !o.Panicked && !o.TimedOut && o.Err == "" {
			pr.Completed++
		}
		if res := o.Result; res != nil && res.Chunks > 0 {
			startups = append(startups, res.StartupDelay.Seconds())
			rebuffers = append(rebuffers, o.RebufferRatio)
			chunks += res.Chunks
			misses += res.DeadlineMisses
			bytes += o.TotalBytes
			cellular += o.CellularBytes
		}
	}
	pr.StartupDelayS = quantilesOf(startups)
	pr.RebufferRatio = quantilesOf(rebuffers)
	if chunks > 0 {
		pr.DeadlineMissRate = float64(misses) / float64(chunks)
	}
	if bytes > 0 {
		pr.CellularByteShare = float64(cellular) / float64(bytes)
	}
	return pr
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("swarm: encode report: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("swarm: write report: %w", err)
	}
	return nil
}

// ReadReport loads a BENCH_swarm.json written by WriteJSON.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("swarm: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("swarm: decode report %s: %w", path, err)
	}
	return &r, nil
}

// Summary renders the report for humans.
func (r *Report) Summary() string {
	var b strings.Builder
	name := r.Scenario
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(&b, "swarm %s — %d sessions (%s), seed %d, wall %.1fs\n",
		name, r.Sessions, r.Arrival, r.Seed, r.WallS)
	fmt.Fprintf(&b, "  outcomes     completed %d, failed %d, timed out %d, panicked %d\n",
		r.Completed, r.Failed, r.TimedOut, r.Panicked)
	fmt.Fprintf(&b, "  concurrency  peak %d sessions, peak server conns %d, queue wait p95 %.3fs\n",
		r.PeakConcurrent, r.Server.PeakConns, r.QueueWaitS.P95)
	fmt.Fprintf(&b, "  startup      p50 %.3fs  p95 %.3fs  p99 %.3fs  max %.3fs\n",
		r.StartupDelayS.P50, r.StartupDelayS.P95, r.StartupDelayS.P99, r.StartupDelayS.Max)
	fmt.Fprintf(&b, "  rebuffering  ratio p50 %.4f  p95 %.4f  p99 %.4f; %d stalls, %d lost chunks\n",
		r.RebufferRatio.P50, r.RebufferRatio.P95, r.RebufferRatio.P99, r.Stalls, r.LostChunks)
	fmt.Fprintf(&b, "  deadlines    %d/%d chunks missed (%.2f%%), avg level %.2f\n",
		r.DeadlineMisses, r.Chunks, 100*r.DeadlineMissRate, r.AvgLevel)
	fmt.Fprintf(&b, "  bytes        %.1f MB total, %.1f%% cellular\n",
		float64(r.BytesTotal)/1e6, 100*r.CellularByteShare)
	if r.Aborts > 0 || r.WastedCellularBytes > 0 {
		fmt.Fprintf(&b, "  degradation  %d aborts, %d downgrades, %.2f MB abandoned, %.2f MB wasted cellular\n",
			r.Aborts, r.Downgrades, float64(r.AbortWastedBytes)/1e6, float64(r.WastedCellularBytes)/1e6)
	}
	fmt.Fprintf(&b, "  resilience   %d faults survived (retries %d, requeued %d), redials %d, failovers %d\n",
		r.FaultsSurvived, r.Retries, r.Requeued, r.Redials, r.Failovers)
	if r.HedgesIssued > 0 {
		fmt.Fprintf(&b, "  hedging      issued %d, won %d, cancelled %d\n",
			r.HedgesIssued, r.HedgesWon, r.HedgesCancelled)
	}
	fmt.Fprintf(&b, "  server tier  %d origins, served %.1f MB, rejected %d, capped %d, accept retries %d, faults injected %d\n",
		r.Server.Origins, float64(r.Server.ServedBytes)/1e6, r.Server.RejectedConns,
		r.Server.CappedConns, r.Server.AcceptRetries, r.Server.InjectedFaults)
	if c := r.Cache; c != nil {
		fmt.Fprintf(&b, "  cache        %d edges (%d MiB), hit rate %.1f%% (%d hits, %d misses, %d collapsed), %d evictions\n",
			c.Edges, c.CapacityMB, 100*c.HitRate, c.Hits, c.Misses, c.Collapsed, c.Evictions)
		fmt.Fprintf(&b, "               offload %.2f — served %.1f MB, pulled %.1f MB from origins, %d fill errors\n",
			c.OffloadRatio, float64(c.ServedBytes)/1e6, float64(c.OriginBytes)/1e6, c.FillErrors)
		for _, rk := range c.ByRank {
			fmt.Fprintf(&b, "    rank %-2d %-14s hit %5.1f%% (%d/%d)  expected share %.1f%%\n",
				rk.Rank, rk.Video, 100*rk.HitRate, rk.Hits, rk.Hits+rk.Misses, 100*rk.ExpectedShare)
		}
	}
	if len(r.Chaos) > 0 {
		recovered := 0
		for _, c := range r.Chaos {
			if c.Recovered {
				recovered++
			}
		}
		if r.MTTR != nil {
			fmt.Fprintf(&b, "  chaos        %d events, %d/%d recovered, mttr p50 %.2fs p95 %.2fs\n",
				len(r.Chaos), recovered, len(r.Chaos), r.MTTR.P50, r.MTTR.P95)
		} else {
			fmt.Fprintf(&b, "  chaos        %d events, %d/%d recovered\n", len(r.Chaos), recovered, len(r.Chaos))
		}
		for _, c := range r.Chaos {
			target := ""
			switch c.Kind {
			case ChaosBlackout, ChaosHeal:
				target = fmt.Sprintf(" %s", pathLabel(c.Path))
			case ChaosOriginCrash, ChaosOriginRestart:
				target = fmt.Sprintf(" %s#%d", pathLabel(c.Path), c.Origin)
			}
			rec := "not recovered"
			if c.Recovered {
				rec = fmt.Sprintf("recovered in %.2fs", c.MTTRS)
			}
			fmt.Fprintf(&b, "    %6.2fs %-16s%s (%d origins) — %s\n",
				c.AppliedS, c.Kind, target, c.Origins, rec)
		}
	}
	fmt.Fprintf(&b, "  ledger       %d violations\n", r.LedgerViolations)
	if r.Audit != nil {
		verdict := "PASS"
		if !r.Audit.OK() {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  audit        %s — %d invariant violations (%d events watched, goroutines %d vs watermark %d)\n",
			verdict, r.Audit.Count(), r.Audit.Events, r.Audit.Settled, r.Audit.Watermark)
	}
	if r.Trace != nil {
		r.Trace.summary(&b)
	}
	if len(r.PerProfile) > 0 {
		fmt.Fprintf(&b, "  per profile:\n")
		for _, p := range r.PerProfile {
			fmt.Fprintf(&b, "    %-16s n=%-4d done=%-4d startup p95 %.3fs  rebuf p95 %.4f  miss %.2f%%  cellular %.1f%%\n",
				p.Name, p.Sessions, p.Completed, p.StartupDelayS.P95,
				p.RebufferRatio.P95, 100*p.DeadlineMissRate, 100*p.CellularByteShare)
		}
	}
	return b.String()
}
