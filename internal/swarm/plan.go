package swarm

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"mpdash/internal/stats"
)

// Deterministic population planning: every draw descends from the
// scenario Seed through fixed per-concern sub-seeds, so the same scenario
// always produces the same SessionSpec list regardless of runtime timing.

// Sub-seed salts: fixed constants so adding a concern never perturbs the
// draws of another.
const (
	saltArrival = 0x5eed0001
	saltZipf    = 0x5eed0002
	saltProfile = 0x5eed0003
	saltSession = 0x5eed0004
)

// SessionSpec is one planned session: when it starts, what it watches,
// and how it behaves. The ID doubles as the per-session RNG lineage.
type SessionSpec struct {
	ID      int           `json:"id"`
	StartAt time.Duration `json:"start_at"`
	// Video is the catalog index drawn from the Zipf popularity law.
	Video int `json:"video"`
	// Profile is the profile index drawn from the weighted mix.
	Profile int `json:"profile"`
	// Seed seeds the session's own jitter/backoff RNG.
	Seed int64 `json:"seed"`
}

// Plan expands the scenario into its deterministic session manifest.
// The scenario is defaulted and validated first.
func Plan(scn Scenario) ([]SessionSpec, error) {
	s := scn.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.Sessions
	starts := s.Arrival.offsets(n, rand.New(rand.NewSource(s.Seed^saltArrival)))
	zrng := rand.New(rand.NewSource(s.Seed ^ saltZipf))
	z := stats.NewZipf(s.ZipfS, len(s.Catalog))
	prng := rand.New(rand.NewSource(s.Seed ^ saltProfile))
	specs := make([]SessionSpec, n)
	for i := range specs {
		specs[i] = SessionSpec{
			ID:      i,
			StartAt: starts[i],
			Video:   z.Draw(zrng),
			Profile: drawProfile(s.Profiles, prng),
			Seed:    s.Seed ^ saltSession ^ int64(i)*0x9e3779b9,
		}
	}
	return specs, nil
}

// offsets returns n arrival offsets in ascending order, drawn from rng
// according to the process kind. Offsets are relative to run start; the
// Poisson process may legitimately overrun the window (it is open-loop).
func (a Arrival) offsets(n int, rng *rand.Rand) []time.Duration {
	over := a.Over.D()
	out := make([]time.Duration, n)
	switch a.Kind {
	case ArrivalUniform:
		for i := range out {
			out[i] = over * time.Duration(i) / time.Duration(n)
		}
	case ArrivalPoisson:
		// Exponential inter-arrivals at rate n/over.
		mean := float64(over) / float64(n)
		t := 0.0
		for i := range out {
			t += rng.ExpFloat64() * mean
			out[i] = time.Duration(t)
		}
	case ArrivalRamp:
		// Density ∝ t over [0, over): CDF (t/over)², inverted as over·√u.
		for i := range out {
			out[i] = time.Duration(float64(over) * math.Sqrt(rng.Float64()))
		}
	case ArrivalSpike:
		// 20% uniform background, 80% in a burst over/10 wide mid-window.
		burst := n * 8 / 10
		lo := float64(over) * 0.45
		w := float64(over) * 0.1
		for i := range out {
			if i < burst {
				out[i] = time.Duration(lo + w*rng.Float64())
			} else {
				out[i] = time.Duration(float64(over) * rng.Float64())
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// drawProfile samples a profile index by weight (zero weights count as 1
// only when every weight is zero — withDefaults guarantees a non-empty
// list, Validate a positive total).
func drawProfile(ps []Profile, rng *rand.Rand) int {
	total := 0.0
	for _, p := range ps {
		total += p.Weight
	}
	if total <= 0 {
		return rng.Intn(len(ps))
	}
	u := rng.Float64() * total
	for i, p := range ps {
		u -= p.Weight
		if u < 0 {
			return i
		}
	}
	return len(ps) - 1
}
