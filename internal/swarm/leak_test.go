package swarm

import (
	"context"
	"testing"

	"mpdash/internal/audit"
	"mpdash/internal/obs"
)

// TestSwarmDrainLeavesNoGoroutines wires the runtime invariant auditor
// the way cmd/mpdash-swarm does — Watch on the telemetry stream, Start
// before Run, CheckTotals + Finish after the tier has drained — and
// requires a clean verdict: zero invariant violations and a goroutine
// count settled back to the pre-run watermark.
func TestSwarmDrainLeavesNoGoroutines(t *testing.T) {
	tel := obs.New()
	auditor := audit.New(audit.Config{Sink: tel})
	tel.OnEmit = auditor.Watch

	sw, err := New(tinyScenario(8))
	if err != nil {
		t.Fatal(err)
	}
	sw.Audit = auditor
	sw.Instrument(tel)

	auditor.Start()
	rep, err := sw.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Sessions {
		t.Fatalf("completed %d of %d (failed=%d timedout=%d panicked=%d)",
			rep.Completed, rep.Sessions, rep.Failed, rep.TimedOut, rep.Panicked)
	}

	auditor.CheckTotals(rep.LedgerViolations, rep.WastedBytes, rep.BytesTotal)
	res := auditor.Finish()
	if !res.OK() {
		t.Fatalf("audit failed:\n%s", res.Summary())
	}
	if res.Settled > res.Watermark+8 {
		t.Errorf("goroutines settled at %d, watermark %d", res.Settled, res.Watermark)
	}
	if res.Events == 0 {
		t.Error("auditor watched no journal events")
	}
}
