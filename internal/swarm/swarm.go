package swarm

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mpdash/internal/abr"
	"mpdash/internal/audit"
	"mpdash/internal/dash"
	"mpdash/internal/netmp"
	"mpdash/internal/obs"
)

// sessionKillGrace is how long after a timeout's graceful Stop the
// session gets before its fetcher is torn down under it.
const sessionKillGrace = 5 * time.Second

// testHookSession, when set, runs at the top of every session inside the
// panic-isolation wrapper — the lever tests use to wreck one session and
// prove the run survives.
var testHookSession func(id int)

// connSamplePeriod is the cadence of the tier connection sampler that
// tracks PeakConns.
const connSamplePeriod = 50 * time.Millisecond

// SessionOutcome is one session's record in the population result.
type SessionOutcome struct {
	ID      int    `json:"id"`
	Video   string `json:"video"`
	Profile string `json:"profile"`
	// StartAt is the planned arrival offset; QueueWait is how long the
	// session waited for a worker slot beyond it.
	StartAt   Duration `json:"start_at"`
	QueueWait Duration `json:"queue_wait"`
	Wall      Duration `json:"wall"`
	// Result is the session's StreamResult (nil when setup failed).
	Result *netmp.StreamResult `json:"result,omitempty"`
	// CellularBytes is the session's bytes over the LTE path, whichever
	// role (primary or secondary) that path played.
	CellularBytes int64 `json:"cellular_bytes"`
	// WastedCellularBytes is the LTE-path share of payload that bought
	// no on-time video: partial bytes of aborted/failed chunks plus the
	// full payload of deadline-missed chunks.
	WastedCellularBytes int64 `json:"wasted_cellular_bytes,omitempty"`
	TotalBytes          int64 `json:"total_bytes"`
	// RebufferRatio is stall time over (stall + played) time.
	RebufferRatio float64 `json:"rebuffer_ratio"`
	Err           string  `json:"err,omitempty"`
	TimedOut      bool    `json:"timed_out,omitempty"`
	Panicked      bool    `json:"panicked,omitempty"`
}

// Swarm orchestrates one population run.
type Swarm struct {
	Scenario Scenario
	// Logf receives progress lines (nil = silent).
	Logf func(format string, a ...any)
	// KeepSessions retains per-session outcomes in the report.
	KeepSessions bool
	// Audit, when set, wires the runtime invariant auditor into every
	// session (per-session playback-monotonicity hooks). The caller owns
	// the auditor lifecycle: Start before Run, CheckTotals/Finish after
	// Run returns (the tier is fully drained by then, so the goroutine
	// check sees a quiet process).
	Audit *audit.Auditor

	// Tracer, when set, records one span trace per chunk across every
	// session (session = spec.ID, so trace IDs stay deterministic under
	// the seeded plan). The caller owns export: write the kept traces
	// after Run returns, or fold them into the report with
	// BuildTraceReport.
	Tracer *obs.Tracer

	tel  *obs.Telemetry
	sobs *swarmObs
	// wheel is the run-scoped shared timer wheel: every session's kill
	// timer plus each fetcher's hedge-arm and doom-tick timers ride it
	// instead of allocating per-session runtime timers (set by Run).
	wheel *netmp.TimerWheel
}

// New returns a Swarm for the scenario (defaulted and validated).
func New(scn Scenario) (*Swarm, error) {
	s := scn.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Swarm{Scenario: s}, nil
}

// Instrument wires the swarm's population telemetry (swarm_* metrics and
// journal events) to t. Call before Run.
func (sw *Swarm) Instrument(t *obs.Telemetry) {
	if t == nil {
		return
	}
	sw.tel = t
	sw.sobs = newSwarmObs(t)
}

func (sw *Swarm) logf(format string, a ...any) {
	if sw.Logf != nil {
		sw.Logf(format, a...)
	}
}

// Run executes the population: it plans the arrivals, starts the server
// tier, launches every session open-loop through the bounded worker
// pool, and aggregates the outcomes. Cancelling ctx stops the launcher
// and gracefully stops active sessions; the partial report is returned.
func (sw *Swarm) Run(ctx context.Context) (*Report, error) {
	scn := &sw.Scenario
	plan, err := Plan(*scn)
	if err != nil {
		return nil, err
	}
	videos := make([]*dash.Video, len(scn.Catalog))
	for i, c := range scn.Catalog {
		videos[i] = c.video(i)
	}
	tr, err := startTier(scn, videos, plan)
	if err != nil {
		return nil, err
	}
	defer tr.close()
	if sw.tel != nil {
		for _, srv := range tr.servers {
			srv.Instrument(sw.tel)
		}
		for _, e := range tr.edges {
			e.Instrument(sw.tel)
		}
		if tr.store != nil {
			tr.store.Instrument(sw.tel)
		}
	}
	edgeTag := ""
	if len(tr.edges) > 0 {
		edgeTag = fmt.Sprintf(" behind %d edges", len(tr.edges))
	}
	sw.logf("swarm %q: %d sessions, %s arrival over %v, %d origins%s, seed %d\n",
		scn.Name, len(plan), scn.Arrival.Kind, scn.Arrival.Over.D(), len(tr.servers), edgeTag, scn.Seed)
	sw.sobs.emitRunStart(scn, len(plan), len(tr.servers))

	// Shared congestion board: sessions of the same origin group publish
	// their service rates under one key, so neighbors seed their
	// predictors from the population and a capacity drop seen by one
	// session pre-arms the rest.
	var board *netmp.CongestionBoard
	if scn.Board {
		board = netmp.NewCongestionBoard()
		if sw.tel != nil {
			board.Instrument(sw.tel)
		}
	}

	// Shared hashed timer wheel: one driver goroutine carries the whole
	// population's kill timers, hedge-arm triggers and doom-monitor
	// ticks, so sessions stop churning runtime timers per chunk.
	sw.wheel = netmp.NewTimerWheel(nil, 0)
	defer sw.wheel.Close()

	// Peak-connection sampler: the tier-wide admission gauge.
	var peakConns atomic.Int64
	sampleCtx, stopSampler := context.WithCancel(context.Background())
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(connSamplePeriod)
		defer tick.Stop()
		for {
			select {
			case <-sampleCtx.Done():
				return
			case <-tick.C:
				if n := int64(tr.currentConns()); n > peakConns.Load() {
					peakConns.Store(n)
				}
			}
		}
	}()

	// Bounded worker pool: a semaphore of MaxActive slots. Arrivals stay
	// open-loop — each session's launcher goroutine fires at its planned
	// offset and then waits (measured) for a slot.
	sem := make(chan struct{}, scn.MaxActive)
	outcomes := make([]SessionOutcome, len(plan))
	var active, peakActive, launched int64
	var actMu sync.Mutex
	noteActive := func(d int64) {
		actMu.Lock()
		active += d
		if active > peakActive {
			peakActive = active
		}
		a := active
		actMu.Unlock()
		sw.sobs.setActive(a)
	}

	start := time.Now()

	// Chaos executor: one goroutine walks the merged timeline in order,
	// firing each event against the shared tier at its offset from run
	// start. Every executed event is logged (with how many origins it
	// touched) so MTTR can be dated against the chunk stream afterwards.
	timeline := scn.chaosTimeline()
	var tracker *missTracker
	var chaosLog []appliedChaos
	var chaosMu sync.Mutex
	chaosCtx, stopChaos := context.WithCancel(context.Background())
	defer stopChaos()
	var chaosWG sync.WaitGroup
	if len(timeline) > 0 {
		tracker = newMissTracker(start)
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			chaosTimer := time.NewTimer(0)
			defer chaosTimer.Stop()
			if !chaosTimer.Stop() {
				<-chaosTimer.C
			}
			for _, ev := range timeline {
				if wait := ev.At.D() - time.Since(start); wait > 0 {
					chaosTimer.Reset(wait)
					select {
					case <-chaosCtx.Done():
						return
					case <-chaosTimer.C:
					}
				} else if chaosCtx.Err() != nil {
					return
				}
				// Stamp the instant the mutation begins (a crash's quiesce
				// wait is part of the outage, not before it).
				appliedAt := time.Since(start)
				touched := sw.applyChaos(tr, scn, ev, appliedAt)
				chaosMu.Lock()
				chaosLog = append(chaosLog, appliedChaos{ev: ev, applied: appliedAt, touched: touched})
				chaosMu.Unlock()
			}
		}()
	}

	var wg sync.WaitGroup
	timer := time.NewTimer(0)
	defer timer.Stop()
launch:
	for i, spec := range plan {
		wait := spec.StartAt - time.Since(start)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				break launch
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break launch
		}
		wg.Add(1)
		launched++
		go func(i int, spec SessionSpec) {
			defer wg.Done()
			arrived := time.Now()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				outcomes[i] = SessionOutcome{
					ID: spec.ID, StartAt: Duration(spec.StartAt),
					Video:   scn.Catalog[spec.Video].Name,
					Profile: scn.Profiles[spec.Profile].Name,
					Err:     "cancelled before a worker slot freed",
				}
				return
			}
			defer func() { <-sem }()
			queueWait := time.Since(arrived)
			noteActive(1)
			defer noteActive(-1)
			out := sw.runSession(ctx, spec, videos[spec.Video], tr.groups[scn.groupFor(spec)], board, boardKey(scn.groupFor(spec)), tracker)
			out.QueueWait = Duration(queueWait)
			outcomes[i] = out
			sw.sobs.observeSession(out)
		}(i, spec)
	}
	wg.Wait()
	stopChaos()
	chaosWG.Wait()
	stopSampler()
	samplerWG.Wait()

	rep := aggregate(scn, outcomes[:launched], tr.report(int(peakConns.Load())), time.Since(start), int(peakActive))
	rep.Cache = tr.cacheReport(scn)
	if sw.KeepSessions {
		rep.SessionOutcomes = outcomes[:launched]
	}
	if len(chaosLog) > 0 {
		rep.Chaos = computeMTTR(tracker.snapshot(), chaosLog, scn.Recovery.withDefaults())
		var mttrs []float64
		for _, c := range rep.Chaos {
			if c.Recovered {
				mttrs = append(mttrs, c.MTTRS)
			}
		}
		if len(mttrs) > 0 {
			q := quantilesOf(mttrs)
			rep.MTTR = &q
		}
	}
	sw.sobs.emitRunDone(rep)
	if ctx.Err() != nil && launched < int64(len(plan)) {
		sw.logf("swarm: cancelled after launching %d/%d sessions\n", launched, len(plan))
	}
	return rep, nil
}

// chaosFaultSeed salts the draw streams of fault plans installed by
// chaos fault surges on origins that started without one.
const chaosFaultSeed = 0x5eed0006

// applyChaos executes one timeline event against the tier and returns
// how many origins it touched.
func (sw *Swarm) applyChaos(tr *tier, scn *Scenario, ev ChaosEvent, at time.Duration) int {
	var n int
	var err error
	switch ev.Kind {
	case ChaosCapacityDrop:
		n = tr.applyDrop(ev.WiFiFactor, ev.LTEFactor)
	case ChaosCapacityRestore:
		n = tr.applyRestore()
	case ChaosFaultSurge:
		n = tr.applyFaultProbs(ev.Faults, scn.Seed^chaosFaultSeed)
	case ChaosFaultClear:
		n = tr.applyFaultProbs(scn.Servers.Faults, scn.Seed^chaosFaultSeed)
	case ChaosBlackout:
		n = tr.crash(ev.Path, -1)
	case ChaosHeal:
		n, err = tr.restart(ev.Path, -1)
	case ChaosOriginCrash:
		n = tr.crash(ev.Path, ev.Origin)
	case ChaosOriginRestart:
		n, err = tr.restart(ev.Path, ev.Origin)
	}
	if err != nil {
		sw.logf("swarm: chaos %s at %v: %v\n", ev.Kind, at, err)
	}
	sw.logf("swarm: chaos %s at %v: %d origins touched\n", ev.Kind, at.Round(time.Millisecond), n)
	sw.sobs.emitChaos(ev, at, n)
	return n
}

// runSession executes one client session against the shared tier. It
// never panics out: a panic inside the session (or the libraries under
// it) is absorbed into the outcome.
// boardKey names one origin group's bottleneck on the congestion board:
// sessions streaming the same video through the same link class share
// the shaped servers, so they share a key.
func boardKey(k groupKey) string {
	return fmt.Sprintf("group:v%d:w%g:l%g", k.video, k.wifiMbps, k.lteM)
}

func (sw *Swarm) runSession(ctx context.Context, spec SessionSpec, video *dash.Video, grp originGroup, board *netmp.CongestionBoard, key string, tracker *missTracker) (out SessionOutcome) {
	scn := &sw.Scenario
	prof := scn.Profiles[spec.Profile]
	out = SessionOutcome{
		ID:      spec.ID,
		StartAt: Duration(spec.StartAt),
		Video:   video.Name,
		Profile: prof.Name,
	}
	defer func() {
		if r := recover(); r != nil {
			out.Panicked = true
			out.Err = fmt.Sprintf("panic: %v", r)
			// The stack goes to the journal, not the outcome: a chaos
			// run's crash must be debuggable without bloating the report.
			sw.sobs.emitSessionPanic(spec.ID, fmt.Sprint(r), string(debug.Stack()))
			// The chunk in flight when the session died keeps its trace:
			// tail sampling always retains the panic verdict.
			sw.Tracer.FinishDangling(spec.ID, obs.TracePanic)
		}
	}()
	sw.sobs.emitSessionStart(spec, video.Name, prof.Name)
	if testHookSession != nil {
		testHookSession(spec.ID)
	}

	primary, secondary := grp.wifi, grp.lte
	lteIsSecondary := true
	if prof.Preference == "lte" {
		primary, secondary = grp.lte, grp.wifi
		lteIsSecondary = false
	}
	f, err := netmp.NewFetcherOrigins(video, primary, secondary, netmp.BreakerPolicy{})
	if err != nil {
		out.Err = err.Error()
		return out
	}
	defer f.Close()
	f.SetWheel(sw.wheel)
	f.Retry = netmp.RetryPolicy{Seed: spec.Seed}
	f.Hedge = netmp.HedgePolicy{Disabled: prof.NoHedge}
	if prof.Alpha > 0 {
		f.Alpha = prof.Alpha
	}
	if prof.SegmentKB > 0 {
		f.SegmentSize = int64(prof.SegmentKB) * 1024
	}
	if a := scn.Abort; a != nil {
		f.Abort = netmp.AbortPolicy{Enabled: true, Factor: a.Factor, MinProgress: a.MinProgress}
	}
	if board != nil {
		f.JoinBoard(board, key)
	}
	adapter, err := newABR(prof.ABR, video)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	st := &netmp.Streamer{Fetcher: f, ABR: adapter, RateBased: !prof.DurationDeadlines,
		Tracer: sw.Tracer, TraceSession: spec.ID}
	if prof.BufferChunks > 0 {
		st.BufferCap = time.Duration(prof.BufferChunks) * video.ChunkDuration
	}
	if tracker != nil || sw.Audit != nil {
		var playback func(int, bool)
		if sw.Audit != nil {
			playback = sw.Audit.Playback(spec.ID)
		}
		st.OnChunk = func(i int, missed bool) {
			tracker.note(missed) // nil-safe
			if playback != nil {
				playback(i, missed)
			}
		}
	}

	// Supervision: a cancelled run stops the session gracefully; a
	// session that outlives its timeout is stopped, then — after a grace
	// period for the in-flight chunk — has its sockets pulled.
	done := make(chan struct{})
	defer close(done)
	var timedOut atomic.Bool
	kill := sw.wheel.AfterFunc(scn.SessionTimeout.D(), func() {
		timedOut.Store(true)
		st.Stop()
		t := time.NewTimer(sessionKillGrace)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
			f.Close()
		}
	})
	defer kill.Stop()
	go func() {
		select {
		case <-ctx.Done():
			st.Stop()
		case <-done:
		}
	}()

	t0 := time.Now()
	res, serr := st.Stream(prof.Chunks)
	out.Wall = Duration(time.Since(t0))
	out.Result = res
	out.TimedOut = timedOut.Load()
	if serr != nil {
		out.Err = serr.Error()
	}
	if res != nil {
		out.TotalBytes = res.PrimaryBytes + res.SecondaryBytes
		if lteIsSecondary {
			out.CellularBytes = res.SecondaryBytes
			out.WastedCellularBytes = res.WastedSecondaryBytes
		} else {
			out.CellularBytes = res.PrimaryBytes
			out.WastedCellularBytes = res.WastedPrimaryBytes
		}
		played := time.Duration(res.Chunks) * video.ChunkDuration
		if denom := res.StallTime + played; denom > 0 {
			out.RebufferRatio = res.StallTime.Seconds() / denom.Seconds()
		}
	}
	return out
}

// newABR builds a fresh rate-adaptation instance per session.
func newABR(name string, video *dash.Video) (dash.RateAdapter, error) {
	switch name {
	case "", "gpac":
		return abr.NewGPAC(), nil
	case "bba":
		return abr.NewBBA(), nil
	case "bbac":
		return abr.NewBBAC(), nil
	case "festive":
		return abr.NewFESTIVE(), nil
	case "mpc":
		return abr.NewMPC(), nil
	case "fastmpc":
		return abr.NewFastMPC(video), nil
	case "svaa":
		return abr.NewSVAA(), nil
	}
	return nil, fmt.Errorf("swarm: unknown abr %q", name)
}
