package swarm

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mpdash/internal/netmp"
)

func TestQuantilesOf(t *testing.T) {
	if q := quantilesOf(nil); q.P50 != 0 || q.Max != 0 {
		t.Errorf("empty sample: %+v", q)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	q := quantilesOf(xs)
	if q.P50 != 50 || q.P95 != 95 || q.P99 != 99 || q.Max != 100 {
		t.Errorf("quantiles of 1..100: %+v", q)
	}
	if q.Mean != 50.5 {
		t.Errorf("mean %g, want 50.5", q.Mean)
	}
	one := quantilesOf([]float64{7})
	if one.P50 != 7 || one.P99 != 7 || one.Max != 7 {
		t.Errorf("single sample: %+v", one)
	}
}

func TestAggregateAndReportRoundTrip(t *testing.T) {
	scn := tinyScenario(4).withDefaults()
	outs := []SessionOutcome{
		{
			ID: 0, Video: "tiny-a", Profile: "wifi",
			Result: &netmp.StreamResult{
				Chunks: 4, StartupDelay: 100 * time.Millisecond,
				DeadlineMisses: 1, AllVerified: true,
				PrimaryBytes: 800, SecondaryBytes: 200,
				Stalls: 1, StallTime: 50 * time.Millisecond,
			},
			TotalBytes: 1000, CellularBytes: 200, RebufferRatio: 0.1,
		},
		{
			ID: 1, Video: "tiny-b", Profile: "lte",
			Result: &netmp.StreamResult{
				Chunks: 3, StartupDelay: 200 * time.Millisecond, AllVerified: false,
				PrimaryBytes: 600,
			},
			TotalBytes: 600, CellularBytes: 600,
		},
		{ID: 2, Video: "tiny-a", Profile: "wifi", Err: "dial refused"},
		{ID: 3, Video: "tiny-c", Profile: "wifi", Panicked: true, Err: "panic: x"},
	}
	rep := aggregate(&scn, outs, ServerReport{Origins: 6, ServedBytes: 1600}, 2*time.Second, 3)
	if rep.Sessions != 4 || rep.Completed != 2 || rep.Failed != 1 || rep.Panicked != 1 {
		t.Errorf("outcome counts: %+v", rep)
	}
	if rep.Chunks != 7 || rep.DeadlineMisses != 1 {
		t.Errorf("chunks=%d misses=%d", rep.Chunks, rep.DeadlineMisses)
	}
	if rep.LedgerViolations != 1 {
		t.Errorf("ledger violations %d, want 1", rep.LedgerViolations)
	}
	if want := 800.0 / 1600.0; rep.CellularByteShare != want {
		t.Errorf("cellular share %g, want %g", rep.CellularByteShare, want)
	}
	if rep.DeadlineMissRate != 1.0/7 {
		t.Errorf("miss rate %g", rep.DeadlineMissRate)
	}
	if rep.StartupDelayS.Max != 0.2 {
		t.Errorf("startup max %g", rep.StartupDelayS.Max)
	}

	path := filepath.Join(t.TempDir(), "BENCH_swarm.json")
	if err := rep.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sessions != rep.Sessions || got.CellularByteShare != rep.CellularByteShare ||
		got.Server.ServedBytes != 1600 {
		t.Errorf("round trip mismatch: %+v", got)
	}

	sum := rep.Summary()
	for _, want := range []string{"startup", "rebuffering", "cellular", "ledger", "per profile"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
