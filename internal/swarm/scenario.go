// Package swarm is the many-session load-generation and scale-evaluation
// subsystem: it launches and supervises populations of concurrent MP-DASH
// client sessions — real sockets against a shared netmp.ChunkServer tier —
// from a declarative Scenario, and aggregates the per-session results into
// population QoE (startup delay, rebuffer ratio, deadline-miss rate,
// cellular-byte share, resilience counters).
//
// A Scenario declares an open-loop arrival process (uniform, Poisson,
// ramp, spike), a Zipf-popular multi-rendition catalog, and a weighted set
// of session profiles (ABR choice, path preference, link class, video
// length). Every random draw — arrival times, content choice, profile
// choice, per-session retry jitter — descends from the scenario's single
// Seed, so any population run is exactly reproducible.
//
// Sessions run inside a bounded worker pool with per-session timeouts and
// panic isolation: one sick session is counted and dropped, never the run.
package swarm

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"

	"mpdash/internal/dash"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("750ms") and unmarshals from either a string or raw nanoseconds.
type Duration time.Duration

// D returns the wrapped time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "1.5s"-style strings or bare nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("swarm: duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("swarm: duration %s: want a string or nanoseconds", b)
	}
	*d = Duration(n)
	return nil
}

// ArrivalKind names an arrival process.
type ArrivalKind string

const (
	// ArrivalUniform spaces sessions evenly across the window.
	ArrivalUniform ArrivalKind = "uniform"
	// ArrivalPoisson draws exponential inter-arrivals at rate N/window —
	// the open-loop memoryless process of independent viewers.
	ArrivalPoisson ArrivalKind = "poisson"
	// ArrivalRamp increases the arrival rate linearly across the window
	// (density ∝ t), emulating an audience building toward an event.
	ArrivalRamp ArrivalKind = "ramp"
	// ArrivalSpike puts 80% of the sessions in a burst one tenth of the
	// window wide at mid-window, over a 20% uniform background — the
	// flash-crowd shape.
	ArrivalSpike ArrivalKind = "spike"
)

// Arrival declares the session arrival process.
type Arrival struct {
	Kind ArrivalKind `json:"kind"`
	// Over is the window across which sessions arrive (default 10s).
	Over Duration `json:"over"`
}

// CatalogItem is one video of the scenario catalog. Zipf popularity ranks
// items in listed order: the first item is the most popular.
type CatalogItem struct {
	Name string `json:"name"`
	// ChunkMs is the chunk playout duration in milliseconds.
	ChunkMs int `json:"chunk_ms"`
	// Chunks is the video length in chunks.
	Chunks int `json:"chunks"`
	// LevelsMbps is the encoding ladder, ascending.
	LevelsMbps []float64 `json:"levels_mbps"`
}

// video materializes the catalog item as a dash.Video. SizeSeed is
// derived from the rank so renditions differ between items.
func (c CatalogItem) video(rank int) *dash.Video {
	levels := make([]dash.Level, len(c.LevelsMbps))
	for i, r := range c.LevelsMbps {
		levels[i] = dash.Level{ID: i + 1, AvgBitrateMbps: r}
	}
	return &dash.Video{
		Name:          c.Name,
		ChunkDuration: time.Duration(c.ChunkMs) * time.Millisecond,
		NumChunks:     c.Chunks,
		SizeSeed:      uint64(rank)*0x9e3779b97f4a7c15 + 11,
		Levels:        levels,
	}
}

// Profile is one weighted session archetype. Zero fields inherit the
// defaults documented per field.
type Profile struct {
	Name string `json:"name"`
	// Weight is the profile's sampling weight (default 1).
	Weight float64 `json:"weight"`
	// ABR selects the rate-adaptation algorithm: gpac (default), bba,
	// bbac, festive, mpc, fastmpc, svaa.
	ABR string `json:"abr,omitempty"`
	// Preference is the preferred (primary) path: "wifi" (default) or
	// "lte". Cellular-byte accounting follows the LTE path either way.
	Preference string `json:"preference,omitempty"`
	// DurationDeadlines selects duration-based deadlines (default: rate).
	DurationDeadlines bool `json:"duration_deadlines,omitempty"`
	// Chunks caps the session length (0 = whole video).
	Chunks int `json:"chunks,omitempty"`
	// Alpha is the MP-DASH safety factor (0 = fetcher default 1).
	Alpha float64 `json:"alpha,omitempty"`
	// BufferChunks sets the playback buffer cap in chunk durations
	// (0 = streamer default 8).
	BufferChunks int `json:"buffer_chunks,omitempty"`
	// SegmentKB sets the range-request granularity (0 = default 32 KiB).
	SegmentKB int `json:"segment_kb,omitempty"`
	// NoHedge disables hedged requests for this profile.
	NoHedge bool `json:"no_hedge,omitempty"`
	// WiFiMbps / LTEMbps select the profile's link class: sessions of
	// this profile stream from a server group shaped to these per-origin
	// rates (0 = the scenario's Servers default). Groups are shared
	// within a (video, link-class) pair, so same-class sessions contend
	// for the same shaped bottleneck.
	WiFiMbps float64 `json:"wifi_mbps,omitempty"`
	LTEMbps  float64 `json:"lte_mbps,omitempty"`
}

// FaultSpec is the per-request fault mix applied to every server of the
// tier (see netmp.FaultPlan; the scenario Seed derives the draw seeds).
type FaultSpec struct {
	ResetProb   float64 `json:"reset_prob,omitempty"`
	StallProb   float64 `json:"stall_prob,omitempty"`
	CloseProb   float64 `json:"close_prob,omitempty"`
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	StallForMs  int     `json:"stall_for_ms,omitempty"`
}

// AbortSpec enables doomed-chunk abort (netmp.AbortPolicy) for every
// session of the run. Zero fields inherit the netmp defaults.
type AbortSpec struct {
	// Factor scales the doom test (default 1; above 1 aborts later).
	Factor float64 `json:"factor,omitempty"`
	// MinProgress is the fraction of the deadline window that must
	// elapse before the first doom evaluation (default 0.25).
	MinProgress float64 `json:"min_progress,omitempty"`
}

// CapacityDropSpec schedules a mid-run capacity drop on the shared tier:
// at offset At from run start, every shaped origin's rate is multiplied
// by its link class's factor. Unshaped origins (rate 0) are unaffected.
type CapacityDropSpec struct {
	// At is the drop instant as an offset from run start.
	At Duration `json:"at"`
	// WiFiFactor / LTEFactor multiply the shaped per-origin rates
	// (0 or 1 = that class unchanged; 0.5 = halved).
	WiFiFactor float64 `json:"wifi_factor,omitempty"`
	LTEFactor  float64 `json:"lte_factor,omitempty"`
}

// CacheSpec puts a shared edge-cache tier between the sessions and the
// origins: one singleflight-collapsing edge per (video, link class)
// group and path, every edge backed by a single sharded chunk store, so
// a chunk filled through any edge is a hit for all of them. Sessions
// then stream from the edges — the class rates (servers.wifi_mbps /
// lte_mbps) shape the edges' client-facing downlinks — while the
// origins behind them run at the backhaul rate (origin_mbps).
type CacheSpec struct {
	// CapacityMB is the shared store's capacity in MiB (default 64).
	CapacityMB int `json:"capacity_mb,omitempty"`
	// Shards overrides the store's shard count (0 = default).
	Shards int `json:"shards,omitempty"`
	// MaxLevel caps the admitted rendition level (0 = admit all).
	MaxLevel int `json:"max_level,omitempty"`
	// MinSeen is the admission doorkeeper: misses a chunk needs before
	// it is cached (default 1 = admit on first fill).
	MinSeen int `json:"min_seen,omitempty"`
	// FillFetchers bounds each edge's concurrent distinct-chunk origin
	// fills (0 = netmp default).
	FillFetchers int `json:"fill_fetchers,omitempty"`
	// OriginMbps shapes each origin behind the edges — the backhaul a
	// miss fill crosses (0 = unshaped).
	OriginMbps float64 `json:"origin_mbps,omitempty"`
}

// withDefaults returns the defaulted spec (nil-safe, like
// RecoverySpec.withDefaults: the scenario keeps the pointer untouched).
func (c *CacheSpec) withDefaults() CacheSpec {
	var out CacheSpec
	if c != nil {
		out = *c
	}
	if out.CapacityMB <= 0 {
		out.CapacityMB = 64
	}
	return out
}

// Servers declares the shared origin tier.
type Servers struct {
	// WiFiMbps / LTEMbps shape each origin of the default link class
	// (0 = unshaped).
	WiFiMbps float64 `json:"wifi_mbps,omitempty"`
	LTEMbps  float64 `json:"lte_mbps,omitempty"`
	// WiFiOrigins / LTEOrigins is the ranked origin count per path per
	// group (default 1; >1 enables failover and hedging).
	WiFiOrigins int `json:"wifi_origins,omitempty"`
	LTEOrigins  int `json:"lte_origins,omitempty"`
	// MaxConns / MaxRequestsPerConn are per-origin overload limits
	// (0 = unlimited).
	MaxConns           int `json:"max_conns,omitempty"`
	MaxRequestsPerConn int `json:"max_requests_per_conn,omitempty"`
	// Faults injects the chaos plan into every origin.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// Scenario declares one population run.
type Scenario struct {
	Name     string  `json:"name,omitempty"`
	Sessions int     `json:"sessions"`
	Arrival  Arrival `json:"arrival"`
	// MaxActive bounds the worker pool: sessions arriving beyond it
	// queue (their wait is measured) rather than launching. Default:
	// unbounded (= Sessions).
	MaxActive int `json:"max_active,omitempty"`
	// SessionTimeout stops a session that overstays (graceful Stop, then
	// a hard fetcher teardown). Default: 2× the longest catalog video's
	// playout plus 30s.
	SessionTimeout Duration `json:"session_timeout,omitempty"`
	// Seed is the master RNG seed; every draw in the run descends from
	// it (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// ZipfS is the content-popularity exponent (default 1.0).
	ZipfS    float64       `json:"zipf_s,omitempty"`
	Catalog  []CatalogItem `json:"catalog,omitempty"`
	Profiles []Profile     `json:"profiles,omitempty"`
	Servers  Servers       `json:"servers,omitempty"`
	// Cache fronts the origins with a shared edge-cache tier (nil =
	// sessions stream straight from the origins). Chaos capacity and
	// fault events keep targeting the origins — with a cache they model
	// backhaul trouble, which sessions only feel on misses.
	Cache *CacheSpec `json:"cache,omitempty"`
	// Abort enables doomed-chunk abort for every session (nil = off).
	Abort *AbortSpec `json:"abort,omitempty"`
	// Board shares one congestion board across the run's sessions,
	// keyed per origin group: predictors seed from neighbors and a
	// capacity drop seen by one session pre-arms the rest.
	Board bool `json:"board,omitempty"`
	// CapacityDrop schedules a mid-run tier-wide capacity drop
	// (nil = none). It is legacy shorthand for a one-event Chaos
	// timeline and merges into it (see chaosTimeline).
	CapacityDrop *CapacityDropSpec `json:"capacity_drop,omitempty"`
	// Chaos is the ordered timeline of scheduled tier mutations —
	// capacity drops/restores, fault surges/clears, path blackouts/
	// heals, origin crashes/restarts — executed mid-run.
	Chaos []ChaosEvent `json:"chaos,omitempty"`
	// Recovery tunes the rolling-window detector that dates each chaos
	// event's recovery (MTTR); nil = defaults (1s window, 0.10 miss
	// threshold, 5 chunks minimum).
	Recovery *RecoverySpec `json:"recovery,omitempty"`
}

// DefaultCatalog is a scaled-down four-item analogue of the paper's test
// videos (Table 3): short chunks so population runs finish in seconds.
func DefaultCatalog() []CatalogItem {
	return []CatalogItem{
		{Name: "bbb-mini", ChunkMs: 300, Chunks: 12, LevelsMbps: []float64{0.3, 0.6, 1.2}},
		{Name: "rbps-mini", ChunkMs: 300, Chunks: 16, LevelsMbps: []float64{0.25, 0.5, 1.0, 2.0}},
		{Name: "tos-mini", ChunkMs: 200, Chunks: 20, LevelsMbps: []float64{0.3, 0.6, 1.2}},
		{Name: "toshd-mini", ChunkMs: 300, Chunks: 10, LevelsMbps: []float64{0.5, 1.0, 2.0, 4.0}},
	}
}

// DefaultProfiles is the default heterogeneous session mix.
func DefaultProfiles() []Profile {
	return []Profile{
		{Name: "wifi-gpac", Weight: 0.5, ABR: "gpac"},
		{Name: "wifi-bba", Weight: 0.25, ABR: "bba"},
		{Name: "lte-first", Weight: 0.15, ABR: "gpac", Preference: "lte"},
		{Name: "festive-short", Weight: 0.10, ABR: "festive", Chunks: 6},
	}
}

// withDefaults returns a defaulted copy of the scenario.
func (s Scenario) withDefaults() Scenario {
	if s.Arrival.Kind == "" {
		s.Arrival.Kind = ArrivalPoisson
	}
	if s.Arrival.Over <= 0 {
		s.Arrival.Over = Duration(10 * time.Second)
	}
	if s.MaxActive <= 0 {
		s.MaxActive = s.Sessions
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.ZipfS <= 0 {
		s.ZipfS = 1.0
	}
	if len(s.Catalog) == 0 {
		s.Catalog = DefaultCatalog()
	}
	if len(s.Profiles) == 0 {
		s.Profiles = DefaultProfiles()
	}
	if s.Servers.WiFiOrigins <= 0 {
		s.Servers.WiFiOrigins = 1
	}
	if s.Servers.LTEOrigins <= 0 {
		s.Servers.LTEOrigins = 1
	}
	if s.SessionTimeout <= 0 {
		var longest time.Duration
		for _, c := range s.Catalog {
			if d := time.Duration(c.ChunkMs) * time.Millisecond * time.Duration(c.Chunks); d > longest {
				longest = d
			}
		}
		s.SessionTimeout = Duration(2*longest + 30*time.Second)
	}
	return s
}

// Validate checks the scenario's structural invariants (after defaults).
func (s Scenario) Validate() error {
	if s.Sessions <= 0 {
		return fmt.Errorf("swarm: scenario needs sessions > 0, got %d", s.Sessions)
	}
	switch s.Arrival.Kind {
	case ArrivalUniform, ArrivalPoisson, ArrivalRamp, ArrivalSpike:
	default:
		return fmt.Errorf("swarm: unknown arrival kind %q", s.Arrival.Kind)
	}
	for i, c := range s.Catalog {
		if c.ChunkMs <= 0 || c.Chunks <= 0 || len(c.LevelsMbps) == 0 {
			return fmt.Errorf("swarm: catalog[%d] %q: need chunk_ms, chunks and levels_mbps", i, c.Name)
		}
		if err := c.video(i).Validate(); err != nil {
			return fmt.Errorf("swarm: catalog[%d]: %w", i, err)
		}
	}
	total := 0.0
	for i, p := range s.Profiles {
		if p.Weight < 0 {
			return fmt.Errorf("swarm: profile[%d] %q: negative weight", i, p.Name)
		}
		total += p.Weight
		if _, err := newABR(p.ABR, s.Catalog[0].video(0)); err != nil {
			return fmt.Errorf("swarm: profile[%d] %q: %w", i, p.Name, err)
		}
		switch p.Preference {
		case "", "wifi", "lte":
		default:
			return fmt.Errorf("swarm: profile[%d] %q: preference %q (want wifi or lte)", i, p.Name, p.Preference)
		}
	}
	if len(s.Profiles) > 0 && total <= 0 {
		return fmt.Errorf("swarm: profile weights sum to %g", total)
	}
	if c := s.Cache; c != nil {
		if c.CapacityMB < 0 || c.Shards < 0 || c.MaxLevel < 0 || c.MinSeen < 0 || c.FillFetchers < 0 || c.OriginMbps < 0 {
			return fmt.Errorf("swarm: cache: negative field")
		}
	}
	if a := s.Abort; a != nil {
		if a.Factor < 0 || a.MinProgress < 0 || a.MinProgress > 1 {
			return fmt.Errorf("swarm: abort: factor %g, min_progress %g (want factor >= 0, min_progress in [0,1])", a.Factor, a.MinProgress)
		}
	}
	if d := s.CapacityDrop; d != nil {
		if d.At <= 0 {
			return fmt.Errorf("swarm: capacity_drop: at must be > 0, got %v", d.At.D())
		}
		if d.WiFiFactor < 0 || d.WiFiFactor > 1 || d.LTEFactor < 0 || d.LTEFactor > 1 {
			return fmt.Errorf("swarm: capacity_drop: factors must be in [0,1], got wifi %g lte %g", d.WiFiFactor, d.LTEFactor)
		}
	}
	if err := s.validateChaos(); err != nil {
		return err
	}
	return nil
}

// LoadScenario reads and strictly decodes a scenario JSON file.
func LoadScenario(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("swarm: scenario: %w", err)
	}
	var s Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("swarm: scenario %s: %w", path, err)
	}
	return &s, nil
}
