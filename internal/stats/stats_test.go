package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean([]float64{1, 4, 4}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("HarmonicMean = %v, want 2", got)
	}
	if got := HarmonicMean(nil); got != 0 {
		t.Errorf("HarmonicMean(nil) = %v, want 0", got)
	}
	// Non-positive samples are skipped.
	if got := HarmonicMean([]float64{0, -3, 2, 2}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("HarmonicMean with junk = %v, want 2", got)
	}
}

func TestHarmonicMeanAtMostArithmetic(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			v := math.Abs(x)
			if v > 1e-6 && v < 1e9 && !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return HarmonicMean(xs) <= Mean(xs)+1e-9*Mean(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev const = %v, want 0", got)
	}
	if got := StdDev([]float64{1, 3}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("StdDev = %v, want 1", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	for _, c := range []struct{ p, want float64 }{
		{0, 10}, {25, 20}, {50, 30}, {75, 40}, {100, 50}, {10, 14},
	} {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("Percentile(nil) err = %v, want ErrEmpty", err)
	}
	// Out-of-range p is clamped.
	if got, _ := Percentile(xs, -5); got != 10 {
		t.Errorf("Percentile(-5) = %v, want 10", got)
	}
	if got, _ := Percentile(xs, 150); got != 50 {
		t.Errorf("Percentile(150) = %v, want 50", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d, want 3", len(pts))
	}
	wantV := []float64{1, 2, 3}
	wantF := []float64{1.0 / 3, 2.0 / 3, 1}
	for i, p := range pts {
		if p.Value != wantV[i] || !almostEqual(p.Fraction, wantF[i], 1e-12) {
			t.Errorf("point %d = %+v", i, p)
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		pts := CDF(clean)
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].Fraction < pts[i-1].Fraction {
				return false
			}
		}
		return len(pts) == 0 || pts[len(pts)-1].Fraction == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFractionAtMost(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionAtMost(xs, 2); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("FractionAtMost = %v, want 0.5", got)
	}
	if got := FractionAtMost(nil, 2); got != 0 {
		t.Errorf("FractionAtMost(nil) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if m, err := Min(xs); err != nil || m != -1 {
		t.Errorf("Min = %v, %v", m, err)
	}
	if m, err := Max(xs); err != nil || m != 7 {
		t.Errorf("Max = %v, %v", m, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v", err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}
