package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability ∝ 1/(rank+1)^s by inverse
// CDF over precomputed cumulative weights. Unlike math/rand.Zipf it
// accepts any s > 0 (including the classic s = 1). The same sampler
// backs the swarm planner's content-popularity draws and the cache
// tier's popularity-rank reporting, so "rank" means the same thing in
// both places.
type Zipf struct {
	cum []float64 // normalized cumulative weights
}

// NewZipf builds a sampler over n ranks with exponent s. n must be
// positive; s ≤ 0 degenerates to the uniform law (every weight 1).
func NewZipf(s float64, n int) *Zipf {
	cum := make([]float64, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += 1 / math.Pow(float64(i+1), s)
		cum[i] = t
	}
	for i := range cum {
		cum[i] /= t
	}
	return &Zipf{cum: cum}
}

// Draw samples one rank from rng.
func (z *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.cum) {
		i = len(z.cum) - 1
	}
	return i
}

// Prob returns the probability mass of rank i — the expected request
// share the popularity law assigns it.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cum) {
		return 0
	}
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}

// Ranks returns the number of ranks the sampler spans.
func (z *Zipf) Ranks() int { return len(z.cum) }
