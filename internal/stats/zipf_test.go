package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfProbSumsToOne(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 1.1, 2} {
		for _, n := range []int{1, 2, 8, 100} {
			z := NewZipf(s, n)
			if z.Ranks() != n {
				t.Fatalf("s=%v n=%d: Ranks()=%d", s, n, z.Ranks())
			}
			total := 0.0
			for i := 0; i < n; i++ {
				p := z.Prob(i)
				if p <= 0 {
					t.Fatalf("s=%v n=%d: Prob(%d)=%v not positive", s, n, i, p)
				}
				total += p
			}
			if !almostEqual(total, 1, 1e-9) {
				t.Errorf("s=%v n=%d: probabilities sum to %v", s, n, total)
			}
		}
	}
}

func TestZipfProbMonotoneAndShaped(t *testing.T) {
	z := NewZipf(1, 4)
	// With s=1 the weights are 1, 1/2, 1/3, 1/4.
	h := 1 + 0.5 + 1.0/3 + 0.25
	want := []float64{1 / h, 0.5 / h, (1.0 / 3) / h, 0.25 / h}
	for i, w := range want {
		if !almostEqual(z.Prob(i), w, 1e-9) {
			t.Errorf("Prob(%d) = %v, want %v", i, z.Prob(i), w)
		}
	}
	for i := 1; i < z.Ranks(); i++ {
		if z.Prob(i) > z.Prob(i-1) {
			t.Errorf("popularity not monotone at rank %d", i)
		}
	}
	// Out-of-range ranks carry no mass.
	if z.Prob(-1) != 0 || z.Prob(4) != 0 {
		t.Error("out-of-range rank has nonzero mass")
	}
}

func TestZipfUniformWhenSNonPositive(t *testing.T) {
	z := NewZipf(0, 5)
	for i := 0; i < 5; i++ {
		if !almostEqual(z.Prob(i), 0.2, 1e-9) {
			t.Errorf("s=0 Prob(%d) = %v, want 0.2", i, z.Prob(i))
		}
	}
}

func TestZipfDrawDeterministicAndInRange(t *testing.T) {
	z := NewZipf(1.1, 8)
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	counts := make([]int, 8)
	for i := 0; i < 10_000; i++ {
		x, y := z.Draw(a), z.Draw(b)
		if x != y {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, x, y)
		}
		if x < 0 || x >= 8 {
			t.Fatalf("draw %d out of range: %d", i, x)
		}
		counts[x]++
	}
	// The empirical law has to resemble the analytic one: rank 0 within
	// a few points of its mass, and strictly ahead of the tail.
	if got, want := float64(counts[0])/10_000, z.Prob(0); math.Abs(got-want) > 0.03 {
		t.Errorf("rank-0 share %v, analytic %v", got, want)
	}
	if counts[0] <= counts[7] {
		t.Errorf("head (%d) not more popular than tail (%d)", counts[0], counts[7])
	}
}
