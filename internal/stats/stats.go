// Package stats provides the small set of statistical helpers used across
// the MP-DASH reproduction: means, percentiles, and empirical CDFs.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reductions that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs. FESTIVE uses the harmonic
// mean of recent chunk throughputs as its bandwidth estimator because it is
// robust to large outliers. Non-positive samples are skipped; if no positive
// sample exists the result is 0.
func HarmonicMean(xs []float64) float64 {
	var inv float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		inv += 1 / x
		n++
	}
	if n == 0 || inv == 0 {
		return 0
	}
	return float64(n) / inv
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty on empty input.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// CDFPoint is a single (value, cumulative fraction) point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical cumulative distribution of xs as a sorted list
// of points, one per sample, with Fraction = rank/n.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pts := make([]CDFPoint, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		pts[i] = CDFPoint{Value: v, Fraction: float64(i+1) / n}
	}
	return pts
}

// FractionAtMost returns the empirical fraction of samples <= v.
func FractionAtMost(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Min returns the minimum of xs, or ErrEmpty.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the maximum of xs, or ErrEmpty.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
