package perf

import (
	"testing"
	"time"
)

// quickCfg keeps harness tests fast: tiny measuring window, shrunken
// macro scenarios.
func quickCfg() Config {
	return Config{Trials: 2, BenchTime: "10ms", Quick: true}
}

func TestSuitesAreKnown(t *testing.T) {
	for _, name := range Suites() {
		scs, err := suiteScenarios(name)
		if err != nil || len(scs) == 0 {
			t.Fatalf("suite %s: %v (%d scenarios)", name, err, len(scs))
		}
	}
	if _, err := suiteScenarios("bogus"); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

// TestCoreDomainDeterminism runs every core scenario's domain pass twice
// and demands bit-identical exact metrics — the property the baseline
// gate depends on. (foldMetricTrials additionally enforces this across
// trials inside one run; here we check across runs.)
func TestCoreDomainDeterminism(t *testing.T) {
	cfg := quickCfg()
	for _, sc := range coreScenarios() {
		if sc.domain == nil {
			continue
		}
		a, err := sc.domain(cfg)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		b, err := sc.domain(cfg)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if len(a) != len(b) {
			t.Fatalf("%s: metric count %d vs %d", sc.name, len(a), len(b))
		}
		for i := range a {
			if a[i].Gate == GateExact && a[i].Value != b[i].Value {
				t.Errorf("%s/%s: %v vs %v", sc.name, a[i].Name, a[i].Value, b[i].Value)
			}
		}
	}
}

// TestSessionFetchDeterminism runs the real-socket macro scenario twice
// (two trials each — foldMetricTrials also verifies within-run
// determinism) and compares the exact domain metrics across runs.
func TestSessionFetchDeterminism(t *testing.T) {
	sc := netmpScenarios()[0]
	if sc.name != "netmp_session_fetch" {
		t.Fatalf("scenario order changed: %s", sc.name)
	}
	cfg := quickCfg()
	a, err := runScenario(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runScenario(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, am := range a.Metrics {
		if am.Gate != GateExact {
			continue
		}
		bm := b.metric(am.Name)
		if bm == nil || bm.Value != am.Value {
			t.Errorf("%s: run A %v, run B %+v", am.Name, am.Value, bm)
		}
	}
	if m := a.metric("bytes_total"); m == nil || m.Value <= 0 {
		t.Fatalf("bytes_total: %+v", m)
	}
	if m := a.metric("unverified_chunks"); m == nil || m.Value != 0 {
		t.Fatalf("unverified_chunks: %+v", m)
	}
}

// TestFrozenClock pins the Clock-injection satellite: with a frozen
// netmp.Clock every wall measurement collapses to zero while the
// byte/count domain metrics stay exact — proof no time.Now() leaks into
// the measured paths.
func TestFrozenClock(t *testing.T) {
	frozen := time.Now()
	cfg := quickCfg()
	cfg.Trials = 1
	cfg.Clock = func() time.Time { return frozen }
	sc := netmpScenarios()[0]
	b, err := runScenario(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.NsOp == nil || b.NsOp.Min != 0 {
		t.Fatalf("frozen clock: ns/op = %+v, want 0 (time.Now leaked into the wall measurement)", b.NsOp)
	}
	if m := b.metric("bytes_total"); m == nil || m.Value <= 0 {
		t.Fatalf("bytes_total under frozen clock: %+v", m)
	}
	if m := b.metric("deadline_miss_rate"); m == nil || m.Value != 0 {
		t.Fatalf("deadline_miss_rate under frozen clock: %+v (durations must collapse to 0)", m)
	}
}

// TestSlowdownTripsGate verifies the acceptance criterion end to end in
// process: a synthetic slowdown injected into the scheduler bench via
// MPDASH_PERF_SLOWDOWN must make the comparison fail.
func TestSlowdownTripsGate(t *testing.T) {
	sc := coreScenarios()[0]
	if sc.name != "core_scheduler_tick" {
		t.Fatalf("scenario order changed: %s", sc.name)
	}
	cfg := Config{Trials: 3, BenchTime: "30ms"}
	baseBench, err := runScenario(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 100% extra work against a 15% time tolerance: far outside noise.
	t.Setenv(SlowdownEnv, "1.0")
	slowBench, err := runScenario(sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := CaptureEnv()
	base := &SuiteResult{Version: Version, Suite: "core", Env: env, Trials: 3, Benches: []Bench{*baseBench}}
	fresh := &SuiteResult{Version: Version, Suite: "core", Env: env, Trials: 3, Benches: []Bench{*slowBench}}
	rows, ok := CompareSuites(base, fresh, GateOptions{})
	if ok {
		t.Fatalf("doubled scheduler work passed the gate: %+v", rows)
	}
	if r := findRow(rows, "core_scheduler_tick", "ns/op"); r == nil || r.Verdict != VerdictFail {
		t.Fatalf("ns/op row: %+v", r)
	}
	// And the knob must reject garbage.
	t.Setenv(SlowdownEnv, "not-a-number")
	if _, err := sc.setup(cfg); err == nil {
		t.Fatal("bad slowdown value accepted")
	}
}

func TestRunSuiteCoreQuick(t *testing.T) {
	res, err := RunSuite("core", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Suite != "core" || res.Version != Version || len(res.Benches) != len(coreScenarios()) {
		t.Fatalf("suite result: %+v", res)
	}
	for _, b := range res.Benches {
		if b.NsOp == nil || b.NsOp.Min <= 0 {
			t.Errorf("%s: ns/op %+v", b.Name, b.NsOp)
		}
	}
	// The optimization-pass contract: the two hot paths this PR tuned
	// must stay allocation-lean, or the baseline gate in CI will fail
	// anyway — catch it here first.
	tick := res.bench("core_scheduler_tick")
	if tick.AllocsOp.Median != 0 {
		t.Errorf("scheduler tick allocs/op %v, want 0", tick.AllocsOp.Median)
	}
	handle := res.bench("obs_handle_lookup")
	if handle.AllocsOp.Median > 2 {
		t.Errorf("obs handle lookup allocs/op %v, want ≤ 2", handle.AllocsOp.Median)
	}
}

func TestFoldMetricTrialsRejectsNondeterminism(t *testing.T) {
	trials := [][]Metric{
		{{Name: "x", Value: 1, Gate: GateExact}, {Name: "y", Value: 2, Gate: GateMax}},
		{{Name: "x", Value: 1.5, Gate: GateExact}, {Name: "y", Value: 4, Gate: GateMax}},
	}
	if _, err := foldMetricTrials(trials); err == nil {
		t.Fatal("diverging exact metric accepted")
	}
	trials[1][0].Value = 1
	out, err := foldMetricTrials(trials)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Value != 3 { // median of {2, 4}
		t.Fatalf("median fold: %+v", out[1])
	}
}
