package perf

import (
	"testing"

	"mpdash/internal/swarm"
)

func TestCompareSwarm(t *testing.T) {
	base := &swarm.Report{Scenario: "drop", Sessions: 64, Completed: 64,
		Chunks: 800, DeadlineMissRate: 0.30, WastedCellularBytes: 5 << 20}
	better := &swarm.Report{Scenario: "drop", Sessions: 64, Completed: 64,
		Chunks: 800, DeadlineMissRate: 0.08, WastedCellularBytes: 1 << 20,
		Aborts: 40, Downgrades: 40}

	rows, ok := CompareSwarm(base, better)
	if !ok {
		t.Fatalf("strict improvement failed the gate: %+v", rows)
	}
	// Info rows expose the mechanism's activity for the CI log.
	found := 0
	for _, r := range rows {
		if r.Metric == "aborts" || r.Metric == "downgrades" {
			if r.Verdict != VerdictInfo {
				t.Errorf("%s verdict = %q, want info", r.Metric, r.Verdict)
			}
			found++
		}
	}
	if found != 2 {
		t.Errorf("missing abort/downgrade info rows: %+v", rows)
	}

	for name, fresh := range map[string]*swarm.Report{
		"miss rate equal": {Scenario: "drop", Sessions: 64, Completed: 64,
			Chunks: 800, DeadlineMissRate: 0.30, WastedCellularBytes: 1 << 20},
		"miss rate worse": {Scenario: "drop", Sessions: 64, Completed: 64,
			Chunks: 800, DeadlineMissRate: 0.35, WastedCellularBytes: 1 << 20},
		"waste equal": {Scenario: "drop", Sessions: 64, Completed: 64,
			Chunks: 800, DeadlineMissRate: 0.08, WastedCellularBytes: 5 << 20},
		"ledger violation": {Scenario: "drop", Sessions: 64, Completed: 64,
			Chunks: 800, DeadlineMissRate: 0.08, WastedCellularBytes: 1 << 20,
			LedgerViolations: 1},
		"panic": {Scenario: "drop", Sessions: 64, Completed: 63, Panicked: 1,
			Chunks: 800, DeadlineMissRate: 0.08, WastedCellularBytes: 1 << 20},
		"no traffic": {Scenario: "drop", Sessions: 64, Completed: 64,
			DeadlineMissRate: 0.08, WastedCellularBytes: 1 << 20},
	} {
		if _, ok := CompareSwarm(base, fresh); ok {
			t.Errorf("%s: comparison passed", name)
		}
	}

	// A dirty BASELINE also fails: the comparison proves nothing if the
	// control run itself violated invariants.
	dirty := *base
	dirty.LedgerViolations = 2
	if _, ok := CompareSwarm(&dirty, better); ok {
		t.Error("ledger-violating baseline accepted")
	}

	// Baseline already at zero: holding zero passes, strict reduction is
	// not demanded of the impossible.
	zbase := &swarm.Report{Scenario: "drop", Sessions: 64, Completed: 64,
		Chunks: 800, DeadlineMissRate: 0, WastedCellularBytes: 0}
	zfresh := &swarm.Report{Scenario: "drop", Sessions: 64, Completed: 64,
		Chunks: 800, DeadlineMissRate: 0, WastedCellularBytes: 0}
	if rows, ok := CompareSwarm(zbase, zfresh); !ok {
		t.Errorf("hold-at-zero failed: %+v", rows)
	}
	zworse := &swarm.Report{Scenario: "drop", Sessions: 64, Completed: 64,
		Chunks: 800, DeadlineMissRate: 0.01, WastedCellularBytes: 0}
	if _, ok := CompareSwarm(zbase, zworse); ok {
		t.Error("regression from a zero baseline accepted")
	}
}
