package perf

// The swarm report gate: absolute success criteria for a BENCH_swarm.json
// produced by cmd/mpdash-swarm. Unlike the baseline diff, this gate is
// self-contained — a swarm smoke run must satisfy its own invariants
// (every session accounted for, zero ledger violations, zero panics,
// bounded deadline-miss rate) regardless of any prior run.

import (
	"fmt"

	"mpdash/internal/swarm"
)

// SwarmThresholds are the absolute criteria applied to a swarm report.
type SwarmThresholds struct {
	// MaxMissRate is the highest acceptable population deadline-miss
	// rate (default 0.10).
	MaxMissRate float64
	// MaxFailed is the highest acceptable failed-session count
	// (default 0).
	MaxFailed int
	// MaxTimedOut is the highest acceptable timed-out-session count
	// (default 0).
	MaxTimedOut int
}

func (t SwarmThresholds) withDefaults() SwarmThresholds {
	if t.MaxMissRate <= 0 {
		t.MaxMissRate = 0.10
	}
	return t
}

// GateSwarm checks rep against the thresholds and returns one row per
// criterion plus overall pass/fail.
func GateSwarm(rep *swarm.Report, t SwarmThresholds) ([]DiffRow, bool) {
	t = t.withDefaults()
	ok := true
	row := func(metric string, value, limit float64, cmp string, pass bool, note string) DiffRow {
		v := VerdictOK
		if !pass {
			v = VerdictFail
			ok = false
		}
		return DiffRow{Bench: "swarm:" + rep.Scenario, Metric: metric, Fresh: value,
			Limit: fmt.Sprintf("%s %g", cmp, limit), Verdict: v, Note: note}
	}
	accounted := rep.Completed + rep.Failed + rep.TimedOut + rep.Panicked
	rows := []DiffRow{
		row("sessions_accounted", float64(accounted), float64(rep.Sessions), "=",
			accounted == rep.Sessions, "completed+failed+timed_out+panicked"),
		row("ledger_violations", float64(rep.LedgerViolations), 0, "=",
			rep.LedgerViolations == 0, "byte-for-byte verification"),
		row("panicked", float64(rep.Panicked), 0, "=", rep.Panicked == 0, ""),
		row("failed", float64(rep.Failed), float64(t.MaxFailed), "≤",
			rep.Failed <= t.MaxFailed, ""),
		row("timed_out", float64(rep.TimedOut), float64(t.MaxTimedOut), "≤",
			rep.TimedOut <= t.MaxTimedOut, ""),
		row("deadline_miss_rate", rep.DeadlineMissRate, t.MaxMissRate, "≤",
			rep.DeadlineMissRate <= t.MaxMissRate, ""),
		{Bench: "swarm:" + rep.Scenario, Metric: "chunks", Fresh: float64(rep.Chunks),
			Verdict: VerdictInfo},
		{Bench: "swarm:" + rep.Scenario, Metric: "cellular_byte_share",
			Fresh: rep.CellularByteShare, Verdict: VerdictInfo},
	}
	if rep.Chunks == 0 {
		rows = append(rows, DiffRow{Bench: "swarm:" + rep.Scenario, Metric: "chunks",
			Limit: "> 0", Verdict: VerdictFail, Note: "swarm moved no traffic"})
		ok = false
	}
	return rows, ok
}
