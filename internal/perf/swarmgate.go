package perf

// The swarm report gate: absolute success criteria for a BENCH_swarm.json
// produced by cmd/mpdash-swarm. Unlike the baseline diff, this gate is
// self-contained — a swarm smoke run must satisfy its own invariants
// (every session accounted for, zero ledger violations, zero panics,
// bounded deadline-miss rate) regardless of any prior run.

import (
	"fmt"

	"mpdash/internal/swarm"
)

// SwarmThresholds are the absolute criteria applied to a swarm report.
type SwarmThresholds struct {
	// MaxMissRate is the highest acceptable population deadline-miss
	// rate (default 0.10).
	MaxMissRate float64
	// MaxFailed is the highest acceptable failed-session count
	// (default 0).
	MaxFailed int
	// MaxTimedOut is the highest acceptable timed-out-session count
	// (default 0).
	MaxTimedOut int
	// MaxMTTRP95 gates chaos recovery: when > 0 the report must carry an
	// executed chaos timeline whose every event recovered, with p95 MTTR
	// (seconds) at or under this bound. 0 = recovery not gated.
	MaxMTTRP95 float64
	// MinOffload gates the edge-cache tier: when > 0 the report must
	// carry a cache block whose origin-offload ratio is at or above this
	// bound. 0 = offload not gated.
	MinOffload float64
	// MinHitRate gates the cache hit rate the same way (0 = not gated).
	MinHitRate float64
	// MinThroughput is the floor on swarm throughput in chunks landed
	// per wall second (Chunks / WallS). 0 = throughput not gated.
	MinThroughput float64
}

func (t SwarmThresholds) withDefaults() SwarmThresholds {
	if t.MaxMissRate <= 0 {
		t.MaxMissRate = 0.10
	}
	return t
}

// GateSwarm checks rep against the thresholds and returns one row per
// criterion plus overall pass/fail.
func GateSwarm(rep *swarm.Report, t SwarmThresholds) ([]DiffRow, bool) {
	t = t.withDefaults()
	ok := true
	row := func(metric string, value, limit float64, cmp string, pass bool, note string) DiffRow {
		v := VerdictOK
		if !pass {
			v = VerdictFail
			ok = false
		}
		return DiffRow{Bench: "swarm:" + rep.Scenario, Metric: metric, Fresh: value,
			Limit: fmt.Sprintf("%s %g", cmp, limit), Verdict: v, Note: note}
	}
	accounted := rep.Completed + rep.Failed + rep.TimedOut + rep.Panicked
	rows := []DiffRow{
		row("sessions_accounted", float64(accounted), float64(rep.Sessions), "=",
			accounted == rep.Sessions, "completed+failed+timed_out+panicked"),
		row("ledger_violations", float64(rep.LedgerViolations), 0, "=",
			rep.LedgerViolations == 0, "byte-for-byte verification"),
		row("panicked", float64(rep.Panicked), 0, "=", rep.Panicked == 0, ""),
		row("failed", float64(rep.Failed), float64(t.MaxFailed), "≤",
			rep.Failed <= t.MaxFailed, ""),
		row("timed_out", float64(rep.TimedOut), float64(t.MaxTimedOut), "≤",
			rep.TimedOut <= t.MaxTimedOut, ""),
		row("deadline_miss_rate", rep.DeadlineMissRate, t.MaxMissRate, "≤",
			rep.DeadlineMissRate <= t.MaxMissRate, ""),
		{Bench: "swarm:" + rep.Scenario, Metric: "chunks", Fresh: float64(rep.Chunks),
			Verdict: VerdictInfo},
		{Bench: "swarm:" + rep.Scenario, Metric: "cellular_byte_share",
			Fresh: rep.CellularByteShare, Verdict: VerdictInfo},
	}
	if rep.Chunks == 0 {
		rows = append(rows, DiffRow{Bench: "swarm:" + rep.Scenario, Metric: "chunks",
			Limit: "> 0", Verdict: VerdictFail, Note: "swarm moved no traffic"})
		ok = false
	}
	// Throughput gate: chunks landed per wall second must meet the floor.
	// A report without a measured wall (WallS 0) cannot prove the floor
	// and fails when the gate is requested.
	if t.MinThroughput > 0 {
		thr := 0.0
		if rep.WallS > 0 {
			thr = float64(rep.Chunks) / rep.WallS
		}
		rows = append(rows, row("throughput_chunks_per_s", thr, t.MinThroughput, "≥",
			thr >= t.MinThroughput, "chunks landed per wall second across the population"))
	}
	// Chaos recovery gate: the timeline must have executed, every event
	// must have recovered, and the p95 MTTR must sit under the bound.
	if t.MaxMTTRP95 > 0 {
		recovered := 0
		for _, c := range rep.Chaos {
			if c.Recovered {
				recovered++
			}
		}
		rows = append(rows,
			row("chaos_events", float64(len(rep.Chaos)), 1, "≥",
				len(rep.Chaos) >= 1, "an MTTR gate needs an executed chaos timeline"),
			row("chaos_recovered", float64(recovered), float64(len(rep.Chaos)), "=",
				len(rep.Chaos) >= 1 && recovered == len(rep.Chaos),
				"every chaos event must recover"))
		if rep.MTTR == nil {
			rows = append(rows, DiffRow{Bench: "swarm:" + rep.Scenario, Metric: "mttr_p95_s",
				Limit: fmt.Sprintf("≤ %g", t.MaxMTTRP95), Verdict: VerdictFail,
				Note: "report carries no MTTR quantiles"})
			ok = false
		} else {
			rows = append(rows, row("mttr_p95_s", rep.MTTR.P95, t.MaxMTTRP95, "≤",
				rep.MTTR.P95 <= t.MaxMTTRP95, "time to rolling miss rate back under threshold"))
		}
	}
	// Cache gates: the report must carry a cache block (the scenario ran
	// with an edge tier) and meet the absolute offload / hit-rate floors.
	if t.MinOffload > 0 || t.MinHitRate > 0 {
		if rep.Cache == nil {
			rows = append(rows, DiffRow{Bench: "swarm:" + rep.Scenario, Metric: "cache",
				Limit: "present", Verdict: VerdictFail,
				Note: "a cache gate needs a run with an edge-cache tier"})
			ok = false
		} else {
			if t.MinOffload > 0 {
				rows = append(rows, row("cache_offload_ratio", rep.Cache.OffloadRatio, t.MinOffload, "≥",
					rep.Cache.OffloadRatio >= t.MinOffload, "payload share the origins never saw"))
			}
			if t.MinHitRate > 0 {
				rows = append(rows, row("cache_hit_rate", rep.Cache.HitRate, t.MinHitRate, "≥",
					rep.Cache.HitRate >= t.MinHitRate, "collapsed waiters count as misses"))
			}
			rows = append(rows,
				row("cache_fill_errors", float64(rep.Cache.FillErrors), 0, "=",
					rep.Cache.FillErrors == 0, "origin fills must not fail"),
				DiffRow{Bench: "swarm:" + rep.Scenario, Metric: "cache_collapsed",
					Fresh: float64(rep.Cache.Collapsed), Verdict: VerdictInfo,
					Note: "misses that joined an in-flight fill"})
		}
	}
	// Invariant audit gate: an audited report must be violation-free.
	if rep.Audit != nil {
		rows = append(rows, row("audit_violations", float64(rep.Audit.Count()), 0, "=",
			rep.Audit.Count() == 0, "runtime invariant auditor"))
	}
	return rows, ok
}

// CompareSwarm gates a graceful-degradation run (abort + congestion
// board enabled) against a baseline run of the same scenario with the
// mechanism off: the treated population must strictly reduce BOTH the
// deadline-miss rate AND the wasted cellular bytes, with zero ledger
// violations and zero panics — proving the aborts bought on-time video
// rather than just discarding traffic. A baseline metric already at
// zero cannot strictly improve; holding it at zero passes.
func CompareSwarm(base, fresh *swarm.Report) ([]DiffRow, bool) {
	ok := true
	bench := "swarm:" + fresh.Scenario
	row := func(metric string, baseV, freshV float64, pass bool, note string) DiffRow {
		v := VerdictOK
		if !pass {
			v = VerdictFail
			ok = false
		}
		return DiffRow{Bench: bench, Metric: metric, Base: baseV, Fresh: freshV,
			Limit: "< base", Verdict: v, Note: note}
	}
	mustFall := func(baseV, freshV float64) bool {
		if baseV <= 0 {
			return freshV <= 0
		}
		return freshV < baseV
	}
	rows := []DiffRow{
		row("deadline_miss_rate", base.DeadlineMissRate, fresh.DeadlineMissRate,
			mustFall(base.DeadlineMissRate, fresh.DeadlineMissRate),
			"population deadline misses must fall"),
		row("wasted_cellular_bytes", float64(base.WastedCellularBytes), float64(fresh.WastedCellularBytes),
			mustFall(float64(base.WastedCellularBytes), float64(fresh.WastedCellularBytes)),
			"cellular bytes buying no on-time video must fall"),
		{Bench: bench, Metric: "ledger_violations", Base: float64(base.LedgerViolations),
			Fresh: float64(fresh.LedgerViolations), Limit: "= 0",
			Verdict: verdictIf(fresh.LedgerViolations == 0 && base.LedgerViolations == 0),
			Note:    "byte-for-byte verification, both runs"},
		{Bench: bench, Metric: "panicked", Base: float64(base.Panicked),
			Fresh: float64(fresh.Panicked), Limit: "= 0",
			Verdict: verdictIf(fresh.Panicked == 0 && base.Panicked == 0)},
		{Bench: bench, Metric: "aborts", Base: float64(base.Aborts),
			Fresh: float64(fresh.Aborts), Verdict: VerdictInfo},
		{Bench: bench, Metric: "downgrades", Base: float64(base.Downgrades),
			Fresh: float64(fresh.Downgrades), Verdict: VerdictInfo},
	}
	if fresh.LedgerViolations != 0 || base.LedgerViolations != 0 ||
		fresh.Panicked != 0 || base.Panicked != 0 {
		ok = false
	}
	if fresh.Chunks == 0 || base.Chunks == 0 {
		rows = append(rows, DiffRow{Bench: bench, Metric: "chunks", Limit: "> 0",
			Base: float64(base.Chunks), Fresh: float64(fresh.Chunks),
			Verdict: VerdictFail, Note: "a run moved no traffic"})
		ok = false
	}
	return rows, ok
}

func verdictIf(pass bool) string {
	if pass {
		return VerdictOK
	}
	return VerdictFail
}
