package perf

// The "core" suite: micro scenarios over the compute hot paths. Each
// scenario batches inner logical operations per measured op (stats are
// normalized back to the logical operation) and runs a fixed-work
// deterministic side pass for its domain metrics, so the numbers the
// gate holds exact never depend on b.N or wall time.

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"mpdash/internal/cache"
	"mpdash/internal/core"
	"mpdash/internal/mptcp"
	"mpdash/internal/obs"
	"mpdash/internal/predict"
	"mpdash/internal/sim"
	"mpdash/internal/trace"
)

const (
	tickInner    = 100
	hwInner      = 64
	observeInner = 128
	traceInner   = 64
	cacheInner   = 128
)

func coreScenarios() []*scenario {
	return []*scenario{
		{name: "core_scheduler_tick", inner: tickInner, setup: setupSchedulerTick, domain: schedulerDomain},
		{name: "core_holtwinters_update", inner: hwInner, setup: setupHoltWinters, domain: holtWintersDomain},
		{name: "core_knapsack_dp", inner: 1, setup: setupKnapsack, domain: knapsackDomain},
		{name: "obs_handle_lookup", inner: 1, setup: setupHandleLookup, domain: obsDomain},
		{name: "obs_histogram_observe", inner: observeInner, setup: setupHistogramObserve, domain: nil},
		{name: "obs_trace_disabled", inner: traceInner, setup: setupTraceDisabled, domain: nil},
		{name: "obs_trace_chunk", inner: 1, setup: setupTraceChunk, domain: traceDomain},
		{name: "cache_get", inner: cacheInner, setup: setupCacheGet, domain: cacheDomain},
		{name: "cache_put", inner: cacheInner, setup: setupCachePut, domain: nil},
		{name: "cache_singleflight", inner: 1, setup: setupCacheSingleflight, domain: nil},
	}
}

// newBenchScheduler assembles a three-path connection (the N-path §4
// generalization: WiFi primary, metered LTE, mid-cost ethernet) with an
// active governed transfer, ready for Tick-driven evaluation.
func newBenchScheduler() (*core.Scheduler, error) {
	s := sim.New()
	conn, err := mptcp.NewConn(s, mptcp.Config{Paths: []mptcp.PathSpec{
		{Name: "wifi", Rate: trace.Constant("wifi", 30, 100*time.Millisecond, 1), RTT: 50 * time.Millisecond, Cost: 1, Primary: true},
		{Name: "eth", Rate: trace.Constant("eth", 20, 100*time.Millisecond, 1), RTT: 40 * time.Millisecond, Cost: 3},
		{Name: "lte", Rate: trace.Constant("lte", 25, 100*time.Millisecond, 1), RTT: 60 * time.Millisecond, Cost: 5},
	}})
	if err != nil {
		return nil, err
	}
	sch, err := core.NewScheduler(s, conn, 0.9)
	if err != nil {
		return nil, err
	}
	// A governed 40 MB transfer with a 20 s window keeps every Tick on
	// the full Algorithm 1 path (sort + prefix-cover walk) without the
	// deadline ever passing — the simulator clock is never advanced.
	if err := sch.Enable(40_000_000, 20*time.Second); err != nil {
		return nil, err
	}
	return sch, nil
}

// setupSchedulerTick measures the Algorithm 1 decision loop. The
// SlowdownEnv knob pads the batch with synthetic extra ticks so the
// regression gate's trip wire is verifiable end to end.
func setupSchedulerTick(Config) (func(), error) {
	sch, err := newBenchScheduler()
	if err != nil {
		return nil, err
	}
	batch := tickInner
	if s := os.Getenv(SlowdownEnv); s != "" {
		frac, err := strconv.ParseFloat(s, 64)
		if err != nil || frac < 0 {
			return nil, fmt.Errorf("%s=%q: want a non-negative fraction", SlowdownEnv, s)
		}
		batch += int(frac * tickInner)
	}
	return func() {
		for i := 0; i < batch; i++ {
			sch.Tick()
		}
	}, nil
}

func schedulerDomain(Config) ([]Metric, error) {
	sch, err := newBenchScheduler()
	if err != nil {
		return nil, err
	}
	for i := 0; i < 500; i++ {
		sch.Tick()
	}
	return []Metric{
		{Name: "toggles_500_ticks", Value: float64(sch.Toggles()), Gate: GateExact},
		{Name: "deadline_misses", Value: float64(sch.DeadlineMisses()), Gate: GateExact},
	}, nil
}

// hwSample is the synthetic throughput process fed to the predictor: a
// level shift plus a deterministic sawtooth, exercising both the level
// and trend terms.
func hwSample(i int) float64 {
	base := 20e6
	if i%97 > 48 {
		base = 8e6
	}
	return base + float64(i%13)*250e3
}

func setupHoltWinters(Config) (func(), error) {
	h := predict.NewDefaultHoltWinters()
	i := 0
	return func() {
		for k := 0; k < hwInner; k++ {
			h.Observe(hwSample(i))
			i++
		}
		_ = h.Predict()
	}, nil
}

func holtWintersDomain(Config) ([]Metric, error) {
	h := predict.NewDefaultHoltWinters()
	var absErr float64
	for i := 0; i < 500; i++ {
		if i > 0 {
			d := h.Predict() - hwSample(i)
			if d < 0 {
				d = -d
			}
			absErr += d
		}
		h.Observe(hwSample(i))
	}
	return []Metric{
		{Name: "forecast_bps", Value: h.Predict(), Gate: GateExact},
		{Name: "mae_bps", Value: absErr / 499, Gate: GateExact},
	}, nil
}

// knapsackInput is the fixed Table 2-shaped DP instance: two interfaces
// across 30 half-second slots, 4 MB demand, 4 KiB quantum.
func knapsackInput() (bw [][]float64, cost []float64, slot time.Duration, S, q int64) {
	const slots = 30
	bw = make([][]float64, 2)
	for i := range bw {
		bw[i] = make([]float64, slots)
		for j := 0; j < slots; j++ {
			bw[i][j] = 2e6 + float64((i+1)*(j%7))*300e3
		}
	}
	return bw, []float64{1, 5}, 500 * time.Millisecond, 4_000_000, 4096
}

func setupKnapsack(Config) (func(), error) {
	bw, cost, slot, S, q := knapsackInput()
	return func() {
		if _, err := core.MinCostSchedule(bw, cost, slot, S, q); err != nil {
			panic(err)
		}
	}, nil
}

func knapsackDomain(Config) ([]Metric, error) {
	bw, cost, slot, S, q := knapsackInput()
	plan, err := core.MinCostSchedule(bw, cost, slot, S, q)
	if err != nil {
		return nil, err
	}
	feasible := 0.0
	if plan.Feasible {
		feasible = 1
	}
	return []Metric{
		{Name: "plan_cost", Value: plan.Cost, Gate: GateExact},
		{Name: "cheap_iface_bytes", Value: plan.Bytes[0], Gate: GateExact},
		{Name: "feasible", Value: feasible, Gate: GateExact},
	}, nil
}

// setupHandleLookup measures the metric-handle acquisition path exactly
// as instrumented code hits it when re-resolving a labeled series:
// label-map literal, canonical render, registry lookup, counter add.
func setupHandleLookup(Config) (func(), error) {
	r := obs.NewRegistry()
	// Pre-register so the measured path is the steady-state lookup, not
	// first-use registration.
	r.Counter("mpdash_path_bytes_total", "bench", obs.Labels{"path": "wifi"})
	r.Counter("mpdash_path_bytes_total", "bench", obs.Labels{"path": "lte"})
	return func() {
		r.Counter("mpdash_path_bytes_total", "bench", obs.Labels{"path": "wifi"}).Add(1)
	}, nil
}

func setupHistogramObserve(Config) (func(), error) {
	r := obs.NewRegistry()
	h := r.Histogram("mpdash_chunk_duration_seconds", "bench", obs.DefSecondsBuckets, nil)
	i := 0
	return func() {
		for k := 0; k < observeInner; k++ {
			h.Observe(float64(i%40) * 0.02)
			i++
		}
	}, nil
}

// obsDomain pins down the exposition contract: fixed samples in, exact
// quantile estimates and byte-exact Prometheus rendering out.
func obsDomain(Config) ([]Metric, error) {
	r := obs.NewRegistry()
	c := r.Counter("bench_ops_total", "Ops.", obs.Labels{"kind": "domain"})
	h := r.Histogram("bench_seconds", "Durations.", obs.DefSecondsBuckets, nil)
	for i := 0; i < 1000; i++ {
		c.Inc()
		h.Observe(float64(i%40) * 0.02)
	}
	var sb countingWriter
	if err := r.WritePrometheus(&sb); err != nil {
		return nil, err
	}
	return []Metric{
		{Name: "quantile_p50_s", Value: h.Quantile(0.50), Gate: GateExact},
		{Name: "quantile_p99_s", Value: h.Quantile(0.99), Gate: GateExact},
		{Name: "exposition_bytes", Value: float64(sb.n), Gate: GateExact},
	}, nil
}

// setupTraceDisabled measures the tracing call sites exactly as the
// fetch hot path hits them with tracing off: every method on the nil
// Tracer/Trace/Span handles must collapse to a pointer check. The
// baseline records 0 allocs/op, which benchgate holds as an exact
// zero-alloc contract.
func setupTraceDisabled(Config) (func(), error) {
	var tr *obs.Tracer
	return func() {
		for k := 0; k < traceInner; k++ {
			t := tr.StartTrace(0, k, 1)
			t.SetDeadline(time.Second)
			sp := t.StartSpan(obs.CatFetch, "fetch")
			sp.SetPath("wifi")
			sp.SetNum("size", 1)
			sp.End()
			t.Event(obs.CatRequeue, "requeue")
			t.Finish(obs.TraceOK)
		}
	}, nil
}

// traceChunkOp performs one synthetic chunk fetch — segment-sized FNV
// sweeps standing in for payload verification — traced through tr when
// non-nil. The compute dwarfs the tracing calls the way a real network
// fetch does, so the enabled-vs-disabled delta is a representative
// per-chunk overhead fraction.
func traceChunkOp(tr *obs.Tracer, buf []byte, chunk int) uint64 {
	const segs = 4
	t := tr.StartTrace(0, chunk, 1)
	t.SetDeadline(time.Second)
	fsp := t.StartSpan(obs.CatFetch, "fetch")
	fsp.SetNum("size", float64(len(buf)))
	var sum uint64 = 14695981039346656037
	segLen := len(buf) / segs
	for s := 0; s < segs; s++ {
		ssp := t.StartSpan(obs.CatSegment, "segment")
		ssp.SetPath("wifi")
		ssp.SetNum("seg", float64(s))
		for _, c := range buf[s*segLen : (s+1)*segLen] {
			sum = (sum ^ uint64(c)) * 1099511628211
		}
		ssp.End()
	}
	fsp.End()
	t.Finish(obs.TraceOK)
	return sum
}

func traceBenchBuf() []byte {
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	return buf
}

// setupTraceChunk measures the traced chunk op with tracing enabled at
// head rate 0: healthy traces are dropped at Finish, so the kept set
// stays empty however long the benchmark runs.
func setupTraceChunk(Config) (func(), error) {
	tr := obs.NewTracer(obs.TraceConfig{HeadSampleRate: 0, Seed: 1})
	buf := traceBenchBuf()
	i := 0
	var sink uint64
	return func() {
		sink += traceChunkOp(tr, buf, i)
		i++
		_ = sink
	}, nil
}

// traceDomain pins the sampler's deterministic contract and holds the
// tracing-overhead bound: every bad trace kept, head sampling exactly
// reproducible from the seed, and the traced chunk op within 15% of the
// untraced one (trace_overhead_ok is 1 when the bound holds; the gate
// fails any run where the median trial says 0).
func traceDomain(Config) ([]Metric, error) {
	tr := obs.NewTracer(obs.TraceConfig{HeadSampleRate: 0.1, Seed: 42})
	for i := 0; i < 1000; i++ {
		t := tr.StartTrace(0, i, 1)
		if i%10 == 0 {
			t.SetDeadline(time.Millisecond)
			t.SetOverrun(time.Millisecond)
			t.Finish(obs.TraceMissed)
		} else {
			t.Finish(obs.TraceOK)
		}
	}
	st := tr.Stats()

	buf := traceBenchBuf()
	var sink uint64
	plain := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += traceChunkOp(nil, buf, i)
		}
	})
	etr := obs.NewTracer(obs.TraceConfig{HeadSampleRate: 0, Seed: 1})
	traced := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += traceChunkOp(etr, buf, i)
		}
	})
	_ = sink
	overhead := 0.0
	if plainNs := float64(plain.T.Nanoseconds()) / float64(plain.N); plainNs > 0 {
		tracedNs := float64(traced.T.Nanoseconds()) / float64(traced.N)
		overhead = (tracedNs - plainNs) / plainNs
	}
	ok := 0.0
	if overhead <= 0.15 {
		ok = 1
	}
	return []Metric{
		{Name: "kept_bad", Value: float64(st.KeptBad), Gate: GateExact},
		{Name: "kept_sampled", Value: float64(st.KeptSampled), Gate: GateExact},
		{Name: "dropped", Value: float64(st.Dropped), Gate: GateExact},
		{Name: "trace_overhead_frac", Value: overhead, Gate: GateInfo},
		{Name: "trace_overhead_ok", Value: ok, Gate: GateMin},
	}, nil
}

// benchCacheBody builds one deterministic n-byte payload.
func benchCacheBody(n, salt int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + salt)
	}
	return b
}

// setupCacheGet measures the hit path — shard resolve, map lookup, LRU
// promote — over a fully resident key set.
func setupCacheGet(Config) (func(), error) {
	c := cache.New(cache.Config{CapacityBytes: 2 << 20, Shards: 8})
	keys := make([]cache.Key, 256)
	for i := range keys {
		keys[i] = cache.Key{Video: "bench", Level: i % 3, Chunk: i}
		if !c.Put(keys[i], benchCacheBody(4096, i)) {
			return nil, fmt.Errorf("perf: cache_get: key %d not admitted", i)
		}
	}
	i := 0
	return func() {
		for k := 0; k < cacheInner; k++ {
			if _, ok := c.Get(keys[i%len(keys)]); !ok {
				panic("perf: cache_get: miss on a resident key")
			}
			i++
		}
	}, nil
}

// setupCachePut measures insertion under steady LRU eviction: the key
// set is twice the capacity, so every put soon pays one eviction.
func setupCachePut(Config) (func(), error) {
	c := cache.New(cache.Config{CapacityBytes: 1 << 20, Shards: 8})
	bodies := make([][]byte, 512)
	for i := range bodies {
		bodies[i] = benchCacheBody(4096, i)
	}
	i := 0
	return func() {
		for k := 0; k < cacheInner; k++ {
			c.Put(cache.Key{Video: "bench", Chunk: i % len(bodies)}, bodies[i%len(bodies)])
			i++
		}
	}, nil
}

// setupCacheSingleflight measures the uncontended leader path end to
// end: flight registration, an instant fill, admission, flight close.
// Every call uses a fresh key so it is always a miss.
func setupCacheSingleflight(Config) (func(), error) {
	c := cache.New(cache.Config{CapacityBytes: 1 << 20, Shards: 8})
	body := benchCacheBody(4096, 0)
	i := 0
	return func() {
		_, _, err := c.Fetch(cache.Key{Video: "bench", Chunk: i}, func() ([]byte, error) {
			return body, nil
		})
		if err != nil {
			panic(err)
		}
		i++
	}, nil
}

// cacheDomain pins the cache's behavioural contract with fixed work:
// a single-threaded LRU churn whose hit/miss/eviction counts are exact,
// then a 64-way concurrent miss that must collapse into exactly one
// fill. The concurrent split between collapsed waiters and late hits is
// scheduler-dependent, so only its invariants are gated exactly.
func cacheDomain(Config) ([]Metric, error) {
	// 150 keys × 16 KiB through a 1 MiB single-shard store (64 resident):
	// a cold sweep whose evictions are deterministic, then a re-read of
	// the resident LRU tail whose hits are too.
	c := cache.New(cache.Config{CapacityBytes: 1 << 20, Shards: 1})
	body := benchCacheBody(16<<10, 1)
	churnFetch := func(chunk int) error {
		_, _, err := c.Fetch(cache.Key{Video: "churn", Chunk: chunk}, func() ([]byte, error) {
			return body, nil
		})
		return err
	}
	for i := 0; i < 150; i++ {
		if err := churnFetch(i); err != nil {
			return nil, err
		}
	}
	for i := 100; i < 150; i++ {
		if err := churnFetch(i); err != nil {
			return nil, err
		}
	}
	churn := c.Stats()

	// 64 concurrent fetchers of one key: exactly one fill runs; every
	// other call either collapsed onto it or hit the cached result.
	cc := cache.New(cache.Config{CapacityBytes: 8 << 20})
	fillBody := benchCacheBody(64<<10, 2)
	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := cc.Fetch(cache.Key{Video: "flash", Chunk: 7}, func() ([]byte, error) {
				time.Sleep(2 * time.Millisecond) // hold the flight open so waiters pile on
				return fillBody, nil
			})
			if err != nil {
				panic(err)
			}
		}()
	}
	wg.Wait()
	flash := cc.Stats()
	return []Metric{
		{Name: "churn_hits", Value: float64(churn.Hits), Gate: GateExact},
		{Name: "churn_misses", Value: float64(churn.Misses), Gate: GateExact},
		{Name: "churn_evictions", Value: float64(churn.Evictions), Gate: GateExact},
		{Name: "flash_fills_64_way", Value: float64(flash.Fills), Gate: GateExact},
		{Name: "flash_lookups", Value: float64(flash.Hits + flash.Misses), Gate: GateExact},
		{Name: "flash_collapsed", Value: float64(flash.Collapsed), Gate: GateInfo},
	}, nil
}

// countingWriter counts bytes without keeping them.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
