package perf

// The "core" suite: micro scenarios over the compute hot paths. Each
// scenario batches inner logical operations per measured op (stats are
// normalized back to the logical operation) and runs a fixed-work
// deterministic side pass for its domain metrics, so the numbers the
// gate holds exact never depend on b.N or wall time.

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"mpdash/internal/core"
	"mpdash/internal/mptcp"
	"mpdash/internal/obs"
	"mpdash/internal/predict"
	"mpdash/internal/sim"
	"mpdash/internal/trace"
)

const (
	tickInner    = 100
	hwInner      = 64
	observeInner = 128
	traceInner   = 64
)

func coreScenarios() []*scenario {
	return []*scenario{
		{name: "core_scheduler_tick", inner: tickInner, setup: setupSchedulerTick, domain: schedulerDomain},
		{name: "core_holtwinters_update", inner: hwInner, setup: setupHoltWinters, domain: holtWintersDomain},
		{name: "core_knapsack_dp", inner: 1, setup: setupKnapsack, domain: knapsackDomain},
		{name: "obs_handle_lookup", inner: 1, setup: setupHandleLookup, domain: obsDomain},
		{name: "obs_histogram_observe", inner: observeInner, setup: setupHistogramObserve, domain: nil},
		{name: "obs_trace_disabled", inner: traceInner, setup: setupTraceDisabled, domain: nil},
		{name: "obs_trace_chunk", inner: 1, setup: setupTraceChunk, domain: traceDomain},
	}
}

// newBenchScheduler assembles a three-path connection (the N-path §4
// generalization: WiFi primary, metered LTE, mid-cost ethernet) with an
// active governed transfer, ready for Tick-driven evaluation.
func newBenchScheduler() (*core.Scheduler, error) {
	s := sim.New()
	conn, err := mptcp.NewConn(s, mptcp.Config{Paths: []mptcp.PathSpec{
		{Name: "wifi", Rate: trace.Constant("wifi", 30, 100*time.Millisecond, 1), RTT: 50 * time.Millisecond, Cost: 1, Primary: true},
		{Name: "eth", Rate: trace.Constant("eth", 20, 100*time.Millisecond, 1), RTT: 40 * time.Millisecond, Cost: 3},
		{Name: "lte", Rate: trace.Constant("lte", 25, 100*time.Millisecond, 1), RTT: 60 * time.Millisecond, Cost: 5},
	}})
	if err != nil {
		return nil, err
	}
	sch, err := core.NewScheduler(s, conn, 0.9)
	if err != nil {
		return nil, err
	}
	// A governed 40 MB transfer with a 20 s window keeps every Tick on
	// the full Algorithm 1 path (sort + prefix-cover walk) without the
	// deadline ever passing — the simulator clock is never advanced.
	if err := sch.Enable(40_000_000, 20*time.Second); err != nil {
		return nil, err
	}
	return sch, nil
}

// setupSchedulerTick measures the Algorithm 1 decision loop. The
// SlowdownEnv knob pads the batch with synthetic extra ticks so the
// regression gate's trip wire is verifiable end to end.
func setupSchedulerTick(Config) (func(), error) {
	sch, err := newBenchScheduler()
	if err != nil {
		return nil, err
	}
	batch := tickInner
	if s := os.Getenv(SlowdownEnv); s != "" {
		frac, err := strconv.ParseFloat(s, 64)
		if err != nil || frac < 0 {
			return nil, fmt.Errorf("%s=%q: want a non-negative fraction", SlowdownEnv, s)
		}
		batch += int(frac * tickInner)
	}
	return func() {
		for i := 0; i < batch; i++ {
			sch.Tick()
		}
	}, nil
}

func schedulerDomain(Config) ([]Metric, error) {
	sch, err := newBenchScheduler()
	if err != nil {
		return nil, err
	}
	for i := 0; i < 500; i++ {
		sch.Tick()
	}
	return []Metric{
		{Name: "toggles_500_ticks", Value: float64(sch.Toggles()), Gate: GateExact},
		{Name: "deadline_misses", Value: float64(sch.DeadlineMisses()), Gate: GateExact},
	}, nil
}

// hwSample is the synthetic throughput process fed to the predictor: a
// level shift plus a deterministic sawtooth, exercising both the level
// and trend terms.
func hwSample(i int) float64 {
	base := 20e6
	if i%97 > 48 {
		base = 8e6
	}
	return base + float64(i%13)*250e3
}

func setupHoltWinters(Config) (func(), error) {
	h := predict.NewDefaultHoltWinters()
	i := 0
	return func() {
		for k := 0; k < hwInner; k++ {
			h.Observe(hwSample(i))
			i++
		}
		_ = h.Predict()
	}, nil
}

func holtWintersDomain(Config) ([]Metric, error) {
	h := predict.NewDefaultHoltWinters()
	var absErr float64
	for i := 0; i < 500; i++ {
		if i > 0 {
			d := h.Predict() - hwSample(i)
			if d < 0 {
				d = -d
			}
			absErr += d
		}
		h.Observe(hwSample(i))
	}
	return []Metric{
		{Name: "forecast_bps", Value: h.Predict(), Gate: GateExact},
		{Name: "mae_bps", Value: absErr / 499, Gate: GateExact},
	}, nil
}

// knapsackInput is the fixed Table 2-shaped DP instance: two interfaces
// across 30 half-second slots, 4 MB demand, 4 KiB quantum.
func knapsackInput() (bw [][]float64, cost []float64, slot time.Duration, S, q int64) {
	const slots = 30
	bw = make([][]float64, 2)
	for i := range bw {
		bw[i] = make([]float64, slots)
		for j := 0; j < slots; j++ {
			bw[i][j] = 2e6 + float64((i+1)*(j%7))*300e3
		}
	}
	return bw, []float64{1, 5}, 500 * time.Millisecond, 4_000_000, 4096
}

func setupKnapsack(Config) (func(), error) {
	bw, cost, slot, S, q := knapsackInput()
	return func() {
		if _, err := core.MinCostSchedule(bw, cost, slot, S, q); err != nil {
			panic(err)
		}
	}, nil
}

func knapsackDomain(Config) ([]Metric, error) {
	bw, cost, slot, S, q := knapsackInput()
	plan, err := core.MinCostSchedule(bw, cost, slot, S, q)
	if err != nil {
		return nil, err
	}
	feasible := 0.0
	if plan.Feasible {
		feasible = 1
	}
	return []Metric{
		{Name: "plan_cost", Value: plan.Cost, Gate: GateExact},
		{Name: "cheap_iface_bytes", Value: plan.Bytes[0], Gate: GateExact},
		{Name: "feasible", Value: feasible, Gate: GateExact},
	}, nil
}

// setupHandleLookup measures the metric-handle acquisition path exactly
// as instrumented code hits it when re-resolving a labeled series:
// label-map literal, canonical render, registry lookup, counter add.
func setupHandleLookup(Config) (func(), error) {
	r := obs.NewRegistry()
	// Pre-register so the measured path is the steady-state lookup, not
	// first-use registration.
	r.Counter("mpdash_path_bytes_total", "bench", obs.Labels{"path": "wifi"})
	r.Counter("mpdash_path_bytes_total", "bench", obs.Labels{"path": "lte"})
	return func() {
		r.Counter("mpdash_path_bytes_total", "bench", obs.Labels{"path": "wifi"}).Add(1)
	}, nil
}

func setupHistogramObserve(Config) (func(), error) {
	r := obs.NewRegistry()
	h := r.Histogram("mpdash_chunk_duration_seconds", "bench", obs.DefSecondsBuckets, nil)
	i := 0
	return func() {
		for k := 0; k < observeInner; k++ {
			h.Observe(float64(i%40) * 0.02)
			i++
		}
	}, nil
}

// obsDomain pins down the exposition contract: fixed samples in, exact
// quantile estimates and byte-exact Prometheus rendering out.
func obsDomain(Config) ([]Metric, error) {
	r := obs.NewRegistry()
	c := r.Counter("bench_ops_total", "Ops.", obs.Labels{"kind": "domain"})
	h := r.Histogram("bench_seconds", "Durations.", obs.DefSecondsBuckets, nil)
	for i := 0; i < 1000; i++ {
		c.Inc()
		h.Observe(float64(i%40) * 0.02)
	}
	var sb countingWriter
	if err := r.WritePrometheus(&sb); err != nil {
		return nil, err
	}
	return []Metric{
		{Name: "quantile_p50_s", Value: h.Quantile(0.50), Gate: GateExact},
		{Name: "quantile_p99_s", Value: h.Quantile(0.99), Gate: GateExact},
		{Name: "exposition_bytes", Value: float64(sb.n), Gate: GateExact},
	}, nil
}

// setupTraceDisabled measures the tracing call sites exactly as the
// fetch hot path hits them with tracing off: every method on the nil
// Tracer/Trace/Span handles must collapse to a pointer check. The
// baseline records 0 allocs/op, which benchgate holds as an exact
// zero-alloc contract.
func setupTraceDisabled(Config) (func(), error) {
	var tr *obs.Tracer
	return func() {
		for k := 0; k < traceInner; k++ {
			t := tr.StartTrace(0, k, 1)
			t.SetDeadline(time.Second)
			sp := t.StartSpan(obs.CatFetch, "fetch")
			sp.SetPath("wifi")
			sp.SetNum("size", 1)
			sp.End()
			t.Event(obs.CatRequeue, "requeue")
			t.Finish(obs.TraceOK)
		}
	}, nil
}

// traceChunkOp performs one synthetic chunk fetch — segment-sized FNV
// sweeps standing in for payload verification — traced through tr when
// non-nil. The compute dwarfs the tracing calls the way a real network
// fetch does, so the enabled-vs-disabled delta is a representative
// per-chunk overhead fraction.
func traceChunkOp(tr *obs.Tracer, buf []byte, chunk int) uint64 {
	const segs = 4
	t := tr.StartTrace(0, chunk, 1)
	t.SetDeadline(time.Second)
	fsp := t.StartSpan(obs.CatFetch, "fetch")
	fsp.SetNum("size", float64(len(buf)))
	var sum uint64 = 14695981039346656037
	segLen := len(buf) / segs
	for s := 0; s < segs; s++ {
		ssp := t.StartSpan(obs.CatSegment, "segment")
		ssp.SetPath("wifi")
		ssp.SetNum("seg", float64(s))
		for _, c := range buf[s*segLen : (s+1)*segLen] {
			sum = (sum ^ uint64(c)) * 1099511628211
		}
		ssp.End()
	}
	fsp.End()
	t.Finish(obs.TraceOK)
	return sum
}

func traceBenchBuf() []byte {
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	return buf
}

// setupTraceChunk measures the traced chunk op with tracing enabled at
// head rate 0: healthy traces are dropped at Finish, so the kept set
// stays empty however long the benchmark runs.
func setupTraceChunk(Config) (func(), error) {
	tr := obs.NewTracer(obs.TraceConfig{HeadSampleRate: 0, Seed: 1})
	buf := traceBenchBuf()
	i := 0
	var sink uint64
	return func() {
		sink += traceChunkOp(tr, buf, i)
		i++
		_ = sink
	}, nil
}

// traceDomain pins the sampler's deterministic contract and holds the
// tracing-overhead bound: every bad trace kept, head sampling exactly
// reproducible from the seed, and the traced chunk op within 15% of the
// untraced one (trace_overhead_ok is 1 when the bound holds; the gate
// fails any run where the median trial says 0).
func traceDomain(Config) ([]Metric, error) {
	tr := obs.NewTracer(obs.TraceConfig{HeadSampleRate: 0.1, Seed: 42})
	for i := 0; i < 1000; i++ {
		t := tr.StartTrace(0, i, 1)
		if i%10 == 0 {
			t.SetDeadline(time.Millisecond)
			t.SetOverrun(time.Millisecond)
			t.Finish(obs.TraceMissed)
		} else {
			t.Finish(obs.TraceOK)
		}
	}
	st := tr.Stats()

	buf := traceBenchBuf()
	var sink uint64
	plain := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += traceChunkOp(nil, buf, i)
		}
	})
	etr := obs.NewTracer(obs.TraceConfig{HeadSampleRate: 0, Seed: 1})
	traced := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += traceChunkOp(etr, buf, i)
		}
	})
	_ = sink
	overhead := 0.0
	if plainNs := float64(plain.T.Nanoseconds()) / float64(plain.N); plainNs > 0 {
		tracedNs := float64(traced.T.Nanoseconds()) / float64(traced.N)
		overhead = (tracedNs - plainNs) / plainNs
	}
	ok := 0.0
	if overhead <= 0.15 {
		ok = 1
	}
	return []Metric{
		{Name: "kept_bad", Value: float64(st.KeptBad), Gate: GateExact},
		{Name: "kept_sampled", Value: float64(st.KeptSampled), Gate: GateExact},
		{Name: "dropped", Value: float64(st.Dropped), Gate: GateExact},
		{Name: "trace_overhead_frac", Value: overhead, Gate: GateInfo},
		{Name: "trace_overhead_ok", Value: ok, Gate: GateMin},
	}, nil
}

// countingWriter counts bytes without keeping them.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
