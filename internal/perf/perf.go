// Package perf is the continuous performance benchmarking harness: a
// fixed, deterministic suite of micro and macro scenarios over the
// repo's hot paths — the core scheduler tick (Algorithm 1 decision
// loop), the Holt-Winters update, the offline knapsack DP, the obs
// metric-handle hot path, a real-socket single-session fetch over
// loopback, and a multi-session swarm — measured with repeated trials
// and written to versioned BENCH_core.json / BENCH_netmp.json files
// that cmd/mpdash-benchgate diffs against the checked-in
// BENCH_baseline.json.
//
// Two measurement classes:
//
//   - Micro scenarios run under testing.Benchmark and report ns/op,
//     B/op and allocs/op (min and median across trials; min is the
//     robust noise-damped estimator the gate compares).
//   - Macro scenarios run real sockets once per trial and report
//     wall-clock ns/op over their unit of work plus domain metrics
//     (deadline-miss rate, cellular-byte share, ledger violations...).
//
// Every domain metric carries its own gate policy (exact, max, min, or
// info) so the comparison knows which movements are regressions. All
// domain-metric time measurement routes through the injectable
// netmp.Clock — never time.Now() — so frozen-clock tests are exact, and
// exact-gated metrics are verified identical across trials at run time
// (a determinism violation fails the run rather than producing an
// unstable baseline).
package perf

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mpdash/internal/netmp"
)

// Version is the BENCH_*.json schema version; benchgate refuses to
// compare across versions.
const Version = 1

// SlowdownEnv is a test-only knob: setting it to a fraction (e.g.
// "0.3") injects that much synthetic extra work into the scheduler-tick
// micro bench, so the regression gate's trip wire can be verified end
// to end without editing code.
const SlowdownEnv = "MPDASH_PERF_SLOWDOWN"

// Gate policies for domain metrics.
const (
	// GateExact fails on any change — the metric is deterministic.
	GateExact = "exact"
	// GateMax fails when fresh > base*(1+Tol)+Abs (lower is better).
	GateMax = "max"
	// GateMin fails when fresh < base*(1-Tol)-Abs (higher is better).
	GateMin = "min"
	// GateInfo is never gated; recorded for trend-watching only.
	GateInfo = "info"
)

// Metric is one domain metric with its gate policy attached, so the
// baseline itself documents how each number may move.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Gate is one of GateExact, GateMax, GateMin, GateInfo.
	Gate string `json:"gate"`
	// Tol is the relative tolerance for max/min gates (fraction).
	Tol float64 `json:"tol,omitempty"`
	// Abs is the absolute slack for max/min gates.
	Abs float64 `json:"abs,omitempty"`
}

// Stat is one measured quantity's min and median across trials.
type Stat struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
}

func statOf(xs []float64) *Stat {
	if len(xs) == 0 {
		return nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	med := s[len(s)/2]
	if len(s)%2 == 0 {
		med = (s[len(s)/2-1] + s[len(s)/2]) / 2
	}
	return &Stat{Min: s[0], Median: med}
}

// Bench is one scenario's result. Micro scenarios carry all three
// standard stats; macro scenarios carry NsOp only (their allocation
// profile is dominated by goroutine and socket machinery, which is not
// a meaningful gate) plus domain metrics.
type Bench struct {
	Name     string   `json:"name"`
	NsOp     *Stat    `json:"ns_op,omitempty"`
	BOp      *Stat    `json:"b_op,omitempty"`
	AllocsOp *Stat    `json:"allocs_op,omitempty"`
	Metrics  []Metric `json:"metrics,omitempty"`
}

// metric returns the named domain metric, or nil.
func (b *Bench) metric(name string) *Metric {
	for i := range b.Metrics {
		if b.Metrics[i].Name == name {
			return &b.Metrics[i]
		}
	}
	return nil
}

// Env is the environment fingerprint stamped into every result file.
// Time comparisons across differing fingerprints are inherently noisy,
// so the gate relaxes its time tolerance when fingerprints differ (see
// GateOptions.FingerprintSlack); allocation and exact domain gates are
// machine-independent and stay strict.
type Env struct {
	GoVersion  string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPU        string `json:"cpu,omitempty"`
}

// CaptureEnv fingerprints the running environment.
func CaptureEnv() Env {
	return Env{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPU:        cpuModel(),
	}
}

// cpuModel best-effort reads the CPU model name (Linux /proc/cpuinfo).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// Comparable reports whether time measurements against o are
// apples-to-apples: same Go, OS, architecture, CPU count and model.
func (e Env) Comparable(o Env) bool {
	return e.GoVersion == o.GoVersion && e.GOOS == o.GOOS && e.GOARCH == o.GOARCH &&
		e.NumCPU == o.NumCPU && e.CPU == o.CPU
}

// String renders the fingerprint on one line.
func (e Env) String() string {
	cpu := e.CPU
	if cpu == "" {
		cpu = "unknown-cpu"
	}
	return fmt.Sprintf("%s %s/%s %d-cpu (GOMAXPROCS %d) %s",
		e.GoVersion, e.GOOS, e.GOARCH, e.NumCPU, e.GOMAXPROCS, cpu)
}

// SuiteResult is one suite's full run — the BENCH_<suite>.json payload.
type SuiteResult struct {
	Version int     `json:"version"`
	Suite   string  `json:"suite"`
	Env     Env     `json:"env"`
	Trials  int     `json:"trials"`
	Benches []Bench `json:"benches"`
}

// bench returns the named bench result, or nil.
func (s *SuiteResult) bench(name string) *Bench {
	for i := range s.Benches {
		if s.Benches[i].Name == name {
			return &s.Benches[i]
		}
	}
	return nil
}

// MetricValue returns the named domain metric of the named bench, when
// the suite recorded it. Used by benchgate's absolute-floor flags (e.g.
// -min-throughput against netmp_swarm's throughput_chunks_per_s).
func (s *SuiteResult) MetricValue(bench, metric string) (float64, bool) {
	if s == nil {
		return 0, false
	}
	b := s.bench(bench)
	if b == nil {
		return 0, false
	}
	m := b.metric(metric)
	if m == nil {
		return 0, false
	}
	return m.Value, true
}

// Baseline is the checked-in BENCH_baseline.json: one SuiteResult per
// suite, refreshed via `go run ./cmd/mpdash-benchgate -update`.
type Baseline struct {
	Version int                     `json:"version"`
	Note    string                  `json:"note,omitempty"`
	Suites  map[string]*SuiteResult `json:"suites"`
}

// Config parameterizes a suite run.
type Config struct {
	// Trials is the repeated-trial count (default 3). The gate compares
	// min-of-trials for times (robust against scheduling noise) and
	// median for allocations.
	Trials int
	// BenchTime is the per-trial measuring time of micro scenarios, in
	// testing -benchtime syntax (default "300ms").
	BenchTime string
	// Clock supplies wall time for every domain-metric computation and
	// macro wall measurement (nil = time.Now via netmp.Clock). Frozen
	// clocks make macro ns/op collapse to zero while domain byte/count
	// metrics stay exact — the determinism contract tests rely on.
	Clock netmp.Clock
	// Quick shrinks the macro scenarios (fewer chunks, fewer sessions)
	// so unit tests finish fast. Quick results are NOT comparable to
	// full-size baselines; benchgate never sets it.
	Quick bool
	// Logf receives progress lines (nil = silent).
	Logf func(format string, a ...any)
}

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 3
	}
	return c.Trials
}

func (c Config) benchTime() string {
	if c.BenchTime == "" {
		return "300ms"
	}
	return c.BenchTime
}

func (c Config) logf(format string, a ...any) {
	if c.Logf != nil {
		c.Logf(format, a...)
	}
}

// scenario is one suite entry. Micro scenarios define setup (returning
// the op closure run b.N times) and optionally domain, a fixed-work
// deterministic side run producing domain metrics. Macro scenarios
// define run, one full trial returning wall time, op count and domain
// metrics.
type scenario struct {
	name string
	// inner is the micro batch size: each measured op executes the
	// closure once, which performs inner logical operations; reported
	// stats are divided by inner.
	inner  int
	setup  func(cfg Config) (func(), error)
	domain func(cfg Config) ([]Metric, error)
	run    func(cfg Config) (wall time.Duration, ops int, metrics []Metric, err error)
}

// Suites lists the suite names in run order.
func Suites() []string { return []string{"core", "netmp"} }

// suiteScenarios maps a suite name to its fixed scenario list.
func suiteScenarios(suite string) ([]*scenario, error) {
	switch suite {
	case "core":
		return coreScenarios(), nil
	case "netmp":
		return netmpScenarios(), nil
	}
	return nil, fmt.Errorf("perf: unknown suite %q (have %s)", suite, strings.Join(Suites(), ", "))
}

// benchTimeOnce wires testing.Benchmark's -test.benchtime knob exactly
// once per process: testing.Init is idempotent, and the flag must not
// be re-set concurrently with a running benchmark.
var benchTimeOnce sync.Once

func setBenchTime(d string) error {
	var err error
	benchTimeOnce.Do(func() {
		testing.Init()
		err = flag.Set("test.benchtime", d)
	})
	return err
}

// RunSuite executes the named suite under cfg.
func RunSuite(suite string, cfg Config) (*SuiteResult, error) {
	scs, err := suiteScenarios(suite)
	if err != nil {
		return nil, err
	}
	if err := setBenchTime(cfg.benchTime()); err != nil {
		return nil, fmt.Errorf("perf: benchtime %q: %w", cfg.benchTime(), err)
	}
	res := &SuiteResult{Version: Version, Suite: suite, Env: CaptureEnv(), Trials: cfg.trials()}
	for _, sc := range scs {
		cfg.logf("perf: %s/%s (%d trials)\n", suite, sc.name, cfg.trials())
		b, err := runScenario(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("perf: %s/%s: %w", suite, sc.name, err)
		}
		res.Benches = append(res.Benches, *b)
	}
	return res, nil
}

func runScenario(sc *scenario, cfg Config) (*Bench, error) {
	b := &Bench{Name: sc.name}
	var metricTrials [][]Metric
	switch {
	case sc.setup != nil:
		var ns, bs, al []float64
		inner := float64(sc.inner)
		if inner <= 0 {
			inner = 1
		}
		for t := 0; t < cfg.trials(); t++ {
			op, err := sc.setup(cfg)
			if err != nil {
				return nil, err
			}
			r := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					op()
				}
			})
			n := float64(r.N)
			ns = append(ns, float64(r.T.Nanoseconds())/n/inner)
			// Allocation stats use the testing package's own truncating
			// per-op accounting: one-off harness allocations amortized
			// over r.N round to exactly zero instead of leaving a tiny
			// nonzero median that breaks the zero-alloc exact contract.
			bs = append(bs, float64(r.AllocedBytesPerOp())/inner)
			al = append(al, float64(r.AllocsPerOp())/inner)
		}
		b.NsOp, b.BOp, b.AllocsOp = statOf(ns), statOf(bs), statOf(al)
		if sc.domain != nil {
			for t := 0; t < cfg.trials(); t++ {
				ms, err := sc.domain(cfg)
				if err != nil {
					return nil, err
				}
				metricTrials = append(metricTrials, ms)
			}
		}
	case sc.run != nil:
		var ns []float64
		for t := 0; t < cfg.trials(); t++ {
			wall, ops, ms, err := sc.run(cfg)
			if err != nil {
				return nil, err
			}
			if ops <= 0 {
				ops = 1
			}
			ns = append(ns, float64(wall.Nanoseconds())/float64(ops))
			metricTrials = append(metricTrials, ms)
		}
		b.NsOp = statOf(ns)
	default:
		return nil, fmt.Errorf("scenario defines neither setup nor run")
	}
	ms, err := foldMetricTrials(metricTrials)
	if err != nil {
		return nil, err
	}
	b.Metrics = ms
	return b, nil
}

// foldMetricTrials merges per-trial domain metrics: exact-gated metrics
// must be identical across trials (a violation is a determinism bug and
// fails the run); gated and info metrics take the median.
func foldMetricTrials(trials [][]Metric) ([]Metric, error) {
	if len(trials) == 0 {
		return nil, nil
	}
	out := append([]Metric(nil), trials[0]...)
	for i := range out {
		vals := make([]float64, 0, len(trials))
		for t, tr := range trials {
			if i >= len(tr) || tr[i].Name != out[i].Name {
				return nil, fmt.Errorf("trial %d: metric list diverged at %q", t, out[i].Name)
			}
			vals = append(vals, tr[i].Value)
		}
		if out[i].Gate == GateExact {
			for t, v := range vals {
				if v != vals[0] {
					return nil, fmt.Errorf("exact metric %q not deterministic: trial 0 %v vs trial %d %v",
						out[i].Name, vals[0], t, v)
				}
			}
			continue
		}
		out[i].Value = statOf(vals).Median
	}
	return out, nil
}

// ---- persistence ----

// SuiteFileName returns the conventional per-suite result file name
// (BENCH_core.json, BENCH_netmp.json).
func SuiteFileName(suite string) string { return "BENCH_" + suite + ".json" }

// WriteSuite writes one suite result, indented, to path.
func (s *SuiteResult) WriteSuite(path string) error {
	return writeJSON(path, s)
}

// LoadSuite reads a BENCH_<suite>.json and validates its version.
func LoadSuite(path string) (*SuiteResult, error) {
	var s SuiteResult
	if err := readJSON(path, &s); err != nil {
		return nil, err
	}
	if s.Version != Version {
		return nil, fmt.Errorf("perf: %s: schema version %d, want %d", path, s.Version, Version)
	}
	if s.Suite == "" || len(s.Benches) == 0 {
		return nil, fmt.Errorf("perf: %s: missing suite name or benches", path)
	}
	return &s, nil
}

// WriteBaseline writes the combined baseline, indented, to path.
func (b *Baseline) WriteBaseline(path string) error {
	return writeJSON(path, b)
}

// LoadBaseline reads and validates a BENCH_baseline.json.
func LoadBaseline(path string) (*Baseline, error) {
	var b Baseline
	if err := readJSON(path, &b); err != nil {
		return nil, err
	}
	if b.Version != Version {
		return nil, fmt.Errorf("perf: %s: schema version %d, want %d", path, b.Version, Version)
	}
	if len(b.Suites) == 0 {
		return nil, fmt.Errorf("perf: %s: baseline has no suites", path)
	}
	for name, s := range b.Suites {
		if s == nil || len(s.Benches) == 0 {
			return nil, fmt.Errorf("perf: %s: suite %q is empty", path, name)
		}
	}
	return &b, nil
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: encode %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("perf: write: %w", err)
	}
	return nil
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("perf: read: %w", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("perf: decode %s: %w", path, err)
	}
	return nil
}
