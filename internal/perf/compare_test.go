package perf

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mpdash/internal/audit"
	"mpdash/internal/swarm"
)

func stat(v float64) *Stat { return &Stat{Min: v, Median: v} }

// makeSuite builds a one-bench suite with the given standard stats and
// domain metrics.
func makeSuite(ns, bop, allocs float64, metrics ...Metric) *SuiteResult {
	return &SuiteResult{
		Version: Version, Suite: "core", Env: CaptureEnv(), Trials: 1,
		Benches: []Bench{{
			Name: "bench_a", NsOp: stat(ns), BOp: stat(bop), AllocsOp: stat(allocs),
			Metrics: metrics,
		}},
	}
}

func findRow(rows []DiffRow, bench, metric string) *DiffRow {
	for i := range rows {
		if rows[i].Bench == bench && rows[i].Metric == metric {
			return &rows[i]
		}
	}
	return nil
}

func TestCompareTimeRegression(t *testing.T) {
	base := makeSuite(100, 0, 0)
	fresh := makeSuite(130, 0, 0) // +30% > 15% tolerance
	rows, ok := CompareSuites(base, fresh, GateOptions{})
	if ok {
		t.Fatal("30% slowdown passed the 15% gate")
	}
	r := findRow(rows, "bench_a", "ns/op")
	if r == nil || r.Verdict != VerdictFail {
		t.Fatalf("ns/op row: %+v", r)
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	base := makeSuite(100, 64, 2)
	fresh := makeSuite(40, 16, 1) // faster and leaner
	rows, ok := CompareSuites(base, fresh, GateOptions{})
	if !ok {
		t.Fatalf("improvement failed the gate: %+v", rows)
	}
	if r := findRow(rows, "bench_a", "allocs/op"); r.Delta() >= 0 {
		t.Fatalf("allocs delta %v, want negative", r.Delta())
	}
}

func TestCompareToleranceBoundary(t *testing.T) {
	// 0.25 is exact in binary, so the boundary arithmetic is precise:
	// limit = 100 * 1.25 = 125.
	opts := GateOptions{TimeTol: 0.25}
	if _, ok := CompareSuites(makeSuite(100, 0, 0), makeSuite(125, 0, 0), opts); !ok {
		t.Fatal("exactly-at-limit must pass (gate is fresh > limit)")
	}
	if _, ok := CompareSuites(makeSuite(100, 0, 0), makeSuite(125.01, 0, 0), opts); ok {
		t.Fatal("just-over-limit must fail")
	}
}

func TestCompareZeroAllocContract(t *testing.T) {
	base := makeSuite(100, 0, 0)
	fresh := makeSuite(100, 8, 1) // any alloc on a zero-alloc path fails
	rows, ok := CompareSuites(base, fresh, GateOptions{AllocTol: 10, ByteTol: 10})
	if ok {
		t.Fatal("zero-alloc contract not enforced")
	}
	r := findRow(rows, "bench_a", "allocs/op")
	if r == nil || r.Verdict != VerdictFail || !strings.Contains(r.Note, "zero-alloc") {
		t.Fatalf("allocs/op row: %+v", r)
	}
}

func TestCompareMissingMetric(t *testing.T) {
	base := makeSuite(100, 0, 0,
		Metric{Name: "gated", Value: 5, Gate: GateExact},
		Metric{Name: "fyi", Value: 1, Gate: GateInfo})
	fresh := makeSuite(100, 0, 0) // both metrics gone
	rows, ok := CompareSuites(base, fresh, GateOptions{})
	if ok {
		t.Fatal("missing gated metric passed")
	}
	if r := findRow(rows, "bench_a", "gated"); r == nil || r.Verdict != VerdictFail {
		t.Fatalf("gated row: %+v", r)
	}
	if r := findRow(rows, "bench_a", "fyi"); r != nil {
		t.Fatalf("missing info metric must not produce a row, got %+v", r)
	}
}

func TestCompareMissingAndNewBench(t *testing.T) {
	base := makeSuite(100, 0, 0)
	fresh := &SuiteResult{Version: Version, Suite: "core", Env: CaptureEnv(), Trials: 1,
		Benches: []Bench{{Name: "bench_b", NsOp: stat(1)}}}
	rows, ok := CompareSuites(base, fresh, GateOptions{})
	if ok {
		t.Fatal("bench missing from fresh run passed")
	}
	if r := findRow(rows, "bench_a", "(bench)"); r == nil || r.Verdict != VerdictFail {
		t.Fatalf("missing bench row: %+v", r)
	}
	if r := findRow(rows, "bench_b", "(bench)"); r == nil || r.Verdict != VerdictNew {
		t.Fatalf("new bench row: %+v", r)
	}
}

func TestCompareGateSemantics(t *testing.T) {
	base := makeSuite(100, 0, 0,
		Metric{Name: "x", Value: 10, Gate: GateExact},
		Metric{Name: "hi", Value: 0.10, Gate: GateMax, Abs: 0.05},
		Metric{Name: "lo", Value: 60, Gate: GateMin, Abs: 4},
		Metric{Name: "fyi", Value: 7, Gate: GateInfo})

	good := makeSuite(100, 0, 0,
		Metric{Name: "x", Value: 10, Gate: GateExact},
		Metric{Name: "hi", Value: 0.14, Gate: GateMax, Abs: 0.05}, // ≤ 0.15
		Metric{Name: "lo", Value: 57, Gate: GateMin, Abs: 4},      // ≥ 56
		Metric{Name: "fyi", Value: 900, Gate: GateInfo})           // wild but info
	if rows, ok := CompareSuites(base, good, GateOptions{}); !ok {
		t.Fatalf("within-gates run failed: %+v", rows)
	} else if r := findRow(rows, "bench_a", "fyi"); r == nil || r.Verdict != VerdictInfo {
		t.Fatalf("info row: %+v", r)
	}

	for _, bad := range []Metric{
		{Name: "x", Value: 10.000001, Gate: GateExact},
		{Name: "hi", Value: 0.16, Gate: GateMax, Abs: 0.05},
		{Name: "lo", Value: 55, Gate: GateMin, Abs: 4},
	} {
		fresh := makeSuite(100, 0, 0,
			Metric{Name: "x", Value: 10, Gate: GateExact},
			Metric{Name: "hi", Value: 0.10, Gate: GateMax, Abs: 0.05},
			Metric{Name: "lo", Value: 60, Gate: GateMin, Abs: 4},
			Metric{Name: "fyi", Value: 7, Gate: GateInfo})
		m := fresh.Benches[0].metric(bad.Name)
		m.Value = bad.Value
		if _, ok := CompareSuites(base, fresh, GateOptions{}); ok {
			t.Errorf("%s gate did not trip on %v", bad.Name, bad.Value)
		}
	}
}

func TestCompareFingerprintSlack(t *testing.T) {
	base := makeSuite(100, 0, 0)
	fresh := makeSuite(150, 0, 0) // +50%
	fresh.Env.CPU = "some other machine"
	// Env differs: 0.15 × slack 4 = 0.60 tolerance, +50% passes.
	if rows, ok := CompareSuites(base, fresh, GateOptions{}); !ok {
		t.Fatalf("cross-env +50%% failed the slacked gate: %+v", rows)
	}
	// Same env: +50% must fail — and the alloc contract must stay strict
	// even across environments.
	fresh.Env = base.Env
	if _, ok := CompareSuites(base, fresh, GateOptions{}); ok {
		t.Fatal("same-env +50% passed")
	}
	crossAlloc := makeSuite(100, 8, 1)
	crossAlloc.Env.CPU = "some other machine"
	if _, ok := CompareSuites(makeSuite(100, 0, 0), crossAlloc, GateOptions{}); ok {
		t.Fatal("zero-alloc contract relaxed across environments")
	}
}

func TestLoadBaselineRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"corrupt.json":  `{"version": 1, "suites": {`,
		"empty.json":    `{}`,
		"badver.json":   `{"version": 99, "suites": {"core": {"version": 99, "suite": "core", "benches": [{"name": "x"}]}}}`,
		"nosuites.json": `{"version": 1, "suites": {}}`,
		"emptysuite.json": `{"version": 1, "suites": {"core": {"version": 1, "suite": "core",
			"benches": []}}}`,
	}
	for name, content := range cases {
		if _, err := LoadBaseline(write(name, content)); err == nil {
			t.Errorf("%s: LoadBaseline accepted it", name)
		}
	}
	if _, err := LoadBaseline(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("absent file: LoadBaseline accepted it")
	}
	if _, err := LoadSuite(write("partial.json", `{"version": 1, "suite": "", "benches": []}`)); err == nil {
		t.Error("partial suite: LoadSuite accepted it")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	b := &Baseline{Version: Version, Note: "test",
		Suites: map[string]*SuiteResult{"core": makeSuite(100, 0, 0,
			Metric{Name: "m", Value: 3, Gate: GateExact})}}
	if err := b.WriteBaseline(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "test" || got.Suites["core"].Benches[0].metric("m").Value != 3 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestGateSwarm(t *testing.T) {
	good := &swarm.Report{Scenario: "s", Sessions: 64, Completed: 64,
		Chunks: 800, DeadlineMissRate: 0.02}
	if rows, ok := GateSwarm(good, SwarmThresholds{}); !ok {
		t.Fatalf("healthy report failed: %+v", rows)
	}

	for name, rep := range map[string]*swarm.Report{
		"miss rate":   {Scenario: "s", Sessions: 64, Completed: 64, Chunks: 800, DeadlineMissRate: 0.2},
		"ledger":      {Scenario: "s", Sessions: 64, Completed: 64, Chunks: 800, LedgerViolations: 1},
		"panic":       {Scenario: "s", Sessions: 64, Completed: 63, Panicked: 1, Chunks: 800},
		"failed":      {Scenario: "s", Sessions: 64, Completed: 63, Failed: 1, Chunks: 800},
		"unaccounted": {Scenario: "s", Sessions: 64, Completed: 60, Chunks: 800},
		"no traffic":  {Scenario: "s", Sessions: 64, Completed: 64},
	} {
		if _, ok := GateSwarm(rep, SwarmThresholds{}); ok {
			t.Errorf("%s: gate passed", name)
		}
	}

	// Thresholds relax the absolute criteria.
	lax := &swarm.Report{Scenario: "s", Sessions: 64, Completed: 62, Failed: 1,
		TimedOut: 1, Chunks: 800, DeadlineMissRate: 0.2}
	if _, ok := GateSwarm(lax, SwarmThresholds{MaxMissRate: 0.3, MaxFailed: 1, MaxTimedOut: 1}); !ok {
		t.Fatal("relaxed thresholds still failed")
	}
}

func TestGateSwarmMTTR(t *testing.T) {
	base := func() *swarm.Report {
		return &swarm.Report{Scenario: "chaos", Sessions: 64, Completed: 64,
			Chunks: 800, DeadlineMissRate: 0.02,
			Chaos: []swarm.ChaosEventReport{
				{Kind: swarm.ChaosOriginCrash, Recovered: true, MTTRS: 1.2},
				{Kind: swarm.ChaosOriginRestart, Recovered: true, MTTRS: 0.4},
			},
			MTTR: &swarm.Quantiles{P50: 0.8, P95: 1.2}}
	}

	if rows, ok := GateSwarm(base(), SwarmThresholds{MaxMTTRP95: 5}); !ok {
		t.Fatalf("recovered chaos run failed the MTTR gate: %+v", rows)
	}

	// p95 over the bound fails.
	slow := base()
	slow.MTTR.P95 = 9
	if _, ok := GateSwarm(slow, SwarmThresholds{MaxMTTRP95: 5}); ok {
		t.Error("slow recovery passed the MTTR gate")
	}
	// An unrecovered event fails even with fast quantiles.
	unrec := base()
	unrec.Chaos[1].Recovered = false
	if _, ok := GateSwarm(unrec, SwarmThresholds{MaxMTTRP95: 5}); ok {
		t.Error("unrecovered event passed the MTTR gate")
	}
	// No chaos timeline at all fails: the gate demands the events ran.
	empty := base()
	empty.Chaos, empty.MTTR = nil, nil
	if _, ok := GateSwarm(empty, SwarmThresholds{MaxMTTRP95: 5}); ok {
		t.Error("chaos-free report passed the MTTR gate")
	}
	// Quantiles missing while events recovered: still a failure.
	noq := base()
	noq.MTTR = nil
	if _, ok := GateSwarm(noq, SwarmThresholds{MaxMTTRP95: 5}); ok {
		t.Error("report without MTTR quantiles passed the gate")
	}
	// Without the threshold the same reports are not recovery-gated.
	if _, ok := GateSwarm(empty, SwarmThresholds{}); !ok {
		t.Error("chaos-free report failed without an MTTR threshold")
	}
}

func TestGateSwarmAudit(t *testing.T) {
	rep := &swarm.Report{Scenario: "s", Sessions: 64, Completed: 64,
		Chunks: 800, Audit: &audit.Result{Watermark: 10, Settled: 10}}
	if rows, ok := GateSwarm(rep, SwarmThresholds{}); !ok {
		t.Fatalf("clean audited report failed: %+v", rows)
	}
	rep.Audit.Violations = []audit.Violation{{Invariant: audit.InvLeak, Detail: "leak"}}
	if _, ok := GateSwarm(rep, SwarmThresholds{}); ok {
		t.Error("audited report with violations passed")
	}
}

func TestRenderTableAndSummarize(t *testing.T) {
	rows := []DiffRow{
		{Bench: "a", Metric: "ns/op", Base: 100, Fresh: 130, Limit: "≤ 115", Verdict: VerdictFail},
		{Bench: "a", Metric: "allocs/op", Base: 0, Fresh: 0, Limit: "= 0", Verdict: VerdictOK},
		{Bench: "a", Metric: "share", Fresh: 0.2, Verdict: VerdictInfo},
	}
	var sb strings.Builder
	if err := RenderTable(&sb, rows, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"BENCH", "ns/op", "FAIL", "+30.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	var fb strings.Builder
	if err := RenderTable(&fb, rows, true); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fb.String(), "allocs/op") {
		t.Error("failures-only table shows ok rows")
	}
	sum := Summarize(rows)
	if !strings.Contains(sum, "1 ok") || !strings.Contains(sum, "1 FAILED") || !strings.Contains(sum, "1 info") {
		t.Errorf("summary %q", sum)
	}
}
