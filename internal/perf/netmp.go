package perf

// The "netmp" suite: macro scenarios over real sockets on loopback. A
// trial is one full run of the scenario; ns/op is injected-clock wall
// time over the scenario's unit of work (chunks, sessions). Byte and
// count metrics are exact — chunk payloads are deterministic functions
// of (video seed, index, level) — while timing-derived metrics carry
// max/min gates with slack, because loopback scheduling is real.

import (
	"context"
	"errors"
	"testing"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/netmp"
	"mpdash/internal/swarm"
)

func netmpScenarios() []*scenario {
	return []*scenario{
		{name: "netmp_session_fetch", run: runSessionFetch},
		{name: "netmp_swarm", run: runSwarm},
		{name: "netmp_chunk_path", inner: 1, setup: setupChunkPath, domain: chunkPathDomain},
	}
}

// benchVideo is the fixed asset of the single-session scenario.
func benchVideo(chunks int) *dash.Video {
	return &dash.Video{
		Name:          "perf-bench",
		ChunkDuration: 250 * time.Millisecond,
		NumChunks:     chunks,
		SizeSeed:      0x5eed,
		Levels: []dash.Level{
			{ID: 1, AvgBitrateMbps: 1.0},
			{ID: 2, AvgBitrateMbps: 2.5},
		},
	}
}

// runSessionFetch is the real-socket single-session scenario: two
// unshaped loopback origins (one per path), a supervised dual-socket
// fetcher, every chunk fetched at the top level with a generous
// deadline. All wall time routes through cfg.Clock.
func runSessionFetch(cfg Config) (time.Duration, int, []Metric, error) {
	chunks := 24
	if cfg.Quick {
		chunks = 4
	}
	video := benchVideo(chunks)
	level := video.HighestLevel()

	wifi, err := netmp.NewChunkServer(video, 0)
	if err != nil {
		return 0, 0, nil, err
	}
	defer wifi.Close()
	lte, err := netmp.NewChunkServer(video, 0)
	if err != nil {
		return 0, 0, nil, err
	}
	defer lte.Close()

	f, err := netmp.NewFetcher(video, wifi.Addr(), lte.Addr())
	if err != nil {
		return 0, 0, nil, err
	}
	defer f.Close()
	f.SetClock(cfg.Clock)

	var wantBytes, gotBytes, cellBytes int64
	var misses, unverified int
	var retries int64
	start := cfg.Clock.Now()
	for i := 0; i < chunks; i++ {
		wantBytes += video.ChunkSize(i, level)
		res, err := f.FetchChunk(i, level, 2*time.Second)
		if err != nil {
			return 0, 0, nil, err
		}
		gotBytes += res.PrimaryBytes + res.SecondaryBytes
		cellBytes += res.SecondaryBytes
		retries += res.Retries
		if res.MissedBy > 0 {
			misses++
		}
		if !res.Verified {
			unverified++
		}
	}
	wall := cfg.Clock.Now().Sub(start)

	cellShare := 0.0
	if gotBytes > 0 {
		cellShare = float64(cellBytes) / float64(gotBytes)
	}
	metrics := []Metric{
		{Name: "chunks", Value: float64(chunks), Gate: GateExact},
		{Name: "bytes_total", Value: float64(gotBytes), Gate: GateExact},
		{Name: "bytes_expected_delta", Value: float64(gotBytes - wantBytes), Gate: GateExact},
		{Name: "unverified_chunks", Value: float64(unverified), Gate: GateExact},
		{Name: "deadline_miss_rate", Value: float64(misses) / float64(chunks), Gate: GateMax, Abs: 0.25},
		{Name: "cellular_byte_share", Value: cellShare, Gate: GateInfo},
		{Name: "retries", Value: float64(retries), Gate: GateInfo},
	}
	return wall, chunks, metrics, nil
}

// swarmScenario declares the population macro run: a seeded Poisson
// arrival of heterogeneous sessions against a shared loopback tier.
func swarmScenario(quick bool) swarm.Scenario {
	sessions, over := 64, 2*time.Second
	if quick {
		sessions, over = 8, 300*time.Millisecond
	}
	return swarm.Scenario{
		Name:     "perf-bench",
		Sessions: sessions,
		Arrival:  swarm.Arrival{Kind: swarm.ArrivalPoisson, Over: swarm.Duration(over)},
		Seed:     7,
	}
}

// runSwarm is the population scenario: 64 concurrent real-socket
// MP-DASH sessions (8 under Quick). Plan-level quantities (sessions)
// are exact; outcome counters that depend on host scheduling carry
// slack.
func runSwarm(cfg Config) (time.Duration, int, []Metric, error) {
	sw, err := swarm.New(swarmScenario(cfg.Quick))
	if err != nil {
		return 0, 0, nil, err
	}
	start := cfg.Clock.Now()
	rep, err := sw.Run(context.Background())
	if err != nil {
		return 0, 0, nil, err
	}
	wall := cfg.Clock.Now().Sub(start)
	if rep.Sessions == 0 {
		return 0, 0, nil, errors.New("swarm launched no sessions")
	}
	metrics := []Metric{
		{Name: "sessions", Value: float64(rep.Sessions), Gate: GateExact},
		{Name: "ledger_violations", Value: float64(rep.LedgerViolations), Gate: GateExact},
		{Name: "panicked", Value: float64(rep.Panicked), Gate: GateExact},
		{Name: "completed", Value: float64(rep.Completed), Gate: GateMin, Abs: 4},
		{Name: "deadline_miss_rate", Value: rep.DeadlineMissRate, Gate: GateMax, Abs: 0.25},
		{Name: "chunks", Value: float64(rep.Chunks), Gate: GateInfo},
		{Name: "cellular_byte_share", Value: rep.CellularByteShare, Gate: GateInfo},
		{Name: "stalls", Value: float64(rep.Stalls), Gate: GateInfo},
		// Swarm throughput (sessions' chunks landed per wall second): the
		// scale north star. Wide relative tolerance because loopback
		// scheduling varies across hosts; the CI bench job additionally
		// applies an absolute floor via benchgate -min-throughput. Zero
		// under a frozen clock (wall collapses), where it is meaningless
		// and the min gate of a zero baseline never trips.
		{Name: "throughput_chunks_per_s", Value: swarmThroughput(rep.Chunks, wall), Gate: GateMin, Tol: 0.6},
	}
	return wall, rep.Sessions, metrics, nil
}

// swarmThroughput computes chunks landed per wall second, 0 when the
// (possibly frozen) clock measured no elapsed time.
func swarmThroughput(chunks int, wall time.Duration) float64 {
	if s := wall.Seconds(); s > 0 {
		return float64(chunks) / s
	}
	return 0
}

// chunkPathOp composes one pooled per-chunk unit of work: acquire a
// segment buffer, render the range-request line into a reused scratch
// slice, fill-and-verify a body block, release. This is the exact
// composition the fetcher hot path runs per segment, so its allocation
// profile is the steady-state allocs-per-chunk contract.
func chunkPathOp(req *[]byte, bp *[]byte) {
	buf := *bp
	*req = netmp.AppendRangeRequest((*req)[:0], 2, 17, 0, int64(len(buf))-1)
	for i := 0; i < 512; i++ {
		buf[i] = netmp.ChunkBody(17, 2, int64(i))
	}
	for i := 0; i < 512; i++ {
		if buf[i] != netmp.ChunkBody(17, 2, int64(i)) {
			panic("perf: chunk body verify mismatch")
		}
	}
}

// setupChunkPath builds the pooled chunk-path micro op.
func setupChunkPath(cfg Config) (func(), error) {
	req := make([]byte, 0, 160)
	return func() {
		bp := netmp.AcquireSegBuf()
		chunkPathOp(&req, bp)
		netmp.ReleaseSegBuf(bp)
	}, nil
}

// chunkPathDomain measures steady-state allocations per chunk on the
// pooled path with testing.AllocsPerRun. Gated at an absolute ceiling of
// 2 allocs per chunk (the acceptance contract); the expected value is 0.
// GateMax rather than GateExact because the race detector deliberately
// defeats sync.Pool recycling, so race-enabled local runs may observe
// nonzero counts (the CI gate runs without -race).
func chunkPathDomain(cfg Config) ([]Metric, error) {
	req := make([]byte, 0, 160)
	allocs := testing.AllocsPerRun(200, func() {
		bp := netmp.AcquireSegBuf()
		chunkPathOp(&req, bp)
		netmp.ReleaseSegBuf(bp)
	})
	return []Metric{
		{Name: "allocs_per_chunk", Value: allocs, Gate: GateMax, Abs: 2},
	}, nil
}
