package perf

// Comparison: diff a fresh SuiteResult against the checked-in baseline
// and decide pass/fail per metric. The tolerance policy (documented in
// DESIGN.md §11):
//
//   - Times (ns/op) compare min-of-trials against min-of-trials with a
//     relative tolerance (default ±15%). When the environment
//     fingerprints differ, the time tolerance is multiplied by
//     FingerprintSlack — cross-machine wall times are not
//     apples-to-apples, and the alloc and exact gates below carry the
//     regression signal instead.
//   - allocs/op and B/op compare medians. A baseline of exactly zero
//     allocations is a contract, not a measurement: any fresh
//     allocation on a zero-alloc path fails regardless of tolerance.
//   - Domain metrics follow their own recorded gate: exact metrics must
//     be bit-identical, max/min metrics use their recorded Tol/Abs,
//     info metrics are reported but never fail.
//   - A bench or gated metric present in the baseline but missing from
//     the fresh run fails (silent coverage loss); a new bench or metric
//     absent from the baseline is informational until `-update`.

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// GateOptions tunes the comparison.
type GateOptions struct {
	// TimeTol is the relative tolerance on ns/op (default 0.15).
	TimeTol float64
	// AllocTol is the relative tolerance on allocs/op when the baseline
	// is non-zero (default 0.15). A zero baseline is exact.
	AllocTol float64
	// ByteTol is the relative tolerance on B/op when the baseline is
	// non-zero (default 0.15). A zero baseline is exact.
	ByteTol float64
	// FingerprintSlack multiplies TimeTol when env fingerprints differ
	// (default 4). Alloc and exact gates are unaffected.
	FingerprintSlack float64
}

func (o GateOptions) withDefaults() GateOptions {
	if o.TimeTol <= 0 {
		o.TimeTol = 0.15
	}
	if o.AllocTol <= 0 {
		o.AllocTol = 0.15
	}
	if o.ByteTol <= 0 {
		o.ByteTol = 0.15
	}
	if o.FingerprintSlack <= 0 {
		o.FingerprintSlack = 4
	}
	return o
}

// Diff verdicts.
const (
	VerdictOK   = "ok"
	VerdictFail = "FAIL"
	VerdictInfo = "info"
	VerdictNew  = "new"
)

// DiffRow is one compared quantity.
type DiffRow struct {
	Bench   string
	Metric  string
	Base    float64
	Fresh   float64
	Limit   string // human-readable bound that applied
	Verdict string
	Note    string
}

// Delta returns the relative change against the baseline, or 0 when the
// baseline is zero.
func (r DiffRow) Delta() float64 {
	if r.Base == 0 {
		return 0
	}
	return (r.Fresh - r.Base) / r.Base
}

// CompareSuites diffs fresh against base (same suite) and reports rows
// plus overall pass/fail.
func CompareSuites(base, fresh *SuiteResult, opts GateOptions) ([]DiffRow, bool) {
	opts = opts.withDefaults()
	timeTol := opts.TimeTol
	envNote := ""
	if !base.Env.Comparable(fresh.Env) {
		timeTol *= opts.FingerprintSlack
		envNote = "env differs"
	}
	var rows []DiffRow
	ok := true
	fail := func(r DiffRow) {
		r.Verdict = VerdictFail
		rows = append(rows, r)
		ok = false
	}
	pass := func(r DiffRow, verdict string) {
		r.Verdict = verdict
		rows = append(rows, r)
	}

	for _, bb := range base.Benches {
		fb := fresh.bench(bb.Name)
		if fb == nil {
			fail(DiffRow{Bench: bb.Name, Metric: "(bench)", Note: "missing from fresh run"})
			continue
		}
		// ns/op: min vs min, relative tolerance.
		if bb.NsOp != nil && fb.NsOp != nil {
			limit := bb.NsOp.Min * (1 + timeTol)
			r := DiffRow{Bench: bb.Name, Metric: "ns/op", Base: bb.NsOp.Min, Fresh: fb.NsOp.Min,
				Limit: fmt.Sprintf("≤ %.5g", limit), Note: envNote}
			if fb.NsOp.Min > limit {
				fail(r)
			} else {
				pass(r, VerdictOK)
			}
		}
		// allocs/op and B/op: median vs median, zero baseline exact.
		compareCount(bb.Name, "allocs/op", bb.AllocsOp, fb.AllocsOp, opts.AllocTol, fail, pass)
		compareCount(bb.Name, "B/op", bb.BOp, fb.BOp, opts.ByteTol, fail, pass)

		// Domain metrics, per their recorded gate.
		for _, bm := range bb.Metrics {
			fm := fb.metric(bm.Name)
			r := DiffRow{Bench: bb.Name, Metric: bm.Name, Base: bm.Value}
			if fm == nil {
				if bm.Gate == GateInfo {
					continue
				}
				r.Note = "missing from fresh run"
				fail(r)
				continue
			}
			r.Fresh = fm.Value
			switch bm.Gate {
			case GateExact:
				r.Limit = fmt.Sprintf("= %.10g", bm.Value)
				if fm.Value != bm.Value {
					fail(r)
				} else {
					pass(r, VerdictOK)
				}
			case GateMax:
				limit := bm.Value*(1+bm.Tol) + bm.Abs
				r.Limit = fmt.Sprintf("≤ %.5g", limit)
				if fm.Value > limit {
					fail(r)
				} else {
					pass(r, VerdictOK)
				}
			case GateMin:
				limit := bm.Value*(1-bm.Tol) - bm.Abs
				r.Limit = fmt.Sprintf("≥ %.5g", limit)
				if fm.Value < limit {
					fail(r)
				} else {
					pass(r, VerdictOK)
				}
			case GateInfo:
				pass(r, VerdictInfo)
			default:
				r.Note = fmt.Sprintf("unknown gate %q in baseline", bm.Gate)
				fail(r)
			}
		}
		// Fresh metrics the baseline has never seen.
		for _, fm := range fb.Metrics {
			if bb.metric(fm.Name) == nil {
				pass(DiffRow{Bench: bb.Name, Metric: fm.Name, Fresh: fm.Value,
					Note: "not in baseline (run -update to adopt)"}, VerdictNew)
			}
		}
	}
	// Fresh benches the baseline has never seen.
	for _, fb := range fresh.Benches {
		if base.bench(fb.Name) == nil {
			pass(DiffRow{Bench: fb.Name, Metric: "(bench)",
				Note: "not in baseline (run -update to adopt)"}, VerdictNew)
		}
	}
	return rows, ok
}

// compareCount gates an allocation-class stat (allocs/op or B/op):
// median vs median, relative tolerance, and the zero-baseline contract.
func compareCount(bench, name string, base, fresh *Stat, tol float64,
	fail func(DiffRow), pass func(DiffRow, string)) {
	if base == nil || fresh == nil {
		return
	}
	r := DiffRow{Bench: bench, Metric: name, Base: base.Median, Fresh: fresh.Median}
	if base.Median == 0 {
		r.Limit = "= 0"
		if fresh.Median != 0 {
			r.Note = "zero-alloc contract broken"
			fail(r)
			return
		}
		pass(r, VerdictOK)
		return
	}
	limit := base.Median * (1 + tol)
	r.Limit = fmt.Sprintf("≤ %.5g", limit)
	if fresh.Median > limit {
		fail(r)
		return
	}
	pass(r, VerdictOK)
}

// RenderTable writes the diff as an aligned human-readable table. When
// failuresOnly is set, ok rows are elided (info/new/FAIL stay).
func RenderTable(w io.Writer, rows []DiffRow, failuresOnly bool) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "BENCH\tMETRIC\tBASE\tFRESH\tΔ\tLIMIT\tVERDICT\tNOTE")
	shown := 0
	for _, r := range rows {
		if failuresOnly && r.Verdict == VerdictOK {
			continue
		}
		shown++
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Bench, r.Metric, formatNum(r.Base), formatNum(r.Fresh),
			formatDelta(r), r.Limit, r.Verdict, r.Note)
	}
	if shown == 0 {
		fmt.Fprintln(tw, "(all rows ok)\t\t\t\t\t\t\t")
	}
	return tw.Flush()
}

func formatNum(v float64) string {
	if v == 0 {
		return "0"
	}
	s := fmt.Sprintf("%.4g", v)
	return s
}

func formatDelta(r DiffRow) string {
	if r.Base == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*r.Delta())
}

// Summarize counts verdicts for the one-line footer.
func Summarize(rows []DiffRow) string {
	var ok, fail, info, nw int
	for _, r := range rows {
		switch r.Verdict {
		case VerdictFail:
			fail++
		case VerdictInfo:
			info++
		case VerdictNew:
			nw++
		default:
			ok++
		}
	}
	var parts []string
	parts = append(parts, fmt.Sprintf("%d ok", ok))
	if fail > 0 {
		parts = append(parts, fmt.Sprintf("%d FAILED", fail))
	}
	if info > 0 {
		parts = append(parts, fmt.Sprintf("%d info", info))
	}
	if nw > 0 {
		parts = append(parts, fmt.Sprintf("%d new", nw))
	}
	return strings.Join(parts, ", ")
}
