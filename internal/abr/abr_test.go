package abr

import (
	"testing"
	"time"

	"mpdash/internal/dash"
)

// state builds a PlayerState for unit tests.
func state(video *dash.Video, last int, buffer time.Duration, throughputs []float64, transport float64) dash.PlayerState {
	return dash.PlayerState{
		ChunkIndex:           len(throughputs),
		LastLevel:            last,
		Buffer:               buffer,
		BufferCap:            dash.DefaultBufferCap,
		Video:                video,
		ChunkThroughputs:     throughputs,
		TransportEstimateBps: transport,
	}
}

func TestGPACSelectsHighestBelowEstimate(t *testing.T) {
	v := dash.BigBuckBunny()
	g := NewGPAC()
	if got := g.SelectLevel(state(v, -1, 0, nil, 0)); got != 0 {
		t.Errorf("startup level = %d, want 0", got)
	}
	// Last chunk ran at 3.0 Mbps → level index 3 (2.41 Mbps).
	if got := g.SelectLevel(state(v, 2, 20*time.Second, []float64{3.0e6}, 0)); got != 3 {
		t.Errorf("level = %d, want 3", got)
	}
	// Estimate below the lowest rung still returns 0.
	if got := g.SelectLevel(state(v, 2, 20*time.Second, []float64{0.1e6}, 0)); got != 0 {
		t.Errorf("level = %d, want 0", got)
	}
	// Transport override dominates the player's own estimate (§5.2.1).
	if got := g.SelectLevel(state(v, 2, 20*time.Second, []float64{0.1e6}, 4.5e6)); got != 4 {
		t.Errorf("override level = %d, want 4", got)
	}
	if g.Name() != "GPAC" {
		t.Error("bad name")
	}
}

func TestFESTIVEStartsLow(t *testing.T) {
	v := dash.BigBuckBunny()
	f := NewFESTIVE()
	if got := f.SelectLevel(state(v, -1, 0, nil, 0)); got != 0 {
		t.Errorf("startup = %d", got)
	}
}

func TestFESTIVEGradualUpSwitch(t *testing.T) {
	v := dash.BigBuckBunny()
	f := NewFESTIVE()
	// Plenty of bandwidth: 10 Mbps. From level 0 the climb must be one
	// rung at a time, with longer dwells at higher rungs.
	tps := []float64{10e6, 10e6, 10e6}
	cur := 0
	var path []int
	for i := 0; i < 20; i++ {
		next := f.SelectLevel(state(v, cur, 20*time.Second, tps, 0))
		if next > cur+1 {
			t.Fatalf("jumped %d -> %d", cur, next)
		}
		path = append(path, next)
		cur = next
	}
	if cur != v.HighestLevel() {
		t.Errorf("did not reach top rung: path %v", path)
	}
}

func TestFESTIVEFastDownSwitch(t *testing.T) {
	v := dash.BigBuckBunny()
	f := NewFESTIVE()
	// At level 4 with collapsed bandwidth, the first decision already
	// steps down (one rung per chunk).
	got := f.SelectLevel(state(v, 4, 20*time.Second, []float64{0.6e6}, 0))
	if got != 3 {
		t.Errorf("down-switch = %d, want 3", got)
	}
}

func TestFESTIVEHarmonicMeanRobustToSpike(t *testing.T) {
	v := dash.BigBuckBunny()
	f := NewFESTIVE()
	// 19 samples at 1 Mbps and one 100 Mbps outlier: harmonic mean stays
	// near 1 Mbps, so a level-1 player must not up-switch.
	tps := make([]float64, 19)
	for i := range tps {
		tps[i] = 1e6
	}
	tps = append(tps, 100e6)
	for i := 0; i < 5; i++ {
		if got := f.SelectLevel(state(v, 1, 20*time.Second, tps, 0)); got > 1 {
			t.Fatalf("spike fooled FESTIVE into level %d", got)
		}
	}
}

func TestBBAMapMonotone(t *testing.T) {
	v := dash.BigBuckBunny()
	b := NewBBA()
	prev := -1.0
	for sec := 0; sec <= 40; sec += 2 {
		r := b.mapRate(state(v, 2, time.Duration(sec)*time.Second, nil, 0))
		if r < prev {
			t.Fatalf("map not monotone at %ds: %v < %v", sec, r, prev)
		}
		prev = r
	}
	// Extremes.
	if r := b.mapRate(state(v, 2, 0, nil, 0)); r != v.Levels[0].AvgBitrateMbps*1e6 {
		t.Errorf("empty-buffer rate = %v", r)
	}
	if r := b.mapRate(state(v, 2, 40*time.Second, nil, 0)); r != v.Levels[4].AvgBitrateMbps*1e6 {
		t.Errorf("full-buffer rate = %v", r)
	}
}

func TestBBALevelLowerBufferOrdering(t *testing.T) {
	v := dash.BigBuckBunny()
	b := NewBBA()
	st := state(v, 2, 20*time.Second, nil, 0)
	prev := time.Duration(-1)
	for l := 0; l <= v.HighestLevel(); l++ {
		el := b.LevelLowerBuffer(st, l)
		if el < prev {
			t.Fatalf("e_l not monotone at level %d: %v < %v", l, el, prev)
		}
		if el < 0 || el > st.BufferCap {
			t.Fatalf("e_l out of range: %v", el)
		}
		prev = el
	}
	if b.LevelLowerBuffer(st, 0) != 0 {
		t.Error("lowest level e_l should be 0")
	}
}

func TestBBASteadyHysteresis(t *testing.T) {
	v := dash.BigBuckBunny()
	b := NewBBA()
	b.started = true
	// Mid buffer (22s with cap 40, reservoir 8, upper 36): f(B) = 0.58 +
	// 14/28*(3.94-0.58) = 2.26 Mbps. At level 2 (1.47) the next rung up
	// is 2.41 > 2.26 → hold.
	if got := b.SelectLevel(state(v, 2, 22*time.Second, nil, 0)); got != 2 {
		t.Errorf("hold level = %d, want 2", got)
	}
	// High buffer (36s): f(B)=3.94 ≥ next rung → jump to map level.
	if got := b.SelectLevel(state(v, 2, 36*time.Second, nil, 0)); got != 4 {
		t.Errorf("up level = %d, want 4", got)
	}
	// Low buffer (9s): f(B)≈0.70 < current 1.47 → drop to map level 0.
	if got := b.SelectLevel(state(v, 2, 9*time.Second, nil, 0)); got != 0 {
		t.Errorf("down level = %d, want 0", got)
	}
}

func TestBBACCapsAtMeasuredThroughput(t *testing.T) {
	v := dash.BigBuckBunny()
	c := NewBBAC()
	c.started = true
	// Full buffer wants level 4 (3.94), but the network delivers only
	// 3.4 Mbps → BBA-C locks to level 3 (2.41), preventing Fig. 3
	// oscillation.
	if got := c.SelectLevel(state(v, 3, 38*time.Second, []float64{3.4e6}, 0)); got != 3 {
		t.Errorf("capped level = %d, want 3", got)
	}
	// Plain BBA would pick 4 here.
	b := NewBBA()
	b.started = true
	if got := b.SelectLevel(state(v, 3, 38*time.Second, []float64{3.4e6}, 0)); got != 4 {
		t.Errorf("uncapped level = %d, want 4", got)
	}
	if c.Name() != "BBA-C" || b.Name() != "BBA" {
		t.Error("names wrong")
	}
}

func TestMPCPrefersSustainableRate(t *testing.T) {
	v := dash.BigBuckBunny()
	m := NewMPC()
	// 3 Mbps prediction, thin buffer: within the horizon level 4 chunks
	// (≈5.3 s downloads) would run the 6 s buffer dry, so MPC must pick a
	// sustainable rung; with ample bandwidth it takes the top rung.
	got := m.SelectLevel(state(v, 3, 6*time.Second, []float64{3e6, 3e6, 3e6}, 0))
	if got > 3 {
		t.Errorf("level = %d, want <= 3", got)
	}
	got = m.SelectLevel(state(v, 4, 20*time.Second, []float64{8e6, 8e6, 8e6}, 0))
	if got != 4 {
		t.Errorf("ample-bandwidth level = %d, want 4", got)
	}
	// Tiny buffer, low rate: MPC must not gamble on a high level.
	got = m.SelectLevel(state(v, 3, 2*time.Second, []float64{1e6}, 0))
	if got > 1 {
		t.Errorf("risky level %d on 1 Mbps with 2s buffer", got)
	}
	if m.Name() != "MPC" {
		t.Error("bad name")
	}
}

func TestMPCStartupAndEmptyHistory(t *testing.T) {
	v := dash.BigBuckBunny()
	m := NewMPC()
	if got := m.SelectLevel(state(v, -1, 0, nil, 0)); got != 0 {
		t.Errorf("startup = %d", got)
	}
	if got := m.SelectLevel(state(v, 2, 10*time.Second, nil, 0)); got != 0 {
		t.Errorf("no-history = %d, want 0", got)
	}
}

func TestMPCDeadlineForOptimalRate(t *testing.T) {
	m := NewMPC()
	meta := dash.ChunkMeta{Size: 1_000_000, NominalBps: 4e6, Duration: 4 * time.Second}
	d := m.DeadlineForOptimalRate(meta)
	if d < 1900*time.Millisecond || d > 2100*time.Millisecond {
		t.Errorf("deadline = %v, want ≈2s", d)
	}
	meta.NominalBps = 0
	if m.DeadlineForOptimalRate(meta) != meta.Duration {
		t.Error("zero-bitrate fallback wrong")
	}
}

func TestDeadlinePolicyString(t *testing.T) {
	if DurationBased.String() != "duration" || RateBased.String() != "rate" {
		t.Error("policy strings wrong")
	}
	if DeadlinePolicy(9).String() == "" {
		t.Error("unknown policy empty")
	}
}
