package abr

import (
	"mpdash/internal/dash"
	"mpdash/internal/stats"
)

// FESTIVE (Jiang et al., CoNEXT'12) is the representative throughput-based
// algorithm of the paper: harmonic-mean bandwidth estimation for outlier
// robustness, an efficiency factor below 1 to avoid oscillation at ladder
// boundaries, and gradual (one-rung, delayed) up-switching for stability.
type FESTIVE struct {
	// HistoryLen is how many chunk throughputs feed the harmonic mean
	// (FESTIVE uses 20).
	HistoryLen int
	// Efficiency is the fraction of the estimate considered usable
	// (FESTIVE's "drop factor"; 0.85 in the original).
	Efficiency float64

	upCount int
}

// NewFESTIVE returns a FESTIVE instance with the original parameters.
func NewFESTIVE() *FESTIVE {
	return &FESTIVE{HistoryLen: 20, Efficiency: 0.85}
}

// Name implements dash.RateAdapter.
func (f *FESTIVE) Name() string { return "FESTIVE" }

// estimate returns the working bandwidth estimate: the transport override
// when MP-DASH exposes one (§5.2.1), else the harmonic mean of recent
// chunk throughputs.
func (f *FESTIVE) estimate(st dash.PlayerState) float64 {
	if st.TransportEstimateBps > 0 {
		return st.TransportEstimateBps
	}
	hist := st.ChunkThroughputs
	if len(hist) > f.HistoryLen {
		hist = hist[len(hist)-f.HistoryLen:]
	}
	return stats.HarmonicMean(hist)
}

// SelectLevel implements dash.RateAdapter: compute the reference level the
// bandwidth supports, then move at most one rung toward it, delaying
// up-switches longer at higher rungs (FESTIVE's gradual switching: a
// player at rung k waits k chunks before stepping up).
func (f *FESTIVE) SelectLevel(st dash.PlayerState) int {
	est := f.estimate(st)
	if st.LastLevel < 0 {
		// Startup: begin at the lowest rung like the original.
		f.upCount = 0
		return 0
	}
	target := st.Video.LevelForThroughput(f.Efficiency * est)
	if target < 0 {
		target = 0
	}
	cur := st.LastLevel
	switch {
	case target > cur:
		f.upCount++
		if f.upCount > cur {
			f.upCount = 0
			return cur + 1
		}
		return cur
	case target < cur:
		f.upCount = 0
		return cur - 1
	default:
		f.upCount = 0
		return cur
	}
}

// OnChunkDone implements dash.RateAdapter.
func (f *FESTIVE) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}
