package abr

import (
	"math/rand"
	"testing"
	"time"

	"mpdash/internal/dash"
)

func TestFastMPCMatchesMPCOnGrid(t *testing.T) {
	v := dash.BigBuckBunny()
	fast := NewFastMPC(v)
	exact := NewMPC()
	rng := rand.New(rand.NewSource(11))
	agree, offByOne, far, total := 0, 0, 0, 0
	for i := 0; i < 300; i++ {
		st := dash.PlayerState{
			ChunkIndex:           v.NumChunks / 2,
			LastLevel:            rng.Intn(len(v.Levels)),
			Buffer:               time.Duration(rng.Float64() * float64(dash.DefaultBufferCap)),
			BufferCap:            dash.DefaultBufferCap,
			Video:                v,
			TransportEstimateBps: 0.5e6 + rng.Float64()*7e6,
		}
		got := fast.SelectLevel(st)
		want := exact.SelectLevel(st)
		total++
		switch d := abs(got - want); {
		case d == 0:
			agree++
		case d == 1:
			offByOne++
		default:
			far++
		}
	}
	// Quantization legitimately shifts bin-boundary states, occasionally
	// across a stall-penalty cliff; but the table must agree with the
	// exact optimizer on the overwhelming majority of states.
	if frac := float64(agree) / float64(total); frac < 0.90 {
		t.Errorf("fastMPC exact-agreement only %.2f (agree=%d ±1=%d far=%d)", frac, agree, offByOne, far)
	}
	if float64(far)/float64(total) > 0.02 {
		t.Errorf("fastMPC far-disagreements %d/%d exceed 2%%", far, total)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestFastMPCStartupAndFallbacks(t *testing.T) {
	v := dash.BigBuckBunny()
	f := NewFastMPC(v)
	if f.Name() != "FastMPC" {
		t.Error("bad name")
	}
	if got := f.SelectLevel(state(v, -1, 0, nil, 0)); got != 0 {
		t.Errorf("startup = %d", got)
	}
	// No transport estimate: falls back to harmonic mean of history.
	if got := f.SelectLevel(state(v, 2, 20*time.Second, []float64{6e6, 6e6}, 0)); got < 2 {
		t.Errorf("history fallback picked %d", got)
	}
	// No signal at all: lowest rung.
	if got := f.SelectLevel(state(v, 2, 20*time.Second, nil, 0)); got != 0 {
		t.Errorf("no-signal = %d", got)
	}
	// Out-of-range inputs clamp instead of panicking.
	st := state(v, 2, 500*time.Second, nil, 1e12)
	st.BufferCap = dash.DefaultBufferCap
	if got := f.SelectLevel(st); got < 0 || got > v.HighestLevel() {
		t.Errorf("clamped select = %d", got)
	}
}

func TestFastMPCStreamsWithoutStalls(t *testing.T) {
	v := dash.BigBuckBunny()
	rep := sessionWithAlgo(t, NewFastMPC(v), 40)
	if rep.Stalls != 0 {
		t.Errorf("stalls = %d", rep.Stalls)
	}
	if rep.SteadyStateAvgBitrateMbps < 2.0 {
		t.Errorf("bitrate = %v on a 6.8 Mbps network", rep.SteadyStateAvgBitrateMbps)
	}
}

func BenchmarkMPCSelect(b *testing.B) {
	v := dash.BigBuckBunny()
	m := NewMPC()
	st := state(v, 3, 20*time.Second, []float64{3e6, 3e6, 3e6}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SelectLevel(st)
	}
}

func BenchmarkFastMPCSelect(b *testing.B) {
	v := dash.BigBuckBunny()
	f := NewFastMPC(v)
	st := state(v, 3, 20*time.Second, []float64{3e6, 3e6, 3e6}, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SelectLevel(st)
	}
}
