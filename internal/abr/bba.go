package abr

import (
	"time"

	"mpdash/internal/dash"
)

// BBA implements buffer-based adaptation (Huang et al., SIGCOMM'14),
// configured as the paper's "full version (BBA-2)": a reservoir/cushion
// linear rate map with next-up/next-down hysteresis, plus the BBA-2
// startup phase that steps the rate up while the buffer is filling faster
// than it drains. Capped=true yields BBA-C, the paper's cellular-friendly
// variant (§5.2.2) that additionally bounds the selected bitrate by the
// measured multipath throughput to kill the Fig. 3 oscillation.
type BBA struct {
	// Reservoir is the buffer level below which the lowest rate is always
	// chosen.
	Reservoir time.Duration
	// UpperFrac is the buffer fraction at which the map reaches the top
	// rate (cushion spans Reservoir..UpperFrac*cap).
	UpperFrac float64
	// Capped enables the BBA-C throughput bound.
	Capped bool

	started bool // startup phase finished?
}

// NewBBA returns the paper's BBA-2 configuration scaled to the player's
// buffer: reservoir 8 s, cushion up to 90% of capacity.
func NewBBA() *BBA { return &BBA{Reservoir: 8 * time.Second, UpperFrac: 0.9} }

// NewBBAC returns BBA-C, the cellular-friendly capped variant.
func NewBBAC() *BBA {
	b := NewBBA()
	b.Capped = true
	return b
}

// Name implements dash.RateAdapter.
func (b *BBA) Name() string {
	if b.Capped {
		return "BBA-C"
	}
	return "BBA"
}

// mapRate returns f(B), the linear buffer→rate map in bits/s.
func (b *BBA) mapRate(st dash.PlayerState) float64 {
	v := st.Video
	rmin := v.Levels[0].AvgBitrateMbps * 1e6
	rmax := v.Levels[v.HighestLevel()].AvgBitrateMbps * 1e6
	upper := time.Duration(b.UpperFrac * float64(st.BufferCap))
	switch {
	case st.Buffer <= b.Reservoir:
		return rmin
	case st.Buffer >= upper:
		return rmax
	default:
		frac := float64(st.Buffer-b.Reservoir) / float64(upper-b.Reservoir)
		return rmin + frac*(rmax-rmin)
	}
}

// LevelLowerBuffer returns the lowest buffer occupancy at which the map
// still yields the given ladder level — the paper's e_l in §5.2.2, which
// the buffer-based MP-DASH adapter uses to place Ω.
func (b *BBA) LevelLowerBuffer(st dash.PlayerState, level int) time.Duration {
	v := st.Video
	if level <= 0 {
		return 0
	}
	rmin := v.Levels[0].AvgBitrateMbps * 1e6
	rmax := v.Levels[v.HighestLevel()].AvgBitrateMbps * 1e6
	rate := v.Levels[level].AvgBitrateMbps * 1e6
	upper := time.Duration(b.UpperFrac * float64(st.BufferCap))
	if rate >= rmax {
		// The top rung is only reached at the top of the cushion; its
		// hysteresis band in the map spans from the rung below.
		rate = v.Levels[level-1].AvgBitrateMbps * 1e6
	}
	frac := (rate - rmin) / (rmax - rmin)
	return b.Reservoir + time.Duration(frac*float64(upper-b.Reservoir))
}

// SelectLevel implements dash.RateAdapter.
func (b *BBA) SelectLevel(st dash.PlayerState) int {
	v := st.Video
	cur := st.LastLevel
	if cur < 0 {
		b.started = false
		return 0
	}

	var next int
	if !b.started {
		// BBA-2 startup: while the buffer is growing (each chunk
		// downloads faster than it plays), step up one rung per chunk;
		// leave startup once the steady-state map catches up to the
		// current rate or the buffer stops growing.
		est := st.EffectiveEstimateBps()
		growing := est > 2*v.Levels[cur].AvgBitrateMbps*1e6
		mapLevel := v.LevelForThroughput(b.mapRate(st))
		if mapLevel >= cur {
			b.started = true
			next = mapLevel
		} else if growing && cur < v.HighestLevel() {
			next = cur + 1
		} else {
			next = cur
		}
	} else {
		// Steady state: next-up/next-down hysteresis on f(B).
		rate := b.mapRate(st)
		next = cur
		if cur < v.HighestLevel() && rate >= v.Levels[cur+1].AvgBitrateMbps*1e6 {
			next = v.LevelForThroughput(rate)
		} else if rate < v.Levels[cur].AvgBitrateMbps*1e6 {
			l := v.LevelForThroughput(rate)
			if l < 0 {
				l = 0
			}
			next = l
		}
	}

	if b.Capped {
		// BBA-C: never select above what the network measurably
		// delivers (§5.2.2).
		if est := st.EffectiveEstimateBps(); est > 0 {
			capLevel := v.LevelForThroughput(est)
			if capLevel < 0 {
				capLevel = 0
			}
			if next > capLevel {
				next = capLevel
			}
		}
	}
	return next
}

// OnChunkDone implements dash.RateAdapter.
func (b *BBA) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}
