package abr

import (
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/stats"
)

// FastMPC is the table-driven variant of MPC the paper describes in
// §5.2.3: "instead of solving an optimization problem for each chunk, its
// online version looks up a pre-generated table to select the optimal
// bitrate based on the buffer level, previous bitrate, and throughput
// estimation." The table is enumerated offline over discretized (buffer,
// previous level, predicted throughput) states using the same QoE
// objective as MPC; SelectLevel is then O(1).
type FastMPC struct {
	// Inner carries the QoE weights and horizon used to build the table.
	Inner *MPC
	// BufferBins and ThroughputBins control table resolution.
	BufferBins     int
	ThroughputBins int
	// MaxThroughputMbps bounds the throughput axis.
	MaxThroughputMbps float64

	video *dash.Video
	// table[bufBin][prevLevel][tputBin] = ladder index.
	table [][][]uint8
}

// NewFastMPC builds the lookup table for one video. Table construction
// enumerates every discretized state once; playback decisions are lookups.
func NewFastMPC(video *dash.Video) *FastMPC {
	f := &FastMPC{
		Inner:             NewMPC(),
		BufferBins:        100,
		ThroughputBins:    50,
		MaxThroughputMbps: 2 * video.Levels[video.HighestLevel()].AvgBitrateMbps,
		video:             video,
	}
	f.build()
	return f
}

// Name implements dash.RateAdapter.
func (f *FastMPC) Name() string { return "FastMPC" }

// build enumerates the state space. The per-state planning reuses the
// exact MPC enumeration on a representative (mid-video) chunk index, so
// the table inherits MPC's behaviour up to discretization.
func (f *FastMPC) build() {
	v := f.video
	nLevels := len(v.Levels)
	bufferCap := dash.DefaultBufferCap
	f.table = make([][][]uint8, f.BufferBins)
	midChunk := v.NumChunks / 2
	for bi := 0; bi < f.BufferBins; bi++ {
		buffer := time.Duration(float64(bufferCap) * (float64(bi) + 0.5) / float64(f.BufferBins))
		f.table[bi] = make([][]uint8, nLevels)
		for prev := 0; prev < nLevels; prev++ {
			f.table[bi][prev] = make([]uint8, f.ThroughputBins)
			for ti := 0; ti < f.ThroughputBins; ti++ {
				tput := f.binThroughput(ti)
				st := dash.PlayerState{
					ChunkIndex:           midChunk,
					LastLevel:            prev,
					Buffer:               buffer,
					BufferCap:            bufferCap,
					Video:                v,
					TransportEstimateBps: tput,
				}
				f.table[bi][prev][ti] = uint8(f.Inner.SelectLevel(st))
			}
		}
	}
}

// binThroughput maps a bin index to its representative bits/s.
func (f *FastMPC) binThroughput(ti int) float64 {
	return f.MaxThroughputMbps * 1e6 * (float64(ti) + 0.5) / float64(f.ThroughputBins)
}

// SelectLevel implements dash.RateAdapter via table lookup.
func (f *FastMPC) SelectLevel(st dash.PlayerState) int {
	if st.LastLevel < 0 {
		return 0
	}
	bw := st.TransportEstimateBps
	if bw <= 0 {
		hist := st.ChunkThroughputs
		if len(hist) > f.Inner.HistoryLen {
			hist = hist[len(hist)-f.Inner.HistoryLen:]
		}
		bw = stats.HarmonicMean(hist)
	}
	if bw <= 0 {
		return 0
	}
	bi := int(float64(f.BufferBins) * float64(st.Buffer) / float64(st.BufferCap))
	bi = clampInt(bi, 0, f.BufferBins-1)
	ti := int(bw / (f.MaxThroughputMbps * 1e6) * float64(f.ThroughputBins))
	ti = clampInt(ti, 0, f.ThroughputBins-1)
	prev := clampInt(st.LastLevel, 0, len(f.video.Levels)-1)
	return int(f.table[bi][prev][ti])
}

// OnChunkDone implements dash.RateAdapter.
func (f *FastMPC) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
