// Package abr implements the DASH rate-adaptation algorithms the paper
// evaluates — GPAC's built-in throughput rule, FESTIVE, BBA-2, and the
// paper's cellular-friendly BBA-C — plus MPC (the §5.2.3 extension), and
// the MP-DASH video adapter (§5) that couples any of them to the
// deadline-aware scheduler in internal/core.
package abr

import (
	"mpdash/internal/dash"
)

// GPAC is the GPAC player's stock throughput-based rule: estimate the
// bandwidth from the last chunk's download throughput and pick the highest
// encoding bitrate below it (§6).
type GPAC struct{}

// NewGPAC returns the GPAC algorithm.
func NewGPAC() *GPAC { return &GPAC{} }

// Name implements dash.RateAdapter.
func (g *GPAC) Name() string { return "GPAC" }

// SelectLevel implements dash.RateAdapter.
func (g *GPAC) SelectLevel(st dash.PlayerState) int {
	est := st.EffectiveEstimateBps()
	if est <= 0 {
		return 0 // startup: lowest rung
	}
	l := st.Video.LevelForThroughput(est)
	if l < 0 {
		return 0
	}
	return l
}

// OnChunkDone implements dash.RateAdapter.
func (g *GPAC) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}
