package abr

import (
	"fmt"
	"time"

	"mpdash/internal/core"
	"mpdash/internal/dash"
	"mpdash/internal/mptcp"
	"mpdash/internal/obs"
)

// DeadlinePolicy selects how a chunk's deadline window D is derived (§5.1).
type DeadlinePolicy int

const (
	// DurationBased sets D to the chunk's playout duration, keeping the
	// buffer level stable in the short term.
	DurationBased DeadlinePolicy = iota
	// RateBased sets D to size/nominal-bitrate, maintaining the buffer in
	// the long run (and, per Fig. 7/8, saving more cellular data on
	// larger-than-average chunks).
	RateBased
)

// String implements fmt.Stringer.
func (p DeadlinePolicy) String() string {
	switch p {
	case DurationBased:
		return "duration"
	case RateBased:
		return "rate"
	default:
		return fmt.Sprintf("DeadlinePolicy(%d)", int(p))
	}
}

// Category tells the adapter which §5.2 threshold rules apply.
type Category int

const (
	// ThroughputBased covers GPAC, FESTIVE, MPC-style algorithms.
	ThroughputBased Category = iota
	// BufferBased covers BBA and BBA-C.
	BufferBased
)

// AdapterConfig parameterizes the MP-DASH video adapter.
type AdapterConfig struct {
	Policy   DeadlinePolicy
	Category Category
	// BBA must be set for BufferBased: the adapter reads the buffer→rate
	// map to place Ω at e_l + one chunk duration (§5.2.2).
	BBA *BBA
	// PhiFrac is the deadline-extension threshold Φ as a fraction of
	// buffer capacity for ThroughputBased (default 0.8, §5.2.1).
	PhiFrac float64
	// OmegaMinFrac floors Ω at this fraction of capacity for
	// ThroughputBased (default 0.4, §5.2.1).
	OmegaMinFrac float64
	// TWindowFactor is T as a multiple of the buffer duration in the Ω
	// formula (default 2; the paper notes 1x and 3x do not change the
	// results qualitatively).
	TWindowFactor float64
	// DisableExtension turns off deadline extension (ablation).
	DisableExtension bool
	// DisableLowBufferGuard turns off the Ω guard (ablation).
	DisableLowBufferGuard bool
}

// Adapter is the MP-DASH video adapter (§5): the glue between an
// off-the-shelf rate adaptation algorithm and the deadline-aware
// scheduler. It implements dash.Adapter.
type Adapter struct {
	cfg   AdapterConfig
	sched *core.Scheduler
	conn  *mptcp.Conn

	// Obs receives the adapter's §5 decisions (adapter.extend /
	// adapter.skip / adapter.govern), stamped with player time; nil =
	// telemetry off. The adapter runs on the simulator's single
	// goroutine, so no synchronization is needed.
	Obs obs.Sink

	governed int64
	skipped  int64
}

// Instrument wires the adapter (and its scheduler) to t: decision events
// to the journal, governed/skipped counts as scrape-time collectors.
func (a *Adapter) Instrument(t *obs.Telemetry) {
	if t == nil {
		return
	}
	a.Obs = t
	a.sched.Instrument(t)
	r := t.Registry
	r.CounterFunc("mpdash_adapter_chunks_total", "Chunks by adapter decision (governed under MP-DASH, or skipped below Ω).",
		obs.Labels{"decision": "governed"}, func() float64 { return float64(a.Governed()) })
	r.CounterFunc("mpdash_adapter_chunks_total", "Chunks by adapter decision (governed under MP-DASH, or skipped below Ω).",
		obs.Labels{"decision": "skipped"}, func() float64 { return float64(a.Skipped()) })
}

// emit journals one adapter decision at the player's current time.
func (a *Adapter) emit(e obs.Event, st dash.PlayerState) {
	if a.Obs == nil {
		return
	}
	e.Sim = st.Now
	a.Obs.Emit(e)
}

// NewAdapter builds the adapter for a scheduler/connection pair.
func NewAdapter(sched *core.Scheduler, conn *mptcp.Conn, cfg AdapterConfig) (*Adapter, error) {
	if sched == nil || conn == nil {
		return nil, fmt.Errorf("abr: nil scheduler or connection")
	}
	if cfg.Category == BufferBased && cfg.BBA == nil {
		return nil, fmt.Errorf("abr: buffer-based adapter requires the BBA instance")
	}
	if cfg.PhiFrac == 0 {
		cfg.PhiFrac = 0.8
	}
	if cfg.OmegaMinFrac == 0 {
		cfg.OmegaMinFrac = 0.4
	}
	if cfg.TWindowFactor == 0 {
		cfg.TWindowFactor = 2
	}
	if cfg.PhiFrac < 0 || cfg.PhiFrac > 1 || cfg.OmegaMinFrac < 0 || cfg.OmegaMinFrac > 1 {
		return nil, fmt.Errorf("abr: thresholds outside [0,1]: phi=%v omegaMin=%v", cfg.PhiFrac, cfg.OmegaMinFrac)
	}
	return &Adapter{cfg: cfg, sched: sched, conn: conn}, nil
}

// TransportEstimate implements dash.Adapter: the §3.2 interface exposing
// the aggregate MPTCP throughput estimate to rate adaptation. Paths the
// scheduler's cost ceiling permanently excludes contribute nothing — the
// player must not budget around capacity MP-DASH will never buy.
func (a *Adapter) TransportEstimate() float64 {
	maxCost := a.sched.MaxCost
	var sum float64
	for _, p := range a.conn.Paths() {
		if !p.Primary && maxCost > 0 && p.Cost > maxCost {
			continue
		}
		sum += a.conn.PathAppThroughput(p.Name)
	}
	return sum
}

// Governed returns how many chunks ran under MP-DASH.
func (a *Adapter) Governed() int64 { return a.governed }

// Skipped returns how many chunks bypassed MP-DASH (buffer below Ω).
func (a *Adapter) Skipped() int64 { return a.skipped }

// baseDeadline derives D from the policy (§5.1).
func (a *Adapter) baseDeadline(meta dash.ChunkMeta) time.Duration {
	switch a.cfg.Policy {
	case RateBased:
		if meta.NominalBps <= 0 {
			return meta.Duration
		}
		return time.Duration(float64(meta.Size*8) / meta.NominalBps * float64(time.Second))
	default:
		return meta.Duration
	}
}

// phi returns the deadline-extension threshold Φ.
func (a *Adapter) phi(st dash.PlayerState) time.Duration {
	switch a.cfg.Category {
	case BufferBased:
		// §5.2.2: capacity minus one chunk duration.
		return st.BufferCap - st.Video.ChunkDuration
	default:
		// §5.2.1: 80% of capacity.
		return time.Duration(a.cfg.PhiFrac * float64(st.BufferCap))
	}
}

// omega returns the low-buffer disable threshold Ω.
func (a *Adapter) omega(st dash.PlayerState) time.Duration {
	switch a.cfg.Category {
	case BufferBased:
		// §5.2.2: only govern when the player has reached the highest
		// sustainable bitrate; keep the buffer above that level's lower
		// map bound e_l plus one chunk.
		level := st.LastLevel
		if level < 0 {
			return st.BufferCap // startup: never govern
		}
		est := a.TransportEstimate()
		sustainable := st.Video.LevelForThroughput(est)
		if sustainable < 0 {
			sustainable = 0
		}
		if level < sustainable {
			// Still climbing: defer to stock MPTCP.
			return st.BufferCap
		}
		el := a.cfg.BBA.LevelLowerBuffer(st, level)
		return el + st.Video.ChunkDuration
	default:
		// §5.2.1: over a window T = factor × buffer duration, T' is the
		// content downloadable at the lowest bitrate; Ω = T − T',
		// floored at OmegaMinFrac of capacity.
		T := time.Duration(a.cfg.TWindowFactor * float64(st.BufferCap))
		lowest := st.Video.Levels[0].AvgBitrateMbps * 1e6
		est := a.TransportEstimate()
		tPrime := time.Duration(float64(T) * est / lowest)
		omega := T - tPrime
		if omega < 0 {
			omega = 0
		}
		if min := time.Duration(a.cfg.OmegaMinFrac * float64(st.BufferCap)); omega < min {
			omega = min
		}
		return omega
	}
}

// OnChunkStart implements dash.Adapter.
func (a *Adapter) OnChunkStart(st dash.PlayerState, meta dash.ChunkMeta, tr *mptcp.Transfer) {
	if !a.cfg.DisableLowBufferGuard {
		if omega := a.omega(st); st.Buffer < omega {
			// Below Ω: MP-DASH stays out of the way; make sure the
			// connection is in stock multipath mode.
			a.skipped++
			a.emit(obs.NewEvent("adapter.skip").WithChunk(meta.Index, meta.Level).
				WithNum("buffer_s", st.Buffer.Seconds()).
				WithNum("omega_s", omega.Seconds()), st)
			a.sched.Disable()
			return
		}
	}
	d := a.baseDeadline(meta)
	if !a.cfg.DisableExtension {
		if phi := a.phi(st); st.Buffer > phi {
			d += st.Buffer - phi // §5.1 deadline extension
			a.emit(obs.NewEvent("adapter.extend").WithChunk(meta.Index, meta.Level).
				WithNum("extension_s", (st.Buffer-phi).Seconds()).
				WithNum("buffer_s", st.Buffer.Seconds()).
				WithNum("phi_s", phi.Seconds()), st)
		}
	}
	a.sched.Govern(tr)
	if err := a.sched.Enable(meta.Size, d); err != nil {
		// A malformed chunk is a programming error upstream; fail safe
		// by leaving stock MPTCP in charge.
		a.sched.Disable()
		a.skipped++
		return
	}
	a.governed++
	a.emit(obs.NewEvent("adapter.govern").WithChunk(meta.Index, meta.Level).
		WithNum("deadline_s", d.Seconds()).
		WithNum("size", float64(meta.Size)), st)
}

// OnChunkDone implements dash.Adapter. Completion already deactivates the
// scheduler (condition 1); nothing further is required.
func (a *Adapter) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}
