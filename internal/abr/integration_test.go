package abr

import (
	"testing"
	"time"

	"mpdash/internal/core"
	"mpdash/internal/dash"
	"mpdash/internal/mptcp"
	"mpdash/internal/sim"
	"mpdash/internal/trace"
)

// session wires the full stack: sim + 2-path conn + scheduler + adapter +
// player, then plays n chunks and returns the report.
func session(t *testing.T, wifi, lte *trace.Trace, algo dash.RateAdapter, cfg *AdapterConfig, n int) *dash.Report {
	t.Helper()
	s := sim.New()
	conn, err := mptcp.NewConn(s, mptcp.Config{
		Paths: []mptcp.PathSpec{
			{Name: "wifi", Rate: wifi, RTT: 50 * time.Millisecond, Cost: 0.1, Primary: true},
			{Name: "lte", Rate: lte, RTT: 60 * time.Millisecond, Cost: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var adapter dash.Adapter
	if cfg != nil {
		sched, err := core.NewScheduler(s, conn, core.DefaultAlpha)
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAdapter(sched, conn, *cfg)
		if err != nil {
			t.Fatal(err)
		}
		adapter = a
	}
	p, err := dash.NewPlayer(s, conn, dash.BigBuckBunny(), algo, adapter)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(n)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

const testChunks = 50

// sessionWithAlgo plays n chunks of the canonical W3.8/L3.0 lab setup
// with the given algorithm, ungoverned.
func sessionWithAlgo(t *testing.T, algo dash.RateAdapter, n int) *dash.Report {
	t.Helper()
	return session(t, w38(), l30(), algo, nil, n)
}

func w38() *trace.Trace { return trace.Constant("w", 3.8, time.Second, 1) }
func l30() *trace.Trace { return trace.Constant("l", 3.0, time.Second, 1) }

func TestNewAdapterValidation(t *testing.T) {
	s := sim.New()
	conn, _ := mptcp.NewConn(s, mptcp.Config{Paths: []mptcp.PathSpec{
		{Name: "w", Rate: w38(), Primary: true},
	}})
	sched, _ := core.NewScheduler(s, conn, 1)
	if _, err := NewAdapter(nil, conn, AdapterConfig{}); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := NewAdapter(sched, nil, AdapterConfig{}); err == nil {
		t.Error("nil conn accepted")
	}
	if _, err := NewAdapter(sched, conn, AdapterConfig{Category: BufferBased}); err == nil {
		t.Error("buffer-based without BBA accepted")
	}
	if _, err := NewAdapter(sched, conn, AdapterConfig{PhiFrac: 1.5}); err == nil {
		t.Error("phi > 1 accepted")
	}
	if a, err := NewAdapter(sched, conn, AdapterConfig{}); err != nil || a == nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFESTIVECellularSavings(t *testing.T) {
	// The Fig. 7a experiment at W3.8/L3.0: MP-DASH (both deadline
	// policies) must slash steady-state cellular bytes versus vanilla
	// MPTCP without hurting the playback bitrate or stalling.
	base := session(t, w38(), l30(), NewFESTIVE(), nil, testChunks)
	if base.CellularBytes("lte") == 0 {
		t.Fatal("baseline used no cellular; experiment is vacuous")
	}
	for _, pol := range []DeadlinePolicy{DurationBased, RateBased} {
		cfg := &AdapterConfig{Policy: pol, Category: ThroughputBased}
		rep := session(t, w38(), l30(), NewFESTIVE(), cfg, testChunks)
		if rep.Stalls != 0 {
			t.Errorf("%v: %d stalls", pol, rep.Stalls)
		}
		saving := 1 - float64(rep.CellularBytes("lte"))/float64(base.CellularBytes("lte"))
		if saving < 0.5 {
			t.Errorf("%v: cellular saving %.1f%%, want > 50%%", pol, saving*100)
		}
		if rep.SteadyStateAvgBitrateMbps < base.SteadyStateAvgBitrateMbps*0.92 {
			t.Errorf("%v: bitrate dropped %v -> %v", pol, base.SteadyStateAvgBitrateMbps, rep.SteadyStateAvgBitrateMbps)
		}
	}
}

func TestRateBeatsDurationForFESTIVE(t *testing.T) {
	// Fig. 7a: rate-based deadlines save at least as much as
	// duration-based (they budget cellular against the average bitrate).
	dur := session(t, w38(), l30(), NewFESTIVE(),
		&AdapterConfig{Policy: DurationBased, Category: ThroughputBased}, testChunks)
	rate := session(t, w38(), l30(), NewFESTIVE(),
		&AdapterConfig{Policy: RateBased, Category: ThroughputBased}, testChunks)
	// Allow a little noise: rate-based must not be clearly worse.
	if float64(rate.CellularBytes("lte")) > float64(dur.CellularBytes("lte"))*1.15 {
		t.Errorf("rate-based LTE %d clearly worse than duration-based %d",
			rate.CellularBytes("lte"), dur.CellularBytes("lte"))
	}
}

func TestGPACWithMPDash(t *testing.T) {
	base := session(t, w38(), l30(), NewGPAC(), nil, testChunks)
	cfg := &AdapterConfig{Policy: RateBased, Category: ThroughputBased}
	rep := session(t, w38(), l30(), NewGPAC(), cfg, testChunks)
	if rep.Stalls != 0 {
		t.Errorf("stalls = %d", rep.Stalls)
	}
	if rep.CellularBytes("lte") >= base.CellularBytes("lte") {
		t.Errorf("no saving: %d vs %d", rep.CellularBytes("lte"), base.CellularBytes("lte"))
	}
}

func TestBBAOscillationAndBBACFix(t *testing.T) {
	// Fig. 3: capacity ≈3.4 Mbps sits between rungs 2.41 and 3.94.
	// Original BBA oscillates; BBA-C locks to the sustainable rung.
	wifi := trace.Constant("w", 2.2, time.Second, 1)
	lte := trace.Constant("l", 1.2, time.Second, 1)

	bba := session(t, wifi, lte, NewBBA(), nil, testChunks)
	bbac := session(t, wifi, lte, NewBBAC(), nil, testChunks)
	if bbac.QualitySwitches >= bba.QualitySwitches {
		t.Errorf("BBA-C switches %d not below BBA %d", bbac.QualitySwitches, bba.QualitySwitches)
	}
	if bba.QualitySwitches < 4 {
		t.Errorf("BBA only switched %d times; oscillation not reproduced", bba.QualitySwitches)
	}
}

func TestBufferBasedAdapterSavesForBBAC(t *testing.T) {
	// Fig. 7c at W2.2/L1.2: BBA-C plus MP-DASH saves cellular data where
	// plain BBA could not (§7.3.2).
	wifi := trace.Constant("w", 2.2, time.Second, 1)
	lte := trace.Constant("l", 1.2, time.Second, 1)

	algo := NewBBAC()
	base := session(t, wifi, lte, algo, nil, testChunks)

	algo2 := NewBBAC()
	cfg := &AdapterConfig{Policy: RateBased, Category: BufferBased, BBA: algo2}
	rep := session(t, wifi, lte, algo2, cfg, testChunks)

	if base.CellularBytes("lte") == 0 {
		t.Skip("baseline used no cellular on this profile")
	}
	saving := 1 - float64(rep.CellularBytes("lte"))/float64(base.CellularBytes("lte"))
	if saving < 0.25 {
		t.Errorf("BBA-C saving %.1f%%, want > 25%%", saving*100)
	}
	if rep.Stalls != 0 {
		t.Errorf("stalls = %d", rep.Stalls)
	}
}

func TestOmegaGuardSkipsStartup(t *testing.T) {
	// The adapter must leave the startup phase (low buffer) ungoverned.
	s := sim.New()
	conn, err := mptcp.NewConn(s, mptcp.Config{
		Paths: []mptcp.PathSpec{
			{Name: "wifi", Rate: w38(), RTT: 50 * time.Millisecond, Primary: true},
			{Name: "lte", Rate: l30(), RTT: 60 * time.Millisecond, Cost: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := core.NewScheduler(s, conn, 1)
	a, err := NewAdapter(sched, conn, AdapterConfig{Policy: RateBased, Category: ThroughputBased})
	if err != nil {
		t.Fatal(err)
	}
	p, err := dash.NewPlayer(s, conn, dash.BigBuckBunny(), NewFESTIVE(), a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(testChunks); err != nil {
		t.Fatal(err)
	}
	if a.Skipped() == 0 {
		t.Error("no chunks skipped: Ω guard never engaged during startup")
	}
	if a.Governed() == 0 {
		t.Error("no chunks governed: adapter never activated MP-DASH")
	}
}

func TestAblationDisableGuards(t *testing.T) {
	// With the Ω guard disabled every chunk is governed from chunk 0.
	s := sim.New()
	conn, err := mptcp.NewConn(s, mptcp.Config{
		Paths: []mptcp.PathSpec{
			{Name: "wifi", Rate: w38(), RTT: 50 * time.Millisecond, Primary: true},
			{Name: "lte", Rate: l30(), RTT: 60 * time.Millisecond, Cost: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, _ := core.NewScheduler(s, conn, 1)
	a, err := NewAdapter(sched, conn, AdapterConfig{
		Policy:                RateBased,
		Category:              ThroughputBased,
		DisableLowBufferGuard: true,
		DisableExtension:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := dash.NewPlayer(s, conn, dash.BigBuckBunny(), NewFESTIVE(), a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(20); err != nil {
		t.Fatal(err)
	}
	if a.Skipped() != 0 {
		t.Errorf("skipped = %d with guard disabled", a.Skipped())
	}
	if a.Governed() != 20 {
		t.Errorf("governed = %d, want 20", a.Governed())
	}
}

func TestMPCWithMPDash(t *testing.T) {
	base := session(t, w38(), l30(), NewMPC(), nil, 30)
	cfg := &AdapterConfig{Policy: RateBased, Category: ThroughputBased}
	rep := session(t, w38(), l30(), NewMPC(), cfg, 30)
	if rep.Stalls != 0 {
		t.Errorf("stalls = %d", rep.Stalls)
	}
	if base.CellularBytes("lte") > 0 && rep.CellularBytes("lte") >= base.CellularBytes("lte") {
		t.Errorf("MPC no saving: %d vs %d", rep.CellularBytes("lte"), base.CellularBytes("lte"))
	}
}

func TestFluctuatingWiFiNoStalls(t *testing.T) {
	// Field-style WiFi with fades: MP-DASH must stay stall-free (the
	// paper observed zero stalls across all experiments) by pulling
	// cellular in during fades.
	wifi := trace.Field("coffee", 3.5, 0.5, 100*time.Millisecond, 12000, 33)
	rep := session(t, wifi, l30(), NewFESTIVE(),
		&AdapterConfig{Policy: RateBased, Category: ThroughputBased}, testChunks)
	if rep.Stalls != 0 {
		t.Errorf("stalls = %d on fluctuating WiFi", rep.Stalls)
	}
	if rep.CellularBytes("lte") == 0 {
		t.Error("fades never pulled cellular in; suspicious")
	}
}
