package abr

import (
	"mpdash/internal/dash"
	"mpdash/internal/stats"
)

// SVAA implements the smooth video adaptation of Tian & Liu (CoNEXT'12,
// cited by the paper's related work): a buffer-feedback controller that
// trades responsiveness for smoothness. The target rate is the throughput
// estimate scaled by a buffer-feedback factor F(B) = 2·B/(B+Bref) — below
// the reference buffer the player undershoots the network to refill,
// above it the player may overshoot slightly — with switches damped to
// one rung at a time and up-switches gated by a run-length counter, the
// paper's "smoothness and responsiveness trade-off".
type SVAA struct {
	// BufferRefFrac is the reference buffer level as a fraction of
	// capacity (default 0.5).
	BufferRefFrac float64
	// HistoryLen feeds the harmonic-mean throughput estimate.
	HistoryLen int
	// UpRunLength is how many consecutive chunks must favour an
	// up-switch before it happens (smoothness gate, default 2).
	UpRunLength int

	upRun int
}

// NewSVAA returns the controller with the original shape.
func NewSVAA() *SVAA {
	return &SVAA{BufferRefFrac: 0.5, HistoryLen: 10, UpRunLength: 2}
}

// Name implements dash.RateAdapter.
func (a *SVAA) Name() string { return "SVAA" }

func (a *SVAA) estimate(st dash.PlayerState) float64 {
	if st.TransportEstimateBps > 0 {
		return st.TransportEstimateBps
	}
	hist := st.ChunkThroughputs
	if len(hist) > a.HistoryLen {
		hist = hist[len(hist)-a.HistoryLen:]
	}
	return stats.HarmonicMean(hist)
}

// SelectLevel implements dash.RateAdapter.
func (a *SVAA) SelectLevel(st dash.PlayerState) int {
	if st.LastLevel < 0 {
		a.upRun = 0
		return 0
	}
	est := a.estimate(st)
	if est <= 0 {
		return st.LastLevel
	}
	bref := a.BufferRefFrac * st.BufferCap.Seconds()
	b := st.Buffer.Seconds()
	factor := 2 * b / (b + bref)
	target := st.Video.LevelForThroughput(est * factor)
	if target < 0 {
		target = 0
	}
	cur := st.LastLevel
	switch {
	case target > cur:
		a.upRun++
		if a.upRun >= a.UpRunLength {
			a.upRun = 0
			return cur + 1
		}
		return cur
	case target < cur:
		a.upRun = 0
		return cur - 1
	default:
		a.upRun = 0
		return cur
	}
}

// OnChunkDone implements dash.RateAdapter.
func (a *SVAA) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}
