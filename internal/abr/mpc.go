package abr

import (
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/stats"
)

// MPC implements the model-predictive-control hybrid of Yin et al.
// (SIGCOMM'15), which the paper lists as future work for MP-DASH
// integration (§5.2.3). For each chunk it enumerates level sequences over
// a short horizon, simulates the buffer forward under a harmonic-mean
// throughput prediction, and picks the first step of the sequence
// maximizing QoE = Σ bitrate − λ·Σ|switches| − μ·rebuffer.
type MPC struct {
	// Horizon is the lookahead depth in chunks (5 in the original).
	Horizon int
	// HistoryLen feeds the harmonic-mean predictor.
	HistoryLen int
	// LambdaSwitch and MuRebuffer are the QoE penalty weights, in the
	// units of Mbps and Mbps-per-second-of-stall respectively.
	LambdaSwitch float64
	MuRebuffer   float64
}

// NewMPC returns MPC with the original paper's shape (horizon 5,
// rebuffering heavily penalized).
func NewMPC() *MPC {
	return &MPC{Horizon: 5, HistoryLen: 5, LambdaSwitch: 1, MuRebuffer: 12}
}

// Name implements dash.RateAdapter.
func (m *MPC) Name() string { return "MPC" }

// predict returns the throughput prediction (bits/s).
func (m *MPC) predict(st dash.PlayerState) float64 {
	if st.TransportEstimateBps > 0 {
		return st.TransportEstimateBps
	}
	hist := st.ChunkThroughputs
	if len(hist) > m.HistoryLen {
		hist = hist[len(hist)-m.HistoryLen:]
	}
	return stats.HarmonicMean(hist)
}

// SelectLevel implements dash.RateAdapter.
func (m *MPC) SelectLevel(st dash.PlayerState) int {
	if st.LastLevel < 0 {
		return 0
	}
	bw := m.predict(st)
	if bw <= 0 {
		return 0
	}
	v := st.Video
	horizon := m.Horizon
	if rem := v.NumChunks - st.ChunkIndex; rem < horizon {
		horizon = rem
	}
	if horizon <= 0 {
		return st.LastLevel
	}

	nLevels := len(v.Levels)
	best, bestLevel := -1e18, 0
	seq := make([]int, horizon)
	var walk func(depth int, buffer float64, prev int, qoe float64)
	walk = func(depth int, buffer float64, prev int, qoe float64) {
		if depth == horizon {
			if qoe > best {
				best = qoe
				bestLevel = seq[0]
			}
			return
		}
		idx := st.ChunkIndex + depth
		for l := 0; l < nLevels; l++ {
			rate := v.Levels[l].AvgBitrateMbps
			size := float64(v.ChunkSize(idx, l))
			dl := size * 8 / bw
			nb := buffer
			stall := 0.0
			if dl > nb {
				stall = dl - nb
				nb = 0
			} else {
				nb -= dl
			}
			nb += v.ChunkDuration.Seconds()
			if capSec := st.BufferCap.Seconds(); nb > capSec {
				nb = capSec
			}
			q := qoe + rate - m.MuRebuffer*stall
			if prev >= 0 {
				diff := rate - v.Levels[prev].AvgBitrateMbps
				if diff < 0 {
					diff = -diff
				}
				q -= m.LambdaSwitch * diff
			}
			seq[depth] = l
			walk(depth+1, nb, l, q)
		}
	}
	walk(0, st.Buffer.Seconds(), st.LastLevel, 0)
	return bestLevel
}

// OnChunkDone implements dash.RateAdapter.
func (m *MPC) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}

// DeadlineForOptimalRate is the §5.2.3 suggestion for MPC's MP-DASH
// deadline: chunk size divided by the minimum throughput that sustains the
// chosen bitrate (approximated by the bitrate itself).
func (m *MPC) DeadlineForOptimalRate(meta dash.ChunkMeta) time.Duration {
	if meta.NominalBps <= 0 {
		return meta.Duration
	}
	return time.Duration(float64(meta.Size*8) / meta.NominalBps * float64(time.Second))
}
