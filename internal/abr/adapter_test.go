package abr

// White-box tests of the adapter's §5.2.1 / §5.2.2 threshold formulas,
// which the integration tests only exercise indirectly.

import (
	"math"
	"testing"
	"time"

	"mpdash/internal/core"
	"mpdash/internal/dash"
	"mpdash/internal/mptcp"
	"mpdash/internal/sim"
	"mpdash/internal/trace"
)

// adapterRig builds an adapter over a live two-path conn with warmed
// estimators so TransportEstimate is meaningful.
func adapterRig(t *testing.T, cfg AdapterConfig, wifiMbps, lteMbps float64) (*Adapter, *mptcp.Conn) {
	t.Helper()
	s := sim.New()
	conn, err := mptcp.NewConn(s, mptcp.Config{
		Paths: []mptcp.PathSpec{
			{Name: "wifi", Rate: trace.Constant("w", wifiMbps, time.Second, 1), RTT: 50 * time.Millisecond, Cost: 0.1, Primary: true},
			{Name: "lte", Rate: trace.Constant("l", lteMbps, time.Second, 1), RTT: 60 * time.Millisecond, Cost: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := core.NewScheduler(s, conn, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAdapter(sched, conn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := conn.StartTransfer(3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.RunUntilComplete(10 * time.Minute) { // slow-link rigs need time
		t.Fatal("warmup stuck")
	}
	return a, conn
}

func basicState(v *dash.Video, buffer time.Duration, last int) dash.PlayerState {
	return dash.PlayerState{
		Buffer:    buffer,
		BufferCap: dash.DefaultBufferCap,
		Video:     v,
		LastLevel: last,
	}
}

func TestThroughputPhiIs80PercentOfCap(t *testing.T) {
	a, _ := adapterRig(t, AdapterConfig{Category: ThroughputBased}, 3.8, 3.0)
	st := basicState(dash.BigBuckBunny(), 20*time.Second, 3)
	want := time.Duration(0.8 * float64(st.BufferCap))
	if got := a.phi(st); got != want {
		t.Errorf("phi = %v, want %v", got, want)
	}
}

func TestBufferPhiIsCapMinusChunk(t *testing.T) {
	bba := NewBBA()
	a, _ := adapterRig(t, AdapterConfig{Category: BufferBased, BBA: bba}, 3.8, 3.0)
	v := dash.BigBuckBunny()
	st := basicState(v, 20*time.Second, 3)
	want := st.BufferCap - v.ChunkDuration
	if got := a.phi(st); got != want {
		t.Errorf("phi = %v, want %v", got, want)
	}
}

func TestThroughputOmegaFormula(t *testing.T) {
	// §5.2.1: Ω = max(T − T', 0.4·cap) with T = 2·cap and
	// T' = T·throughput/lowestBitrate. With an aggregate ≈6.8 Mbps and
	// lowest rung 0.58 Mbps, T' >> T, so the floor 0.4·cap binds.
	a, _ := adapterRig(t, AdapterConfig{Category: ThroughputBased}, 3.8, 3.0)
	st := basicState(dash.BigBuckBunny(), 20*time.Second, 3)
	want := time.Duration(0.4 * float64(st.BufferCap))
	if got := a.omega(st); got != want {
		t.Errorf("omega = %v, want floor %v", got, want)
	}
}

func TestThroughputOmegaRisesWhenStarved(t *testing.T) {
	// With aggregate throughput below half the lowest bitrate, T' < T/2
	// and Ω = T − T' exceeds the 0.4·cap floor.
	a, _ := adapterRig(t, AdapterConfig{Category: ThroughputBased}, 0.15, 0.1)
	st := basicState(dash.BigBuckBunny(), 20*time.Second, 0)
	floor := time.Duration(0.4 * float64(st.BufferCap))
	if got := a.omega(st); got <= floor {
		t.Errorf("omega = %v, should exceed the %v floor when starved", got, floor)
	}
}

func TestBufferOmegaUsesELPlusChunk(t *testing.T) {
	// §5.2.2: once the player sits at the highest sustainable level,
	// Ω = e_l(level) + one chunk duration.
	bba := NewBBA()
	a, _ := adapterRig(t, AdapterConfig{Category: BufferBased, BBA: bba}, 3.8, 3.0)
	v := dash.BigBuckBunny()
	// Aggregate ≈6.8 Mbps sustains level 4; the player is there.
	st := basicState(v, 30*time.Second, 4)
	el := bba.LevelLowerBuffer(st, 4)
	want := el + v.ChunkDuration
	if got := a.omega(st); math.Abs(float64(got-want)) > float64(time.Millisecond) {
		t.Errorf("omega = %v, want e_l+chunk = %v", got, want)
	}
}

func TestBufferOmegaDefersWhileClimbing(t *testing.T) {
	// Below the sustainable level the adapter must not govern: Ω equals
	// the full capacity (never satisfied).
	bba := NewBBA()
	a, _ := adapterRig(t, AdapterConfig{Category: BufferBased, BBA: bba}, 3.8, 3.0)
	st := basicState(dash.BigBuckBunny(), 30*time.Second, 1) // far below sustainable
	if got := a.omega(st); got != st.BufferCap {
		t.Errorf("omega = %v while climbing, want cap %v", got, st.BufferCap)
	}
	// And at startup (no level yet).
	st.LastLevel = -1
	if got := a.omega(st); got != st.BufferCap {
		t.Errorf("startup omega = %v, want cap", got)
	}
}

func TestBaseDeadlinePolicies(t *testing.T) {
	a, _ := adapterRig(t, AdapterConfig{Policy: DurationBased}, 3.8, 3.0)
	meta := dash.ChunkMeta{Size: 2_000_000, Duration: 4 * time.Second, NominalBps: 4e6}
	if got := a.baseDeadline(meta); got != 4*time.Second {
		t.Errorf("duration-based = %v", got)
	}
	a2, _ := adapterRig(t, AdapterConfig{Policy: RateBased}, 3.8, 3.0)
	if got := a2.baseDeadline(meta); got != 4*time.Second {
		t.Errorf("rate-based = %v, want size*8/nominal = 4s", got)
	}
	meta.NominalBps = 0
	if got := a2.baseDeadline(meta); got != meta.Duration {
		t.Errorf("zero-bitrate fallback = %v", got)
	}
}

func TestOnChunkStartRejectsBadChunk(t *testing.T) {
	a, conn := adapterRig(t, AdapterConfig{DisableLowBufferGuard: true}, 3.8, 3.0)
	st := basicState(dash.BigBuckBunny(), 30*time.Second, 3)
	tr, err := conn.StartTransfer(100)
	if err != nil {
		t.Fatal(err)
	}
	// Size 0 fails scheduler validation: the adapter must fail safe.
	a.OnChunkStart(st, dash.ChunkMeta{Size: 0, Duration: 4 * time.Second}, tr)
	if a.Governed() != 0 || a.Skipped() != 1 {
		t.Errorf("governed=%d skipped=%d after bad chunk", a.Governed(), a.Skipped())
	}
}
