package abr

import (
	"testing"
	"time"

	"mpdash/internal/dash"
)

func TestSVAAStartsLowAndClimbsSlowly(t *testing.T) {
	v := dash.BigBuckBunny()
	a := NewSVAA()
	if got := a.SelectLevel(state(v, -1, 0, nil, 0)); got != 0 {
		t.Fatalf("startup = %d", got)
	}
	// Plenty of bandwidth, healthy buffer: climb one rung at a time,
	// gated by the run-length counter (so ≥2 chunks per rung).
	tps := []float64{10e6, 10e6}
	cur := 0
	steps := 0
	for i := 0; i < 30 && cur < v.HighestLevel(); i++ {
		next := a.SelectLevel(state(v, cur, 25*time.Second, tps, 0))
		if next > cur+1 {
			t.Fatalf("jumped %d -> %d", cur, next)
		}
		cur = next
		steps++
	}
	if cur != v.HighestLevel() {
		t.Errorf("never reached the top rung (at %d after %d chunks)", cur, steps)
	}
	if steps < 2*v.HighestLevel() {
		t.Errorf("climbed too fast: %d steps for %d rungs", steps, v.HighestLevel())
	}
}

func TestSVAABufferFeedback(t *testing.T) {
	v := dash.BigBuckBunny()
	a := NewSVAA()
	// Same 3 Mbps estimate: a near-empty buffer must pick a lower rung
	// than a full one (the F(B) factor).
	lowBuf := a.SelectLevel(state(v, 3, 4*time.Second, []float64{3e6, 3e6}, 0))
	a2 := NewSVAA()
	highBuf := a2.SelectLevel(state(v, 3, 36*time.Second, []float64{3e6, 3e6}, 0))
	if lowBuf >= 3 {
		t.Errorf("low buffer kept level %d; should undershoot to refill", lowBuf)
	}
	if highBuf < 3 {
		t.Errorf("full buffer dropped to %d despite adequate rate", highBuf)
	}
}

func TestSVAAZeroEstimateHolds(t *testing.T) {
	v := dash.BigBuckBunny()
	a := NewSVAA()
	if got := a.SelectLevel(state(v, 2, 20*time.Second, nil, 0)); got != 2 {
		t.Errorf("no-estimate hold = %d, want 2", got)
	}
	if a.Name() != "SVAA" {
		t.Error("bad name")
	}
}

func TestSVAAEndToEnd(t *testing.T) {
	rep := sessionWithAlgo(t, NewSVAA(), 50)
	if rep.Stalls != 0 {
		t.Errorf("stalls = %d", rep.Stalls)
	}
	if rep.SteadyStateAvgBitrateMbps < 2.4 {
		t.Errorf("steady bitrate %.2f on a 6.8 Mbps network", rep.SteadyStateAvgBitrateMbps)
	}
	// Smoothness: fewer switches than chunks/3.
	if rep.QualitySwitches > 16 {
		t.Errorf("switches = %d; SVAA should be smooth", rep.QualitySwitches)
	}
}

func TestSVAAWithMPDash(t *testing.T) {
	base := session(t, w38(), l30(), NewSVAA(), nil, 50)
	cfg := &AdapterConfig{Policy: RateBased, Category: ThroughputBased}
	mp := session(t, w38(), l30(), NewSVAA(), cfg, 50)
	if mp.Stalls != 0 {
		t.Errorf("stalls = %d", mp.Stalls)
	}
	if base.CellularBytes("lte") > 0 && mp.CellularBytes("lte") >= base.CellularBytes("lte") {
		t.Errorf("no saving: %d vs %d", mp.CellularBytes("lte"), base.CellularBytes("lte"))
	}
}
