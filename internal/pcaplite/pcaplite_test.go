package pcaplite

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func sampleRecords() []Record {
	var dss [14]byte
	dss[0] = 30
	return []Record{
		{TS: 10 * time.Millisecond, Path: 0, Size: 1460, DSS: dss},
		{TS: 20 * time.Millisecond, Path: 1, Size: 1000, DSS: dss},
		{TS: 30 * time.Millisecond, Path: 0, Size: 500, DSS: dss},
	}
}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, []string{"wifi", "lte"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Paths) != 2 || tr.Paths[0] != "wifi" || tr.Paths[1] != "lte" {
		t.Fatalf("paths = %v", tr.Paths)
	}
	if len(tr.Records) != 3 {
		t.Fatalf("records = %d", len(tr.Records))
	}
	for i, want := range sampleRecords() {
		if tr.Records[i] != want {
			t.Errorf("record %d = %+v, want %+v", i, tr.Records[i], want)
		}
	}
}

func TestNewWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, nil); err == nil {
		t.Error("zero paths accepted")
	}
	many := make([]string, 300)
	for i := range many {
		many[i] = "p"
	}
	if _, err := NewWriter(&buf, many); err == nil {
		t.Error("300 paths accepted")
	}
}

func TestReadErrors(t *testing.T) {
	// Garbage.
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrBadTrace) {
		t.Errorf("garbage: %v", err)
	}
	// Valid header, truncated record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, []string{"a"})
	w.Write(Record{Size: 10})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := Read(bytes.NewReader(trunc)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("truncated: %v", err)
	}
	// Record referencing a nonexistent path.
	var buf2 bytes.Buffer
	w2, _ := NewWriter(&buf2, []string{"a"})
	w2.Write(Record{Path: 7, Size: 10})
	w2.Flush()
	if _, err := Read(&buf2); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad path index: %v", err)
	}
}

func TestPathBytesAndBetween(t *testing.T) {
	tr := &Trace{Paths: []string{"wifi", "lte"}, Records: sampleRecords()}
	pb := tr.PathBytes()
	if pb["wifi"] != 1960 || pb["lte"] != 1000 {
		t.Errorf("PathBytes = %v", pb)
	}
	mid := tr.Between(15*time.Millisecond, 25*time.Millisecond)
	if len(mid) != 1 || mid[0].Path != 1 {
		t.Errorf("Between = %+v", mid)
	}
	if got := tr.Between(time.Second, 2*time.Second); got != nil {
		t.Errorf("empty window = %v", got)
	}
}
