// Package pcaplite is a compact packet-trace format for multipath video
// analysis. The paper's analysis tool (§6) takes "a network packet trace
// containing the video content, as well as a player's event logs" and
// correlates them; this package provides the trace half: per-segment
// records (timestamp, path, size, DSS option bytes) with a binary
// writer/reader, captured live from an mptcp connection via its Recorder
// hook.
package pcaplite

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Record is one delivered transport segment.
type Record struct {
	// TS is the virtual capture time.
	TS time.Duration
	// Path is the index into the trace's path-name table.
	Path uint8
	// Size is the segment payload size in bytes.
	Size uint16
	// DSS is the raw encoded DSS option carried by the segment.
	DSS [14]byte
}

const (
	magic   = 0x4d504454 // "MPDT"
	version = 1
	// recordLen is ts(8) + path(1) + size(2) + dss(14).
	recordLen = 25
)

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("pcaplite: bad trace")

// Writer streams records to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	count int64
}

// NewWriter writes the header (path-name table) and returns a Writer.
func NewWriter(w io.Writer, paths []string) (*Writer, error) {
	if len(paths) == 0 || len(paths) > 255 {
		return nil, fmt.Errorf("pcaplite: %d paths", len(paths))
	}
	bw := bufio.NewWriter(w)
	var hdr [10]byte
	binary.BigEndian.PutUint32(hdr[0:4], magic)
	binary.BigEndian.PutUint16(hdr[4:6], version)
	hdr[6] = byte(len(paths))
	if _, err := bw.Write(hdr[:7]); err != nil {
		return nil, err
	}
	for _, p := range paths {
		if len(p) > 255 {
			return nil, fmt.Errorf("pcaplite: path name too long")
		}
		if err := bw.WriteByte(byte(len(p))); err != nil {
			return nil, err
		}
		if _, err := bw.WriteString(p); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	var b [recordLen]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(r.TS))
	b[8] = r.Path
	binary.BigEndian.PutUint16(b[9:11], r.Size)
	copy(b[11:25], r.DSS[:])
	if _, err := w.w.Write(b[:]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns how many records have been written.
func (w *Writer) Count() int64 { return w.count }

// Flush commits buffered records.
func (w *Writer) Flush() error { return w.w.Flush() }

// Trace is a fully parsed packet trace.
type Trace struct {
	Paths   []string
	Records []Record
}

// Read parses a trace stream.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [7]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadTrace, err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != magic {
		return nil, fmt.Errorf("%w: magic", ErrBadTrace)
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != version {
		return nil, fmt.Errorf("%w: version %d", ErrBadTrace, v)
	}
	nPaths := int(hdr[6])
	if nPaths == 0 {
		return nil, fmt.Errorf("%w: no paths", ErrBadTrace)
	}
	t := &Trace{}
	for i := 0; i < nPaths; i++ {
		n, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: path table: %v", ErrBadTrace, err)
		}
		name := make([]byte, n)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: path name: %v", ErrBadTrace, err)
		}
		t.Paths = append(t.Paths, string(name))
	}
	for {
		var b [recordLen]byte
		_, err := io.ReadFull(br, b[:])
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: truncated record: %v", ErrBadTrace, err)
		}
		var rec Record
		rec.TS = time.Duration(binary.BigEndian.Uint64(b[0:8]))
		rec.Path = b[8]
		if int(rec.Path) >= len(t.Paths) {
			return nil, fmt.Errorf("%w: path index %d", ErrBadTrace, rec.Path)
		}
		rec.Size = binary.BigEndian.Uint16(b[9:11])
		copy(rec.DSS[:], b[11:25])
		t.Records = append(t.Records, rec)
	}
}

// PathBytes sums payload bytes per path name.
func (t *Trace) PathBytes() map[string]int64 {
	out := map[string]int64{}
	for _, r := range t.Records {
		out[t.Paths[r.Path]] += int64(r.Size)
	}
	return out
}

// Between returns the records with from <= TS < to (records are expected
// in capture order).
func (t *Trace) Between(from, to time.Duration) []Record {
	var out []Record
	for _, r := range t.Records {
		if r.TS >= from && r.TS < to {
			out = append(out, r)
		}
	}
	return out
}
