package pcaplite

import (
	"bytes"
	"testing"
	"time"
)

// FuzzRead: the trace parser must never panic, and anything it accepts
// must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, []string{"wifi", "lte"})
	w.Write(Record{TS: time.Millisecond, Path: 1, Size: 1460})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x4d, 0x50, 0x44, 0x54})
	f.Fuzz(func(t *testing.T, b []byte) {
		tr, err := Read(bytes.NewReader(b))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w, err := NewWriter(&out, tr.Paths)
		if err != nil {
			t.Fatalf("accepted trace has unwritable path table: %v", err)
		}
		for _, r := range tr.Records {
			if err := w.Write(r); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip: %v", err)
		}
		if len(tr2.Records) != len(tr.Records) {
			t.Fatalf("records %d vs %d", len(tr2.Records), len(tr.Records))
		}
	})
}
