// Package audit is the runtime invariant auditor: it watches a run —
// live, through the telemetry event stream and direct hooks — and fails
// loudly afterwards when a correctness invariant the rest of the system
// merely *assumes* was actually broken. The invariants are the ones a
// chaos run is most likely to bend without any test noticing:
//
//   - exactly-once ledger: no session's byte-for-byte verification failed
//     (a duplicate or torn segment delivery under crash/restart);
//   - goroutine hygiene: after the population drains, the process
//     goroutine count returns to its pre-run watermark (plus slack) —
//     the leak check for fetcher supervisors, hedges and chaos timers;
//   - playback monotonicity: every session's delivered chunk indices
//     strictly increase (a replayed or reordered chunk is corruption,
//     not recovery);
//   - abort/downgrade pairing: every doomed-chunk abort journal event is
//     matched by its rendition-downgrade (and no downgrade appears
//     without an abort) — an unpaired half means the cross-layer abort
//     contract broke;
//   - bounded waste: bytes that bought no on-time video stay a bounded
//     fraction of all bytes moved — unbounded wasted-byte growth is the
//     signature of an abort/hedge feedback loop.
//
// The auditor is deliberately dependency-light (only internal/obs) so
// any layer can wire it: Watch goes on obs.Telemetry.OnEmit, Playback
// hooks a Streamer.OnChunk, CheckTotals takes the aggregated counters,
// and Finish settles the goroutine check and returns the Result.
package audit

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mpdash/internal/obs"
)

// Invariant names, used in Violation.Invariant and journal events.
const (
	InvLedger   = "ledger_exactly_once"
	InvLeak     = "goroutine_leak"
	InvPlayback = "playback_monotone"
	InvPairing  = "abort_pairing"
	InvWaste    = "wasted_byte_growth"
)

// Violation is one observed invariant breach.
type Violation struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Result is the auditor's verdict for one run.
type Result struct {
	// Watermark is the goroutine count recorded by Start; Settled is the
	// count the process settled at inside the settle timeout.
	Watermark int `json:"goroutine_watermark"`
	Settled   int `json:"goroutine_settled"`
	// Events is how many journal events the auditor watched.
	Events int `json:"events_watched"`
	// Violations lists every breach (capped at MaxViolations; Truncated
	// counts the overflow).
	Violations []Violation `json:"violations,omitempty"`
	Truncated  int         `json:"truncated,omitempty"`
}

// OK reports whether the run passed the audit.
func (r *Result) OK() bool { return r != nil && len(r.Violations) == 0 }

// Count returns the total violation count including truncated overflow.
func (r *Result) Count() int {
	if r == nil {
		return 0
	}
	return len(r.Violations) + r.Truncated
}

// Summary renders the verdict as a short human-readable block.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d events watched, goroutines %d → %d (watermark)\n",
		r.Events, r.Settled, r.Watermark)
	if r.OK() {
		b.WriteString("audit: PASS — zero invariant violations\n")
		return b.String()
	}
	fmt.Fprintf(&b, "audit: FAIL — %d invariant violations\n", r.Count())
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, "  ... and %d more\n", r.Truncated)
	}
	return b.String()
}

// MaxViolations caps the retained violation list; further breaches are
// counted, not stored, so a systemic failure cannot balloon the report.
const MaxViolations = 64

// Config tunes the auditor. The zero value is usable.
type Config struct {
	// GoroutineSlack is how many goroutines over the watermark still
	// count as settled (default 8 — timer and netpoll wiggle).
	GoroutineSlack int
	// SettleTimeout bounds how long Finish waits for the goroutine count
	// to recede to the watermark (default 5s).
	SettleTimeout time.Duration
	// MaxWasteFraction bounds wasted bytes as a fraction of total bytes
	// moved (default 0.5).
	MaxWasteFraction float64
	// MinWasteBytes is the waste floor under which the fraction is not
	// judged — tiny runs are all noise (default 1 MiB).
	MinWasteBytes int64
	// Sink receives audit.* journal events (violations as they are
	// detected, the final verdict). Nil = silent.
	Sink obs.Sink
}

func (c Config) withDefaults() Config {
	if c.GoroutineSlack <= 0 {
		c.GoroutineSlack = 8
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 5 * time.Second
	}
	if c.MaxWasteFraction <= 0 {
		c.MaxWasteFraction = 0.5
	}
	if c.MinWasteBytes <= 0 {
		c.MinWasteBytes = 1 << 20
	}
	return c
}

// Auditor accumulates run-time observations. All methods are
// goroutine-safe; the zero value is NOT usable — construct with New.
type Auditor struct {
	cfg Config

	mu         sync.Mutex
	watermark  int
	events     int
	violations []Violation
	truncated  int
	// playback tracks each session's last delivered chunk index.
	playback map[int]int
	// openAborts tracks outstanding chunk.abort events per chunk index
	// awaiting their stream.downgrade.
	openAborts map[int]int
	finished   bool
}

// New returns an Auditor with the config defaulted.
func New(cfg Config) *Auditor {
	return &Auditor{
		cfg:        cfg.withDefaults(),
		playback:   make(map[int]int),
		openAborts: make(map[int]int),
	}
}

// Start records the pre-run goroutine watermark. Call it before the
// system under audit spins anything up.
func (a *Auditor) Start() {
	a.mu.Lock()
	a.watermark = runtime.NumGoroutine()
	a.mu.Unlock()
	if a.cfg.Sink != nil {
		a.cfg.Sink.Emit(obs.NewEvent("audit.start").
			WithNum("goroutine_watermark", float64(a.watermark)))
	}
}

// violate records one breach (capped) and journals it. Callers must NOT
// hold a.mu.
func (a *Auditor) violate(inv, format string, args ...any) {
	v := Violation{Invariant: inv, Detail: fmt.Sprintf(format, args...)}
	a.mu.Lock()
	if len(a.violations) < MaxViolations {
		a.violations = append(a.violations, v)
	} else {
		a.truncated++
	}
	a.mu.Unlock()
	if a.cfg.Sink != nil {
		a.cfg.Sink.Emit(obs.NewEvent("audit.violation").
			WithStr("invariant", v.Invariant).WithStr("detail", v.Detail))
	}
}

// Watch observes one journal event; wire it to obs.Telemetry.OnEmit.
// It tracks abort/downgrade pairing from the event stream. audit.*
// events are ignored (the auditor journals through the same telemetry
// it watches).
func (a *Auditor) Watch(e obs.Event) {
	if strings.HasPrefix(e.Type, "audit.") {
		return
	}
	a.mu.Lock()
	a.events++
	orphan := false
	switch e.Type {
	case "chunk.abort":
		a.openAborts[e.Chunk]++
	case "stream.downgrade":
		if a.openAborts[e.Chunk] > 0 {
			a.openAborts[e.Chunk]--
		} else {
			orphan = true
		}
	}
	chunk := e.Chunk
	a.mu.Unlock()
	if orphan {
		a.violate(InvPairing, "chunk %d: stream.downgrade without an outstanding chunk.abort", chunk)
	}
}

// Playback returns a per-session hook asserting strictly increasing
// chunk delivery — plug it into (or chain it with) Streamer.OnChunk.
func (a *Auditor) Playback(session int) func(index int, missed bool) {
	return func(index int, _ bool) {
		a.mu.Lock()
		last, seen := a.playback[session]
		bad := seen && index <= last
		if !bad {
			a.playback[session] = index
		}
		a.mu.Unlock()
		if bad {
			a.violate(InvPlayback, "session %d: chunk %d delivered after chunk %d — playback position moved backwards",
				session, index, last)
		}
	}
}

// CheckTotals audits the run's aggregated counters: the exactly-once
// ledger and the wasted-byte bound. Call it with the final report
// numbers before Finish.
func (a *Auditor) CheckTotals(ledgerViolations int, wastedBytes, totalBytes int64) {
	if ledgerViolations > 0 {
		a.violate(InvLedger, "%d sessions failed byte-for-byte verification (duplicate or torn delivery)",
			ledgerViolations)
	}
	if totalBytes > 0 && wastedBytes >= a.cfg.MinWasteBytes {
		if frac := float64(wastedBytes) / float64(totalBytes); frac > a.cfg.MaxWasteFraction {
			a.violate(InvWaste, "wasted %d of %d bytes (%.0f%% > %.0f%% bound) — waste is growing unbounded",
				wastedBytes, totalBytes, frac*100, a.cfg.MaxWasteFraction*100)
		}
	}
}

// Finish settles the goroutine-leak check, sweeps unpaired aborts, and
// returns the Result. Call it after the system under audit has fully
// drained (servers closed, sessions done). Finish is idempotent in
// effect but should be called once.
func (a *Auditor) Finish() *Result {
	// Settle: goroutines retire asynchronously after a drain, so poll up
	// to the timeout for the count to recede under watermark+slack.
	limit := a.watermarkLimit()
	deadline := time.Now().Add(a.cfg.SettleTimeout)
	n := runtime.NumGoroutine()
	for n > limit && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > limit {
		a.violate(InvLeak, "goroutines settled at %d, watermark %d (+%d slack): %s",
			n, a.watermark, a.cfg.GoroutineSlack, leakHint())
	}

	a.mu.Lock()
	var unpaired []int
	for chunk, open := range a.openAborts {
		if open > 0 {
			unpaired = append(unpaired, chunk)
		}
	}
	sort.Ints(unpaired)
	a.mu.Unlock()
	for _, chunk := range unpaired {
		a.violate(InvPairing, "chunk %d: chunk.abort never followed by its stream.downgrade", chunk)
	}

	a.mu.Lock()
	a.finished = true
	res := &Result{
		Watermark:  a.watermark,
		Settled:    n,
		Events:     a.events,
		Violations: append([]Violation(nil), a.violations...),
		Truncated:  a.truncated,
	}
	a.mu.Unlock()
	if a.cfg.Sink != nil {
		a.cfg.Sink.Emit(obs.NewEvent("audit.done").
			WithNum("events", float64(res.Events)).
			WithNum("violations", float64(res.Count())).
			WithNum("goroutines", float64(res.Settled)).
			WithNum("goroutine_watermark", float64(res.Watermark)))
	}
	return res
}

func (a *Auditor) watermarkLimit() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.watermark + a.cfg.GoroutineSlack
}

// leakHintBytes bounds the stack sample attached to a leak violation.
const leakHintBytes = 2048

// leakHint samples the live goroutine stacks (truncated) so a leak
// violation is actionable from the report alone.
func leakHint() string {
	buf := make([]byte, 64<<10)
	n := runtime.Stack(buf, true)
	s := string(buf[:n])
	if len(s) > leakHintBytes {
		s = s[:leakHintBytes] + "..."
	}
	return "sample stacks:\n" + s
}
