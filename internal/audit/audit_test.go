package audit

import (
	"strings"
	"testing"
	"time"

	"mpdash/internal/obs"
)

func quickConfig() Config {
	return Config{SettleTimeout: 200 * time.Millisecond}
}

func findViolation(res *Result, inv string) (Violation, bool) {
	for _, v := range res.Violations {
		if v.Invariant == inv {
			return v, true
		}
	}
	return Violation{}, false
}

func TestCleanRunPasses(t *testing.T) {
	a := New(quickConfig())
	a.Start()
	a.Watch(obs.NewEvent("chunk.abort").WithChunk(3, 2))
	a.Watch(obs.NewEvent("stream.downgrade").WithChunk(3, 2))
	note := a.Playback(1)
	for i := 0; i < 5; i++ {
		note(i, false)
	}
	a.CheckTotals(0, 0, 1e9)
	res := a.Finish()
	if !res.OK() {
		t.Fatalf("clean run failed the audit: %s", res.Summary())
	}
	if res.Events != 2 {
		t.Fatalf("watched %d events, want 2", res.Events)
	}
	if !strings.Contains(res.Summary(), "PASS") {
		t.Fatalf("summary lacks PASS:\n%s", res.Summary())
	}
}

func TestLedgerViolation(t *testing.T) {
	a := New(quickConfig())
	a.Start()
	a.CheckTotals(3, 0, 1e9)
	res := a.Finish()
	if v, ok := findViolation(res, InvLedger); !ok || !strings.Contains(v.Detail, "3 sessions") {
		t.Fatalf("ledger violation missing or wrong: %s", res.Summary())
	}
}

func TestPlaybackMonotonicity(t *testing.T) {
	a := New(quickConfig())
	a.Start()
	note := a.Playback(7)
	note(0, false)
	note(1, true)
	note(1, false) // replay: violation
	note(0, false) // backwards: violation
	note(2, false) // recovery is fine
	// An independent session reusing the same indices is NOT a violation.
	other := a.Playback(8)
	other(0, false)
	other(1, false)
	res := a.Finish()
	n := 0
	for _, v := range res.Violations {
		if v.Invariant == InvPlayback {
			n++
			if !strings.Contains(v.Detail, "session 7") {
				t.Fatalf("violation names the wrong session: %s", v)
			}
		}
	}
	if n != 2 {
		t.Fatalf("got %d playback violations, want 2: %s", n, res.Summary())
	}
}

func TestAbortPairing(t *testing.T) {
	a := New(quickConfig())
	a.Start()
	// Orphan downgrade: no outstanding abort.
	a.Watch(obs.NewEvent("stream.downgrade").WithChunk(1, 2))
	// Unpaired abort: never downgraded.
	a.Watch(obs.NewEvent("chunk.abort").WithChunk(4, 2))
	res := a.Finish()
	got := map[string]bool{}
	for _, v := range res.Violations {
		if v.Invariant == InvPairing {
			got[v.Detail] = true
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d pairing violations, want 2: %s", len(got), res.Summary())
	}
}

func TestWasteBound(t *testing.T) {
	a := New(quickConfig())
	a.Start()
	// 60% of 100 MB wasted: over the default 50% bound.
	a.CheckTotals(0, 60e6, 100e6)
	res := a.Finish()
	if _, ok := findViolation(res, InvWaste); !ok {
		t.Fatalf("waste violation missing: %s", res.Summary())
	}

	// Under the MinWasteBytes floor the fraction is never judged.
	b := New(quickConfig())
	b.Start()
	b.CheckTotals(0, 900, 1000)
	if res := b.Finish(); !res.OK() {
		t.Fatalf("tiny-run waste judged: %s", res.Summary())
	}
}

func TestGoroutineLeakDetected(t *testing.T) {
	a := New(Config{SettleTimeout: 150 * time.Millisecond, GoroutineSlack: 1})
	a.Start()
	// Leak goroutines past the slack and keep them parked beyond the
	// settle timeout.
	release := make(chan struct{})
	defer close(release)
	for i := 0; i < 4; i++ {
		go func() { <-release }()
	}
	res := a.Finish()
	v, ok := findViolation(res, InvLeak)
	if !ok {
		t.Fatalf("leak not detected: %s", res.Summary())
	}
	if !strings.Contains(v.Detail, "sample stacks") {
		t.Fatalf("leak violation lacks the stack hint: %s", v.Detail)
	}
}

func TestGoroutineSettleWithinTimeout(t *testing.T) {
	a := New(Config{SettleTimeout: 2 * time.Second, GoroutineSlack: 1})
	a.Start()
	// Transient goroutines that exit shortly after Finish starts polling
	// must NOT count as a leak.
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			time.Sleep(50 * time.Millisecond)
			<-done
		}()
	}
	close(done)
	res := a.Finish()
	if _, ok := findViolation(res, InvLeak); ok {
		t.Fatalf("transient goroutines flagged as leak: %s", res.Summary())
	}
}

func TestViolationCapAndJournal(t *testing.T) {
	tel := obs.New()
	a := New(Config{SettleTimeout: 100 * time.Millisecond, Sink: tel})
	tel.OnEmit = a.Watch // the production wiring: auditor watches its own sink
	a.Start()
	for i := 0; i < MaxViolations+10; i++ {
		// Orphan downgrades; each is a violation and an audit.violation
		// event, which Watch must ignore without recursing.
		tel.Emit(obs.NewEvent("stream.downgrade").WithChunk(i, 0))
	}
	res := a.Finish()
	if len(res.Violations) != MaxViolations || res.Truncated != 10 {
		t.Fatalf("cap broken: %d kept, %d truncated", len(res.Violations), res.Truncated)
	}
	if res.Count() != MaxViolations+10 {
		t.Fatalf("Count = %d", res.Count())
	}
	// audit.* events are not watched as run events.
	if res.Events != MaxViolations+10 {
		t.Fatalf("watched %d events, want %d (audit.* must be ignored)", res.Events, MaxViolations+10)
	}
	var sawViolation, sawDone bool
	for _, e := range tel.Journal.Events() {
		switch e.Type {
		case "audit.violation":
			sawViolation = true
		case "audit.done":
			sawDone = true
			if e.Num["violations"] != float64(MaxViolations+10) {
				t.Fatalf("audit.done violations = %g", e.Num["violations"])
			}
		}
	}
	if !sawViolation || !sawDone {
		t.Fatal("journal lacks audit.violation / audit.done events")
	}
}
