package netmp

// Circuit-breaker state-machine tests: table-driven transition sequences
// under an injected clock, so open→half-open cooldowns are exact and the
// suite runs in microseconds (and cleanly under -race).

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// breakerOp is one step of a transition table: an outcome fed to the
// breaker, or a clock advance.
type breakerOp struct {
	op      string        // "ok", "fail", "advance", "allow", "deny"
	latency time.Duration // for "ok"
	d       time.Duration // for "advance"
	want    BreakerState  // state expected after the step
}

func runBreakerTable(t *testing.T, pol BreakerPolicy, steps []breakerOp) {
	t.Helper()
	now := time.Unix(0, 0)
	b := NewCircuitBreaker(pol)
	b.now = func() time.Time { return now }
	for i, s := range steps {
		switch s.op {
		case "ok":
			b.RecordSuccess(s.latency)
		case "fail":
			b.RecordFailure(errors.New("boom"))
		case "advance":
			now = now.Add(s.d)
		case "allow":
			if !b.Allow() {
				t.Fatalf("step %d: Allow() = false, want true", i)
			}
		case "deny":
			if b.Allow() {
				t.Fatalf("step %d: Allow() = true, want false", i)
			}
		default:
			t.Fatalf("step %d: unknown op %q", i, s.op)
		}
		if got := b.State(); got != s.want {
			t.Fatalf("step %d (%s): state = %v, want %v", i, s.op, got, s.want)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	pol := BreakerPolicy{Window: 8, MinSamples: 4, TripErrorRate: 0.5, Cooldown: time.Second}
	for _, tc := range []struct {
		name  string
		pol   BreakerPolicy
		steps []breakerOp
	}{
		{
			name: "closed stays closed below min samples",
			pol:  pol,
			steps: []breakerOp{
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerClosed}, // 3 < MinSamples: no trip
				{op: "allow", want: BreakerClosed},
			},
		},
		{
			name: "error rate trips at min samples",
			pol:  pol,
			steps: []breakerOp{
				{op: "ok", want: BreakerClosed},
				{op: "ok", want: BreakerClosed},
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerOpen}, // 2/4 = 0.5 >= TripErrorRate
				{op: "deny", want: BreakerOpen},
			},
		},
		{
			name: "successes keep the rate below the trip line",
			pol:  pol,
			steps: []breakerOp{
				{op: "ok", want: BreakerClosed},
				{op: "ok", want: BreakerClosed},
				{op: "ok", want: BreakerClosed},
				{op: "fail", want: BreakerClosed}, // 1/4 < 0.5
				{op: "ok", want: BreakerClosed},
				{op: "fail", want: BreakerClosed}, // 2/6 < 0.5
				{op: "allow", want: BreakerClosed},
			},
		},
		{
			name: "cooldown admits a single half-open probe",
			pol:  pol,
			steps: []breakerOp{
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerOpen},
				{op: "advance", d: 999 * time.Millisecond, want: BreakerOpen}, // one tick short
				{op: "advance", d: time.Millisecond, want: BreakerHalfOpen},
				{op: "allow", want: BreakerHalfOpen}, // probe slot consumed
				{op: "deny", want: BreakerHalfOpen},  // only one probe in flight
			},
		},
		{
			name: "probe success closes and clears the window",
			pol:  pol,
			steps: []breakerOp{
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerOpen},
				{op: "advance", d: time.Second, want: BreakerHalfOpen},
				{op: "allow", want: BreakerHalfOpen},
				{op: "ok", want: BreakerClosed},
				// The window was reset on close: one fresh failure must not
				// re-trip against the stale pre-trip samples.
				{op: "fail", want: BreakerClosed},
				{op: "allow", want: BreakerClosed},
			},
		},
		{
			name: "probe failure reopens and restarts the cooldown",
			pol:  pol,
			steps: []breakerOp{
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerOpen},
				{op: "advance", d: time.Second, want: BreakerHalfOpen},
				{op: "allow", want: BreakerHalfOpen},
				{op: "fail", want: BreakerOpen},
				{op: "advance", d: 500 * time.Millisecond, want: BreakerOpen}, // cooldown restarted
				{op: "advance", d: 500 * time.Millisecond, want: BreakerHalfOpen},
			},
		},
		{
			name: "two probe successes required when configured",
			pol:  BreakerPolicy{Window: 8, MinSamples: 4, TripErrorRate: 0.5, Cooldown: time.Second, ProbeSuccesses: 2},
			steps: []breakerOp{
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerClosed},
				{op: "fail", want: BreakerOpen},
				{op: "advance", d: time.Second, want: BreakerHalfOpen},
				{op: "allow", want: BreakerHalfOpen},
				{op: "ok", want: BreakerHalfOpen}, // 1/2 probes
				{op: "allow", want: BreakerHalfOpen},
				{op: "ok", want: BreakerClosed}, // 2/2 probes
			},
		},
		{
			name: "latency trip opens on slow successes",
			pol:  BreakerPolicy{Window: 8, MinSamples: 4, TripErrorRate: 0.99, TripLatency: 100 * time.Millisecond, Cooldown: time.Second},
			steps: []breakerOp{
				{op: "ok", latency: 50 * time.Millisecond, want: BreakerClosed},
				{op: "ok", latency: 50 * time.Millisecond, want: BreakerClosed},
				{op: "ok", latency: 50 * time.Millisecond, want: BreakerClosed},
				{op: "ok", latency: 400 * time.Millisecond, want: BreakerOpen}, // mean 137ms > 100ms
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) { runBreakerTable(t, tc.pol, tc.steps) })
	}
}

func TestBreakerTripCountAndHealthy(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewCircuitBreaker(BreakerPolicy{Window: 4, MinSamples: 2, TripErrorRate: 0.5, Cooldown: time.Second})
	b.now = func() time.Time { return now }
	if !b.Healthy() {
		t.Fatal("new breaker not healthy")
	}
	b.RecordFailure(errors.New("a"))
	b.RecordFailure(errors.New("b"))
	if b.Trips() != 1 || b.Healthy() {
		t.Fatalf("trips=%d healthy=%v after trip", b.Trips(), b.Healthy())
	}
	now = now.Add(time.Second)
	// Healthy must not consume the half-open probe slot.
	if !b.Healthy() || !b.Healthy() {
		t.Fatal("Healthy consumed the probe slot")
	}
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.RecordFailure(errors.New("c"))
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	// Hammer one breaker from many goroutines; -race is the assertion.
	b := NewCircuitBreaker(BreakerPolicy{Window: 16, Cooldown: time.Millisecond})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				if b.Allow() {
					if (i+g)%3 == 0 {
						b.RecordFailure(fmt.Errorf("g%d i%d", g, i))
					} else {
						b.RecordSuccess(time.Millisecond)
					}
				}
				b.State()
				b.Healthy()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
