package netmp

import (
	"testing"
	"time"

	"mpdash/internal/abr"
	"mpdash/internal/dash"
)

// miniVideo is a scaled-down asset so real-time streaming tests finish in
// a couple of wall seconds: 300 ms chunks, small ladder.
func miniVideo() *dash.Video {
	return &dash.Video{
		Name:          "mini",
		ChunkDuration: 300 * time.Millisecond,
		NumChunks:     20,
		SizeSeed:      7,
		Levels: []dash.Level{
			{ID: 1, AvgBitrateMbps: 0.4},
			{ID: 2, AvgBitrateMbps: 0.8},
			{ID: 3, AvgBitrateMbps: 1.6},
		},
	}
}

func streamRig(t *testing.T, primaryMbps, secondaryMbps float64) (*ChunkServer, *ChunkServer, *Fetcher) {
	t.Helper()
	v := miniVideo()
	ps, err := NewChunkServer(v, primaryMbps)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewChunkServer(v, secondaryMbps)
	if err != nil {
		ps.Close()
		t.Fatal(err)
	}
	f, err := NewFetcher(v, ps.Addr(), ss.Addr())
	if err != nil {
		ps.Close()
		ss.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close(); ps.Close(); ss.Close() })
	return ps, ss, f
}

func TestStreamValidation(t *testing.T) {
	s := &Streamer{}
	if _, err := s.Stream(1); err == nil {
		t.Error("empty streamer accepted")
	}
}

func TestStreamHealthyNetwork(t *testing.T) {
	// Primary fast enough for the top rung: after startup the secondary
	// should stay nearly dark and playback must not stall.
	_, _, f := streamRig(t, 8, 8)
	st := &Streamer{Fetcher: f, ABR: abr.NewGPAC(), RateBased: true}
	res, err := st.Stream(8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 8 {
		t.Fatalf("chunks = %d", res.Chunks)
	}
	if !res.AllVerified {
		t.Error("payload verification failed")
	}
	if res.Stalls != 0 {
		t.Errorf("stalls = %d", res.Stalls)
	}
	// Startup chunk may use the secondary; steady state should not, so
	// the secondary share must be small.
	total := res.PrimaryBytes + res.SecondaryBytes
	if total == 0 {
		t.Fatal("no bytes")
	}
	if frac := float64(res.SecondaryBytes) / float64(total); frac > 0.35 {
		t.Errorf("secondary share %.2f too high on a healthy primary", frac)
	}
}

func TestStreamFromManifestBootstrap(t *testing.T) {
	// The mpdash-netfetch flow: learn the asset from the wire, stream
	// with manifest-authoritative sizes.
	v := miniVideo()
	ps, err := NewChunkServer(v, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ss, err := NewChunkServer(v, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	remote, sizes, err := FetchManifest(ps.Addr())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFetcher(remote, ps.Addr(), ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Sizes = sizes
	st := &Streamer{Fetcher: f, ABR: abr.NewGPAC(), RateBased: true}
	res, err := st.Stream(4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllVerified {
		t.Error("verification failed on manifest-bootstrapped stream")
	}
	if res.Chunks != 4 {
		t.Errorf("chunks = %d", res.Chunks)
	}
}

func TestStreamStarvedPrimaryUsesSecondary(t *testing.T) {
	// Primary at 0.6 Mbps cannot sustain even the low rungs in real
	// time: the secondary must carry a solid share and keep stalls rare.
	_, _, f := streamRig(t, 0.6, 8)
	st := &Streamer{Fetcher: f, ABR: abr.NewGPAC(), RateBased: true}
	res, err := st.Stream(6)
	if err != nil {
		t.Fatal(err)
	}
	if res.SecondaryBytes == 0 {
		t.Error("secondary never engaged on a starved primary")
	}
	if !res.AllVerified {
		t.Error("payload verification failed")
	}
}
