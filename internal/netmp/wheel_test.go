package netmp

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// manualClock is a mutex-guarded settable clock shared by the test and
// the wheel's driver goroutine.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1_700_000_000, 0)}
}

func (m *manualClock) clock() Clock {
	return func() time.Time {
		m.mu.Lock()
		defer m.mu.Unlock()
		return m.now
	}
}

// advance moves the clock and walks the wheel to it deterministically.
func (m *manualClock) advance(w *TimerWheel, d time.Duration) time.Time {
	m.mu.Lock()
	m.now = m.now.Add(d)
	now := m.now
	m.mu.Unlock()
	w.advanceTo(now)
	return now
}

func TestWheelInsertFireCancel(t *testing.T) {
	mc := newManualClock()
	w := NewTimerWheel(mc.clock(), time.Millisecond)
	defer w.Close()

	fired := make(chan struct{})
	w.AfterFunc(50*time.Millisecond, func() { close(fired) })
	stopped := w.AfterFunc(50*time.Millisecond, func() { t.Error("stopped timer fired") })

	if !stopped.Stop() {
		t.Fatal("Stop on an armed timer = false, want true")
	}
	if stopped.Stop() {
		t.Fatal("second Stop = true, want false")
	}

	mc.advance(w, 49*time.Millisecond)
	select {
	case <-fired:
		t.Fatal("timer fired before its deadline")
	case <-time.After(10 * time.Millisecond):
	}
	mc.advance(w, 2*time.Millisecond)
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire after its deadline passed")
	}
	// Stopping after the fire loses the race.
	if stopped.Stop() {
		t.Error("Stop after advance = true")
	}
}

// Deadlines separated by more than a tick must fire in deadline order;
// the coarse tick only reorders within one tick.
func TestWheelCoarseTickDeadlineOrdering(t *testing.T) {
	mc := newManualClock()
	w := NewTimerWheel(mc.clock(), time.Millisecond)
	defer w.Close()

	ch10, _ := w.After(10 * time.Millisecond)
	ch30, _ := w.After(30 * time.Millisecond)
	ch20, _ := w.After(20 * time.Millisecond)

	closed := func(ch <-chan struct{}) bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}

	mc.advance(w, 12*time.Millisecond)
	if !closed(ch10) || closed(ch20) || closed(ch30) {
		t.Fatalf("after 12ms: got (%v,%v,%v), want (fired,armed,armed)", closed(ch10), closed(ch20), closed(ch30))
	}
	mc.advance(w, 10*time.Millisecond)
	if !closed(ch20) || closed(ch30) {
		t.Fatalf("after 22ms: 20ms timer fired=%v, 30ms timer fired=%v", closed(ch20), closed(ch30))
	}
	mc.advance(w, 10*time.Millisecond)
	if !closed(ch30) {
		t.Fatal("after 32ms: 30ms timer still armed")
	}
}

// Two deadlines inside the same tick both fire on the advance that
// crosses them, and a single advance spanning many ticks catches
// everything in between.
func TestWheelSameTickAndBigJump(t *testing.T) {
	mc := newManualClock()
	w := NewTimerWheel(mc.clock(), 5*time.Millisecond)
	defer w.Close()

	a, _ := w.After(7 * time.Millisecond)
	b, _ := w.After(8 * time.Millisecond)
	c, _ := w.After(400 * time.Millisecond)
	mc.advance(w, 10*time.Millisecond)
	select {
	case <-a:
	default:
		t.Fatal("7ms timer not fired at 10ms")
	}
	select {
	case <-b:
	default:
		t.Fatal("8ms timer not fired at 10ms")
	}
	mc.advance(w, time.Second) // one jump across 200 ticks
	select {
	case <-c:
	default:
		t.Fatal("400ms timer not fired after 1s jump")
	}
}

// A timer beyond the ring's horizon rides extra laps: processing its
// slot early must not fire it.
func TestWheelWraparound(t *testing.T) {
	mc := newManualClock()
	w := NewTimerWheel(mc.clock(), time.Millisecond)
	defer w.Close()

	// Horizon is wheelSlots ticks = 512ms at a 1ms tick.
	far, _ := w.After(700 * time.Millisecond)
	mc.advance(w, 600*time.Millisecond) // past the slot, before the deadline
	select {
	case <-far:
		t.Fatal("timer fired a lap early")
	default:
	}
	mc.advance(w, 150*time.Millisecond)
	select {
	case <-far:
	default:
		t.Fatal("timer not fired after its deadline on the second lap")
	}
}

func TestWheelFrozenClockNeverFires(t *testing.T) {
	mc := newManualClock()
	w := NewTimerWheel(mc.clock(), time.Millisecond)
	defer w.Close()

	var fired atomic.Bool
	w.AfterFunc(time.Millisecond, func() { fired.Store(true) })
	time.Sleep(30 * time.Millisecond) // real driver ticks; frozen clock
	if fired.Load() {
		t.Fatal("timer fired under a frozen clock")
	}
}

func TestWheelTicker(t *testing.T) {
	mc := newManualClock()
	w := NewTimerWheel(mc.clock(), time.Millisecond)
	defer w.Close()

	tk := w.Ticker(20 * time.Millisecond)
	mc.advance(w, 21*time.Millisecond)
	select {
	case <-tk.C:
	default:
		t.Fatal("no tick after one interval")
	}
	// The ticker re-arms itself relative to its fire time.
	mc.advance(w, 21*time.Millisecond)
	select {
	case <-tk.C:
	default:
		t.Fatal("no tick after the second interval")
	}
	tk.Stop()
	mc.advance(w, 100*time.Millisecond)
	select {
	case <-tk.C:
		t.Fatal("tick delivered after Stop")
	default:
	}
}

// A nil wheel degrades to runtime timers so call sites can wire the
// wheel optionally.
func TestWheelNilFallback(t *testing.T) {
	var w *TimerWheel
	fired := make(chan struct{})
	tm := w.AfterFunc(5*time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("fallback timer did not fire")
	}
	if tm.Stop() {
		t.Error("Stop after fire = true on fallback timer")
	}
	ch, ct := w.After(time.Hour)
	if !ct.Stop() {
		t.Error("Stop on armed fallback timer = false")
	}
	select {
	case <-ch:
		t.Error("stopped fallback channel timer fired")
	default:
	}
}

// Concurrent arm/stop/advance across goroutines — run under -race in
// CI — with exact fire accounting: every timer either fired once or
// was stopped once, never both.
func TestWheelConcurrentArmStopAdvance(t *testing.T) {
	mc := newManualClock()
	w := NewTimerWheel(mc.clock(), time.Millisecond)
	defer w.Close()

	const workers = 32
	const perWorker = 50
	var fired, stoppedCnt atomic.Int64
	var wg sync.WaitGroup
	var done sync.WaitGroup
	done.Add(workers * perWorker)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := time.Duration(1+(id+i)%40) * time.Millisecond
				tm := w.AfterFunc(d, func() { fired.Add(1); done.Done() })
				if i%3 == 0 {
					if tm.Stop() {
						stoppedCnt.Add(1)
						done.Done()
					}
				}
			}
		}(g)
	}
	go func() {
		for i := 0; i < 60; i++ {
			mc.advance(w, 2*time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	for i := 0; i < 100; i++ {
		mc.advance(w, 10*time.Millisecond)
	}
	done.Wait()
	if got := fired.Load() + stoppedCnt.Load(); got != workers*perWorker {
		t.Fatalf("fired %d + stopped %d = %d, want %d", fired.Load(), stoppedCnt.Load(), got, workers*perWorker)
	}
}
