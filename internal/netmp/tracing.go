package netmp

// Span-trace propagation through the dual-socket fetcher. The Streamer
// opens one obs.Trace per chunk and installs it on the fetcher; the
// fetch workers, the supervisor's redial/backoff machinery, the hedge
// racer and the doom monitor all attach spans to whatever trace is
// current. The slot is an atomic pointer shared with both pathConns
// (which have no back-pointer to the fetcher), so reading it from any
// goroutine costs one atomic load and zero allocations — with tracing
// off the pointer is nil and every span call on it no-ops, preserving
// the hot path's zero-alloc contract exactly like the nil-safe
// telemetry handles in telemetry.go.

import (
	"sync/atomic"

	"mpdash/internal/obs"
)

// traceRef is the shared slot naming the in-flight chunk's trace.
// Exactly one chunk is in flight per fetcher, so one slot suffices.
type traceRef struct {
	p atomic.Pointer[obs.Trace]
}

// load returns the current trace (nil = tracing off or no chunk in
// flight). Nil-receiver-safe for the hedge's throwaway pathConn.
func (tr *traceRef) load() *obs.Trace {
	if tr == nil {
		return nil
	}
	return tr.p.Load()
}

// SetTrace installs (or, with nil, clears) the trace the next fetch's
// spans attach to. The Streamer calls it around each chunk; direct
// FetchChunk users may install their own trace the same way.
func (f *Fetcher) SetTrace(t *obs.Trace) {
	f.tref.p.Store(t)
}

// curTrace returns the in-flight chunk's trace (nil = off).
func (f *Fetcher) curTrace() *obs.Trace {
	return f.tref.p.Load()
}
