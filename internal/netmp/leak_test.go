package netmp

import (
	"runtime"
	"testing"
	"time"

	"mpdash/internal/abr"
)

// settleGoroutines polls until the live goroutine count recedes to limit
// or the deadline passes, returning the last count observed.
func settleGoroutines(limit int, deadline time.Duration) int {
	end := time.Now().Add(deadline)
	n := runtime.NumGoroutine()
	for n > limit && time.Now().Before(end) {
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestStreamerStopLeavesNoGoroutines is the standalone leak check the
// invariant auditor runs at swarm scale: a mid-session Stop followed by
// Fetcher/server teardown must return the process to its pre-run
// goroutine watermark — no acceptor, supervisor, shaper or hedge
// goroutine may outlive the session.
func TestStreamerStopLeavesNoGoroutines(t *testing.T) {
	const slack = 8 // timer and netpoll wiggle, matching audit.Config
	watermark := runtime.NumGoroutine()

	v := miniVideo()
	ps, err := NewChunkServer(v, 8)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewChunkServer(v, 8)
	if err != nil {
		ps.Close()
		t.Fatal(err)
	}
	f, err := NewFetcher(v, ps.Addr(), ss.Addr())
	if err != nil {
		ps.Close()
		ss.Close()
		t.Fatal(err)
	}

	st := &Streamer{Fetcher: f, ABR: abr.NewGPAC(), RateBased: true}
	type outcome struct {
		res *StreamResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := st.Stream(v.NumChunks)
		done <- outcome{res, err}
	}()

	// Let a chunk or two land, then ask for a graceful stop.
	time.Sleep(250 * time.Millisecond)
	st.Stop()
	var got outcome
	select {
	case got = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stream did not return after Stop")
	}
	if got.err != nil {
		t.Fatalf("stopped stream errored: %v", got.err)
	}
	if !got.res.Stopped {
		t.Error("result does not carry Stopped")
	}

	f.Close()
	ps.Close()
	ss.Close()

	if n := settleGoroutines(watermark+slack, 5*time.Second); n > watermark+slack {
		buf := make([]byte, 64<<10)
		t.Fatalf("goroutines %d > watermark %d + slack %d after teardown\n%s",
			n, watermark, slack, buf[:runtime.Stack(buf, true)])
	}
}
