package netmp

// Origin tier: a path no longer binds to a single server address but to
// a ranked OriginSet — N origin addresses in preference order, each
// gated by its own circuit breaker. Dials and redials go to the
// highest-ranked origin whose breaker admits traffic, so a sick origin
// (breaker open) fails over automatically and a recovered one takes the
// traffic back — the MP-DASH preference ordering applied to origins
// instead of radio links. Hedged requests (hedge.go) use the set to find
// a healthy backup origin distinct from the one currently serving.

import (
	"fmt"
	"sync"
	"time"
)

// origin is one ranked member of an OriginSet.
type origin struct {
	addr    string
	breaker *CircuitBreaker
}

// OriginSet ranks a path's origin addresses in preference order (index 0
// is most preferred) and tracks which one currently carries the path's
// connection. Safe for concurrent use.
type OriginSet struct {
	name    string
	origins []*origin

	mu        sync.Mutex
	cur       int
	failovers int64
}

// NewOriginSet builds a ranked origin set for a path. At least one
// address is required; pol bounds every origin's breaker.
func NewOriginSet(name string, addrs []string, pol BreakerPolicy) (*OriginSet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("netmp: path %s needs at least one origin", name)
	}
	set := &OriginSet{name: name}
	for _, a := range addrs {
		set.origins = append(set.origins, &origin{addr: a, breaker: NewCircuitBreaker(pol)})
	}
	return set, nil
}

// Size returns the number of ranked origins.
func (s *OriginSet) Size() int { return len(s.origins) }

// Failovers returns how many times the set has switched origins.
func (s *OriginSet) Failovers() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failovers
}

// Current returns the address of the origin currently carrying the path.
func (s *OriginSet) Current() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.origins[s.cur].addr
}

// CurrentState returns the current origin's breaker state.
func (s *OriginSet) CurrentState() BreakerState {
	s.mu.Lock()
	o := s.origins[s.cur]
	s.mu.Unlock()
	return o.breaker.State()
}

// States returns every origin's breaker state in rank order.
func (s *OriginSet) States() []BreakerState {
	out := make([]BreakerState, len(s.origins))
	for i, o := range s.origins {
		out[i] = o.breaker.State()
	}
	return out
}

// pick selects the origin for the next dial: the highest-ranked origin
// whose breaker admits traffic (Allow — half-open probe slots are
// consumed here). Picking a different origin than the current one counts
// a failover. A single-origin set always returns its sole origin — with
// nowhere to fail over, refusing it would only kill the path, and the
// supervisor's retry budgets already bound the damage. ok=false means
// every breaker refused; the caller should back off and retry, letting a
// cooldown elapse.
func (s *OriginSet) pick() (*origin, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, o := range s.origins {
		if o.breaker.Allow() {
			if i != s.cur {
				s.failovers++
				s.cur = i
			}
			return o, true
		}
	}
	if len(s.origins) == 1 {
		return s.origins[0], true
	}
	return nil, false
}

// pickSkip returns the highest-ranked origin not in skip, regardless of
// breaker state, updating the current origin (and counting a failover on
// a switch). The initial dial uses it to try each distinct origin at
// most once: a refused dial rarely trips a fresh breaker, so pick()
// alone would hand back the same dead rank-0 address until the attempt
// budget ran out.
func (s *OriginSet) pickSkip(skip map[*origin]bool) (*origin, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, o := range s.origins {
		if skip[o] {
			continue
		}
		if i != s.cur {
			s.failovers++
			s.cur = i
		}
		return o, true
	}
	return nil, false
}

// current returns the origin the path last dialed.
func (s *OriginSet) current() *origin {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.origins[s.cur]
}

// backup returns a healthy origin distinct from the current one for a
// hedged request, preferring higher rank. ok=false when no such origin
// exists (single-origin set, or all alternatives tripped).
func (s *OriginSet) backup() (*origin, bool) {
	s.mu.Lock()
	cur := s.cur
	s.mu.Unlock()
	for i, o := range s.origins {
		if i != cur && o.breaker.Healthy() {
			return o, true
		}
	}
	return nil, false
}

// OriginStats is a snapshot of one ranked origin's health.
type OriginStats struct {
	Addr    string
	State   BreakerState
	Trips   int64
	Current bool
}

// Stats returns per-origin snapshots in rank order.
func (s *OriginSet) Stats() []OriginStats {
	s.mu.Lock()
	cur := s.cur
	s.mu.Unlock()
	out := make([]OriginStats, len(s.origins))
	for i, o := range s.origins {
		out[i] = OriginStats{
			Addr:    o.addr,
			State:   o.breaker.State(),
			Trips:   o.breaker.Trips(),
			Current: i == cur,
		}
	}
	return out
}

// recordOutcome feeds one request outcome on o into its breaker.
func (o *origin) recordOutcome(err error, latency time.Duration) {
	if err == nil {
		o.breaker.RecordSuccess(latency)
	} else {
		o.breaker.RecordFailure(err)
	}
}
