package netmp

// Congestion-board tests: the shared-registry mechanics (EWMA fold, drop
// detection, epoch bookkeeping) are exercised with a frozen clock; the
// fetcher attachment tests cover predictor seeding, publish throttling
// and the pre-arm/ack cycle; the concurrent test runs the sharded hot
// path under -race.

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// frozenClock returns a Clock pinned to the moment of the call, keeping
// board timestamps deterministic while real-future socket deadlines
// still work.
func frozenClock() Clock {
	at := time.Now()
	return func() time.Time { return at }
}

func TestBoardPublishAndRate(t *testing.T) {
	b := NewCongestionBoardClocked(frozenClock())
	if _, ok := b.Rate("k"); ok {
		t.Error("empty board reported a rate")
	}
	if b.Publish("k", 1000) {
		t.Error("first sample registered as a capacity drop")
	}
	if r, ok := b.Rate("k"); !ok || r != 1000 {
		t.Errorf("rate after first sample = %v, %v; want 1000, true", r, ok)
	}
	// EWMA fold: 0.3*800 + 0.7*1000 = 940.
	b.Publish("k", 800)
	if r, _ := b.Rate("k"); r < 939 || r > 941 {
		t.Errorf("EWMA rate = %v, want ~940", r)
	}
	// Non-positive samples are ignored.
	if b.Publish("k", 0) || b.Publish("k", -5) {
		t.Error("degenerate sample registered as a drop")
	}
	st := b.Stats()
	if st.Publishes != 2 || st.Keys != 1 {
		t.Errorf("stats = %+v, want 2 publishes over 1 key", st)
	}
}

func TestBoardDropEpoch(t *testing.T) {
	b := NewCongestionBoardClocked(frozenClock())
	for i := 0; i < 3; i++ {
		b.Publish("link", 1000)
	}
	if e := b.DropEpoch("link"); e != 0 {
		t.Fatalf("epoch = %d before any drop", e)
	}
	// A sample under half the running estimate is a capacity drop: epoch
	// bumps and the estimate snaps to the observed post-drop rate instead
	// of draining the EWMA's memory.
	if !b.Publish("link", 400) {
		t.Fatal("collapse to 40% not registered as a drop")
	}
	if e := b.DropEpoch("link"); e != 1 {
		t.Errorf("epoch = %d after the drop, want 1", e)
	}
	if r, _ := b.Rate("link"); r != 400 {
		t.Errorf("post-drop rate = %v, want snapped 400", r)
	}
	// Settling near the new capacity is not another drop.
	if b.Publish("link", 380) {
		t.Error("steady post-drop sample registered as a second drop")
	}
	if st := b.Stats(); st.Drops != 1 {
		t.Errorf("stats drops = %d, want 1", st.Drops)
	}
	// Epoch reads on unknown keys are zero, not allocations.
	if e := b.DropEpoch("never-published"); e != 0 {
		t.Errorf("unknown key epoch = %d", e)
	}
	if st := b.Stats(); st.Keys != 1 {
		t.Errorf("DropEpoch created a key: %+v", st)
	}
}

func TestBoardSeedCountsReads(t *testing.T) {
	b := NewCongestionBoardClocked(frozenClock())
	if _, ok := b.Seed("k"); ok {
		t.Error("seed served from an empty board")
	}
	b.Publish("k", 5e5)
	if r, ok := b.Seed("k"); !ok || r != 5e5 {
		t.Errorf("seed = %v, %v; want 5e5, true", r, ok)
	}
	if st := b.Stats(); st.Seeds != 1 {
		t.Errorf("seeds counter = %d, want 1 (misses don't count)", st.Seeds)
	}
}

func TestBoardConcurrentPublish(t *testing.T) {
	b := NewCongestionBoard()
	const workers, perWorker, keys = 16, 200, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("link-%d", (w+i)%keys)
				b.Publish(key, 1e5+float64(i))
				b.Rate(key)
				b.DropEpoch(key)
			}
		}(w)
	}
	wg.Wait()
	st := b.Stats()
	if st.Publishes != workers*perWorker {
		t.Errorf("publishes = %d, want %d", st.Publishes, workers*perWorker)
	}
	if st.Keys != keys {
		t.Errorf("keys = %d, want %d", st.Keys, keys)
	}
	for k := 0; k < keys; k++ {
		if _, ok := b.Rate(fmt.Sprintf("link-%d", k)); !ok {
			t.Errorf("key link-%d lost its estimate", k)
		}
	}
}

func TestJoinBoardSeedsPredictor(t *testing.T) {
	_, _, f := streamRig(t, 0, 0)
	b := NewCongestionBoard()
	b.Publish("cell", 5e5)
	if got := f.PredictedRate(); got != 0 {
		t.Fatalf("fresh fetcher predicts %v before joining", got)
	}
	f.JoinBoard(b, "cell")
	if got := f.PredictedRate(); got != 5e5 {
		t.Errorf("seeded prediction = %v, want the board's 5e5", got)
	}
	if st := b.Stats(); st.Seeds != 1 {
		t.Errorf("board seeds = %d, want 1", st.Seeds)
	}
}

func TestJoinBoardKeepsWarmPredictor(t *testing.T) {
	_, _, f := streamRig(t, 0, 0)
	f.observeSegRate(32*1024, 32*time.Millisecond) // warm: 1 MB/s
	warm := f.PredictedRate()
	if warm <= 0 {
		t.Fatal("predictor did not warm")
	}
	b := NewCongestionBoard()
	b.Publish("cell", 100)
	f.JoinBoard(b, "cell")
	if got := f.PredictedRate(); got != warm {
		t.Errorf("board seed overwrote a warm predictor: %v -> %v", warm, got)
	}
}

func TestBoardPreArmAndAck(t *testing.T) {
	_, _, f := streamRig(t, 0, 0)
	b := NewCongestionBoardClocked(frozenClock())
	for i := 0; i < 3; i++ {
		b.Publish("house", 1e6)
	}
	f.JoinBoard(b, "house")
	if f.boardPreArmed() {
		t.Fatal("pre-armed with no drop since join")
	}
	// A neighbor session hits the wall: its published collapse bumps the
	// epoch and pre-arms this fetcher.
	b.Publish("house", 2e5)
	if !f.boardPreArmed() {
		t.Fatal("neighbor drop did not pre-arm")
	}
	// The pre-armed doom estimate is clamped by the board's post-drop
	// figure even while the local predictor is stale-high.
	f.hedge.observe(32*1024, time.Millisecond) // stale-fast local view
	if got := f.bestRateEstimate(true); got != 2e5 {
		t.Errorf("pre-armed estimate = %v, want board clamp 2e5", got)
	}
	// An on-time chunk acks the signal: the local predictor has caught
	// up, so the stale pre-arm must not keep tightening future chunks.
	f.ackBoardEpoch()
	if f.boardPreArmed() {
		t.Error("ack did not consume the pre-arm")
	}
}

func TestPublishRateThrottles(t *testing.T) {
	_, _, f := streamRig(t, 0, 0)
	b := NewCongestionBoard()
	f.JoinBoard(b, "k")
	// A burst of per-segment observations inside one publish interval
	// must cost at most one board write (plus the join-time none).
	for i := 0; i < 100; i++ {
		f.observeSegRate(8*1024, 10*time.Millisecond)
	}
	if st := b.Stats(); st.Publishes > 2 {
		t.Errorf("publishes = %d, want the hot path throttled to <=2", st.Publishes)
	}
	if _, ok := b.Rate("k"); !ok {
		t.Error("throttle swallowed every publish")
	}
}
