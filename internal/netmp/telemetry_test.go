package netmp

import (
	"strings"
	"testing"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/obs"
)

// TestFetcherClockInjection freezes the fetcher's wall clock and checks
// the timing fields derive from it: with time standing still, a real
// fetch reports zero duration (and therefore no deadline miss).
func TestFetcherClockInjection(t *testing.T) {
	_, _, f := streamRig(t, 50, 50)
	frozen := time.Now()
	f.SetClock(func() time.Time { return frozen })

	res, err := f.FetchChunk(0, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration != 0 {
		t.Errorf("frozen clock produced Duration = %v, want 0", res.Duration)
	}
	if res.MissedBy != 0 {
		t.Errorf("frozen clock produced MissedBy = %v, want 0", res.MissedBy)
	}
	f.SetClock(nil) // restore time.Now
	res, err = f.FetchChunk(1, 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Errorf("real clock produced Duration = %v, want > 0", res.Duration)
	}
}

// TestInstrumentedFetchChunkEvents checks the per-chunk journal span and
// the scrape-time metrics of an instrumented fetcher.
func TestInstrumentedFetchChunkEvents(t *testing.T) {
	_, _, f := streamRig(t, 50, 50)
	tel := obs.New()
	f.Instrument(tel)

	if _, err := f.FetchChunk(0, 1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	var start, first, done bool
	for _, e := range tel.Journal.Events() {
		if e.Chunk != 0 {
			continue
		}
		switch e.Type {
		case "chunk.start":
			start = true
			if e.Num["size"] <= 0 || e.Num["segments"] <= 0 {
				t.Errorf("chunk.start payload incomplete: %+v", e.Num)
			}
		case "chunk.firstbyte":
			first = true
			if e.Num["elapsed_s"] < 0 {
				t.Errorf("negative first-byte latency: %v", e.Num["elapsed_s"])
			}
		case "chunk.done":
			done = true
			if e.Num["duration_s"] <= 0 {
				t.Errorf("chunk.done without duration: %+v", e.Num)
			}
		}
	}
	if !start || !first || !done {
		t.Errorf("span incomplete: start=%v firstbyte=%v done=%v", start, first, done)
	}

	var b strings.Builder
	if err := tel.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`mpdash_chunks_total{result="met"} 1`,
		`mpdash_path_up{path="primary"} 1`,
		`mpdash_path_bytes_total{path="primary"}`,
		`mpdash_origin_breaker_state{origin=`,
		`mpdash_chunk_duration_seconds_count 1`,
		`mpdash_chunk_first_byte_seconds_count 1`,
		`mpdash_hedges_total{result="issued"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestEngageEventUnderPressure starves the primary so the secondary must
// engage, and checks the journal records the toggle with the driving
// numbers (measured rate, remaining bytes, window left).
func TestEngageEventUnderPressure(t *testing.T) {
	// A chunk far larger than the server burst (64KB), a primary far too
	// slow for the deadline, a fast secondary: the controller must engage.
	v := &dash.Video{
		Name:          "pressure",
		ChunkDuration: 2 * time.Second,
		NumChunks:     4,
		SizeSeed:      3,
		Levels:        []dash.Level{{ID: 1, AvgBitrateMbps: 4}},
	}
	ps, err := NewChunkServer(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ss, err := NewChunkServer(v, 50)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	f, err := NewFetcher(v, ps.Addr(), ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tel := obs.New()
	f.Instrument(tel)

	if _, err := f.FetchChunk(0, 0, 800*time.Millisecond); err != nil {
		t.Fatal(err)
	}

	engaged, withWork := false, false
	for _, e := range tel.Journal.Events() {
		if e.Type != "path.engage" {
			continue
		}
		engaged = true
		if e.Path != "secondary" {
			t.Errorf("engage on path %q, want secondary", e.Path)
		}
		if _, ok := e.Num["rate_bps"]; !ok {
			t.Error("engage event missing rate_bps")
		}
		if e.Num["remaining_bytes"] > 0 {
			withWork = true
		}
		if _, ok := e.Str["reason"]; !ok {
			t.Error("engage event missing reason")
		}
	}
	if !engaged {
		t.Fatal("no path.engage event despite a starved primary")
	}
	if !withWork {
		t.Error("no engage event carried a positive remaining_bytes")
	}

	var b strings.Builder
	if err := tel.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `mpdash_secondary_toggles_total{action="engage"}`) {
		t.Error("engage counter not exposed")
	}
}

// TestUninstrumentedFetchEmitsNothing pins the off switch: without
// Instrument no handles exist and FetchChunk takes the nil fast path.
func TestUninstrumentedFetchEmitsNothing(t *testing.T) {
	_, _, f := streamRig(t, 50, 50)
	if fo := f.obsHandles(); fo != nil {
		t.Fatal("fresh fetcher has observation handles")
	}
	if _, err := f.FetchChunk(0, 0, time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestStreamerInstrument checks the streamer-level series land in the
// registry and the journal sees stream-side events alongside the
// fetcher's.
func TestStreamerInstrument(t *testing.T) {
	_, _, f := streamRig(t, 50, 50)
	st := &Streamer{Fetcher: f, ABR: constABR(1)}
	tel := obs.New()
	st.Instrument(tel)

	if _, err := st.Stream(3); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := tel.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"mpdash_stream_stalls_total 0",
		"mpdash_stream_buffer_seconds",
		`mpdash_chunks_total{result="met"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// All three chunks completed one way or another (the startup chunk's
	// deliberately minimal deadline may count as missed, never failed).
	var done int
	for _, e := range tel.Journal.Events() {
		if e.Type == "chunk.done" {
			done++
		}
	}
	if done != 3 {
		t.Errorf("chunk.done events = %d, want 3", done)
	}
	if strings.Contains(out, `result="failed"} 1`) {
		t.Error("a chunk failed on clean paths")
	}
}

// constABR always picks the same ladder index.
type constABR int

func (c constABR) SelectLevel(dash.PlayerState) int { return int(c) }

func (constABR) Name() string { return "const" }

func (constABR) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}
