package netmp

import "time"

// Clock supplies the package's notion of wall time. The nil Clock reads
// time.Now, so zero-valued configs behave exactly as before; tests
// inject a fake to make journal timestamps and duration metrics
// deterministic. The same clock that timestamps telemetry also feeds
// socket deadlines, so an injected clock should stay within shouting
// distance of real time when real I/O is involved (a fixed clock
// captured at test start works: deadlines land in the real future and
// every recorded duration collapses to zero).
type Clock func() time.Time

// now resolves the clock, defaulting to time.Now.
func (c Clock) now() time.Time {
	if c == nil {
		return time.Now()
	}
	return c()
}

// Now is the exported form of the nil-safe resolution, for packages
// (internal/perf, cmd/mpdash-benchgate) that must route every wall-time
// read through an injectable clock rather than time.Now.
func (c Clock) Now() time.Time { return c.now() }
