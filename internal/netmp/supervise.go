package netmp

// Path supervision: the fault-tolerance layer under the dual-socket
// fetcher. Every range request runs under an I/O deadline; a transient
// failure (reset, stall, premature close, corrupted payload, server
// 503) is absorbed by retrying the segment — redialling the path with
// exponential backoff and jitter when the connection's framing state is
// unknown — and a path whose redial budget is exhausted is declared down
// for the session. The fetcher then runs in degraded single-path mode on
// whichever path survives: if the preferred path dies, the secondary is
// forced on unconditionally (inverting Algorithm 1's cost preference to
// honor the deadline) rather than aborting the stream.
//
// Each path dials through a ranked OriginSet (origin.go): request and
// dial outcomes feed the current origin's circuit breaker, and a redial
// picks the highest-ranked origin whose breaker admits traffic — so an
// origin that trips fails over without spending the path's life, and the
// path only dies when no origin can carry it.

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"mpdash/internal/obs"
)

// PathState is a supervised path's health.
type PathState int32

const (
	// PathUp: the path is connected and its last request succeeded.
	PathUp PathState = iota
	// PathDegraded: the path recently faulted and is retrying/redialling.
	PathDegraded
	// PathDown: the redial budget is exhausted (or a fatal protocol error
	// occurred); the path is out for the rest of the session.
	PathDown
)

func (ps PathState) String() string {
	switch ps {
	case PathUp:
		return "up"
	case PathDegraded:
		return "degraded"
	case PathDown:
		return "down"
	}
	return fmt.Sprintf("PathState(%d)", int32(ps))
}

// RetryPolicy bounds the supervisor's recovery behaviour. The zero value
// selects the defaults noted on each field.
type RetryPolicy struct {
	// IOTimeout is the per-I/O-operation deadline on a range request
	// (write, status/header read, and each body block read). Default 2s.
	IOTimeout time.Duration
	// BaseBackoff is the first retry/redial delay; it doubles per
	// consecutive failure. Default 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Default 2s.
	MaxBackoff time.Duration
	// JitterFrac adds a uniform random fraction of the backoff on top of
	// it, decorrelating the two paths' retries. Default 0.2.
	JitterFrac float64
	// MaxRedials is the number of consecutive failed reconnect attempts
	// before the path is declared down. Default 5.
	MaxRedials int
	// SegmentBudget is how many times one path attempts a segment before
	// requeueing it to the ledger for the other path. Default 3.
	SegmentBudget int
	// RequeueBudget is how many times a segment may be requeued in total
	// before the whole chunk fails with ErrChunkExhausted. Default 6.
	RequeueBudget int
	// Seed seeds the jitter generator (0 = 1) for reproducible backoff
	// schedules.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.IOTimeout <= 0 {
		p.IOTimeout = 2 * time.Second
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	if p.JitterFrac <= 0 {
		p.JitterFrac = 0.2
	}
	if p.MaxRedials <= 0 {
		p.MaxRedials = 5
	}
	if p.SegmentBudget <= 0 {
		p.SegmentBudget = 3
	}
	if p.RequeueBudget <= 0 {
		p.RequeueBudget = 6
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// backoff returns the delay before the n-th (0-based) consecutive retry,
// exponential with jitter, capped at MaxBackoff.
func (p RetryPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	d := p.BaseBackoff << uint(n)
	if d <= 0 || d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d + time.Duration(rng.Float64()*p.JitterFrac*float64(d))
}

// PathStats is a snapshot of one supervised path's health counters.
type PathStats struct {
	Name  string
	State PathState
	// Origin is the address of the origin currently carrying the path.
	Origin string
	// Breaker is the current origin's circuit-breaker state.
	Breaker BreakerState
	// Failovers counts origin switches on this path.
	Failovers int64
	// Origins snapshots every ranked origin's health.
	Origins []OriginStats
	// Retries counts failed range-request attempts that were absorbed
	// (retried or requeued) rather than surfaced as errors.
	Retries int64
	// Redials counts reconnect attempts, successful or not.
	Redials int64
	// Reconnects counts redials that produced a live connection.
	Reconnects int64
	// Bytes counts verified payload bytes delivered by this path.
	Bytes int64
	// WastedBytes counts payload bytes discarded from failed or
	// corrupted attempts.
	WastedBytes int64
	// DownFor is how long the path has been down (zero while it lives).
	DownFor time.Duration
}

// Supervision errors. errSegmentFailed and errPathDown steer the worker
// loops; ErrChunkExhausted and ErrAllPathsDown surface to callers.
var (
	errSegmentFailed = errors.New("netmp: segment retry budget exhausted on this path")
	errPathDown      = errors.New("netmp: path down")
	// errBadStatus marks a non-2xx response — a protocol-level (fatal)
	// failure that no amount of redialling will fix.
	errBadStatus = errors.New("netmp: unexpected status")
	// errServerBusy marks a 503 overload rejection: transient, worth a
	// backoff and (via the breaker) a failover to another origin.
	errServerBusy = errors.New("netmp: server busy (503)")
	// errCorruptPayload marks a response whose bytes failed verification;
	// it feeds the origin breaker (the attempt itself is retried on the
	// intact connection).
	errCorruptPayload = errors.New("netmp: corrupt payload")
	// errHedgeCancelled marks a supervised attempt aborted because its
	// hedge twin already delivered the segment — not a fault.
	errHedgeCancelled = errors.New("netmp: attempt cancelled by winning hedge")

	// ErrChunkExhausted reports a chunk whose segments kept failing on
	// every live path until the requeue budget ran out. The Streamer
	// responds by refetching the chunk once at the lowest level.
	ErrChunkExhausted = errors.New("netmp: chunk retry budget exhausted")
	// ErrAllPathsDown reports that no path remains to carry traffic.
	ErrAllPathsDown = errors.New("netmp: all paths down")
)

// isTransient classifies a request error: anything I/O-shaped (reset,
// timeout, EOF, broken pipe) or a 503 overload rejection is worth a
// redial; any other parsed-but-wrong HTTP status is a protocol mismatch
// and fatal for the path.
func isTransient(err error) bool {
	return !errors.Is(err, errBadStatus) || errors.Is(err, errServerBusy)
}

type pathConn struct {
	name   string
	set    *OriginSet // ranked origins with per-origin breakers
	conn   net.Conn   // owned by the single worker goroutine using the path
	r      *bufio.Reader
	rng    *rand.Rand // jitter; owner-goroutine only
	closed bool       // set by Close; owner/Close coordination via mu
	clk    Clock      // injectable wall clock (nil = time.Now)
	sink   obs.Sink   // telemetry journal (nil = off)
	tref   *traceRef  // in-flight chunk's span trace (nil = off); set at construction

	mu          sync.Mutex // guards the stats + state below
	state       PathState
	retries     int64
	redials     int64
	reconnects  int64
	bytes       int64
	wasted      int64
	consecFails int // consecutive failed redials
	downAt      time.Time
	cancelled   bool // a winning hedge closed the conn under us
}

// dialPath dials a single-origin path (manifest bootstrap, legacy
// constructors).
func dialPath(name, addr string) (*pathConn, error) {
	return dialOrigins(name, []string{addr}, BreakerPolicy{})
}

// dialOrigins dials a path through a ranked origin list: origins are
// tried in preference order, dial failures feed their breakers, and the
// first reachable origin carries the connection.
func dialOrigins(name string, addrs []string, pol BreakerPolicy) (*pathConn, error) {
	set, err := NewOriginSet(name, addrs, pol)
	if err != nil {
		return nil, err
	}
	pc := &pathConn{name: name, set: set}
	var lastErr error
	tried := make(map[*origin]bool, len(addrs))
	for range addrs {
		o, ok := set.pick()
		if !ok || tried[o] {
			// The breakers offer nothing new — walk to the best untried
			// origin so the initial dial covers each address once.
			o, ok = set.pickSkip(tried)
		}
		if !ok {
			break
		}
		tried[o] = true
		conn, err := net.DialTimeout("tcp", o.addr, 5*time.Second)
		if err == nil {
			pc.conn = conn
			pc.r = bufio.NewReader(conn)
			return pc, nil
		}
		o.breaker.RecordFailure(err)
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no origin admitted the dial")
	}
	return nil, fmt.Errorf("netmp: dial %s (%s): %w", name, strings.Join(addrs, ","), lastErr)
}

func (pc *pathConn) isDown() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.state == PathDown
}

// setClock injects the path's wall clock (nil = time.Now).
func (pc *pathConn) setClock(c Clock) {
	pc.mu.Lock()
	pc.clk = c
	pc.mu.Unlock()
}

// setSink wires the path's journal events to a telemetry sink.
func (pc *pathConn) setSink(sink obs.Sink) {
	pc.mu.Lock()
	pc.sink = sink
	pc.mu.Unlock()
}

// obsSink returns the path's telemetry sink (nil = off) under the lock,
// so Instrument may race with in-flight fetches without tripping -race.
func (pc *pathConn) obsSink() obs.Sink {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.sink
}

// emitFault journals one absorbed request fault.
func (pc *pathConn) emitFault(err error) {
	if sink := pc.obsSink(); sink != nil {
		sink.Emit(obs.NewEvent("fetch.fault").WithPath(pc.name).WithStr("error", err.Error()))
	}
}

// emitState journals a path state transition.
func (pc *pathConn) emitState(to PathState) {
	if sink := pc.obsSink(); sink != nil {
		sink.Emit(obs.NewEvent("path.state").WithPath(pc.name).WithStr("state", to.String()))
	}
}

// noteSuccess records n verified payload bytes and restores the path to
// healthy.
func (pc *pathConn) noteSuccess(n int64) {
	pc.mu.Lock()
	pc.bytes += n
	pc.consecFails = 0
	recovered := pc.state == PathDegraded
	if pc.state != PathDown {
		pc.state = PathUp
	}
	pc.mu.Unlock()
	if recovered {
		pc.emitState(PathUp)
	}
}

// noteFault records one absorbed failure with wasted bytes.
func (pc *pathConn) noteFault(wasted int64) {
	pc.mu.Lock()
	pc.retries++
	pc.wasted += wasted
	degraded := pc.state == PathUp
	if pc.state != PathDown {
		pc.state = PathDegraded
	}
	pc.mu.Unlock()
	if degraded {
		pc.emitState(PathDegraded)
	}
}

// markDown declares the path dead for the session.
func (pc *pathConn) markDown() {
	pc.mu.Lock()
	died := pc.state != PathDown
	if died {
		pc.state = PathDown
		pc.downAt = pc.clk.now()
	}
	pc.mu.Unlock()
	if died {
		pc.emitState(PathDown)
	}
}

// cancelForHedge aborts the path's in-flight request because its hedge
// twin already delivered the segment: the connection is closed (framing
// mid-body is unrecoverable) and the flag tells the supervised loop the
// resulting error is a cancellation, not a fault.
func (pc *pathConn) cancelForHedge() {
	pc.mu.Lock()
	pc.cancelled = true
	conn := pc.conn
	pc.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

// takeCancelled consumes a pending hedge cancellation.
func (pc *pathConn) takeCancelled() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	was := pc.cancelled
	pc.cancelled = false
	return was
}

func (pc *pathConn) stats() PathStats {
	pc.mu.Lock()
	st := PathStats{
		Name:        pc.name,
		State:       pc.state,
		Retries:     pc.retries,
		Redials:     pc.redials,
		Reconnects:  pc.reconnects,
		Bytes:       pc.bytes,
		WastedBytes: pc.wasted,
	}
	if pc.state == PathDown && !pc.downAt.IsZero() {
		st.DownFor = pc.clk.now().Sub(pc.downAt)
	}
	pc.mu.Unlock()
	if pc.set != nil {
		st.Origin = pc.set.Current()
		st.Breaker = pc.set.CurrentState()
		st.Failovers = pc.set.Failovers()
		st.Origins = pc.set.Stats()
	}
	return st
}

// counters snapshots the cumulative fault counters — the per-fetch
// delta basis.
func (pc *pathConn) counters() (retries, redials, wasted int64) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.retries, pc.redials, pc.wasted
}

func (pc *pathConn) jitterRNG(pol RetryPolicy) *rand.Rand {
	if pc.rng == nil {
		var h int64
		for _, c := range pc.name {
			h = h*131 + int64(c)
		}
		pc.rng = rand.New(rand.NewSource(pol.Seed ^ h))
	}
	return pc.rng
}

// redial replaces the path's connection after a transient failure,
// backing off exponentially between attempts. Each attempt asks the
// origin set for the highest-ranked origin whose breaker admits traffic
// — failing over away from a tripped origin, and back once it recovers.
// It returns errPathDown once MaxRedials consecutive attempts fail.
// Owner-goroutine only.
func (pc *pathConn) redial(pol RetryPolicy) error {
	pc.conn.Close()
	rng := pc.jitterRNG(pol)
	// One span covers the whole redial loop — dial attempts, origin
	// failover and the backoff sleeps between them — so the critical-path
	// walker charges connection-recovery time to "redial" wholesale.
	rsp := pc.tref.load().StartSpan(obs.CatRedial, "redial")
	rsp.SetPath(pc.name)
	defer rsp.End()
	for {
		pc.mu.Lock()
		if pc.closed || pc.state == PathDown {
			pc.mu.Unlock()
			return errPathDown
		}
		attempt := pc.consecFails
		pc.redials++
		pc.mu.Unlock()

		o, ok := pc.set.pick()
		var err error
		if !ok {
			err = fmt.Errorf("netmp: %s: every origin breaker open", pc.name)
		} else {
			var conn net.Conn
			conn, err = net.DialTimeout("tcp", o.addr, pol.IOTimeout)
			pc.emitRedial(o.addr, err == nil, attempt)
			if err == nil {
				// Swap the connection under the mutex: the doom monitor
				// may call cancelForHedge concurrently, and it must see
				// either the old conn (already closed) or the new one —
				// never a torn pair. A cancel that raced the swap is
				// dropped with the old conn; the worker winds down at the
				// ledger's doomed check instead.
				pc.mu.Lock()
				pc.conn = conn
				pc.r = bufio.NewReader(conn)
				pc.reconnects++
				pc.consecFails = 0
				pc.cancelled = false
				pc.mu.Unlock()
				rsp.SetStr("origin", o.addr)
				return nil
			}
			o.breaker.RecordFailure(err)
		}
		pc.mu.Lock()
		pc.consecFails++
		exhausted := pc.consecFails >= pol.MaxRedials
		pc.mu.Unlock()
		if exhausted {
			pc.markDown()
			return fmt.Errorf("%w: %s after %d redials: %v", errPathDown, pc.name, pol.MaxRedials, err)
		}
		time.Sleep(pol.backoff(attempt, rng))
	}
}

// emitRedial journals one reconnect attempt.
func (pc *pathConn) emitRedial(origin string, ok bool, attempt int) {
	if sink := pc.obsSink(); sink != nil {
		sink.Emit(obs.NewEvent("path.redial").WithPath(pc.name).
			WithStr("origin", origin).WithStr("ok", strconv.FormatBool(ok)).
			WithNum("attempt", float64(attempt)))
	}
}

// close tears down the path's connection (session shutdown).
func (pc *pathConn) close() error {
	pc.mu.Lock()
	pc.closed = true
	pc.mu.Unlock()
	return pc.conn.Close()
}

// headerCut matches "Key: value" case-insensitively (RFC 9110 field
// names), returning the trimmed value.
func headerCut(line, key string) (string, bool) {
	if len(line) > len(key) && line[len(key)] == ':' && strings.EqualFold(line[:len(key)], key) {
		return strings.TrimSpace(line[len(key)+1:]), true
	}
	return "", false
}
