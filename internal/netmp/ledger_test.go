package netmp

// Race-focused tests for the fetchState segment ledger: two workers
// hammer the front and back concurrently, with random failures feeding
// segments back through requeue. Run with -race; the invariants are
// exactly-once completion, no double-claim, no skipped segment.

import (
	"math/rand"
	"sync"
	"testing"
)

func TestLedgerSplitsWithoutOverlap(t *testing.T) {
	a, b := &pathConn{name: "a"}, &pathConn{name: "b"}
	st := newFetchState(10, 3)
	var claimed []int
	for {
		seg := st.claimFrontFor(a)
		if seg < 0 {
			break
		}
		claimed = append(claimed, seg)
		st.complete()
		if seg2 := st.claimBackFor(b); seg2 >= 0 {
			claimed = append(claimed, seg2)
			st.complete()
		}
	}
	if !st.finished() {
		t.Fatalf("ledger not finished after draining: %d claimed", len(claimed))
	}
	seen := make(map[int]bool)
	for _, s := range claimed {
		if seen[s] {
			t.Fatalf("segment %d claimed twice", s)
		}
		seen[s] = true
	}
	for s := 0; s < 10; s++ {
		if !seen[s] {
			t.Fatalf("segment %d never claimed", s)
		}
	}
}

func TestLedgerRequeuePrefersOtherPath(t *testing.T) {
	a, b := &pathConn{name: "a"}, &pathConn{name: "b"}
	st := newFetchState(4, 3)
	seg := st.claimFrontFor(a)
	st.requeue(seg, a)
	// a must not immediately re-claim its own failure while fresh work
	// remains…
	if got := st.claimFrontFor(a); got == seg {
		t.Fatalf("path a re-claimed its own failed segment %d over fresh work", seg)
	} else {
		st.complete()
	}
	// …but b recovers it ahead of fresh front segments.
	if got := st.claimFrontFor(b); got != seg {
		t.Fatalf("path b claimed %d, want requeued %d", got, seg)
	}
	st.complete()
}

func TestLedgerSelfRetryWhenAlone(t *testing.T) {
	a := &pathConn{name: "a"}
	st := newFetchState(2, 3)
	s0 := st.claimFrontFor(a)
	st.complete()
	s1 := st.claimFrontFor(a)
	st.requeue(s1, a)
	// No fresh work left: the sole survivor retries its own failure.
	if got := st.claimFrontFor(a); got != s1 {
		t.Fatalf("claim = %d, want self-requeued %d", got, s1)
	}
	st.complete()
	if !st.finished() {
		t.Fatal("not finished")
	}
	_ = s0
}

func TestLedgerBudgetAborts(t *testing.T) {
	a := &pathConn{name: "a"}
	st := newFetchState(1, 2)
	for i := 0; i < 3; i++ {
		seg := st.claimFrontFor(a)
		if seg < 0 {
			t.Fatalf("claim %d returned nothing", i)
		}
		st.requeue(seg, a)
	}
	if !st.aborted() {
		t.Fatal("budget of 2 not enforced after 3 requeues")
	}
	if st.claimFrontFor(a) >= 0 || st.claimBackFor(a) >= 0 {
		t.Fatal("aborted ledger still hands out segments")
	}
}

func TestLedgerConcurrentExactlyOnce(t *testing.T) {
	// Two claimers race front and back while ~30% of claims fail and
	// requeue. Every segment must complete exactly once; under -race this
	// also exercises the locking.
	const total = 400
	a, b := &pathConn{name: "a"}, &pathConn{name: "b"}
	st := newFetchState(total, 64)

	var mu sync.Mutex
	completions := make(map[int]int)

	worker := func(pc *pathConn, fromBack bool, seed int64) func() {
		return func() {
			rng := rand.New(rand.NewSource(seed))
			for {
				if st.finished() || st.aborted() {
					return
				}
				var seg int
				if fromBack {
					seg = st.claimBackFor(pc)
				} else {
					seg = st.claimFrontFor(pc)
				}
				if seg < 0 {
					continue
				}
				if rng.Float64() < 0.3 {
					st.requeue(seg, pc)
					continue
				}
				mu.Lock()
				completions[seg]++
				mu.Unlock()
				st.complete()
			}
		}
	}

	var wg sync.WaitGroup
	for i, w := range []func(){worker(a, false, 1), worker(b, true, 2), worker(a, false, 3), worker(b, true, 4)} {
		wg.Add(1)
		go func(i int, w func()) { defer wg.Done(); w() }(i, w)
	}
	wg.Wait()

	if st.aborted() {
		t.Fatal("ledger aborted despite a generous budget")
	}
	if !st.finished() {
		t.Fatal("ledger not finished")
	}
	for seg := 0; seg < total; seg++ {
		if completions[seg] != 1 {
			t.Errorf("segment %d completed %d times", seg, completions[seg])
		}
	}
}
