package netmp

// Edge cache tier. An EdgeServer speaks the same minimal HTTP/1.1 range
// protocol as the origin ChunkServer, but serves chunk bodies out of a
// shared cache.Cache and proxies misses to the ranked origin set through
// a pool of supervised Fetchers — so every origin fill rides the
// breaker/failover/hedge machinery the clients already exercise. Each
// 206 response carries an "X-MPDash-Cache: hit|miss" header, the hint
// the client-side scheduler folds into its engage and hedge decisions
// (see cachehint.go).
//
// Misses are filled whole-chunk: an MP-DASH client splits a chunk into
// disjoint range requests across two paths, and the cache's singleflight
// collapses all of them (plus every concurrent session's) into a single
// origin fetch. The fill transfers and verifies real payload bytes from
// the origin — paying the true origin cost — and then reconstructs the
// deterministic body for the store.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mpdash/internal/cache"
	"mpdash/internal/dash"
	"mpdash/internal/obs"
)

// EdgePolicy configures an EdgeServer. The zero value selects the
// defaults noted on each field.
type EdgePolicy struct {
	// RateMbps shapes the edge's client-facing downlink (the path
	// bottleneck the edge now fronts); non-positive = unshaped.
	RateMbps float64
	// FillFetchers is the pool of supervised origin fetchers, bounding
	// concurrent distinct-chunk fills. Default 2.
	FillFetchers int
	// FillWindow is the deadline window handed to each whole-chunk
	// origin fill. Default 15s.
	FillWindow time.Duration
	// Breaker, Retry and Hedge bound the fill fetchers' origin
	// machinery; zero values select the package defaults.
	Breaker BreakerPolicy
	Retry   RetryPolicy
	Hedge   HedgePolicy
}

func (p EdgePolicy) withDefaults() EdgePolicy {
	if p.FillFetchers <= 0 {
		p.FillFetchers = 2
	}
	if p.FillWindow <= 0 {
		p.FillWindow = 15 * time.Second
	}
	return p
}

// EdgeServer is one cache-tier front: a listener, a shared chunk store,
// and a fetcher pool toward the ranked origins.
type EdgeServer struct {
	Video *dash.Video

	name   string // cache key namespace (the video's catalog identity)
	addr   string
	ln     net.Listener
	bucket *TokenBucket
	pol    EdgePolicy
	store  *cache.Cache

	pool     chan *Fetcher
	fetchers []*Fetcher

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	clk    Clock

	mu          sync.Mutex
	served      int64
	originBytes int64
	fillErrs    int64

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	sink   obs.Sink // guarded by connMu
}

// NewEdgeServer starts an edge on a loopback port, fronting origins for
// video. name namespaces the video's keys in the shared store (two
// videos with the same name share entries, which is the point of a
// shared cache tier). The origin list is ranked: the fill fetchers
// apply breaker-driven failover across it.
func NewEdgeServer(video *dash.Video, name string, origins []string, store *cache.Cache, pol EdgePolicy) (*EdgeServer, error) {
	if err := video.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, errors.New("netmp: edge needs a cache store")
	}
	if len(origins) == 0 {
		return nil, errors.New("netmp: edge needs at least one origin")
	}
	pol = pol.withDefaults()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netmp: edge listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &EdgeServer{
		Video:  video,
		name:   name,
		addr:   ln.Addr().String(),
		ln:     ln,
		bucket: newTokenBucketClocked(pol.RateMbps*1e6/8, 64*1024, nil),
		pol:    pol,
		store:  store,
		pool:   make(chan *Fetcher, pol.FillFetchers),
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
	for i := 0; i < pol.FillFetchers; i++ {
		f, err := NewFetcherOrigins(video, origins, origins, pol.Breaker)
		if err != nil {
			cancel()
			ln.Close()
			e.closeFetchers()
			return nil, fmt.Errorf("netmp: edge fill fetcher: %w", err)
		}
		f.Retry = pol.Retry
		f.Hedge = pol.Hedge
		// The fill path is origin-facing: the edge must not interpret
		// its own hint headers (origins send none, but a cascaded edge
		// tier would).
		f.CacheHint.Disabled = true
		e.fetchers = append(e.fetchers, f)
		e.pool <- f
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the edge's listen address.
func (e *EdgeServer) Addr() string { return e.addr }

// ServedBytes returns the payload bytes written to clients.
func (e *EdgeServer) ServedBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.served
}

// OriginBytes returns the payload bytes pulled from origins by misses —
// the denominator's complement of the origin-offload ratio.
func (e *EdgeServer) OriginBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.originBytes
}

// FillErrors returns how many origin fills failed outright.
func (e *EdgeServer) FillErrors() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fillErrs
}

// Instrument wires the edge to t: scrape-time collectors over the byte
// counters plus journal events for fill failures. The shared store is
// instrumented separately (once, not per edge).
func (e *EdgeServer) Instrument(t *obs.Telemetry) {
	if t == nil {
		return
	}
	e.connMu.Lock()
	e.sink = t
	e.connMu.Unlock()
	r := t.Registry
	lbl := obs.Labels{"edge": e.addr}
	r.CounterFunc("cache_edge_served_bytes_total",
		"Payload bytes served to clients by this edge.",
		lbl, func() float64 { return float64(e.ServedBytes()) })
	r.CounterFunc("cache_edge_origin_bytes_total",
		"Payload bytes pulled from origins by this edge's misses.",
		lbl, func() float64 { return float64(e.OriginBytes()) })
	r.CounterFunc("cache_edge_fill_errors_total",
		"Origin fills that failed outright (clients got a 503).",
		lbl, func() float64 { return float64(e.FillErrors()) })
}

// Close stops the edge: listener, admitted connections, fill fetchers.
func (e *EdgeServer) Close() error {
	e.cancel()
	err := e.ln.Close()
	e.connMu.Lock()
	for c := range e.conns {
		c.Close()
	}
	e.connMu.Unlock()
	e.wg.Wait()
	if ferr := e.closeFetchers(); ferr != nil {
		err = errors.Join(err, ferr)
	}
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}
	return err
}

func (e *EdgeServer) closeFetchers() error {
	var errs []error
	for _, f := range e.fetchers {
		errs = append(errs, f.Close())
	}
	return errors.Join(errs...)
}

func (e *EdgeServer) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			return // the edge tier has no chaos plan; any error means Close
		}
		e.connMu.Lock()
		e.conns[conn] = struct{}{}
		e.connMu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			defer func() {
				e.connMu.Lock()
				delete(e.conns, conn)
				e.connMu.Unlock()
				conn.Close()
			}()
			e.serve(conn)
		}()
	}
}

// serve handles one keep-alive client connection.
func (e *EdgeServer) serve(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		index, level, from, to, manifest, bad, ok := readChunkRequest(r, e.Video)
		if !ok {
			return
		}
		if bad {
			fmt.Fprintf(w, "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n")
			w.Flush()
			continue
		}
		if manifest {
			if err := writeManifestFor(w, e.Video); err != nil {
				return
			}
			continue
		}
		size := e.Video.ChunkSize(index, level)
		if to < 0 || to >= size {
			to = size - 1
		}
		if from < 0 || from > to {
			fmt.Fprintf(w, "HTTP/1.1 416 Range Not Satisfiable\r\nContent-Length: 0\r\n\r\n")
			w.Flush()
			continue
		}
		body, hit, err := e.chunkBody(index, level)
		if err != nil {
			// An exhausted origin set is the edge's overload face:
			// transient for the client's supervisor, breaker fuel for a
			// (future) multi-edge set.
			fmt.Fprintf(w, "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\n\r\n")
			w.Flush()
			continue
		}
		state := "miss"
		if hit {
			state = "hit"
		}
		n := to - from + 1
		fmt.Fprintf(w, "HTTP/1.1 206 Partial Content\r\nContent-Length: %d\r\nContent-Range: bytes %d-%d/%d\r\nX-MPDash-Cache: %s\r\n\r\n", n, from, to, size, state)
		if err := e.writeBody(w, body[from:to+1]); err != nil {
			w.Flush()
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// chunkBody returns (index, level)'s full body via the shared store,
// filling from origin on a miss (singleflight-collapsed across every
// concurrent request for the key, this edge's and its siblings' alike).
func (e *EdgeServer) chunkBody(index, level int) ([]byte, bool, error) {
	k := cache.Key{Video: e.name, Level: level, Chunk: index}
	return e.store.Fetch(k, func() ([]byte, error) {
		return e.fillFromOrigin(index, level)
	})
}

// fillFromOrigin pulls one whole chunk through a pooled supervised
// fetcher, charging the transferred bytes to the origin-byte ledger, and
// reconstructs the verified deterministic body for the store.
func (e *EdgeServer) fillFromOrigin(index, level int) ([]byte, error) {
	var f *Fetcher
	select {
	case f = <-e.pool:
	case <-e.ctx.Done():
		return nil, e.ctx.Err()
	}
	defer func() { e.pool <- f }()
	res, err := f.FetchChunk(index, level, e.pol.FillWindow)
	if res != nil {
		e.mu.Lock()
		e.originBytes += res.PrimaryBytes + res.SecondaryBytes
		e.mu.Unlock()
	}
	if err == nil && !res.Verified {
		err = errCorruptPayload
	}
	if err != nil {
		e.mu.Lock()
		e.fillErrs++
		e.mu.Unlock()
		e.emitFillError(index, level, err)
		return nil, err
	}
	body := make([]byte, res.Size)
	for i := range body {
		body[i] = ChunkBody(index, level, int64(i))
	}
	return body, nil
}

// writeBody streams one range slice through the edge's rate shaper in
// origin-sized blocks.
func (e *EdgeServer) writeBody(w *bufio.Writer, body []byte) error {
	const block = 16 * 1024
	for off := 0; off < len(body); off += block {
		m := block
		if m > len(body)-off {
			m = len(body) - off
		}
		if err := e.bucket.Take(e.ctx, m); err != nil {
			return err
		}
		if _, err := w.Write(body[off : off+m]); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		e.mu.Lock()
		e.served += int64(m)
		e.mu.Unlock()
	}
	return nil
}

// emitFillError journals one failed origin fill.
func (e *EdgeServer) emitFillError(index, level int, err error) {
	e.connMu.Lock()
	sink := e.sink
	e.connMu.Unlock()
	if sink == nil {
		return
	}
	sink.Emit(obs.NewEvent("cache.fill.error").WithChunk(index, level).
		WithStr("video", e.name).WithStr("error", err.Error()))
}
