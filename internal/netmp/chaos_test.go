package netmp

// Chaos tests: the fault-injection layer drives the supervised fetcher
// through resets, stalls, premature closes, corruption, blackout windows
// and permanent path death, asserting that sessions complete with
// verified bytes — the paper's robustness claim (§4 Algorithm 1 lines
// 19–21, §7 field study) on real sockets.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mpdash/internal/dash"
)

// fastRetry is an aggressive policy that keeps chaos tests quick.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		IOTimeout:     300 * time.Millisecond,
		BaseBackoff:   5 * time.Millisecond,
		MaxBackoff:    40 * time.Millisecond,
		MaxRedials:    4,
		SegmentBudget: 3,
		RequeueBudget: 6,
		Seed:          42,
	}
}

// faultRig starts a faulty primary and clean secondary plus a fetcher
// with the fast retry policy.
func faultRig(t *testing.T, primaryMbps, secondaryMbps float64, plan *FaultPlan) (*ChunkServer, *ChunkServer, *Fetcher) {
	t.Helper()
	video := dash.BigBuckBunny()
	ps, err := NewChunkServerWithFaults(video, primaryMbps, plan)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewChunkServer(video, secondaryMbps)
	if err != nil {
		ps.Close()
		t.Fatal(err)
	}
	f, err := NewFetcher(video, ps.Addr(), ss.Addr())
	if err != nil {
		ps.Close()
		ss.Close()
		t.Fatal(err)
	}
	f.Retry = fastRetry()
	t.Cleanup(func() {
		f.Close()
		ps.Close()
		ss.Close()
	})
	return ps, ss, f
}

func checkComplete(t *testing.T, res *FetchResult) {
	t.Helper()
	if !res.Verified {
		t.Error("payload verification failed")
	}
	if res.PrimaryBytes+res.SecondaryBytes != res.Size {
		t.Errorf("bytes %d+%d != size %d", res.PrimaryBytes, res.SecondaryBytes, res.Size)
	}
}

func TestRecoversFromConnectionReset(t *testing.T) {
	ps, _, f := faultRig(t, 16, 16, &FaultPlan{Script: map[int]FaultKind{2: FaultReset}})
	res, err := f.FetchChunk(0, 2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if res.Retries == 0 {
		t.Error("reset absorbed without a recorded retry")
	}
	if res.Redials == 0 {
		t.Error("reset recovered without a redial")
	}
	if got := ps.FaultStats().Resets; got != 1 {
		t.Errorf("server injected %d resets, want 1", got)
	}
	if st := f.PathStats()[0]; st.Reconnects == 0 || st.State != PathUp {
		t.Errorf("primary stats after recovery: %+v", st)
	}
}

func TestRecoversFromCorruption(t *testing.T) {
	ps, _, f := faultRig(t, 16, 16, &FaultPlan{Script: map[int]FaultKind{1: FaultCorrupt, 3: FaultCorrupt}})
	res, err := f.FetchChunk(0, 2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if res.Retries < 2 {
		t.Errorf("retries = %d, want >= 2", res.Retries)
	}
	if res.WastedBytes == 0 {
		t.Error("corrupted attempts not accounted as waste")
	}
	if res.Redials != 0 {
		t.Errorf("corruption triggered %d redials; the connection framing was intact", res.Redials)
	}
	if got := ps.FaultStats().Corruptions; got != 2 {
		t.Errorf("server injected %d corruptions, want 2", got)
	}
}

func TestRecoversFromPrematureClose(t *testing.T) {
	_, _, f := faultRig(t, 16, 16, &FaultPlan{Script: map[int]FaultKind{1: FaultClose}})
	res, err := f.FetchChunk(0, 2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if res.Retries == 0 || res.Redials == 0 {
		t.Errorf("premature close survived without retry+redial: %+v", res)
	}
}

func TestRecoversFromMidBodyStall(t *testing.T) {
	_, _, f := faultRig(t, 16, 16, &FaultPlan{
		Script:   map[int]FaultKind{1: FaultStall},
		StallFor: 5 * time.Second,
	})
	start := time.Now()
	res, err := f.FetchChunk(0, 2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if res.Retries == 0 {
		t.Error("stall survived without a retry")
	}
	// The I/O deadline (300 ms) must cut the 5 s stall short.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("fetch waited out the stall: %v", elapsed)
	}
}

func TestBlackoutWindowRideThrough(t *testing.T) {
	// The primary is blacked out for the first 500 ms; deadline pressure
	// pulls the secondary in, and the primary rejoins when the window
	// ends. The paper's WiFi-blackout scenario on real sockets.
	ps, _, f := faultRig(t, 16, 16, &FaultPlan{Blackouts: []Blackout{{From: 0, To: 500 * time.Millisecond}}})
	pol := fastRetry()
	pol.MaxRedials = 200 // blackout, not death: keep redialling
	pol.RequeueBudget = 50
	f.Retry = pol
	res, err := f.FetchChunk(0, 2, 800*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if res.SecondaryBytes == 0 {
		t.Error("secondary never engaged during the blackout")
	}
	if res.Retries == 0 {
		t.Error("no retries recorded through a 500 ms blackout")
	}
	if ps.FaultStats().BlackoutResets == 0 {
		t.Error("blackout never fired")
	}
}

func TestPreferredPathDeathMidChunk(t *testing.T) {
	// The primary dies for good mid-chunk (reset + redial blackhole).
	// The fetcher must finish the chunk in degraded single-path mode on
	// the secondary, inverting the cost preference.
	ps, _, f := faultRig(t, 2, 16, nil)
	time.AfterFunc(150*time.Millisecond, ps.Blackhole)
	res, err := f.FetchChunk(0, 2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if !res.Degraded {
		t.Error("result not flagged degraded")
	}
	if res.Redials == 0 {
		t.Error("no redial attempts against the blackholed path")
	}
	if res.SecondaryBytes == 0 {
		t.Error("secondary idle while the primary was dead")
	}
	if st := f.PathStats()[0]; st.State != PathDown {
		t.Errorf("primary state = %v, want down", st.State)
	}
	if f.DegradedFor() == 0 {
		t.Error("degraded interval not tracked")
	}

	// Subsequent chunks run single-path from the start.
	res2, err := f.FetchChunk(1, 0, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res2)
	if res2.PrimaryBytes != 0 {
		t.Errorf("dead primary carried %d bytes", res2.PrimaryBytes)
	}
}

func TestSecondaryPathDeathPrimaryFinishes(t *testing.T) {
	// Kill the secondary under deadline pressure: the primary alone must
	// complete the chunk (slower, but verified).
	_, ss, f := faultRig(t, 16, 2, nil)
	time.AfterFunc(100*time.Millisecond, ss.Blackhole)
	res, err := f.FetchChunk(1, 2, 300*time.Millisecond) // tight: secondary engaged
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if st := f.PathStats()[1]; st.State != PathDown {
		t.Errorf("secondary state = %v, want down", st.State)
	}
}

func TestBothPathsDeadErrors(t *testing.T) {
	ps, ss, f := faultRig(t, 16, 16, nil)
	ps.Blackhole()
	ss.Blackhole()
	if _, err := f.FetchChunk(0, 0, time.Second); !errors.Is(err, ErrAllPathsDown) {
		t.Fatalf("err = %v, want ErrAllPathsDown", err)
	}
	// Fast-fail once both paths are known dead.
	start := time.Now()
	if _, err := f.FetchChunk(1, 0, time.Second); !errors.Is(err, ErrAllPathsDown) {
		t.Fatalf("second fetch err = %v", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("known-dead fetch was not fast")
	}
}

func TestChunkExhaustedWhenEverythingCorrupts(t *testing.T) {
	// Both paths corrupt every response: the requeue budget must bound
	// the fetch and surface ErrChunkExhausted instead of spinning.
	video := dash.BigBuckBunny()
	plan := func() *FaultPlan { return &FaultPlan{CorruptProb: 1, Seed: 7} }
	ps, err := NewChunkServerWithFaults(video, 0, plan())
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ss, err := NewChunkServerWithFaults(video, 0, plan())
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	f, err := NewFetcher(video, ps.Addr(), ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pol := fastRetry()
	pol.BaseBackoff = time.Millisecond
	pol.MaxBackoff = 2 * time.Millisecond
	pol.SegmentBudget = 2
	pol.RequeueBudget = 2
	f.Retry = pol
	res, err := f.FetchChunk(0, 0, time.Second)
	if !errors.Is(err, ErrChunkExhausted) {
		t.Fatalf("err = %v, want ErrChunkExhausted", err)
	}
	if res == nil || res.Retries == 0 {
		t.Errorf("partial result missing fault accounting: %+v", res)
	}
	// Both paths survive — corruption is not a connection failure.
	for _, st := range f.PathStats() {
		if st.State == PathDown {
			t.Errorf("path %s down after corruption-only faults", st.Name)
		}
	}
}

// fixedABR always selects the same level.
type fixedABR int

func (l fixedABR) Name() string                                   { return "fixed" }
func (l fixedABR) SelectLevel(dash.PlayerState) int               { return int(l) }
func (l fixedABR) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}

func TestStreamLifelineRefetchAtLowestLevel(t *testing.T) {
	// Every request for the top level corrupts on both paths; the lowest
	// level is clean. Each chunk must exhaust its budget at level 2,
	// refetch once at level 0, and play — no lost chunks, no session
	// error.
	video := miniVideo()
	plan := func() *FaultPlan { return &FaultPlan{CorruptProb: 1, Levels: []int{2}, Seed: 3} }
	ps, err := NewChunkServerWithFaults(video, 0, plan())
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ss, err := NewChunkServerWithFaults(video, 0, plan())
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	f, err := NewFetcher(video, ps.Addr(), ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pol := fastRetry()
	pol.BaseBackoff = time.Millisecond
	pol.MaxBackoff = 2 * time.Millisecond
	pol.SegmentBudget = 2
	pol.RequeueBudget = 2
	f.Retry = pol

	st := &Streamer{Fetcher: f, ABR: fixedABR(2), RateBased: true}
	res, err := st.Stream(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 3 {
		t.Fatalf("chunks = %d", res.Chunks)
	}
	if res.Refetches != 3 {
		t.Errorf("refetches = %d, want 3", res.Refetches)
	}
	if res.LostChunks != 0 {
		t.Errorf("lost chunks = %d", res.LostChunks)
	}
	if !res.AllVerified {
		t.Error("verification failed")
	}
	if res.AvgLevel != 0 {
		t.Errorf("avg level = %.2f, want 0 (lifeline)", res.AvgLevel)
	}
	if res.FaultsSurvived == 0 {
		t.Error("no faults accounted")
	}
}

func TestStreamLostChunkWhenLowestAlsoFails(t *testing.T) {
	// Both paths corrupt everything: even the lifeline fails, the chunk
	// counts as a stall, and the session still runs to the end without an
	// error.
	video := miniVideo()
	plan := func() *FaultPlan { return &FaultPlan{CorruptProb: 1, Seed: 5} }
	ps, err := NewChunkServerWithFaults(video, 0, plan())
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ss, err := NewChunkServerWithFaults(video, 0, plan())
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	f, err := NewFetcher(video, ps.Addr(), ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pol := fastRetry()
	pol.BaseBackoff = time.Millisecond
	pol.MaxBackoff = 2 * time.Millisecond
	pol.SegmentBudget = 2
	pol.RequeueBudget = 2
	f.Retry = pol

	st := &Streamer{Fetcher: f, ABR: fixedABR(2), RateBased: true}
	res, err := st.Stream(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.LostChunks != 2 {
		t.Errorf("lost chunks = %d, want 2", res.LostChunks)
	}
	if res.Stalls != 2 {
		t.Errorf("stalls = %d, want 2", res.Stalls)
	}
	if res.Chunks != 0 {
		t.Errorf("played chunks = %d, want 0", res.Chunks)
	}
	if res.WastedBytes == 0 {
		t.Error("no waste accounted for discarded partial chunks")
	}
}

func TestStreamSurvivesPreferredPathDeath(t *testing.T) {
	// Kill the preferred path mid-session: the stream must ride through
	// on the secondary and report the degradation.
	video := miniVideo()
	ps, err := NewChunkServer(video, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ss, err := NewChunkServer(video, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	f, err := NewFetcher(video, ps.Addr(), ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Retry = fastRetry()
	time.AfterFunc(60*time.Millisecond, ps.Blackhole)

	st := &Streamer{Fetcher: f, ABR: fixedABR(1), RateBased: true}
	res, err := st.Stream(8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 8 {
		t.Fatalf("chunks = %d", res.Chunks)
	}
	if !res.AllVerified {
		t.Error("verification failed")
	}
	if res.LostChunks != 0 {
		t.Errorf("lost chunks = %d", res.LostChunks)
	}
	if res.Redials == 0 {
		t.Error("no redials reported after path death")
	}
	if res.DegradedTime == 0 {
		t.Error("degraded time not reported")
	}
}

func TestMultiFetchSurvivesPrimaryDeath(t *testing.T) {
	// Three paths; the primary dies mid-fetch. The cheapest surviving
	// secondary is forced on and the chunk completes.
	video := dash.BigBuckBunny()
	var servers []*ChunkServer
	var addrs []string
	for i := 0; i < 3; i++ {
		s, err := NewChunkServer(video, 8)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	m, err := NewMultiFetcher(video, addrs[0], addrs[1:]...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		m.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	m.Retry = fastRetry()
	time.AfterFunc(80*time.Millisecond, servers[0].Blackhole)
	res, err := m.FetchChunk(0, 2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("verification failed")
	}
	if res.PrimaryBytes+res.SecondaryBytes != res.Size {
		t.Errorf("bytes %d+%d != %d", res.PrimaryBytes, res.SecondaryBytes, res.Size)
	}
	if !res.Degraded {
		t.Error("not flagged degraded")
	}
	if st := m.PathStats(); st[0].State != PathDown {
		t.Errorf("primary state = %v", st[0].State)
	}
}

func TestMultiFetchSurvivesExtraSecondaryDeath(t *testing.T) {
	// Three paths under a tight deadline so every secondary engages; the
	// costliest extra (secondary-2) is blackholed mid-fetch. Its claimed
	// segments must requeue to the survivors exactly like the embedded
	// paths' do, and the chunk completes verified.
	if testing.Short() {
		t.Skip("multipath chaos test in -short mode")
	}
	video := dash.BigBuckBunny()
	var servers []*ChunkServer
	var addrs []string
	for i := 0; i < 3; i++ {
		s, err := NewChunkServer(video, 4)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	m, err := NewMultiFetcher(video, addrs[0], addrs[1:]...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		m.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	m.Retry = fastRetry()
	time.AfterFunc(60*time.Millisecond, servers[2].Blackhole)
	res, err := m.FetchChunk(0, 2, 200*time.Millisecond) // tight: all paths engage
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("verification failed")
	}
	if res.PrimaryBytes+res.SecondaryBytes != res.Size {
		t.Errorf("bytes %d+%d != %d", res.PrimaryBytes, res.SecondaryBytes, res.Size)
	}
	st := m.PathStats()
	if st[2].Name != "secondary-2" {
		t.Fatalf("extra path named %q, want secondary-2", st[2].Name)
	}
	if st[2].State != PathDown {
		t.Errorf("secondary-2 state = %v, want down after blackhole", st[2].State)
	}
	for _, p := range st[:2] {
		if p.State == PathDown {
			t.Errorf("surviving path %s marked down", p.Name)
		}
	}

	// The next chunk must run on the two survivors from the start.
	res2, err := m.FetchChunk(1, 2, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Verified || res2.PrimaryBytes+res2.SecondaryBytes != res2.Size {
		t.Errorf("post-death chunk incomplete: %+v", res2.FetchResult)
	}
	if res2.SecondaryBytesByPath[1] != 0 {
		t.Errorf("dead secondary-2 carried %d bytes", res2.SecondaryBytesByPath[1])
	}
}

func TestCloseJoinsBothErrors(t *testing.T) {
	_, _, f := rig(t, 0, 0)
	if err := f.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	err := f.Close()
	if err == nil {
		t.Fatal("double close reported no error")
	}
	if n := strings.Count(err.Error(), "use of closed network connection"); n != 2 {
		t.Errorf("joined error reports %d close failures, want 2: %v", n, err)
	}
}

func TestParseBlackouts(t *testing.T) {
	got, err := ParseBlackouts("8s:3s, 40s:5s")
	if err != nil {
		t.Fatal(err)
	}
	want := []Blackout{{From: 8 * time.Second, To: 11 * time.Second}, {From: 40 * time.Second, To: 45 * time.Second}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %+v", got)
	}
	if ws, err := ParseBlackouts("  "); err != nil || ws != nil {
		t.Errorf("blank input: %v %v", ws, err)
	}
	for _, bad := range []string{"8s", "x:3s", "8s:x", "-1s:3s", "8s:0s"} {
		if _, err := ParseBlackouts(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
