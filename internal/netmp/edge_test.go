package netmp

import (
	"sync"
	"testing"
	"time"

	"mpdash/internal/cache"
	"mpdash/internal/dash"
)

// edgeRig stands up origin → edge → store for one video.
func edgeRig(t *testing.T, pol EdgePolicy) (*ChunkServer, *EdgeServer, *cache.Cache) {
	t.Helper()
	video := dash.BigBuckBunny()
	origin, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	store := cache.New(cache.Config{})
	edge, err := NewEdgeServer(video, "bbb", []string{origin.Addr()}, store, pol)
	if err != nil {
		origin.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		edge.Close()
		origin.Close()
	})
	return origin, edge, store
}

func TestEdgeValidation(t *testing.T) {
	video := dash.BigBuckBunny()
	store := cache.New(cache.Config{})
	if _, err := NewEdgeServer(video, "v", nil, store, EdgePolicy{}); err == nil {
		t.Error("edge with no origins accepted")
	}
	if _, err := NewEdgeServer(video, "v", []string{"127.0.0.1:1"}, nil, EdgePolicy{}); err == nil {
		t.Error("edge with no store accepted")
	}
}

func TestEdgeServesVerifiedChunksAndHints(t *testing.T) {
	// Hedging off end to end: the byte ledgers below are exact only when
	// no duplicate (loser) requests can be issued.
	origin, edge, store := edgeRig(t, EdgePolicy{Hedge: HedgePolicy{Disabled: true}})
	video := edge.Video
	f, err := NewFetcher(video, edge.Addr(), edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.Hedge.Disabled = true

	size := video.ChunkSize(0, 0)
	res, err := f.FetchChunk(0, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Size != size {
		t.Fatalf("cold fetch: verified=%v size=%d want %d", res.Verified, res.Size, size)
	}
	// The cold chunk cost the origin exactly one whole-chunk fill, even
	// though the client split it into two range requests.
	if st := store.Stats(); st.Fills != 1 {
		t.Fatalf("cold fetch ran %d fills", st.Fills)
	}
	if got := edge.OriginBytes(); got != size {
		t.Errorf("origin bytes = %d, want one chunk (%d)", got, size)
	}
	if got := origin.ServedBytes(); got != size {
		t.Errorf("origin served %d bytes, want %d", got, size)
	}

	// Warm fetch: served from the store, hint header says hit, and the
	// client's per-chunk knowledge goes exact.
	res, err = f.FetchChunk(0, 0, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("warm fetch not verified")
	}
	if st := store.Stats(); st.Fills != 1 {
		t.Errorf("warm fetch refilled: %d fills", st.Fills)
	}
	if got := edge.OriginBytes(); got != size {
		t.Errorf("warm fetch pulled origin bytes: %d", got)
	}
	if p := f.cacheHitProb(0); p != 1 {
		t.Errorf("hit-hinted chunk probability = %v, want 1", p)
	}
	if !f.cacheHot(0) {
		t.Error("hit-hinted chunk not hot")
	}
	if got := edge.ServedBytes(); got != 2*size {
		t.Errorf("edge served %d bytes, want %d", got, 2*size)
	}
}

// TestEdgeSingleflight64Fetchers is the collapse contract under -race:
// 64 concurrent clients missing the same cold chunk produce exactly one
// origin request, and every client still gets byte-for-byte verified
// payload (zero ledger violations).
func TestEdgeSingleflight64Fetchers(t *testing.T) {
	origin, edge, store := edgeRig(t, EdgePolicy{FillFetchers: 2, Hedge: HedgePolicy{Disabled: true}})
	video := edge.Video
	const n = 64

	fetchers := make([]*Fetcher, n)
	for i := range fetchers {
		f, err := NewFetcher(video, edge.Addr(), edge.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		f.Hedge.Disabled = true
		fetchers[i] = f
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	results := make([]*FetchResult, n)
	for i, f := range fetchers {
		wg.Add(1)
		go func(i int, f *Fetcher) {
			defer wg.Done()
			results[i], errs[i] = f.FetchChunk(3, 1, 30*time.Second)
		}(i, f)
	}
	wg.Wait()

	size := video.ChunkSize(3, 1)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("fetcher %d: %v", i, errs[i])
		}
		if !results[i].Verified || results[i].Size != size {
			t.Fatalf("fetcher %d: verified=%v size=%d want %d",
				i, results[i].Verified, results[i].Size, size)
		}
	}
	// Exactly one origin request for the whole stampede.
	if st := store.Stats(); st.Fills != 1 {
		t.Errorf("stampede ran %d origin fills, want 1", st.Fills)
	}
	if got := origin.ServedBytes(); got != size {
		t.Errorf("origin served %d bytes, want exactly one chunk (%d)", got, size)
	}
	if got := edge.OriginBytes(); got != size {
		t.Errorf("edge charged %d origin bytes, want %d", got, size)
	}
	// Every client's payload was served in full.
	if got := edge.ServedBytes(); got != int64(n)*size {
		t.Errorf("edge served %d bytes, want %d", got, int64(n)*size)
	}
	if st := store.Stats(); st.Misses != 1+st.Collapsed {
		t.Errorf("misses (%d) != leader + collapsed (%d)", st.Misses, 1+st.Collapsed)
	}
}

func TestEdgeFillFailureSurfacesAsError(t *testing.T) {
	origin, edge, _ := edgeRig(t, EdgePolicy{FillWindow: time.Second})
	video := edge.Video
	// Kill the backhaul: every miss now exhausts the origin set.
	origin.Close()

	f, err := NewFetcher(video, edge.Addr(), edge.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.FetchChunk(0, 0, 3*time.Second); err == nil {
		t.Fatal("fetch through a backhaul-dead edge succeeded")
	}
	if edge.FillErrors() == 0 {
		t.Error("failed fills not counted")
	}
}
