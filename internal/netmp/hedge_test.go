package netmp

// Hedged-request tests: a stalled origin loses the race to a clean
// backup; exactly-once segment accounting holds no matter which side of
// a hedge race wins; the budget stops further hedges once spent.

import (
	"testing"
	"time"

	"mpdash/internal/dash"
)

// hedgeRig starts a faulty preferred origin, a clean backup origin, and
// a clean secondary-path server; the fetcher's primary path ranks
// [faulty, clean].
func hedgeRig(t *testing.T, plan *FaultPlan) (f *Fetcher) {
	t.Helper()
	video := dash.BigBuckBunny()
	slow, err := NewChunkServerWithFaults(video, 0, plan)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err = NewFetcherOrigins(video,
		[]string{slow.Addr(), clean.Addr()},
		[]string{sec.Addr()}, BreakerPolicy{Cooldown: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	f.Retry = fastRetry()
	t.Cleanup(func() {
		f.Close()
		slow.Close()
		clean.Close()
		sec.Close()
	})
	return f
}

func TestHedgeWinsOnStalledOrigin(t *testing.T) {
	if testing.Short() {
		t.Skip("hedge race test in -short mode")
	}
	// Every request on the preferred origin stalls for far longer than
	// the I/O timeout; the backup origin is clean. With the pace
	// predictor seeded, every stalled segment must be hedged and won by
	// the backup — and the chunk still assembles exactly once.
	f := hedgeRig(t, &FaultPlan{StallProb: 1, StallFor: 5 * time.Second, Seed: 9})
	f.Hedge = HedgePolicy{MinDelay: 5 * time.Millisecond, BudgetBytes: 1 << 30}
	// Seed the service-rate predictor so hedges arm at the floor delay
	// instead of waiting out half the I/O timeout.
	f.hedge.observe(1<<20, 10*time.Millisecond)

	res, err := f.FetchChunk(0, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if res.HedgesIssued == 0 {
		t.Fatal("no hedges issued against a stalled origin")
	}
	if res.HedgesWon == 0 {
		t.Error("no hedge won against a 5s stall")
	}
	if res.HedgesCancelled == 0 {
		t.Error("winning hedges cancelled no losers")
	}
	if res.HedgesWon > res.HedgesIssued {
		t.Errorf("won %d > issued %d", res.HedgesWon, res.HedgesIssued)
	}
}

func TestHedgeExactlyOnceUnderRace(t *testing.T) {
	if testing.Short() {
		t.Skip("hedge race test in -short mode")
	}
	// Both origins are clean and hedges arm almost immediately, so every
	// segment is a genuine two-way race. Whichever side wins, the ledger
	// must see each segment exactly once: byte sums equal the chunk size,
	// every byte verifies, and no chunk double-counts a cancelled loser's
	// partial payload.
	f := hedgeRig(t, nil)
	f.Hedge = HedgePolicy{Factor: 0.01, MinDelay: time.Nanosecond, BudgetBytes: 1 << 30}
	f.hedge.observe(1<<20, 10*time.Millisecond)

	for i := 0; i < 4; i++ {
		res, err := f.FetchChunk(i, 2, 5*time.Second)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		checkComplete(t, res)
	}
	hi, hw, hc, _ := f.hedge.snapshot()
	if hi == 0 {
		t.Fatal("race test issued no hedges; it proves nothing")
	}
	if hw > hi || hc > hi {
		t.Errorf("hedge counters inconsistent: issued=%d won=%d cancelled=%d", hi, hw, hc)
	}
}

func TestHedgeDisabledIssuesNone(t *testing.T) {
	f := hedgeRig(t, nil)
	f.Hedge = HedgePolicy{Disabled: true}
	res, err := f.FetchChunk(0, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if res.HedgesIssued != 0 {
		t.Errorf("hedges issued with hedging disabled: %d", res.HedgesIssued)
	}
}

func TestHedgeBudgetStopsHedging(t *testing.T) {
	f := hedgeRig(t, nil)
	f.Hedge = HedgePolicy{Factor: 0.01, MinDelay: time.Nanosecond, BudgetBytes: 1}
	f.hedge.observe(1<<20, 10*time.Millisecond)
	f.hedge.noteWasted(2) // budget already spent
	res, err := f.FetchChunk(0, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if res.HedgesIssued != 0 {
		t.Errorf("hedges issued past the byte budget: %d", res.HedgesIssued)
	}
}

func TestHedgeDelayDeadlineClamp(t *testing.T) {
	f := hedgeRig(t, nil)
	pol := HedgePolicy{Factor: 4, MinDelay: time.Millisecond}.withDefaults()
	retry := fastRetry().withDefaults()
	f.hedge.observe(100<<10, 100*time.Millisecond) // ~1 MB/s

	// Far deadline: the pace factor rules. predicted(100KB) ~ 100ms.
	far := f.hedgeDelay(pol, retry, 100<<10, time.Now().Add(time.Hour))
	if far < 300*time.Millisecond || far > 500*time.Millisecond {
		t.Errorf("far-deadline delay = %v, want ~400ms (Factor x predicted)", far)
	}
	// Near deadline: the hedge must arm early enough for a backup fetch
	// to finish inside the window — well before Factor x predicted.
	near := f.hedgeDelay(pol, retry, 100<<10, time.Now().Add(150*time.Millisecond))
	if near >= far || near > 60*time.Millisecond {
		t.Errorf("near-deadline delay = %v, want clamped below ~50ms", near)
	}
	// The floor still holds with the deadline already blown.
	blown := f.hedgeDelay(pol, retry, 100<<10, time.Now().Add(-time.Second))
	if blown != pol.MinDelay {
		t.Errorf("blown-deadline delay = %v, want MinDelay %v", blown, pol.MinDelay)
	}
}
