package netmp

import (
	"fmt"
	"sync"
	"time"

	"mpdash/internal/dash"
)

// MultiFetcher generalizes Fetcher to N secondary connections ordered by
// cost, mirroring the generalized MP-DASH scheduler (§4): under deadline
// pressure it engages secondaries from cheapest to costliest, and each
// stands down as soon as the cheaper set suffices again.
type MultiFetcher struct {
	*Fetcher
	// extra are additional secondaries in ascending cost order; the
	// embedded Fetcher's secondary is the cheapest.
	extra []*pathConn
}

// NewMultiFetcher dials the primary plus any number of secondaries
// (ascending cost order). At least one secondary is required.
func NewMultiFetcher(video *dash.Video, primaryAddr string, secondaryAddrs ...string) (*MultiFetcher, error) {
	if len(secondaryAddrs) == 0 {
		return nil, fmt.Errorf("netmp: at least one secondary required")
	}
	f, err := NewFetcher(video, primaryAddr, secondaryAddrs[0])
	if err != nil {
		return nil, err
	}
	m := &MultiFetcher{Fetcher: f}
	for i, addr := range secondaryAddrs[1:] {
		pc, err := dialPath(fmt.Sprintf("secondary-%d", i+2), addr)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.extra = append(m.extra, pc)
	}
	return m, nil
}

// Close tears down every connection.
func (m *MultiFetcher) Close() error {
	err := m.Fetcher.Close()
	for _, pc := range m.extra {
		if cerr := pc.conn.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MultiResult extends FetchResult with per-secondary byte counts
// (index 0 is the cheapest secondary).
type MultiResult struct {
	FetchResult
	SecondaryBytesByPath []int64
}

// FetchChunk downloads one chunk engaging secondaries by cost order.
func (m *MultiFetcher) FetchChunk(index, level int, d time.Duration) (*MultiResult, error) {
	size := m.chunkSize(index, level)
	segSize := m.SegmentSize
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	nSegs := int((size + segSize - 1) / segSize)
	st := &fetchState{front: 0, back: nSegs - 1}
	alpha := m.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}

	secondaries := append([]*pathConn{m.secondary}, m.extra...)
	res := &MultiResult{SecondaryBytesByPath: make([]int64, len(secondaries))}
	res.Size = size
	res.Verified = true

	start := time.Now()
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, 1+len(secondaries))

	fetchSeg := func(pc *pathConn, secIdx, seg int) error {
		from := int64(seg) * segSize
		to := from + segSize - 1
		if to >= size {
			to = size - 1
		}
		n, ok, err := m.requestRange(pc, index, level, from, to)
		if err != nil {
			return err
		}
		mu.Lock()
		if secIdx < 0 {
			res.PrimaryBytes += n
		} else {
			res.SecondaryBytes += n
			res.SecondaryBytesByPath[secIdx] += n
		}
		if !ok {
			res.Verified = false
		}
		mu.Unlock()
		return nil
	}

	// Primary drains from the front.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			seg := st.claimFront()
			if seg < 0 {
				return
			}
			if err := fetchSeg(m.primary, -1, seg); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// One controller per secondary: secondary k engages only when the
	// measured shortfall exceeds what paths 0..k-1 plus the primary can
	// plausibly cover — the cheapest secondary reacts first, costlier
	// ones need proportionally larger deficits.
	for k, pc := range secondaries {
		k, pc := k, pc
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := time.NewTicker(20 * time.Millisecond)
			defer tick.Stop()
			for range tick.C {
				if st.remainingSegments() == 0 {
					return
				}
				elapsed := time.Since(start)
				windowLeft := alpha*d.Seconds() - elapsed.Seconds()
				mu.Lock()
				got := res.PrimaryBytes + res.SecondaryBytes
				mu.Unlock()
				rate := float64(got) / elapsed.Seconds()
				remaining := float64(st.remainingSegments()) * float64(segSize)
				// Path k joins only when even a (k+1)-fold rate cannot
				// make the deadline — a pragmatic stand-in for summing
				// per-path estimates, which a userspace fetcher lacks
				// until a path has carried traffic.
				pressure := windowLeft <= 0 || rate*windowLeft*float64(k+1) < remaining
				if !pressure {
					continue
				}
				seg := st.claimBack()
				if seg < 0 {
					return
				}
				if err := fetchSeg(pc, k, seg); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	res.Duration = time.Since(start)
	if res.Duration > d {
		res.MissedBy = res.Duration - d
	}
	return res, nil
}
