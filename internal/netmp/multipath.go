package netmp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mpdash/internal/dash"
)

// MultiFetcher generalizes Fetcher to N secondary connections ordered by
// cost, mirroring the generalized MP-DASH scheduler (§4): under deadline
// pressure it engages secondaries from cheapest to costliest, and each
// stands down as soon as the cheaper set suffices again. Supervision
// generalizes too: a path that dies stays down for the session, its
// claimed segments requeue to survivors, and secondary k is forced on
// unconditionally once every cheaper path (the primary and secondaries
// 0..k-1) is down.
type MultiFetcher struct {
	*Fetcher
	// extra are additional secondaries in ascending cost order; the
	// embedded Fetcher's secondary is the cheapest.
	extra []*pathConn
}

// NewMultiFetcher dials the primary plus any number of secondaries
// (ascending cost order), one origin each. At least one secondary is
// required.
func NewMultiFetcher(video *dash.Video, primaryAddr string, secondaryAddrs ...string) (*MultiFetcher, error) {
	sets := make([][]string, len(secondaryAddrs))
	for i, a := range secondaryAddrs {
		sets[i] = []string{a}
	}
	return NewMultiFetcherOrigins(video, []string{primaryAddr}, BreakerPolicy{}, sets...)
}

// NewMultiFetcherOrigins dials the primary plus any number of
// secondaries (ascending cost order), each through a ranked origin set
// gated by circuit breakers under pol. At least one secondary is
// required.
func NewMultiFetcherOrigins(video *dash.Video, primaryOrigins []string, pol BreakerPolicy, secondaryOrigins ...[]string) (*MultiFetcher, error) {
	if len(secondaryOrigins) == 0 {
		return nil, fmt.Errorf("netmp: at least one secondary required")
	}
	f, err := NewFetcherOrigins(video, primaryOrigins, secondaryOrigins[0], pol)
	if err != nil {
		return nil, err
	}
	m := &MultiFetcher{Fetcher: f}
	for i, addrs := range secondaryOrigins[1:] {
		pc, err := dialOrigins(fmt.Sprintf("secondary-%d", i+2), addrs, pol)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.extra = append(m.extra, pc)
	}
	return m, nil
}

// SetClock injects the wall clock (nil restores time.Now) on the
// embedded pair and every extra secondary.
func (m *MultiFetcher) SetClock(c Clock) {
	m.Fetcher.SetClock(c)
	for _, pc := range m.extra {
		pc.setClock(c)
	}
}

// failoverCount sums origin switches across every path.
func (m *MultiFetcher) failoverCount() int64 {
	n := m.Fetcher.failoverCount()
	for _, pc := range m.extra {
		n += pc.set.Failovers()
	}
	return n
}

// Close tears down every connection, reporting every failure.
func (m *MultiFetcher) Close() error {
	errs := []error{m.Fetcher.Close()}
	for _, pc := range m.extra {
		errs = append(errs, pc.close())
	}
	return errors.Join(errs...)
}

// PathStats returns health snapshots for the primary and then every
// secondary in cost order.
func (m *MultiFetcher) PathStats() []PathStats {
	out := m.Fetcher.PathStats()
	for _, pc := range m.extra {
		out = append(out, pc.stats())
	}
	return out
}

// DegradedFor returns the total time paths have spent down.
func (m *MultiFetcher) DegradedFor() time.Duration {
	var d time.Duration
	for _, ps := range m.PathStats() {
		d += ps.DownFor
	}
	return d
}

// MultiResult extends FetchResult with per-secondary byte counts
// (index 0 is the cheapest secondary).
type MultiResult struct {
	FetchResult
	SecondaryBytesByPath []int64
}

// FetchChunk downloads one chunk engaging secondaries by cost order,
// with the same fault tolerance as Fetcher.FetchChunk: transient faults
// retry, failed segments requeue to surviving paths, and the fetch
// completes on any non-empty subset of live paths.
func (m *MultiFetcher) FetchChunk(index, level int, d time.Duration) (*MultiResult, error) {
	size := m.chunkSize(index, level)
	pol := m.Retry.withDefaults()
	segSize := m.SegmentSize
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	secondaries := append([]*pathConn{m.secondary}, m.extra...)
	allPaths := append([]*pathConn{m.primary}, secondaries...)
	anyUp := false
	for _, pc := range allPaths {
		if !pc.isDown() {
			anyUp = true
		}
	}
	if !anyUp {
		return nil, ErrAllPathsDown
	}
	nSegs := int((size + segSize - 1) / segSize)
	st := newFetchState(nSegs, pol.RequeueBudget)
	alpha := m.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}

	res := &MultiResult{SecondaryBytesByPath: make([]int64, len(secondaries))}
	res.Size = size
	res.Verified = true

	ret0 := make([]int64, len(allPaths))
	red0 := make([]int64, len(allPaths))
	waste0 := make([]int64, len(allPaths))
	for i, pc := range allPaths {
		ret0[i], red0[i], waste0[i] = pc.counters()
	}

	start := m.clk.now()
	dlAt := start.Add(time.Duration(alpha * float64(d)))
	fo := m.obsHandles()
	if fo != nil {
		fo.emitChunkStart(index, level, size, d, nSegs)
		m.fb.begin(start, index, level)
		defer m.fb.end()
	}
	fo0 := m.failoverCount()
	hi0, hw0, hc0, hwb0 := m.hedge.snapshot()
	var mu sync.Mutex
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var workerErrs []error

	recordErr := func(err error) {
		errMu.Lock()
		workerErrs = append(workerErrs, err)
		errMu.Unlock()
	}

	fetchSeg := func(pc *pathConn, secIdx, seg int) error {
		from := int64(seg) * segSize
		to := from + segSize - 1
		if to >= size {
			to = size - 1
		}
		n, err := m.fetchSegHedged(pc, pol, index, level, from, to, dlAt)
		if err != nil {
			return err
		}
		mu.Lock()
		if secIdx < 0 {
			res.PrimaryBytes += n
		} else {
			res.SecondaryBytes += n
			res.SecondaryBytesByPath[secIdx] += n
		}
		mu.Unlock()
		return nil
	}

	handle := func(pc *pathConn, seg int, err error) bool {
		switch {
		case err == nil:
			st.complete()
			return true
		case errors.Is(err, errSegmentFailed):
			st.requeue(seg, pc)
			return true
		case errors.Is(err, errPathDown):
			st.requeue(seg, pc)
			return false
		default:
			st.requeue(seg, pc)
			recordErr(err)
			return false
		}
	}

	// Primary drains from the front while it lives.
	if !m.primary.isDown() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if st.finished() || st.aborted() {
					return
				}
				seg := st.claimFrontFor(m.primary)
				if seg < 0 {
					time.Sleep(ledgerIdleSleep)
					continue
				}
				if !handle(m.primary, seg, fetchSeg(m.primary, -1, seg)) {
					return
				}
			}
		}()
	}

	// One controller per secondary: secondary k engages only when the
	// measured shortfall exceeds what paths 0..k-1 plus the primary can
	// plausibly cover — the cheapest secondary reacts first, costlier
	// ones need proportionally larger deficits. Once every cheaper path
	// is down, k is forced on unconditionally. An engaged controller
	// keeps claiming back-segments, re-evaluating per segment.
	for k, pc := range secondaries {
		if pc.isDown() {
			continue
		}
		k, pc := k, pc
		wg.Add(1)
		go func() {
			defer wg.Done()
			engaged := false
			for {
				if st.finished() || st.aborted() {
					return
				}
				forced := m.primary.isDown()
				for j := 0; j < k && forced; j++ {
					forced = secondaries[j].isDown()
				}
				remaining := float64(st.remainingSegments()) * float64(segSize)
				if !forced {
					elapsed := m.clk.now().Sub(start)
					windowLeft := alpha*d.Seconds() - elapsed.Seconds()
					mu.Lock()
					got := res.PrimaryBytes + res.SecondaryBytes
					mu.Unlock()
					var rate float64
					if elapsed > 0 {
						rate = float64(got) / elapsed.Seconds()
					}
					// Path k joins only when even a (k+1)-fold rate cannot
					// make the deadline — a pragmatic stand-in for summing
					// per-path estimates, which a userspace fetcher lacks
					// until a path has carried traffic.
					pressure := windowLeft <= 0 ||
						(elapsed >= pressureWarmup && rate*windowLeft*float64(k+1) < remaining)
					if !pressure {
						if engaged {
							engaged = false
							fo.emitToggle(false, "", pc.name, index, level, rate, remaining, windowLeft)
						}
						time.Sleep(controllerTick)
						continue
					}
					if !engaged {
						engaged = true
						fo.emitToggle(true, "pressure", pc.name, index, level, rate, remaining, windowLeft)
					}
				} else if !engaged {
					engaged = true
					fo.emitToggle(true, "cheaper-paths-down", pc.name, index, level, 0, remaining, 0)
				}
				seg := st.claimBackFor(pc)
				if seg < 0 {
					if st.finished() || st.aborted() {
						return
					}
					time.Sleep(ledgerIdleSleep)
					continue
				}
				if !handle(pc, seg, fetchSeg(pc, k, seg)) {
					return
				}
			}
		}()
	}

	wg.Wait()

	for i, pc := range allPaths {
		ret, red, waste := pc.counters()
		res.Retries += ret - ret0[i]
		res.Redials += red - red0[i]
		res.WastedBytes += waste - waste0[i]
		if pc.isDown() {
			res.Degraded = true
		}
	}
	st.mu.Lock()
	res.Requeued = st.requeueCount
	st.mu.Unlock()
	res.Failovers = m.failoverCount() - fo0
	hi, hw, hc, hwb := m.hedge.snapshot()
	res.HedgesIssued = hi - hi0
	res.HedgesWon = hw - hw0
	res.HedgesCancelled = hc - hc0
	res.HedgeWastedBytes = hwb - hwb0

	if !st.finished() {
		var ferr error
		switch {
		case st.aborted():
			ferr = fmt.Errorf("netmp: chunk %d level %d: %w after %d requeues", index, level, ErrChunkExhausted, res.Requeued)
		default:
			errMu.Lock()
			joined := errors.Join(workerErrs...)
			errMu.Unlock()
			stillUp := false
			for _, pc := range allPaths {
				if !pc.isDown() {
					stillUp = true
				}
			}
			if !stillUp {
				ferr = errors.Join(ErrAllPathsDown, joined)
			} else if joined == nil {
				ferr = fmt.Errorf("netmp: chunk %d level %d incomplete", index, level)
			} else {
				ferr = joined
			}
		}
		fo.emitChunkFail(index, level, ferr)
		return res, ferr
	}
	res.Duration = m.clk.now().Sub(start)
	if res.Duration > d {
		res.MissedBy = res.Duration - d
	}
	fo.emitChunkDone(index, level, d, &res.FetchResult)
	return res, nil
}
