package netmp

import (
	"io"
	"sync"
	"testing"
	"time"

	"mpdash/internal/abr"
	"mpdash/internal/obs"
)

// TestStreamTracingConcurrentExport races live span recording (fetch
// workers appending spans) against trace export and Streamer.Stop — the
// shutdown path a swarm run exercises when a report is built while late
// sessions are still finishing. Run under -race this verifies every
// span mutation goes through the owning trace's lock.
func TestStreamTracingConcurrentExport(t *testing.T) {
	_, _, f := streamRig(t, 8, 8)
	tr := obs.NewTracer(obs.TraceConfig{HeadSampleRate: 1, Seed: 3})
	st := &Streamer{Fetcher: f, ABR: abr.NewGPAC(), RateBased: true,
		Tracer: tr, TraceSession: 1}

	exportDone := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-exportDone:
				return
			default:
			}
			for _, rec := range tr.Records() {
				_ = rec.Verdict
			}
			if err := tr.WriteJSONL(io.Discard); err != nil {
				t.Errorf("export during stream: %v", err)
				return
			}
			_ = tr.Stats()
		}
	}()
	go func() {
		time.Sleep(500 * time.Millisecond)
		st.Stop()
	}()

	res, err := st.Stream(20)
	close(exportDone)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks == 0 {
		t.Fatal("no chunks played")
	}
	st.Fetcher.SetTrace(nil)
	stats := tr.Stats()
	if stats.Finished != int64(res.Chunks) {
		t.Errorf("finished %d traces for %d chunks", stats.Finished, res.Chunks)
	}
	// Head rate 1: every chunk's trace kept, each carrying the fetch
	// envelope and at least one segment span.
	recs := tr.Records()
	if len(recs) != res.Chunks {
		t.Fatalf("kept %d traces for %d chunks", len(recs), res.Chunks)
	}
	for _, rec := range recs {
		var fetches, segments int
		for _, sp := range rec.Spans {
			switch sp.Category {
			case obs.CatFetch:
				fetches++
			case obs.CatSegment:
				segments++
			}
		}
		if fetches == 0 || segments == 0 {
			t.Errorf("chunk %d trace lacks fetch/segment spans: %d/%d",
				rec.Chunk, fetches, segments)
		}
		if rec.Session != 1 {
			t.Errorf("chunk %d session = %d, want 1", rec.Chunk, rec.Session)
		}
		if rec.Verdict == "" {
			t.Errorf("chunk %d trace has no verdict", rec.Chunk)
		}
	}
}

// TestStreamTracingDisabledIsInert pins the off switch: a Streamer with
// no Tracer must behave identically and never touch a trace.
func TestStreamTracingDisabledIsInert(t *testing.T) {
	_, _, f := streamRig(t, 8, 8)
	st := &Streamer{Fetcher: f, ABR: abr.NewGPAC(), RateBased: true}
	res, err := st.Stream(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 4 || !res.AllVerified {
		t.Fatalf("chunks=%d verified=%v", res.Chunks, res.AllVerified)
	}
	if f.curTrace() != nil {
		t.Error("fetcher holds a trace with tracing off")
	}
}
