package netmp

import (
	"net"
	"sync"
	"testing"
	"time"

	"mpdash/internal/dash"
)

// smallVideo keeps the many-fetcher test cheap: 100 ms chunks at a few
// hundred kbit/s, so 32 clients fit comfortably on one core.
func smallVideo() *dash.Video {
	return &dash.Video{
		Name:          "small",
		ChunkDuration: 100 * time.Millisecond,
		NumChunks:     4,
		SizeSeed:      7,
		Levels: []dash.Level{
			{ID: 1, AvgBitrateMbps: 1},
			{ID: 2, AvgBitrateMbps: 2},
		},
	}
}

// TestManySimultaneousFetchers drives 32 independent fetchers against
// one shared server pair and checks the exactly-once contract holds for
// every client at once: each chunk verified, each client's path bytes
// summing to the chunk size with nothing wasted or requeued, and the
// servers' ServedBytes ledger matching the population total exactly.
func TestManySimultaneousFetchers(t *testing.T) {
	const fetchers = 32
	video := smallVideo()
	ps, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ss, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	type tally struct {
		size, primary, secondary, wasted int64
		errs                             []string
	}
	results := make([]tally, fetchers)
	var wg sync.WaitGroup
	for i := 0; i < fetchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := NewFetcher(video, ps.Addr(), ss.Addr())
			if err != nil {
				results[i].errs = append(results[i].errs, err.Error())
				return
			}
			defer f.Close()
			for c := 0; c < video.NumChunks; c++ {
				res, err := f.FetchChunk(c, c%2, 5*time.Second)
				if err != nil {
					results[i].errs = append(results[i].errs, err.Error())
					return
				}
				if !res.Verified {
					results[i].errs = append(results[i].errs, "chunk not verified")
					return
				}
				if res.PrimaryBytes+res.SecondaryBytes != res.Size {
					results[i].errs = append(results[i].errs, "path bytes != size")
					return
				}
				results[i].size += res.Size
				results[i].primary += res.PrimaryBytes
				results[i].secondary += res.SecondaryBytes
				results[i].wasted += res.WastedBytes
			}
		}(i)
	}
	wg.Wait()

	var total, primary, secondary, wasted int64
	for i, r := range results {
		for _, e := range r.errs {
			t.Errorf("fetcher %d: %s", i, e)
		}
		total += r.size
		primary += r.primary
		secondary += r.secondary
		wasted += r.wasted
	}
	var want int64
	for c := 0; c < video.NumChunks; c++ {
		want += video.ChunkSize(c, c%2)
	}
	want *= fetchers
	if total != want {
		t.Errorf("population fetched %d bytes, want %d", total, want)
	}
	// Unshaped, fault-free servers: nothing should be fetched twice, so
	// the servers' own ledgers must balance the clients' to the byte.
	if wasted != 0 {
		t.Errorf("%d wasted bytes on a clean tier", wasted)
	}
	if served := ps.ServedBytes() + ss.ServedBytes(); served != primary+secondary {
		t.Errorf("servers served %d bytes, clients received %d", served, primary+secondary)
	}
	if ps.CurrentConns() != 0 {
		// Every fetcher closed; the handlers must have deregistered.
		deadline := time.Now().Add(2 * time.Second)
		for ps.CurrentConns() > 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := ps.CurrentConns(); n != 0 {
			t.Errorf("%d connections still registered after all fetchers closed", n)
		}
	}
}

// TestMaxConnsAdmissionAccounting opens far more raw connections than
// the admission limit allows and checks the 503 counter and the live
// connection gauge both land exactly.
func TestMaxConnsAdmissionAccounting(t *testing.T) {
	const dials, limit = 40, 8
	s, err := NewChunkServer(smallVideo(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetLimits(ServerLimits{MaxConns: limit})

	conns := make([]net.Conn, 0, dials)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < dials; i++ {
		c, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
	}

	// The accept loop drains the backlog sequentially; wait for it to
	// classify all 40.
	deadline := time.Now().Add(3 * time.Second)
	for s.OverloadStats().RejectedConns < dials-limit && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.OverloadStats().RejectedConns; got != dials-limit {
		t.Errorf("RejectedConns = %d, want %d", got, dials-limit)
	}
	if got := s.CurrentConns(); got != limit {
		t.Errorf("CurrentConns() = %d, want %d", got, limit)
	}
}
