package netmp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/obs"
)

// ChunkServer serves DASH chunk bytes over a minimal HTTP/1.1 on one
// listener, rate-shaped to emulate one network path's bandwidth. Chunk
// contents are deterministic (a function of the byte offset), so clients
// can verify multipath reassembly byte-for-byte. An optional FaultPlan
// makes the server misbehave on purpose (resets, stalls, premature
// closes, corruption, blackouts) to exercise the client-side path
// supervisor.
//
// The server protects itself from overload: ServerLimits caps concurrent
// connections (excess accepts get a 503 and are closed without touching
// admitted traffic) and requests per connection; handlers recover from
// panics instead of taking the process down; transient Accept errors
// (EMFILE, ECONNABORTED) are retried with capped backoff rather than
// killing the listener; and Drain stops accepting while letting
// in-flight bodies finish.
//
// For chaos orchestration the server can also die and come back: Crash
// stops the listener and resets every admitted connection (the way a
// machine loss looks to clients), and Restart re-listens on the same
// address, so client-side breakers exercise their full
// open → half-open → failback cycle against one stable origin identity.
type ChunkServer struct {
	Video *dash.Video

	addr    string // stable listen address, identical across restarts
	bucket  *TokenBucket
	wg      sync.WaitGroup
	start   time.Time
	mu      sync.Mutex
	served  int64
	chunkSz func(index, level int) int64

	// lifeMu guards the listener generation: the current listener and
	// write-cancel function, whether the listener is closed, and the
	// crashed flag. It is leaf-level: never acquire another server lock
	// while holding it. The generation's context itself travels as a
	// parameter into acceptLoop/serve/writeBody so an old generation can
	// never observe a new generation's state.
	lifeMu   sync.Mutex
	ln       net.Listener
	lnClosed bool
	lnErr    error
	crashed  bool
	cancel   context.CancelFunc

	connMu   sync.Mutex
	conns    map[net.Conn]*connTrack
	limits   ServerLimits
	draining bool
	ostats   OverloadStats
	sink     obs.Sink // telemetry journal (nil = off); guarded by connMu

	clk Clock // injectable wall clock (nil = time.Now)

	plan    *FaultPlan
	faultMu sync.Mutex
	faultRN *rand.Rand
	reqN    int64
	fstats  FaultStats
}

// connTrack is the server's per-connection admission record.
type connTrack struct {
	busy bool // mid-request (between parsed request and flushed response)
}

// ServerLimits is the ChunkServer's overload-protection configuration.
// Zero fields mean unlimited.
type ServerLimits struct {
	// MaxConns caps concurrently admitted connections; excess accepts
	// receive "503 Service Unavailable" and are closed.
	MaxConns int
	// MaxRequestsPerConn closes a keep-alive connection after it has
	// served this many requests, bounding per-connection state lifetime.
	MaxRequestsPerConn int
}

// OverloadStats counts the server's self-protection actions.
type OverloadStats struct {
	// RejectedConns counts accepts refused with a 503 under MaxConns
	// pressure.
	RejectedConns int64
	// CappedConns counts connections closed for reaching
	// MaxRequestsPerConn.
	CappedConns int64
	// PanicsRecovered counts handler panics absorbed (connection dropped,
	// server alive).
	PanicsRecovered int64
	// AcceptRetries counts transient Accept errors absorbed with backoff.
	AcceptRetries int64
}

// errInjected marks handler exits caused by an injected fault (the
// connection is torn down, which is the point).
var errInjected = errors.New("netmp: injected fault")

// NewChunkServer starts a server on a loopback port, shaped to rateMbps
// (non-positive = unshaped).
func NewChunkServer(video *dash.Video, rateMbps float64) (*ChunkServer, error) {
	return NewChunkServerWithFaults(video, rateMbps, nil)
}

// NewChunkServerWithFaults starts a shaped server that injects faults
// according to plan (nil = no faults).
func NewChunkServerWithFaults(video *dash.Video, rateMbps float64, plan *FaultPlan) (*ChunkServer, error) {
	return newChunkServerClocked(video, rateMbps, plan, nil)
}

// newChunkServerClocked is the constructor with an injectable clock
// (nil = time.Now), used by tests that need deterministic fault windows
// and telemetry timestamps.
func newChunkServerClocked(video *dash.Video, rateMbps float64, plan *FaultPlan, clk Clock) (*ChunkServer, error) {
	if err := video.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netmp: listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &ChunkServer{
		Video:   video,
		addr:    ln.Addr().String(),
		ln:      ln,
		bucket:  newTokenBucketClocked(rateMbps*1e6/8, 64*1024, clk),
		cancel:  cancel,
		clk:     clk,
		start:   clk.now(),
		chunkSz: video.ChunkSize,
		conns:   make(map[net.Conn]*connTrack),
		plan:    plan,
	}
	if plan != nil {
		seed := plan.Seed
		if seed == 0 {
			seed = 1
		}
		s.faultRN = rand.New(rand.NewSource(seed))
	}
	s.wg.Add(1)
	go s.acceptLoop(ln, ctx)
	return s, nil
}

// Addr returns the server's listen address. It is stable across
// Crash/Restart cycles — the origin identity clients dial.
func (s *ChunkServer) Addr() string { return s.addr }

// ServedBytes returns the total payload bytes written.
func (s *ChunkServer) ServedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// FaultStats returns a snapshot of the faults injected so far.
func (s *ChunkServer) FaultStats() FaultStats {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.fstats
}

// SetFaultProbs replaces the per-request fault probabilities mid-run —
// the chaos-timeline "fault surge" and "fault clear" lever. A server
// started without a FaultPlan gains one (seeded with seed, or 1 when 0);
// a server that already has a plan keeps its draw stream, script,
// blackouts and level filter, only the probabilities change. Cumulative
// FaultStats are preserved either way.
func (s *ChunkServer) SetFaultProbs(seed int64, reset, stall, closeProb, corrupt float64) {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.plan == nil {
		s.plan = &FaultPlan{Seed: seed}
	}
	if s.faultRN == nil {
		if seed == 0 {
			seed = 1
		}
		s.faultRN = rand.New(rand.NewSource(seed))
	}
	s.plan.ResetProb = reset
	s.plan.StallProb = stall
	s.plan.CloseProb = closeProb
	s.plan.CorruptProb = corrupt
}

// SetRateMbps changes the path's shaped rate in place (non-positive =
// unshaped), emulating fades and recoveries without restarting the
// server.
func (s *ChunkServer) SetRateMbps(mbps float64) {
	s.bucket.SetRate(mbps * 1e6 / 8)
}

// SetLimits installs the server's overload-protection limits; safe to
// call while serving.
func (s *ChunkServer) SetLimits(l ServerLimits) {
	s.connMu.Lock()
	s.limits = l
	s.connMu.Unlock()
}

// OverloadStats returns a snapshot of the server's self-protection
// counters.
func (s *ChunkServer) OverloadStats() OverloadStats {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.ostats
}

// CurrentConns returns the number of currently admitted connections —
// the live admission gauge population runs assert MaxConns behaviour
// against, instead of inferring it from 503 counts.
func (s *ChunkServer) CurrentConns() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return len(s.conns)
}

// Draining reports whether Drain has been called.
func (s *ChunkServer) Draining() bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.draining
}

// closeListener closes the current generation's listener exactly once
// and remembers the error. Safe to call repeatedly and across
// generations.
func (s *ChunkServer) closeListener() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if !s.lnClosed {
		s.lnErr = s.ln.Close()
		s.lnClosed = true
	}
	return s.lnErr
}

// cancelWrites cancels the current generation's write context,
// unblocking shaped writes and injected stalls.
func (s *ChunkServer) cancelWrites() {
	s.lifeMu.Lock()
	cancel := s.cancel
	s.lifeMu.Unlock()
	cancel()
}

// Crashed reports whether the server is between a Crash and a Restart.
func (s *ChunkServer) Crashed() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	return s.crashed
}

// crashQuiesce is how long Crash waits for in-flight handlers to notice
// their reset connections before returning anyway.
const crashQuiesce = 2 * time.Second

// Crash kills the origin the way a machine loss looks from outside: the
// listener closes (new dials are refused), every admitted connection is
// reset (RST), and in-flight shaped writes abort. Unlike Blackhole the
// death is recoverable — Restart brings the same address back. Crash
// waits (bounded) for the reset handlers to exit so a crash→restart
// sequence observes a quiet server in between. Idempotent.
func (s *ChunkServer) Crash() {
	s.lifeMu.Lock()
	if s.crashed {
		s.lifeMu.Unlock()
		return
	}
	s.crashed = true
	if !s.lnClosed {
		s.lnErr = s.ln.Close()
		s.lnClosed = true
	}
	s.cancel()
	s.lifeMu.Unlock()
	s.connMu.Lock()
	for c := range s.conns {
		hardClose(c)
	}
	s.connMu.Unlock()
	deadline := time.Now().Add(crashQuiesce)
	for time.Now().Before(deadline) {
		if s.CurrentConns() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Restart brings a crashed server back on its original address with a
// fresh listener and write context; counters (served bytes, fault and
// overload stats) carry over. Returns an error when the server is not
// crashed or the address cannot be re-bound.
func (s *ChunkServer) Restart() error {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	if !s.crashed {
		return fmt.Errorf("netmp: restart: server %s is not crashed", s.addr)
	}
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("netmp: restart %s: %w", s.addr, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.ln, s.lnClosed, s.crashed = ln, false, false
	s.cancel = cancel
	s.wg.Add(1)
	go s.acceptLoop(ln, ctx)
	return nil
}

// Drain gracefully retires the server: the listener closes (new dials
// are refused), idle keep-alive connections are kicked, and connections
// mid-request finish writing their current body before closing. Drain
// blocks until every handler has exited; Close afterwards is still
// required (and cheap).
func (s *ChunkServer) Drain() error {
	s.connMu.Lock()
	s.draining = true
	sink := s.sink
	idle := make([]net.Conn, 0, len(s.conns))
	active := len(s.conns)
	for c, tr := range s.conns {
		if !tr.busy {
			idle = append(idle, c)
		}
	}
	s.connMu.Unlock()
	if sink != nil {
		sink.Emit(obs.NewEvent("server.drain").WithStr("addr", s.Addr()).
			WithNum("active_conns", float64(active)))
	}
	err := s.closeListener()
	for _, c := range idle {
		c.Close() // parked in readRequest; the handler exits on the error
	}
	s.wg.Wait()
	return err
}

// Blackhole kills the path permanently mid-session: the listener closes
// so client redials are refused, and every active connection is reset.
// The server object remains valid (Close is still required).
func (s *ChunkServer) Blackhole() {
	s.closeListener()
	s.cancelWrites() // unblock shaped writes
	s.connMu.Lock()
	for c := range s.conns {
		hardClose(c)
	}
	s.connMu.Unlock()
}

// Close stops the server and waits for handlers to finish. Active
// connections are closed too — a handler parked in readRequest on an
// idle keep-alive connection would otherwise park Close forever.
func (s *ChunkServer) Close() error {
	s.cancelWrites()
	err := s.closeListener()
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// acceptBackoffMax caps the accept-retry backoff on transient errors.
const acceptBackoffMax = time.Second

// acceptLoop accepts connections for one listener generation. The
// listener and write-cancel context are captured as parameters (not read
// from the struct) so a Crash/Restart cycle cannot hand this generation
// the next generation's listener.
func (s *ChunkServer) acceptLoop(ln net.Listener, ctx context.Context) {
	defer s.wg.Done()
	backoff := 5 * time.Millisecond
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Only a closed listener (or server shutdown) ends the loop.
			// Anything else — EMFILE, ECONNABORTED, a momentary kernel
			// hiccup — is retried with capped backoff: a transient error
			// must not permanently kill the listener.
			if errors.Is(err, net.ErrClosed) || ctx.Err() != nil {
				return
			}
			s.connMu.Lock()
			s.ostats.AcceptRetries++
			s.connMu.Unlock()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return
			}
			if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = 5 * time.Millisecond

		// Admission control: a Crash racing this accept must not leave an
		// admitted connection the crash sweep missed, so the crashed check
		// happens under connMu — if crashed is still false here, the sweep
		// (which also takes connMu) has not run yet and will reset this
		// connection. Under MaxConns pressure the excess accept is turned
		// away with a 503 so admitted connections keep their bandwidth and
		// file descriptors.
		s.connMu.Lock()
		if s.Crashed() {
			s.connMu.Unlock()
			hardClose(conn)
			continue
		}
		if s.limits.MaxConns > 0 && len(s.conns) >= s.limits.MaxConns {
			s.ostats.RejectedConns++
			sink := s.sink
			s.connMu.Unlock()
			if sink != nil {
				sink.Emit(obs.NewEvent("server.reject").WithStr("addr", s.Addr()).
					WithStr("peer", conn.RemoteAddr().String()))
			}
			go s.reject503(conn)
			continue
		}
		s.conns[conn] = &connTrack{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				// A handler panic is one connection's problem, not the
				// server's: recover, count it, drop the connection.
				if r := recover(); r != nil {
					s.connMu.Lock()
					s.ostats.PanicsRecovered++
					s.connMu.Unlock()
				}
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
				conn.Close()
			}()
			s.serve(conn, ctx)
		}()
	}
}

// reject503 answers one over-limit connection and closes it.
func (s *ChunkServer) reject503(conn net.Conn) {
	conn.SetDeadline(s.clk.now().Add(time.Second))
	io.WriteString(conn, "HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
	conn.Close()
}

// hardClose drops a connection with an RST (SO_LINGER 0) instead of a
// clean FIN, the way a dying radio link looks to the peer.
func hardClose(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// ChunkBody returns the deterministic payload byte at absolute offset off
// of chunk (index, level): a cheap keyed byte generator that makes any
// mis-assembled range detectable.
func ChunkBody(index, level int, off int64) byte {
	x := uint64(index)*1_000_003 + uint64(level)*7_777_777 + uint64(off)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return byte(x)
}

// nextFault decides the fault (if any) for a chunk request at level:
// blackout windows first, then the scripted schedule, then seeded
// probability draws evaluated in a fixed order. The plan is read under
// faultMu because SetFaultProbs can install or mutate it mid-run.
func (s *ChunkServer) nextFault(level int) FaultKind {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	if s.plan == nil || !s.plan.appliesTo(level) {
		return FaultNone
	}
	s.reqN++
	now := s.clk.now().Sub(s.start)
	for _, b := range s.plan.Blackouts {
		if now >= b.From && now < b.To {
			s.fstats.BlackoutResets++
			return FaultReset
		}
	}
	if k, ok := s.plan.Script[int(s.reqN)]; ok {
		s.countFaultLocked(k)
		return k
	}
	// Always draw all four so the random sequence depends only on the
	// seed and request ordinal, not on which probabilities are set.
	r1, r2, r3, r4 := s.faultRN.Float64(), s.faultRN.Float64(), s.faultRN.Float64(), s.faultRN.Float64()
	switch {
	case r1 < s.plan.ResetProb:
		s.fstats.Resets++
		return FaultReset
	case r2 < s.plan.StallProb:
		s.fstats.Stalls++
		return FaultStall
	case r3 < s.plan.CloseProb:
		s.fstats.PrematureCloses++
		return FaultClose
	case r4 < s.plan.CorruptProb:
		s.fstats.Corruptions++
		return FaultCorrupt
	}
	return FaultNone
}

// stallDuration reads the plan's stall length under faultMu (the plan
// can be swapped mid-run by SetFaultProbs).
func (s *ChunkServer) stallDuration() time.Duration {
	s.faultMu.Lock()
	defer s.faultMu.Unlock()
	return s.plan.stallFor()
}

func (s *ChunkServer) countFaultLocked(k FaultKind) {
	switch k {
	case FaultReset:
		s.fstats.Resets++
	case FaultStall:
		s.fstats.Stalls++
	case FaultClose:
		s.fstats.PrematureCloses++
	case FaultCorrupt:
		s.fstats.Corruptions++
	}
}

// serve handles one keep-alive connection, honoring the per-connection
// request cap and the drain flag (finish the in-flight response, then
// close instead of waiting for the next request). ctx is the listener
// generation's write context, cancelled by Crash/Close.
func (s *ChunkServer) serve(conn net.Conn, ctx context.Context) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	served := 0
	setBusy := func(b bool) {
		s.connMu.Lock()
		if tr := s.conns[conn]; tr != nil {
			tr.busy = b
		}
		s.connMu.Unlock()
	}
	for {
		if s.Draining() {
			return
		}
		s.connMu.Lock()
		capped := s.limits.MaxRequestsPerConn > 0 && served >= s.limits.MaxRequestsPerConn
		if capped {
			s.ostats.CappedConns++
		}
		s.connMu.Unlock()
		if capped {
			return
		}
		index, level, from, to, manifest, bad, ok := readChunkRequest(r, s.Video)
		if !ok {
			return
		}
		served++
		setBusy(true)
		if bad {
			fmt.Fprintf(w, "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n")
			w.Flush()
			setBusy(false)
			continue
		}
		if manifest {
			if err := s.writeManifest(w); err != nil {
				return
			}
			setBusy(false)
			continue
		}
		fault := s.nextFault(level)
		if fault == FaultReset {
			hardClose(conn)
			return
		}
		size := s.chunkSz(index, level)
		if to < 0 || to >= size {
			to = size - 1
		}
		if from < 0 || from > to {
			fmt.Fprintf(w, "HTTP/1.1 416 Range Not Satisfiable\r\nContent-Length: 0\r\n\r\n")
			w.Flush()
			setBusy(false)
			continue
		}
		n := to - from + 1
		fmt.Fprintf(w, "HTTP/1.1 206 Partial Content\r\nContent-Length: %d\r\nContent-Range: bytes %d-%d/%d\r\n\r\n", n, from, to, size)
		if err := s.writeBody(ctx, w, index, level, from, n, fault); err != nil {
			w.Flush() // deliver whatever was produced before the fault
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		setBusy(false)
	}
}

// readChunkRequest parses "GET /seg-lL-cCCCC.m4s HTTP/1.1" (or
// "GET /manifest.mpd") plus headers against video's catalog bounds —
// shared by the origin ChunkServer and the EdgeServer, which speak the
// same protocol. Header field names and the range unit match
// case-insensitively (RFC 9110); a syntactically malformed Range value
// sets bad=true so the caller answers 400 instead of silently serving
// from offset 0. ok=false means protocol error or EOF.
func readChunkRequest(r *bufio.Reader, video *dash.Video) (index, level int, from, to int64, manifest, bad, ok bool) {
	line, err := r.ReadString('\n')
	if err != nil {
		return 0, 0, 0, 0, false, false, false
	}
	parts := strings.Fields(strings.TrimSpace(line))
	if len(parts) != 3 || parts[0] != "GET" {
		return 0, 0, 0, 0, false, false, false
	}
	isManifest := parts[1] == "/manifest.mpd"
	var lvlID, idx int
	if !isManifest {
		if _, err := fmt.Sscanf(parts[1], "/seg-l%d-c%d.m4s", &lvlID, &idx); err != nil {
			return 0, 0, 0, 0, false, false, false
		}
	}
	from, to = 0, -1
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return 0, 0, 0, 0, false, false, false
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if v, found := headerCut(h, "Range"); found {
			unit, spec, cut := strings.Cut(v, "=")
			if !cut || !strings.EqualFold(strings.TrimSpace(unit), "bytes") {
				bad = true
				continue
			}
			a, b, dashed := strings.Cut(spec, "-")
			if !dashed { // "bytes=100": no range at all
				bad = true
				continue
			}
			from, err = strconv.ParseInt(strings.TrimSpace(a), 10, 64)
			if err != nil {
				bad = true
				continue
			}
			if b = strings.TrimSpace(b); b != "" {
				if to, err = strconv.ParseInt(b, 10, 64); err != nil {
					bad = true
					continue
				}
			}
		}
	}
	if isManifest {
		return 0, 0, 0, 0, true, bad, true
	}
	lvl := lvlID - 1
	if lvl < 0 || lvl >= len(video.Levels) || idx < 0 || idx >= video.NumChunks {
		return 0, 0, 0, 0, false, false, false
	}
	return idx, lvl, from, to, false, bad, true
}

// writeManifest serves the video's MPD (unshaped: manifests are tiny).
func (s *ChunkServer) writeManifest(w *bufio.Writer) error {
	return writeManifestFor(w, s.Video)
}

// writeManifestFor writes v's MPD response — shared by the origin
// server and the edge (an edge synthesizes the manifest locally; the
// asset description is the same either way).
func writeManifestFor(w *bufio.Writer, v *dash.Video) error {
	body, err := dash.EncodeMPD(v.Manifest())
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "HTTP/1.1 200 OK\r\nContent-Type: application/dash+xml\r\nContent-Length: %d\r\n\r\n", len(body)); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

// writeBody streams n deterministic bytes through the rate shaper,
// applying the chosen mid-body fault: a stall freezes at the halfway
// point, a premature close stops after half the advertised length, and
// corruption flips a short run of bytes in the first block.
func (s *ChunkServer) writeBody(ctx context.Context, w io.Writer, index, level int, from, n int64, fault FaultKind) error {
	const block = segBufBlock
	bp := AcquireSegBuf()
	defer ReleaseSegBuf(bp)
	buf := *bp
	off := from
	remaining := n
	stalled := false
	// A premature close stops after roughly half the advertised length
	// (at least one byte short, so single-block bodies truncate too).
	closeAt := n
	if fault == FaultClose {
		if closeAt = (n + 1) / 2; closeAt >= n {
			closeAt = n - 1
		}
	}
	for remaining > 0 {
		written := n - remaining
		if fault == FaultStall && !stalled && (written >= n/2 || n <= block) {
			stalled = true
			select {
			case <-time.After(s.stallDuration()):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if fault == FaultClose && written >= closeAt {
			return errInjected
		}
		m := int64(block)
		if m > remaining {
			m = remaining
		}
		if fault == FaultClose && m > closeAt-written {
			m = closeAt - written
		}
		for i := int64(0); i < m; i++ {
			buf[i] = ChunkBody(index, level, off+i)
		}
		if fault == FaultCorrupt && off == from {
			for i := int64(0); i < m && i < 16; i++ {
				buf[i] ^= 0xA5
			}
		}
		if err := s.bucket.Take(ctx, int(m)); err != nil {
			return err
		}
		if _, err := w.Write(buf[:m]); err != nil {
			return err
		}
		if f, okF := w.(*bufio.Writer); okF {
			if err := f.Flush(); err != nil {
				return err
			}
		}
		off += m
		remaining -= m
		s.mu.Lock()
		s.served += m
		s.mu.Unlock()
	}
	return nil
}
