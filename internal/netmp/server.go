package netmp

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"mpdash/internal/dash"
)

// ChunkServer serves DASH chunk bytes over a minimal HTTP/1.1 on one
// listener, rate-shaped to emulate one network path's bandwidth. Chunk
// contents are deterministic (a function of the byte offset), so clients
// can verify multipath reassembly byte-for-byte.
type ChunkServer struct {
	Video *dash.Video

	ln      net.Listener
	bucket  *TokenBucket
	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
	mu      sync.Mutex
	served  int64
	chunkSz func(index, level int) int64
}

// NewChunkServer starts a server on a loopback port, shaped to rateMbps
// (non-positive = unshaped).
func NewChunkServer(video *dash.Video, rateMbps float64) (*ChunkServer, error) {
	if err := video.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netmp: listen: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &ChunkServer{
		Video:   video,
		ln:      ln,
		bucket:  NewTokenBucket(rateMbps*1e6/8, 64*1024),
		ctx:     ctx,
		cancel:  cancel,
		chunkSz: video.ChunkSize,
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *ChunkServer) Addr() string { return s.ln.Addr().String() }

// ServedBytes returns the total payload bytes written.
func (s *ChunkServer) ServedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Close stops the server and waits for handlers to finish.
func (s *ChunkServer) Close() error {
	s.cancel()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *ChunkServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.serve(conn)
		}()
	}
}

// ChunkBody returns the deterministic payload byte at absolute offset off
// of chunk (index, level): a cheap keyed byte generator that makes any
// mis-assembled range detectable.
func ChunkBody(index, level int, off int64) byte {
	x := uint64(index)*1_000_003 + uint64(level)*7_777_777 + uint64(off)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return byte(x)
}

// serve handles one keep-alive connection.
func (s *ChunkServer) serve(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		index, level, from, to, manifest, ok := s.readRequest(r)
		if !ok {
			return
		}
		if manifest {
			if err := s.writeManifest(w); err != nil {
				return
			}
			continue
		}
		size := s.chunkSz(index, level)
		if to < 0 || to >= size {
			to = size - 1
		}
		if from < 0 || from > to {
			fmt.Fprintf(w, "HTTP/1.1 416 Range Not Satisfiable\r\nContent-Length: 0\r\n\r\n")
			w.Flush()
			continue
		}
		n := to - from + 1
		fmt.Fprintf(w, "HTTP/1.1 206 Partial Content\r\nContent-Length: %d\r\nContent-Range: bytes %d-%d/%d\r\n\r\n", n, from, to, size)
		if err := s.writeBody(w, index, level, from, n); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// readRequest parses "GET /seg-lL-cCCCC.m4s HTTP/1.1" (or
// "GET /manifest.mpd") plus headers; it returns ok=false on any protocol
// error or EOF.
func (s *ChunkServer) readRequest(r *bufio.Reader) (index, level int, from, to int64, manifest, ok bool) {
	line, err := r.ReadString('\n')
	if err != nil {
		return 0, 0, 0, 0, false, false
	}
	parts := strings.Fields(strings.TrimSpace(line))
	if len(parts) != 3 || parts[0] != "GET" {
		return 0, 0, 0, 0, false, false
	}
	isManifest := parts[1] == "/manifest.mpd"
	var lvlID, idx int
	if !isManifest {
		if _, err := fmt.Sscanf(parts[1], "/seg-l%d-c%d.m4s", &lvlID, &idx); err != nil {
			return 0, 0, 0, 0, false, false
		}
	}
	from, to = 0, -1
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			return 0, 0, 0, 0, false, false
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if v, found := strings.CutPrefix(h, "Range: bytes="); found {
			a, b, _ := strings.Cut(v, "-")
			from, _ = strconv.ParseInt(a, 10, 64)
			if b != "" {
				to, _ = strconv.ParseInt(b, 10, 64)
			}
		}
	}
	if isManifest {
		return 0, 0, 0, 0, true, true
	}
	lvl := lvlID - 1
	if lvl < 0 || lvl >= len(s.Video.Levels) || idx < 0 || idx >= s.Video.NumChunks {
		return 0, 0, 0, 0, false, false
	}
	return idx, lvl, from, to, false, true
}

// writeManifest serves the video's MPD (unshaped: manifests are tiny).
func (s *ChunkServer) writeManifest(w *bufio.Writer) error {
	body, err := dash.EncodeMPD(s.Video.Manifest())
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "HTTP/1.1 200 OK\r\nContent-Type: application/dash+xml\r\nContent-Length: %d\r\n\r\n", len(body)); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

// writeBody streams n deterministic bytes through the rate shaper.
func (s *ChunkServer) writeBody(w io.Writer, index, level int, from, n int64) error {
	const block = 16 * 1024
	buf := make([]byte, block)
	off := from
	remaining := n
	for remaining > 0 {
		m := int64(block)
		if m > remaining {
			m = remaining
		}
		for i := int64(0); i < m; i++ {
			buf[i] = ChunkBody(index, level, off+i)
		}
		if err := s.bucket.Take(s.ctx, int(m)); err != nil {
			return err
		}
		if _, err := w.Write(buf[:m]); err != nil {
			return err
		}
		if f, okF := w.(*bufio.Writer); okF {
			if err := f.Flush(); err != nil {
				return err
			}
		}
		off += m
		remaining -= m
		s.mu.Lock()
		s.served += m
		s.mu.Unlock()
	}
	return nil
}
