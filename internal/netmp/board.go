package netmp

// The congestion board: joint-flow awareness for sessions sharing a
// bottleneck. Sessions that stream behind the same shaped link (a swarm
// group, a household NAT, one cell) each rediscover a capacity drop
// alone — every predictor must decay through its own stale samples
// before the scheduler reacts. The board short-circuits that: sessions
// publish their per-path service-rate observations into a sharded,
// lock-cheap registry keyed by the bottleneck they share; new sessions
// seed their Holt-Winters predictor from the board instead of starting
// blind; and a capacity drop observed by one session bumps the key's
// drop epoch, pre-arming the doomed-chunk abort thresholds of every
// neighbor (monitorDoom halves its MinProgress gate and clamps its rate
// estimate by the board's post-drop figure).
//
// The design follows the joint-flow/cross-layer line of work (QAware;
// "More Than The Sum Of Its Parts"): expose transport-layer state across
// co-bottlenecked flows instead of letting each one learn the hard way.

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mpdash/internal/obs"
)

// boardShards is the shard count; a power of two so the key hash maps
// with a mask. 16 shards keep 1000 publishing sessions off one mutex.
const boardShards = 16

// boardDropFraction is the relative rate collapse that registers as a
// capacity drop: a published sample below this fraction of the key's
// running estimate bumps the drop epoch.
const boardDropFraction = 0.5

// boardEWMAAlpha smooths the per-(key,path) rate estimate. Responsive
// enough that a genuine drop moves the estimate within a few samples,
// damped enough that one slow segment does not.
const boardEWMAAlpha = 0.3

// boardPublishInterval throttles per-fetcher publishes so the per-
// segment hot path pays at most one shard-mutex acquisition per interval.
const boardPublishInterval = 25 * time.Millisecond

// CongestionBoard is a sharded registry of per-bottleneck path-rate
// estimates and capacity-drop signals, shared by the sessions of one
// process. Safe for concurrent use by any number of fetchers; the zero
// value is NOT usable — construct with NewCongestionBoard.
type CongestionBoard struct {
	clk    Clock
	shards [boardShards]boardShard

	// The cumulative tallies are striped across cache lines
	// (obs.ShardedCounter) keyed by the bottleneck-key hash: at swarm
	// scale every session's publish throttle fires on the same
	// interval, and a single shared atomic becomes a coherence-miss
	// hotspot long before the shard mutexes do.
	publishes obs.ShardedCounter
	seeds     obs.ShardedCounter
	drops     obs.ShardedCounter
}

type boardShard struct {
	mu      sync.Mutex
	entries map[string]*boardEntry
}

// boardEntry is one bottleneck key's shared state. rateBits holds the
// EWMA rate estimate as float64 bits so readers on the doom-monitor tick
// pay one atomic load, not a mutex.
type boardEntry struct {
	rateBits  atomic.Uint64 // float64 bits, bytes/s (0 = no estimate yet)
	samples   atomic.Int64
	dropEpoch atomic.Int64

	mu       sync.Mutex // serializes the EWMA fold + drop detection
	lastDrop time.Time
}

// NewCongestionBoard returns an empty board.
func NewCongestionBoard() *CongestionBoard {
	return NewCongestionBoardClocked(nil)
}

// NewCongestionBoardClocked is the constructor with an injectable clock
// (nil = time.Now) for deterministic tests.
func NewCongestionBoardClocked(clk Clock) *CongestionBoard {
	b := &CongestionBoard{clk: clk}
	for i := range b.shards {
		b.shards[i].entries = make(map[string]*boardEntry)
	}
	return b
}

// boardHash is the FNV-1a hash shared by shard selection and counter
// striping, so one key always lands on one shard and one stripe.
func boardHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// shardFor hashes key to its shard (FNV-1a, masked).
func (b *CongestionBoard) shardFor(key string) *boardShard {
	return &b.shards[boardHash(key)&(boardShards-1)]
}

// entry returns the key's entry, creating it on first use.
func (b *CongestionBoard) entry(key string) *boardEntry {
	s := b.shardFor(key)
	s.mu.Lock()
	e := s.entries[key]
	if e == nil {
		e = &boardEntry{}
		s.entries[key] = e
	}
	s.mu.Unlock()
	return e
}

// peek returns the key's entry without creating it.
func (b *CongestionBoard) peek(key string) *boardEntry {
	s := b.shardFor(key)
	s.mu.Lock()
	e := s.entries[key]
	s.mu.Unlock()
	return e
}

// Publish folds one observed service-rate sample (bytes/s) into the
// key's shared estimate. A sample collapsing below half the running
// estimate registers a capacity drop: the key's drop epoch is bumped,
// pre-arming every neighbor session's abort thresholds. It reports
// whether this publish registered a drop.
func (b *CongestionBoard) Publish(key string, rate float64) bool {
	if rate <= 0 {
		return false
	}
	h := boardHash(key)
	b.publishes.Inc(h)
	e := b.entry(key)
	e.mu.Lock()
	prev := bitsToRate(e.rateBits.Load())
	next := rate
	dropped := false
	if e.samples.Load() > 0 && prev > 0 {
		next = boardEWMAAlpha*rate + (1-boardEWMAAlpha)*prev
		if rate < boardDropFraction*prev {
			dropped = true
			e.lastDrop = b.clk.now()
			e.dropEpoch.Add(1)
			// Snap the estimate down to the observed post-drop rate:
			// the EWMA's memory of the pre-drop capacity is exactly the
			// staleness the board exists to kill.
			next = rate
		}
	}
	e.rateBits.Store(rateToBits(next))
	e.samples.Add(1)
	e.mu.Unlock()
	if dropped {
		b.drops.Inc(h)
	}
	return dropped
}

// Rate returns the key's shared rate estimate in bytes/s, and whether
// any session has published one.
func (b *CongestionBoard) Rate(key string) (float64, bool) {
	e := b.peek(key)
	if e == nil || e.samples.Load() == 0 {
		return 0, false
	}
	r := bitsToRate(e.rateBits.Load())
	return r, r > 0
}

// Seed reads the key's estimate for predictor seeding, counting the
// read so board effectiveness is observable. ok is false when no
// neighbor has published yet.
func (b *CongestionBoard) Seed(key string) (rate float64, ok bool) {
	rate, ok = b.Rate(key)
	if ok {
		b.seeds.Inc(boardHash(key))
	}
	return rate, ok
}

// DropEpoch returns the key's capacity-drop epoch: it starts at zero and
// increments each time a published sample registers a drop. Sessions
// snapshot it at chunk start; an increase mid-chunk means a neighbor hit
// the wall first.
func (b *CongestionBoard) DropEpoch(key string) int64 {
	e := b.peek(key)
	if e == nil {
		return 0
	}
	return e.dropEpoch.Load()
}

// BoardStats snapshots the board's cumulative counters.
type BoardStats struct {
	// Publishes counts rate samples folded in; Seeds counts predictor
	// seeds served; Drops counts capacity-drop signals registered.
	Publishes, Seeds, Drops int64
	// Keys counts the bottleneck keys tracked.
	Keys int
}

// Stats returns the board's counters.
func (b *CongestionBoard) Stats() BoardStats {
	st := BoardStats{
		Publishes: b.publishes.Value(),
		Seeds:     b.seeds.Value(),
		Drops:     b.drops.Value(),
	}
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		st.Keys += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// Instrument exposes the board's counters as scrape-time collectors on
// t's registry. Call once per board, not per session.
func (b *CongestionBoard) Instrument(t *obs.Telemetry) {
	if t == nil {
		return
	}
	r := t.Registry
	r.CounterFunc("netmp_board_publishes_total",
		"Rate samples folded into the congestion board.",
		nil, func() float64 { return float64(b.publishes.Value()) })
	r.CounterFunc("netmp_board_seeds_total",
		"Predictor seeds served from the congestion board.",
		nil, func() float64 { return float64(b.seeds.Value()) })
	r.CounterFunc("netmp_board_drops_total",
		"Capacity-drop signals registered on the congestion board.",
		nil, func() float64 { return float64(b.drops.Value()) })
	r.GaugeFunc("netmp_board_keys",
		"Bottleneck keys tracked by the congestion board.",
		nil, func() float64 { return float64(b.Stats().Keys) })
}

func rateToBits(r float64) uint64    { return math.Float64bits(r) }
func bitsToRate(bits uint64) float64 { return math.Float64frombits(bits) }

// ---- fetcher integration ----

// boardLink is the fetcher's attachment to a congestion board.
type boardLink struct {
	board *CongestionBoard
	key   string
	// baseEpoch is the drop epoch at join time; any later value means a
	// neighbor observed a capacity drop during this session.
	baseEpoch atomic.Int64
	// lastPublish throttles the per-segment publish hot path
	// (unix nanos of the last accepted publish).
	lastPublish atomic.Int64
}

// JoinBoard attaches the fetcher to a congestion board under the given
// bottleneck key: the hedge/doom predictor is seeded from the board's
// shared estimate when one exists (journalled as board.seed), every
// completed segment's service rate is published back (throttled), and a
// neighbor-observed capacity drop pre-arms this fetcher's abort
// thresholds. Call after Instrument and before fetching; a nil board is
// a no-op.
func (f *Fetcher) JoinBoard(board *CongestionBoard, key string) {
	if board == nil {
		return
	}
	link := &boardLink{board: board, key: key}
	link.baseEpoch.Store(board.DropEpoch(key))
	f.board = link
	if rate, ok := board.Seed(key); ok {
		f.hedge.seed(rate)
		if fo := f.obsHandles(); fo != nil && fo.sink != nil {
			fo.sink.Emit(obs.NewEvent("board.seed").
				WithStr("key", key).
				WithNum("rate_bps", rate*8))
		}
	}
}

// observeSegRate feeds one completed segment's measured service rate
// into the hedge/doom predictor and (throttled) the congestion board.
func (f *Fetcher) observeSegRate(bytes int64, d time.Duration) {
	f.hedge.observe(bytes, d)
	if bytes > 0 && d > 0 {
		f.publishRate(float64(bytes) / d.Seconds())
	}
}

// publishRate folds one completed segment's measured service rate into
// the board (throttled to one publish per interval). A publish that
// registers a capacity drop is journalled.
func (f *Fetcher) publishRate(rate float64) {
	link := f.board
	if link == nil || rate <= 0 {
		return
	}
	now := f.clk.now().UnixNano()
	last := link.lastPublish.Load()
	if now-last < int64(boardPublishInterval) || !link.lastPublish.CompareAndSwap(last, now) {
		return
	}
	if link.board.Publish(link.key, rate) {
		if fo := f.obsHandles(); fo != nil && fo.sink != nil {
			fo.sink.Emit(obs.NewEvent("board.drop").
				WithStr("key", link.key).
				WithNum("rate_bps", rate*8).
				WithNum("epoch", float64(link.board.DropEpoch(link.key))))
		}
	}
}

// boardPreArmed reports whether a neighbor session has observed a
// capacity drop since this fetcher joined the board (or since the last
// pre-arm was consumed by a completed chunk).
func (f *Fetcher) boardPreArmed() bool {
	link := f.board
	if link == nil {
		return false
	}
	return link.board.DropEpoch(link.key) > link.baseEpoch.Load()
}

// boardRate reads the board's shared per-path rate estimate.
func (f *Fetcher) boardRate() (float64, bool) {
	link := f.board
	if link == nil {
		return 0, false
	}
	return link.board.Rate(link.key)
}

// ackBoardEpoch re-bases the pre-arm trigger after a chunk completes on
// time: the local predictor has caught up with whatever the neighbors
// saw, so the stale signal should not keep tightening future chunks.
func (f *Fetcher) ackBoardEpoch() {
	link := f.board
	if link == nil {
		return
	}
	link.baseEpoch.Store(link.board.DropEpoch(link.key))
}
