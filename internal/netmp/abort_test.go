package netmp

// Doomed-chunk abort tests: the pure doom/fit decisions are table-tested
// deterministically; the live tests drive a real capacity collapse
// through the shaped servers and assert the cross-layer contract — an
// abort is a scheduling decision, not a fault (no breaker fuel, no
// requeue budget), the ledger stays exactly-once, and the Streamer
// downgrades instead of rebuffering.

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/obs"
)

func TestDoomedPure(t *testing.T) {
	cases := []struct {
		name       string
		rate       float64 // bytes/s per path
		paths      int
		remaining  int64
		windowLeft time.Duration
		factor     float64
		want       bool
	}{
		{"fits comfortably", 1e6, 2, 1e6, time.Second, 1, false},
		{"fits exactly", 1e6, 2, 2e6, time.Second, 1, false},
		{"doomed", 1e5, 2, 2e6, time.Second, 1, true},
		{"single path doomed", 1e6, 1, 2e6, time.Second, 1, true},
		{"second path saves it", 1e6, 2, 1.5e6, time.Second, 1, false},
		{"factor 2 tolerates 2x overrun", 1e6, 1, 1.5e6, time.Second, 2, false},
		{"factor 0.5 aborts early", 1e6, 2, 1.5e6, time.Second, 0.5, true},
		{"no estimate yet", 0, 2, 2e6, time.Second, 1, false},
		{"no live paths", 1e6, 0, 2e6, time.Second, 1, false},
		{"nothing remaining", 1e6, 2, 0, time.Second, 1, false},
		{"window already expired", 1e3, 2, 2e6, 0, 1, false},
		{"window negative", 1e3, 2, 2e6, -time.Second, 1, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, best := doomed(c.rate, c.paths, c.remaining, c.windowLeft, c.factor)
			if got != c.want {
				t.Errorf("doomed(%v,%d,%d,%v,%v) = %v, want %v",
					c.rate, c.paths, c.remaining, c.windowLeft, c.factor, got, c.want)
			}
			if got && best <= 0 {
				t.Errorf("doomed verdict carried best finish %v", best)
			}
		})
	}
	// Determinism: the same inputs give the same verdict every time.
	for i := 0; i < 100; i++ {
		if got, _ := doomed(1e5, 2, 2e6, time.Second, 1); !got {
			t.Fatal("doom verdict flapped across identical evaluations")
		}
	}
}

func TestFitLevelDeterministic(t *testing.T) {
	v := miniVideo() // 300 ms chunks, ladder 0.4 / 0.8 / 1.6 Mbps
	window := 200 * time.Millisecond
	size := func(l int) float64 { return float64(v.ChunkSize(3, l)) }

	// Rate that fits exactly level 1 in the window.
	rate1 := size(1) / window.Seconds()
	if got := fitLevel(v, nil, 3, v.HighestLevel(), rate1, window); got != 1 {
		t.Errorf("fitLevel at level-1 budget = %d, want 1", got)
	}
	// Huge budget: capped by maxLevel, not the ladder top.
	if got := fitLevel(v, nil, 3, 1, 1e9, window); got != 1 {
		t.Errorf("fitLevel respects maxLevel: got %d, want 1", got)
	}
	// Budget below even the lowest rung.
	tiny := size(0) / window.Seconds() * 0.5
	if got := fitLevel(v, nil, 3, v.HighestLevel(), tiny, window); got != -1 {
		t.Errorf("fitLevel with hopeless budget = %d, want -1", got)
	}
	// Degenerate inputs never fit.
	if got := fitLevel(v, nil, 3, 2, 0, window); got != -1 {
		t.Errorf("fitLevel with zero rate = %d, want -1", got)
	}
	if got := fitLevel(v, nil, 3, 2, 1e6, 0); got != -1 {
		t.Errorf("fitLevel with expired window = %d, want -1", got)
	}
	// Deterministic: repeated evaluation of the same frozen inputs.
	want := fitLevel(v, nil, 3, v.HighestLevel(), rate1, window)
	for i := 0; i < 100; i++ {
		if got := fitLevel(v, nil, 3, v.HighestLevel(), rate1, window); got != want {
			t.Fatal("fitLevel flapped across identical evaluations")
		}
	}
	// Authoritative manifest sizes override the generator.
	sizes := make([][]int64, len(v.Levels))
	for l := range sizes {
		sizes[l] = make([]int64, v.NumChunks)
		for c := range sizes[l] {
			sizes[l][c] = 1 << 30 // nothing fits...
		}
	}
	sizes[0][3] = 100 // ...except a tiny level 0 at chunk 3
	if got := fitLevel(v, sizes, 3, v.HighestLevel(), 1e4, window); got != 0 {
		t.Errorf("fitLevel with manifest sizes = %d, want 0", got)
	}
}

// TestAbortOnMidChunkCapacityDrop is the headline chaos test: the shaper
// collapses both paths' capacity mid-chunk, the doom monitor catches the
// decaying estimate before the deadline, and the abort surfaces as the
// typed outcome without spending any fault machinery — no breaker fuel,
// no requeue budget, paths still up — and the follow-up fetch completes
// verified on the restored connections.
func TestAbortOnMidChunkCapacityDrop(t *testing.T) {
	ps, ss, f := faultRig(t, 8, 8, nil)
	f.Abort = AbortPolicy{Enabled: true}

	// Halve-and-halve-again both paths 150 ms into the transfer: 16 Mbps
	// aggregate becomes 2 Mbps against a ~2 MB top-rung chunk.
	drop := time.AfterFunc(150*time.Millisecond, func() {
		ps.SetRateMbps(1)
		ss.SetRateMbps(1)
	})
	defer drop.Stop()

	res, err := f.FetchChunk(0, 4, 2500*time.Millisecond)
	if !errors.Is(err, ErrChunkDoomed) {
		t.Fatalf("err = %v, want ErrChunkDoomed", err)
	}
	if !res.AbortedDoomed {
		t.Error("result not flagged AbortedDoomed")
	}
	if got := res.PrimaryBytes + res.SecondaryBytes; got >= res.Size {
		t.Errorf("aborted chunk delivered %d of %d bytes — nothing was saved", got, res.Size)
	}
	if res.Requeued != 0 {
		t.Errorf("abort spent %d requeue budget", res.Requeued)
	}
	st := f.AbortStats()
	if st.Aborts != 1 {
		t.Errorf("AbortStats.Aborts = %d, want 1", st.Aborts)
	}
	if got := res.PrimaryBytes + res.SecondaryBytes; st.WastedBytes != got {
		t.Errorf("AbortStats.WastedBytes = %d, want the %d partial bytes", st.WastedBytes, got)
	}
	// An abort is not a fault: breakers untouched, both paths alive.
	for _, p := range f.PathStats() {
		if p.State != PathUp {
			t.Errorf("path %s is %v after an abort", p.Name, p.State)
		}
		for _, o := range p.Origins {
			if o.Trips != 0 {
				t.Errorf("path %s origin %s tripped %d times from an abort", p.Name, o.Addr, o.Trips)
			}
		}
	}

	// Capacity returns; the downgraded refetch must complete verified on
	// the restored connections — the ledger and sockets survived the cut.
	ps.SetRateMbps(16)
	ss.SetRateMbps(16)
	res2, err := f.FetchChunk(0, 0, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res2)
	if res2.AbortedDoomed {
		t.Error("healthy refetch flagged AbortedDoomed")
	}
}

// TestAbortDisabledRidesOut pins the pre-abort contract: with the policy
// off, a mid-chunk capacity collapse is ridden to completion — the chunk
// arrives late but whole, and no abort is recorded.
func TestAbortDisabledRidesOut(t *testing.T) {
	ps, ss, f := faultRig(t, 8, 8, nil)

	drop := time.AfterFunc(100*time.Millisecond, func() {
		ps.SetRateMbps(1)
		ss.SetRateMbps(1)
	})
	defer drop.Stop()

	res, err := f.FetchChunk(0, 2, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if res.AbortedDoomed {
		t.Error("abort fired with the policy disabled")
	}
	if res.MissedBy == 0 {
		t.Error("collapse so mild the deadline was met — test shapes are off")
	}
	if st := f.AbortStats(); st.Aborts != 0 || st.WastedBytes != 0 {
		t.Errorf("abort counters moved while disabled: %+v", st)
	}
}

// pinnedABR always selects one ladder index, isolating the downgrade
// loop from rate-adaptation behaviour.
type pinnedABR struct{ level int }

func (p pinnedABR) Name() string                                   { return "pinned" }
func (p pinnedABR) SelectLevel(dash.PlayerState) int               { return p.level }
func (p pinnedABR) OnChunkDone(dash.PlayerState, dash.ChunkResult) {}

// TestStreamDowngradeOnDoomedChunks drives the full cross-layer loop: a
// link too slow for the pinned top rendition dooms every steady-state
// chunk, the Streamer downgrades to a rendition that fits, and the
// session still completes with every byte verified. Each abort must pair
// with exactly one downgrade, and the startup chunk (synthetic minimal
// deadline) must never abort.
func TestStreamDowngradeOnDoomedChunks(t *testing.T) {
	_, _, f := streamRig(t, 0.4, 0.4)
	f.Retry = fastRetry()
	f.SegmentSize = 8 * 1024 // fine-grained samples so the estimate is live
	f.Abort = AbortPolicy{Enabled: true}

	// Drain the shapers' token-bucket bursts and warm the predictor to
	// the true (slow) service rate with off-stream fetches, so the
	// streamed chunks face the steady-state link from the first byte.
	for _, c := range []int{10, 11} {
		if _, err := f.FetchChunk(c, 2, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	st := &Streamer{Fetcher: f, ABR: pinnedABR{level: 2}}
	res, err := st.Stream(6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllVerified {
		t.Error("downgraded session not fully verified")
	}
	if res.Chunks != 6 {
		t.Errorf("played %d chunks, want 6", res.Chunks)
	}
	if res.Aborts == 0 {
		t.Error("no chunk doomed on a link 4x too slow for the pinned rendition")
	}
	if res.Downgrades != res.Aborts {
		t.Errorf("downgrades %d != aborts %d — every abort must downgrade exactly once",
			res.Downgrades, res.Aborts)
	}
	if res.AvgLevel >= 2 {
		t.Errorf("avg level %.2f did not move below the pinned rendition", res.AvgLevel)
	}
	if res.LostChunks != 0 {
		t.Errorf("%d chunks lost — downgrade must deliver, not drop", res.LostChunks)
	}
	if st := f.AbortStats(); int(st.Aborts) != res.Aborts {
		t.Errorf("fetcher counted %d aborts, session %d", st.Aborts, res.Aborts)
	}
}

// TestAbortJournalAndTimeline drives an instrumented doomed session and
// checks the decision trail end to end: the journal carries the
// chunk.abort event (with the numbers that drove the verdict) and the
// stream.downgrade that answered it, and the analyze-side timeline
// renders both as readable lines under the owning chunk.
func TestAbortJournalAndTimeline(t *testing.T) {
	_, _, f := streamRig(t, 0.4, 0.4)
	f.Retry = fastRetry()
	f.SegmentSize = 8 * 1024
	f.Abort = AbortPolicy{Enabled: true}
	tel := obs.New()

	st := &Streamer{Fetcher: f, ABR: pinnedABR{level: 2}}
	st.Instrument(tel)
	for _, c := range []int{10, 11} { // drain shaper bursts, warm predictor
		if _, err := f.FetchChunk(c, 2, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.Stream(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Aborts == 0 {
		t.Fatal("session produced no aborts to journal")
	}

	var abortEv, downEv bool
	for _, e := range tel.Journal.Events() {
		switch e.Type {
		case "chunk.abort":
			abortEv = true
			if e.Chunk < 0 || e.Level <= 0 {
				t.Errorf("chunk.abort missing coordinates: chunk=%d level=%d", e.Chunk, e.Level)
			}
			if e.Num["rate_bps"] <= 0 || e.Num["paths"] <= 0 ||
				e.Num["remaining_bytes"] <= 0 || e.Num["best_finish_s"] <= e.Num["window_s"] {
				t.Errorf("chunk.abort payload does not justify the verdict: %+v", e.Num)
			}
		case "stream.downgrade":
			downEv = true
			if e.Num["to_level"] >= float64(e.Level) {
				t.Errorf("downgrade went up: level %d -> %.0f", e.Level, e.Num["to_level"])
			}
		}
	}
	if !abortEv || !downEv {
		t.Fatalf("journal missing events: chunk.abort=%v stream.downgrade=%v", abortEv, downEv)
	}

	var sb strings.Builder
	obs.RenderTimeline(&sb, tel.Journal.Events())
	out := sb.String()
	for _, want := range []string{"ABORT doomed", "DOWNGRADE level"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}
