package netmp

import (
	"strconv"
	"sync"
)

// Buffer pooling for the per-segment hot path. Every range request on
// the client side reads its body in 16 KiB blocks, and every origin
// response on the server side generates its body in the same blocks;
// at swarm scale those per-request allocations dominate the heap churn
// (thousands of sessions × segments × retries). The pools below make
// the steady-state per-chunk path allocation-free, mirroring the core
// scheduler's zero-alloc evaluate.
//
// Ownership contract (DESIGN.md §16): AcquireSegBuf transfers exclusive
// ownership of the returned buffer to the caller. The caller must stop
// touching the buffer the moment it calls ReleaseSegBuf — the buffer
// may be handed to another goroutine immediately. Never release a
// buffer whose bytes are still referenced (e.g. a slice of it stored in
// a cache); buffers that escape into long-lived structures must simply
// not be released, and the pool refuses foreign sizes so a resized
// buffer quietly falls out of circulation instead of poisoning it.

// segBufBlock is the block granularity of the segment read/write loops:
// requestRange reads bodies and the origin server generates them in
// blocks of this size.
const segBufBlock = 16 * 1024

var segBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, segBufBlock)
		return &b
	},
}

// AcquireSegBuf returns a 16 KiB scratch buffer for segment body I/O.
// The buffer's contents are arbitrary. Release it with ReleaseSegBuf
// once no live reference to its bytes remains. Exported so the perf
// suite can benchmark the exact pooled composition the fetcher runs.
func AcquireSegBuf() *[]byte {
	return segBufPool.Get().(*[]byte)
}

// ReleaseSegBuf returns a buffer obtained from AcquireSegBuf to the
// pool. Buffers whose capacity no longer matches the canonical block
// size are dropped rather than recycled. Nil is a no-op.
func ReleaseSegBuf(b *[]byte) {
	if b == nil || cap(*b) != segBufBlock {
		return
	}
	*b = (*b)[:segBufBlock]
	segBufPool.Put(b)
}

// reqLinePool recycles the small scratch slices the request-line
// renderer appends into — one Acquire/Release pair per range request.
var reqLinePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 160)
		return &b
	},
}

func acquireReqLine() *[]byte  { return reqLinePool.Get().(*[]byte) }
func releaseReqLine(b *[]byte) { reqLinePool.Put(b) }

// AppendRangeRequest appends the HTTP/1.1 range-request line for chunk
// (index, level lvlID) bytes [from, to] to dst and returns the extended
// slice — the allocation-free equivalent of
//
//	fmt.Sprintf("GET /seg-l%d-c%04d.m4s HTTP/1.1\r\nHost: x\r\nRange: bytes=%d-%d\r\n\r\n", ...)
//
// index must be non-negative (chunk indices always are). Exported so
// the perf suite can benchmark the rendered hot path byte-for-byte.
func AppendRangeRequest(dst []byte, lvlID, index int, from, to int64) []byte {
	dst = append(dst, "GET /seg-l"...)
	dst = strconv.AppendInt(dst, int64(lvlID), 10)
	dst = append(dst, "-c"...)
	dst = appendZeroPad(dst, int64(index), 4)
	dst = append(dst, ".m4s HTTP/1.1\r\nHost: x\r\nRange: bytes="...)
	dst = strconv.AppendInt(dst, from, 10)
	dst = append(dst, '-')
	dst = strconv.AppendInt(dst, to, 10)
	dst = append(dst, "\r\n\r\n"...)
	return dst
}

// appendZeroPad appends the non-negative integer v left-padded with
// zeros to at least width digits (the %0*d contract for v >= 0).
func appendZeroPad(dst []byte, v int64, width int) []byte {
	digits := 1
	for x := v; x >= 10; x /= 10 {
		digits++
	}
	for ; digits < width; digits++ {
		dst = append(dst, '0')
	}
	return strconv.AppendInt(dst, v, 10)
}
