package netmp

import (
	"sync"
	"sync/atomic"
	"time"
)

// TimerWheel is a hashed timer wheel: a fixed ring of slots, each
// holding the timers whose expiry lands on that coarse tick. At swarm
// scale it replaces per-session runtime timers (time.AfterFunc kill
// timers, per-hedge time.NewTimer, per-chunk doom tickers) with one
// shared structure — arming a timer is an append under a slot mutex,
// cancelling it is a slot-local removal, and one driver goroutine
// advances the whole population — so 5k sessions stop allocating and
// tearing down runtime timers on every chunk.
//
// Expiry decisions are driven by the injectable Clock: the driver
// ticks on wall time but every "is this due" comparison reads
// clk.now(). Under a frozen clock nothing ever fires (armed timers
// just sit in their slots), which is exactly the contract the perf
// harness needs — frozen-clock runs measure the hot path without timer
// interference. Tests advance the wheel deterministically with
// advanceTo.
//
// Firing granularity is the tick (default 5ms): a timer fires on the
// first tick at or after its deadline, so deadlines within one tick of
// each other may fire on the same advance — in deadline order across
// ticks, unordered within one. That is the documented coarseness
// trade-off; hedge delays and session timeouts are tens of
// milliseconds and up.
type TimerWheel struct {
	clk   Clock
	tick  time.Duration
	epoch time.Time
	slots []wheelSlot

	mu     sync.Mutex // guards cursor during advance
	cursor int64      // last fully processed tick index

	stopOnce sync.Once
	stopCh   chan struct{}
}

// wheelSlots is the default slot count — a power of two so tick
// indices map with a mask. 512 slots × 5ms tick = a 2.56s wraparound
// horizon; timers beyond it simply ride the ring for extra laps.
const (
	wheelSlots       = 512
	defaultWheelTick = 5 * time.Millisecond
)

type wheelSlot struct {
	mu     sync.Mutex
	timers []*WheelTimer
}

// WheelTimer is one armed timer. Stop cancels it; a timer fires at
// most once.
type WheelTimer struct {
	w     *TimerWheel
	rt    *time.Timer // runtime fallback when armed on a nil wheel
	when  time.Time
	fn    func()
	slot  int32
	state atomic.Int32 // 0 armed, 1 fired, 2 stopped
	// inline timers run fn on the driver goroutine (must not block);
	// others get their own goroutine, matching time.AfterFunc.
	inline bool
}

// NewTimerWheel returns a running wheel driven by clk (nil = wall
// clock) at the given tick (0 = 5ms). Close it when done to stop the
// driver goroutine.
func NewTimerWheel(clk Clock, tick time.Duration) *TimerWheel {
	if tick <= 0 {
		tick = defaultWheelTick
	}
	w := &TimerWheel{
		clk:    clk,
		tick:   tick,
		epoch:  clk.now(),
		slots:  make([]wheelSlot, wheelSlots),
		stopCh: make(chan struct{}),
	}
	go w.drive()
	return w
}

// Close stops the driver goroutine. Armed timers never fire after
// Close; their goroutines are already accounted for (none is running).
func (w *TimerWheel) Close() {
	w.stopOnce.Do(func() { close(w.stopCh) })
}

// drive ticks the wheel on wall time, evaluating expiry against the
// injected clock. The real ticker is only the heartbeat — a frozen
// injected clock keeps cursor at zero and nothing fires.
func (w *TimerWheel) drive() {
	tk := time.NewTicker(w.tick)
	defer tk.Stop()
	for {
		select {
		case <-w.stopCh:
			return
		case <-tk.C:
			w.advanceTo(w.clk.now())
		}
	}
}

// AfterFunc arms fn to run once d from now, in its own goroutine
// (time.AfterFunc semantics). Nil-safe: a nil wheel falls back to the
// runtime timer, so call sites can wire the wheel optionally.
func (w *TimerWheel) AfterFunc(d time.Duration, fn func()) *WheelTimer {
	return w.afterFunc(d, fn, false)
}

// After arms a channel that closes once d from now — the select-able
// form fetchers use for hedge triggers. The close runs inline on the
// driver (closing a channel never blocks). Cancel with Stop.
func (w *TimerWheel) After(d time.Duration) (<-chan struct{}, *WheelTimer) {
	ch := make(chan struct{})
	t := w.afterFunc(d, func() { close(ch) }, true)
	return ch, t
}

func (w *TimerWheel) afterFunc(d time.Duration, fn func(), inline bool) *WheelTimer {
	if w == nil {
		// Fallback: no wheel wired (single-session CLI) — use the
		// runtime timer; Stop proxies to it.
		return &WheelTimer{rt: time.AfterFunc(d, fn)}
	}
	if d < 0 {
		d = 0
	}
	t := &WheelTimer{w: w, when: w.clk.now().Add(d), fn: fn, inline: inline}
	w.insert(t)
	return t
}

// insert places t on the slot of its expiry tick. A deadline on or
// before the cursor's tick lands one tick ahead so the next advance
// catches it.
func (w *TimerWheel) insert(t *WheelTimer) {
	idx := int64(t.when.Sub(w.epoch) / w.tick)
	w.mu.Lock()
	if idx <= w.cursor {
		idx = w.cursor + 1
	}
	w.mu.Unlock()
	slot := &w.slots[idx&(wheelSlots-1)]
	t.slot = int32(idx & (wheelSlots - 1))
	slot.mu.Lock()
	slot.timers = append(slot.timers, t)
	slot.mu.Unlock()
}

// Stop cancels the timer, reporting whether it won the race against
// firing (false = the callback ran or is running). Nil-safe.
func (t *WheelTimer) Stop() bool {
	if t == nil {
		return false
	}
	if t.w == nil {
		// Runtime-backed fallback timer.
		if t.rt != nil {
			return t.rt.Stop()
		}
		return false
	}
	if !t.state.CompareAndSwap(0, 2) {
		return false
	}
	// Best-effort eager removal so cancelled timers don't pile up in
	// the slot until its tick comes around.
	slot := &t.w.slots[t.slot]
	slot.mu.Lock()
	for i, st := range slot.timers {
		if st == t {
			last := len(slot.timers) - 1
			slot.timers[i] = slot.timers[last]
			slot.timers[last] = nil
			slot.timers = slot.timers[:last]
			break
		}
	}
	slot.mu.Unlock()
	return true
}

// advanceTo processes every tick from the cursor up to now, firing due
// timers. The driver calls it each heartbeat; deterministic tests call
// it directly with a manual clock's reading.
func (w *TimerWheel) advanceTo(now time.Time) {
	target := int64(now.Sub(w.epoch) / w.tick)
	w.mu.Lock()
	cur := w.cursor
	if target <= cur {
		w.mu.Unlock()
		return
	}
	// A stall longer than one wraparound still only needs one pass
	// over the ring: clamp the walk, then jump the cursor to target.
	first := cur + 1
	if target-first >= wheelSlots {
		first = target - wheelSlots + 1
	}
	w.cursor = target
	w.mu.Unlock()

	var due []*WheelTimer
	for c := first; c <= target; c++ {
		slot := &w.slots[c&(wheelSlots-1)]
		slot.mu.Lock()
		kept := slot.timers[:0]
		for _, t := range slot.timers {
			if !t.when.After(now) {
				due = append(due, t)
			} else {
				kept = append(kept, t)
			}
		}
		for i := len(kept); i < len(slot.timers); i++ {
			slot.timers[i] = nil
		}
		slot.timers = kept
		slot.mu.Unlock()
		// Fire outside the slot lock: an inline callback may re-arm
		// into this very slot.
		for _, t := range due {
			if t.state.CompareAndSwap(0, 1) {
				if t.inline {
					t.fn()
				} else {
					go t.fn()
				}
			}
		}
		due = due[:0]
	}
}

// WheelTicker delivers a tick roughly every interval via C, driven by
// the wheel — the ticker analogue monitorDoom selects on. Sends are
// non-blocking into a 1-buffered channel, so a slow receiver coalesces
// ticks instead of backing up the driver.
type WheelTicker struct {
	C        chan time.Time
	w        *TimerWheel
	interval time.Duration
	mu       sync.Mutex
	cur      *WheelTimer
	stopped  bool
}

// Ticker returns a running WheelTicker. Nil-safe on the wheel only at
// call sites that check; callers without a wheel should use
// time.NewTicker instead.
func (w *TimerWheel) Ticker(interval time.Duration) *WheelTicker {
	if interval <= 0 {
		interval = w.tick
	}
	tk := &WheelTicker{C: make(chan time.Time, 1), w: w, interval: interval}
	tk.arm()
	return tk
}

func (tk *WheelTicker) arm() {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	if tk.stopped {
		return
	}
	tk.cur = tk.w.afterFunc(tk.interval, tk.fire, true)
}

func (tk *WheelTicker) fire() {
	select {
	case tk.C <- tk.w.clk.now():
	default:
	}
	tk.arm()
}

// Stop ends the ticker; no tick is delivered after Stop returns.
func (tk *WheelTicker) Stop() {
	tk.mu.Lock()
	tk.stopped = true
	cur := tk.cur
	tk.mu.Unlock()
	if cur != nil {
		cur.Stop()
	}
}
