package netmp

// Client-side cache awareness. An edge tier stamps every 206 with
// "X-MPDash-Cache: hit|miss"; the fetcher folds those observations into
// two decisions:
//
//   - Engage damping: a cache-hot chunk's service time is dominated by
//     the edge's local store, not the origin path, so the Algorithm 1
//     pressure test scales the remaining-byte demand down by the chunk's
//     hit probability before comparing it against the primary's measured
//     rate — the costly secondary stays parked for chunks the edge will
//     serve fast.
//   - Hedge suppression: a hedge duplicates a request whose pace
//     projects a miss, but a cache-hot chunk's slow first bytes are the
//     edge's singleflight fill, which a duplicate request would only
//     join, not beat. Chunks at or above the hot threshold are not
//     hedged.
//
// Per-chunk knowledge is exact once the first segment's response headers
// arrive (known hit → full damping, known miss → none); before that the
// prior is an EWMA of the session's past observations — a recency
// estimate of how cache-hot this client's content is. A session that
// never sees the header (direct-to-origin) keeps probability 0 and both
// decisions are untouched.

import (
	"sync"

	"mpdash/internal/obs"
)

// CacheHintPolicy bounds the fetcher's use of edge cache-hint headers.
// The zero value selects the defaults noted on each field; with no edge
// in front (no header ever seen) the mechanism is inert regardless.
type CacheHintPolicy struct {
	// Disabled ignores X-MPDash-Cache headers entirely.
	Disabled bool
	// Damp is the maximum fraction by which a certain hit shrinks the
	// engage test's remaining-byte demand. Default 0.7.
	Damp float64
	// HotThreshold is the hit probability at or above which hedging is
	// suppressed for a chunk. Default 0.75.
	HotThreshold float64
	// Alpha is the EWMA weight of each new hit/miss observation in the
	// session prior. Default 0.3.
	Alpha float64
}

func (p CacheHintPolicy) withDefaults() CacheHintPolicy {
	if p.Damp <= 0 || p.Damp > 1 {
		p.Damp = 0.7
	}
	if p.HotThreshold <= 0 || p.HotThreshold > 1 {
		p.HotThreshold = 0.75
	}
	if p.Alpha <= 0 || p.Alpha > 1 {
		p.Alpha = 0.3
	}
	return p
}

// Per-chunk hint states.
const (
	hintUnknown = iota
	hintHit
	hintMiss
)

// cacheHintState is the fetcher's hint memory: the in-flight chunk's
// known state plus the session-wide EWMA prior. Safe for concurrent use
// (both path workers observe headers).
type cacheHintState struct {
	mu     sync.Mutex
	chunk  int // chunk index the per-chunk state describes
	state  int
	prior  float64
	seeded bool
}

// beginChunk resets the per-chunk state for a new fetch.
func (h *cacheHintState) beginChunk(index int) {
	h.mu.Lock()
	h.chunk = index
	h.state = hintUnknown
	h.mu.Unlock()
}

// observe folds one X-MPDash-Cache response header in. It returns true
// when this is the chunk's first observation (the journal-worthy one)
// along with the updated prior.
func (h *cacheHintState) observe(index int, hit bool, alpha float64) (first bool, prior float64) {
	x := 0.0
	if hit {
		x = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.seeded {
		h.prior, h.seeded = x, true
	} else {
		h.prior += alpha * (x - h.prior)
	}
	if h.chunk == index && h.state == hintUnknown {
		if hit {
			h.state = hintHit
		} else {
			h.state = hintMiss
		}
		return true, h.prior
	}
	return false, h.prior
}

// hitProb returns the chunk's current hit probability: exact once the
// chunk's own state is known, the session prior before that, and 0 for
// a session that has never seen a hint.
func (h *cacheHintState) hitProb(index int) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.chunk == index {
		switch h.state {
		case hintHit:
			return 1
		case hintMiss:
			return 0
		}
	}
	if !h.seeded {
		return 0
	}
	return h.prior
}

// cacheHitProb returns index's hit probability under the hint policy
// (0 with hints disabled — both decisions then fall through unchanged).
func (f *Fetcher) cacheHitProb(index int) float64 {
	if f.CacheHint.Disabled {
		return 0
	}
	return f.chint.hitProb(index)
}

// cacheHot reports whether index is hot enough to suppress hedging.
func (f *Fetcher) cacheHot(index int) bool {
	if f.CacheHint.Disabled {
		return false
	}
	return f.chint.hitProb(index) >= f.CacheHint.withDefaults().HotThreshold
}

// noteCacheHeader folds one response header observation in, journaling
// the chunk's first one.
func (f *Fetcher) noteCacheHeader(pc *pathConn, index, level int, hit bool) {
	first, prior := f.chint.observe(index, hit, f.CacheHint.withDefaults().Alpha)
	if !first {
		return
	}
	fo := f.obsHandles()
	if fo == nil || fo.sink == nil {
		return
	}
	state := "miss"
	if hit {
		state = "hit"
	}
	fo.sink.Emit(obs.NewEvent("cache.hint").WithPath(pc.name).
		WithChunk(index, level).
		WithStr("state", state).
		WithNum("prior", prior))
}
