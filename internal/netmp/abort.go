package netmp

// Doomed-chunk abort: the cross-layer graceful-degradation mechanism.
// While a chunk is in flight, a monitor compares the live Holt-Winters
// service-rate estimate (the same predictor that paces hedges) against
// the remaining α·D window under the *best case* — every live path
// engaged and delivering at the predicted rate. When even that cannot
// land the chunk before its deadline, the transfer is doomed: riding it
// to completion buys bytes that cannot become on-time video. The monitor
// cancels the in-flight requests through the hedge machinery's
// loser-cancel path (connection closed mid-read, no fault charged, no
// breaker fuel, no requeue budget spent), FetchChunk surfaces the typed
// ErrChunkDoomed outcome, and the Streamer re-requests the chunk at the
// highest rendition the predictor says still fits the remaining window —
// rebuffering only when no rendition fits.
//
// An abort is a scheduling decision, not a fault: the paths stay
// healthy, their breakers untouched, and the connections are restored
// (redialled) before FetchChunk returns so the downgraded refetch starts
// on live sockets.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/obs"
)

// ErrChunkDoomed reports a chunk abandoned mid-flight because even
// best-case both-path delivery at the predicted rate could not meet the
// deadline. The Streamer responds by downgrading: re-requesting the
// chunk at the highest rendition that still fits the remaining window.
var ErrChunkDoomed = errors.New("netmp: chunk doomed (predicted deadline miss even with all paths engaged)")

// AbortPolicy bounds doomed-chunk aborts. The zero value selects the
// defaults noted on each field; the zero value of Enabled leaves the
// mechanism off, preserving the pre-abort ride-it-out behaviour.
type AbortPolicy struct {
	// Enabled turns doomed-chunk abort on.
	Enabled bool
	// Factor scales the doom test: the chunk is doomed when the
	// best-case predicted finish time exceeds Factor × the remaining
	// deadline window. Values above 1 abort later (more conservative),
	// below 1 abort earlier. Default 1.
	Factor float64
	// MinProgress is the fraction of the α·D window that must elapse
	// before the first doom evaluation, so a noisy early estimate cannot
	// abort a chunk that has barely started. Default 0.25. A congestion
	// board pre-arm (a neighbor session observed a capacity drop) halves
	// this gate: the congestion is already confirmed.
	MinProgress float64
}

func (p AbortPolicy) withDefaults() AbortPolicy {
	if p.Factor <= 0 {
		p.Factor = 1
	}
	if p.MinProgress <= 0 {
		p.MinProgress = 0.25
	}
	return p
}

// abortState carries the fetcher-wide abort counters, read by the
// scrape-time collectors and the per-fetch deltas.
type abortState struct {
	aborts      atomic.Int64
	wastedBytes atomic.Int64
}

// doomed is the Algorithm-1-shaped abort test: given the predicted
// per-path service rate (bytes/s), the number of live paths, the bytes
// not yet delivered, and the remaining deadline window, it reports
// whether even best-case all-path engagement misses the deadline, along
// with the predicted best-case finish time that drove the decision.
// Pure and clock-free so the decision is unit-testable deterministically.
func doomed(rate float64, paths int, remaining int64, windowLeft time.Duration, factor float64) (bool, time.Duration) {
	if rate <= 0 || paths <= 0 || remaining <= 0 {
		return false, 0
	}
	if windowLeft <= 0 {
		// The deadline has already passed; aborting now cannot help the
		// current chunk (the miss is a fact), and the remaining bytes
		// arrive fastest by riding the established transfer.
		return false, 0
	}
	best := time.Duration(float64(remaining) / (rate * float64(paths)) * float64(time.Second))
	return float64(best) > factor*float64(windowLeft), best
}

// livePaths counts the fetcher's paths still able to carry traffic.
func (f *Fetcher) livePaths() int {
	n := 0
	if !f.primary.isDown() {
		n++
	}
	if !f.secondary.isDown() {
		n++
	}
	return n
}

// monitorDoom runs the abort controller for one chunk: every
// controllerTick it re-evaluates the doom test and, on the first hit,
// marks the ledger doomed and cancels both paths' in-flight transfers
// through the hedge loser-cancel path. It returns when stop closes or
// the doom fires. size is the chunk's total byte count; dlAt the α·D
// deadline instant.
func (f *Fetcher) monitorDoom(st *fetchState, ap AbortPolicy, size int64, segSize int64, start, dlAt time.Time, index, level int, stop <-chan struct{}) {
	window := dlAt.Sub(start)
	minWait := time.Duration(ap.MinProgress * float64(window))
	// One runtime ticker per in-flight chunk does not scale to a 5k-
	// session population; ride the shared wheel when one is wired.
	var tickC <-chan time.Time
	var stopTick func()
	if f.wheel != nil {
		wt := f.wheel.Ticker(controllerTick)
		tickC, stopTick = wt.C, wt.Stop
	} else {
		tk := time.NewTicker(controllerTick)
		tickC, stopTick = tk.C, tk.Stop
	}
	defer stopTick()
	for {
		select {
		case <-stop:
			return
		case <-tickC:
		}
		if st.finished() || st.aborted() {
			return
		}
		now := f.clk.now()
		preArmed := f.boardPreArmed()
		gate := minWait
		if preArmed {
			gate = minWait / 2 // a neighbor already confirmed the congestion
		}
		if now.Sub(start) < gate {
			continue
		}
		rate := f.bestRateEstimate(preArmed)
		if rate <= 0 {
			continue
		}
		remaining := size - int64(st.doneSegments())*segSize
		if remaining < 0 {
			remaining = 0
		}
		paths := f.livePaths()
		if isDoomed, best := doomed(rate, paths, remaining, dlAt.Sub(now), ap.Factor); isDoomed {
			st.markDoomed()
			f.abort.aborts.Add(1)
			f.emitAbort(index, level, rate, paths, remaining, dlAt.Sub(now), best, preArmed)
			if ctr := f.curTrace(); ctr != nil {
				ctr.Event(obs.CatAbort, "abort")
				ctr.MarkBad(obs.CatAbort)
			}
			// Cut the in-flight transfers: the loser-cancel path closes
			// each connection mid-read and flags the supervised loop so
			// the resulting I/O error is a cancellation, not a fault.
			if !f.primary.isDown() {
				f.primary.cancelForHedge()
			}
			if !f.secondary.isDown() {
				f.secondary.cancelForHedge()
			}
			return
		}
	}
}

// bestRateEstimate returns the per-path service-rate forecast (bytes/s)
// the doom test runs on: the local Holt-Winters prediction, clamped by
// the congestion board's population estimate when a neighbor has
// pre-armed us — their freshly-observed post-drop rate beats our stale
// pre-drop one.
func (f *Fetcher) bestRateEstimate(preArmed bool) float64 {
	rate := f.hedge.predictedRate()
	if preArmed {
		if br, ok := f.boardRate(); ok && (rate <= 0 || br < rate) {
			rate = br
		}
	}
	return rate
}

// emitAbort journals the abort decision with the numbers that drove it
// and charges the wasted-byte accounting.
func (f *Fetcher) emitAbort(index, level int, rate float64, paths int, remaining int64, windowLeft, best time.Duration, preArmed bool) {
	fo := f.obsHandles()
	if fo == nil {
		return
	}
	fo.noteAbort()
	if fo.sink == nil {
		return
	}
	e := obs.NewEvent("chunk.abort").WithChunk(index, level).
		WithNum("rate_bps", rate*8).
		WithNum("paths", float64(paths)).
		WithNum("remaining_bytes", float64(remaining)).
		WithNum("window_s", windowLeft.Seconds()).
		WithNum("best_finish_s", best.Seconds())
	if preArmed {
		e = e.WithStr("prearmed", "true")
	}
	fo.sink.Emit(e)
}

// AbortStats snapshots the fetcher's cumulative abort counters.
type AbortStats struct {
	// Aborts counts chunks abandoned mid-flight as doomed.
	Aborts int64
	// WastedBytes counts payload discarded by those aborts.
	WastedBytes int64
}

// AbortStats returns the fetcher's cumulative doomed-chunk counters.
func (f *Fetcher) AbortStats() AbortStats {
	return AbortStats{Aborts: f.abort.aborts.Load(), WastedBytes: f.abort.wastedBytes.Load()}
}

// PredictedRate returns the fetcher's live per-path service-rate
// forecast in bytes/s (0 before any sample), the number the Streamer's
// downgrade chooser feeds into fitLevel.
func (f *Fetcher) PredictedRate() float64 { return f.hedge.predictedRate() }

// fitLevel picks the highest rendition at or below maxLevel whose chunk
// can be delivered inside windowLeft at the given best-case aggregate
// rate (bytes/s across all engaged paths). It returns -1 when not even
// the lowest rendition fits — the caller is going to rebuffer and should
// fetch the lowest level anyway. Pure: deterministic under a frozen
// clock given the same inputs.
func fitLevel(video *dash.Video, sizes [][]int64, index, maxLevel int, rate float64, windowLeft time.Duration) int {
	if rate <= 0 || windowLeft <= 0 {
		return -1
	}
	budget := rate * windowLeft.Seconds()
	for l := maxLevel; l >= 0; l-- {
		size := video.ChunkSize(index, l)
		if sizes != nil {
			size = sizes[l][index]
		}
		if float64(size) <= budget {
			return l
		}
	}
	return -1
}

// restoreAfterAbort brings the paths back to service after an abort cut
// their connections: each live path is redialled (best effort — a
// failure marks the path down exactly as any dial failure would) and any
// stale cancellation flag is consumed so the next fetch's first error is
// classified honestly.
func (f *Fetcher) restoreAfterAbort(pol RetryPolicy) {
	for _, pc := range []*pathConn{f.primary, f.secondary} {
		if pc.isDown() {
			continue
		}
		pc.takeCancelled()
		pc.redial(pol) //nolint:errcheck // best effort; a failure marks the path down
	}
}

// doomError wraps ErrChunkDoomed with the chunk coordinates.
func doomError(index, level int) error {
	return fmt.Errorf("netmp: chunk %d level %d: %w", index, level, ErrChunkDoomed)
}
