package netmp

// Fault injection: a deterministic, seedable FaultPlan lets a ChunkServer
// misbehave on purpose — connection resets, mid-body stalls, premature
// closes, corrupted payload bytes, and blackout windows — so the path
// supervisor is testable without real radios. Faults apply to chunk
// (range) requests; the manifest bootstrap is left clean.

import (
	"fmt"
	"strings"
	"time"
)

// FaultKind enumerates the injectable per-request faults.
type FaultKind int

const (
	FaultNone FaultKind = iota
	// FaultReset hard-closes (RST) the connection before responding.
	FaultReset
	// FaultStall freezes mid-body for the plan's StallFor.
	FaultStall
	// FaultClose advertises the full Content-Length but closes cleanly
	// after sending roughly half the body (premature EOF).
	FaultClose
	// FaultCorrupt flips a run of payload bytes, detectable by the
	// client's byte-for-byte verification.
	FaultCorrupt
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultReset:
		return "reset"
	case FaultStall:
		return "stall"
	case FaultClose:
		return "premature-close"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Blackout is a wall-clock window, relative to server start, during
// which every chunk request is reset — the real-radio "WiFi blackout".
// Redials still connect (the listener stays up); use
// ChunkServer.Blackhole for permanent path death.
type Blackout struct {
	From, To time.Duration
}

// FaultPlan scripts faults into a ChunkServer. Scripted entries take
// precedence over probability draws; probability draws are made from a
// generator seeded with Seed, so a given plan replays the same fault
// sequence for the same request order.
type FaultPlan struct {
	// Seed seeds the probability generator (0 = 1).
	Seed int64
	// Per-request fault probabilities, evaluated in this order: first
	// match wins.
	ResetProb   float64
	StallProb   float64
	CloseProb   float64
	CorruptProb float64
	// StallFor is the duration of injected stalls (default 2s).
	StallFor time.Duration
	// Script maps a 1-based chunk-request ordinal to a fault, overriding
	// the probabilities for that request.
	Script map[int]FaultKind
	// Blackouts are windows during which every chunk request is reset.
	Blackouts []Blackout
	// Levels restricts faults to requests for these zero-based level
	// indices (nil = every level). Lets a test break the high rungs
	// while the lowest-level lifeline stays clean.
	Levels []int
}

// appliesTo reports whether the plan faults requests for level.
func (p *FaultPlan) appliesTo(level int) bool {
	if len(p.Levels) == 0 {
		return true
	}
	for _, l := range p.Levels {
		if l == level {
			return true
		}
	}
	return false
}

// stallFor returns the plan's stall duration with its default applied.
func (p *FaultPlan) stallFor() time.Duration {
	if p.StallFor <= 0 {
		return 2 * time.Second
	}
	return p.StallFor
}

// FaultStats counts faults a server actually injected.
type FaultStats struct {
	Resets          int64
	Stalls          int64
	PrematureCloses int64
	Corruptions     int64
	BlackoutResets  int64
}

// Total sums every injected fault.
func (fs FaultStats) Total() int64 {
	return fs.Resets + fs.Stalls + fs.PrematureCloses + fs.Corruptions + fs.BlackoutResets
}

func (fs FaultStats) String() string {
	return fmt.Sprintf("resets=%d stalls=%d closes=%d corruptions=%d blackout-resets=%d",
		fs.Resets, fs.Stalls, fs.PrematureCloses, fs.Corruptions, fs.BlackoutResets)
}

// ParseBlackouts parses a comma-separated list of "start:duration"
// windows, e.g. "8s:3s,40s:5s".
func ParseBlackouts(s string) ([]Blackout, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Blackout
	for _, part := range strings.Split(s, ",") {
		at, dur, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("netmp: blackout %q: want start:duration", part)
		}
		from, err := time.ParseDuration(at)
		if err != nil {
			return nil, fmt.Errorf("netmp: blackout start %q: %w", at, err)
		}
		d, err := time.ParseDuration(dur)
		if err != nil {
			return nil, fmt.Errorf("netmp: blackout duration %q: %w", dur, err)
		}
		if from < 0 || d <= 0 {
			return nil, fmt.Errorf("netmp: blackout %q: negative start or non-positive duration", part)
		}
		out = append(out, Blackout{From: from, To: from + d})
	}
	return out, nil
}
