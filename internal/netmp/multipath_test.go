package netmp

import (
	"testing"
	"time"

	"mpdash/internal/dash"
)

// multiRig starts one server per path and a MultiFetcher across them.
// Full-size (Big Buck Bunny) chunks keep the workload well above the
// shaper's burst allowance.
func multiRig(t *testing.T, rates ...float64) (*MultiFetcher, []*ChunkServer) {
	t.Helper()
	v := dash.BigBuckBunny()
	var servers []*ChunkServer
	var addrs []string
	for _, r := range rates {
		s, err := NewChunkServer(v, r)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	m, err := NewMultiFetcher(v, addrs[0], addrs[1:]...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		m.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	return m, servers
}

func TestNewMultiFetcherValidation(t *testing.T) {
	v := dash.BigBuckBunny()
	if _, err := NewMultiFetcher(v, "127.0.0.1:1"); err == nil {
		t.Error("no secondaries accepted")
	}
	if _, err := NewMultiFetcher(v, "127.0.0.1:1", "127.0.0.1:1"); err == nil {
		t.Error("dead primary accepted")
	}
}

func TestMultiFetchLooseDeadlineAllDark(t *testing.T) {
	m, servers := multiRig(t, 16, 16, 16)
	res, err := m.FetchChunk(0, 0, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("verification failed")
	}
	if res.PrimaryBytes+res.SecondaryBytes != res.Size {
		t.Errorf("bytes %d+%d != %d", res.PrimaryBytes, res.SecondaryBytes, res.Size)
	}
	if res.SecondaryBytes != 0 {
		t.Errorf("secondaries carried %d under a loose deadline", res.SecondaryBytes)
	}
	if servers[1].ServedBytes() != 0 || servers[2].ServedBytes() != 0 {
		t.Error("secondary servers served bytes")
	}
}

func TestMultiFetchPressureEngagesCheapFirst(t *testing.T) {
	// Starved primary, modest deadline: the cheap secondary must carry
	// clearly more than the expensive one.
	m, _ := multiRig(t, 2, 12, 12)
	res, err := m.FetchChunk(1, 2, 1200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("verification failed")
	}
	if res.SecondaryBytes == 0 {
		t.Fatal("no secondary engaged under pressure")
	}
	cheap := res.SecondaryBytesByPath[0]
	costly := res.SecondaryBytesByPath[1]
	if cheap < costly {
		t.Errorf("cost order violated: cheap %d < costly %d", cheap, costly)
	}
	if res.PrimaryBytes+res.SecondaryBytes != res.Size {
		t.Errorf("bytes %d+%d != %d", res.PrimaryBytes, res.SecondaryBytes, res.Size)
	}
}
