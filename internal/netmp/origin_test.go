package netmp

// Origin-set tests: ranked failover, failback after recovery, the
// single-origin escape hatch, and end-to-end failover through the
// supervised fetcher when an origin is blackholed mid-fetch.

import (
	"errors"
	"testing"
	"time"

	"mpdash/internal/dash"
)

// tripBreaker drives b open with failures.
func tripBreaker(b *CircuitBreaker) {
	for i := 0; i < b.pol.Window && b.State() != BreakerOpen; i++ {
		b.RecordFailure(errors.New("down"))
	}
}

func TestOriginSetFailoverAndFailback(t *testing.T) {
	pol := BreakerPolicy{Window: 4, MinSamples: 2, TripErrorRate: 0.5, Cooldown: time.Second}
	set, err := NewOriginSet("p", []string{"a:1", "b:2"}, pol)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	for _, o := range set.origins {
		o.breaker.now = func() time.Time { return now }
	}

	if o, ok := set.pick(); !ok || o.addr != "a:1" {
		t.Fatalf("initial pick = %v %v, want a:1", o, ok)
	}
	if set.Failovers() != 0 {
		t.Fatalf("failovers = %d before any trip", set.Failovers())
	}

	// Trip a: pick must fail over to b and count it.
	tripBreaker(set.origins[0].breaker)
	o, ok := set.pick()
	if !ok || o.addr != "b:2" {
		t.Fatalf("pick after trip = %v %v, want b:2", o, ok)
	}
	if set.Failovers() != 1 {
		t.Errorf("failovers = %d, want 1", set.Failovers())
	}
	if set.Current() != "b:2" {
		t.Errorf("current = %s, want b:2", set.Current())
	}

	// While a is open, its half-open probe after cooldown goes back to a
	// (preference order): the probe succeeding closes a and fails back.
	now = now.Add(time.Second)
	o, ok = set.pick()
	if !ok || o.addr != "a:1" {
		t.Fatalf("post-cooldown pick = %v %v, want a:1 (half-open probe)", o, ok)
	}
	o.breaker.RecordSuccess(time.Millisecond)
	if st := set.origins[0].breaker.State(); st != BreakerClosed {
		t.Fatalf("a breaker = %v after probe success", st)
	}
	if set.Failovers() != 2 {
		t.Errorf("failovers = %d, want 2 (failback counts)", set.Failovers())
	}
}

func TestOriginSetSingleOriginForced(t *testing.T) {
	set, err := NewOriginSet("p", []string{"a:1"}, BreakerPolicy{Window: 4, MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	tripBreaker(set.origins[0].breaker)
	// With nowhere to fail over, the sole origin is forced: refusing it
	// would kill the path for faults the retry budgets already bound.
	if o, ok := set.pick(); !ok || o.addr != "a:1" {
		t.Fatalf("single-origin pick = %v %v, want forced a:1", o, ok)
	}
	if set.Failovers() != 0 {
		t.Errorf("failovers = %d on a single-origin set", set.Failovers())
	}
}

func TestOriginSetAllOpenRefuses(t *testing.T) {
	set, err := NewOriginSet("p", []string{"a:1", "b:2"}, BreakerPolicy{Window: 4, MinSamples: 2, Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	tripBreaker(set.origins[0].breaker)
	tripBreaker(set.origins[1].breaker)
	if _, ok := set.pick(); ok {
		t.Fatal("pick succeeded with every breaker open")
	}
	if _, ok := set.backup(); ok {
		t.Fatal("backup offered with every breaker open")
	}
}

func TestOriginSetBackupSkipsCurrent(t *testing.T) {
	set, err := NewOriginSet("p", []string{"a:1", "b:2", "c:3"}, BreakerPolicy{Window: 4, MinSamples: 2, Cooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if o, ok := set.backup(); !ok || o.addr != "b:2" {
		t.Fatalf("backup = %v %v, want b:2 (first healthy non-current)", o, ok)
	}
	tripBreaker(set.origins[1].breaker)
	if o, ok := set.backup(); !ok || o.addr != "c:3" {
		t.Fatalf("backup = %v %v, want c:3 after b tripped", o, ok)
	}
}

// multiOriginRig starts two primary-path origin servers plus a clean
// secondary server, and a fetcher whose primary path ranks the two
// origins [A, B].
func multiOriginRig(t *testing.T, brk BreakerPolicy) (origA, origB *ChunkServer, f *Fetcher) {
	t.Helper()
	video := dash.BigBuckBunny()
	var servers []*ChunkServer
	for i := 0; i < 3; i++ {
		s, err := NewChunkServer(video, 16)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
	}
	f, err := NewFetcherOrigins(video,
		[]string{servers[0].Addr(), servers[1].Addr()},
		[]string{servers[2].Addr()}, brk)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		f.Close()
		for _, s := range servers {
			s.Close()
		}
	})
	return servers[0], servers[1], f
}

func TestFetchFailsOverToBackupOrigin(t *testing.T) {
	// The primary path's preferred origin is blackholed mid-fetch. The
	// breaker trips on the failed redials before the redial budget runs
	// out, the path fails over to the backup origin, and the chunk
	// completes with the path still up.
	brk := BreakerPolicy{Window: 4, MinSamples: 2, TripErrorRate: 0.5, Cooldown: 30 * time.Second}
	origA, origB, f := multiOriginRig(t, brk)
	pol := fastRetry()
	pol.MaxRedials = 10 // the breaker (2 failures) must fail over first
	f.Retry = pol
	f.Hedge.Disabled = true // isolate failover from hedging

	time.AfterFunc(80*time.Millisecond, origA.Blackhole)
	res, err := f.FetchChunk(0, 2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if res.Failovers == 0 {
		t.Error("no failover recorded")
	}
	st := f.PathStats()[0]
	if st.State == PathDown {
		t.Error("primary path down despite a live backup origin")
	}
	if st.Origin != origB.Addr() {
		t.Errorf("primary origin = %s, want backup %s", st.Origin, origB.Addr())
	}
	if len(st.Origins) != 2 || st.Origins[0].Trips == 0 {
		t.Errorf("origin snapshots missing the trip: %+v", st.Origins)
	}

	// Subsequent chunks flow through the backup from the start.
	res2, err := f.FetchChunk(1, 2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res2)
}

func TestServerBusyIsTransient(t *testing.T) {
	if !isTransient(errServerBusy) {
		t.Error("503 classified fatal; it must be retried")
	}
	if isTransient(errBadStatus) {
		t.Error("bad status classified transient")
	}
	if !isTransient(errors.New("read: connection reset by peer")) {
		t.Error("I/O error classified fatal")
	}
}
