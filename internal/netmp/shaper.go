// Package netmp is the real-socket counterpart of the simulator: a
// userspace multipath chunk fetcher over plain TCP connections (the
// "userspace multi-socket chunk scheduler" approximation of MP-DASH). A
// ChunkServer serves deterministic chunk bytes over per-path
// rate-shaped listeners; a Fetcher downloads each chunk over a preferred
// and a secondary connection with MP-DASH's deadline logic: the secondary
// socket is engaged only when the preferred path alone would miss the
// chunk deadline.
package netmp

import (
	"context"
	"sync"
	"time"
)

// TokenBucket shapes a byte stream to an average rate with a burst
// allowance. It is safe for concurrent use.
type TokenBucket struct {
	clk    Clock // injectable wall clock (nil = time.Now); set at construction
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // max accumulated bytes
	tokens float64
	last   time.Time
}

// NewTokenBucket creates a bucket; rate in bytes/second. A non-positive
// rate means unshaped (Take returns immediately).
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return newTokenBucketClocked(rate, burst, nil)
}

// newTokenBucketClocked is the constructor with an injectable clock.
func newTokenBucketClocked(rate, burst float64, clk Clock) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{clk: clk, rate: rate, burst: burst, tokens: burst, last: clk.now()}
}

// Take blocks until n bytes of budget are available or ctx is done. It
// returns ctx.Err if cancelled. Requests larger than the burst are
// honoured by letting the balance go negative (a debt the bucket must
// refill before the next request), which preserves the long-run rate for
// any request size.
func (tb *TokenBucket) Take(ctx context.Context, n int) error {
	for {
		tb.mu.Lock()
		if tb.rate <= 0 {
			tb.mu.Unlock()
			return nil
		}
		now := tb.clk.now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
		if tb.tokens > 0 {
			tb.tokens -= float64(n)
			tb.mu.Unlock()
			return nil
		}
		need := -tb.tokens / tb.rate
		tb.mu.Unlock()
		wait := time.Duration(need * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

// SetRate changes the bucket's rate in place (bytes/second; non-positive
// = unshaped), settling accrued tokens at the old rate first. Safe for
// concurrent use with Take — blocked takers observe the new rate on
// their next refill check.
func (tb *TokenBucket) SetRate(rate float64) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.clk.now()
	if tb.rate > 0 {
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
	}
	tb.last = now
	tb.rate = rate
}
