package netmp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"mpdash/internal/dash"
)

// DefaultSegmentSize is the range granularity of the dual-socket fetcher.
const DefaultSegmentSize = 32 * 1024

// Fetcher downloads chunks over two TCP connections with MP-DASH's
// deadline logic: the preferred connection pulls ranges from the front of
// the chunk; the secondary connection is engaged to pull from the back
// only while the preferred path's measured throughput cannot finish the
// remainder within α·D, and it stands down as soon as it can (Algorithm 1
// lines 16–21 in userspace).
type Fetcher struct {
	Video *dash.Video
	// Sizes optionally overrides the video's generated chunk sizes with
	// explicit per-[level][chunk] byte counts (as parsed from a remote
	// manifest, whose sizes are authoritative).
	Sizes [][]int64
	// Alpha is the safety factor (default 1).
	Alpha float64
	// SegmentSize is the range-request granularity.
	SegmentSize int64

	primary   *pathConn
	secondary *pathConn
}

// chunkSize returns the authoritative size of (index, level).
func (f *Fetcher) chunkSize(index, level int) int64 {
	if f.Sizes != nil {
		return f.Sizes[level][index]
	}
	return f.Video.ChunkSize(index, level)
}

type pathConn struct {
	name string
	conn net.Conn
	r    *bufio.Reader
}

func dialPath(name, addr string) (*pathConn, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netmp: dial %s (%s): %w", name, addr, err)
	}
	return &pathConn{name: name, conn: conn, r: bufio.NewReader(conn)}, nil
}

// NewFetcher dials both paths.
func NewFetcher(video *dash.Video, primaryAddr, secondaryAddr string) (*Fetcher, error) {
	if err := video.Validate(); err != nil {
		return nil, err
	}
	p, err := dialPath("primary", primaryAddr)
	if err != nil {
		return nil, err
	}
	s, err := dialPath("secondary", secondaryAddr)
	if err != nil {
		p.conn.Close()
		return nil, err
	}
	return &Fetcher{Video: video, Alpha: 1, SegmentSize: DefaultSegmentSize, primary: p, secondary: s}, nil
}

// Close tears down both connections.
func (f *Fetcher) Close() error {
	err1 := f.primary.conn.Close()
	err2 := f.secondary.conn.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// FetchResult reports one chunk download.
type FetchResult struct {
	Size           int64
	PrimaryBytes   int64
	SecondaryBytes int64
	Duration       time.Duration
	// MissedBy is zero when the deadline was met.
	MissedBy time.Duration
	// Verified is true when every received byte matched the expected
	// deterministic payload (reassembly correctness).
	Verified bool
}

// fetchState is the shared segment ledger.
type fetchState struct {
	mu    sync.Mutex
	front int // next unclaimed segment from the start
	back  int // last unclaimed segment at the end
}

// claimFront hands the primary the next segment, or -1.
func (st *fetchState) claimFront() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.front > st.back {
		return -1
	}
	seg := st.front
	st.front++
	return seg
}

// claimBack hands the secondary the last segment, or -1.
func (st *fetchState) claimBack() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.front > st.back {
		return -1
	}
	seg := st.back
	st.back--
	return seg
}

// remainingSegments reports how many segments are still unclaimed.
func (st *fetchState) remainingSegments() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := st.back - st.front + 1
	if n < 0 {
		return 0
	}
	return n
}

// FetchChunk downloads chunk (index, level) with deadline window d.
func (f *Fetcher) FetchChunk(index, level int, d time.Duration) (*FetchResult, error) {
	size := f.chunkSize(index, level)
	segSize := f.SegmentSize
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	nSegs := int((size + segSize - 1) / segSize)
	st := &fetchState{front: 0, back: nSegs - 1}
	alpha := f.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}

	start := time.Now()
	res := &FetchResult{Size: size, Verified: true}
	var mu sync.Mutex // guards res byte counters and Verified
	var wg sync.WaitGroup
	errCh := make(chan error, 2)

	fetchSeg := func(pc *pathConn, seg int) error {
		from := int64(seg) * segSize
		to := from + segSize - 1
		if to >= size {
			to = size - 1
		}
		n, ok, err := f.requestRange(pc, index, level, from, to)
		if err != nil {
			return err
		}
		mu.Lock()
		if pc == f.primary {
			res.PrimaryBytes += n
		} else {
			res.SecondaryBytes += n
		}
		if !ok {
			res.Verified = false
		}
		mu.Unlock()
		return nil
	}

	// Primary: drain from the front.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			seg := st.claimFront()
			if seg < 0 {
				return
			}
			if err := fetchSeg(f.primary, seg); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// Controller + secondary: engage the costly path only under deadline
	// pressure, re-evaluated every tick.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for range tick.C {
			if st.remainingSegments() == 0 {
				return
			}
			elapsed := time.Since(start)
			windowLeft := alpha*d.Seconds() - elapsed.Seconds()
			mu.Lock()
			got := res.PrimaryBytes + res.SecondaryBytes
			mu.Unlock()
			rate := float64(got) / elapsed.Seconds() // bytes/s, cumulative
			remaining := float64(st.remainingSegments()) * float64(segSize)
			needSecondary := windowLeft <= 0 || rate*windowLeft < remaining
			if !needSecondary {
				continue
			}
			seg := st.claimBack()
			if seg < 0 {
				return
			}
			if err := fetchSeg(f.secondary, seg); err != nil {
				errCh <- err
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	res.Duration = time.Since(start)
	if res.Duration > d {
		res.MissedBy = res.Duration - d
	}
	return res, nil
}

// FetchManifest downloads and parses the server's MPD over a fresh
// connection, returning the reconstructed video description and the
// per-representation chunk sizes — the client-side bootstrap that needs
// no out-of-band knowledge of the asset.
func FetchManifest(addr string) (*dash.Video, [][]int64, error) {
	pc, err := dialPath("manifest", addr)
	if err != nil {
		return nil, nil, err
	}
	defer pc.conn.Close()
	if _, err := io.WriteString(pc.conn, "GET /manifest.mpd HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
		return nil, nil, fmt.Errorf("netmp: manifest request: %w", err)
	}
	status, err := pc.r.ReadString('\n')
	if err != nil {
		return nil, nil, fmt.Errorf("netmp: manifest status: %w", err)
	}
	if !strings.Contains(status, "200") {
		return nil, nil, fmt.Errorf("netmp: manifest status %q", strings.TrimSpace(status))
	}
	var contentLength int64 = -1
	for {
		h, err := pc.r.ReadString('\n')
		if err != nil {
			return nil, nil, fmt.Errorf("netmp: manifest headers: %w", err)
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if v, found := strings.CutPrefix(h, "Content-Length: "); found {
			if contentLength, err = strconv.ParseInt(v, 10, 64); err != nil {
				return nil, nil, fmt.Errorf("netmp: manifest length: %w", err)
			}
		}
	}
	if contentLength < 0 || contentLength > 64<<20 {
		return nil, nil, fmt.Errorf("netmp: manifest length %d", contentLength)
	}
	body := make([]byte, contentLength)
	if _, err := io.ReadFull(pc.r, body); err != nil {
		return nil, nil, fmt.Errorf("netmp: manifest body: %w", err)
	}
	mpd, err := dash.DecodeMPD(body)
	if err != nil {
		return nil, nil, err
	}
	return dash.VideoFromManifest(mpd, "remote")
}

// requestRange performs one HTTP range request on a path connection and
// verifies the payload. It returns the byte count and whether every byte
// matched.
func (f *Fetcher) requestRange(pc *pathConn, index, level int, from, to int64) (int64, bool, error) {
	lvlID := f.Video.Levels[level].ID
	req := fmt.Sprintf("GET /seg-l%d-c%04d.m4s HTTP/1.1\r\nHost: x\r\nRange: bytes=%d-%d\r\n\r\n", lvlID, index, from, to)
	if _, err := io.WriteString(pc.conn, req); err != nil {
		return 0, false, fmt.Errorf("netmp: %s write: %w", pc.name, err)
	}
	status, err := pc.r.ReadString('\n')
	if err != nil {
		return 0, false, fmt.Errorf("netmp: %s status: %w", pc.name, err)
	}
	if !strings.Contains(status, "206") {
		return 0, false, fmt.Errorf("netmp: %s unexpected status %q", pc.name, strings.TrimSpace(status))
	}
	var contentLength int64 = -1
	for {
		h, err := pc.r.ReadString('\n')
		if err != nil {
			return 0, false, fmt.Errorf("netmp: %s headers: %w", pc.name, err)
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if v, found := strings.CutPrefix(h, "Content-Length: "); found {
			contentLength, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, false, fmt.Errorf("netmp: %s content-length %q: %w", pc.name, v, err)
			}
		}
	}
	if contentLength < 0 {
		return 0, false, fmt.Errorf("netmp: %s missing content length", pc.name)
	}
	buf := make([]byte, 16*1024)
	var got int64
	ok := true
	for got < contentLength {
		m := int64(len(buf))
		if m > contentLength-got {
			m = contentLength - got
		}
		n, err := io.ReadFull(pc.r, buf[:m])
		for i := 0; i < n; i++ {
			if buf[i] != ChunkBody(index, level, from+got+int64(i)) {
				ok = false
			}
		}
		got += int64(n)
		if err != nil {
			return got, ok, fmt.Errorf("netmp: %s body: %w", pc.name, err)
		}
	}
	return got, ok, nil
}
