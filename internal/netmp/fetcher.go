package netmp

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/obs"
)

// DefaultSegmentSize is the range granularity of the dual-socket fetcher.
const DefaultSegmentSize = 32 * 1024

// controllerTick is the cadence at which the secondary-path controller
// re-evaluates deadline pressure while standing by; pressureWarmup is the
// minimum elapsed time before the first throughput-based evaluation (no
// sample exists earlier).
const (
	controllerTick  = 20 * time.Millisecond
	pressureWarmup  = controllerTick
	ledgerIdleSleep = time.Millisecond
)

// Fetcher downloads chunks over two TCP connections with MP-DASH's
// deadline logic: the preferred connection pulls ranges from the front of
// the chunk; the secondary connection is engaged to pull from the back
// only while the preferred path's measured throughput cannot finish the
// remainder within α·D, and it stands down as soon as it can (Algorithm 1
// lines 16–21 in userspace). Both paths run under supervision (see
// supervise.go): transient I/O faults are retried through redials with
// backoff, failed segments are requeued to the surviving path, and the
// fetcher keeps working in degraded single-path mode — on either path
// alone — when one path dies for good.
type Fetcher struct {
	Video *dash.Video
	// Sizes optionally overrides the video's generated chunk sizes with
	// explicit per-[level][chunk] byte counts (as parsed from a remote
	// manifest, whose sizes are authoritative).
	Sizes [][]int64
	// Alpha is the safety factor (default 1).
	Alpha float64
	// SegmentSize is the range-request granularity.
	SegmentSize int64
	// Retry bounds the fault-tolerance behaviour; the zero value selects
	// the defaults documented on RetryPolicy.
	Retry RetryPolicy
	// Hedge bounds deadline-aware hedged requests (hedge.go); the zero
	// value selects the defaults documented on HedgePolicy. Hedging
	// engages only on paths built with multiple origins.
	Hedge HedgePolicy
	// Abort bounds doomed-chunk aborts (abort.go); the zero value leaves
	// the mechanism off. Aborts engage only above the lowest rendition —
	// with nothing to downgrade to, a doomed level-0 chunk rides out.
	Abort AbortPolicy
	// CacheHint bounds how edge X-MPDash-Cache headers damp the engage
	// test and suppress hedging (cachehint.go); the zero value selects
	// the defaults, and a session that never sees the header behaves
	// exactly as before.
	CacheHint CacheHintPolicy

	primary   *pathConn
	secondary *pathConn
	hedge     hedgeState
	abort     abortState
	// board is the optional congestion-board attachment (board.go); set
	// by JoinBoard before fetching, nil when flying solo.
	board *boardLink

	// clk supplies wall time for deadlines, durations, and telemetry
	// timestamps (nil = time.Now); set with SetClock before fetching.
	clk Clock

	// wheel is the optional shared timer wheel (wheel.go): hedge-arm
	// triggers and doom-monitor ticks ride it instead of per-call
	// runtime timers. Set with SetWheel before fetching; nil (the
	// single-session default) falls back to runtime timers.
	wheel *TimerWheel

	// obsMu guards fobs; the published *fetcherObs itself is immutable,
	// so one lock acquisition per read suffices (see telemetry.go).
	obsMu sync.Mutex
	fobs  *fetcherObs

	fb fbTrack // first-byte span tracking for the in-flight chunk

	// chint is the cache-hint memory fed by X-MPDash-Cache response
	// headers (cachehint.go).
	chint cacheHintState

	// tref names the in-flight chunk's span trace (tracing.go); shared
	// with both pathConns so the supervisor can attach redial spans.
	tref traceRef
}

// SetClock injects the fetcher's wall clock (nil restores time.Now),
// propagating it to both supervised paths. Call before fetching; see the
// Clock docs for the fixed-clock determinism pattern.
func (f *Fetcher) SetClock(c Clock) {
	f.clk = c
	f.primary.setClock(c)
	f.secondary.setClock(c)
}

// SetWheel attaches a shared timer wheel so this fetcher's hedge-arm
// and doom-monitor timers ride one population-wide structure instead
// of allocating runtime timers per segment. Nil (the default) keeps
// runtime timers. Call before fetching; the swarm wires every
// session's fetcher to one wheel.
func (f *Fetcher) SetWheel(w *TimerWheel) { f.wheel = w }

// obsHandles returns the published telemetry handles (nil = off).
func (f *Fetcher) obsHandles() *fetcherObs {
	f.obsMu.Lock()
	defer f.obsMu.Unlock()
	return f.fobs
}

// chunkSize returns the authoritative size of (index, level).
func (f *Fetcher) chunkSize(index, level int) int64 {
	if f.Sizes != nil {
		return f.Sizes[level][index]
	}
	return f.Video.ChunkSize(index, level)
}

// NewFetcher dials both paths, one origin each.
func NewFetcher(video *dash.Video, primaryAddr, secondaryAddr string) (*Fetcher, error) {
	return NewFetcherOrigins(video, []string{primaryAddr}, []string{secondaryAddr}, BreakerPolicy{})
}

// NewFetcherOrigins dials both paths through ranked origin sets: each
// slice lists a path's origin addresses in preference order, each gated
// by a circuit breaker under pol (zero value = defaults). The initial
// dial succeeds on the first reachable origin of each path.
func NewFetcherOrigins(video *dash.Video, primaryOrigins, secondaryOrigins []string, pol BreakerPolicy) (*Fetcher, error) {
	if err := video.Validate(); err != nil {
		return nil, err
	}
	p, err := dialOrigins("primary", primaryOrigins, pol)
	if err != nil {
		return nil, err
	}
	s, err := dialOrigins("secondary", secondaryOrigins, pol)
	if err != nil {
		p.conn.Close()
		return nil, err
	}
	f := &Fetcher{Video: video, Alpha: 1, SegmentSize: DefaultSegmentSize, primary: p, secondary: s}
	p.tref = &f.tref
	s.tref = &f.tref
	return f, nil
}

// Close tears down both connections, reporting every failure.
func (f *Fetcher) Close() error {
	return errors.Join(f.primary.close(), f.secondary.close())
}

// PathStats returns health snapshots for the primary then secondary path.
func (f *Fetcher) PathStats() []PathStats {
	return []PathStats{f.primary.stats(), f.secondary.stats()}
}

// DegradedFor returns the total time paths have spent down — the
// session's degraded single-path interval.
func (f *Fetcher) DegradedFor() time.Duration {
	var d time.Duration
	for _, ps := range f.PathStats() {
		d += ps.DownFor
	}
	return d
}

// failoverCount sums origin switches across the embedded pair.
func (f *Fetcher) failoverCount() int64 {
	return f.primary.set.Failovers() + f.secondary.set.Failovers()
}

// FetchResult reports one chunk download.
type FetchResult struct {
	Size           int64
	PrimaryBytes   int64
	SecondaryBytes int64
	Duration       time.Duration
	// MissedBy is zero when the deadline was met.
	MissedBy time.Duration
	// Verified is true when every received byte matched the expected
	// deterministic payload (reassembly correctness). Corrupted attempts
	// are discarded and re-fetched, so a successful fetch is verified.
	Verified bool

	// Retries counts failed range-request attempts absorbed by the
	// supervisor during this fetch.
	Retries int64
	// Redials counts reconnect attempts (successful or not).
	Redials int64
	// Requeued counts segments handed back to the ledger after one
	// path's per-segment budget ran out, for the other path to complete.
	Requeued int64
	// WastedBytes counts payload bytes discarded from failed or
	// corrupted attempts.
	WastedBytes int64
	// Degraded is true when part of the chunk was fetched with a path
	// down (single-path mode).
	Degraded bool
	// AbortedDoomed is true when the fetch was abandoned mid-flight
	// because even best-case all-path delivery could not meet the
	// deadline (the ErrChunkDoomed outcome). The partial byte counters
	// report what the abort discarded.
	AbortedDoomed bool

	// Failovers counts origin switches across all paths during this
	// fetch (a tripped breaker re-routing the path's connection).
	Failovers int64
	// HedgesIssued counts duplicate requests launched to backup origins.
	HedgesIssued int64
	// HedgesWon counts segments delivered by the hedge rather than the
	// primary attempt.
	HedgesWon int64
	// HedgesCancelled counts hedge-race losers whose transfers were
	// aborted.
	HedgesCancelled int64
	// HedgeWastedBytes counts payload bytes spent on hedge losers,
	// charged against HedgePolicy.BudgetBytes.
	HedgeWastedBytes int64
}

// fetchState is the shared segment ledger. Segments move from unclaimed
// to in-flight to done; a segment whose path fails is requeued so the
// surviving path can retake it. Completion means done == total, not an
// empty queue — in-flight segments may yet fail back into the queue.
type fetchState struct {
	mu            sync.Mutex
	front         int // next fresh segment from the start
	back          int // last fresh segment at the end
	requeued      []requeuedSeg
	requeues      map[int]int // per-segment requeue counts
	inflight      int
	done          int
	total         int
	failed        bool // requeue budget blown: abort the chunk
	doomed        bool // predicted deadline miss: abandon, downgrade
	requeueBudget int
	requeueCount  int64
}

type requeuedSeg struct {
	seg int
	by  *pathConn // the path that failed it
}

func newFetchState(total, requeueBudget int) *fetchState {
	return &fetchState{front: 0, back: total - 1, total: total, requeueBudget: requeueBudget}
}

// takeRequeuedLocked pops a requeued segment for pc, preferring segments
// failed by a different path; retrying your own failed segment only makes
// sense once no fresh work remains (selfOK).
func (st *fetchState) takeRequeuedLocked(pc *pathConn, selfOK bool) (int, bool) {
	for i, rq := range st.requeued {
		if rq.by != pc || selfOK {
			st.requeued = append(st.requeued[:i], st.requeued[i+1:]...)
			st.inflight++
			return rq.seg, true
		}
	}
	return 0, false
}

// claimFrontFor hands pc the next segment from the start, or -1 when
// nothing is claimable right now.
func (st *fetchState) claimFrontFor(pc *pathConn) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed || st.doomed {
		return -1
	}
	if seg, ok := st.takeRequeuedLocked(pc, false); ok {
		return seg
	}
	if st.front <= st.back {
		seg := st.front
		st.front++
		st.inflight++
		return seg
	}
	if seg, ok := st.takeRequeuedLocked(pc, true); ok {
		return seg
	}
	return -1
}

// claimBackFor hands pc the last segment, or -1.
func (st *fetchState) claimBackFor(pc *pathConn) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed || st.doomed {
		return -1
	}
	if st.front <= st.back {
		seg := st.back
		st.back--
		st.inflight++
		return seg
	}
	if seg, ok := st.takeRequeuedLocked(pc, false); ok {
		return seg
	}
	if seg, ok := st.takeRequeuedLocked(pc, true); ok {
		return seg
	}
	return -1
}

// complete marks a claimed segment fetched and verified.
func (st *fetchState) complete() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.inflight--
	st.done++
}

// requeue returns a claimed segment to the ledger after pc failed it.
// Blowing the per-segment requeue budget aborts the whole chunk.
func (st *fetchState) requeue(seg int, by *pathConn) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.inflight--
	st.requeueCount++
	if st.requeues == nil {
		st.requeues = make(map[int]int)
	}
	st.requeues[seg]++
	if st.requeues[seg] > st.requeueBudget {
		st.failed = true
		return
	}
	st.requeued = append(st.requeued, requeuedSeg{seg: seg, by: by})
}

// finished reports whether every segment has been fetched.
func (st *fetchState) finished() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.done == st.total
}

// aborted reports whether the chunk's requeue budget is blown.
func (st *fetchState) aborted() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.failed
}

// markDoomed flags the chunk as a predicted deadline miss: no further
// segments will be claimed and the workers wind down.
func (st *fetchState) markDoomed() {
	st.mu.Lock()
	st.doomed = true
	st.mu.Unlock()
}

// isDoomed reports whether the chunk was abandoned as doomed.
func (st *fetchState) isDoomed() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.doomed
}

// release returns a claimed segment without completing or requeueing it
// — the abort path: the ledger forgets the claim, spending no requeue
// budget and charging no fault.
func (st *fetchState) release() {
	st.mu.Lock()
	st.inflight--
	st.mu.Unlock()
}

// doneSegments reports how many segments have completed and verified.
func (st *fetchState) doneSegments() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.done
}

// remainingSegments reports how many segments are still unclaimed
// (including requeued ones awaiting a new owner).
func (st *fetchState) remainingSegments() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := st.back - st.front + 1
	if n < 0 {
		n = 0
	}
	return n + len(st.requeued)
}

// underPressure is the Algorithm 1 engagement test: true when the
// cumulative throughput cannot move the remaining bytes within what is
// left of the α·D window. It also returns the measured rate (bytes/s,
// zero before the warmup sample) and the remaining window — the numbers
// that drove the decision, journalled with each engage/stand-down.
func underPressure(elapsed time.Duration, d time.Duration, alpha float64, got int64, remaining float64) (pressure bool, rate, windowLeft float64) {
	windowLeft = alpha*d.Seconds() - elapsed.Seconds()
	if windowLeft <= 0 {
		return true, 0, windowLeft
	}
	if elapsed < pressureWarmup {
		return false, 0, windowLeft // no throughput sample yet
	}
	rate = float64(got) / elapsed.Seconds()
	return rate*windowLeft < remaining, rate, windowLeft
}

// FetchChunk downloads chunk (index, level) with deadline window d. It
// survives transient path faults (retry + redial + requeue) and runs
// single-path when one path is down; it fails only when both paths die
// (ErrAllPathsDown) or a segment exhausts its requeue budget on every
// live path (ErrChunkExhausted).
func (f *Fetcher) FetchChunk(index, level int, d time.Duration) (*FetchResult, error) {
	size := f.chunkSize(index, level)
	pol := f.Retry.withDefaults()
	segSize := f.SegmentSize
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	if f.primary.isDown() && f.secondary.isDown() {
		return nil, ErrAllPathsDown
	}
	nSegs := int((size + segSize - 1) / segSize)
	st := newFetchState(nSegs, pol.RequeueBudget)
	alpha := f.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}

	start := f.clk.now()
	dlAt := start.Add(time.Duration(alpha * float64(d)))
	f.chint.beginChunk(index)
	res := &FetchResult{Size: size, Verified: true}
	fo := f.obsHandles()
	if fo != nil {
		fo.emitChunkStart(index, level, size, d, nSegs)
		f.fb.begin(start, index, level)
		defer f.fb.end()
	}
	ctr := f.curTrace()
	fsp := ctr.StartSpan(obs.CatFetch, "fetch")
	fsp.SetNum("size", float64(size))
	fsp.SetNum("segs", float64(nSegs))
	defer fsp.End()
	pRet0, pRed0, pWaste0 := f.primary.counters()
	sRet0, sRed0, sWaste0 := f.secondary.counters()
	fo0 := f.failoverCount()
	hi0, hw0, hc0, hwb0 := f.hedge.snapshot()
	var mu sync.Mutex // guards res byte counters
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var workerErrs []error

	recordErr := func(err error) {
		errMu.Lock()
		workerErrs = append(workerErrs, err)
		errMu.Unlock()
	}

	fetchSeg := func(pc *pathConn, seg int) error {
		from := int64(seg) * segSize
		to := from + segSize - 1
		if to >= size {
			to = size - 1
		}
		ssp := ctr.StartSpan(obs.CatSegment, "segment")
		ssp.SetPath(pc.name)
		ssp.SetNum("seg", float64(seg))
		n, err := f.fetchSegHedged(pc, pol, index, level, from, to, dlAt)
		ssp.End()
		if err != nil {
			return err
		}
		mu.Lock()
		if pc == f.primary {
			res.PrimaryBytes += n
		} else {
			res.SecondaryBytes += n
		}
		mu.Unlock()
		return nil
	}

	// handle routes a segment outcome; it reports whether the worker
	// should keep claiming.
	handle := func(pc *pathConn, seg int, err error) bool {
		switch {
		case err == nil:
			st.complete()
			return true
		case errors.Is(err, errHedgeCancelled):
			// A doomed-chunk abort cut this transfer mid-read. Not a
			// fault: forget the claim — no requeue budget spent, no
			// breaker fuel — and wind the worker down.
			if st.isDoomed() {
				st.release()
				return false
			}
			// Stale cancellation without a doom verdict (the chunk
			// completed inside the cancel race): hand the segment back.
			st.requeue(seg, pc)
			return true
		case errors.Is(err, errSegmentFailed):
			st.requeue(seg, pc)
			ctr.Event(obs.CatRequeue, "requeue")
			ctr.MarkBad(obs.CatRequeue)
			return true
		case errors.Is(err, errPathDown):
			st.requeue(seg, pc)
			ctr.Event(obs.CatRequeue, "requeue")
			ctr.MarkBad(obs.CatRequeue)
			return false
		default: // fatal protocol error; the path was marked down
			st.requeue(seg, pc)
			recordErr(err)
			return false
		}
	}

	// Doom monitor: abort the chunk once even best-case all-path
	// delivery projects a deadline miss. Only above the lowest rendition
	// — with nothing to downgrade to, a doomed level-0 chunk rides out.
	var doomStop chan struct{}
	if f.Abort.Enabled && level > 0 {
		doomStop = make(chan struct{})
		go f.monitorDoom(st, f.Abort.withDefaults(), size, segSize, start, dlAt, index, level, doomStop)
	}

	// Primary: drain from the front while the path lives.
	if !f.primary.isDown() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if st.finished() || st.aborted() || st.isDoomed() {
					return
				}
				seg := st.claimFrontFor(f.primary)
				if seg < 0 {
					// Nothing claimable now; a segment in flight on the
					// other path may yet fail back into the ledger.
					time.Sleep(ledgerIdleSleep)
					continue
				}
				if !handle(f.primary, seg, fetchSeg(f.primary, seg)) {
					return
				}
			}
		}()
	}

	// Controller + secondary: engage the costly path under deadline
	// pressure, or unconditionally once the preferred path is down
	// (degraded mode inverts the cost preference to honor the deadline).
	// While engaged it keeps claiming back-segments — re-evaluating
	// pressure per segment, not per tick — so a fast secondary saturates
	// and still stands down as soon as the primary suffices again.
	if !f.secondary.isDown() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			engaged := false
			for {
				if st.finished() || st.aborted() || st.isDoomed() {
					return
				}
				remaining := float64(st.remainingSegments()) * float64(segSize)
				// Cache-aware service-time hint: a chunk the edge will
				// serve from its store moves far faster than the path
				// rate history suggests, so scale the demand down by the
				// hit probability before the pressure test. A known miss
				// (or no edge at all) leaves the demand untouched.
				if hp := f.cacheHitProb(index); hp > 0 {
					remaining *= 1 - f.CacheHint.withDefaults().Damp*hp
				}
				if !f.primary.isDown() {
					mu.Lock()
					got := res.PrimaryBytes + res.SecondaryBytes
					mu.Unlock()
					pressure, rate, window := underPressure(f.clk.now().Sub(start), d, alpha, got, remaining)
					if !pressure {
						if engaged {
							engaged = false
							fo.emitToggle(false, "", f.secondary.name, index, level, rate, remaining, window)
						}
						time.Sleep(controllerTick)
						continue
					}
					if !engaged {
						engaged = true
						fo.emitToggle(true, "pressure", f.secondary.name, index, level, rate, remaining, window)
					}
				} else if !engaged {
					engaged = true
					fo.emitToggle(true, "primary-down", f.secondary.name, index, level, 0, remaining, 0)
				}
				seg := st.claimBackFor(f.secondary)
				if seg < 0 {
					if st.finished() || st.aborted() || st.isDoomed() {
						return
					}
					time.Sleep(ledgerIdleSleep)
					continue
				}
				if !handle(f.secondary, seg, fetchSeg(f.secondary, seg)) {
					return
				}
			}
		}()
	}

	wg.Wait()
	if doomStop != nil {
		close(doomStop)
	}

	pRet, pRed, pWaste := f.primary.counters()
	sRet, sRed, sWaste := f.secondary.counters()
	res.Retries = (pRet - pRet0) + (sRet - sRet0)
	res.Redials = (pRed - pRed0) + (sRed - sRed0)
	res.WastedBytes = (pWaste - pWaste0) + (sWaste - sWaste0)
	res.Failovers = f.failoverCount() - fo0
	hi, hw, hc, hwb := f.hedge.snapshot()
	res.HedgesIssued = hi - hi0
	res.HedgesWon = hw - hw0
	res.HedgesCancelled = hc - hc0
	res.HedgeWastedBytes = hwb - hwb0
	st.mu.Lock()
	res.Requeued = st.requeueCount
	st.mu.Unlock()
	res.Degraded = f.primary.isDown() || f.secondary.isDown()

	// On failure the partial result still carries the fault accounting,
	// so callers can fold retries/redials into session totals.
	if !st.finished() {
		if st.isDoomed() {
			// An abort is a scheduling decision, not a fault: no
			// chunk.fail event, no breaker fuel. The partial bytes are
			// charged as waste and the cut connections restored so the
			// downgraded refetch starts on live sockets.
			res.AbortedDoomed = true
			wasted := res.PrimaryBytes + res.SecondaryBytes
			f.abort.wastedBytes.Add(wasted)
			fo.noteAbortWaste(wasted)
			f.restoreAfterAbort(pol)
			return res, doomError(index, level)
		}
		var ferr error
		switch {
		case st.aborted():
			ferr = fmt.Errorf("netmp: chunk %d level %d: %w after %d requeues", index, level, ErrChunkExhausted, res.Requeued)
		default:
			errMu.Lock()
			joined := errors.Join(workerErrs...)
			errMu.Unlock()
			if f.primary.isDown() && f.secondary.isDown() {
				ferr = errors.Join(ErrAllPathsDown, joined)
			} else if joined == nil {
				ferr = fmt.Errorf("netmp: chunk %d level %d incomplete", index, level)
			} else {
				ferr = joined
			}
		}
		fo.emitChunkFail(index, level, ferr)
		return res, ferr
	}
	if st.isDoomed() {
		// The last segments landed inside the doom-verdict race window:
		// the chunk completed after all, but the monitor already cut the
		// connections — restore them and drop the stale cancel flags.
		f.restoreAfterAbort(pol)
	}
	res.Duration = f.clk.now().Sub(start)
	if res.Duration > d {
		res.MissedBy = res.Duration - d
	}
	if res.MissedBy == 0 {
		// On-time delivery means the local predictor has caught up with
		// whatever capacity drop a neighbor announced: consume the
		// board pre-arm so it stops tightening future chunks.
		f.ackBoardEpoch()
	}
	fo.emitChunkDone(index, level, d, res)
	return res, nil
}

// fetchSegSupervised downloads one segment on pc, absorbing transient
// faults: a corrupted payload is re-requested on the intact connection,
// and an I/O error triggers a redial (exponential backoff + jitter)
// because the connection's framing state is unknown. Every attempt's
// outcome feeds the current origin's circuit breaker, and a segment
// whose origin breaker opens mid-flight is re-dispatched through a
// redial to the next healthy origin. It returns the verified byte
// count, or errSegmentFailed once the per-segment budget is spent (the
// caller requeues the segment), or errPathDown when the path's redial
// budget is gone or the failure was fatal, or errHedgeCancelled when a
// winning hedge aborted the attempt.
func (f *Fetcher) fetchSegSupervised(pc *pathConn, pol RetryPolicy, index, level int, from, to int64) (int64, error) {
	for attempt := 0; ; attempt++ {
		// A tripped origin is not worth another request: fail over now
		// (multi-origin sets only; a sole origin keeps legacy semantics).
		if pc.set.Size() > 1 && pc.set.CurrentState() == BreakerOpen {
			if derr := pc.redial(pol); derr != nil {
				return 0, derr
			}
		}
		o := pc.set.current()
		t0 := f.clk.now()
		n, verified, err := f.requestRange(pc, index, level, from, to)
		if err == nil && verified {
			pc.noteSuccess(n)
			o.recordOutcome(nil, f.clk.now().Sub(t0))
			return n, nil
		}
		if err != nil && pc.takeCancelled() {
			// Not a fault: the hedge twin already delivered the segment.
			return 0, errHedgeCancelled
		}
		pc.noteFault(n)
		fault := err
		if fault == nil {
			fault = errCorruptPayload
		}
		o.recordOutcome(fault, 0)
		pc.emitFault(fault)
		if err != nil && !isTransient(err) {
			pc.markDown()
			return 0, err
		}
		if err != nil {
			if derr := pc.redial(pol); derr != nil {
				return 0, derr
			}
		}
		if attempt+1 >= pol.SegmentBudget {
			return 0, errSegmentFailed
		}
		bsp := f.curTrace().StartSpan(obs.CatBackoff, "backoff")
		bsp.SetPath(pc.name)
		time.Sleep(pol.backoff(attempt, pc.jitterRNG(pol)))
		bsp.End()
	}
}

// FetchManifest downloads and parses the server's MPD over a fresh
// connection, returning the reconstructed video description and the
// per-representation chunk sizes — the client-side bootstrap that needs
// no out-of-band knowledge of the asset.
func FetchManifest(addr string) (*dash.Video, [][]int64, error) {
	pc, err := dialPath("manifest", addr)
	if err != nil {
		return nil, nil, err
	}
	defer pc.conn.Close()
	if _, err := io.WriteString(pc.conn, "GET /manifest.mpd HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
		return nil, nil, fmt.Errorf("netmp: manifest request: %w", err)
	}
	status, err := pc.r.ReadString('\n')
	if err != nil {
		return nil, nil, fmt.Errorf("netmp: manifest status: %w", err)
	}
	if !strings.Contains(status, "200") {
		return nil, nil, fmt.Errorf("netmp: manifest status %q", strings.TrimSpace(status))
	}
	var contentLength int64 = -1
	for {
		h, err := pc.r.ReadString('\n')
		if err != nil {
			return nil, nil, fmt.Errorf("netmp: manifest headers: %w", err)
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if v, found := headerCut(h, "Content-Length"); found {
			if contentLength, err = strconv.ParseInt(v, 10, 64); err != nil {
				return nil, nil, fmt.Errorf("netmp: manifest length: %w", err)
			}
		}
	}
	if contentLength < 0 || contentLength > 64<<20 {
		return nil, nil, fmt.Errorf("netmp: manifest length %d", contentLength)
	}
	body := make([]byte, contentLength)
	if _, err := io.ReadFull(pc.r, body); err != nil {
		return nil, nil, fmt.Errorf("netmp: manifest body: %w", err)
	}
	mpd, err := dash.DecodeMPD(body)
	if err != nil {
		return nil, nil, err
	}
	return dash.VideoFromManifest(mpd, "remote")
}

// requestRange performs one HTTP range request on a path connection and
// verifies the payload. Every I/O operation (the write, the status and
// header reads, and each body block read) runs under the policy's
// IOTimeout so a stalled path surfaces as a timeout instead of hanging
// the worker. It returns the byte count and whether every byte matched.
func (f *Fetcher) requestRange(pc *pathConn, index, level int, from, to int64) (int64, bool, error) {
	timeout := f.Retry.withDefaults().IOTimeout
	extend := func() { pc.conn.SetDeadline(f.clk.now().Add(timeout)) }
	defer pc.conn.SetDeadline(time.Time{})

	lvlID := f.Video.Levels[level].ID
	reqp := acquireReqLine()
	req := AppendRangeRequest((*reqp)[:0], lvlID, index, from, to)
	t0 := f.clk.now()
	extend()
	_, werr := pc.conn.Write(req)
	*reqp = req[:0]
	releaseReqLine(reqp)
	if werr != nil {
		return 0, false, fmt.Errorf("netmp: %s write: %w", pc.name, werr)
	}
	status, err := pc.r.ReadString('\n')
	if err != nil {
		return 0, false, fmt.Errorf("netmp: %s status: %w", pc.name, err)
	}
	if !strings.Contains(status, "206") {
		if strings.Contains(status, "503") {
			// Overload rejection: transient, and breaker fuel for a
			// failover to a less-loaded origin.
			return 0, false, fmt.Errorf("netmp: %s %w", pc.name, errServerBusy)
		}
		return 0, false, fmt.Errorf("netmp: %s %w %q", pc.name, errBadStatus, strings.TrimSpace(status))
	}
	var contentLength int64 = -1
	cacheState := ""
	for {
		h, err := pc.r.ReadString('\n')
		if err != nil {
			return 0, false, fmt.Errorf("netmp: %s headers: %w", pc.name, err)
		}
		h = strings.TrimSpace(h)
		if h == "" {
			break
		}
		if v, found := headerCut(h, "Content-Length"); found {
			contentLength, err = strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, false, fmt.Errorf("netmp: %s content-length %q: %w", pc.name, v, err)
			}
		}
		if v, found := headerCut(h, "X-MPDash-Cache"); found {
			cacheState = strings.ToLower(v)
		}
	}
	if contentLength < 0 {
		return 0, false, fmt.Errorf("netmp: %s missing content length", pc.name)
	}
	if cacheState != "" && !f.CacheHint.Disabled {
		hit := cacheState == "hit"
		f.noteCacheHeader(pc, index, level, hit)
		if !hit {
			// The edge is (or was) filling this chunk from origin: the
			// whole request rode that fill, so the span is backdated to
			// the request write — that interval is origin time, and the
			// miss-budget walker attributes it to the cache category.
			csp := f.curTrace().StartSpanAt(obs.CatCache, "origin-fill", t0)
			csp.SetPath(pc.name)
			defer csp.End()
		}
	}
	bp := AcquireSegBuf()
	defer ReleaseSegBuf(bp)
	buf := *bp
	var got int64
	ok := true
	for got < contentLength {
		m := int64(len(buf))
		if m > contentLength-got {
			m = contentLength - got
		}
		extend()
		n, err := io.ReadFull(pc.r, buf[:m])
		if got == 0 && n > 0 && f.fb.pending.Load() {
			f.noteFirstByte()
		}
		for i := 0; i < n; i++ {
			if buf[i] != ChunkBody(index, level, from+got+int64(i)) {
				ok = false
			}
		}
		got += int64(n)
		if err != nil {
			return got, ok, fmt.Errorf("netmp: %s body: %w", pc.name, err)
		}
	}
	return got, ok, nil
}
