package netmp

import (
	"fmt"
	"testing"
)

// The pooled per-chunk composition — acquire a segment buffer, render
// the range-request line, generate-and-verify a body block, release —
// must be allocation-free at steady state (ISSUE 10 tentpole; the
// perf suite gates the same path as netmp_chunk_path).
func TestPooledChunkPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop puts; alloc contract gated without -race")
	}
	allocs := testing.AllocsPerRun(200, func() {
		bp := AcquireSegBuf()
		buf := *bp
		rp := acquireReqLine()
		req := AppendRangeRequest((*rp)[:0], 4, 17, 0, int64(len(buf))-1)
		_ = req
		for i := 0; i < 512; i++ {
			buf[i] = ChunkBody(17, 2, int64(i))
		}
		ok := true
		for i := 0; i < 512; i++ {
			if buf[i] != ChunkBody(17, 2, int64(i)) {
				ok = false
			}
		}
		if !ok {
			t.Error("verify mismatch")
		}
		*rp = req[:0]
		releaseReqLine(rp)
		ReleaseSegBuf(bp)
	})
	if allocs != 0 {
		t.Fatalf("pooled chunk path allocates %v allocs/op, want 0", allocs)
	}
}

// AppendRangeRequest must render byte-for-byte what the fmt.Sprintf it
// replaced produced, across padding widths and range boundaries.
func TestAppendRangeRequestMatchesSprintf(t *testing.T) {
	cases := []struct {
		lvlID, index int
		from, to     int64
	}{
		{0, 0, 0, 0},
		{1, 7, 0, 16383},
		{3, 42, 16384, 32767},
		{12, 999, 98304, 131071},
		{5, 1000, 0, 1},
		{7, 12345, 1 << 30, 1<<30 + 16383},
	}
	for _, c := range cases {
		want := fmt.Sprintf("GET /seg-l%d-c%04d.m4s HTTP/1.1\r\nHost: x\r\nRange: bytes=%d-%d\r\n\r\n",
			c.lvlID, c.index, c.from, c.to)
		got := string(AppendRangeRequest(nil, c.lvlID, c.index, c.from, c.to))
		if got != want {
			t.Errorf("AppendRangeRequest(%d,%d,%d,%d):\n got %q\nwant %q",
				c.lvlID, c.index, c.from, c.to, got, want)
		}
	}
}

// A released buffer of foreign capacity must fall out of circulation
// instead of poisoning the pool, and nil release is a no-op.
func TestReleaseSegBufForeignSize(t *testing.T) {
	ReleaseSegBuf(nil)
	odd := make([]byte, 100)
	ReleaseSegBuf(&odd)
	bp := AcquireSegBuf()
	if len(*bp) != segBufBlock || cap(*bp) != segBufBlock {
		t.Fatalf("acquired buffer len=%d cap=%d, want %d", len(*bp), cap(*bp), segBufBlock)
	}
	// A short-resliced buffer restores to full block length on release.
	*bp = (*bp)[:10]
	ReleaseSegBuf(bp)
	bp2 := AcquireSegBuf()
	if len(*bp2) != segBufBlock {
		t.Fatalf("recycled buffer len=%d, want %d", len(*bp2), segBufBlock)
	}
	ReleaseSegBuf(bp2)
}
