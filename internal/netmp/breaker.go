package netmp

// Per-origin circuit breaker: the client-side health gate of the origin
// tier. Each origin's recent request outcomes (success/failure plus
// latency) feed a rolling window; when the windowed error rate — or the
// mean success latency — crosses the trip threshold, the breaker opens
// and the origin stops receiving traffic. After a cooldown it admits a
// single half-open probe: a verified success closes the breaker, a
// failure reopens it. The design follows QAware's continuously-observed
// per-endpoint quality signals, applied at origin rather than queue
// granularity.

import (
	"fmt"
	"sync"
	"time"

	"mpdash/internal/obs"
)

// BreakerState is a circuit breaker's tri-state.
type BreakerState int32

const (
	// BreakerClosed: the origin is healthy; requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the origin tripped; requests are refused until the
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; one probe request is admitted to
	// test the origin.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// BreakerPolicy bounds a per-origin circuit breaker. The zero value
// selects the defaults noted on each field.
type BreakerPolicy struct {
	// Window is the rolling outcome-sample window size. Default 16.
	Window int
	// MinSamples is the minimum number of windowed samples before the
	// error rate can trip the breaker. Default 4.
	MinSamples int
	// TripErrorRate opens the breaker when the windowed error rate
	// reaches it. Default 0.5.
	TripErrorRate float64
	// TripLatency opens the breaker when the windowed mean success
	// latency exceeds it. Zero disables the latency trip.
	TripLatency time.Duration
	// Cooldown is how long an open breaker refuses traffic before
	// admitting a half-open probe. Default 1s.
	Cooldown time.Duration
	// ProbeSuccesses is how many consecutive half-open probe successes
	// close the breaker. Default 1.
	ProbeSuccesses int
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Window <= 0 {
		p.Window = 16
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 4
	}
	if p.TripErrorRate <= 0 || p.TripErrorRate > 1 {
		p.TripErrorRate = 0.5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = time.Second
	}
	if p.ProbeSuccesses <= 0 {
		p.ProbeSuccesses = 1
	}
	return p
}

type breakerSample struct {
	ok      bool
	latency time.Duration // successes only
}

// CircuitBreaker gates one origin. Safe for concurrent use.
type CircuitBreaker struct {
	pol BreakerPolicy
	now func() time.Time // injectable clock for tests

	mu        sync.Mutex
	state     BreakerState
	samples   []breakerSample // ring buffer of the last Window outcomes
	idx, n    int
	openedAt  time.Time
	probing   bool // a half-open probe is in flight
	probeOKs  int  // consecutive half-open probe successes
	trips     int64
	lastError error

	// Telemetry: transitions are journalled to sink with the path/origin
	// labels, set by setObs. Guarded by mu.
	sink               obs.Sink
	obsPath, obsOrigin string
}

// setObs wires the breaker's transition events to a telemetry sink.
func (b *CircuitBreaker) setObs(sink obs.Sink, path, origin string) {
	b.mu.Lock()
	b.sink = sink
	b.obsPath, b.obsOrigin = path, origin
	b.mu.Unlock()
}

// emitTransition journals a state change observed while b.mu was held.
// Called after unlock so a slow sink never extends the critical section.
func (b *CircuitBreaker) emitTransition(sink obs.Sink, from, to BreakerState, path, origin string) {
	if sink == nil || from == to {
		return
	}
	sink.Emit(obs.NewEvent("breaker.state").WithPath(path).
		WithStr("origin", origin).WithStr("from", from.String()).WithStr("to", to.String()))
}

// NewCircuitBreaker returns a closed breaker under pol (zero value =
// defaults).
func NewCircuitBreaker(pol BreakerPolicy) *CircuitBreaker {
	pol = pol.withDefaults()
	return &CircuitBreaker{
		pol:     pol,
		now:     time.Now,
		samples: make([]breakerSample, pol.Window),
	}
}

// State returns the breaker's current state, applying the open→half-open
// cooldown transition first.
func (b *CircuitBreaker) State() BreakerState {
	b.mu.Lock()
	from := b.state
	b.maybeHalfOpenLocked()
	to := b.state
	sink, path, origin := b.sink, b.obsPath, b.obsOrigin
	b.mu.Unlock()
	b.emitTransition(sink, from, to, path, origin)
	return to
}

// Trips returns how many times the breaker has opened.
func (b *CircuitBreaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// maybeHalfOpenLocked moves an open breaker to half-open once the
// cooldown has elapsed.
func (b *CircuitBreaker) maybeHalfOpenLocked() {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.pol.Cooldown {
		b.state = BreakerHalfOpen
		b.probing = false
		b.probeOKs = 0
	}
}

// Allow reports whether a request may be dispatched to this origin. In
// half-open it admits exactly one probe at a time; the probe's outcome
// (RecordSuccess/RecordFailure) decides the next transition.
func (b *CircuitBreaker) Allow() bool {
	b.mu.Lock()
	from := b.state
	b.maybeHalfOpenLocked()
	allowed := false
	switch b.state {
	case BreakerClosed:
		allowed = true
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			allowed = true
		}
	}
	to := b.state
	sink, path, origin := b.sink, b.obsPath, b.obsOrigin
	b.mu.Unlock()
	b.emitTransition(sink, from, to, path, origin)
	return allowed
}

// Healthy reports whether the origin is currently dispatchable without
// consuming a probe slot: closed, or half-open with a free probe slot.
func (b *CircuitBreaker) Healthy() bool {
	b.mu.Lock()
	from := b.state
	b.maybeHalfOpenLocked()
	healthy := b.state == BreakerClosed || (b.state == BreakerHalfOpen && !b.probing)
	to := b.state
	sink, path, origin := b.sink, b.obsPath, b.obsOrigin
	b.mu.Unlock()
	b.emitTransition(sink, from, to, path, origin)
	return healthy
}

// RecordSuccess feeds one successful request with its latency.
func (b *CircuitBreaker) RecordSuccess(latency time.Duration) {
	b.mu.Lock()
	from := b.state
	b.maybeHalfOpenLocked()
	b.pushLocked(breakerSample{ok: true, latency: latency})
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.probeOKs++
		if b.probeOKs >= b.pol.ProbeSuccesses {
			b.resetLocked()
		}
	case BreakerClosed:
		b.evaluateLocked()
	}
	to := b.state
	sink, path, origin := b.sink, b.obsPath, b.obsOrigin
	b.mu.Unlock()
	b.emitTransition(sink, from, to, path, origin)
}

// RecordFailure feeds one failed request (I/O error, bad status, failed
// dial, corrupt payload).
func (b *CircuitBreaker) RecordFailure(err error) {
	b.mu.Lock()
	from := b.state
	b.maybeHalfOpenLocked()
	b.lastError = err
	b.pushLocked(breakerSample{ok: false})
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: straight back to open, cooldown restarts.
		b.tripLocked()
	case BreakerClosed:
		b.evaluateLocked()
	}
	to := b.state
	sink, path, origin := b.sink, b.obsPath, b.obsOrigin
	b.mu.Unlock()
	b.emitTransition(sink, from, to, path, origin)
}

// pushLocked appends one outcome to the rolling window.
func (b *CircuitBreaker) pushLocked(s breakerSample) {
	b.samples[b.idx] = s
	b.idx = (b.idx + 1) % len(b.samples)
	if b.n < len(b.samples) {
		b.n++
	}
}

// evaluateLocked trips a closed breaker when the windowed error rate or
// mean success latency crosses its threshold.
func (b *CircuitBreaker) evaluateLocked() {
	if b.n < b.pol.MinSamples {
		return
	}
	var fails int
	var okLatency time.Duration
	var oks int
	for i := 0; i < b.n; i++ {
		s := b.samples[i]
		if s.ok {
			oks++
			okLatency += s.latency
		} else {
			fails++
		}
	}
	if float64(fails)/float64(b.n) >= b.pol.TripErrorRate {
		b.tripLocked()
		return
	}
	if b.pol.TripLatency > 0 && oks > 0 && okLatency/time.Duration(oks) > b.pol.TripLatency {
		b.tripLocked()
	}
}

// tripLocked opens the breaker and starts the cooldown.
func (b *CircuitBreaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probing = false
	b.probeOKs = 0
	b.trips++
}

// resetLocked closes the breaker and clears the window so stale failures
// cannot immediately re-trip it.
func (b *CircuitBreaker) resetLocked() {
	b.state = BreakerClosed
	b.idx, b.n = 0, 0
	b.probing = false
	b.probeOKs = 0
}
