package netmp

import (
	"net"
	"strings"
	"testing"
	"time"
)

// TestCrashRestartSameAddress proves the chaos-timeline origin contract:
// Crash refuses new dials and resets admitted connections, Restart
// brings the *same* address back, and a client that kept the address
// (the way breakers key origins) reconnects and fetches successfully.
func TestCrashRestartSameAddress(t *testing.T) {
	s, err := NewChunkServer(smallVideo(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr()

	conn, r := dialServer(t, s)
	if got := doManifest(t, conn, r); !strings.Contains(got, "200") {
		t.Fatalf("pre-crash manifest: %q", got)
	}

	s.Crash()
	if !s.Crashed() {
		t.Fatal("Crashed() = false after Crash")
	}
	if got := s.Addr(); got != addr {
		t.Fatalf("Addr changed across crash: %q -> %q", addr, got)
	}
	// The admitted connection was reset and new dials must be refused.
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("read on reset connection succeeded")
	}
	if c, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("dial succeeded while crashed")
	}
	if n := s.CurrentConns(); n != 0 {
		t.Fatalf("CurrentConns = %d after crash quiesce", n)
	}

	// Crash is idempotent.
	s.Crash()

	if err := s.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if s.Crashed() {
		t.Fatal("Crashed() = true after Restart")
	}
	if got := s.Addr(); got != addr {
		t.Fatalf("Addr changed across restart: %q -> %q", addr, got)
	}
	conn2, r2 := dialServer(t, s)
	if got := doManifest(t, conn2, r2); !strings.Contains(got, "200") {
		t.Fatalf("post-restart manifest: %q", got)
	}
}

// TestRestartRequiresCrash rejects Restart on a live server — the only
// legal lifecycle is crash → restart.
func TestRestartRequiresCrash(t *testing.T) {
	s, err := NewChunkServer(smallVideo(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Restart(); err == nil {
		t.Fatal("Restart on a live server succeeded")
	}
}

// TestCrashRestartFetcherFailover runs a real multi-origin Fetcher
// across a crash window — the breaker cycle the chaos timeline exists to
// exercise: crash the primary path's rank-0 origin mid-session, the
// supervisor redials onto the rank-1 origin and fetches keep verifying;
// then Restart rank-0 and fetches continue against the healed tier. The
// fetcher object is never rebuilt — recovery is purely redial + breaker
// state over the stable origin addresses.
func TestCrashRestartFetcherFailover(t *testing.T) {
	video := smallVideo()
	p0, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p0.Close()
	p1, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()
	ss, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	f, err := NewFetcherOrigins(video, []string{p0.Addr(), p1.Addr()}, []string{ss.Addr()}, BreakerPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if res, err := f.FetchChunk(0, 0, 5*time.Second); err != nil || !res.Verified {
		t.Fatalf("pre-crash fetch: res=%+v err=%v", res, err)
	}

	p0.Crash()
	// The reset triggers a redial, which fails over to the rank-1 origin
	// well inside the redial budget.
	if res, err := f.FetchChunk(1, 0, 5*time.Second); err != nil || !res.Verified {
		t.Fatalf("fetch during crash (rank-1 failover): res=%+v err=%v", res, err)
	}

	if err := p0.Restart(); err != nil {
		t.Fatal(err)
	}
	for c := 2; c < video.NumChunks; c++ {
		if res, err := f.FetchChunk(c, 0, 5*time.Second); err != nil || !res.Verified {
			t.Fatalf("post-restart fetch chunk %d: res=%+v err=%v", c, res, err)
		}
	}
}

// TestSetFaultProbsMidRun flips fault probabilities on a live server —
// the chaos fault-surge lever: a server started clean begins resetting
// every request after the surge, and serves cleanly again after the
// clear, with cumulative FaultStats preserved across both.
func TestSetFaultProbsMidRun(t *testing.T) {
	s, err := NewChunkServer(smallVideo(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func() (string, error) {
		conn, err := net.DialTimeout("tcp", s.Addr(), 2*time.Second)
		if err != nil {
			return "", err
		}
		defer conn.Close()
		conn.SetDeadline(time.Now().Add(3 * time.Second))
		if _, err := conn.Write([]byte("GET /seg-l1-c0.m4s HTTP/1.1\r\nHost: t\r\n\r\n")); err != nil {
			return "", err
		}
		buf := make([]byte, 64)
		n, err := conn.Read(buf)
		return string(buf[:n]), err
	}

	if got, err := get(); err != nil || !strings.Contains(got, "206") {
		t.Fatalf("clean fetch: %q err=%v", got, err)
	}

	s.SetFaultProbs(99, 1.0, 0, 0, 0) // surge: reset every request
	if _, err := get(); err == nil {
		t.Fatal("request survived a 100% reset surge")
	}

	s.SetFaultProbs(99, 0, 0, 0, 0) // clear
	if got, err := get(); err != nil || !strings.Contains(got, "206") {
		t.Fatalf("post-clear fetch: %q err=%v", got, err)
	}

	if st := s.FaultStats(); st.Resets == 0 {
		t.Fatalf("FaultStats lost the surge resets: %+v", st)
	}
}
