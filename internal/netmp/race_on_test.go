//go:build race

package netmp

// raceEnabled reports whether the test binary was built with the race
// detector (which makes sync.Pool intentionally drop puts, so
// zero-allocation assertions over pooled paths only hold without it).
const raceEnabled = true
