package netmp

import (
	"context"
	"testing"
	"time"

	"mpdash/internal/dash"
)

func TestTokenBucketRate(t *testing.T) {
	tb := NewTokenBucket(100_000, 1) // 100 kB/s, no burst
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 10; i++ {
		if err := tb.Take(ctx, 2000); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 20 kB at 100 kB/s ≈ 200 ms.
	if elapsed < 120*time.Millisecond || elapsed > 600*time.Millisecond {
		t.Errorf("20kB at 100kB/s took %v, want ≈200ms", elapsed)
	}
}

func TestTokenBucketUnshaped(t *testing.T) {
	tb := NewTokenBucket(0, 0)
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if err := tb.Take(context.Background(), 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("unshaped bucket blocked")
	}
}

func TestTokenBucketCancel(t *testing.T) {
	tb := NewTokenBucket(1, 1) // 1 B/s: hopeless
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// The first take is granted on credit; the second must block on the
	// huge debt and get cancelled.
	if err := tb.Take(ctx, 1_000_000); err != nil {
		t.Fatalf("credit take failed: %v", err)
	}
	if err := tb.Take(ctx, 1); err == nil {
		t.Error("cancelled Take returned nil")
	}
}

func TestChunkBodyDeterministic(t *testing.T) {
	if ChunkBody(3, 2, 100) != ChunkBody(3, 2, 100) {
		t.Error("not deterministic")
	}
	// Different coordinates give different streams (overwhelmingly).
	same := 0
	for off := int64(0); off < 256; off++ {
		if ChunkBody(1, 1, off) == ChunkBody(1, 2, off) {
			same++
		}
	}
	if same > 32 {
		t.Errorf("%d/256 collisions between levels", same)
	}
}

// rig starts two servers (primary/secondary) and a fetcher.
func rig(t *testing.T, primaryMbps, secondaryMbps float64) (*ChunkServer, *ChunkServer, *Fetcher) {
	t.Helper()
	video := dash.BigBuckBunny()
	ps, err := NewChunkServer(video, primaryMbps)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewChunkServer(video, secondaryMbps)
	if err != nil {
		ps.Close()
		t.Fatal(err)
	}
	f, err := NewFetcher(video, ps.Addr(), ss.Addr())
	if err != nil {
		ps.Close()
		ss.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		f.Close()
		ps.Close()
		ss.Close()
	})
	return ps, ss, f
}

func TestLooseDeadlinePrimaryOnly(t *testing.T) {
	_, ss, f := rig(t, 16, 16)
	// Level-0 chunk ≈ 290 kB: ≈150 ms at 16 Mbps. Deadline 3 s: the
	// secondary path must stay dark.
	res, err := f.FetchChunk(0, 0, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("payload verification failed")
	}
	if res.PrimaryBytes+res.SecondaryBytes != res.Size {
		t.Errorf("bytes %d+%d != size %d", res.PrimaryBytes, res.SecondaryBytes, res.Size)
	}
	if res.SecondaryBytes != 0 {
		t.Errorf("secondary carried %d bytes under a loose deadline", res.SecondaryBytes)
	}
	if res.MissedBy != 0 {
		t.Errorf("missed by %v", res.MissedBy)
	}
	if ss.ServedBytes() != 0 {
		t.Errorf("secondary server served %d", ss.ServedBytes())
	}
}

func TestTightDeadlineEngagesSecondary(t *testing.T) {
	_, _, f := rig(t, 2, 16)
	// Level-2 chunk ≈ 735 kB: ≈2.9 s on the 2 Mbps primary alone.
	// Deadline 1.5 s forces the secondary in.
	res, err := f.FetchChunk(1, 2, 1500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("payload verification failed")
	}
	if res.SecondaryBytes == 0 {
		t.Error("secondary never engaged under deadline pressure")
	}
	if res.PrimaryBytes == 0 {
		t.Error("primary idle?")
	}
	if res.PrimaryBytes+res.SecondaryBytes != res.Size {
		t.Errorf("bytes %d+%d != size %d", res.PrimaryBytes, res.SecondaryBytes, res.Size)
	}
	if res.MissedBy > 700*time.Millisecond {
		t.Errorf("missed deadline by %v", res.MissedBy)
	}
}

func TestSequentialChunksOnSameConnections(t *testing.T) {
	_, _, f := rig(t, 16, 16)
	for i := 0; i < 3; i++ {
		res, err := f.FetchChunk(i, 0, 2*time.Second)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !res.Verified || res.PrimaryBytes+res.SecondaryBytes != res.Size {
			t.Fatalf("chunk %d bad result: %+v", i, res)
		}
	}
}

func TestServerRejectsBadPaths(t *testing.T) {
	video := dash.BigBuckBunny()
	s, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f, err := NewFetcher(video, s.Addr(), s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Out-of-range chunk index panics at the video layer (caller bug).
	defer func() {
		if recover() == nil {
			t.Error("out-of-range chunk did not panic")
		}
	}()
	f.FetchChunk(10_000, 0, time.Second)
}

func TestNewFetcherErrors(t *testing.T) {
	video := dash.BigBuckBunny()
	if _, err := NewFetcher(video, "127.0.0.1:1", "127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
	if _, err := NewFetcher(nil, "x", "y"); err == nil {
		t.Error("nil video accepted")
	}
}

func TestNewChunkServerValidation(t *testing.T) {
	if _, err := NewChunkServer(nil, 1); err == nil {
		t.Error("nil video accepted")
	}
}

func TestServerRejectsBadRange(t *testing.T) {
	// An inverted range gets a 416, and the fetcher surfaces it as an
	// unexpected-status error rather than hanging.
	video := dash.BigBuckBunny()
	s, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f, err := NewFetcher(video, s.Addr(), s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := f.requestRange(f.primary, 0, 0, 500, 100); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestFetchManifest(t *testing.T) {
	video := dash.BigBuckBunny()
	s, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, sizes, err := FetchManifest(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumChunks != video.NumChunks || len(got.Levels) != len(video.Levels) {
		t.Fatalf("reconstructed video mismatch: %+v", got)
	}
	if got.ChunkDuration != video.ChunkDuration {
		t.Errorf("chunk duration %v", got.ChunkDuration)
	}
	// Manifest sizes must match the server's actual chunk sizes.
	for lvl := range video.Levels {
		for c := 0; c < video.NumChunks; c += 37 {
			if sizes[lvl][c] != video.ChunkSize(c, lvl) {
				t.Fatalf("size mismatch at level %d chunk %d", lvl, c)
			}
		}
	}
	if _, _, err := FetchManifest("127.0.0.1:1"); err == nil {
		t.Error("dead server accepted")
	}
}

func TestManifestThenChunksOnSameServer(t *testing.T) {
	// Full bootstrap: learn the asset from the manifest, then fetch a
	// chunk with the sizes it declared.
	video := dash.BigBuckBunny()
	s, err := NewChunkServer(video, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	remote, sizes, err := FetchManifest(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFetcher(video, s.Addr(), s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := f.FetchChunk(3, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != sizes[1][3] {
		t.Errorf("fetched size %d != manifest size %d", res.Size, sizes[1][3])
	}
	if !res.Verified {
		t.Error("verification failed")
	}
	_ = remote
}
