package netmp

import (
	"math"
	"testing"
)

func TestCacheHintPolicyDefaults(t *testing.T) {
	p := CacheHintPolicy{}.withDefaults()
	if p.Damp != 0.7 || p.HotThreshold != 0.75 || p.Alpha != 0.3 {
		t.Errorf("defaults = %+v", p)
	}
	// Out-of-range knobs snap back to defaults, explicit valid ones hold.
	p = CacheHintPolicy{Damp: 1.5, HotThreshold: -1, Alpha: 2}.withDefaults()
	if p.Damp != 0.7 || p.HotThreshold != 0.75 || p.Alpha != 0.3 {
		t.Errorf("out-of-range knobs kept: %+v", p)
	}
	p = CacheHintPolicy{Damp: 0.5, HotThreshold: 0.9, Alpha: 0.1}.withDefaults()
	if p.Damp != 0.5 || p.HotThreshold != 0.9 || p.Alpha != 0.1 {
		t.Errorf("valid knobs overridden: %+v", p)
	}
}

func TestCacheHintStateLifecycle(t *testing.T) {
	var h cacheHintState
	// A session that has never seen a header predicts 0 for everything.
	if got := h.hitProb(0); got != 0 {
		t.Fatalf("virgin hitProb = %v", got)
	}
	h.beginChunk(0)
	// First observation seeds the prior outright and is chunk 0's first.
	first, prior := h.observe(0, true, 0.3)
	if !first || prior != 1 {
		t.Fatalf("first observe = (%v, %v)", first, prior)
	}
	// The chunk's own state is now exact: a known hit is probability 1.
	if got := h.hitProb(0); got != 1 {
		t.Errorf("known-hit chunk hitProb = %v", got)
	}
	// A second segment's header for the same chunk is not "first" again.
	if again, _ := h.observe(0, true, 0.3); again {
		t.Error("second observation of the chunk reported first=true")
	}
	// A different chunk falls back to the session prior.
	if got := h.hitProb(7); got != 1 {
		t.Errorf("prior-backed hitProb = %v", got)
	}

	// New chunk, miss header: exact 0 for the chunk, EWMA for the prior.
	h.beginChunk(1)
	first, prior = h.observe(1, false, 0.3)
	if !first {
		t.Error("new chunk's first observation not flagged")
	}
	if want := 1 + 0.3*(0-1.0); math.Abs(prior-want) > 1e-12 {
		t.Errorf("EWMA prior = %v, want %v", prior, want)
	}
	if got := h.hitProb(1); got != 0 {
		t.Errorf("known-miss chunk hitProb = %v", got)
	}
	if got := h.hitProb(2); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("other-chunk prior = %v, want 0.7", got)
	}
	// beginChunk resets per-chunk knowledge but keeps the prior.
	h.beginChunk(2)
	if got := h.hitProb(2); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("fresh chunk should read the prior, got %v", got)
	}
}

func TestCacheHotThreshold(t *testing.T) {
	f := &Fetcher{}
	f.chint.beginChunk(0)
	f.chint.observe(0, true, 0.3)
	if !f.cacheHot(0) {
		t.Error("known-hit chunk (prob 1) not hot at default threshold 0.75")
	}
	if p := f.cacheHitProb(0); p != 1 {
		t.Errorf("cacheHitProb = %v", p)
	}
	// Another chunk rides the prior (1.0 here) — still hot.
	if !f.cacheHot(5) {
		t.Error("prior-backed hot chunk not hot")
	}
	// Disabling the policy zeroes both decisions.
	f.CacheHint.Disabled = true
	if f.cacheHot(0) || f.cacheHitProb(0) != 0 {
		t.Error("disabled policy still reports cache heat")
	}
	// A raised threshold above the prior parks the hedge suppression.
	g := &Fetcher{CacheHint: CacheHintPolicy{HotThreshold: 0.8}}
	g.chint.beginChunk(0)
	g.chint.observe(0, true, 0.3)
	g.chint.beginChunk(1)
	g.chint.observe(1, false, 0.3) // prior falls to 0.7 < 0.8
	if g.cacheHot(2) {
		t.Error("prior 0.7 hot under threshold 0.8")
	}
}
