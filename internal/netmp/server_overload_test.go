package netmp

// ChunkServer overload-protection tests: max-connection admission
// control (excess accepts get 503 without disturbing admitted traffic),
// per-connection request caps, graceful drain that finishes in-flight
// bodies, and the client-side handling of 503 rejections.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"mpdash/internal/dash"
)

// dialServer opens a raw client connection to the server.
func dialServer(t *testing.T, s *ChunkServer) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", s.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn)
}

// doManifest issues a manifest request on an open connection and returns
// the response status line.
func doManifest(t *testing.T, conn net.Conn, r *bufio.Reader) string {
	t.Helper()
	conn.SetDeadline(time.Now().Add(3 * time.Second))
	if _, err := io.WriteString(conn, "GET /manifest.mpd HTTP/1.1\r\nHost: t\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	status, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	// Drain headers and body so the connection is reusable.
	var length int
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if h = strings.TrimSpace(h); h == "" {
			break
		}
		fmt.Sscanf(h, "Content-Length: %d", &length)
	}
	if _, err := io.CopyN(io.Discard, r, int64(length)); err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(status)
}

func TestMaxConnsRejectsExcessWithout503ingAdmitted(t *testing.T) {
	video := dash.BigBuckBunny()
	s, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetLimits(ServerLimits{MaxConns: 2})

	// Two admitted connections, proven live by a served request each.
	c1, r1 := dialServer(t, s)
	if st := doManifest(t, c1, r1); !strings.Contains(st, "200") {
		t.Fatalf("admitted conn 1 got %q", st)
	}
	c2, r2 := dialServer(t, s)
	if st := doManifest(t, c2, r2); !strings.Contains(st, "200") {
		t.Fatalf("admitted conn 2 got %q", st)
	}

	// The third connection must be turned away with a 503 and closed.
	c3, r3 := dialServer(t, s)
	c3.SetDeadline(time.Now().Add(3 * time.Second))
	status, err := r3.ReadString('\n')
	if err != nil {
		t.Fatalf("reading 503: %v", err)
	}
	if !strings.Contains(status, "503") {
		t.Fatalf("over-limit conn got %q, want 503", status)
	}

	// Admitted connections keep working unimpeded.
	if st := doManifest(t, c1, r1); !strings.Contains(st, "200") {
		t.Errorf("admitted conn stalled after a rejection: %q", st)
	}
	if got := s.OverloadStats().RejectedConns; got != 1 {
		t.Errorf("RejectedConns = %d, want 1", got)
	}

	// Freeing a slot admits the next dial.
	c2.Close()
	time.Sleep(50 * time.Millisecond) // let the handler deregister
	c4, r4 := dialServer(t, s)
	if st := doManifest(t, c4, r4); !strings.Contains(st, "200") {
		t.Errorf("post-release conn got %q", st)
	}
}

func TestMaxRequestsPerConnCapsKeepAlive(t *testing.T) {
	video := dash.BigBuckBunny()
	s, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetLimits(ServerLimits{MaxRequestsPerConn: 2})

	conn, r := dialServer(t, s)
	for i := 0; i < 2; i++ {
		if st := doManifest(t, conn, r); !strings.Contains(st, "200") {
			t.Fatalf("request %d got %q", i+1, st)
		}
	}
	// The third request on the same connection must hit a closed socket.
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	io.WriteString(conn, "GET /manifest.mpd HTTP/1.1\r\nHost: t\r\n\r\n")
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("capped connection served a third request")
	}
	if got := s.OverloadStats().CappedConns; got != 1 {
		t.Errorf("CappedConns = %d, want 1", got)
	}
	// A fresh connection is unaffected.
	c2, r2 := dialServer(t, s)
	if st := doManifest(t, c2, r2); !strings.Contains(st, "200") {
		t.Errorf("fresh conn got %q", st)
	}
}

func TestDrainFinishesInflightBody(t *testing.T) {
	if testing.Short() {
		t.Skip("drain timing test in -short mode")
	}
	video := dash.BigBuckBunny()
	// 4 Mbps: after the shaper's 64 KB burst, a 200 KB body needs ~270ms
	// more — long enough that Drain arrives mid-body.
	s, err := NewChunkServer(video, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, r := dialServer(t, s)
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	const want = 200_000
	fmt.Fprintf(conn, "GET /seg-l1-c0.m4s HTTP/1.1\r\nHost: t\r\nRange: bytes=0-%d\r\n\r\n", want-1)
	if _, err := r.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	for {
		h, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(h) == "" {
			break
		}
	}

	// Read the shaped body in the background while Drain runs.
	bodyN := make(chan int64, 1)
	go func() {
		n, _ := io.Copy(io.Discard, r)
		bodyN <- n
	}()
	time.Sleep(60 * time.Millisecond) // body under way
	done := make(chan error, 1)
	go func() { done <- s.Drain() }()

	// The in-flight body must complete in full despite the drain.
	select {
	case n := <-bodyN:
		if n != want {
			t.Errorf("drained body delivered %d bytes, want %d", n, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("body never finished under drain")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned")
	}
	if !s.Draining() {
		t.Error("Draining() false after Drain")
	}
	// New dials are refused once draining.
	if c, err := net.DialTimeout("tcp", s.Addr(), 500*time.Millisecond); err == nil {
		c.Close()
		t.Error("drained server accepted a new connection")
	}
}

func TestDrainKicksIdleKeepAlives(t *testing.T) {
	video := dash.BigBuckBunny()
	s, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, r := dialServer(t, s)
	if st := doManifest(t, conn, r); !strings.Contains(st, "200") {
		t.Fatalf("setup request got %q", st)
	}
	// The connection now idles in readRequest; Drain must not hang on it.
	done := make(chan error, 1)
	go func() { done <- s.Drain() }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain hung on an idle keep-alive connection")
	}
}

func TestFetcherRidesOut503Rejections(t *testing.T) {
	if testing.Short() {
		t.Skip("overload ride-through test in -short mode")
	}
	// The primary origin has a single connection slot, held by a squatter
	// for the first 150ms: the fetcher's requests are answered 503, which
	// must be absorbed as transient retries — not kill the path — and the
	// chunk completes once the slot frees.
	video := dash.BigBuckBunny()
	ps, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	ss, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	ps.SetLimits(ServerLimits{MaxConns: 1})
	squatter, sr := dialServer(t, ps)
	if st := doManifest(t, squatter, sr); !strings.Contains(st, "200") {
		t.Fatalf("squatter got %q", st)
	}

	f, err := NewFetcher(video, ps.Addr(), ss.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pol := fastRetry()
	pol.MaxRedials = 100   // overload is transient; keep knocking
	pol.RequeueBudget = 50 // rejected segments bounce between paths meanwhile
	f.Retry = pol

	time.AfterFunc(150*time.Millisecond, func() { squatter.Close() })
	res, err := f.FetchChunk(0, 2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	checkComplete(t, res)
	if ps.OverloadStats().RejectedConns == 0 {
		t.Error("squatter never forced a rejection; the test proves nothing")
	}
	if st := f.PathStats()[0]; st.State == PathDown {
		t.Error("primary declared down over transient 503s")
	}
}
