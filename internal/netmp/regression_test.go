package netmp

// Regression tests for fixed defects: the secondary controller's one-
// segment-per-tick throughput cap, silent Range mis-parses, and
// case-sensitive header matching.

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"mpdash/internal/dash"
)

// TestSecondarySaturatesUnderPressure pins the fix for the controller
// loop that claimed at most one 32 KiB segment per 20 ms tick (~13 Mbps
// ceiling regardless of capacity). With a starved primary and an
// unshaped secondary under an immediate deadline, the secondary must
// move strictly more segments than one-per-tick could.
func TestSecondarySaturatesUnderPressure(t *testing.T) {
	_, _, f := rig(t, 1, 0) // primary 1 Mbps, secondary unshaped
	res, err := f.FetchChunk(0, 4, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("verification failed")
	}
	segs := int(res.SecondaryBytes / DefaultSegmentSize)
	ticks := int(res.Duration / controllerTick)
	if segs <= ticks+2 {
		t.Errorf("secondary moved %d segments in %d ticks (%v): still rate-capped at one per tick",
			segs, ticks, res.Duration)
	}
}

// rawRequest sends one raw HTTP request and returns the status line.
func rawRequest(t *testing.T, addr, req string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.WriteString(conn, req); err != nil {
		t.Fatal(err)
	}
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("reading status: %v", err)
	}
	return strings.TrimSpace(status)
}

func TestMalformedRangeRejected(t *testing.T) {
	video := dash.BigBuckBunny()
	s, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, rng := range []string{
		"bytes=abc-100", // non-numeric start: used to be silently read as 0
		"bytes=0-xyz",   // non-numeric end
		"bytes=100",     // missing dash
		"smoots=0-100",  // wrong unit
	} {
		req := fmt.Sprintf("GET /seg-l1-c0000.m4s HTTP/1.1\r\nHost: x\r\nRange: %s\r\n\r\n", rng)
		if status := rawRequest(t, s.Addr(), req); !strings.Contains(status, "400") {
			t.Errorf("Range %q: status %q, want 400", rng, status)
		}
	}
}

func TestHeaderFieldsCaseInsensitive(t *testing.T) {
	// RFC 9110 field names are case-insensitive: a lowercase range header
	// must be honored, not ignored.
	video := dash.BigBuckBunny()
	s, err := NewChunkServer(video, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	req := "GET /seg-l1-c0000.m4s HTTP/1.1\r\nHost: x\r\nrange: BYTES=0-99\r\n\r\n"
	if status := rawRequest(t, s.Addr(), req); !strings.Contains(status, "206") {
		t.Errorf("lowercase range header: status %q, want 206", status)
	}
}

func TestPathStatsAccessor(t *testing.T) {
	_, _, f := rig(t, 0, 0)
	if _, err := f.FetchChunk(0, 0, time.Second); err != nil {
		t.Fatal(err)
	}
	st := f.PathStats()
	if len(st) != 2 {
		t.Fatalf("got %d paths", len(st))
	}
	if st[0].Name != "primary" || st[1].Name != "secondary" {
		t.Errorf("names %q/%q", st[0].Name, st[1].Name)
	}
	if st[0].State != PathUp || st[1].State != PathUp {
		t.Errorf("healthy rig reports states %v/%v", st[0].State, st[1].State)
	}
	if st[0].Bytes == 0 {
		t.Error("primary byte count not tracked")
	}
	if st[0].Retries != 0 || st[0].Redials != 0 || st[0].DownFor != 0 {
		t.Errorf("healthy rig reports faults: %+v", st[0])
	}
	if s := PathDown.String(); s != "down" {
		t.Errorf("PathDown.String() = %q", s)
	}
}
