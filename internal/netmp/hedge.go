package netmp

// Deadline-aware hedged segment requests. A Holt-Winters predictor (the
// same estimator the scheduler uses for path throughput, §6) tracks the
// fetcher's per-segment service rate; when a segment's in-flight time
// exceeds HedgePolicy.Factor times the predicted service time — its read
// pace projects a deadline miss — a duplicate request is issued to a
// healthy backup origin of the same path over a fresh connection. The
// first verified result wins and the loser is cancelled (its connection
// closed mid-read); a wasted-byte budget bounds how much duplicate
// traffic a session may spend on hedging. With the chunk deadline near,
// the hedge arms earlier: it never waits past the last instant a backup
// could still make the deadline.

import (
	"bufio"
	"net"
	"sync"
	"time"

	"mpdash/internal/obs"
	"mpdash/internal/predict"
)

// HedgePolicy bounds hedged requests. The zero value selects the
// defaults noted on each field; hedging engages only on paths with more
// than one origin.
type HedgePolicy struct {
	// Disabled turns hedging off entirely.
	Disabled bool
	// Factor is the pace multiple that arms a hedge: a segment in flight
	// longer than Factor × the Holt-Winters-predicted service time is
	// hedged. Default 2.
	Factor float64
	// MinDelay floors the hedge arming delay so a noisy first estimate
	// cannot hedge instantly. Default 10ms.
	MinDelay time.Duration
	// BudgetBytes caps the payload bytes wasted on hedge losers across
	// the fetcher's lifetime; once spent, no further hedges are issued.
	// Default 4 MiB.
	BudgetBytes int64
}

func (p HedgePolicy) withDefaults() HedgePolicy {
	if p.Factor <= 0 {
		p.Factor = 2
	}
	if p.MinDelay <= 0 {
		p.MinDelay = 10 * time.Millisecond
	}
	if p.BudgetBytes <= 0 {
		p.BudgetBytes = 4 << 20
	}
	return p
}

// hedgeState is the fetcher-wide hedging runtime: the pace predictor and
// the session counters. Safe for concurrent use.
type hedgeState struct {
	mu        sync.Mutex
	hw        *predict.HoltWinters
	issued    int64
	won       int64
	cancelled int64
	wasted    int64
}

// observe feeds one completed segment's service rate into the predictor.
func (h *hedgeState) observe(bytes int64, d time.Duration) {
	if bytes <= 0 || d <= 0 {
		return
	}
	h.mu.Lock()
	if h.hw == nil {
		h.hw = predict.NewDefaultHoltWinters()
	}
	h.hw.Observe(float64(bytes) / d.Seconds())
	h.mu.Unlock()
}

// seed warm-starts the predictor at a board-supplied rate (bytes/s)
// with zero trend. A no-op once a real sample exists: local observation
// always beats the population prior.
func (h *hedgeState) seed(rate float64) {
	if rate <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hw == nil {
		h.hw = predict.NewDefaultHoltWinters()
	}
	if h.hw.Samples() == 0 {
		h.hw.Seed(rate)
	}
}

// predictedRate returns the one-step-ahead service-rate forecast in
// bytes/s, or 0 before any sample exists.
func (h *hedgeState) predictedRate() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hw == nil {
		return 0
	}
	return h.hw.Predict()
}

// predictedServiceTime returns the forecast transfer time for a segment
// of n bytes, or 0 before any sample exists.
func (h *hedgeState) predictedServiceTime(n int64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hw == nil {
		return 0
	}
	rate := h.hw.Predict()
	if rate <= 0 {
		return 0
	}
	return time.Duration(float64(n) / rate * float64(time.Second))
}

// budgetLeft reports whether the wasted-byte budget still admits hedges.
func (h *hedgeState) budgetLeft(budget int64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.wasted < budget
}

func (h *hedgeState) noteIssued() {
	h.mu.Lock()
	h.issued++
	h.mu.Unlock()
}

func (h *hedgeState) noteWon() {
	h.mu.Lock()
	h.won++
	h.mu.Unlock()
}

// noteCancelled records one cancelled loser and its wasted partial bytes.
func (h *hedgeState) noteCancelled(wastedBytes int64) {
	h.mu.Lock()
	h.cancelled++
	h.wasted += wastedBytes
	h.mu.Unlock()
}

// noteWasted records loser bytes that were spent without a cancellation
// (the loser failed on its own).
func (h *hedgeState) noteWasted(wastedBytes int64) {
	h.mu.Lock()
	h.wasted += wastedBytes
	h.mu.Unlock()
}

// snapshot returns the cumulative hedge counters.
func (h *hedgeState) snapshot() (issued, won, cancelled, wasted int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.issued, h.won, h.cancelled, h.wasted
}

// hedgeDelay computes how long to let the primary attempt run before
// arming the hedge: Factor × the predicted service time (half the I/O
// timeout before any sample exists), floored at MinDelay — and, deadline
// permitting, never past the last instant a backup fetch could still
// finish inside the chunk's α·D window.
func (f *Fetcher) hedgeDelay(pol HedgePolicy, retry RetryPolicy, segBytes int64, dlAt time.Time) time.Duration {
	predicted := f.hedge.predictedServiceTime(segBytes)
	if predicted <= 0 {
		predicted = retry.IOTimeout / 2
	}
	delay := time.Duration(pol.Factor * float64(predicted))
	if !dlAt.IsZero() {
		if latest := dlAt.Sub(f.clk.now()) - predicted; latest < delay {
			delay = latest
		}
	}
	if delay < pol.MinDelay {
		delay = pol.MinDelay
	}
	return delay
}

// segOutcome is one side of a hedge race.
type segOutcome struct {
	n     int64
	err   error
	hedge bool
}

// fetchSegHedged downloads one segment on pc with hedging: the
// supervised primary attempt races a one-shot duplicate to a backup
// origin once the pace projects a miss. Exactly one result is returned
// to the caller — the ledger sees a single completion — and the loser's
// bytes are charged to the hedge budget. Falls back to the plain
// supervised fetch when hedging is disabled, unaffordable, or no healthy
// backup origin exists.
func (f *Fetcher) fetchSegHedged(pc *pathConn, pol RetryPolicy, index, level int, from, to int64, dlAt time.Time) (int64, error) {
	hp := f.Hedge.withDefaults()
	var backup *origin
	// A cache-hot chunk's slow first bytes are the edge's singleflight
	// fill; a duplicate request would join that fill, not beat it, so
	// hedging is suppressed above the hot threshold.
	if !f.Hedge.Disabled && !f.cacheHot(index) && f.hedge.budgetLeft(hp.BudgetBytes) {
		if b, ok := pc.set.backup(); ok {
			backup = b
		}
	}
	start := f.clk.now()
	if backup == nil {
		n, err := f.fetchSegSupervised(pc, pol, index, level, from, to)
		if err == nil {
			f.observeSegRate(n, f.clk.now().Sub(start))
		}
		return n, err
	}

	resCh := make(chan segOutcome, 2)
	go func() {
		n, err := f.fetchSegSupervised(pc, pol, index, level, from, to)
		resCh <- segOutcome{n: n, err: err}
	}()

	delay := f.hedgeDelay(hp, pol, to-from+1, dlAt)
	// The arm trigger rides the shared timer wheel when one is wired
	// (f.wheel.After is nil-safe and falls back to a runtime timer).
	armCh, armTimer := f.wheel.After(delay)
	var first segOutcome
	select {
	case first = <-resCh:
		// The primary finished before the hedge armed — the common case.
		armTimer.Stop()
		if first.err == nil {
			f.observeSegRate(first.n, f.clk.now().Sub(start))
		}
		return first.n, first.err
	case <-armCh:
	}

	// Pace projects a miss: issue the duplicate to the backup origin.
	f.hedge.noteIssued()
	f.emitHedge(obs.NewEvent("hedge.arm").WithPath(pc.name).
		WithStr("origin", backup.addr).WithNum("delay_s", delay.Seconds()))
	hsp := f.curTrace().StartSpan(obs.CatHedge, "hedge")
	hsp.SetPath(pc.name)
	hsp.SetStr("origin", backup.addr)
	defer hsp.End()
	hedgeCancel := make(chan struct{})
	go func() {
		n, err := f.hedgeFetch(backup, pol, index, level, from, to, hedgeCancel)
		resCh <- segOutcome{n: n, err: err, hedge: true}
	}()

	first = <-resCh
	if first.err == nil && !first.hedge {
		// Primary won: cancel the hedge and drain it.
		close(hedgeCancel)
		second := <-resCh
		f.hedge.noteCancelled(second.n)
		f.emitHedge(obs.NewEvent("hedge.cancel").WithPath(pc.name).
			WithNum("wasted_bytes", float64(second.n)))
		f.observeSegRate(first.n, f.clk.now().Sub(start))
		return first.n, nil
	}
	if first.err == nil && first.hedge {
		// Hedge won: cancel the supervised attempt (close its conn; the
		// supervised loop sees the flag and returns errHedgeCancelled
		// without charging a fault), drain it, and restore the path's
		// connection for the next segment.
		pc.cancelForHedge()
		second := <-resCh
		f.hedge.noteWon()
		f.hedge.noteCancelled(second.n)
		f.emitHedge(obs.NewEvent("hedge.win").WithPath(pc.name).
			WithNum("wasted_bytes", float64(second.n)))
		if !pc.isDown() {
			pc.redial(pol) // best effort; a failure marks the path down
		}
		f.observeSegRate(first.n, f.clk.now().Sub(start))
		return first.n, nil
	}
	// First finisher failed; the other side may still deliver.
	second := <-resCh
	if second.err == nil {
		if second.hedge {
			f.hedge.noteWon()
			f.emitHedge(obs.NewEvent("hedge.win").WithPath(pc.name).
				WithNum("wasted_bytes", float64(first.n)))
		}
		f.hedge.noteWasted(first.n)
		f.observeSegRate(second.n, f.clk.now().Sub(start))
		return second.n, nil
	}
	// Both failed: charge the hedge side's partial bytes to the budget
	// and surface the supervised attempt's error so the ledger requeue
	// semantics are exactly those of the unhedged path.
	sup, hed := first, second
	if first.hedge {
		sup, hed = second, first
	}
	f.hedge.noteWasted(hed.n)
	f.emitHedge(obs.NewEvent("hedge.lose").WithPath(pc.name).
		WithNum("wasted_bytes", float64(hed.n)))
	return sup.n, sup.err
}

// emitHedge journals one hedge-race event through the fetcher's sink.
func (f *Fetcher) emitHedge(e obs.Event) {
	if fo := f.obsHandles(); fo != nil && fo.sink != nil {
		fo.sink.Emit(e)
	}
}

// hedgeFetch performs the one-shot duplicate request on a fresh
// connection to the backup origin. The outcome feeds the backup's
// circuit breaker; closing cancel aborts the transfer mid-read.
func (f *Fetcher) hedgeFetch(o *origin, pol RetryPolicy, index, level int, from, to int64, cancel <-chan struct{}) (int64, error) {
	t0 := f.clk.now()
	conn, err := net.DialTimeout("tcp", o.addr, pol.IOTimeout)
	if err != nil {
		o.breaker.RecordFailure(err)
		return 0, err
	}
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-cancel:
			conn.Close()
		case <-done:
		}
	}()
	defer conn.Close()
	hc := &pathConn{name: "hedge", conn: conn, r: bufio.NewReader(conn)}
	n, verified, err := f.requestRange(hc, index, level, from, to)
	if err == nil && !verified {
		err = errCorruptPayload
	}
	o.recordOutcome(err, f.clk.now().Sub(t0))
	if err != nil {
		return n, err
	}
	return n, nil
}
