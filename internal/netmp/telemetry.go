package netmp

// Telemetry wiring. Instrument hangs an obs.Telemetry off the fetcher,
// streamer, or server after construction; everything else in the package
// stays telemetry-agnostic. Two mechanisms keep the hot path at one
// branch when telemetry is off:
//
//   - Counters a component already maintains under its own mutex (path
//     stats, origin breakers, hedge totals, server overload/fault stats)
//     are exposed as scrape-time CounterFunc/GaugeFunc collectors — the
//     running code is not touched at all.
//   - Cold per-chunk points (start/done/fail, first byte, secondary
//     engage/stand-down) emit through the immutable *fetcherObs handle
//     published here; a nil handle no-ops.

import (
	"sync"
	"sync/atomic"
	"time"

	"mpdash/internal/obs"
)

// fetcherObs bundles the fetcher's inline telemetry handles. Immutable
// once published by Instrument; all methods are nil-safe so call sites
// need no guard beyond the single obsHandles read per chunk.
type fetcherObs struct {
	sink obs.Sink

	chunkDur     *obs.Histogram
	chunkSlack   *obs.Histogram
	firstByte    *obs.Histogram
	chunksMet    *obs.Counter
	chunksMissed *obs.Counter
	chunksFailed *obs.Counter
	engages      *obs.Counter
	standdowns   *obs.Counter
	aborts       *obs.Counter
	abortWaste   *obs.Counter
}

// Instrument wires the fetcher to t: chunk histograms and counters on
// the registry, scrape-time collectors for the path/origin/hedge stats,
// and journal events for every scheduler decision. Call once, after
// construction and before fetching.
func (f *Fetcher) Instrument(t *obs.Telemetry) {
	if t == nil {
		return
	}
	fo := newFetcherObs(t)
	for _, pc := range []*pathConn{f.primary, f.secondary} {
		instrumentPath(t, pc)
	}
	registerHedgeMetrics(t.Registry, &f.hedge)
	f.obsMu.Lock()
	f.fobs = fo
	f.obsMu.Unlock()
}

// Instrument wires the multi-path fetcher to t: the embedded pair plus
// every extra secondary.
func (m *MultiFetcher) Instrument(t *obs.Telemetry) {
	if t == nil {
		return
	}
	m.Fetcher.Instrument(t)
	for _, pc := range m.extra {
		instrumentPath(t, pc)
	}
}

func newFetcherObs(t *obs.Telemetry) *fetcherObs {
	r := t.Registry
	chunks := func(result string) *obs.Counter {
		return r.Counter("mpdash_chunks_total",
			"Chunk fetches by outcome (met/missed the deadline, or failed).",
			obs.Labels{"result": result})
	}
	toggles := func(action string) *obs.Counter {
		return r.Counter("mpdash_secondary_toggles_total",
			"Secondary-path scheduler decisions (Algorithm 1 engage/stand-down).",
			obs.Labels{"action": action})
	}
	return &fetcherObs{
		sink: t,
		chunkDur: r.Histogram("mpdash_chunk_duration_seconds",
			"Chunk download wall time.", obs.DefSecondsBuckets, nil),
		chunkSlack: r.Histogram("mpdash_chunk_deadline_slack_seconds",
			"Chunk deadline minus download time (negative = deadline miss).",
			obs.DefSlackBuckets, nil),
		firstByte: r.Histogram("mpdash_chunk_first_byte_seconds",
			"Chunk request start to first payload byte.", obs.DefSecondsBuckets, nil),
		chunksMet:    chunks("met"),
		chunksMissed: chunks("missed"),
		chunksFailed: chunks("failed"),
		engages:      toggles("engage"),
		standdowns:   toggles("standdown"),
		aborts: r.Counter("netmp_aborts_total",
			"Chunks abandoned mid-flight as doomed (predicted deadline miss).", nil),
		abortWaste: r.Counter("netmp_abort_wasted_bytes_total",
			"Partial payload bytes discarded by doomed-chunk aborts.", nil),
	}
}

// instrumentPath wires one supervised path: journal events through the
// path's sink, and scrape-time collectors over the stats it already
// keeps (per-path byte/retry/redial counters, per-origin breaker state).
func instrumentPath(t *obs.Telemetry, pc *pathConn) {
	pc.setSink(t)
	r := t.Registry
	lbl := obs.Labels{"path": pc.name}
	count := func(name, help string, get func(PathStats) int64) {
		r.CounterFunc(name, help, lbl, func() float64 { return float64(get(pc.stats())) })
	}
	count("mpdash_path_bytes_total", "Verified payload bytes delivered, per path.",
		func(s PathStats) int64 { return s.Bytes })
	count("mpdash_path_retries_total", "Absorbed range-request failures, per path.",
		func(s PathStats) int64 { return s.Retries })
	count("mpdash_path_redials_total", "Reconnect attempts (successful or not), per path.",
		func(s PathStats) int64 { return s.Redials })
	count("mpdash_path_reconnects_total", "Redials that produced a live connection, per path.",
		func(s PathStats) int64 { return s.Reconnects })
	count("mpdash_path_wasted_bytes_total", "Payload bytes discarded from failed or corrupt attempts, per path.",
		func(s PathStats) int64 { return s.WastedBytes })
	count("mpdash_path_failovers_total", "Origin switches, per path.",
		func(s PathStats) int64 { return s.Failovers })
	r.GaugeFunc("mpdash_path_up", "1 while the path lives (up or degraded), 0 once it is down.",
		lbl, func() float64 {
			if pc.isDown() {
				return 0
			}
			return 1
		})
	r.GaugeFunc("mpdash_path_state", "Path supervisor state (0=up, 1=degraded, 2=down).",
		lbl, func() float64 { return float64(pc.stats().State) })
	for _, o := range pc.set.origins {
		o := o
		o.breaker.setObs(t, pc.name, o.addr)
		olbl := obs.Labels{"path": pc.name, "origin": o.addr}
		r.GaugeFunc("mpdash_origin_breaker_state",
			"Origin circuit-breaker state (0=closed, 1=open, 2=half-open).",
			olbl, func() float64 { return float64(o.breaker.State()) })
		r.CounterFunc("mpdash_origin_breaker_trips_total",
			"Times the origin's breaker has opened.",
			olbl, func() float64 { return float64(o.breaker.Trips()) })
	}
}

// registerHedgeMetrics exposes the fetcher-wide hedge totals as
// scrape-time collectors over hedgeState's own counters.
func registerHedgeMetrics(r *obs.Registry, h *hedgeState) {
	pick := func(sel func(issued, won, cancelled, wasted int64) int64) func() float64 {
		return func() float64 { return float64(sel(h.snapshot())) }
	}
	r.CounterFunc("mpdash_hedges_total", "Hedged requests by outcome.",
		obs.Labels{"result": "issued"},
		pick(func(i, _, _, _ int64) int64 { return i }))
	r.CounterFunc("mpdash_hedges_total", "Hedged requests by outcome.",
		obs.Labels{"result": "won"},
		pick(func(_, w, _, _ int64) int64 { return w }))
	r.CounterFunc("mpdash_hedges_total", "Hedged requests by outcome.",
		obs.Labels{"result": "cancelled"},
		pick(func(_, _, c, _ int64) int64 { return c }))
	r.CounterFunc("mpdash_hedge_wasted_bytes_total",
		"Payload bytes spent on hedge losers, charged to the hedge budget.",
		nil, pick(func(_, _, _, w int64) int64 { return w }))
}

// ---- fetcherObs emission (all nil-safe) ----

func (fo *fetcherObs) emitChunkStart(index, level int, size int64, d time.Duration, segs int) {
	if fo == nil || fo.sink == nil {
		return
	}
	fo.sink.Emit(obs.NewEvent("chunk.start").WithChunk(index, level).
		WithNum("size", float64(size)).
		WithNum("deadline_s", d.Seconds()).
		WithNum("segments", float64(segs)))
}

func (fo *fetcherObs) emitChunkDone(index, level int, d time.Duration, res *FetchResult) {
	if fo == nil {
		return
	}
	slack := d - res.Duration
	fo.chunkDur.Observe(res.Duration.Seconds())
	fo.chunkSlack.Observe(slack.Seconds())
	if res.MissedBy > 0 {
		fo.chunksMissed.Inc()
	} else {
		fo.chunksMet.Inc()
	}
	if fo.sink != nil {
		fo.sink.Emit(obs.NewEvent("chunk.done").WithChunk(index, level).
			WithNum("duration_s", res.Duration.Seconds()).
			WithNum("slack_s", slack.Seconds()).
			WithNum("primary_bytes", float64(res.PrimaryBytes)).
			WithNum("secondary_bytes", float64(res.SecondaryBytes)))
	}
}

func (fo *fetcherObs) emitChunkFail(index, level int, err error) {
	if fo == nil {
		return
	}
	fo.chunksFailed.Inc()
	if fo.sink != nil {
		fo.sink.Emit(obs.NewEvent("chunk.fail").WithChunk(index, level).
			WithStr("error", err.Error()))
	}
}

// noteAbort counts one doomed-chunk abort (the journal event is emitted
// by emitAbort, which carries the decision's numbers).
func (fo *fetcherObs) noteAbort() {
	if fo == nil {
		return
	}
	fo.aborts.Inc()
}

// noteAbortWaste charges the partial bytes a doomed-chunk abort threw
// away.
func (fo *fetcherObs) noteAbortWaste(n int64) {
	if fo == nil || n <= 0 {
		return
	}
	fo.abortWaste.Add(n)
}

// emitToggle journals one secondary engage (on=true) or stand-down with
// the numbers that drove the decision: the measured rate (converted to
// bits/s to match the sim scheduler's estimate_bps), the bytes still
// unclaimed, and the remaining α·D window. rate arrives in bytes/s, the
// unit the engagement test runs in.
func (fo *fetcherObs) emitToggle(on bool, reason, path string, index, level int, rate, remaining, window float64) {
	if fo == nil {
		return
	}
	typ := "path.standdown"
	if on {
		typ = "path.engage"
		fo.engages.Inc()
	} else {
		fo.standdowns.Inc()
	}
	if fo.sink == nil {
		return
	}
	e := obs.NewEvent(typ).WithPath(path).WithChunk(index, level).
		WithNum("rate_bps", rate*8).
		WithNum("remaining_bytes", remaining).
		WithNum("window_s", window)
	if reason != "" {
		e = e.WithStr("reason", reason)
	}
	fo.sink.Emit(e)
}

// ---- first-byte span tracking ----

// fbTrack marks the window between a chunk fetch starting and its first
// payload byte arriving on any path. pending is atomic so the per-block
// read loop pays one relaxed load; the metadata behind it is guarded by
// mu and written before pending flips true.
type fbTrack struct {
	pending atomic.Bool
	mu      sync.Mutex
	start   time.Time
	chunk   int
	level   int
}

func (t *fbTrack) begin(start time.Time, chunk, level int) {
	t.mu.Lock()
	t.start, t.chunk, t.level = start, chunk, level
	t.mu.Unlock()
	t.pending.Store(true)
}

func (t *fbTrack) end() { t.pending.Store(false) }

// noteFirstByte records the in-flight chunk's first payload byte: the
// CAS guarantees exactly one observation per chunk even when both paths
// race to deliver it.
func (f *Fetcher) noteFirstByte() {
	if !f.fb.pending.CompareAndSwap(true, false) {
		return
	}
	fo := f.obsHandles()
	if fo == nil {
		return
	}
	f.fb.mu.Lock()
	elapsed := f.clk.now().Sub(f.fb.start)
	chunk, level := f.fb.chunk, f.fb.level
	f.fb.mu.Unlock()
	fo.firstByte.Observe(elapsed.Seconds())
	if fo.sink != nil {
		fo.sink.Emit(obs.NewEvent("chunk.firstbyte").WithChunk(chunk, level).
			WithNum("elapsed_s", elapsed.Seconds()))
	}
}

// ---- streamer ----

// streamerObs bundles the playback loop's telemetry handles; nil = off.
type streamerObs struct {
	sink       obs.Sink
	stalls     *obs.Counter
	stallTime  *obs.Histogram
	refetches  *obs.Counter
	lost       *obs.Counter
	extends    *obs.Counter
	downgrades *obs.Counter
	buffer     *obs.Gauge
}

// Instrument wires the streamer (and its fetcher) to t. Call before
// Stream.
func (s *Streamer) Instrument(t *obs.Telemetry) {
	if t == nil {
		return
	}
	s.Fetcher.Instrument(t)
	r := t.Registry
	s.sobs = &streamerObs{
		sink: t,
		stalls: r.Counter("mpdash_stream_stalls_total",
			"Playback stalls (rebuffering events).", nil),
		stallTime: r.Histogram("mpdash_stream_stall_seconds",
			"Duration of each playback stall.", obs.DefSecondsBuckets, nil),
		refetches: r.Counter("mpdash_stream_refetches_total",
			"Chunks refetched at the lowest level after exhausting their budget.", nil),
		lost: r.Counter("mpdash_stream_lost_chunks_total",
			"Chunks abandoned after the lifeline refetch failed too.", nil),
		extends: r.Counter("mpdash_stream_deadline_extensions_total",
			"Chunk deadlines extended by the Φ high-buffer rule (§5.1).", nil),
		downgrades: r.Counter("netmp_downgrades_total",
			"Rendition downgrades after a doomed-chunk abort.", nil),
		buffer: r.Gauge("mpdash_stream_buffer_seconds",
			"Playback buffer level at the last chunk boundary.", nil),
	}
}

func (so *streamerObs) emitExtend(chunk, level int, ext, buffer, phi time.Duration) {
	if so == nil {
		return
	}
	so.extends.Inc()
	if so.sink != nil {
		so.sink.Emit(obs.NewEvent("stream.extend").WithChunk(chunk, level).
			WithNum("extension_s", ext.Seconds()).
			WithNum("buffer_s", buffer.Seconds()).
			WithNum("phi_s", phi.Seconds()))
	}
}

func (so *streamerObs) emitStall(chunk int, stall time.Duration) {
	if so == nil {
		return
	}
	so.stalls.Inc()
	so.stallTime.Observe(stall.Seconds())
	if so.sink != nil {
		so.sink.Emit(obs.NewEvent("stream.stall").WithChunk(chunk, -1).
			WithNum("stall_s", stall.Seconds()))
	}
}

func (so *streamerObs) emitRefetch(chunk, level int) {
	if so == nil {
		return
	}
	so.refetches.Inc()
	if so.sink != nil {
		so.sink.Emit(obs.NewEvent("stream.refetch").WithChunk(chunk, level))
	}
}

// emitDowngrade journals one abort-driven rendition downgrade: chunk
// re-requested at `to` after being doomed at `from`, with the rate and
// window that drove the fitLevel choice.
func (so *streamerObs) emitDowngrade(chunk, from, to int, rate float64, window time.Duration) {
	if so == nil {
		return
	}
	so.downgrades.Inc()
	if so.sink != nil {
		so.sink.Emit(obs.NewEvent("stream.downgrade").WithChunk(chunk, from).
			WithNum("to_level", float64(to)).
			WithNum("rate_bps", rate*8).
			WithNum("window_s", window.Seconds()))
	}
}

func (so *streamerObs) emitLost(chunk int) {
	if so == nil {
		return
	}
	so.lost.Inc()
	if so.sink != nil {
		so.sink.Emit(obs.NewEvent("stream.lost").WithChunk(chunk, -1))
	}
}

func (so *streamerObs) setBuffer(buffer time.Duration) {
	if so == nil {
		return
	}
	so.buffer.Set(buffer.Seconds())
}

// ---- server ----

// Instrument wires the chunk server to t: scrape-time collectors over
// the overload and fault-injection stats it already keeps, plus journal
// events for admission rejections and drain.
func (s *ChunkServer) Instrument(t *obs.Telemetry) {
	if t == nil {
		return
	}
	s.connMu.Lock()
	s.sink = t
	s.connMu.Unlock()
	r := t.Registry
	lbl := obs.Labels{"addr": s.Addr()}
	r.CounterFunc("mpdash_server_served_bytes_total",
		"Payload bytes written by the chunk server.",
		lbl, func() float64 { return float64(s.ServedBytes()) })
	r.GaugeFunc("mpdash_server_active_conns",
		"Currently admitted connections.",
		lbl, func() float64 {
			s.connMu.Lock()
			defer s.connMu.Unlock()
			return float64(len(s.conns))
		})
	r.GaugeFunc("mpdash_server_draining",
		"1 once Drain has been called.",
		lbl, func() float64 {
			if s.Draining() {
				return 1
			}
			return 0
		})
	over := func(name, help string, get func(OverloadStats) int64) {
		r.CounterFunc(name, help, lbl, func() float64 { return float64(get(s.OverloadStats())) })
	}
	over("mpdash_server_rejected_conns_total", "Accepts refused with a 503 under MaxConns pressure.",
		func(o OverloadStats) int64 { return o.RejectedConns })
	over("mpdash_server_capped_conns_total", "Connections closed for reaching MaxRequestsPerConn.",
		func(o OverloadStats) int64 { return o.CappedConns })
	over("mpdash_server_panics_recovered_total", "Handler panics absorbed without killing the server.",
		func(o OverloadStats) int64 { return o.PanicsRecovered })
	over("mpdash_server_accept_retries_total", "Transient Accept errors absorbed with backoff.",
		func(o OverloadStats) int64 { return o.AcceptRetries })
	fault := func(kind string, get func(FaultStats) int64) {
		r.CounterFunc("mpdash_server_injected_faults_total",
			"Faults injected by the server's chaos plan, by kind.",
			obs.Labels{"addr": s.Addr(), "kind": kind},
			func() float64 { return float64(get(s.FaultStats())) })
	}
	fault("reset", func(f FaultStats) int64 { return f.Resets })
	fault("stall", func(f FaultStats) int64 { return f.Stalls })
	fault("close", func(f FaultStats) int64 { return f.PrematureCloses })
	fault("corrupt", func(f FaultStats) int64 { return f.Corruptions })
	fault("blackout_reset", func(f FaultStats) int64 { return f.BlackoutResets })
}

// serverSink returns the server's telemetry sink under connMu.
func (s *ChunkServer) serverSink() obs.Sink {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.sink
}
