package netmp

import (
	"fmt"
	"time"

	"mpdash/internal/dash"
)

// Streamer is a real-time DASH playback loop over the dual-socket
// Fetcher: the wall clock drains the buffer, a dash.RateAdapter picks
// levels, and each chunk gets an MP-DASH deadline (duration- or
// rate-based with the §5.1 deadline extension) that the fetcher enforces
// by engaging the secondary socket only under pressure. It is the
// end-to-end userspace analogue of the kernel prototype.
type Streamer struct {
	Fetcher *Fetcher
	ABR     dash.RateAdapter
	// RateBased selects the rate-based deadline policy (else duration).
	RateBased bool
	// BufferCap defaults to 8 chunk durations.
	BufferCap time.Duration
	// PhiFrac is the deadline-extension threshold as a fraction of
	// BufferCap (default 0.8).
	PhiFrac float64
}

// StreamResult summarizes a real-time playback.
type StreamResult struct {
	Chunks          int
	PrimaryBytes    int64
	SecondaryBytes  int64
	Stalls          int
	StallTime       time.Duration
	QualitySwitches int
	AvgLevel        float64
	Wall            time.Duration
	AllVerified     bool
}

// Stream plays n chunks (0 = whole video) and blocks until done.
func (s *Streamer) Stream(n int) (*StreamResult, error) {
	if s.Fetcher == nil || s.ABR == nil {
		return nil, fmt.Errorf("netmp: streamer needs a fetcher and an ABR")
	}
	video := s.Fetcher.Video
	if n <= 0 || n > video.NumChunks {
		n = video.NumChunks
	}
	bufferCap := s.BufferCap
	if bufferCap == 0 {
		bufferCap = 8 * video.ChunkDuration
	}
	phiFrac := s.PhiFrac
	if phiFrac == 0 {
		phiFrac = 0.8
	}

	res := &StreamResult{AllVerified: true}
	start := time.Now()
	var buffer time.Duration
	playing := false
	lastLevel := -1
	var throughputs []float64
	var levelSum float64

	for i := 0; i < n; i++ {
		// Wait for buffer room (playback drains in real time).
		if playing && buffer > bufferCap-video.ChunkDuration {
			wait := buffer - (bufferCap - video.ChunkDuration)
			time.Sleep(wait)
			buffer -= wait
		}

		st := dash.PlayerState{
			Now:              time.Since(start),
			ChunkIndex:       i,
			LastLevel:        lastLevel,
			Buffer:           buffer,
			BufferCap:        bufferCap,
			Video:            video,
			ChunkThroughputs: throughputs,
		}
		level := s.ABR.SelectLevel(st)
		if level < 0 {
			level = 0
		}
		if level > video.HighestLevel() {
			level = video.HighestLevel()
		}
		if lastLevel >= 0 && level != lastLevel {
			res.QualitySwitches++
		}

		size := s.Fetcher.chunkSize(i, level)
		deadline := video.ChunkDuration
		if s.RateBased {
			deadline = time.Duration(float64(size*8) / (video.Levels[level].AvgBitrateMbps * 1e6) * float64(time.Second))
		}
		if phi := time.Duration(phiFrac * float64(bufferCap)); buffer > phi {
			deadline += buffer - phi
		}
		if !playing {
			// Startup: no buffer cushion; fetch as fast as possible by
			// declaring a minimal deadline so the secondary path helps.
			deadline = time.Millisecond
		}

		dlStart := time.Now()
		fr, err := s.Fetcher.FetchChunk(i, level, deadline)
		if err != nil {
			return nil, fmt.Errorf("netmp: chunk %d: %w", i, err)
		}
		dl := time.Since(dlStart)

		res.PrimaryBytes += fr.PrimaryBytes
		res.SecondaryBytes += fr.SecondaryBytes
		if !fr.Verified {
			res.AllVerified = false
		}
		if dl > 0 {
			throughputs = append(throughputs, float64(size*8)/dl.Seconds())
		}
		if playing {
			if buffer >= dl {
				buffer -= dl
			} else {
				res.Stalls++
				res.StallTime += dl - buffer
				buffer = 0
			}
		}
		buffer += video.ChunkDuration
		if buffer > bufferCap {
			buffer = bufferCap
		}
		playing = true
		lastLevel = level
		levelSum += float64(level)
		res.Chunks++
	}
	res.Wall = time.Since(start)
	if res.Chunks > 0 {
		res.AvgLevel = levelSum / float64(res.Chunks)
	}
	return res, nil
}
