package netmp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/obs"
)

// Streamer is a real-time DASH playback loop over the dual-socket
// Fetcher: the wall clock drains the buffer, a dash.RateAdapter picks
// levels, and each chunk gets an MP-DASH deadline (duration- or
// rate-based with the §5.1 deadline extension) that the fetcher enforces
// by engaging the secondary socket only under pressure. It is the
// end-to-end userspace analogue of the kernel prototype.
//
// The loop degrades rather than dies: a chunk that exhausts its retry
// budget is refetched once at the lowest level (smallest payload, best
// odds) before being counted as a stall and skipped, and the session
// continues on one path when the other is down. Only ErrAllPathsDown —
// or a fatal protocol error — ends a session early, and even then the
// partial result is returned alongside the error.
type Streamer struct {
	Fetcher *Fetcher
	ABR     dash.RateAdapter
	// RateBased selects the rate-based deadline policy (else duration).
	RateBased bool
	// BufferCap defaults to 8 chunk durations.
	BufferCap time.Duration
	// PhiFrac is the deadline-extension threshold as a fraction of
	// BufferCap (default 0.8).
	PhiFrac float64
	// OnChunk, when set, is called synchronously after every chunk
	// resolves: landed chunks report whether they missed their playback
	// deadline, and lost chunks (lifeline exhausted) report missed=true.
	// The swarm's recovery tracker feeds its rolling miss-rate window —
	// and hence MTTR measurement — from this hook. Must be fast and
	// goroutine-safe: many sessions may share one callback.
	OnChunk func(index int, missed bool)

	// Tracer, when set, records one span trace per chunk (deadline,
	// fetch/segment/redial/hedge/abort spans, terminal verdict) through
	// the fetcher; nil is the off switch and costs one nil check per
	// chunk. Many sessions may share one Tracer — TraceSession keeps
	// their trace IDs distinct (and deterministic under a seeded plan).
	Tracer       *obs.Tracer
	TraceSession int

	stop atomic.Bool
	sobs *streamerObs // telemetry handles (nil = off); set by Instrument
}

// Stop requests a graceful end of the session: the loop finishes the
// in-flight chunk, then returns the partial result with Stopped set.
// Safe to call from any goroutine (e.g. a signal handler).
func (s *Streamer) Stop() { s.stop.Store(true) }

// StreamResult summarizes a real-time playback.
type StreamResult struct {
	Chunks          int
	PrimaryBytes    int64
	SecondaryBytes  int64
	Stalls          int
	StallTime       time.Duration
	QualitySwitches int
	AvgLevel        float64
	Wall            time.Duration
	AllVerified     bool

	// Retries counts failed range-request attempts absorbed by the path
	// supervisor across the session.
	Retries int64
	// Redials counts reconnect attempts (successful or not).
	Redials int64
	// Requeued counts segments completed by the other path after a local
	// retry budget ran out.
	Requeued int64
	// WastedBytes counts payload discarded from failed/corrupt attempts.
	WastedBytes int64
	// FaultsSurvived totals the transient faults the session absorbed
	// without losing a chunk (retries plus requeues).
	FaultsSurvived int64
	// Refetches counts chunks refetched at the lowest level after their
	// retry budget ran out at the selected level.
	Refetches int
	// LostChunks counts chunks abandoned after the lowest-level lifeline
	// refetch also failed; each one is accounted as a stall.
	LostChunks int
	// DegradedTime is how long the session has run with a path down
	// (single-path mode).
	DegradedTime time.Duration

	// Aborts counts chunks abandoned mid-flight as doomed: the fetcher
	// predicted a deadline miss even with all paths engaged and cut the
	// transfer rather than ride it out.
	Aborts int
	// Downgrades counts abort recoveries: the chunk re-requested at the
	// highest lower rendition the predictor said still fits the window.
	Downgrades int
	// AbortWastedBytes counts the partial payload those aborts discarded.
	AbortWastedBytes int64
	// WastedPrimaryBytes / WastedSecondaryBytes split, per path, the
	// payload that bought no on-time video: partial bytes of aborted and
	// failed chunks plus the full payload of deadline-missed chunks. The
	// swarm maps the preference-deprioritized path's share to wasted
	// cellular bytes.
	WastedPrimaryBytes   int64
	WastedSecondaryBytes int64

	// StartupDelay is the time from session start to the first chunk
	// being fully fetched — the join delay a viewer experiences before
	// playback can begin.
	StartupDelay time.Duration
	// DeadlineMisses counts steady-state chunks delivered after their
	// α·D window. The startup chunk is excluded: its deadline is a
	// synthetic minimal value that exists only to engage both paths.
	DeadlineMisses int

	// Failovers counts origin switches across the session (origin tier).
	Failovers int64
	// HedgesIssued / HedgesWon / HedgesCancelled summarize hedged
	// requests: duplicates launched, segments delivered by the hedge,
	// and race losers aborted.
	HedgesIssued    int64
	HedgesWon       int64
	HedgesCancelled int64
	// HedgeWastedBytes counts payload spent on hedge losers.
	HedgeWastedBytes int64
	// Stopped is true when the session ended early via Streamer.Stop.
	Stopped bool
}

// Stream plays n chunks (0 = whole video) and blocks until done. On an
// unrecoverable error (all paths down, fatal protocol error) it returns
// the partial result alongside the error.
func (s *Streamer) Stream(n int) (*StreamResult, error) {
	if s.Fetcher == nil || s.ABR == nil {
		return nil, fmt.Errorf("netmp: streamer needs a fetcher and an ABR")
	}
	video := s.Fetcher.Video
	if n <= 0 || n > video.NumChunks {
		n = video.NumChunks
	}
	bufferCap := s.BufferCap
	if bufferCap == 0 {
		bufferCap = 8 * video.ChunkDuration
	}
	phiFrac := s.PhiFrac
	if phiFrac == 0 {
		phiFrac = 0.8
	}

	res := &StreamResult{AllVerified: true}
	clk := s.Fetcher.clk
	start := clk.now()
	var buffer time.Duration
	playing := false
	lastLevel := -1
	var throughputs []float64
	var levelSum float64

	finish := func() {
		res.Wall = clk.now().Sub(start)
		if res.Chunks > 0 {
			res.AvgLevel = levelSum / float64(res.Chunks)
		}
		res.FaultsSurvived = res.Retries + res.Requeued
		res.DegradedTime = s.Fetcher.DegradedFor()
	}

	for i := 0; i < n; i++ {
		if s.stop.Load() {
			res.Stopped = true
			finish()
			return res, nil
		}
		// Wait for buffer room (playback drains in real time).
		if playing && buffer > bufferCap-video.ChunkDuration {
			wait := buffer - (bufferCap - video.ChunkDuration)
			time.Sleep(wait)
			buffer -= wait
		}

		st := dash.PlayerState{
			Now:              clk.now().Sub(start),
			ChunkIndex:       i,
			LastLevel:        lastLevel,
			Buffer:           buffer,
			BufferCap:        bufferCap,
			Video:            video,
			ChunkThroughputs: throughputs,
		}
		level := s.ABR.SelectLevel(st)
		if level < 0 {
			level = 0
		}
		if level > video.HighestLevel() {
			level = video.HighestLevel()
		}

		size := s.Fetcher.chunkSize(i, level)
		deadline := video.ChunkDuration
		if s.RateBased {
			deadline = time.Duration(float64(size*8) / (video.Levels[level].AvgBitrateMbps * 1e6) * float64(time.Second))
		}
		if phi := time.Duration(phiFrac * float64(bufferCap)); buffer > phi {
			deadline += buffer - phi
			s.sobs.emitExtend(i, level, buffer-phi, buffer, phi)
		}
		if !playing {
			// Startup: no buffer cushion; fetch as fast as possible by
			// declaring a minimal deadline so the secondary path helps.
			deadline = time.Millisecond
		}

		// absorbFaults folds a failed fetch's fault accounting into the
		// session totals; its partial payload counts as wasted.
		absorbFaults := func(fr *FetchResult) {
			if fr == nil {
				return
			}
			res.Retries += fr.Retries
			res.Redials += fr.Redials
			res.Requeued += fr.Requeued
			res.WastedBytes += fr.WastedBytes + fr.PrimaryBytes + fr.SecondaryBytes
			res.WastedPrimaryBytes += fr.PrimaryBytes
			res.WastedSecondaryBytes += fr.SecondaryBytes
			absorbOriginStats(res, fr)
		}

		// One trace per chunk: opened with the selected rendition and the
		// deadline, installed on the fetcher so the workers' spans attach,
		// and finished below with the chunk's terminal verdict.
		ct := s.Tracer.StartTrace(s.TraceSession, i, level)
		ct.SetDeadline(deadline)
		s.Fetcher.SetTrace(ct)

		dlStart := clk.now()
		fr, err := s.Fetcher.FetchChunk(i, level, deadline)
		// Doomed-chunk downgrade loop: an abort means even best-case
		// all-path delivery could not land this rendition in time, so
		// re-request at the highest rendition the predictor says still
		// fits what is left of the window — the lowest when nothing fits
		// (the stall, if any, falls out of the buffer math below). The
		// loop terminates because the fetcher never dooms level 0 and
		// fitLevel only ever moves down.
		for err != nil && errors.Is(err, ErrChunkDoomed) {
			res.Aborts++
			res.AbortWastedBytes += fr.PrimaryBytes + fr.SecondaryBytes
			res.WastedBytes += fr.PrimaryBytes + fr.SecondaryBytes
			res.WastedPrimaryBytes += fr.PrimaryBytes
			res.WastedSecondaryBytes += fr.SecondaryBytes
			res.Retries += fr.Retries
			res.Redials += fr.Redials
			res.Requeued += fr.Requeued
			absorbOriginStats(res, fr)
			window := deadline - clk.now().Sub(dlStart)
			if window < time.Millisecond {
				window = time.Millisecond
			}
			aggRate := s.Fetcher.PredictedRate() * float64(s.Fetcher.livePaths())
			next := fitLevel(video, s.Fetcher.Sizes, i, level-1, aggRate, window)
			if next < 0 {
				next = 0
			}
			res.Downgrades++
			s.sobs.emitDowngrade(i, level, next, aggRate, window)
			ct.MarkBad(obs.CatDowngrade)
			dsp := ct.StartSpan(obs.CatDowngrade, "downgrade")
			level = next
			size = s.Fetcher.chunkSize(i, level)
			fr, err = s.Fetcher.FetchChunk(i, level, window)
			dsp.End()
		}
		if err != nil && errors.Is(err, ErrChunkExhausted) && level != 0 {
			// Lifeline: one refetch at the lowest level before declaring
			// the chunk lost.
			absorbFaults(fr)
			res.Refetches++
			s.sobs.emitRefetch(i, level)
			rsp := ct.StartSpan(obs.CatRefetch, "refetch")
			level = 0
			size = s.Fetcher.chunkSize(i, level)
			fr, err = s.Fetcher.FetchChunk(i, level, deadline)
			rsp.End()
		}
		if err != nil {
			absorbFaults(fr)
			if errors.Is(err, ErrChunkExhausted) {
				// Chunk lost even at the lowest level: account a stall of
				// one chunk duration and move on.
				res.LostChunks++
				res.Stalls++
				res.StallTime += video.ChunkDuration
				s.sobs.emitLost(i)
				s.sobs.emitStall(i, video.ChunkDuration)
				ct.Event(obs.CatStall, "stall")
				ct.Finish(obs.TraceLost)
				s.Fetcher.SetTrace(nil)
				if s.OnChunk != nil {
					s.OnChunk(i, true)
				}
				continue
			}
			ct.Finish(obs.TraceFailed)
			s.Fetcher.SetTrace(nil)
			finish()
			return res, fmt.Errorf("netmp: chunk %d: %w", i, err)
		}
		dl := clk.now().Sub(dlStart)

		res.PrimaryBytes += fr.PrimaryBytes
		res.SecondaryBytes += fr.SecondaryBytes
		res.Retries += fr.Retries
		res.Redials += fr.Redials
		res.Requeued += fr.Requeued
		res.WastedBytes += fr.WastedBytes
		absorbOriginStats(res, fr)
		if !fr.Verified {
			res.AllVerified = false
		}
		missed := playing && fr.MissedBy > 0
		if missed {
			ct.SetOverrun(fr.MissedBy)
			res.DeadlineMisses++
			// A late chunk's payload bought no on-time video: charge it
			// to the per-path waste split the swarm's cellular-byte
			// accounting reads.
			res.WastedPrimaryBytes += fr.PrimaryBytes
			res.WastedSecondaryBytes += fr.SecondaryBytes
		}
		if s.OnChunk != nil {
			s.OnChunk(i, missed)
		}
		if dl > 0 {
			throughputs = append(throughputs, float64(size*8)/dl.Seconds())
		}
		if playing {
			if buffer >= dl {
				buffer -= dl
			} else {
				res.Stalls++
				res.StallTime += dl - buffer
				s.sobs.emitStall(i, dl-buffer)
				ct.Event(obs.CatStall, "stall")
				buffer = 0
			}
		}
		buffer += video.ChunkDuration
		if buffer > bufferCap {
			buffer = bufferCap
		}
		s.sobs.setBuffer(buffer)
		if missed {
			ct.Finish(obs.TraceMissed)
		} else {
			ct.Finish(obs.TraceOK)
		}
		s.Fetcher.SetTrace(nil)
		if !playing {
			res.StartupDelay = clk.now().Sub(start)
		}
		playing = true
		if lastLevel >= 0 && level != lastLevel {
			res.QualitySwitches++
		}
		lastLevel = level
		levelSum += float64(level)
		res.Chunks++
	}
	finish()
	return res, nil
}

// absorbOriginStats folds one fetch's origin-tier counters (failovers,
// hedges) into the session totals.
func absorbOriginStats(res *StreamResult, fr *FetchResult) {
	res.Failovers += fr.Failovers
	res.HedgesIssued += fr.HedgesIssued
	res.HedgesWon += fr.HedgesWon
	res.HedgesCancelled += fr.HedgesCancelled
	res.HedgeWastedBytes += fr.HedgeWastedBytes
}
