// Package sim is the discrete-event simulation kernel underneath the
// reproduction's network stack. It provides a virtual clock and an event
// queue with deterministic ordering: events fire in (time, sequence) order,
// so two runs of the same experiment are bit-for-bit identical.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Simulator owns the virtual clock and the pending event set.
// The zero value is ready to use. Simulator is not safe for concurrent use;
// the whole network stack runs single-threaded on one Simulator, which is
// what makes experiments deterministic.
type Simulator struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
}

// New returns a Simulator starting at virtual time zero.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time (duration since simulation start).
func (s *Simulator) Now() time.Duration { return s.now }

// Schedule enqueues fn to run after delay. A negative delay is treated as
// zero (fires at the current time, after already-queued events at that
// time). It returns a handle that can cancel the event.
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt enqueues fn to run at absolute virtual time at. Times in the
// past are clamped to now.
func (s *Simulator) ScheduleAt(at time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: Schedule with nil function")
	}
	if at < s.now {
		at = s.now
	}
	ev := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// Step runs the single earliest pending event. It reports whether an event
// was run (false means the queue is empty).
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.at < s.now {
			panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", ev.at, s.now))
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// RunUntil processes events until the predicate returns true, the queue
// drains, or the virtual clock passes limit. It reports whether the
// predicate was satisfied.
func (s *Simulator) RunUntil(limit time.Duration, done func() bool) bool {
	for {
		if done != nil && done() {
			return true
		}
		next, ok := s.peekTime()
		if !ok || next > limit {
			return done != nil && done()
		}
		s.Step()
	}
}

// AdvanceTo moves the virtual clock forward to at, firing any events due on
// the way. Events scheduled exactly at `at` fire too. If at is in the past
// it is a no-op.
func (s *Simulator) AdvanceTo(at time.Duration) {
	for {
		next, ok := s.peekTime()
		if !ok || next > at {
			break
		}
		s.Step()
	}
	if at > s.now {
		s.now = at
	}
}

// Advance moves the clock forward by d, firing due events. See AdvanceTo.
func (s *Simulator) Advance(d time.Duration) { s.AdvanceTo(s.now + d) }

// Pending returns the number of live (non-cancelled) queued events.
func (s *Simulator) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

func (s *Simulator) peekTime() (time.Duration, bool) {
	for s.queue.Len() > 0 {
		ev := s.queue[0]
		if ev.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		return ev.at, true
	}
	return 0, false
}

// Event is a handle to a scheduled callback.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	index     int
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Time returns the virtual time the event is (or was) due.
func (e *Event) Time() time.Duration { return e.at }

// eventQueue is a min-heap on (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
