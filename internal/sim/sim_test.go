package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	for s.Step() {
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	for s.Step() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	s.Step()
	if !fired || s.Now() != 0 {
		t.Errorf("fired=%v now=%v", fired, s.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {})
	s.Step()
	fired := time.Duration(-1)
	s.ScheduleAt(0, func() { fired = s.Now() })
	s.Step()
	if fired != time.Second {
		t.Errorf("past event fired at %v, want clamp to 1s", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ev := s.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	for s.Step() {
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d", s.Pending())
	}
}

func TestAdvanceTo(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	s.AdvanceTo(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now = %v", s.Now())
	}
	s.Advance(10 * time.Second)
	if len(fired) != 3 || s.Now() != 12*time.Second {
		t.Errorf("fired=%v now=%v", fired, s.Now())
	}
	// AdvanceTo into the past is a no-op.
	s.AdvanceTo(time.Second)
	if s.Now() != 12*time.Second {
		t.Errorf("Now moved backwards: %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.Schedule(time.Second, tick)
	}
	s.Schedule(time.Second, tick)
	ok := s.RunUntil(time.Hour, func() bool { return count >= 5 })
	if !ok || count != 5 {
		t.Errorf("ok=%v count=%d", ok, count)
	}
	// Limit reached before predicate.
	s2 := New()
	s2.Schedule(10*time.Second, func() {})
	if s2.RunUntil(time.Second, func() bool { return false }) {
		t.Error("RunUntil should report predicate unsatisfied")
	}
}

func TestEventsScheduledDuringEvents(t *testing.T) {
	s := New()
	var got []string
	s.Schedule(time.Second, func() {
		got = append(got, "a")
		s.Schedule(0, func() { got = append(got, "a.child") })
	})
	s.Schedule(time.Second, func() { got = append(got, "b") })
	for s.Step() {
	}
	want := []string{"a", "b", "a.child"}
	// A zero-delay child scheduled during "a" carries a later sequence
	// number than "b", which was queued first at the same timestamp... but
	// the child fires at t=1s with seq greater than b's, so order is a, b, child.
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	New().Schedule(0, nil)
}

func TestClockMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var times []time.Duration
		for i := 0; i < 50; i++ {
			d := time.Duration(rng.Intn(1000)) * time.Millisecond
			s.Schedule(d, func() { times = append(times, s.Now()) })
		}
		for s.Step() {
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []time.Duration {
		s := New()
		rng := rand.New(rand.NewSource(99))
		var out []time.Duration
		var spawn func()
		spawn = func() {
			out = append(out, s.Now())
			if len(out) < 100 {
				s.Schedule(time.Duration(rng.Intn(100))*time.Millisecond, spawn)
			}
		}
		s.Schedule(0, spawn)
		for s.Step() {
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
