package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndStep(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%100)*time.Microsecond, func() {})
		if i%64 == 0 {
			for s.Step() {
			}
		}
	}
	for s.Step() {
	}
}

func BenchmarkDeepQueue(b *testing.B) {
	// 10k pending events, repeatedly push/pop.
	s := New()
	for i := 0; i < 10_000; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Duration(i%10_000)*time.Millisecond, func() {})
		s.Step()
	}
}

func BenchmarkCancel(b *testing.B) {
	s := New()
	evs := make([]*Event, 0, b.N)
	for i := 0; i < b.N; i++ {
		evs = append(evs, s.Schedule(time.Hour, func() {}))
	}
	b.ResetTimer()
	for _, ev := range evs {
		ev.Cancel()
	}
}
