package dash

import (
	"encoding/xml"
	"fmt"
	"time"
)

// This file implements a working subset of the MPEG-DASH Media
// Presentation Description (MPD). Beyond the standard fields, every
// segment carries an explicit size attribute: the paper (§5.1, following
// Yin et al.) argues chunk size should be a mandatory part of the DASH
// manifest because rate-adaptation algorithms need it; in its absence the
// prototype falls back to HTTP Content-Length. The reproduction's manifest
// makes the size first-class.

// MPD is the root manifest element.
type MPD struct {
	XMLName                   xml.Name `xml:"MPD"`
	Profiles                  string   `xml:"profiles,attr"`
	Type                      string   `xml:"type,attr"`
	MediaPresentationDuration string   `xml:"mediaPresentationDuration,attr"`
	Period                    Period   `xml:"Period"`
}

// Period is the single period of our static presentations.
type Period struct {
	AdaptationSet AdaptationSet `xml:"AdaptationSet"`
}

// AdaptationSet groups the representations of one video track.
type AdaptationSet struct {
	MimeType        string           `xml:"mimeType,attr"`
	SegmentDuration float64          `xml:"segmentDurationSeconds,attr"`
	Representations []Representation `xml:"Representation"`
}

// Representation is one encoding ladder rung.
type Representation struct {
	ID        int       `xml:"id,attr"`
	Bandwidth int64     `xml:"bandwidth,attr"` // bits per second, per the DASH spec
	Segments  []Segment `xml:"SegmentList>SegmentURL"`
}

// Segment is one chunk of one representation.
type Segment struct {
	Media string `xml:"media,attr"`
	// Size is this reproduction's explicit chunk-size extension (bytes).
	Size int64 `xml:"size,attr"`
}

// Manifest builds the MPD for a video.
func (v *Video) Manifest() *MPD {
	m := &MPD{
		Profiles:                  "urn:mpeg:dash:profile:isoff-main:2011",
		Type:                      "static",
		MediaPresentationDuration: formatISODuration(v.Duration()),
		Period: Period{AdaptationSet: AdaptationSet{
			MimeType:        "video/mp4",
			SegmentDuration: v.ChunkDuration.Seconds(),
		}},
	}
	for li, l := range v.Levels {
		rep := Representation{
			ID:        l.ID,
			Bandwidth: int64(l.AvgBitrateMbps * 1e6),
		}
		for c := 0; c < v.NumChunks; c++ {
			rep.Segments = append(rep.Segments, Segment{
				Media: fmt.Sprintf("seg-l%d-c%04d.m4s", l.ID, c),
				Size:  v.ChunkSize(c, li),
			})
		}
		m.Period.AdaptationSet.Representations = append(m.Period.AdaptationSet.Representations, rep)
	}
	return m
}

// EncodeMPD serializes a manifest as XML.
func EncodeMPD(m *MPD) ([]byte, error) {
	return xml.MarshalIndent(m, "", "  ")
}

// DecodeMPD parses a manifest.
func DecodeMPD(b []byte) (*MPD, error) {
	var m MPD
	if err := xml.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("dash: parsing MPD: %w", err)
	}
	return &m, nil
}

// VideoFromManifest reconstructs a Video (with exact per-chunk sizes
// replaced by the manifest's explicit sizes) from an MPD. The returned
// video keeps the manifest sizes in a lookup table, so ChunkSize is not
// usable on it; callers use ManifestSizes instead. For the simulator the
// generated Video objects are used directly; this function exists so the
// real-socket client can bootstrap purely from the manifest.
func VideoFromManifest(m *MPD, name string) (*Video, [][]int64, error) {
	reps := m.Period.AdaptationSet.Representations
	if len(reps) == 0 {
		return nil, nil, fmt.Errorf("dash: manifest has no representations")
	}
	n := len(reps[0].Segments)
	v := &Video{
		Name:          name,
		ChunkDuration: time.Duration(m.Period.AdaptationSet.SegmentDuration * float64(time.Second)),
		NumChunks:     n,
	}
	sizes := make([][]int64, len(reps))
	for i, r := range reps {
		if len(r.Segments) != n {
			return nil, nil, fmt.Errorf("dash: representation %d has %d segments, want %d", r.ID, len(r.Segments), n)
		}
		v.Levels = append(v.Levels, Level{ID: r.ID, AvgBitrateMbps: float64(r.Bandwidth) / 1e6})
		sizes[i] = make([]int64, n)
		for j, s := range r.Segments {
			sizes[i][j] = s.Size
		}
	}
	if err := v.Validate(); err != nil {
		return nil, nil, err
	}
	return v, sizes, nil
}

// formatISODuration renders d as an ISO-8601 duration (PT#H#M#S).
func formatISODuration(d time.Duration) string {
	h := int(d.Hours())
	m := int(d.Minutes()) % 60
	s := d.Seconds() - float64(h*3600+m*60)
	return fmt.Sprintf("PT%dH%dM%.3fS", h, m, s)
}
