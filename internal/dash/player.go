package dash

import (
	"fmt"
	"time"

	"mpdash/internal/mptcp"
	"mpdash/internal/sim"
)

// DefaultBufferCap is the playback buffer capacity. 40 seconds fits the
// paper's §5.2.2 worked example (a quality level mapping to the 20–40 s
// buffer range).
const DefaultBufferCap = 40 * time.Second

// PlayerState is the snapshot handed to rate-adaptation algorithms and the
// MP-DASH video adapter before each chunk decision.
type PlayerState struct {
	// Now is the current virtual time.
	Now time.Duration
	// ChunkIndex is the chunk about to be fetched (0-based).
	ChunkIndex int
	// LastLevel is the ladder index of the previous chunk, -1 at start.
	LastLevel int
	// Buffer is the current buffer occupancy (seconds of content).
	Buffer time.Duration
	// BufferCap is the buffer capacity.
	BufferCap time.Duration
	// Video is the asset being played.
	Video *Video
	// ChunkThroughputs are the measured per-chunk download throughputs
	// (bits/s), oldest first — the raw material of the player's own
	// bandwidth estimation.
	ChunkThroughputs []float64
	// TransportEstimateBps is the multipath transport's aggregate
	// throughput estimate exposed through the §3.2 interface; zero when
	// no MP-DASH adapter is attached. Throughput-based algorithms use it
	// to override their own single-path-biased estimate (§5.2.1).
	TransportEstimateBps float64
}

// OwnEstimateBps is the player's built-in estimate: the last chunk's
// measured throughput (GPAC-style), 0 before any chunk.
func (st PlayerState) OwnEstimateBps() float64 {
	if len(st.ChunkThroughputs) == 0 {
		return 0
	}
	return st.ChunkThroughputs[len(st.ChunkThroughputs)-1]
}

// EffectiveEstimateBps returns the transport override when present, else
// the player's own estimate.
func (st PlayerState) EffectiveEstimateBps() float64 {
	if st.TransportEstimateBps > 0 {
		return st.TransportEstimateBps
	}
	return st.OwnEstimateBps()
}

// ChunkMeta identifies a chunk chosen for download.
type ChunkMeta struct {
	Index    int
	Level    int // ladder index (0-based)
	LevelID  int // paper's 1-based quality level
	Size     int64
	Duration time.Duration
	// NominalBps is the average encoding bitrate of the chosen level.
	NominalBps float64
}

// ChunkResult records one completed chunk download.
type ChunkResult struct {
	Meta          ChunkMeta
	Start, End    time.Duration
	ThroughputBps float64
	// Stalled reports whether playback ran dry during this download.
	Stalled bool
	// StallTime is how long playback was frozen during this download.
	StallTime time.Duration
	// PathBytes is the per-path byte split of this chunk.
	PathBytes map[string]int64
	// BufferAfter is the buffer level right after the chunk was added.
	BufferAfter time.Duration
}

// RateAdapter is a DASH rate-adaptation algorithm (FESTIVE, BBA, ...).
type RateAdapter interface {
	// Name identifies the algorithm in reports.
	Name() string
	// SelectLevel picks the ladder index for the next chunk.
	SelectLevel(st PlayerState) int
	// OnChunkDone lets stateful algorithms update after each download.
	OnChunkDone(st PlayerState, res ChunkResult)
}

// Adapter is the MP-DASH video adapter hook (§5): it owns the deadline
// policy and the coupling to the kernel scheduler. A nil Adapter gives
// vanilla MPTCP playback.
type Adapter interface {
	// TransportEstimate returns the aggregate multipath throughput
	// estimate (bits/s) to expose to the rate adaptation; 0 for none.
	TransportEstimate() float64
	// OnChunkStart is called once the chunk's transfer exists but before
	// any data moves; the adapter decides whether to activate MP-DASH
	// and with what deadline.
	OnChunkStart(st PlayerState, meta ChunkMeta, tr *mptcp.Transfer)
	// OnChunkDone is called when the chunk completes.
	OnChunkDone(st PlayerState, res ChunkResult)
}

// EventKind classifies player log events.
type EventKind int

// Event kinds.
const (
	EventChunkStart EventKind = iota
	EventChunkDone
	EventStall
	EventResume
	EventQualitySwitch
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventChunkStart:
		return "chunk-start"
	case EventChunkDone:
		return "chunk-done"
	case EventStall:
		return "stall"
	case EventResume:
		return "resume"
	case EventQualitySwitch:
		return "quality-switch"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the player's event log (the input the paper's
// multipath video analysis tool correlates with packet traces).
type Event struct {
	Time  time.Duration
	Kind  EventKind
	Chunk int
	Level int // ladder index
	Note  string
}

// Player drives one playback session over a multipath connection.
type Player struct {
	sim   *sim.Simulator
	conn  *mptcp.Conn
	video *Video
	abr   RateAdapter
	// adapter may be nil (vanilla MPTCP).
	adapter Adapter

	// BufferCap defaults to DefaultBufferCap.
	BufferCap time.Duration
	// ChunkTimeout aborts a playback run if a single chunk takes this
	// long (a safety net against dead links). Default 10 minutes.
	ChunkTimeout time.Duration

	buffer  time.Duration
	playing bool

	events  []Event
	results []ChunkResult
}

// NewPlayer constructs a player.
func NewPlayer(s *sim.Simulator, conn *mptcp.Conn, video *Video, abr RateAdapter, adapter Adapter) (*Player, error) {
	if s == nil || conn == nil {
		return nil, fmt.Errorf("dash: nil simulator or connection")
	}
	if err := video.Validate(); err != nil {
		return nil, err
	}
	if abr == nil {
		return nil, fmt.Errorf("dash: nil rate adapter")
	}
	return &Player{
		sim:          s,
		conn:         conn,
		video:        video,
		abr:          abr,
		adapter:      adapter,
		BufferCap:    DefaultBufferCap,
		ChunkTimeout: 10 * time.Minute,
	}, nil
}

// Events returns the playback event log.
func (p *Player) Events() []Event { return p.events }

// Results returns the per-chunk results.
func (p *Player) Results() []ChunkResult { return p.results }

// state snapshots the current player state.
func (p *Player) state(chunk, lastLevel int, throughputs []float64) PlayerState {
	st := PlayerState{
		Now:              p.sim.Now(),
		ChunkIndex:       chunk,
		LastLevel:        lastLevel,
		Buffer:           p.buffer,
		BufferCap:        p.BufferCap,
		Video:            p.video,
		ChunkThroughputs: throughputs,
	}
	if p.adapter != nil {
		st.TransportEstimateBps = p.adapter.TransportEstimate()
	}
	return st
}

// Run plays numChunks chunks (0 or negative means the whole video) and
// returns the playback report.
func (p *Player) Run(numChunks int) (*Report, error) {
	if numChunks <= 0 || numChunks > p.video.NumChunks {
		numChunks = p.video.NumChunks
	}
	lastLevel := -1
	var throughputs []float64

	for i := 0; i < numChunks; i++ {
		// Wait for buffer room: fetch the next chunk only when a full
		// chunk fits, producing the idle gaps of Fig. 1.
		if p.playing && p.buffer > p.BufferCap-p.video.ChunkDuration {
			drain := p.buffer - (p.BufferCap - p.video.ChunkDuration)
			p.advancePlayback(drain)
		}

		st := p.state(i, lastLevel, throughputs)
		level := p.abr.SelectLevel(st)
		if level < 0 {
			level = 0
		}
		if level > p.video.HighestLevel() {
			level = p.video.HighestLevel()
		}
		meta := ChunkMeta{
			Index:      i,
			Level:      level,
			LevelID:    p.video.Levels[level].ID,
			Size:       p.video.ChunkSize(i, level),
			Duration:   p.video.ChunkDuration,
			NominalBps: p.video.Levels[level].AvgBitrateMbps * 1e6,
		}
		if lastLevel >= 0 && level != lastLevel {
			p.log(EventQualitySwitch, i, level, fmt.Sprintf("%d->%d", lastLevel, level))
		}
		p.log(EventChunkStart, i, level, "")

		before := map[string]int64{}
		for _, path := range p.conn.Paths() {
			before[path.Name] = path.DeliveredBytes()
		}

		tr, err := p.conn.StartTransfer(meta.Size)
		if err != nil {
			return nil, fmt.Errorf("dash: chunk %d: %w", i, err)
		}
		if p.adapter != nil {
			p.adapter.OnChunkStart(st, meta, tr)
		}
		start := p.sim.Now()
		if !tr.RunUntilComplete(start + p.ChunkTimeout) {
			return nil, fmt.Errorf("dash: chunk %d stuck after %v", i, p.ChunkTimeout)
		}
		// Drain events co-timed with the final byte so per-path byte
		// accounting sees every segment of this chunk.
		p.sim.AdvanceTo(p.sim.Now())
		end := p.sim.Now()
		dl := end - start

		res := ChunkResult{
			Meta:      meta,
			Start:     start,
			End:       end,
			PathBytes: map[string]int64{},
		}
		if dl > 0 {
			res.ThroughputBps = float64(meta.Size*8) / dl.Seconds()
		}
		for _, path := range p.conn.Paths() {
			res.PathBytes[path.Name] = path.DeliveredBytes() - before[path.Name]
		}

		// Buffer accounting over the download interval.
		if p.playing {
			if p.buffer >= dl {
				p.buffer -= dl
			} else {
				res.Stalled = true
				res.StallTime = dl - p.buffer
				p.log(EventStall, i, level, res.StallTime.String())
				p.buffer = 0
				p.playing = false
			}
		}
		p.buffer += p.video.ChunkDuration
		if p.buffer > p.BufferCap {
			p.buffer = p.BufferCap
		}
		res.BufferAfter = p.buffer
		if !p.playing {
			p.playing = true
			if i > 0 || res.Stalled {
				p.log(EventResume, i, level, "")
			}
		}
		p.log(EventChunkDone, i, level, "")

		throughputs = append(throughputs, res.ThroughputBps)
		stDone := p.state(i, level, throughputs)
		p.abr.OnChunkDone(stDone, res)
		if p.adapter != nil {
			p.adapter.OnChunkDone(stDone, res)
		}
		p.results = append(p.results, res)
		lastLevel = level
	}
	return buildReport(p.video, p.abr.Name(), p.results, p.events, p.conn), nil
}

// advancePlayback moves virtual time forward by d with playback running,
// draining the buffer.
func (p *Player) advancePlayback(d time.Duration) {
	p.sim.Advance(d)
	if p.buffer >= d {
		p.buffer -= d
	} else {
		p.buffer = 0
	}
}

func (p *Player) log(kind EventKind, chunk, level int, note string) {
	p.events = append(p.events, Event{
		Time:  p.sim.Now(),
		Kind:  kind,
		Chunk: chunk,
		Level: level,
		Note:  note,
	})
}
