package dash

import (
	"testing"
	"time"

	"mpdash/internal/mptcp"
	"mpdash/internal/sim"
	"mpdash/internal/trace"
)

// fixedABR always picks the same ladder index.
type fixedABR struct{ level int }

func (f fixedABR) Name() string                         { return "fixed" }
func (f fixedABR) SelectLevel(PlayerState) int          { return f.level }
func (f fixedABR) OnChunkDone(PlayerState, ChunkResult) {}

// greedyABR picks the highest level the effective estimate sustains.
type greedyABR struct{}

func (greedyABR) Name() string { return "greedy" }
func (greedyABR) SelectLevel(st PlayerState) int {
	l := st.Video.LevelForThroughput(st.EffectiveEstimateBps())
	if l < 0 {
		return 0
	}
	return l
}
func (greedyABR) OnChunkDone(PlayerState, ChunkResult) {}

func playerRig(t *testing.T, wifiMbps, lteMbps float64, abr RateAdapter) (*sim.Simulator, *mptcp.Conn, *Player) {
	t.Helper()
	s := sim.New()
	c, err := mptcp.NewConn(s, mptcp.Config{
		Paths: []mptcp.PathSpec{
			{Name: "wifi", Rate: trace.Constant("w", wifiMbps, time.Second, 1), RTT: 50 * time.Millisecond, Primary: true},
			{Name: "lte", Rate: trace.Constant("l", lteMbps, time.Second, 1), RTT: 60 * time.Millisecond, Cost: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlayer(s, c, BigBuckBunny(), abr, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, c, p
}

func TestNewPlayerValidation(t *testing.T) {
	s := sim.New()
	c, _ := mptcp.NewConn(s, mptcp.Config{Paths: []mptcp.PathSpec{
		{Name: "w", Rate: trace.Constant("w", 5, time.Second, 1), Primary: true},
	}})
	if _, err := NewPlayer(nil, c, BigBuckBunny(), fixedABR{}, nil); err == nil {
		t.Error("nil sim accepted")
	}
	if _, err := NewPlayer(s, nil, BigBuckBunny(), fixedABR{}, nil); err == nil {
		t.Error("nil conn accepted")
	}
	if _, err := NewPlayer(s, c, nil, fixedABR{}, nil); err == nil {
		t.Error("nil video accepted")
	}
	if _, err := NewPlayer(s, c, BigBuckBunny(), nil, nil); err == nil {
		t.Error("nil abr accepted")
	}
}

func TestSmoothPlaybackNoStalls(t *testing.T) {
	// Aggregate 6.8 Mbps easily sustains the top 3.94 Mbps level.
	_, _, p := playerRig(t, 3.8, 3.0, fixedABR{level: 4})
	rep, err := p.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls != 0 {
		t.Errorf("stalls = %d", rep.Stalls)
	}
	if rep.Chunks != 30 {
		t.Errorf("chunks = %d", rep.Chunks)
	}
	if rep.AvgBitrateMbps < 3.9 || rep.AvgBitrateMbps > 4.0 {
		t.Errorf("avg bitrate = %v", rep.AvgBitrateMbps)
	}
	if rep.QualitySwitches != 0 {
		t.Errorf("switches = %d for fixed level", rep.QualitySwitches)
	}
}

func TestStallsWhenCapacityInsufficient(t *testing.T) {
	// 1.0 Mbps total cannot sustain the 3.94 Mbps top level: stalls are
	// inevitable when the ABR refuses to adapt.
	_, _, p := playerRig(t, 0.7, 0.3, fixedABR{level: 4})
	rep, err := p.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls == 0 {
		t.Error("no stalls at 4x overload")
	}
	if rep.StallTime == 0 {
		t.Error("zero stall time despite stalls")
	}
}

func TestAdaptiveAvoidsStalls(t *testing.T) {
	// Same starved network, but an adaptive algorithm drops to a
	// sustainable rung after the first chunk.
	_, _, p := playerRig(t, 0.7, 0.3, greedyABR{})
	rep, err := p.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls > 1 {
		t.Errorf("adaptive playback stalled %d times", rep.Stalls)
	}
	if rep.SteadyStateAvgBitrateMbps > 1.01 {
		t.Errorf("steady bitrate %v on a 1 Mbps network", rep.SteadyStateAvgBitrateMbps)
	}
}

func TestBufferNeverExceedsCap(t *testing.T) {
	_, _, p := playerRig(t, 20, 10, fixedABR{level: 0})
	rep, err := p.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.BufferAfter > p.BufferCap {
			t.Fatalf("chunk %d buffer %v > cap %v", res.Meta.Index, res.BufferAfter, p.BufferCap)
		}
	}
}

func TestSteadyStateIdleGaps(t *testing.T) {
	// On a fast network with a low fixed level, the player becomes
	// buffer-limited: chunk starts must be spaced ≈ chunkDuration apart
	// (the Fig. 1 idle-gap pattern). Playback duration ≈ video duration.
	s, _, p := playerRig(t, 20, 10, fixedABR{level: 2})
	rep, err := p.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls != 0 {
		t.Fatalf("stalls = %d", rep.Stalls)
	}
	elapsed := s.Now()
	content := 50 * 4 * time.Second
	// After filling the buffer the player is paced by playback: total
	// wall time within [content - bufferCap, content + slack].
	if elapsed < content-p.BufferCap-10*time.Second {
		t.Errorf("elapsed %v too fast for paced playback of %v", elapsed, content)
	}
	if elapsed > content+20*time.Second {
		t.Errorf("elapsed %v too slow", elapsed)
	}
}

func TestPerChunkAccounting(t *testing.T) {
	_, c, p := playerRig(t, 3.8, 3.0, fixedABR{level: 3})
	rep, err := p.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	var fromChunks int64
	for _, res := range rep.Results {
		var chunkTotal int64
		for _, b := range res.PathBytes {
			chunkTotal += b
		}
		if chunkTotal < res.Meta.Size {
			t.Errorf("chunk %d: path bytes %d < size %d", res.Meta.Index, chunkTotal, res.Meta.Size)
		}
		fromChunks += chunkTotal
	}
	var fromConn int64
	for _, path := range c.Paths() {
		fromConn += path.DeliveredBytes()
	}
	if fromChunks != fromConn {
		t.Errorf("per-chunk sum %d != connection total %d", fromChunks, fromConn)
	}
}

func TestEventLogConsistency(t *testing.T) {
	_, _, p := playerRig(t, 3.8, 3.0, greedyABR{})
	rep, err := p.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	starts, dones, switches := 0, 0, 0
	var lastT time.Duration
	for _, e := range rep.Events {
		if e.Time < lastT {
			t.Fatalf("event log not time-ordered at %v", e.Time)
		}
		lastT = e.Time
		switch e.Kind {
		case EventChunkStart:
			starts++
		case EventChunkDone:
			dones++
		case EventQualitySwitch:
			switches++
		}
	}
	if starts != 10 || dones != 10 {
		t.Errorf("starts=%d dones=%d", starts, dones)
	}
	if switches != rep.QualitySwitches {
		t.Errorf("event switches %d != report %d", switches, rep.QualitySwitches)
	}
	if p.Events() == nil || p.Results() == nil {
		t.Error("accessors returned nil")
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EventChunkStart, EventChunkDone, EventStall, EventResume, EventQualitySwitch, EventKind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty string for kind %d", int(k))
		}
	}
}

func TestRunWholeVideoDefault(t *testing.T) {
	_, _, p := playerRig(t, 10, 5, fixedABR{level: 0})
	// Level 0 at 0.58 Mbps: 150 chunks download fast; run all of them.
	rep, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks != 150 {
		t.Errorf("chunks = %d, want 150", rep.Chunks)
	}
}

func TestTinySessionReport(t *testing.T) {
	// Fewer than 5 chunks: the steady-state window (last 80%) still
	// computes sensibly.
	_, _, p := playerRig(t, 10, 5, fixedABR{level: 1})
	rep, err := p.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Chunks != 3 {
		t.Fatalf("chunks = %d", rep.Chunks)
	}
	if rep.SteadyStateAvgBitrateMbps <= 0 {
		t.Errorf("steady bitrate = %v", rep.SteadyStateAvgBitrateMbps)
	}
	if rep.StartupDelay <= 0 {
		t.Errorf("startup delay = %v", rep.StartupDelay)
	}
}

func TestQoEScore(t *testing.T) {
	// Smooth top-rung playback scores near the top bitrate; a stalling,
	// oscillating session scores lower.
	_, _, smooth := playerRig(t, 3.8, 3.0, fixedABR{level: 4})
	repSmooth, err := smooth.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	w := DefaultQoEWeights()
	qSmooth := repSmooth.QoE(w)
	if qSmooth < 3.5 || qSmooth > 4.0 {
		t.Errorf("smooth QoE = %v, want ≈3.94", qSmooth)
	}
	_, _, starved := playerRig(t, 0.7, 0.3, fixedABR{level: 4})
	repStarved, err := starved.Run(8)
	if err != nil {
		t.Fatal(err)
	}
	if q := repStarved.QoE(w); q >= qSmooth {
		t.Errorf("starved QoE %v not below smooth %v", q, qSmooth)
	}
	if (&Report{}).QoE(w) != 0 {
		t.Error("empty report QoE should be 0")
	}
}

func TestStartupDelay(t *testing.T) {
	_, _, p := playerRig(t, 3.8, 3.0, fixedABR{level: 2})
	rep, err := p.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	// Level-2 chunk ≈ 735 kB at 6.8 Mbps ≈ 0.9 s plus request RTT.
	if rep.StartupDelay < 500*time.Millisecond || rep.StartupDelay > 3*time.Second {
		t.Errorf("StartupDelay = %v", rep.StartupDelay)
	}
}

func TestReportHelpers(t *testing.T) {
	_, _, p := playerRig(t, 3.8, 3.0, fixedABR{level: 4})
	rep, err := p.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalBytes() <= 0 {
		t.Error("TotalBytes <= 0")
	}
	fr := rep.CellularFraction("lte")
	if fr < 0 || fr > 1 {
		t.Errorf("CellularFraction = %v", fr)
	}
	if rep.CellularBytes("lte") != rep.SteadyStatePathBytes["lte"] {
		t.Error("CellularBytes mismatch")
	}
}
