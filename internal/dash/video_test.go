package dash

import (
	"math"
	"testing"
	"time"
)

func TestCatalogMatchesTable3(t *testing.T) {
	want := map[string][]float64{
		"Big Buck Bunny":       {0.58, 1.01, 1.47, 2.41, 3.94},
		"Red Bull Playstreets": {0.50, 0.89, 1.50, 2.47, 3.99},
		"Tears of Steel":       {0.50, 0.81, 1.51, 2.42, 4.01},
		"Tears of Steel HD":    {1.51, 2.42, 4.01, 6.03, 10.0},
	}
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("catalog has %d videos", len(cat))
	}
	for _, v := range cat {
		if err := v.Validate(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
		rates, ok := want[v.Name]
		if !ok {
			t.Errorf("unexpected video %q", v.Name)
			continue
		}
		if len(v.Levels) != len(rates) {
			t.Errorf("%s: %d levels", v.Name, len(v.Levels))
			continue
		}
		for i, r := range rates {
			if v.Levels[i].AvgBitrateMbps != r {
				t.Errorf("%s level %d = %v, want %v", v.Name, i+1, v.Levels[i].AvgBitrateMbps, r)
			}
			if v.Levels[i].ID != i+1 {
				t.Errorf("%s level ID = %d", v.Name, v.Levels[i].ID)
			}
		}
		if v.ChunkDuration != 4*time.Second || v.NumChunks != 150 {
			t.Errorf("%s: %v x %d chunks, want 4s x 150", v.Name, v.ChunkDuration, v.NumChunks)
		}
		if v.Duration() != 10*time.Minute {
			t.Errorf("%s duration = %v", v.Name, v.Duration())
		}
	}
}

func TestValidateRejectsBadVideos(t *testing.T) {
	good := BigBuckBunny()
	bad := []*Video{
		nil,
		{Name: "x", ChunkDuration: 0, NumChunks: 1, Levels: good.Levels},
		{Name: "x", ChunkDuration: time.Second, NumChunks: 0, Levels: good.Levels},
		{Name: "x", ChunkDuration: time.Second, NumChunks: 1},
		{Name: "x", ChunkDuration: time.Second, NumChunks: 1,
			Levels: []Level{{ID: 1, AvgBitrateMbps: 2}, {ID: 2, AvgBitrateMbps: 1}}},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("bad video %d accepted", i)
		}
	}
}

func TestChunkSizeProperties(t *testing.T) {
	v := BigBuckBunny()
	for level := range v.Levels {
		nominal := float64(v.NominalChunkSize(level))
		var sum float64
		for i := 0; i < v.NumChunks; i++ {
			s := float64(v.ChunkSize(i, level))
			if s < nominal*(1-vbrSpread)-1 || s > nominal*(1+vbrSpread)+1 {
				t.Fatalf("level %d chunk %d size %v outside ±%v%% of %v", level, i, s, vbrSpread*100, nominal)
			}
			sum += s
		}
		avg := sum / float64(v.NumChunks)
		if math.Abs(avg-nominal) > nominal*0.05 {
			t.Errorf("level %d mean size %v deviates from nominal %v", level, avg, nominal)
		}
	}
	// Deterministic.
	if v.ChunkSize(7, 2) != BigBuckBunny().ChunkSize(7, 2) {
		t.Error("chunk sizes not deterministic")
	}
	// Higher level, bigger chunk (nominal dominates the ±20% VBR for
	// adjacent levels far enough apart — check top vs bottom).
	for i := 0; i < v.NumChunks; i++ {
		if v.ChunkSize(i, 4) <= v.ChunkSize(i, 0) {
			t.Fatalf("chunk %d: top level not larger than bottom", i)
		}
	}
}

func TestChunkSizePanics(t *testing.T) {
	v := BigBuckBunny()
	for _, c := range []struct{ idx, lvl int }{{-1, 0}, {150, 0}, {0, -1}, {0, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChunkSize(%d,%d) did not panic", c.idx, c.lvl)
				}
			}()
			v.ChunkSize(c.idx, c.lvl)
		}()
	}
}

func TestRateBasedDeadlineExample(t *testing.T) {
	// Paper §5.1: a 1 MB chunk at a 4.0 Mbps level has rate-based
	// deadline 1*8/4 = 2 s. Verify via NominalBps arithmetic.
	v := BigBuckBunny()
	lvl := 4 // 3.94 Mbps
	size := int64(1_000_000)
	d := time.Duration(float64(size*8) / (v.Levels[lvl].AvgBitrateMbps * 1e6) * float64(time.Second))
	if d < 1900*time.Millisecond || d > 2200*time.Millisecond {
		t.Errorf("rate-based deadline = %v, want ≈2s", d)
	}
}

func TestLevelForThroughput(t *testing.T) {
	v := BigBuckBunny()
	cases := []struct {
		bps  float64
		want int
	}{
		{0.3e6, -1},
		{0.58e6, 0},
		{1.2e6, 1},
		{3.0e6, 3},
		{4.5e6, 4},
		{100e6, 4},
	}
	for _, c := range cases {
		if got := v.LevelForThroughput(c.bps); got != c.want {
			t.Errorf("LevelForThroughput(%v) = %d, want %d", c.bps, got, c.want)
		}
	}
	if v.HighestLevel() != 4 {
		t.Errorf("HighestLevel = %d", v.HighestLevel())
	}
}

func TestWithChunkDuration(t *testing.T) {
	v := BigBuckBunny()
	for _, dur := range []time.Duration{6 * time.Second, 10 * time.Second} {
		w := v.WithChunkDuration(dur)
		if w.ChunkDuration != dur {
			t.Errorf("ChunkDuration = %v", w.ChunkDuration)
		}
		if w.Duration() > v.Duration() {
			t.Errorf("re-chunked video longer than original")
		}
		if err := w.Validate(); err != nil {
			t.Error(err)
		}
	}
	// Original untouched.
	if v.ChunkDuration != 4*time.Second {
		t.Error("WithChunkDuration mutated the receiver")
	}
	defer func() {
		if recover() == nil {
			t.Error("WithChunkDuration(0) did not panic")
		}
	}()
	v.WithChunkDuration(0)
}

func TestMPDRoundTrip(t *testing.T) {
	v := BigBuckBunny()
	m := v.Manifest()
	b, err := EncodeMPD(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeMPD(b)
	if err != nil {
		t.Fatal(err)
	}
	v2, sizes, err := VideoFromManifest(m2, v.Name)
	if err != nil {
		t.Fatal(err)
	}
	if v2.NumChunks != v.NumChunks || v2.ChunkDuration != v.ChunkDuration || len(v2.Levels) != len(v.Levels) {
		t.Fatalf("reconstructed video mismatch: %+v", v2)
	}
	for li := range v.Levels {
		if math.Abs(v2.Levels[li].AvgBitrateMbps-v.Levels[li].AvgBitrateMbps) > 1e-9 {
			t.Errorf("level %d bitrate %v != %v", li, v2.Levels[li].AvgBitrateMbps, v.Levels[li].AvgBitrateMbps)
		}
		for c := 0; c < v.NumChunks; c++ {
			if sizes[li][c] != v.ChunkSize(c, li) {
				t.Fatalf("manifest size level %d chunk %d: %d != %d", li, c, sizes[li][c], v.ChunkSize(c, li))
			}
		}
	}
}

func TestDecodeMPDErrors(t *testing.T) {
	if _, err := DecodeMPD([]byte("not xml at all <")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := VideoFromManifest(&MPD{}, "x"); err == nil {
		t.Error("empty manifest accepted")
	}
}
