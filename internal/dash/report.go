package dash

import (
	"time"

	"mpdash/internal/mptcp"
)

// Report aggregates one playback session the way the paper reports its
// experiments: stalls, playback bitrate, per-path (cellular) data usage,
// and quality switches. SteadyState* fields cover the last 80% of chunks,
// the window §7.3 reports statistics on.
type Report struct {
	VideoName string
	Algorithm string

	Chunks int
	// AvgBitrateMbps is the mean nominal encoding bitrate over all chunks.
	AvgBitrateMbps float64
	// SteadyStateAvgBitrateMbps covers the last 80% of chunks.
	SteadyStateAvgBitrateMbps float64
	// Stalls and StallTime cover the whole session.
	Stalls    int
	StallTime time.Duration
	// StartupDelay is the time from the first chunk's request to its
	// completion — when playback can begin.
	StartupDelay time.Duration
	// QualitySwitches counts chunk-boundary level changes.
	QualitySwitches int
	// PathBytes is the total per-path byte split.
	PathBytes map[string]int64
	// SteadyStatePathBytes covers the last 80% of chunks.
	SteadyStatePathBytes map[string]int64
	// Results and Events carry the raw per-chunk data for analysis.
	Results []ChunkResult
	Events  []Event
}

// steadyStart returns the first chunk index of the last-80% window.
func steadyStart(n int) int { return n / 5 }

func buildReport(v *Video, algo string, results []ChunkResult, events []Event, conn *mptcp.Conn) *Report {
	r := &Report{
		VideoName:            v.Name,
		Algorithm:            algo,
		Chunks:               len(results),
		PathBytes:            map[string]int64{},
		SteadyStatePathBytes: map[string]int64{},
		Results:              results,
		Events:               events,
	}
	if len(results) == 0 {
		return r
	}
	r.StartupDelay = results[0].End - results[0].Start
	ss := steadyStart(len(results))
	var sumAll, sumSS float64
	last := -1
	for i, res := range results {
		sumAll += res.Meta.NominalBps
		if i >= ss {
			sumSS += res.Meta.NominalBps
		}
		if last >= 0 && res.Meta.Level != last {
			r.QualitySwitches++
		}
		last = res.Meta.Level
		if res.Stalled {
			r.Stalls++
			r.StallTime += res.StallTime
		}
		for name, b := range res.PathBytes {
			r.PathBytes[name] += b
			if i >= ss {
				r.SteadyStatePathBytes[name] += b
			}
		}
	}
	r.AvgBitrateMbps = sumAll / float64(len(results)) / 1e6
	if n := len(results) - ss; n > 0 {
		r.SteadyStateAvgBitrateMbps = sumSS / float64(n) / 1e6
	}
	return r
}

// QoEWeights parameterize the standard linear QoE model (Yin et al.):
// average bitrate minus switch-magnitude and rebuffering penalties.
type QoEWeights struct {
	// LambdaSwitch penalizes the mean per-chunk bitrate change (Mbps).
	LambdaSwitch float64
	// MuRebufferPerSec penalizes stall seconds (in Mbps-equivalents).
	MuRebufferPerSec float64
}

// DefaultQoEWeights are the weights used across the reproduction's
// reports (rebuffering dominates, as in the MPC paper).
func DefaultQoEWeights() QoEWeights {
	return QoEWeights{LambdaSwitch: 1, MuRebufferPerSec: 3}
}

// QoE computes the session's linear QoE score (higher is better).
func (r *Report) QoE(w QoEWeights) float64 {
	if len(r.Results) == 0 {
		return 0
	}
	var switchMbps float64
	for i := 1; i < len(r.Results); i++ {
		d := r.Results[i].Meta.NominalBps - r.Results[i-1].Meta.NominalBps
		if d < 0 {
			d = -d
		}
		switchMbps += d / 1e6
	}
	n := float64(len(r.Results))
	return r.AvgBitrateMbps - w.LambdaSwitch*switchMbps/n - w.MuRebufferPerSec*r.StallTime.Seconds()
}

// CellularBytes returns the steady-state byte count on the named path
// (the paper's headline "bytes over LTE" metric).
func (r *Report) CellularBytes(path string) int64 { return r.SteadyStatePathBytes[path] }

// TotalBytes returns steady-state bytes summed over paths.
func (r *Report) TotalBytes() int64 {
	var s int64
	for _, b := range r.SteadyStatePathBytes {
		s += b
	}
	return s
}

// CellularFraction returns the steady-state fraction of bytes on the
// named path.
func (r *Report) CellularFraction(path string) float64 {
	t := r.TotalBytes()
	if t == 0 {
		return 0
	}
	return float64(r.SteadyStatePathBytes[path]) / float64(t)
}
