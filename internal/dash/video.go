// Package dash models the DASH video substrate: the encoding ladders of
// the paper's four test videos (Table 3), a VBR chunk-size model, the MPD
// manifest, and an event-driven video player with a playback buffer that
// any rate-adaptation algorithm can drive.
package dash

import (
	"fmt"
	"time"
)

// Level is one encoding bitrate rung of a video's ladder.
type Level struct {
	// ID is the 1-based quality level as the paper numbers them.
	ID int
	// AvgBitrateMbps is the nominal (average) encoding bitrate.
	AvgBitrateMbps float64
}

// Video describes one DASH asset: equal-duration chunks, each encoded at
// every ladder level.
type Video struct {
	Name string
	// ChunkDuration is the playout duration of every chunk (the paper's
	// experiments use 4 s, with 6 s and 10 s variants).
	ChunkDuration time.Duration
	// Levels is the encoding ladder in ascending bitrate order.
	Levels []Level
	// NumChunks is the total chunk count (150 for a 10-minute video at
	// 4-second chunks).
	NumChunks int
	// SizeSeed decorrelates the VBR size pattern between videos.
	SizeSeed uint64
}

// Validate checks structural invariants.
func (v *Video) Validate() error {
	if v == nil {
		return fmt.Errorf("dash: nil video")
	}
	if v.ChunkDuration <= 0 {
		return fmt.Errorf("dash: video %q chunk duration %v", v.Name, v.ChunkDuration)
	}
	if v.NumChunks <= 0 {
		return fmt.Errorf("dash: video %q has %d chunks", v.Name, v.NumChunks)
	}
	if len(v.Levels) == 0 {
		return fmt.Errorf("dash: video %q has no levels", v.Name)
	}
	prev := 0.0
	for i, l := range v.Levels {
		if l.AvgBitrateMbps <= prev {
			return fmt.Errorf("dash: video %q level %d not ascending", v.Name, i)
		}
		prev = l.AvgBitrateMbps
	}
	return nil
}

// Duration returns the total playout length.
func (v *Video) Duration() time.Duration {
	return time.Duration(v.NumChunks) * v.ChunkDuration
}

// vbrSpread is the ± fraction by which a chunk's size deviates from
// nominal (bitrate × duration): real DASH encodes are VBR within a rung.
const vbrSpread = 0.2

// ChunkSize returns the byte size of chunk index at ladder position
// level (0-based index into Levels). Sizes are deterministic: the same
// (video, chunk, level) always has the same size, the way a real encode
// does. It panics on out-of-range arguments — a rate adaptation algorithm
// asking for a nonexistent level is a bug, not a runtime condition.
func (v *Video) ChunkSize(index, level int) int64 {
	if index < 0 || index >= v.NumChunks {
		panic(fmt.Sprintf("dash: chunk index %d of %d", index, v.NumChunks))
	}
	if level < 0 || level >= len(v.Levels) {
		panic(fmt.Sprintf("dash: level %d of %d", level, len(v.Levels)))
	}
	nominal := v.Levels[level].AvgBitrateMbps * 1e6 / 8 * v.ChunkDuration.Seconds()
	// splitmix64 over (seed, index, level) → factor in [1-spread, 1+spread].
	h := splitmix64(v.SizeSeed ^ uint64(index)*0x9e3779b97f4a7c15 ^ uint64(level)<<32)
	u := float64(h>>11) / float64(1<<53) // [0,1)
	factor := 1 - vbrSpread + 2*vbrSpread*u
	return int64(nominal * factor)
}

// NominalChunkSize returns bitrate × duration without VBR variation.
func (v *Video) NominalChunkSize(level int) int64 {
	if level < 0 || level >= len(v.Levels) {
		panic(fmt.Sprintf("dash: level %d of %d", level, len(v.Levels)))
	}
	return int64(v.Levels[level].AvgBitrateMbps * 1e6 / 8 * v.ChunkDuration.Seconds())
}

// HighestLevel returns the index of the top ladder rung.
func (v *Video) HighestLevel() int { return len(v.Levels) - 1 }

// LevelForThroughput returns the highest ladder index whose average
// bitrate does not exceed the given throughput (bits/s); -1 if even the
// lowest rung exceeds it.
func (v *Video) LevelForThroughput(bps float64) int {
	best := -1
	for i, l := range v.Levels {
		if l.AvgBitrateMbps*1e6 <= bps {
			best = i
		}
	}
	return best
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ladder builds a Video with the standard 10-minute / 4-second-chunk shape
// of the paper's experiments.
func ladder(name string, seed uint64, rates ...float64) *Video {
	v := &Video{
		Name:          name,
		ChunkDuration: 4 * time.Second,
		NumChunks:     150,
		SizeSeed:      seed,
	}
	for i, r := range rates {
		v.Levels = append(v.Levels, Level{ID: i + 1, AvgBitrateMbps: r})
	}
	return v
}

// The paper's four test videos (Table 3, from the Lederer et al. DASH
// dataset): average encoding bitrates in Mbps for quality levels 1–5.

// BigBuckBunny is the paper's primary test video.
func BigBuckBunny() *Video {
	return ladder("Big Buck Bunny", 0xb16, 0.58, 1.01, 1.47, 2.41, 3.94)
}

// RedBullPlaystreets is the second non-HD video.
func RedBullPlaystreets() *Video {
	return ladder("Red Bull Playstreets", 0x4ed, 0.50, 0.89, 1.50, 2.47, 3.99)
}

// TearsOfSteel is the third non-HD video.
func TearsOfSteel() *Video {
	return ladder("Tears of Steel", 0x7ea45, 0.50, 0.81, 1.51, 2.42, 4.01)
}

// TearsOfSteelHD is the HD variant used in §7.3.5 (top rung 10 Mbps).
func TearsOfSteelHD() *Video {
	return ladder("Tears of Steel HD", 0x7ea45d, 1.51, 2.42, 4.01, 6.03, 10.0)
}

// Catalog returns all four Table 3 videos.
func Catalog() []*Video {
	return []*Video{BigBuckBunny(), RedBullPlaystreets(), TearsOfSteel(), TearsOfSteelHD()}
}

// WithChunkDuration returns a copy of the video re-chunked to dur while
// preserving total playout length (the paper repeats experiments with 6 s
// and 10 s chunks).
func (v *Video) WithChunkDuration(dur time.Duration) *Video {
	if dur <= 0 {
		panic(fmt.Sprintf("dash: chunk duration %v", dur))
	}
	total := v.Duration()
	out := *v
	out.ChunkDuration = dur
	out.NumChunks = int(total / dur)
	if out.NumChunks == 0 {
		out.NumChunks = 1
	}
	out.Levels = append([]Level(nil), v.Levels...)
	return &out
}
