package field

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"mpdash/internal/harness"
	"mpdash/internal/stats"
)

func TestCatalogueShape(t *testing.T) {
	locs := Locations()
	if len(locs) != 33 {
		t.Fatalf("%d locations, want 33", len(locs))
	}
	counts := ScenarioCounts()
	// Paper §2.2: 64% / 15% / 21% of 33 → 21 / 5 / 7.
	if counts[ScenarioNever] != 21 || counts[ScenarioSometimes] != 5 || counts[ScenarioAlways] != 7 {
		t.Errorf("scenario split = %v, want 21/5/7", counts)
	}
	seen := map[string]bool{}
	seeds := map[int64]bool{}
	states := map[string]bool{}
	for _, l := range locs {
		if seen[l.Name] {
			t.Errorf("duplicate location %q", l.Name)
		}
		seen[l.Name] = true
		if seeds[l.Seed] {
			t.Errorf("duplicate seed %d", l.Seed)
		}
		seeds[l.Seed] = true
		states[l.State] = true
		if l.WiFiMbps <= 0 || l.LTEMbps <= 0 || l.WiFiRTT <= 0 || l.LTERTT <= 0 {
			t.Errorf("%s: bad parameters", l.Name)
		}
		if l.Stability < 0 || l.Stability > 1 {
			t.Errorf("%s: stability %v", l.Name, l.Stability)
		}
	}
	if len(states) != 3 {
		t.Errorf("%d states, want 3", len(states))
	}
}

func TestTable5RowsPresent(t *testing.T) {
	want := map[string]struct{ wifi, lte float64 }{
		"Hotel Hi":    {2.92, 11.0},
		"Hotel Ha":    {2.96, 14.0},
		"Food Market": {3.58, 22.9},
		"Airport":     {5.97, 12.1},
		"Coffeehouse": {6.04, 18.1},
		"Library":     {17.8, 5.18},
		"Elec. Store": {28.4, 18.5},
	}
	for name, bw := range want {
		loc, ok := ByName(name)
		if !ok {
			t.Errorf("missing %q", name)
			continue
		}
		if loc.WiFiMbps != bw.wifi || loc.LTEMbps != bw.lte {
			t.Errorf("%s: %v/%v, want %v/%v", name, loc.WiFiMbps, loc.LTEMbps, bw.wifi, bw.lte)
		}
	}
	if _, ok := ByName("nowhere"); ok {
		t.Error("ByName invented a location")
	}
}

func TestScenarioTraceBehaviour(t *testing.T) {
	// A scenario-3 site's trace should sustain the top bitrate almost
	// always; a scenario-1 site's should essentially never.
	office, _ := ByName("Office")
	hotel, _ := ByName("Hotel Hi")
	slot := 100 * time.Millisecond
	if !wifiSupportsTop(office.WiFiTrace(slot, 6000), 0.9) {
		t.Error("Office WiFi should sustain the top bitrate ≥90% of slots")
	}
	if wifiSupportsTop(hotel.WiFiTrace(slot, 6000), 0.1) {
		t.Error("Hotel Hi WiFi should almost never sustain the top bitrate")
	}
}

// miniStudy runs a 3-location study with short sessions (fast test).
func miniStudy(t *testing.T) *StudyResult {
	t.Helper()
	locs := []Location{}
	for _, n := range []string{"Hotel Hi", "Coffeehouse", "Elec. Store"} {
		l, ok := ByName(n)
		if !ok {
			t.Fatalf("missing %s", n)
		}
		locs = append(locs, l)
	}
	res, err := RunStudy(StudyConfig{Locations: locs, Chunks: 60})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMiniStudy(t *testing.T) {
	res := miniStudy(t)
	if len(res.Outcomes) != 3 {
		t.Fatalf("%d outcomes", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		for _, algo := range []harness.Algorithm{harness.FESTIVE, harness.BBA} {
			if o.Baseline[algo] == nil {
				t.Fatalf("%s: missing %s baseline", o.Location.Name, algo)
			}
		}
		for _, k := range SchemeKeys() {
			mp := o.MPDash[k]
			if mp == nil {
				t.Fatalf("%s: missing arm %s", o.Location.Name, k)
			}
			if mp.Report.Stalls != 0 {
				t.Errorf("%s/%s: %d stalls", o.Location.Name, k, mp.Report.Stalls)
			}
		}
	}
	// Savings must be meaningful at the high-WiFi site (Elec. Store:
	// Table 5 shows >85% cellular savings there).
	elec := res.Outcome("Elec. Store")
	if elec == nil {
		t.Fatal("no Elec. Store outcome")
	}
	if s := elec.CellularSaving(FESTIVERate); s < 0.5 {
		t.Errorf("Elec. Store FESTIVE-Rate saving %.2f, want > 0.5", s)
	}
	// More WiFi should not mean less saving: Elec. Store ≥ Hotel Hi
	// (§7.3.3: "more savings as the WiFi throughput increases").
	hotel := res.Outcome("Hotel Hi")
	if elec.CellularSaving(FESTIVERate) < hotel.CellularSaving(FESTIVERate)-0.05 {
		t.Errorf("saving ordering violated: elec %.2f < hotel %.2f",
			elec.CellularSaving(FESTIVERate), hotel.CellularSaving(FESTIVERate))
	}
	if res.Outcome("nowhere") != nil {
		t.Error("Outcome invented a location")
	}
}

func TestCDFsWellFormed(t *testing.T) {
	res := miniStudy(t)
	for _, k := range SchemeKeys() {
		cdf := res.SavingsCDF(k)
		if len(cdf) != len(res.Outcomes) {
			t.Fatalf("%s: CDF size %d", k, len(cdf))
		}
		for _, p := range cdf {
			if p.Value < -1 || p.Value > 1 {
				t.Errorf("%s: saving %v outside [-1,1]", k, p.Value)
			}
		}
		br := res.BitrateReductionCDF(k)
		if len(br) != len(res.Outcomes) {
			t.Fatalf("%s: bitrate CDF size %d", k, len(br))
		}
	}
	all := res.AllSavings()
	if len(all) != len(res.Outcomes)*4 {
		t.Fatalf("AllSavings size %d", len(all))
	}
	if len(res.AllEnergySavings()) != len(all) || len(res.AllBitrateReductions()) != len(all) {
		t.Error("pooled metric sizes disagree")
	}
	med, err := stats.Percentile(all, 50)
	if err != nil {
		t.Fatal(err)
	}
	if med <= 0 {
		t.Errorf("median pooled saving %.3f, want positive", med)
	}
}

func TestExportJSON(t *testing.T) {
	res := miniStudy(t)
	rows := res.Export()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, row := range rows {
		if len(row.Arms) != 4 {
			t.Errorf("%s: %d arms", row.Location, len(row.Arms))
		}
		if row.Scenario < 1 || row.Scenario > 3 {
			t.Errorf("%s: scenario %d", row.Location, row.Scenario)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed []ExportRow
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 3 || parsed[0].Location == "" {
		t.Errorf("json round trip: %+v", parsed)
	}
}

func TestBitrateLargelyPreserved(t *testing.T) {
	// Fig. 10: bitrate reductions cluster near zero.
	res := miniStudy(t)
	for _, x := range res.AllBitrateReductions() {
		if x > 0.15 {
			t.Errorf("bitrate reduction %.3f exceeds 15%%", x)
		}
	}
}
