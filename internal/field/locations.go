// Package field reproduces the paper's in-field evaluation (§2.2, §7.3.3):
// a catalogue of 33 public locations across three U.S. states with
// measured WiFi/LTE characteristics, and a study runner that plays the
// experiment matrix (FESTIVE and BBA × vanilla MPTCP, rate-based and
// duration-based MP-DASH) at every location. The real measurements are not
// public; the catalogue is synthesized to match everything the paper
// reports about them — the named rows of Tables 1 and 5, and the 64% /
// 15% / 21% scenario split.
package field

import (
	"time"

	"mpdash/internal/trace"
)

// Scenario classifies a location per §2.2.
type Scenario int

const (
	// ScenarioNever: WiFi alone can never sustain the top bitrate.
	ScenarioNever Scenario = 1
	// ScenarioSometimes: WiFi sometimes sustains it, but not reliably.
	ScenarioSometimes Scenario = 2
	// ScenarioAlways: WiFi almost always sustains it.
	ScenarioAlways Scenario = 3
)

// Location is one field site.
type Location struct {
	Name     string
	Category string
	State    string
	// WiFiMbps/LTEMbps are measured average bandwidths; RTTs per path.
	WiFiMbps float64
	LTEMbps  float64
	WiFiRTT  time.Duration
	LTERTT   time.Duration
	// Stability in [0,1] controls WiFi fluctuation (1 = rock solid).
	Stability float64
	// Seed fixes the location's stochastic trace.
	Seed int64
}

// topBitrateMbps is the highest non-HD encoding rate (Table 3).
const topBitrateMbps = 3.94

// Scenario derives the §2.2 class from the catalogue parameters.
func (l Location) Scenario() Scenario {
	switch {
	case l.WiFiMbps < topBitrateMbps*1.05:
		return ScenarioNever
	case l.Stability < 0.8:
		return ScenarioSometimes
	default:
		return ScenarioAlways
	}
}

// WiFiTrace synthesizes the location's WiFi bandwidth process.
func (l Location) WiFiTrace(slot time.Duration, n int) *trace.Trace {
	return trace.Field(l.Name+"-wifi", l.WiFiMbps, l.Stability, slot, n, l.Seed)
}

// LTETrace synthesizes the location's LTE bandwidth process. Commercial
// LTE is modelled as fairly stable.
func (l Location) LTETrace(slot time.Duration, n int) *trace.Trace {
	return trace.Field(l.Name+"-lte", l.LTEMbps, 0.9, slot, n, l.Seed+1)
}

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

// Locations returns the 33-site catalogue. The first ten entries carry the
// parameters the paper publishes (Table 5's seven representative
// locations and Table 1's three trace sites); the rest fill out the
// scenario distribution: 21 of 33 (64%) scenario 1, 5 (15%) scenario 2,
// 7 (21%) scenario 3.
func Locations() []Location {
	return []Location{
		// Table 5 rows (BW in Mbps, RTT in ms).
		{Name: "Hotel Hi", Category: "hotel", State: "NJ", WiFiMbps: 2.92, WiFiRTT: ms(14), LTEMbps: 11.0, LTERTT: ms(52), Stability: 0.55, Seed: 101},
		{Name: "Hotel Ha", Category: "hotel", State: "NJ", WiFiMbps: 2.96, WiFiRTT: ms(41), LTEMbps: 14.0, LTERTT: ms(69), Stability: 0.50, Seed: 102},
		{Name: "Food Market", Category: "market", State: "NY", WiFiMbps: 3.58, WiFiRTT: ms(75), LTEMbps: 22.9, LTERTT: ms(53), Stability: 0.45, Seed: 103},
		{Name: "Airport", Category: "airport", State: "NJ", WiFiMbps: 5.97, WiFiRTT: ms(32), LTEMbps: 12.1, LTERTT: ms(67), Stability: 0.60, Seed: 104},
		{Name: "Coffeehouse", Category: "coffeehouse", State: "NY", WiFiMbps: 6.04, WiFiRTT: ms(29), LTEMbps: 18.1, LTERTT: ms(69), Stability: 0.65, Seed: 105},
		{Name: "Library", Category: "library", State: "IN", WiFiMbps: 17.8, WiFiRTT: ms(23), LTEMbps: 5.18, LTERTT: ms(64), Stability: 0.92, Seed: 106},
		{Name: "Elec. Store", Category: "electronics store", State: "IN", WiFiMbps: 28.4, WiFiRTT: ms(11), LTEMbps: 18.5, LTERTT: ms(59), Stability: 0.95, Seed: 107},
		// Table 1 trace sites.
		{Name: "Fast Food B", Category: "fast food", State: "NJ", WiFiMbps: 5.2, WiFiRTT: ms(45), LTEMbps: 8.1, LTERTT: ms(60), Stability: 0.55, Seed: 108},
		{Name: "Coffeehouse D", Category: "coffeehouse", State: "NY", WiFiMbps: 1.4, WiFiRTT: ms(55), LTEMbps: 7.6, LTERTT: ms(62), Stability: 0.50, Seed: 109},
		{Name: "Office", Category: "office building", State: "NJ", WiFiMbps: 28.4, WiFiRTT: ms(12), LTEMbps: 19.1, LTERTT: ms(58), Stability: 0.96, Seed: 110},
		// Remaining scenario-1 sites (WiFi below the top bitrate).
		{Name: "Hotel Mt", Category: "hotel", State: "IN", WiFiMbps: 1.8, WiFiRTT: ms(35), LTEMbps: 9.4, LTERTT: ms(66), Stability: 0.45, Seed: 111},
		{Name: "Hotel Se", Category: "hotel", State: "NY", WiFiMbps: 2.3, WiFiRTT: ms(48), LTEMbps: 12.7, LTERTT: ms(63), Stability: 0.50, Seed: 112},
		{Name: "Fast Food A", Category: "fast food", State: "NJ", WiFiMbps: 2.7, WiFiRTT: ms(52), LTEMbps: 10.2, LTERTT: ms(61), Stability: 0.55, Seed: 113},
		{Name: "Fast Food C", Category: "fast food", State: "IN", WiFiMbps: 3.1, WiFiRTT: ms(40), LTEMbps: 13.8, LTERTT: ms(65), Stability: 0.60, Seed: 114},
		{Name: "Shopping Mall", Category: "mall", State: "NJ", WiFiMbps: 2.1, WiFiRTT: ms(60), LTEMbps: 15.5, LTERTT: ms(64), Stability: 0.40, Seed: 115},
		{Name: "Retailer Store", Category: "retail", State: "NY", WiFiMbps: 1.6, WiFiRTT: ms(65), LTEMbps: 11.9, LTERTT: ms(67), Stability: 0.45, Seed: 116},
		{Name: "Grocery Store", Category: "grocery", State: "IN", WiFiMbps: 2.5, WiFiRTT: ms(44), LTEMbps: 16.3, LTERTT: ms(60), Stability: 0.55, Seed: 117},
		{Name: "Parking Lot", Category: "outdoor", State: "NJ", WiFiMbps: 1.2, WiFiRTT: ms(80), LTEMbps: 14.1, LTERTT: ms(62), Stability: 0.35, Seed: 118},
		{Name: "Coffeehouse B", Category: "coffeehouse", State: "NJ", WiFiMbps: 3.3, WiFiRTT: ms(38), LTEMbps: 9.8, LTERTT: ms(68), Stability: 0.60, Seed: 119},
		{Name: "Coffeehouse C", Category: "coffeehouse", State: "IN", WiFiMbps: 2.9, WiFiRTT: ms(42), LTEMbps: 17.2, LTERTT: ms(63), Stability: 0.50, Seed: 120},
		{Name: "Diner", Category: "restaurant", State: "NY", WiFiMbps: 2.2, WiFiRTT: ms(50), LTEMbps: 8.9, LTERTT: ms(66), Stability: 0.55, Seed: 121},
		{Name: "Pizzeria", Category: "restaurant", State: "NJ", WiFiMbps: 3.4, WiFiRTT: ms(36), LTEMbps: 12.4, LTERTT: ms(61), Stability: 0.60, Seed: 122},
		{Name: "Bus Terminal", Category: "transit", State: "NY", WiFiMbps: 1.9, WiFiRTT: ms(70), LTEMbps: 13.3, LTERTT: ms(65), Stability: 0.40, Seed: 123},
		{Name: "Hotel Lobby W", Category: "hotel", State: "IN", WiFiMbps: 3.0, WiFiRTT: ms(33), LTEMbps: 10.9, LTERTT: ms(64), Stability: 0.55, Seed: 124},
		{Name: "Bakery", Category: "restaurant", State: "NJ", WiFiMbps: 2.6, WiFiRTT: ms(46), LTEMbps: 9.1, LTERTT: ms(67), Stability: 0.50, Seed: 125},
		{Name: "Gym", Category: "fitness", State: "NY", WiFiMbps: 11.2, WiFiRTT: ms(21), LTEMbps: 11.6, LTERTT: ms(62), Stability: 0.90, Seed: 126},
		{Name: "Pharmacy", Category: "retail", State: "IN", WiFiMbps: 2.0, WiFiRTT: ms(58), LTEMbps: 15.0, LTERTT: ms(63), Stability: 0.45, Seed: 127},
		{Name: "Convention Ctr", Category: "venue", State: "NJ", WiFiMbps: 3.5, WiFiRTT: ms(30), LTEMbps: 20.1, LTERTT: ms(59), Stability: 0.55, Seed: 128},
		// Remaining scenario-2 sites (fast but flaky WiFi).
		{Name: "Mall Food Court", Category: "mall", State: "NY", WiFiMbps: 6.8, WiFiRTT: ms(34), LTEMbps: 14.6, LTERTT: ms(64), Stability: 0.55, Seed: 129},
		{Name: "Hotel Conf Rm", Category: "hotel", State: "IN", WiFiMbps: 5.4, WiFiRTT: ms(28), LTEMbps: 12.2, LTERTT: ms(66), Stability: 0.65, Seed: 130},
		// Remaining scenario-3 sites (fast, stable WiFi).
		{Name: "University Hall", Category: "campus", State: "IN", WiFiMbps: 22.6, WiFiRTT: ms(15), LTEMbps: 16.4, LTERTT: ms(60), Stability: 0.93, Seed: 131},
		{Name: "Bookstore", Category: "retail", State: "NY", WiFiMbps: 12.9, WiFiRTT: ms(20), LTEMbps: 13.7, LTERTT: ms(62), Stability: 0.90, Seed: 132},
		{Name: "Tech Cafe", Category: "coffeehouse", State: "NJ", WiFiMbps: 15.3, WiFiRTT: ms(18), LTEMbps: 17.9, LTERTT: ms(61), Stability: 0.91, Seed: 133},
	}
}

// ByName returns the named location, or false.
func ByName(name string) (Location, bool) {
	for _, l := range Locations() {
		if l.Name == name {
			return l, true
		}
	}
	return Location{}, false
}

// ScenarioCounts tallies the catalogue by scenario.
func ScenarioCounts() map[Scenario]int {
	out := map[Scenario]int{}
	for _, l := range Locations() {
		out[l.Scenario()]++
	}
	return out
}
