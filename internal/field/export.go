package field

import (
	"encoding/json"
	"io"
)

// ExportArm is one experiment arm's exported metrics at a location.
type ExportArm struct {
	CellularSaving   float64 `json:"cellular_saving"`
	EnergySaving     float64 `json:"energy_saving"`
	BitrateReduction float64 `json:"bitrate_reduction"`
	LTEBytes         int64   `json:"lte_bytes"`
	Stalls           int     `json:"stalls"`
}

// ExportRow is one location's exported study outcome.
type ExportRow struct {
	Location string               `json:"location"`
	Category string               `json:"category"`
	State    string               `json:"state"`
	Scenario int                  `json:"scenario"`
	WiFiMbps float64              `json:"wifi_mbps"`
	LTEMbps  float64              `json:"lte_mbps"`
	Arms     map[string]ExportArm `json:"arms"`
}

// Export flattens the study for external plotting tools.
func (r *StudyResult) Export() []ExportRow {
	rows := make([]ExportRow, 0, len(r.Outcomes))
	for _, o := range r.Outcomes {
		row := ExportRow{
			Location: o.Location.Name,
			Category: o.Location.Category,
			State:    o.Location.State,
			Scenario: int(o.Location.Scenario()),
			WiFiMbps: o.Location.WiFiMbps,
			LTEMbps:  o.Location.LTEMbps,
			Arms:     map[string]ExportArm{},
		}
		for _, k := range SchemeKeys() {
			mp := o.MPDash[k]
			if mp == nil {
				continue
			}
			row.Arms[string(k)] = ExportArm{
				CellularSaving:   o.CellularSaving(k),
				EnergySaving:     o.EnergySaving(k),
				BitrateReduction: o.BitrateReduction(k),
				LTEBytes:         mp.LTEBytes(),
				Stalls:           mp.Report.Stalls,
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteJSON streams the export as indented JSON.
func (r *StudyResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Export())
}
