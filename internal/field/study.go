package field

import (
	"fmt"
	"time"

	"mpdash/internal/dash"
	"mpdash/internal/harness"
	"mpdash/internal/stats"
	"mpdash/internal/trace"
)

// SchemeKey names one (algorithm, deadline policy) experiment arm the way
// the paper's Figures 9/10 label them.
type SchemeKey string

// The paper's four MP-DASH arms.
const (
	FESTIVERate SchemeKey = "FESTIVE-Rate"
	FESTIVEDur  SchemeKey = "FESTIVE-Dur"
	BBARate     SchemeKey = "BBA-Rate"
	BBADur      SchemeKey = "BBA-Dur"
)

// SchemeKeys lists the four arms in the paper's order.
func SchemeKeys() []SchemeKey { return []SchemeKey{FESTIVERate, FESTIVEDur, BBARate, BBADur} }

func (k SchemeKey) algorithm() harness.Algorithm {
	switch k {
	case FESTIVERate, FESTIVEDur:
		return harness.FESTIVE
	default:
		return harness.BBA
	}
}

func (k SchemeKey) scheme() harness.Scheme {
	switch k {
	case FESTIVERate, BBARate:
		return harness.MPDashRate
	default:
		return harness.MPDashDuration
	}
}

// StudyConfig parameterizes the field study.
type StudyConfig struct {
	// Locations defaults to the full 33-site catalogue.
	Locations []Location
	// Chunks per session; 0 plays the full video (150 chunks).
	Chunks int
	// Video defaults to Big Buck Bunny (the paper's field workload).
	Video *dash.Video
	// Slot is the bandwidth trace granularity (default 100 ms).
	Slot time.Duration
}

// LocationOutcome is one location's results across all arms.
type LocationOutcome struct {
	Location Location
	// Baselines per algorithm (vanilla MPTCP).
	Baseline map[harness.Algorithm]*harness.SessionResult
	// MPDash per arm.
	MPDash map[SchemeKey]*harness.SessionResult
}

// CellularSaving returns 1 − mpdashLTE/baselineLTE for the arm.
func (o *LocationOutcome) CellularSaving(k SchemeKey) float64 {
	base := o.Baseline[k.algorithm()]
	mp := o.MPDash[k]
	if base == nil || mp == nil || base.LTEBytes() == 0 {
		return 0
	}
	return 1 - float64(mp.LTEBytes())/float64(base.LTEBytes())
}

// EnergySaving returns 1 − mpdashJ/baselineJ for the arm.
func (o *LocationOutcome) EnergySaving(k SchemeKey) float64 {
	base := o.Baseline[k.algorithm()]
	mp := o.MPDash[k]
	if base == nil || mp == nil || base.RadioJ() == 0 {
		return 0
	}
	return 1 - mp.RadioJ()/base.RadioJ()
}

// BitrateReduction returns the playback-bitrate reduction fraction
// (negative values mean MP-DASH played at a higher bitrate, which §7.3.5
// observed for FESTIVE).
func (o *LocationOutcome) BitrateReduction(k SchemeKey) float64 {
	base := o.Baseline[k.algorithm()]
	mp := o.MPDash[k]
	if base == nil || mp == nil || base.Report.SteadyStateAvgBitrateMbps == 0 {
		return 0
	}
	return 1 - mp.Report.SteadyStateAvgBitrateMbps/base.Report.SteadyStateAvgBitrateMbps
}

// StudyResult aggregates the whole field study.
type StudyResult struct {
	Outcomes []*LocationOutcome
}

// SavingsCDF returns the empirical CDF of cellular savings for one arm
// (Fig. 9: one curve per arm).
func (r *StudyResult) SavingsCDF(k SchemeKey) []stats.CDFPoint {
	var xs []float64
	for _, o := range r.Outcomes {
		xs = append(xs, o.CellularSaving(k))
	}
	return stats.CDF(xs)
}

// BitrateReductionCDF returns the Fig. 10 CDF for one arm.
func (r *StudyResult) BitrateReductionCDF(k SchemeKey) []stats.CDFPoint {
	var xs []float64
	for _, o := range r.Outcomes {
		xs = append(xs, o.BitrateReduction(k))
	}
	return stats.CDF(xs)
}

// AllSavings pools cellular savings across every arm and location (the
// paper's "across all experiments" percentiles).
func (r *StudyResult) AllSavings() []float64 {
	var xs []float64
	for _, o := range r.Outcomes {
		for _, k := range SchemeKeys() {
			xs = append(xs, o.CellularSaving(k))
		}
	}
	return xs
}

// AllEnergySavings pools radio-energy savings across arms and locations.
func (r *StudyResult) AllEnergySavings() []float64 {
	var xs []float64
	for _, o := range r.Outcomes {
		for _, k := range SchemeKeys() {
			xs = append(xs, o.EnergySaving(k))
		}
	}
	return xs
}

// AllBitrateReductions pools bitrate reductions across arms and locations.
func (r *StudyResult) AllBitrateReductions() []float64 {
	var xs []float64
	for _, o := range r.Outcomes {
		for _, k := range SchemeKeys() {
			xs = append(xs, o.BitrateReduction(k))
		}
	}
	return xs
}

// Outcome returns the named location's outcome, or nil.
func (r *StudyResult) Outcome(name string) *LocationOutcome {
	for _, o := range r.Outcomes {
		if o.Location.Name == name {
			return o
		}
	}
	return nil
}

// RunStudy executes the experiment matrix. Sessions are deterministic per
// location seed, so repeated studies agree bit-for-bit.
func RunStudy(cfg StudyConfig) (*StudyResult, error) {
	locs := cfg.Locations
	if locs == nil {
		locs = Locations()
	}
	slot := cfg.Slot
	if slot == 0 {
		slot = 100 * time.Millisecond
	}
	res := &StudyResult{}
	for _, loc := range locs {
		out, err := runLocation(loc, cfg, slot)
		if err != nil {
			return nil, fmt.Errorf("field: %s: %w", loc.Name, err)
		}
		res.Outcomes = append(res.Outcomes, out)
	}
	return res, nil
}

func runLocation(loc Location, cfg StudyConfig, slot time.Duration) (*LocationOutcome, error) {
	// Trace long enough for any session (sessions wrap if they outlive it).
	const traceSlots = 9000 // 15 min at 100 ms
	wifi := loc.WiFiTrace(slot, traceSlots)
	lte := loc.LTETrace(slot, traceSlots)

	out := &LocationOutcome{
		Location: loc,
		Baseline: map[harness.Algorithm]*harness.SessionResult{},
		MPDash:   map[SchemeKey]*harness.SessionResult{},
	}
	mk := func(algo harness.Algorithm, scheme harness.Scheme) (*harness.SessionResult, error) {
		return harness.RunSession(harness.SessionConfig{
			WiFi: wifi, LTE: lte,
			WiFiRTT: loc.WiFiRTT, LTERTT: loc.LTERTT,
			Video: cfg.Video, Algorithm: algo, Scheme: scheme, Chunks: cfg.Chunks,
		})
	}
	for _, algo := range []harness.Algorithm{harness.FESTIVE, harness.BBA} {
		r, err := mk(algo, harness.Baseline)
		if err != nil {
			return nil, err
		}
		out.Baseline[algo] = r
	}
	for _, k := range SchemeKeys() {
		r, err := mk(k.algorithm(), k.scheme())
		if err != nil {
			return nil, err
		}
		out.MPDash[k] = r
	}
	return out, nil
}

// wifiSupportsTop is a helper reused by tests and the tables tool: does
// this location's generated WiFi trace sustain the top non-HD bitrate at
// least frac of the time?
func wifiSupportsTop(tr *trace.Trace, frac float64) bool {
	n := 0
	for _, v := range tr.Mbps {
		if v >= topBitrateMbps {
			n++
		}
	}
	return float64(n) >= frac*float64(len(tr.Mbps))
}
